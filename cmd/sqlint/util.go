package main

import (
	"go/ast"
	"go/types"
)

// walkStack traverses the AST below root, calling fn with every node and
// the stack of its ancestors (outermost first, not including the node
// itself). Returning false from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// loopDepth counts the for/range statements in the stack — how deeply
// nested in loops the current node is. Function literals do not reset the
// count: a closure created inside a loop runs per iteration.
func loopDepth(stack []ast.Node) int {
	depth := 0
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		}
	}
	return depth
}

// enclosingFunc returns the innermost function declaration or literal in
// the stack, and its body.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// pkgFuncCall reports whether call invokes the named function of the named
// package (e.g. "fmt", "Sprintf"), resolving the package qualifier through
// the type info so aliased imports are handled.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// namedFrom unwraps pointers and returns the named type, or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isNamedType reports whether t (possibly behind one pointer) is the named
// type pkgName.typeName, where pkgName is matched against the final
// element of the defining package's import path ("obs", "sync", ...).
func isNamedType(t types.Type, pkgName, typeName string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != typeName {
		return false
	}
	return pathBase(n.Obj().Pkg().Path()) == pkgName
}

func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// lockTypeName returns the name of the sync type t contains by value
// ("sync.Mutex", ...), or "" if t carries no lock. Pointers stop the
// search: sharing a lock by pointer is fine.
func lockTypeName(t types.Type) string {
	return lockTypeNameRec(t, map[types.Type]bool{})
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func lockTypeNameRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockTypeNameRec(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockTypeNameRec(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockTypeNameRec(u.Elem(), seen)
	}
	return ""
}

// isNilCheckOf reports whether cond (or one conjunct of it) is the
// comparison `expr != nil`, with expr matched by its printed form.
func isNilCheckOf(cond ast.Expr, exprStr string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return isNilCheckOf(c.X, exprStr)
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&", "||":
			return isNilCheckOf(c.X, exprStr) || isNilCheckOf(c.Y, exprStr)
		case "!=":
			return (types.ExprString(c.X) == exprStr && isNilIdent(c.Y)) ||
				(types.ExprString(c.Y) == exprStr && isNilIdent(c.X))
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// nilGuarded reports whether the node whose ancestor stack is given runs
// only when exprStr is non-nil: either an enclosing if-statement's
// then-branch tests `exprStr != nil`, or the innermost enclosing function
// opens with `if exprStr == nil { return }`.
func nilGuarded(stack []ast.Node, exprStr string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// Only the then-branch is guarded; a node in Else is not.
		if i+1 < len(stack) && stack[i+1] == ifs.Body && isNilCheckOf(ifs.Cond, exprStr) {
			return true
		}
	}
	_, body := enclosingFunc(stack)
	if body != nil && len(body.List) > 0 {
		if ifs, ok := body.List[0].(*ast.IfStmt); ok {
			if isEarlyNilReturn(ifs, exprStr) {
				return true
			}
		}
	}
	return false
}

// isEarlyNilReturn matches `if expr == nil { return ... }`.
func isEarlyNilReturn(ifs *ast.IfStmt, exprStr string) bool {
	be, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return false
	}
	match := (types.ExprString(be.X) == exprStr && isNilIdent(be.Y)) ||
		(types.ExprString(be.Y) == exprStr && isNilIdent(be.X))
	if !match || len(ifs.Body.List) == 0 {
		return false
	}
	_, ret := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return ret
}

// rootIdent returns the identifier at the base of a selector/index chain
// (`e.field[k]` -> `e`), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// localFuncBindings collects `name := func() {...}` (and `name = func()`,
// `var name = func()`) bindings below root, keyed by the bound object —
// so `go worker()` can be resolved to the literal's body. Reassignments
// keep the last literal seen in source order, matching how the worker
// pools in internal/core bind once and launch below.
func localFuncBindings(pass *Pass, root ast.Node) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	bind := func(id *ast.Ident, lit *ast.FuncLit) {
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = lit
		} else if obj := pass.Info.Uses[id]; obj != nil {
			out[obj] = lit
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if lit, ok := st.Rhs[i].(*ast.FuncLit); ok {
					bind(id, lit)
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) != len(st.Values) {
				return true
			}
			for i, id := range st.Names {
				if lit, ok := st.Values[i].(*ast.FuncLit); ok {
					bind(id, lit)
				}
			}
		}
		return true
	})
	return out
}

// funcDeclBody returns the body of the package-level declaration (function
// or method) of tf, or nil when tf is not declared in this package.
func funcDeclBody(pass *Pass, tf *types.Func) *ast.BlockStmt {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && obj == tf {
				return fd.Body
			}
		}
	}
	return nil
}

// resolveGoBody resolves the body a `go` statement will execute: an inline
// func literal, a local `worker := func() {...}` binding (looked up in
// localLits), a package-level function, or a method of a package-local
// type (the `go w.loop()` method-value form). Returns nil when the callee
// is declared outside this package — whole-program resolution is out of
// scope, and callers decide whether unresolved means "flag" (recover
// hygiene: the boundary must be visible) or "trust" (termination: assume
// the callee owns its lifecycle).
func resolveGoBody(pass *Pass, gs *ast.GoStmt, localLits map[types.Object]*ast.FuncLit) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj := pass.Info.Uses[fun]; obj != nil {
			if lit, ok := localLits[obj]; ok {
				return lit.Body
			}
			if tf, ok := obj.(*types.Func); ok {
				return funcDeclBody(pass, tf)
			}
		}
	case *ast.SelectorExpr:
		if tf, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return funcDeclBody(pass, tf)
		}
	}
	return nil
}

// implementsError reports whether t implements the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) || types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
