package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Output formats. "text" is the human-readable default; "json" is the
// stable machine-readable schema other tooling consumes; "github" emits
// GitHub Actions workflow commands so findings surface as inline PR
// annotations in CI.

// jsonFinding is one diagnostic in the -format=json schema. The file path
// is module-root-relative with forward slashes, so output is stable across
// checkouts and operating systems.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -format=json envelope. Version names the schema, not
// the tool build: bump it only on breaking shape changes.
type jsonReport struct {
	Version  string        `json:"version"`
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

const jsonSchemaVersion = "sqlint/v1"

// relFindingPath renders a diagnostic's filename relative to root (the
// module root), falling back to the absolute path for files outside it.
func relFindingPath(root, filename string) string {
	if r, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

func writeText(w io.Writer, root string, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", relFindingPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(w, "sqlint: %d finding(s)\n", len(diags))
	}
}

func writeJSON(w io.Writer, root string, diags []Diagnostic) error {
	report := jsonReport{
		Version:  jsonSchemaVersion,
		Count:    len(diags),
		Findings: make([]jsonFinding, 0, len(diags)),
	}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			File:     relFindingPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// writeGitHub emits one ::error workflow command per finding. GitHub
// parses these from stdout of any CI step and renders them as inline
// annotations on the PR diff.
func writeGitHub(w io.Writer, root string, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=%s::%s\n",
			githubEscapeProperty(relFindingPath(root, d.Pos.Filename)),
			d.Pos.Line, d.Pos.Column,
			githubEscapeProperty("sqlint/"+d.Analyzer),
			githubEscapeData(d.Message))
	}
}

// githubEscapeData escapes a workflow-command message value per the
// GitHub Actions toolkit rules.
func githubEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// githubEscapeProperty escapes a workflow-command property value, which
// additionally reserves ':' and ','.
func githubEscapeProperty(s string) string {
	s = githubEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
