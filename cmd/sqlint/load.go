package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// loader parses and type-checks packages of one module using only the
// standard library: go/build resolves build-tag-filtered file sets,
// go/parser produces syntax, and go/types checks it. Imports within the
// module are loaded recursively from source; all other imports (the
// standard library) are delegated to the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	ctxt    build.Context
	module  string // module path from go.mod
	rootDir string // directory containing go.mod
	std     types.Importer

	pkgs    map[string]*loadedPackage
	loading map[string]bool
}

// loadedPackage is one parsed and type-checked package.
type loadedPackage struct {
	path  string
	dir   string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// newLoader returns a loader for the module rooted at rootDir with the
// given module path. Extra build tags (e.g. sqdebug) widen the file set.
func newLoader(rootDir, module string, tags []string) *loader {
	fset := token.NewFileSet()
	ctxt := build.Default
	ctxt.BuildTags = append(append([]string(nil), ctxt.BuildTags...), tags...)
	return &loader{
		fset:    fset,
		ctxt:    ctxt,
		module:  module,
		rootDir: rootDir,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*loadedPackage{},
		loading: map[string]bool{},
	}
}

// dirFor maps a module-local import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.rootDir
	}
	rel := strings.TrimPrefix(path, l.module+"/")
	return filepath.Join(l.rootDir, filepath.FromSlash(rel))
}

// local reports whether the import path belongs to the loaded module.
func (l *loader) local(path string) bool {
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

// load parses and type-checks the module-local package at the given import
// path, memoized.
func (l *loader) load(path string) (*loadedPackage, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	p := &loadedPackage{path: path, dir: dir, files: files, pkg: pkg, info: info}
	l.pkgs[path] = p
	return p, nil
}

// moduleImporter adapts the loader to types.Importer: module-local paths
// load from source, everything else falls through to the stdlib source
// importer.
type moduleImporter loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(m)
	if l.local(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

// findModuleRoot walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModuleRoot(dir string) (rootDir, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves command-line package patterns to module-local
// import paths. Supported forms: "./..." (every package under the module
// root), "dir/..." (every package under dir), plain directories, and
// import paths within the module. testdata, vendor and hidden directories
// are skipped.
func expandPatterns(l *loader, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := walkPackages(l, l.rootDir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			dir := strings.TrimSuffix(pat, "/...")
			paths, err := walkPackages(l, filepath.Join(l.rootDir, filepath.FromSlash(dir)))
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			// A directory or an import path.
			path := pat
			if strings.HasPrefix(pat, "./") || pat == "." {
				abs, err := filepath.Abs(pat)
				if err != nil {
					return nil, err
				}
				rel, err := filepath.Rel(l.rootDir, abs)
				if err != nil {
					return nil, err
				}
				if rel == "." {
					path = l.module
				} else {
					path = l.module + "/" + filepath.ToSlash(rel)
				}
			}
			add(path)
		}
	}
	return out, nil
}

// walkPackages finds every buildable package directory under root.
func walkPackages(l *loader, root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctxt.ImportDir(p, 0); err != nil {
			return nil // no buildable Go files here: not a package
		}
		rel, err := filepath.Rel(l.rootDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.module)
		} else {
			out = append(out, l.module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}
