package main

import (
	"go/ast"
	"go/types"
)

// atomicalignAnalyzer is the fieldalign-style guard for 64-bit atomics:
// a uint64/int64 struct field operated on through the function-style
// sync/atomic API (atomic.AddUint64(&s.f, …)) must be 64-bit aligned, or
// the operation faults/mis-executes on 32-bit platforms (386, arm,
// mips…). The Go compiler only guarantees 64-bit alignment for the first
// word of an allocation and for the typed atomic.Int64/Uint64 wrappers
// (which embed an align64 marker since Go 1.19); a plain uint64 after an
// odd number of 32-bit fields silently loses the guarantee.
//
// The check computes field offsets under the 32-bit "386" layout — the
// strictest of the supported targets — and flags any atomically-accessed
// 64-bit field at an offset not divisible by 8. The fix is to move the
// field to the front of the struct, pad before it, or switch to the
// typed atomic wrappers (preferred in this codebase; see DESIGN.md).
var atomicalignAnalyzer = &Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit fields used with sync/atomic must stay 64-bit aligned under 32-bit layouts",
	Run:  runAtomicAlign,
}

func runAtomicAlign(pass *Pass) {
	atomicFields, _ := collectAtomicFields(pass)
	has64 := false
	for v := range atomicFields {
		if is64BitBasic(v.Type()) {
			has64 = true
			break
		}
	}
	if !has64 {
		return
	}
	sizes := types.SizesFor("gc", "386")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := pass.Info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			tStruct, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			checkStructAlignment(pass, sizes, st, tStruct, atomicFields)
			return true
		})
	}
}

// checkStructAlignment flags every atomically-accessed 64-bit field of the
// struct whose 386-layout offset is not a multiple of 8.
func checkStructAlignment(pass *Pass, sizes types.Sizes, st *ast.StructType, tStruct *types.Struct, atomicFields map[*types.Var]bool) {
	fields := make([]*types.Var, tStruct.NumFields())
	for i := range fields {
		fields[i] = tStruct.Field(i)
	}
	offsets := sizes.Offsetsof(fields)
	misaligned := map[*types.Var]int64{}
	for i, fv := range fields {
		if atomicFields[fv] && is64BitBasic(fv.Type()) && offsets[i]%8 != 0 {
			misaligned[fv] = offsets[i]
		}
	}
	if len(misaligned) == 0 {
		return
	}
	for _, astField := range st.Fields.List {
		for _, name := range astField.Names {
			fv, ok := pass.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if off, bad := misaligned[fv]; bad {
				pass.Reportf(name.Pos(), "64-bit atomic field %s sits at offset %d under a 32-bit layout; sync/atomic needs 8-byte alignment — move it first in the struct or use atomic.%s", name.Name, off, typedAtomicFor(fv.Type()))
			}
		}
	}
}

// is64BitBasic reports whether t's underlying type is a 64-bit integer —
// the kinds the sync/atomic *64 functions operate on.
func is64BitBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}

// typedAtomicFor names the typed sync/atomic wrapper for a 64-bit field —
// used in the fix suggestion.
func typedAtomicFor(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Int64 {
		return "Int64"
	}
	return "Uint64"
}
