package main

import (
	"go/ast"
	"go/types"
)

// gorotermAnalyzer extends the unbounded-goroutine rule in locks.go with a
// termination requirement on the serving paths: every `go` statement in a
// function reachable from a Query*/Handle*/Serve*/Build*/New*/main entry
// point must have a provable termination path. Two rules, applied to the
// goroutine body resolved through resolveGoBody (inline literals, local
// `worker := func(){}` bindings, package functions, and the `go w.loop()`
// method form):
//
//   - an unconditional `for {}` loop in the body must be able to hear a
//     stop signal: a select with a receive case, a bare channel receive,
//     or a range over a channel inside the loop. A WaitGroup does NOT
//     excuse an infinite loop — a tracked goroutine that never calls Done
//     deadlocks the Wait instead of leaking, which is not better;
//   - a straight-line body must leave termination evidence the launcher
//     (or a drain guard) can observe: a channel send or close, a
//     WaitGroup.Done, a receive, a select, a range over a channel — or
//     the launching function itself must use a WaitGroup.
//
// Goroutines running a callee from another package resolve to nil and are
// trusted: the callee owns its lifecycle, and whole-program analysis is
// out of scope (see resolveGoBody). Genuinely process-lifetime goroutines
// carry an `//sqlint:ignore goroterm <reason>` or a baseline entry.
var gorotermAnalyzer = &Analyzer{
	Name: "goroterm",
	Doc:  "goroutines on serving paths must have a provable termination path",
	Applies: func(path string) bool {
		return pathMatchesAny(path,
			"internal/core", "internal/inflight", "internal/telemetry",
			"internal/index", "sqserver", "sqquery")
	},
	Run: runGoroterm,
}

func runGoroterm(pass *Pass) {
	reachable := reachableFuncs(pass, "Query", "Handle", "handle", "Serve", "serve", "Build", "New", "main")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); !ok || !reachable[obj] {
				continue
			}
			checkGoTermination(pass, fd)
		}
	}
}

func checkGoTermination(pass *Pass, fd *ast.FuncDecl) {
	localLits := localFuncBindings(pass, fd.Body)
	launcherWaits := funcUsesWaitGroup(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := resolveGoBody(pass, gs, localLits)
		if body == nil {
			return true // cross-package callee: trusted to own its lifecycle
		}
		for _, loop := range infiniteLoops(body) {
			if !loopReceivesSignal(pass, loop) {
				pass.Reportf(gs.Pos(), "goroutine launched in %s loops forever with no way to hear a stop signal; select on a Cancel/stop channel inside the loop", fd.Name.Name)
				return true
			}
		}
		if !bodyHasTerminationEvidence(pass, body) && !launcherWaits {
			pass.Reportf(gs.Pos(), "goroutine launched in %s has no provable termination path; track it with a WaitGroup, signal completion over a channel, or select on cancellation", fd.Name.Name)
		}
		return true
	})
}

// funcUsesWaitGroup reports whether body touches a sync.WaitGroup
// (Add/Done/Wait) — the launcher-side completion bound locks.go accepts.
func funcUsesWaitGroup(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Add", "Done", "Wait":
				if isNamedType(pass.Info.Types[sel.X].Type, "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// infiniteLoops collects the unconditional `for {}` statements directly in
// body, not descending into nested function literals (those run on their
// own goroutine or call site and are analyzed where they are launched).
func infiniteLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				out = append(out, n)
			}
		}
		return true
	})
	return out
}

// loopReceivesSignal reports whether the infinite loop body contains a way
// to hear a stop signal each iteration: a select with at least one receive
// case, a bare receive expression, or a range over a channel.
func loopReceivesSignal(pass *Pass, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if commIsReceive(cc.Comm) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info.Types[n.X].Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// commIsReceive reports whether a select comm clause statement is a
// receive (`case <-ch:` or `case v := <-ch:`); nil (default) and send
// clauses are not.
func commIsReceive(comm ast.Stmt) bool {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		un, ok := s.X.(*ast.UnaryExpr)
		return ok && un.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			un, ok := s.Rhs[0].(*ast.UnaryExpr)
			return ok && un.Op.String() == "<-"
		}
	}
	return false
}

// bodyHasTerminationEvidence reports whether the goroutine body contains
// something a launcher or drain guard can observe ending: a send, a
// close, a WaitGroup.Done, a receive, a select, or a range over a channel
// (which ends when the owner closes it).
func bodyHasTerminationEvidence(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info.Types[n.X].Type) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isNamedType(pass.Info.Types[sel.X].Type, "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
