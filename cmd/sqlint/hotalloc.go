package main

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// hotallocAnalyzer enforces the zero-allocation discipline of the query hot
// path: the per-data-graph loops of internal/core and the per-candidate /
// per-vertex loops of internal/matching run once per graph in the database
// (or once per candidate vertex), so any heap allocation inside them scales
// with database size and defeats the scratch-arena design. Inside a loop in
// a hot file the analyzer flags:
//
//   - make and new: per-iteration slice/map/pointer allocation — take the
//     buffer from the matching.Scratch arena (or hoist it) instead;
//   - the arena constructors NewCandidates and NewScratch: arenas exist to
//     be acquired once per query or per worker, never per graph;
//   - append onto a fresh slice (append(nil, ...), append([]T{...}, ...),
//     append([]T(nil), x...) clones): the backing array is reallocated
//     every iteration — append into a scratch-owned buffer (whose capacity
//     survives iterations) truncated with [:0] instead.
//
// Cold allocations that genuinely belong in a loop (error paths, one-time
// growth) are suppressed with a justified //sqlint:ignore hotalloc comment.
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid per-iteration heap allocation (make/new/arena constructors/append into fresh slices) in hot-path loops",
	Applies: func(path string) bool {
		return pathMatchesAny(path, "internal/matching", "internal/core", "internal/telemetry", "internal/inflight", "internal/domain")
	},
	Run: runHotalloc,
}

// hotallocFiles names the files whose loops are the query hot path: the
// engine drivers that loop over data graphs (internal/core) and the filter,
// ordering and enumeration stages that loop over candidates
// (internal/matching). Other files in the same packages — index builders,
// one-shot setup, baselines outside the measured engines — may allocate in
// loops freely.
var hotallocFiles = map[string]bool{
	// internal/matching: per-candidate and per-vertex loops.
	"candidates.go": true,
	"cfl.go":        true,
	"graphql.go":    true,
	"enumerate.go":  true,
	"bipartite.go":  true,
	"scratch.go":    true,
	"matching.go":   true,
	// internal/core: per-data-graph loops.
	"vcfv.go":     true,
	"parallel.go": true,
	"ivcfv.go":    true,
	// internal/telemetry: the per-query fast path — fingerprinting
	// (refinement loops over pooled buffers), event construction, the
	// sampling decision in Emit, and Profile.Record's eviction scan — must
	// stay allocation-free so telemetry never taxes the queries it
	// measures.
	"fingerprint.go": true,
	"event.go":       true,
	"export.go":      true,
	"profile.go":     true,
	// internal/domain: the bit-matrix candidate domains every filter's
	// per-vertex loops mutate — Add/Remove/Row run once per candidate
	// vertex, so the whole package is hot.
	"domain.go": true,
	"switch.go": true,
	// internal/inflight: the live-handle fast path — progress ticks land on
	// the handle's atomic counters from the enumeration loop, and the
	// registry's slot claim runs per query. Snapshotting (snapshot.go) is the
	// cold inspection path and may allocate freely.
	"handle.go": true,
}

// hotallocConstructors are the arena constructors that must never run per
// iteration: the whole point of the arena is one acquisition per query (or
// per worker), reused across every graph.
var hotallocConstructors = map[string]bool{
	"NewCandidates": true,
	"NewScratch":    true,
}

func runHotalloc(pass *Pass) {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if !hotallocFiles[base] {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			if loopDepth(stack) == 0 {
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := builtinAllocName(pass.Info, call); name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s inside a hot-path loop allocates per iteration; take the buffer from the Scratch arena or hoist it", name)
				return true
			case "append":
				if len(call.Args) > 0 && freshSliceExpr(call.Args[0]) {
					pass.Reportf(call.Pos(), "append onto a fresh slice reallocates its backing array per iteration; append into a scratch-owned buffer truncated with [:0]")
				}
				return true
			}
			if name := calleeName(call); hotallocConstructors[name] {
				pass.Reportf(call.Pos(), "%s inside a hot-path loop defeats the arena; acquire one Scratch per query or per worker and reuse it", name)
			}
			return true
		})
	}
}

// freshSliceExpr reports whether the expression denotes a slice that is
// created on the spot — a composite literal, a conversion like []T(nil), a
// make/new result, or the nil literal — so appending to it must allocate a
// new backing array.
func freshSliceExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		// Both conversions ([]T(x)) and allocation calls (make([]T, n))
		// produce a value with no reusable backing of its own.
		return true
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.ParenExpr:
		return freshSliceExpr(e.X)
	}
	return false
}

// builtinAllocName returns "make", "new" or "append" if call invokes that
// builtin (resolved through the type info, so shadowing doesn't confuse
// it), else "".
func builtinAllocName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return ""
	}
	switch name := b.Name(); name {
	case "make", "new", "append":
		return name
	default:
		return ""
	}
}

// calleeName returns the bare function name of a call: the selector name
// for qualified calls (matching.NewScratch), the identifier for local ones.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
