package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one project-specific static check. The driver runs every
// analyzer over every loaded package; analyzers decide for themselves
// (via their applies hook) which import paths they care about.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //sqlint:ignore directives.
	Name string
	// Doc is a one-line description printed by -help.
	Doc string
	// Applies reports whether the analyzer runs on the package with the
	// given import path; nil means "all packages".
	Applies func(path string) bool
	// Run inspects one type-checked package and reports findings.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // import path
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //sqlint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // nil means "all"
	reason    string
	pos       token.Pos
}

const ignorePrefix = "//sqlint:ignore"

// collectIgnores parses //sqlint:ignore directives from the files of one
// package. A directive suppresses matching diagnostics on its own line and
// on the line directly below it. Directives without a reason are
// themselves reported: a suppression must say why.
func collectIgnores(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				d := ignoreDirective{file: pos.Filename, line: pos.Line, reason: reason, pos: c.Pos()}
				if names != "all" {
					d.analyzers = map[string]bool{}
					for _, n := range strings.Split(names, ",") {
						d.analyzers[strings.TrimSpace(n)] = true
					}
				}
				if names == "" || reason == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "sqlint",
						Message:  "malformed ignore directive: want //sqlint:ignore <analyzer[,analyzer]|all> <reason>",
					})
					continue
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyIgnores drops diagnostics covered by a directive on the same line
// or the line above.
func applyIgnores(diags []Diagnostic, ignores []ignoreDirective) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	type key struct {
		file string
		line int
	}
	byLine := map[key][]ignoreDirective{}
	for _, ig := range ignores {
		byLine[key{ig.file, ig.line}] = append(byLine[key{ig.file, ig.line}], ig)
		byLine[key{ig.file, ig.line + 1}] = append(byLine[key{ig.file, ig.line + 1}], ig)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range byLine[key{d.Pos.Filename, d.Pos.Line}] {
			if ig.analyzers == nil || ig.analyzers[d.Analyzer] {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathMatchesAny reports whether the import path contains one of the given
// fragments — the analyzers' package scoping test. Matching by fragment
// (not exact path) lets the golden-file testdata use a different module
// name while exercising the same rules.
func pathMatchesAny(path string, fragments ...string) bool {
	for _, f := range fragments {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}
