package main

import (
	"go/ast"
	"go/types"
)

// recoverhygieneAnalyzer enforces the panic-isolation contract on the query
// path (DESIGN.md, "Resilience"): a goroutine launched in internal/core or
// cmd/sqserver from a function reachable from a Query*/handle* entry point
// must recover its own panics. A panic escaping any goroutine kills the
// whole process — the spawner cannot catch it — so one poisoned data graph
// in a worker pool would turn into a full outage instead of a skipped
// graph. A goroutine passes when its body (resolved through local
// `worker := func() {...}` bindings and intra-package named functions)
// defers a recover: either a func literal calling recover() or an
// intra-package function that does.
var recoverhygieneAnalyzer = &Analyzer{
	Name: "recoverhygiene",
	Doc:  "goroutines on the query path must recover their own panics",
	Applies: func(path string) bool {
		return pathMatchesAny(path, "internal/core", "sqserver")
	},
	Run: runRecoverHygiene,
}

func runRecoverHygiene(pass *Pass) {
	recovers := packageRecoverFuncs(pass)
	reachable := reachableFuncs(pass, "Query", "Handle", "handle")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); !ok || !reachable[obj] {
				continue
			}
			checkGoRecovers(pass, fd, recovers)
		}
	}
}

// packageRecoverFuncs collects the package-level functions whose body calls
// recover() — the reusable guard functions a goroutine may defer.
func packageRecoverFuncs(pass *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if callsRecover(fd.Body) {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// checkGoRecovers flags every `go` statement in fd whose goroutine body
// cannot be shown to establish a recover boundary.
func checkGoRecovers(pass *Pass, fd *ast.FuncDecl, recovers map[*types.Func]bool) {
	// Local `name := func() {...}` bindings, so `go worker()` resolves.
	localLits := localFuncBindings(pass, fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := resolveGoBody(pass, gs, localLits)
		if body == nil {
			pass.Reportf(gs.Pos(), "goroutine in %s on the query path runs a function this analyzer cannot resolve; inline a func literal with a deferred recover", fd.Name.Name)
			return true
		}
		if !bodyDefersRecover(pass, body, recovers) {
			pass.Reportf(gs.Pos(), "goroutine in %s on the query path has no recover boundary; a panic here kills the process — defer a recover (see graphGuard/queryGuard in internal/core)", fd.Name.Name)
		}
		return true
	})
}

// bodyDefersRecover reports whether the goroutine body defers a recover:
// `defer func() { ...recover()... }()` or `defer guard(...)` where guard is
// an intra-package function that recovers.
func bodyDefersRecover(pass *Pass, body *ast.BlockStmt, recovers map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		switch fun := ds.Call.Fun.(type) {
		case *ast.FuncLit:
			if callsRecover(fun.Body) {
				found = true
			}
		case *ast.Ident:
			if tf, ok := pass.Info.Uses[fun].(*types.Func); ok && recovers[tf] {
				found = true
			}
		case *ast.SelectorExpr:
			if tf, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && recovers[tf] {
				found = true
			}
		}
		return !found
	})
	return found
}

// callsRecover reports whether the node contains a call to the recover
// builtin (matched by name; nothing in this codebase shadows it).
func callsRecover(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
			found = true
		}
		return !found
	})
	return found
}
