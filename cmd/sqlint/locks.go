package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// locksAnalyzer enforces the concurrency hygiene rules:
//
//   - no sync.Mutex / RWMutex / WaitGroup / Once / Cond / Pool / Map
//     received, passed or returned by value — a copied lock guards
//     nothing (receivers are where `go vet` users get bitten most: a
//     value receiver silently copies the struct and its mutex);
//   - no map writes on fields of engine/index structs (types with a
//     Query, Build, Filter or Insert method in internal/core or
//     internal/index) in methods reachable from a Query*/Filter* entry
//     point, unless the writing function also takes a lock — these
//     structs are shared across queries and, for the parallel engines,
//     across goroutines. Build-time writes are exempt: construction is
//     single-writer by contract (callers may not query a half-built
//     engine), so flagging them would only teach people to sprinkle
//     locks on cold paths;
//   - no goroutine launched without a visible completion bound: the
//     launching function must use a sync.WaitGroup, or the goroutine
//     body must signal completion over a channel (send or close).
var locksAnalyzer = &Analyzer{
	Name: "locks",
	Doc:  "flag copied locks, unguarded engine-state map writes, and unbounded goroutines",
	Run:  runLocks,
}

func runLocks(pass *Pass) {
	reachable := queryReachableFuncs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fd)
			checkEngineMapWrites(pass, fd, reachable)
			checkGoroutineBounds(pass, fd)
		}
	}
}

// queryReachableFuncs computes the functions of this package reachable
// from a query-path entry point: any method or function whose name starts
// with Query or Filter, closed under intra-package calls. Map writes are
// only racy when a concurrent query can execute them, so the map-write
// rule confines itself to this set; Build-time construction stays exempt.
func queryReachableFuncs(pass *Pass) map[*types.Func]bool {
	return reachableFuncs(pass, "Query", "Filter")
}

// reachableFuncs computes the functions of this package reachable from any
// method or function whose name starts with one of the prefixes, closed
// under intra-package calls.
func reachableFuncs(pass *Pass, prefixes ...string) map[*types.Func]bool {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	reachable := map[*types.Func]bool{}
	var queue []*types.Func
	for obj := range decls {
		for _, p := range prefixes {
			if strings.HasPrefix(obj.Name(), p) {
				reachable[obj] = true
				queue = append(queue, obj)
				break
			}
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		fd := decls[obj]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *types.Func
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				callee, _ = pass.Info.Uses[fun.Sel].(*types.Func)
			case *ast.Ident:
				callee, _ = pass.Info.Uses[fun].(*types.Func)
			}
			if callee == nil {
				return true
			}
			if _, local := decls[callee]; local && !reachable[callee] {
				reachable[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	return reachable
}

// checkLockCopies flags by-value locks in the receiver, parameters and
// results of fd.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	check := func(field *ast.Field, role string) {
		if len(field.Names) == 0 && role != "receiver" && role != "result" {
			role = "parameter"
		}
		t := pass.Info.Types[field.Type].Type
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if name := lockTypeName(t); name != "" {
			pass.Reportf(field.Pos(), "%s %s copies %s by value; use a pointer", role, types.ExprString(field.Type), name)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			check(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			check(field, "parameter")
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			check(field, "result")
		}
	}
}

// engineMethodNames marks a struct as engine/index state: anything
// answering queries or holding a built index is shared across queries and
// workers.
var engineMethodNames = map[string]bool{
	"Query": true, "Build": true, "Filter": true, "Insert": true, "InsertGraph": true,
}

// checkEngineMapWrites flags `recv.field[k] = v` (and delete/IncDec forms)
// in engine/index methods reachable from a Query*/Filter* entry point when
// the writing function never takes a lock.
func checkEngineMapWrites(pass *Pass, fd *ast.FuncDecl, reachable map[*types.Func]bool) {
	if fd.Recv == nil || fd.Body == nil {
		return
	}
	if !pathMatchesAny(pass.Path, "internal/core", "internal/index") {
		return
	}
	if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); !ok || !reachable[obj] {
		return
	}
	recvField := fd.Recv.List[0]
	if len(recvField.Names) == 0 {
		return
	}
	recvName := recvField.Names[0].Name
	named := namedFrom(pass.Info.Types[recvField.Type].Type)
	if named == nil || !isEngineType(named) {
		return
	}
	locked := funcTakesLock(fd.Body)

	report := func(idx *ast.IndexExpr) {
		if locked {
			return
		}
		t := pass.Info.Types[idx.X].Type
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		root := rootIdent(idx.X)
		if root == nil || root.Name != recvName {
			return
		}
		pass.Reportf(idx.Pos(), "map write on engine state %s in method %s without holding a lock; engines are shared across queries and workers", types.ExprString(idx.X), fd.Name.Name)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					report(idx)
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := st.X.(*ast.IndexExpr); ok {
				report(idx)
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) > 0 {
				if idx, ok := st.Args[0].(*ast.IndexExpr); ok {
					report(idx)
				}
			}
		}
		return true
	})
}

// isEngineType reports whether the named type declares one of the
// engine/index entry-point methods.
func isEngineType(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if engineMethodNames[named.Method(i).Name()] {
			return true
		}
	}
	return false
}

// funcTakesLock reports whether the body contains a *.Lock() call.
func funcTakesLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkGoroutineBounds flags `go` statements whose completion nothing can
// wait on.
func checkGoroutineBounds(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	usesWaitGroup := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Add" || sel.Sel.Name == "Done" || sel.Sel.Name == "Wait" {
			if isNamedType(pass.Info.Types[sel.X].Type, "sync", "WaitGroup") {
				usesWaitGroup = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if usesWaitGroup || goroutineSignalsCompletion(gs) {
			return true
		}
		pass.Reportf(gs.Pos(), "goroutine in %s has no completion bound; use a sync.WaitGroup or signal completion over a channel", fd.Name.Name)
		return true
	})
}

// goroutineSignalsCompletion reports whether the goroutine body contains a
// channel send, a close(), or a WaitGroup Done — some way for the launcher
// to observe it finishing.
func goroutineSignalsCompletion(gs *ast.GoStmt) bool {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		// `go pkg.F(ch)` — assume the callee owns its signaling; flagging
		// would need whole-program analysis.
		return true
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch c := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		}
		return !found
	})
	return found
}
