package main

import (
	"go/ast"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// errwrapAnalyzer enforces the module's error conventions:
//
//   - an error operand formatted into fmt.Errorf must use %w, not %v or
//     %s: without the wrap verb, errors.Is/As cannot see through the
//     layer and callers lose sentinel matching (index.ErrBudget is
//     matched with errors.Is across package boundaries);
//   - errors.New with a constant message belongs at package level as a
//     sentinel var, where callers can errors.Is against it — inside a
//     function body it mints an unmatchable fresh error per call;
//   - error strings are Go style: no capitalized first word, no trailing
//     punctuation or newline (they get wrapped and composed).
var errwrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc:  "enforce %w wrapping, package-level sentinels, and error string style",
	Run:  runErrwrap,
}

func runErrwrap(pass *Pass) {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pkgFuncCall(pass.Info, call, "fmt", "Errorf"):
				checkErrorf(pass, call)
			case pkgFuncCall(pass.Info, call, "errors", "New"):
				checkErrorsNew(pass, call, stack)
			}
			return true
		})
	}
}

// checkErrorf verifies the format string's verbs against error-typed
// operands and the error string style.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := stringLiteral(call.Args[0])
	if !ok {
		return
	}
	checkErrorString(pass, call.Args[0], format)
	verbs := formatVerbs(format)
	for i, v := range verbs {
		argIx := i + 1
		if argIx >= len(call.Args) {
			break
		}
		if v != 'v' && v != 's' {
			continue
		}
		t := pass.Info.Types[call.Args[argIx]].Type
		if t != nil && implementsError(t) {
			pass.Reportf(call.Args[argIx].Pos(), "error operand formatted with %%%c; use %%w so callers can errors.Is/As through the wrap", v)
		}
	}
}

// checkErrorsNew flags dynamic sentinel construction inside functions.
func checkErrorsNew(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 1 {
		if msg, ok := stringLiteral(call.Args[0]); ok {
			checkErrorString(pass, call.Args[0], msg)
		}
	}
	if fn, _ := enclosingFunc(stack); fn != nil {
		pass.Reportf(call.Pos(), "errors.New inside a function mints an unmatchable error per call; declare a package-level sentinel var or use fmt.Errorf with context")
	}
}

// checkErrorString applies Go error-string style: lower-case start (unless
// the first word is an identifier-like token), no trailing punctuation.
func checkErrorString(pass *Pass, arg ast.Expr, s string) {
	if s == "" {
		return
	}
	if strings.HasSuffix(s, ".") || strings.HasSuffix(s, "!") || strings.HasSuffix(s, "\n") {
		pass.Reportf(arg.Pos(), "error string ends with punctuation or newline; error strings are composed into longer messages")
	}
	first, size := utf8.DecodeRuneInString(s)
	if unicode.IsUpper(first) && size < len(s) {
		next, _ := utf8.DecodeRuneInString(s[size:])
		// An all-caps or CamelCase first token is an identifier (CSR, Explain,
		// GraphQL) — allowed; a capitalized ordinary word is not.
		if unicode.IsLower(next) && !firstWordHasLaterUpper(s) {
			pass.Reportf(arg.Pos(), "error string starts with a capitalized word; error strings are not sentences")
		}
	}
}

// firstWordHasLaterUpper reports whether the first whitespace-delimited
// word contains an upper-case rune after its first — a CamelCase
// identifier like GraphQL or TreePi.
func firstWordHasLaterUpper(s string) bool {
	word := s
	if ix := strings.IndexAny(s, " \t:"); ix >= 0 {
		word = s[:ix]
	}
	for i, r := range word {
		if i > 0 && unicode.IsUpper(r) {
			return true
		}
	}
	return false
}

// stringLiteral unquotes a basic string literal expression.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// formatVerbs extracts the verb letters of a printf format string in
// operand order. Width/precision stars consume an operand and are
// recorded as '*'; %% is skipped.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Scan flags, width, precision, then the verb letter.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.[]", rune(c)) {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs
}
