package main

import (
	"go/ast"
	"go/types"
)

// hotpathAnalyzer enforces the enumeration/refinement hot-path rules of
// internal/matching and internal/core:
//
//   - no fmt.Sprintf-family calls inside a loop: the per-candidate and
//     per-embedding loops run millions of times per query, and one
//     formatted string per iteration turns an engine into an allocator
//     benchmark (error paths via fmt.Errorf are exempt — they fire once);
//   - every obs.Observer method call inside a loop must be guarded by an
//     `o != nil` check: calling a method on a nil interface panics, and
//     the guard is also what keeps the nil-Observer path branch-cheap;
//   - every *obs.Explain method call inside a loop must likewise sit
//     behind a nil guard (the methods are nil-safe, but the convention
//     keeps the nil-Explain path zero-allocation and makes the cost of
//     instrumentation visible at the call site).
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation-heavy constructs and unguarded Observer/Explain calls in enumeration loops",
	Applies: func(path string) bool {
		return pathMatchesAny(path, "internal/matching", "internal/core")
	},
	Run: runHotpath,
}

// sprintfFamily is the set of fmt functions that allocate on every call.
// fmt.Errorf is deliberately absent: error construction is a cold path.
var sprintfFamily = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Printf": true, "Println": true, "Print": true,
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if loopDepth(stack) == 0 {
				return true
			}
			if name := sprintfCallName(pass.Info, call); name != "" {
				pass.Reportf(call.Pos(), "fmt.%s inside a loop allocates per iteration; hoist it or build the value without fmt", name)
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvType := pass.Info.Types[sel.X].Type
			recvStr := types.ExprString(sel.X)
			switch {
			case isNamedType(recvType, "obs", "Observer"):
				if !nilGuarded(stack, recvStr) {
					pass.Reportf(call.Pos(), "Observer call %s.%s in a loop without a %s != nil guard; a nil Observer panics here and the guard keeps the disabled path free", recvStr, sel.Sel.Name, recvStr)
				}
			case isNamedType(recvType, "obs", "Explain"):
				if !nilGuarded(stack, recvStr) {
					pass.Reportf(call.Pos(), "Explain call %s.%s in a loop without a %s != nil guard; keep the nil-Explain hot path zero-cost", recvStr, sel.Sel.Name, recvStr)
				}
			}
			return true
		})
	}
}

// sprintfCallName returns the fmt function name if call is an
// allocation-heavy fmt call, else "".
func sprintfCallName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if !sprintfFamily[sel.Sel.Name] {
		return ""
	}
	if pkgFuncCall(info, call, "fmt", sel.Sel.Name) {
		return sel.Sel.Name
	}
	return ""
}
