package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxbudgetAnalyzer enforces the timeout/budget threading convention of
// the query path: every exported Query*, Filter* or Build* entry point in
// internal/core, internal/index and internal/matching must accept a way
// to bound its work — an options struct carrying a Deadline field (the
// project convention: core.QueryOptions, core.BuildOptions,
// index.BuildOptions, matching.Options), a bare time.Time deadline, or a
// context.Context. The paper runs every query under a 10-minute deadline
// and every index build under 24 hours; an entry point that cannot be
// bounded silently escapes both.
//
// Exemptions: functions with no parameters (nothing to bound),
// constructors (New*), and sites annotated //sqlint:ignore ctxbudget with
// a justification (e.g. index probes whose cost is bounded by the built
// structure).
var ctxbudgetAnalyzer = &Analyzer{
	Name: "ctxbudget",
	Doc:  "exported Query/Filter/Build paths must thread a deadline or budget",
	Applies: func(path string) bool {
		return pathMatchesAny(path, "internal/core", "internal/index", "internal/matching")
	},
	Run: runCtxBudget,
}

var budgetKeywords = []string{"Query", "Filter", "Build"}

func runCtxBudget(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			name := fd.Name.Name
			kw := matchedKeyword(name)
			if kw == "" {
				continue
			}
			if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
				continue // accessors like Result.QueryTime: nothing to bound
			}
			if hasBudgetParam(pass.Info, fd) {
				continue
			}
			recv := ""
			if fd.Recv != nil {
				recv = types.ExprString(fd.Recv.List[0].Type) + "."
			}
			pass.Reportf(fd.Name.Pos(), "%s%s is a %s path without a deadline/budget parameter; thread an options struct with a Deadline, a time.Time, or a context.Context", recv, name, kw)
		}
	}
}

// matchedKeyword returns the Query/Filter/Build keyword the function name
// carries, or "". Constructors (New*) are exempt: they configure, they do
// not traverse.
func matchedKeyword(name string) string {
	if strings.HasPrefix(name, "New") {
		return ""
	}
	for _, kw := range budgetKeywords {
		if strings.Contains(name, kw) {
			return kw
		}
	}
	return ""
}

// hasBudgetParam reports whether some parameter can bound the work: a
// struct (or pointer to one) with a Deadline field, a time.Time, or a
// context.Context.
func hasBudgetParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if isNamedType(t, "time", "Time") || isNamedType(t, "context", "Context") {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() == "Deadline" || strings.Contains(f.Name(), "Budget") || strings.Contains(f.Name(), "Max") {
					return true
				}
			}
		}
	}
	return false
}
