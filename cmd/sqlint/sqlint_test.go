package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDiags lints the testdata module and returns its diagnostics.
func fixtureDiags(t *testing.T, only []string) []Diagnostic {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(dir, []string{"./..."}, nil, only)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	return diags
}

// render formats diagnostics the way the command does, with paths relative
// to the fixture module root.
func render(t *testing.T, diags []Diagnostic) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, d := range diags {
		rel, err := filepath.Rel(dir, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return buf.String()
}

// TestGolden pins every diagnostic the fixture module produces. Regenerate
// with:
//
//	SQLINT_UPDATE_GOLDEN=1 go test ./cmd/sqlint -run TestGolden
func TestGolden(t *testing.T) {
	got := render(t, fixtureDiags(t, nil))
	goldenPath := filepath.Join("testdata", "golden.txt")
	if os.Getenv("SQLINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (set SQLINT_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestEveryAnalyzerHasTruePositive guards the fixture itself: each
// registered analyzer (plus the driver's malformed-directive check) must
// catch at least one planted bug, or a silently broken analyzer would pass
// the golden test with an empty section.
func TestEveryAnalyzerHasTruePositive(t *testing.T) {
	counts := map[string]int{}
	for _, d := range fixtureDiags(t, nil) {
		counts[d.Analyzer]++
	}
	for _, a := range analyzers {
		if counts[a.Name] == 0 {
			t.Errorf("analyzer %s produced no findings on the fixture module", a.Name)
		}
	}
	if counts["sqlint"] == 0 {
		t.Errorf("malformed ignore directive in the fixture was not reported")
	}
}

// TestOnlyFilter checks the -only analyzer selection.
func TestOnlyFilter(t *testing.T) {
	diags := fixtureDiags(t, []string{"errwrap"})
	if len(diags) == 0 {
		t.Fatal("no errwrap findings with -only=errwrap")
	}
	for _, d := range diags {
		if d.Analyzer != "errwrap" && d.Analyzer != "sqlint" {
			t.Errorf("-only=errwrap let %s finding through: %s", d.Analyzer, d.Message)
		}
	}
}

// TestSuppressionsApplied checks that the fixture's justified ignore
// directives removed their targets: the suppressed Sprintf and the
// suppressed index probe must not appear.
func TestSuppressionsApplied(t *testing.T) {
	out := render(t, fixtureDiags(t, nil))
	for _, banned := range []string{"suppressed", "FilterBounded"} {
		if strings.Contains(out, banned) {
			t.Errorf("suppressed finding %q leaked into output:\n%s", banned, out)
		}
	}
}

// TestCleanTree is the acceptance gate: the real module must lint clean
// modulo the checked-in baseline, and the baseline itself must carry no
// stale entries (a fixed finding leaves its line behind otherwise).
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs (CI runs sqlint directly)")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(root, []string{"./..."}, nil, nil)
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	base, err := parseBaseline("baseline.txt")
	if err != nil {
		t.Fatalf("parseBaseline: %v", err)
	}
	surviving, stale := applyBaseline(root, diags, base)
	for _, d := range surviving {
		t.Errorf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	for _, k := range stale {
		t.Errorf("stale baseline entry (finding fixed — delete the line): %s", k)
	}
}
