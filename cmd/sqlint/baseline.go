package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The baseline lets new analyzers land strict-on-new-code: findings that
// predate an analyzer are recorded in a checked-in file and tolerated,
// while anything not listed fails the build. Entries are keyed by
// `path: analyzer: message` — deliberately line-number-free, so unrelated
// edits shifting a file do not invalidate the baseline, while any change
// to the finding itself (moved file, altered code) forces the entry to be
// re-justified or the bug to be fixed.
//
// File format: one key per line; blank lines and #-comments ignored. A
// finding occurring N times needs N identical lines.

// parseBaseline reads a baseline file into a multiset of finding keys.
func parseBaseline(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read baseline %s: %w", path, err)
	}
	return base, nil
}

// baselineKey renders the line-number-independent identity of a finding.
func baselineKey(root string, d Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", relFindingPath(root, d.Pos.Filename), d.Analyzer, d.Message)
}

// applyBaseline filters diags against the baseline multiset. It returns
// the surviving (non-baselined) diagnostics and the stale entries —
// baseline lines that matched nothing, each a finding that has been fixed
// and should be deleted from the file. Stale entries warn rather than
// fail: a burndown should never be punished for overshooting.
func applyBaseline(root string, diags []Diagnostic, base map[string]int) (surviving []Diagnostic, stale []string) {
	remaining := make(map[string]int, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	for _, d := range diags {
		k := baselineKey(root, d)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		surviving = append(surviving, d)
	}
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return surviving, stale
}
