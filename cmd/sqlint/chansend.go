package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// chansendAnalyzer enforces channel discipline in the code reachable from
// the serving entry points (Query*/Handle*/Serve*). Three rules:
//
//   - a blocking send must either sit in a select with at least one other
//     case (cancellation, stop, or default) or go to a channel provably
//     declared with a capacity. A bare send to an unbuffered channel
//     wedges the sender the moment the other side stops receiving —
//     which on the query path means a cancelled query leaks its producer
//     goroutine forever (exactly the bug class the worker pools in
//     internal/core are shaped to avoid);
//   - a blocking receive must sit in such a select, be a completion wait
//     on a channel this function made and hands to its own goroutine to
//     close/send (the `<-done` join idiom), or receive from a call result
//     (`<-time.After(d)`, `<-ctx.Done()` — channels whose producer is the
//     callee's contract). Buffering does not excuse a receive: an empty
//     buffered channel blocks exactly like an unbuffered one;
//   - `close` may only be called by the owning side: closing a channel
//     received as a parameter hands a send-side responsibility to a
//     consumer, and a later send by the real owner panics.
//
// Receives in `for v := range ch` are exempt — range ends when the owner
// closes the channel, and the close-ownership rule polices the other end.
var chansendAnalyzer = &Analyzer{
	Name: "chansend",
	Doc:  "blocking channel ops on serving paths need a cancellation case or buffered channel; close only what you own",
	Applies: func(path string) bool {
		return pathMatchesAny(path,
			"internal/core", "internal/inflight", "internal/telemetry", "sqserver")
	},
	Run: runChansend,
}

func runChansend(pass *Pass) {
	buffered := channelBufferFacts(pass)
	reachable := reachableFuncs(pass, "Query", "Handle", "handle", "Serve", "serve")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); !ok || !reachable[obj] {
				continue
			}
			checkChanOps(pass, fd, buffered)
		}
	}
}

// channelBufferFacts scans the whole package for `make(chan T, n)` bindings
// and maps the bound variable or struct field to whether every make it is
// given has a capacity. A variable made both ways collapses to unbuffered —
// the conservative answer.
func channelBufferFacts(pass *Pass) map[types.Object]bool {
	facts := map[types.Object]bool{}
	record := func(obj types.Object, buf bool) {
		if obj == nil {
			return
		}
		if prev, seen := facts[obj]; seen {
			facts[obj] = prev && buf
		} else {
			facts[obj] = buf
		}
	}
	objFor := func(e ast.Expr) types.Object {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Defs[e]; obj != nil {
				return obj
			}
			return pass.Info.Uses[e]
		case *ast.SelectorExpr:
			return pass.Info.Uses[e.Sel]
		}
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if buf, ok := makeChanCapacity(pass, rhs); ok {
						record(objFor(n.Lhs[i]), buf)
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if buf, ok := makeChanCapacity(pass, v); ok && i < len(n.Names) {
						record(objFor(n.Names[i]), buf)
					}
				}
			case *ast.KeyValueExpr:
				// Hub{out: make(chan int)} composite-literal field init.
				if buf, ok := makeChanCapacity(pass, n.Value); ok {
					if key, isIdent := n.Key.(*ast.Ident); isIdent {
						record(pass.Info.Uses[key], buf)
					}
				}
			}
			return true
		})
	}
	return facts
}

// makeChanCapacity reports whether e is a make of a channel, and if so
// whether it is given a non-zero capacity.
func makeChanCapacity(pass *Pass, e ast.Expr) (buffered, isMakeChan bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false, false
	}
	if !isChanType(pass.Info.Types[call.Args[0]].Type) {
		return false, false
	}
	if len(call.Args) < 2 {
		return false, true
	}
	// A constant zero capacity is unbuffered; a non-constant capacity is
	// taken at its word (the admission limiter sizes its semaphore from
	// config).
	if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Value != nil {
		if v, exact := constIntValue(tv); exact && v == 0 {
			return false, true
		}
	}
	return true, true
}

func constIntValue(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	s := tv.Value.ExactString()
	var v int64
	neg := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if i == 0 && c == '-' {
			neg = true
			continue
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// chanOperandObj resolves the channel operand of a send/receive to the
// variable or struct field it names, or nil for anything more complex.
func chanOperandObj(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.Info.Uses[e]
	case *ast.SelectorExpr:
		return pass.Info.Uses[e.Sel]
	}
	return nil
}

func checkChanOps(pass *Pass, fd *ast.FuncDecl, buffered map[types.Object]bool) {
	// Walk the declaration, not just the body, so the FuncDecl is on the
	// stack: enclosingFunc and isParamOf need it.
	walkStack(fd, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if selectHasAlternative(n, stack) {
				return true
			}
			if obj := chanOperandObj(pass, n.Chan); obj != nil && buffered[obj] {
				return true
			}
			pass.Reportf(n.Pos(), "blocking send on %s outside a select; a cancelled query wedges this goroutine forever — add a select with a Cancel/stop case or declare the channel with capacity", types.ExprString(n.Chan))
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if selectHasAlternative(n, stack) {
				return true
			}
			if _, isCall := ast.Unparen(n.X).(*ast.CallExpr); isCall {
				return true // <-time.After(d), <-ctx.Done(): callee-owned channel
			}
			obj := chanOperandObj(pass, n.X)
			if obj != nil && isCompletionWait(pass, stack, obj) {
				return true
			}
			pass.Reportf(n.Pos(), "blocking receive on %s with no cancellation path; select on it together with a Cancel/stop case", types.ExprString(n.X))
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if obj := chanOperandObj(pass, n.Args[0]); obj != nil && isParamOf(pass, stack, obj) {
					pass.Reportf(n.Pos(), "close(%s) closes a channel received as a parameter; only the sending/owning side may close a channel", types.ExprString(n.Args[0]))
				}
			}
		}
		return true
	})
}

// selectHasAlternative reports whether node n is the communication of a
// select case whose select has at least one other case — so the operation
// can lose the race to a cancellation (or default) instead of blocking.
// A single-case select is equivalent to the bare operation and does not
// qualify. The ancestor chain for a comm is SelectStmt → BlockStmt →
// CommClause → comm statement, and n must sit inside the comm statement,
// not the clause body.
func selectHasAlternative(n ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		case *ast.CommClause:
			var pathChild ast.Node = n
			if i+1 < len(stack) {
				pathChild = stack[i+1]
			}
			if s.Comm == nil || pathChild != s.Comm {
				return false
			}
			if i >= 2 {
				if sel, ok := stack[i-2].(*ast.SelectStmt); ok {
					return len(sel.Body.List) >= 2
				}
			}
			return false
		}
	}
	return false
}

// isCompletionWait reports whether obj is a channel the enclosing function
// makes itself and hands to a goroutine it launches to close or send on —
// the `done := make(chan struct{}); go func(){ ...; close(done) }(); <-done`
// join idiom, whose termination is owned entirely by this function. The
// goroutine body is resolved through local `worker := func(){}` bindings
// the same way recoverhygiene and goroterm resolve it.
func isCompletionWait(pass *Pass, stack []ast.Node, obj types.Object) bool {
	_, body := enclosingFunc(stack)
	if body == nil {
		return false
	}
	localLits := localFuncBindings(pass, body)
	madeHere := false
	goroutineSignals := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				def := pass.Info.Defs[id]
				if def == nil {
					def = pass.Info.Uses[id]
				}
				if def != obj {
					continue
				}
				if _, isMake := makeChanCapacity(pass, n.Rhs[i]); isMake {
					madeHere = true
				}
			}
		case *ast.GoStmt:
			gbody := resolveGoBody(pass, n, localLits)
			if gbody == nil {
				return true
			}
			ast.Inspect(gbody, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					if chanOperandObj(pass, m.Chan) == obj {
						goroutineSignals = true
					}
				case *ast.CallExpr:
					if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "close" && len(m.Args) == 1 {
						if chanOperandObj(pass, m.Args[0]) == obj {
							goroutineSignals = true
						}
					}
				}
				return !goroutineSignals
			})
		}
		return true
	})
	return madeHere && goroutineSignals
}

// isParamOf reports whether obj is declared as a parameter of any function
// enclosing the current node.
func isParamOf(pass *Pass, stack []ast.Node, obj types.Object) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if pass.Info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return false
}
