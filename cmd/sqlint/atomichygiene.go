package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomichygieneAnalyzer enforces the atomic-access discipline the
// concurrent layers (internal/inflight, internal/telemetry, internal/obs,
// the core worker pools) rely on. Three checks:
//
//   - mixed access: a struct field that is ever touched through a
//     sync/atomic function (atomic.AddUint64(&s.f, …), atomic.LoadInt64,
//     …) must be touched that way everywhere. A single plain read of an
//     atomically-written field is a data race the compiler is free to
//     tear, cache in a register, or reorder — and the race detector only
//     sees it on interleavings that actually execute;
//   - unguarded Pointer loads: dereferencing an atomic.Pointer[T].Load()
//     result in the same expression (p.Load().Field, *p.Load()) leaves no
//     room for the nil check a CAS-published slot needs — bind the result
//     and test it (`if h := p.Load(); h != nil { … }`). Method calls on
//     the result are allowed: this codebase's registry types document
//     nil-safe methods;
//   - stuck CAS loops: an unconditional `for {}` retry loop around a
//     CompareAndSwap must re-read the current value (a Load in the loop)
//     or back off (runtime.Gosched, time.Sleep, a select) — otherwise a
//     stale expected value spins the goroutine forever at 100% CPU.
//
// A typed atomic value (atomic.Int64, atomic.Pointer[T], …) read or
// written outside its method set (copied into a variable, returned by
// value) is also flagged: the copy severs it from the memory cell the
// other goroutines update.
var atomichygieneAnalyzer = &Analyzer{
	Name: "atomichygiene",
	Doc:  "atomically-accessed fields must never be accessed plainly; guard Pointer loads; CAS loops must reload or back off",
	Run:  runAtomicHygiene,
}

func runAtomicHygiene(pass *Pass) {
	atomicFields, atomicOperands := collectAtomicFields(pass)
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkPlainFieldAccess(pass, n, stack, atomicFields, atomicOperands)
				checkTypedAtomicCopy(pass, n, stack)
				checkPointerLoadDeref(pass, n)
			case *ast.StarExpr:
				if isAtomicPointerLoadCall(pass, n.X) {
					pass.Reportf(n.Pos(), "atomic.Pointer.Load result dereferenced without a nil guard; bind it and check (`if v := p.Load(); v != nil`)")
				}
			case *ast.ForStmt:
				checkCASLoop(pass, n)
			}
			return true
		})
	}
}

// atomicFuncPrefixes are the sync/atomic package-level operation families.
var atomicFuncPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"}

// isAtomicPkgFunc reports whether call invokes a sync/atomic package-level
// operation, returning its name.
func isAtomicPkgFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(sel.Sel.Name, p) {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// collectAtomicFields finds every struct field passed by address to a
// sync/atomic operation (atomic.AddUint64(&s.f, 1) marks f). It returns
// the field objects and the set of selector nodes that are those legal
// atomic operands, so the plain-access walk can skip them.
func collectAtomicFields(pass *Pass) (map[*types.Var]bool, map[*ast.SelectorExpr]bool) {
	fields := map[*types.Var]bool{}
	operands := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := isAtomicPkgFunc(pass.Info, call); !ok {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := selectedField(pass, sel); v != nil {
					fields[v] = true
					operands[sel] = true
				}
			}
			return true
		})
	}
	return fields, operands
}

// selectedField returns the *types.Var a selector resolves to when it is a
// struct field, or nil.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// checkPlainFieldAccess flags reads and writes of an atomically-accessed
// field that bypass sync/atomic.
func checkPlainFieldAccess(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node, atomicFields map[*types.Var]bool, atomicOperands map[*ast.SelectorExpr]bool) {
	v := selectedField(pass, sel)
	if v == nil || !atomicFields[v] {
		return
	}
	if atomicOperands[sel] {
		return // the legal &s.f operand of an atomic call
	}
	// &s.f taken for some other purpose (e.g. handed to a helper that runs
	// the atomic op) is allowed: the address preserves atomicity.
	if len(stack) > 0 {
		if un, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
			return
		}
	}
	kind := "read"
	if isWriteContext(sel, stack) {
		kind = "write"
	}
	pass.Reportf(sel.Pos(), "plain %s of %s, a field accessed with sync/atomic elsewhere; racy mixed access tears — use the atomic API everywhere", kind, types.ExprString(sel))
}

// isWriteContext reports whether the expression at the top of the stack is
// being assigned, incremented, or decremented.
func isWriteContext(e ast.Expr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch st := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if lhs == e {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return st.X == e
		case *ast.ParenExpr:
			e = stack[i].(ast.Expr)
			continue
		case *ast.UnaryExpr, *ast.SelectorExpr, *ast.IndexExpr:
			return false
		default:
			return false
		}
	}
	return false
}

// checkTypedAtomicCopy flags a typed atomic value (atomic.Int64,
// atomic.Pointer[T], …) field used outside its method set: copied,
// returned, or assigned by value. Walking up through index/paren layers,
// the only legal parents are a further selector (method call), an
// address-of, a range clause (index-only iteration over []atomic.T), and
// len/cap.
func checkTypedAtomicCopy(pass *Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	v := selectedField(pass, sel)
	if v == nil || !isTypedAtomic(v.Type()) {
		return
	}
	// Walk up through wrappers that preserve "no copy yet".
	child := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.IndexExpr:
			child = p
			continue
		case *ast.SelectorExpr:
			if p.X == child {
				return // method access: s.f.Load()
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return // address taken: &s.f stays bound to the cell
			}
		case *ast.RangeStmt:
			if p.X == child {
				return // for i := range s.slots (copylocks covers value-ranging)
			}
		case *ast.CallExpr:
			if id, ok := p.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				return
			}
		}
		break
	}
	pass.Reportf(sel.Pos(), "%s copies the %s value out of its memory cell; atomics are only meaningful in place — call its methods or take its address", types.ExprString(sel), typeShortName(v.Type()))
}

// isTypedAtomic reports whether t (possibly []T or [N]T of it) is one of
// the sync/atomic value types.
func isTypedAtomic(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isTypedAtomicNamed(u.Elem())
	case *types.Array:
		return isTypedAtomicNamed(u.Elem())
	}
	return isTypedAtomicNamed(t)
}

func isTypedAtomicNamed(t types.Type) bool {
	n, _ := t.(*types.Named)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

func typeShortName(t types.Type) string {
	if n, ok := t.(*types.Named); ok && n.Obj() != nil && n.Obj().Pkg() != nil {
		return pathBase(n.Obj().Pkg().Path()) + "." + n.Obj().Name()
	}
	if u, ok := t.Underlying().(*types.Slice); ok {
		return "[]" + typeShortName(u.Elem())
	}
	return t.String()
}

// isAtomicPointerLoadCall reports whether e is a call `p.Load()` with p a
// sync/atomic.Pointer[T] (or Value).
func isAtomicPointerLoadCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	t := pass.Info.Types[sel.X].Type
	return isNamedType(t, "atomic", "Pointer") || isNamedType(t, "atomic", "Value")
}

// checkPointerLoadDeref flags field selection chained directly onto an
// atomic.Pointer.Load() call: the nil case of a CAS-published slot cannot
// be checked inside one expression.
func checkPointerLoadDeref(pass *Pass, sel *ast.SelectorExpr) {
	if !isAtomicPointerLoadCall(pass, sel.X) {
		return
	}
	// Field selection through the loaded pointer panics on nil; method
	// calls are exempt (the registry's Handle methods are nil-safe by
	// contract).
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() != types.FieldVal {
		return
	}
	pass.Reportf(sel.Pos(), "field %s read through atomic.Pointer.Load() with no nil guard; bind the result and check (`if v := p.Load(); v != nil`)", sel.Sel.Name)
}

// checkCASLoop flags unconditional retry loops whose CompareAndSwap can
// never make progress: no Load refreshing the expected value, no backoff,
// no select.
func checkCASLoop(pass *Pass, fs *ast.ForStmt) {
	if fs.Cond != nil {
		return // bounded or conditioned loop: has its own exit
	}
	hasCAS := false
	hasReload := false
	hasBackoff := false
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure runs on its own schedule
		case *ast.SelectStmt:
			hasBackoff = true
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "CompareAndSwap":
					if isTypedAtomicNamed(pass.Info.Types[sel.X].Type) {
						hasCAS = true
					}
				case "Load":
					if isTypedAtomicNamed(pass.Info.Types[sel.X].Type) {
						hasReload = true
					}
				case "Gosched":
					hasBackoff = true
				case "Sleep":
					hasBackoff = true
				}
			}
			if name, ok := isAtomicPkgFunc(pass.Info, n); ok {
				if strings.HasPrefix(name, "CompareAndSwap") {
					hasCAS = true
				}
				if strings.HasPrefix(name, "Load") {
					hasReload = true
				}
			}
		}
		return true
	})
	if hasCAS && !hasReload && !hasBackoff {
		pass.Reportf(fs.Pos(), "CAS retry loop never re-reads the current value and never backs off; a stale expected value spins this goroutine forever — Load inside the loop or add runtime.Gosched/select")
	}
}
