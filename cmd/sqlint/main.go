// Command sqlint runs this repository's project-specific static analyzers
// over the module — the correctness rules generic `go vet` cannot know:
//
//	hotpath   — no fmt.Sprintf-family allocations and no unguarded
//	            Observer calls inside enumeration/refinement loops of
//	            internal/matching and internal/core (the nil-Observer /
//	            nil-Explain paths must stay allocation-free).
//	hotalloc  — no per-iteration heap allocation (make/new, the arena
//	            constructors, append onto fresh slices) inside the loops
//	            of the hot-path files of internal/matching and
//	            internal/core; buffers come from the Scratch arena.
//	locks     — no sync.Mutex/RWMutex/WaitGroup/Once passed or received
//	            by value, no unguarded map writes on engine/index structs
//	            reachable from Query/Build, no goroutines without a
//	            completion bound (WaitGroup or channel).
//	ctxbudget — every exported Query/Filter/Build entry point threads a
//	            deadline or budget (an options struct with a Deadline
//	            field, a time.Time, or a context.Context).
//	errwrap   — fmt.Errorf wraps error operands with %w, sentinel errors
//	            are package-level vars, error strings follow Go style.
//	recoverhygiene — every goroutine launched on the query path of
//	            internal/core or cmd/sqserver (reachable from a
//	            Query*/handle* entry point) defers a recover; a panic
//	            escaping a goroutine kills the process.
//
// Findings can be suppressed — with a mandatory justification — by a
// comment on the same line or the line above:
//
//	//sqlint:ignore locks single consumer; lifetime bounded by Build
//
// Usage:
//
//	go run ./cmd/sqlint ./...
//	go run ./cmd/sqlint -tags sqdebug ./internal/... ./cmd/...
//
// Exit status: 0 clean, 1 findings, 2 load or internal error.
//
// The driver is standard-library only (go/ast, go/build, go/parser,
// go/types); module-local imports are type-checked from source through a
// custom importer, the standard library through importer.ForCompiler's
// source mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// analyzers is the registry, in output order.
var analyzers = []*Analyzer{
	hotpathAnalyzer,
	hotallocAnalyzer,
	locksAnalyzer,
	ctxbudgetAnalyzer,
	errwrapAnalyzer,
	recoverhygieneAnalyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("sqlint", flag.ContinueOnError)
	tags := fs.String("tags", "", "comma-separated extra build tags (e.g. sqdebug)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sqlint [-tags tags] [-only names] packages...")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlint:", err)
		return 2
	}
	diags, err := Lint(cwd, patterns, splitList(*tags), splitList(*only))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlint:", err)
		return 2
	}
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(cwd, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "sqlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// Lint loads the packages matched by patterns under the module containing
// dir and returns the surviving diagnostics, sorted by position. It is the
// testable core of the command.
func Lint(dir string, patterns, tags, only []string) ([]Diagnostic, error) {
	rootDir, module, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(rootDir, module, tags)
	paths, err := expandPatterns(l, patterns)
	if err != nil {
		return nil, err
	}
	selected := analyzers
	if len(only) > 0 {
		want := map[string]bool{}
		for _, n := range only {
			want[n] = true
		}
		selected = nil
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			return nil, fmt.Errorf("no analyzers match -only=%s", strings.Join(only, ","))
		}
	}

	var diags []Diagnostic
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		var pkgDiags []Diagnostic
		ignores := collectIgnores(l.fset, p.files, &pkgDiags)
		for _, a := range selected {
			if a.Applies != nil && !a.Applies(path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     l.fset,
				Path:     path,
				Files:    p.files,
				Pkg:      p.pkg,
				Info:     p.info,
				diags:    &pkgDiags,
			}
			a.Run(pass)
		}
		diags = append(diags, applyIgnores(pkgDiags, ignores)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
