// Command sqlint runs this repository's project-specific static analyzers
// over the module — the correctness rules generic `go vet` cannot know:
//
//	hotpath   — no fmt.Sprintf-family allocations and no unguarded
//	            Observer calls inside enumeration/refinement loops of
//	            internal/matching and internal/core (the nil-Observer /
//	            nil-Explain paths must stay allocation-free).
//	hotalloc  — no per-iteration heap allocation (make/new, the arena
//	            constructors, append onto fresh slices) inside the loops
//	            of the hot-path files of internal/matching and
//	            internal/core; buffers come from the Scratch arena.
//	locks     — no sync.Mutex/RWMutex/WaitGroup/Once passed or received
//	            by value, no unguarded map writes on engine/index structs
//	            reachable from Query/Build, no goroutines without a
//	            completion bound (WaitGroup or channel).
//	ctxbudget — every exported Query/Filter/Build entry point threads a
//	            deadline or budget (an options struct with a Deadline
//	            field, a time.Time, or a context.Context).
//	errwrap   — fmt.Errorf wraps error operands with %w, sentinel errors
//	            are package-level vars, error strings follow Go style.
//	recoverhygiene — every goroutine launched on the query path of
//	            internal/core or cmd/sqserver (reachable from a
//	            Query*/handle* entry point) defers a recover; a panic
//	            escaping a goroutine kills the process.
//	atomichygiene — fields accessed through sync/atomic anywhere must be
//	            accessed that way everywhere; atomic.Pointer.Load results
//	            need nil guards before dereference; typed atomics are
//	            never copied by value; CAS retry loops reload or back off.
//	goroterm  — goroutines launched on the serving paths (reachable from
//	            Query*/Handle*/Serve*/Build*/New*/main) need a provable
//	            termination path: infinite loops must hear a stop signal,
//	            straight-line bodies must leave completion evidence.
//	chansend  — blocking channel sends/receives on the serving paths need
//	            a select with a cancellation alternative or a buffered
//	            channel; close is called only by the owning side.
//	atomicalign — 64-bit fields used with the function-style sync/atomic
//	            API stay 8-byte aligned under 32-bit struct layouts.
//
// Findings can be suppressed — with a mandatory justification — by a
// comment on the same line or the line above:
//
//	//sqlint:ignore locks single consumer; lifetime bounded by Build
//
// Known legacy findings live in a checked-in baseline (cmd/sqlint/
// baseline.txt): `-baseline file` tolerates exactly those findings (keyed
// by path, analyzer and message — line numbers don't matter) and fails on
// anything new, so analyzers land strict-on-new-code while the backlog is
// burned down explicitly. Regenerate with -format=baseline.
//
// Usage:
//
//	go run ./cmd/sqlint ./...
//	go run ./cmd/sqlint -tags sqdebug ./internal/... ./cmd/...
//	go run ./cmd/sqlint -baseline cmd/sqlint/baseline.txt ./...
//	go run ./cmd/sqlint -only=chansend -format=json ./internal/core/...
//	go run ./cmd/sqlint -list
//
// Exit status: 0 clean, 1 findings, 2 load or internal error.
//
// The driver is standard-library only (go/ast, go/build, go/parser,
// go/types); module-local imports are type-checked from source through a
// custom importer, the standard library through importer.ForCompiler's
// source mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// analyzers is the registry, in output order.
var analyzers = []*Analyzer{
	hotpathAnalyzer,
	hotallocAnalyzer,
	locksAnalyzer,
	ctxbudgetAnalyzer,
	errwrapAnalyzer,
	recoverhygieneAnalyzer,
	atomichygieneAnalyzer,
	gorotermAnalyzer,
	chansendAnalyzer,
	atomicalignAnalyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("sqlint", flag.ContinueOnError)
	tags := fs.String("tags", "", "comma-separated extra build tags (e.g. sqdebug)")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, github (CI annotations), baseline")
	baselinePath := fs.String("baseline", "", "baseline file of tolerated findings (see cmd/sqlint/baseline.txt)")
	verbose := fs.Bool("v", false, "print per-analyzer timing to stderr")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sqlint [-tags tags] [-only names] [-format f] [-baseline file] [-v] packages...")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "github", "baseline":
	default:
		fmt.Fprintf(os.Stderr, "sqlint: unknown -format=%s (want text, json, github or baseline)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlint:", err)
		return 2
	}
	diags, timings, err := lintTimed(cwd, patterns, splitList(*tags), splitList(*only))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlint:", err)
		return 2
	}
	if *verbose {
		printTimings(os.Stderr, timings)
	}
	if *baselinePath != "" {
		base, err := parseBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlint:", err)
			return 2
		}
		var stale []string
		diags, stale = applyBaseline(cwd, diags, base)
		for _, k := range stale {
			fmt.Fprintf(os.Stderr, "sqlint: stale baseline entry (finding fixed — delete the line): %s\n", k)
		}
	}

	switch *format {
	case "json":
		if err := writeJSON(out, cwd, diags); err != nil {
			fmt.Fprintln(os.Stderr, "sqlint:", err)
			return 2
		}
	case "github":
		writeGitHub(out, cwd, diags)
	case "baseline":
		for _, d := range diags {
			fmt.Fprintln(out, baselineKey(cwd, d))
		}
	default:
		writeText(out, cwd, diags)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// AnalyzerTiming aggregates one analyzer's work across every package it
// ran on — surfaced by -v so slow passes are visible before they slow CI.
type AnalyzerTiming struct {
	Name     string
	Packages int
	Total    time.Duration
}

func printTimings(out *os.File, timings []AnalyzerTiming) {
	for _, tm := range timings {
		fmt.Fprintf(out, "sqlint: %-14s %3d package(s)  %s\n", tm.Name, tm.Packages, tm.Total.Round(10*time.Microsecond))
	}
}

// Lint loads the packages matched by patterns under the module containing
// dir and returns the surviving diagnostics, sorted by position. It is the
// testable core of the command.
func Lint(dir string, patterns, tags, only []string) ([]Diagnostic, error) {
	diags, _, err := lintTimed(dir, patterns, tags, only)
	return diags, err
}

// lintTimed is Lint plus per-analyzer wall-clock accounting, in registry
// order.
func lintTimed(dir string, patterns, tags, only []string) ([]Diagnostic, []AnalyzerTiming, error) {
	rootDir, module, err := findModuleRoot(dir)
	if err != nil {
		return nil, nil, err
	}
	l := newLoader(rootDir, module, tags)
	paths, err := expandPatterns(l, patterns)
	if err != nil {
		return nil, nil, err
	}
	selected := analyzers
	if len(only) > 0 {
		want := map[string]bool{}
		for _, n := range only {
			want[n] = true
		}
		selected = nil
		for _, a := range analyzers {
			if want[a.Name] {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			return nil, nil, fmt.Errorf("no analyzers match -only=%s", strings.Join(only, ","))
		}
	}

	spent := map[string]*AnalyzerTiming{}
	var diags []Diagnostic
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, nil, err
		}
		var pkgDiags []Diagnostic
		ignores := collectIgnores(l.fset, p.files, &pkgDiags)
		for _, a := range selected {
			if a.Applies != nil && !a.Applies(path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     l.fset,
				Path:     path,
				Files:    p.files,
				Pkg:      p.pkg,
				Info:     p.info,
				diags:    &pkgDiags,
			}
			start := time.Now()
			a.Run(pass)
			tm := spent[a.Name]
			if tm == nil {
				tm = &AnalyzerTiming{Name: a.Name}
				spent[a.Name] = tm
			}
			tm.Packages++
			tm.Total += time.Since(start)
		}
		diags = append(diags, applyIgnores(pkgDiags, ignores)...)
	}
	sortDiagnostics(diags)
	var timings []AnalyzerTiming
	for _, a := range selected {
		if tm := spent[a.Name]; tm != nil {
			timings = append(timings, *tm)
		}
	}
	return diags, timings, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
