package main

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks one in-memory file into a Pass, so the
// call-graph and go-statement resolution helpers can be tested directly —
// without routing through a fixture module and a golden file.
func checkSource(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var diags []Diagnostic
	return &Pass{
		Analyzer: &Analyzer{Name: "test"},
		Fset:     fset,
		Path:     "p",
		Files:    []*ast.File{f},
		Pkg:      pkg,
		Info:     info,
		diags:    &diags,
	}
}

// reachableNames runs reachableFuncs and returns the sorted set of
// function names it marked.
func reachableNames(pass *Pass, prefixes ...string) map[string]bool {
	out := map[string]bool{}
	for obj := range reachableFuncs(pass, prefixes...) {
		out[obj.Name()] = true
	}
	return out
}

// TestReachableFuncsClosure pins the call-graph closure: methods called
// through a receiver, plain functions, and transitive chains are all
// pulled into the Query*-reachable set; unreachable siblings are not.
func TestReachableFuncsClosure(t *testing.T) {
	pass := checkSource(t, `package p

type E struct{}

func (e *E) Query()        { e.step() }
func (e *E) step()         { helper() }
func helper()              { deep() }
func deep()                {}
func (e *E) Build()        {}
func lonely()              {}
`)
	got := reachableNames(pass, "Query")
	for _, want := range []string{"Query", "step", "helper", "deep"} {
		if !got[want] {
			t.Errorf("reachableFuncs missed %s (got %v)", want, got)
		}
	}
	for _, banned := range []string{"Build", "lonely"} {
		if got[banned] {
			t.Errorf("reachableFuncs wrongly included %s", banned)
		}
	}
}

// TestReachableFuncsMultiPrefix checks seeding from several prefixes at
// once (the recoverhygiene/goroterm entry sets).
func TestReachableFuncsMultiPrefix(t *testing.T) {
	pass := checkSource(t, `package p

func QueryA()  { shared() }
func handleB() { shared() }
func ServeC()  {}
func shared()  {}
func other()   {}
`)
	got := reachableNames(pass, "Query", "handle", "Serve")
	for _, want := range []string{"QueryA", "handleB", "ServeC", "shared"} {
		if !got[want] {
			t.Errorf("missing %s in %v", want, got)
		}
	}
	if got["other"] {
		t.Errorf("other should not be reachable")
	}
}

// goBodies collects the resolved body for every go statement in the named
// function, using the same localFuncBindings + resolveGoBody pipeline the
// analyzers use.
func goBodies(t *testing.T, pass *Pass, funcName string) []*ast.BlockStmt {
	t.Helper()
	var out []*ast.BlockStmt
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != funcName {
				continue
			}
			lits := localFuncBindings(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					out = append(out, resolveGoBody(pass, gs, lits))
				}
				return true
			})
		}
	}
	return out
}

// bodyContains reports whether the body's source interval contains the
// marker call `marker()`.
func bodyContains(pass *Pass, body *ast.BlockStmt, marker string) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == marker {
				found = true
			}
		}
		return !found
	})
	return found
}

const resolveSrc = `package p

type W struct{}

func (w *W) loop()   { methodMarker() }
func pkgFunc()       { pkgMarker() }
func methodMarker()  {}
func pkgMarker()     {}
func litMarker()     {}
func reboundMarker() {}

func Launch(w *W) {
	go func() { litMarker() }()

	worker := func() { litMarker() }
	go worker()

	var vw func()
	vw = func() { reboundMarker() }
	go vw()

	go pkgFunc()

	go w.loop()
}
`

// TestResolveGoBody pins every resolution path a `go` statement can take:
// inline literal, worker := func(){} binding, assignment rebinding,
// package function, and the method-value form `go w.loop()`.
func TestResolveGoBody(t *testing.T) {
	pass := checkSource(t, resolveSrc)
	bodies := goBodies(t, pass, "Launch")
	if len(bodies) != 5 {
		t.Fatalf("want 5 go statements, got %d", len(bodies))
	}
	wantMarkers := []string{"litMarker", "litMarker", "reboundMarker", "pkgMarker", "methodMarker"}
	for i, marker := range wantMarkers {
		if !bodyContains(pass, bodies[i], marker) {
			t.Errorf("go statement %d: resolved body does not contain %s()", i, marker)
		}
	}
}

// TestResolveGoBodyUnresolvable: a callee from another package resolves to
// nil — callers decide whether nil means flag or trust.
func TestResolveGoBodyUnresolvable(t *testing.T) {
	pass := checkSource(t, `package p

import "strings"

func Launch(r *strings.Reader) {
	go r.UnreadByte()
}
`)
	bodies := goBodies(t, pass, "Launch")
	if len(bodies) != 1 || bodies[0] != nil {
		t.Fatalf("cross-package method should resolve to nil, got %v", bodies)
	}
}

// TestLocalFuncBindings covers the binding forms directly: :=, =, and var.
func TestLocalFuncBindings(t *testing.T) {
	pass := checkSource(t, `package p

func F() {
	a := func() {}
	var b = func() {}
	var c func()
	c = func() {}
	_, _, _ = a, b, c
}
`)
	var fd *ast.FuncDecl
	for _, decl := range pass.Files[0].Decls {
		if d, ok := decl.(*ast.FuncDecl); ok && d.Name.Name == "F" {
			fd = d
		}
	}
	lits := localFuncBindings(pass, fd.Body)
	names := map[string]bool{}
	for obj := range lits {
		names[obj.Name()] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !names[want] {
			t.Errorf("binding %s not collected (got %v)", want, names)
		}
	}
}

// TestFuncDeclBodyResolvesMethods: funcDeclBody finds method bodies, the
// path `go w.loop()` resolution depends on.
func TestFuncDeclBodyResolvesMethods(t *testing.T) {
	pass := checkSource(t, resolveSrc)
	var loopObj *types.Func
	for id, obj := range pass.Info.Defs {
		if tf, ok := obj.(*types.Func); ok && id.Name == "loop" {
			loopObj = tf
		}
	}
	if loopObj == nil {
		t.Fatal("method loop not found in Defs")
	}
	body := funcDeclBody(pass, loopObj)
	if !bodyContains(pass, body, "methodMarker") {
		t.Errorf("funcDeclBody(loop) did not return the method body")
	}
	if strings.HasPrefix(loopObj.FullName(), "p.") {
		t.Errorf("loop should be a method, FullName %s", loopObj.FullName())
	}
}
