// This file's import path ends in internal/domain and its base name
// (domain.go) is on the hotalloc analyzer's hot-file list: the bit-matrix
// rows are mutated once per candidate vertex, so its loops are held to the
// zero-allocation rule.
package domain

// Matrix stands in for the real bit-matrix: per-query-vertex rows whose
// storage is reset, never reallocated, between data graphs.
type Matrix struct {
	rows   [][]uint64
	counts []int32
}

// refineRows plants one hotalloc true positive per rule class and shows
// the compliant reuse forms.
func refineRows(m *Matrix, universe [][]uint32) int {
	total := 0
	for _, verts := range universe {
		row := make([]uint64, len(verts)/64+1) // want: make in a hot loop
		_ = row
		snapshot := append([]int32(nil), m.counts...) // want: append onto a fresh slice
		_ = snapshot

		// Compliant: truncate and refill the retained row storage.
		for i := range m.counts {
			m.counts[i] = 0
		}
		total += len(verts)
	}
	return total
}

// buildOnce allocates outside any loop: setup-path construction is fine.
func buildOnce(nq, words int) *Matrix {
	m := &Matrix{counts: make([]int32, nq)}
	for i := 0; i < nq; i++ {
		//sqlint:ignore hotalloc one-time row growth at build, not per graph
		m.rows = append(m.rows, make([]uint64, words))
	}
	return m
}
