// This file plants atomicalign fixtures: 64-bit fields used with the
// function-style sync/atomic API must stay 8-byte aligned under 32-bit
// layouts.
package obs

import "sync/atomic"

// gauges64 packs a 32-bit readiness word before its 64-bit counter: under
// the 386 layout the counter lands at offset 4 and atomic.AddUint64
// faults at runtime.
type gauges64 struct {
	ready uint32
	hits  uint64 // want: misaligned 64-bit atomic field
}

func (g *gauges64) bump() { atomic.AddUint64(&g.hits, 1) }

// gauges64Front puts the 64-bit field first: offset 0 is always aligned.
type gauges64Front struct {
	hits  uint64
	ready uint32
}

func (g *gauges64Front) bumpFront() { atomic.AddUint64(&g.hits, 1) }

// gaugesTyped uses the typed wrapper, which self-aligns since Go 1.19.
type gaugesTyped struct {
	ready uint32
	hits  atomic.Uint64
}

func (g *gaugesTyped) bumpTyped() { g.hits.Add(1) }
