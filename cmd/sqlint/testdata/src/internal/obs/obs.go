// Package obs mirrors the real module's observability surface just enough
// for the hotpath analyzer's type-based matching: the analyzer identifies
// Observer and Explain by package base name and type name, so this fixture
// package exercises the same rules under the sqlint.example module.
package obs

import "time"

// Observer is the per-phase callback interface; a nil Observer must never
// be invoked (calling a method on a nil interface panics).
type Observer interface {
	ObservePhase(name string, d time.Duration)
}

// Explain accumulates a query report; its methods are nil-safe but the
// hotpath convention still wants call sites guarded.
type Explain struct {
	engine string
}

// SetEngine records the engine name (no-op on nil).
func (e *Explain) SetEngine(name string) {
	if e == nil {
		return
	}
	e.engine = name
}
