// Package index holds ctxbudget and suppression fixtures; its import path
// ends in internal/index so the path-scoped analyzers apply.
package index

// Probe is a built index structure.
type Probe struct {
	ids []int
}

// Filter is an exported Filter path with no way to bound its work.
func (p *Probe) Filter(q string) []int { // want: no deadline/budget parameter
	return p.ids
}

// FilterBounded carries a justified suppression: the probe's cost is a
// function of the built structure, not of unbounded input.
func (p *Probe) FilterBounded(q string) []int { //sqlint:ignore ctxbudget probe cost bounded by the built structure
	return p.ids
}

// malformed demonstrates that a suppression without a reason is itself a
// finding.
func malformed() {
	//sqlint:ignore
	_ = 0
}
