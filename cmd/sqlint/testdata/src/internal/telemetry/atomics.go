// This file plants atomichygiene fixtures: fields accessed through
// sync/atomic anywhere must be accessed that way everywhere, Pointer
// loads need nil guards, typed atomics must not be copied by value, and
// CAS retry loops must reload or back off.
package telemetry

import (
	"runtime"
	"sync/atomic"
)

// Stats mixes function-style atomic access with plain access to hits;
// misses is only ever touched plainly and stays legal.
type Stats struct {
	hits   uint64
	misses uint64
}

func (s *Stats) record() { atomic.AddUint64(&s.hits, 1) }

// peek reads hits without the atomic API.
func (s *Stats) peek() uint64 {
	return s.hits // want: plain read of atomically-written field
}

// reset writes hits without the atomic API.
func (s *Stats) reset() {
	s.hits = 0 // want: plain write of atomically-written field
}

// peekAtomic is the compliant read.
func (s *Stats) peekAtomic() uint64 {
	return atomic.LoadUint64(&s.hits)
}

// missTotal: misses is never accessed atomically, so a plain read is fine.
func (s *Stats) missTotal() uint64 {
	return s.misses
}

// hitsCell hands out the address; the pointer preserves atomicity.
func (s *Stats) hitsCell() *uint64 {
	return &s.hits
}

// Config is the CAS-published payload behind Shared.cur.
type Config struct {
	Limit int
}

// Cap is nil-safe by contract, like the registry handle methods.
func (c *Config) Cap() int {
	if c == nil {
		return 0
	}
	return c.Limit
}

// Shared stands in for the exporter's lock-free shared state.
type Shared struct {
	max   atomic.Int64
	cur   atomic.Pointer[Config]
	slots []atomic.Int64
}

// PeekLimit dereferences a Load result in one expression: no room for the
// nil check a CAS-published slot needs.
func (s *Shared) PeekLimit() int {
	return s.cur.Load().Limit // want: unguarded Pointer.Load deref
}

// LimitGuarded binds and checks: ok.
func (s *Shared) LimitGuarded() int {
	if c := s.cur.Load(); c != nil {
		return c.Limit
	}
	return 0
}

// CapOK calls a nil-safe method on the Load result: ok by contract.
func (s *Shared) CapOK() int {
	return s.cur.Load().Cap()
}

// CopyMax copies the typed atomic out of its cell; the copy is severed
// from every other goroutine's updates.
func (s *Shared) CopyMax() int64 {
	m := s.max // want: copies atomic.Int64 by value
	return m.Load()
}

// MaxOK uses the method set and the address: ok.
func (s *Shared) MaxOK() int64 {
	s.max.Add(0)
	_ = &s.max
	return s.max.Load()
}

// SlotOK indexes into a slice of typed atomics without copying: ok.
func (s *Shared) SlotOK(i int) int64 {
	for j := range s.slots {
		_ = j
	}
	if i < len(s.slots) {
		return s.slots[i].Load()
	}
	return 0
}

// SpinPublish retries a CAS against an expected value captured before the
// loop: once stale, it spins forever.
func (s *Shared) SpinPublish(c *Config) {
	old := s.cur.Load()
	for { // want: CAS loop never reloads or backs off
		if s.cur.CompareAndSwap(old, c) {
			return
		}
	}
}

// BumpMax reloads inside the loop: ok.
func (s *Shared) BumpMax(v int64) {
	for {
		old := s.max.Load()
		if old >= v || s.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// SpinBackoff yields between attempts: ok.
func (s *Shared) SpinBackoff(c *Config) {
	for {
		if s.cur.CompareAndSwap(nil, c) {
			return
		}
		runtime.Gosched()
	}
}

// Box covers the explicit-star deref form.
type Box struct {
	v atomic.Pointer[int]
}

func (b *Box) Deref() int {
	return *b.v.Load() // want: unguarded Pointer.Load deref
}
