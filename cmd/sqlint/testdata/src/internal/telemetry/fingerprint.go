// Package telemetry holds hotalloc fixtures for the workload-telemetry
// fast path; its import path ends in internal/telemetry so the path-scoped
// analyzers apply, and the file is named fingerprint.go so the hotalloc
// named-file list covers it.
package telemetry

// computeHot trips the hotalloc rules the way a naive fingerprint
// implementation would: allocating refinement buffers per round instead of
// reusing pooled scratch.
func computeHot(colors [][]uint64) uint64 {
	var h uint64
	for _, round := range colors {
		buf := make([]uint64, len(round)) // want: make inside a hot-path loop
		copy(buf, round)
		var fresh []uint64
		fresh = append(fresh[:0], round...)
		_ = fresh
		tmp := append([]uint64(nil), round...) // want: append onto a fresh slice
		for _, c := range tmp {
			h ^= c
		}
	}
	return h
}

// computeScratch is the compliant form: buffers come from a caller-owned
// scratch and are truncated, never reallocated, per iteration.
func computeScratch(colors [][]uint64, scratch []uint64) uint64 {
	var h uint64
	for _, round := range colors {
		buf := scratch[:0]
		buf = append(buf, round...) // scratch-owned backing: ok
		for _, c := range buf {
			h ^= c
		}
	}
	return h
}
