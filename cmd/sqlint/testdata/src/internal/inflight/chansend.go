// This file plants chansend fixtures: blocking channel operations in
// Handle*-reachable code need a cancellation alternative or a buffered
// channel, and close belongs to the owning side.
package inflight

// Hub stands in for the event fan-out between the registry and its
// exporter.
type Hub struct {
	out  chan uint64
	buf  chan uint64
	stop chan struct{}
	done chan struct{}
}

func newHub() *Hub {
	return &Hub{
		out:  make(chan uint64),
		buf:  make(chan uint64, 16),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// HandleForward sends bare on an unbuffered channel: the moment the
// consumer stops receiving, this goroutine is wedged forever.
func (h *Hub) HandleForward(v uint64) {
	h.out <- v // want: blocking send outside a select
}

// HandleBuffered sends on a channel declared with capacity: ok.
func (h *Hub) HandleBuffered(v uint64) {
	h.buf <- v
}

// HandleSelectSend races the send against the stop channel: ok.
func (h *Hub) HandleSelectSend(v uint64) {
	select {
	case h.out <- v:
	case <-h.stop:
	}
}

// HandleWaitField blocks on a field channel this function neither made
// nor feeds.
func (h *Hub) HandleWaitField() {
	<-h.done // want: blocking receive, no cancellation path
}

// HandleWaitLocal is the join idiom: the channel is made here and closed
// by the goroutine launched here, so the wait is bounded by this
// function's own work.
func (h *Hub) HandleWaitLocal() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// HandleCloseNotOwner closes a channel it received: a later send by the
// real owner panics.
func (h *Hub) HandleCloseNotOwner(ch chan uint64) {
	close(ch) // want: close of a parameter channel
}

// shutdown closes the Hub's own channel: ownership is right.
func (h *Hub) shutdown() {
	close(h.stop)
}
