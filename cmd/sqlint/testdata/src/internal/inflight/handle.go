// Package inflight holds hotalloc fixtures for the live-query registry
// fast path; its import path ends in internal/inflight so the path-scoped
// analyzers apply, and the file is named handle.go so the hotalloc
// named-file list covers it.
package inflight

// Handle stands in for the live-query handle: progress ticks from the
// enumeration loop must land on preallocated state, never allocate.
type Handle struct {
	steps   uint64
	history []uint64
}

// tickNaive trips the hotalloc rules the way a naive progress recorder
// would: buffering each stride's counters in a fresh slice per iteration.
func tickNaive(h *Handle, strides []uint64) {
	for _, s := range strides {
		buf := make([]uint64, 1) // want: make inside a hot-path loop
		buf[0] = s
		h.history = append([]uint64(nil), buf...) // want: append onto a fresh slice
		h.steps += s
	}
}

// tickAtomic is the compliant form: the stride lands on counters owned by
// the handle, and history reuses its own backing array.
func tickAtomic(h *Handle, strides []uint64) {
	h.history = h.history[:0]
	for _, s := range strides {
		h.steps += s
		h.history = append(h.history, s)
	}
}
