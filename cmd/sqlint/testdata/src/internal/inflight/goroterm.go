// This file plants goroterm fixtures: goroutines launched from Handle*
// entry points need a provable termination path — infinite loops must be
// able to hear a stop signal, straight-line bodies must leave completion
// evidence.
package inflight

import (
	"sync"
	"time"
)

// Watcher stands in for the registry watchdog and its background loops.
type Watcher struct {
	stop chan struct{}
	tick chan struct{}
	in   chan uint64
}

// pollForever loops with no way to hear a stop signal; the goroutine
// outlives every query.
func (w *Watcher) pollForever() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func (w *Watcher) HandlePollForever() {
	go w.pollForever() // want: infinite loop, no stop signal
}

// pollCancellable selects on the stop channel each iteration: ok.
func (w *Watcher) pollCancellable() {
	for {
		select {
		case <-w.stop:
			return
		case <-w.tick:
		}
	}
}

func (w *Watcher) HandlePollCancellable() {
	go w.pollCancellable()
}

// blockForever stands in for a listener that never returns.
func blockForever() {}

// serveBlocking is straight-line with nothing a launcher could observe.
func (w *Watcher) serveBlocking() {
	blockForever()
}

func (w *Watcher) HandleDetached() {
	go w.serveBlocking() // want: no provable termination path
}

// pump drains until the owning side closes the channel: ok.
func (w *Watcher) pump() {
	for v := range w.in {
		_ = v
	}
}

func (w *Watcher) HandleDrain() {
	go w.pump()
}

// HandleTracked bounds the goroutine with a WaitGroup and Done: ok.
func (w *Watcher) HandleTracked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		blockForever()
	}()
	wg.Wait()
}
