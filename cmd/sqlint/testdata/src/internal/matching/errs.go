package matching

import (
	"errors"
	"fmt"
)

// ErrBadQuery is the shape a sentinel should take: a package-level var
// callers can errors.Is against.
var ErrBadQuery = errors.New("bad query")

// wrapVerb formats an error operand with %v, hiding it from errors.Is.
func wrapVerb(err error) error {
	return fmt.Errorf("filter: %v", err) // want: use %w
}

// wrapOK wraps properly.
func wrapOK(err error) error {
	return fmt.Errorf("filter: %w", err)
}

// freshSentinel mints an unmatchable error per call.
func freshSentinel() error {
	return errors.New("index not built") // want: package-level sentinel
}

// trailingPeriod violates error string style.
func trailingPeriod() error {
	return fmt.Errorf("load failed.") // want: trailing punctuation
}

// capitalized violates error string style.
func capitalized() error {
	return fmt.Errorf("Failed to load") // want: capitalized first word
}

// identifierStart is allowed: CamelCase / acronym first tokens name
// identifiers, not sentence starts.
func identifierStart() error {
	return fmt.Errorf("GraphQL filter rejected %d rounds", 3)
}
