// This file's base name (enumerate.go) is on the hotalloc analyzer's
// hot-file list, so its loops are held to the zero-allocation rule.
package matching

// Scratch stands in for the real arena: grow-only buffers acquired once
// per query and reused across graphs.
type Scratch struct {
	buf []int
}

// NewScratch trips the constructor rule when called inside a loop.
func NewScratch() *Scratch { return &Scratch{} }

// NewCandidates likewise.
func NewCandidates(nq, nd int) []int { return make([]int, nq) }

// hotLoops plants one true positive per hotalloc rule and shows the
// compliant arena forms.
func hotLoops(graphs [][]int, s *Scratch) int {
	total := 0
	for _, g := range graphs {
		buf := make([]int, len(g)) // want: make in a hot loop
		_ = buf
		p := new(Scratch) // want: new in a hot loop
		_ = p
		local := NewScratch() // want: arena constructor in a hot loop
		_ = local
		cand := NewCandidates(len(g), len(g)) // want: arena constructor in a hot loop
		_ = cand
		clone := append([]int(nil), g...) // want: append onto a fresh slice
		_ = clone

		// The compliant form: truncate the scratch-owned buffer and reuse
		// its backing array.
		s.buf = s.buf[:0]
		for _, v := range g {
			s.buf = append(s.buf, v) // append into retained capacity: ok
		}
		total += len(s.buf)
	}
	// Outside any loop every construct is fine.
	once := make([]int, 4)
	once = append([]int(nil), once...)
	return total + len(once)
}

// hotSuppressedAlloc shows the justified escape for a genuinely cold
// allocation inside a loop.
func hotSuppressedAlloc(graphs [][]int) []*Scratch {
	var out []*Scratch
	for range graphs {
		//sqlint:ignore hotalloc setup path, runs once per Build not per query
		out = append(out, NewScratch())
	}
	return out
}
