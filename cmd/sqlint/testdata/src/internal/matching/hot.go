// Package matching holds hotpath and errwrap fixtures; its import path
// ends in internal/matching so the path-scoped analyzers apply.
package matching

import (
	"fmt"

	"sqlint.example/internal/obs"
)

// Hot trips every hotpath rule once and shows the compliant form of each.
func Hot(o obs.Observer, ex *obs.Explain, items []int) (string, error) {
	var s string
	for _, it := range items {
		s = fmt.Sprintf("item-%d", it) // want: fmt.Sprintf inside a loop
		o.ObservePhase(s, 0)           // want: unguarded Observer call
		ex.SetEngine(s)                // want: unguarded Explain call
	}
	for _, it := range items {
		if o != nil {
			o.ObservePhase("phase", 0) // guarded: ok
		}
		if ex != nil {
			ex.SetEngine("engine") // guarded: ok
		}
		if it < 0 {
			// fmt.Errorf is exempt: error construction is a cold path.
			return "", fmt.Errorf("negative item %d", it)
		}
	}
	s = fmt.Sprintf("total=%d", len(items)) // outside any loop: ok
	return s, nil
}

// hotEarlyReturn uses the function-entry guard form, which also counts.
func hotEarlyReturn(ex *obs.Explain, items []int) {
	if ex == nil {
		return
	}
	for range items {
		ex.SetEngine("guarded-by-early-return") // ok
	}
}

// hotSuppressed shows a justified suppression of a true positive.
func hotSuppressed(items []int) string {
	var s string
	for range items {
		//sqlint:ignore hotpath cold debug helper, runs once per process
		s = fmt.Sprintf("suppressed")
	}
	return s
}
