// Package core holds locks and ctxbudget fixtures; its import path ends
// in internal/core so the path-scoped analyzers apply.
package core

import (
	"sync"
	"time"
)

// Options carries the query deadline, satisfying the ctxbudget rule for
// the entry points below.
type Options struct {
	Deadline time.Time
}

// Engine is shared across queries and workers: map writes on its fields
// from the query path must hold a lock.
type Engine struct {
	mu    sync.Mutex
	cache map[string][]int
	stats map[string]int
}

// Query is a query-path entry point; its unguarded map write races with
// concurrent queries.
func (e *Engine) Query(q string, opts Options) []int {
	e.stats[q]++ // want: unguarded map write on query path
	return e.lookup(q)
}

// lookup is reachable from Query, so its write is on the query path too.
func (e *Engine) lookup(q string) []int {
	e.cache[q] = nil // want: unguarded map write (reachable from Query)
	return e.cache[q]
}

// QueryLocked holds the lock around its write: ok.
func (e *Engine) QueryLocked(q string, opts Options) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache[q] = nil
	return nil
}

// Build populates the maps before any query runs; construction is
// single-writer by contract, so these writes are exempt.
func (e *Engine) Build(items []string, opts Options) {
	e.cache = map[string][]int{}
	e.stats = map[string]int{}
	for _, it := range items {
		e.cache[it] = nil
	}
}

// Snapshot's value receiver copies the embedded mutex.
func (e Engine) Snapshot() int { // want: receiver copies sync.Mutex
	return len(e.cache)
}

// waitOn's by-value parameter copies the WaitGroup, so the Wait observes
// a snapshot of the counter.
func waitOn(wg sync.WaitGroup) { // want: parameter copies sync.WaitGroup
	wg.Wait()
}

// Spawn launches goroutines nothing can wait on.
func (e *Engine) Spawn(n int) {
	for i := 0; i < n; i++ {
		go func() { // want: no completion bound
			_ = i
		}()
	}
}

// SpawnBounded bounds its goroutines with a WaitGroup: ok.
func (e *Engine) SpawnBounded(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
