package core

// This file plants recoverhygiene fixtures: goroutines on the query path
// (reachable from a Query* entry point) must defer a recover.

// QuerySpawnUnguarded's worker goroutine has no recover boundary: a panic
// in it would kill the process.
func (e *Engine) QuerySpawnUnguarded(q string, opts Options, jobs chan int) {
	done := make(chan struct{})
	go func() { // want: no recover boundary
		for range jobs {
			_ = q
		}
		close(done)
	}()
	<-done
}

// QuerySpawnGuarded recovers directly in a deferred literal: ok.
func (e *Engine) QuerySpawnGuarded(q string, opts Options, jobs chan int) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if v := recover(); v != nil {
				_ = v
			}
		}()
		for range jobs {
		}
	}()
	<-done
}

// guard recovers on behalf of its deferrers, like core's graphGuard.
func guard() {
	_ = recover()
}

// QuerySpawnNamedGuard defers an intra-package recovering function through
// a local worker binding: ok.
func (e *Engine) QuerySpawnNamedGuard(q string, opts Options, jobs chan int) {
	done := make(chan struct{})
	worker := func() {
		defer close(done)
		defer guard()
		for range jobs {
		}
	}
	go worker()
	<-done
}

// QuerySpawnLocalUnguarded resolves the local binding and still finds no
// recover.
func (e *Engine) QuerySpawnLocalUnguarded(q string, opts Options, jobs chan int) {
	done := make(chan struct{})
	worker := func() {
		defer close(done)
		for range jobs {
		}
	}
	go worker() // want: no recover boundary
	<-done
}

// spawnHelper is reachable from QuerySpawnViaHelper, so its goroutine is on
// the query path too.
func (e *Engine) spawnHelper(jobs chan int) {
	done := make(chan struct{})
	go func() { // want: no recover boundary (reachable from Query*)
		for range jobs {
		}
		close(done)
	}()
	<-done
}

// QuerySpawnViaHelper pulls spawnHelper into the reachable set.
func (e *Engine) QuerySpawnViaHelper(q string, opts Options, jobs chan int) {
	e.spawnHelper(jobs)
}
