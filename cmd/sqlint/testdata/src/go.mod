module sqlint.example

go 1.22
