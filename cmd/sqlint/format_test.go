package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleDiags(root string) []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "core", "parallel.go"), Line: 202, Column: 3},
			Analyzer: "chansend",
			Message:  "blocking send on jobs outside a select; 50% slower, see a:b",
		},
		{
			Pos:      token.Position{Filename: filepath.Join(root, "cmd", "sqserver", "main.go"), Line: 208, Column: 3},
			Analyzer: "goroterm",
			Message:  "goroutine launched in main has no provable termination path",
		},
	}
}

// TestFormatJSONRoundTrip pins the -format=json schema: encoding the
// diagnostics and decoding them back must reproduce every field, and the
// envelope must carry the schema version and count.
func TestFormatJSONRoundTrip(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "repo")
	diags := sampleDiags(root)
	var buf bytes.Buffer
	if err := writeJSON(&buf, root, diags); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var got jsonReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if got.Version != jsonSchemaVersion {
		t.Errorf("version = %q, want %q", got.Version, jsonSchemaVersion)
	}
	if got.Count != len(diags) || len(got.Findings) != len(diags) {
		t.Fatalf("count = %d, findings = %d, want %d", got.Count, len(got.Findings), len(diags))
	}
	for i, f := range got.Findings {
		d := diags[i]
		if f.Line != d.Pos.Line || f.Col != d.Pos.Column || f.Analyzer != d.Analyzer || f.Message != d.Message {
			t.Errorf("finding %d = %+v does not match %+v", i, f, d)
		}
		if strings.Contains(f.File, "\\") || strings.HasPrefix(f.File, "/") {
			t.Errorf("finding %d file %q is not root-relative slash form", i, f.File)
		}
	}
	if got.Findings[0].File != "internal/core/parallel.go" {
		t.Errorf("file = %q, want internal/core/parallel.go", got.Findings[0].File)
	}
}

// TestFormatGitHub pins the workflow-command shape and its escaping: the
// message's % is escaped so GitHub doesn't mangle the annotation, and the
// title's / and message text survive.
func TestFormatGitHub(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "repo")
	var buf bytes.Buffer
	writeGitHub(&buf, root, sampleDiags(root))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 annotations, got %d:\n%s", len(lines), buf.String())
	}
	want := "::error file=internal/core/parallel.go,line=202,col=3,title=sqlint/chansend::blocking send on jobs outside a select; 50%25 slower, see a:b"
	if lines[0] != want {
		t.Errorf("annotation = %q, want %q", lines[0], want)
	}
	if !strings.HasPrefix(lines[1], "::error file=cmd/sqserver/main.go,line=208,") {
		t.Errorf("second annotation = %q", lines[1])
	}
}

// TestBaselineApply pins the baseline semantics: listed findings are
// tolerated by (path, analyzer, message) regardless of line number,
// multiplicity is a multiset, and unmatched entries come back stale.
func TestBaselineApply(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("work", "repo")
	diags := sampleDiags(root)
	base := map[string]int{
		baselineKey(root, diags[1]):      1,
		"gone.go: locks: fixed long ago": 1,
	}
	surviving, stale := applyBaseline(root, diags, base)
	if len(surviving) != 1 || surviving[0].Analyzer != "chansend" {
		t.Errorf("surviving = %+v, want only the chansend finding", surviving)
	}
	if len(stale) != 1 || stale[0] != "gone.go: locks: fixed long ago" {
		t.Errorf("stale = %v, want the fixed entry", stale)
	}
}

// TestBaselineParse covers the file format: comments and blanks skipped,
// duplicate lines counted.
func TestBaselineParse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.txt")
	content := "# header\n\na.go: locks: msg\na.go: locks: msg\nb.go: goroterm: other\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := parseBaseline(path)
	if err != nil {
		t.Fatalf("parseBaseline: %v", err)
	}
	if base["a.go: locks: msg"] != 2 || base["b.go: goroterm: other"] != 1 || len(base) != 2 {
		t.Errorf("base = %v", base)
	}
}
