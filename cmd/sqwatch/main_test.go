package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"subgraphquery/internal/inflight"
)

// fakeServer serves a canned /debug/inflight body and records cancels.
func fakeServer(t *testing.T, rep inflightReport) (*httptest.Server, *[]string) {
	t.Helper()
	var cancelled []string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/inflight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("POST /debug/inflight/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if id == "404" {
			http.Error(w, "no such live query", http.StatusNotFound)
			return
		}
		cancelled = append(cancelled, id)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"cancelled": true, "id": id})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &cancelled
}

func sampleReport() inflightReport {
	return inflightReport{
		Queries: []inflight.HandleSnapshot{
			{ID: 7, Fingerprint: "00000000000000aa", Engine: "CFQL", Phase: "filter+verify",
				AgeMS: 1500, GraphsDone: 3, GraphsTotal: 10, Steps: 4096},
			{ID: 9, Fingerprint: "00000000000000bb", Engine: "CFQL", Phase: "filter",
				AgeMS: 10, GraphsDone: 0, GraphsTotal: 0},
		},
		Registered: 12, Overflowed: 1, Cancels: 2,
	}
}

func TestWatchSingleSnapshot(t *testing.T) {
	ts, _ := fakeServer(t, sampleReport())
	var buf strings.Builder
	err := run(runOptions{Server: ts.URL, Iterations: 1, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FINGERPRINT", "00000000000000aa", "filter+verify",
		"3/10", "0/?", "registered=12 overflowed=1 cancels=2", "2 live"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Fatal("single snapshot should not emit the clear-screen escape")
	}
}

func TestWatchAcceptsFullInflightURL(t *testing.T) {
	ts, _ := fakeServer(t, sampleReport())
	var buf strings.Builder
	if err := run(runOptions{Server: ts.URL + "/debug/inflight", Iterations: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "00000000000000bb") {
		t.Fatalf("full-URL form did not fetch: %s", buf.String())
	}
}

func TestWatchJSON(t *testing.T) {
	ts, _ := fakeServer(t, sampleReport())
	var buf strings.Builder
	if err := run(runOptions{Server: ts.URL, Iterations: 1, JSON: true, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	var rep inflightReport
	if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if len(rep.Queries) != 2 || rep.Queries[0].ID != 7 {
		t.Fatalf("JSON round-trip lost data: %+v", rep)
	}
}

func TestCancelDelivers(t *testing.T) {
	ts, cancelled := fakeServer(t, sampleReport())
	var buf strings.Builder
	if err := run(runOptions{Server: ts.URL, Cancel: 7, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	if len(*cancelled) != 1 || (*cancelled)[0] != "7" {
		t.Fatalf("server saw cancels %v, want [7]", *cancelled)
	}
	if !strings.Contains(buf.String(), "cancellation delivered to query 7") {
		t.Fatalf("missing confirmation: %s", buf.String())
	}
}

func TestCancelMissingQueryFails(t *testing.T) {
	ts, _ := fakeServer(t, sampleReport())
	err := run(runOptions{Server: ts.URL, Cancel: 404, Out: &strings.Builder{}})
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404 error for a dead query, got %v", err)
	}
}

func TestRejectsNonHTTPURL(t *testing.T) {
	if err := run(runOptions{Server: "localhost:8080", Iterations: 1}); err == nil {
		t.Fatal("want error for a URL without scheme")
	}
}
