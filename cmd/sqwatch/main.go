// sqwatch is a live, top-style view of the queries a sqserver is
// executing right now. It polls GET /debug/inflight and renders the
// in-flight table — one row per live query with phase, graphs done/total,
// candidates, answers, enumeration steps, memory high-water mark and
// watchdog/cancel flags, oldest first — redrawing every -interval. With
// -cancel it instead delivers remote cancellation to one live query via
// POST /debug/inflight/{id}/cancel.
//
// Usage:
//
//	sqwatch http://localhost:8080                 # live view, 2s refresh
//	sqwatch -n 1 http://localhost:8080            # one snapshot and exit
//	sqwatch -json -n 1 http://localhost:8080      # snapshot as JSON
//	sqwatch -cancel 42 http://localhost:8080      # stop query 42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"subgraphquery/internal/inflight"
)

func main() {
	opts := runOptions{}
	flag.DurationVar(&opts.Interval, "interval", 2*time.Second, "refresh period")
	flag.IntVar(&opts.Iterations, "n", 0, "number of refreshes before exiting (0 = forever)")
	flag.BoolVar(&opts.JSON, "json", false, "emit each snapshot as JSON instead of a table")
	flag.Uint64Var(&opts.Cancel, "cancel", 0,
		"cancel the live query with this handle id instead of watching")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sqwatch [-interval 2s] [-n N] [-json] [-cancel ID] <server-url>")
		os.Exit(2)
	}
	opts.Server = flag.Arg(0)
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "sqwatch:", err)
		os.Exit(1)
	}
}

// runOptions carries one sqwatch invocation; the flag set in main
// populates it, tests construct it directly.
type runOptions struct {
	Server     string // server base URL or full /debug/inflight URL
	Interval   time.Duration
	Iterations int // 0 = poll forever
	JSON       bool
	Cancel     uint64 // non-zero: cancel this id and exit

	// Out receives the report; nil selects os.Stdout.
	Out io.Writer
}

// inflightReport mirrors the GET /debug/inflight JSON body.
type inflightReport struct {
	Queries    []inflight.HandleSnapshot `json:"queries"`
	Registered int64                     `json:"registered"`
	Overflowed int64                     `json:"overflowed"`
	Cancels    int64                     `json:"cancels"`
}

func run(opts runOptions) error {
	out := opts.Out
	if out == nil {
		out = os.Stdout
	}
	base := strings.TrimSuffix(strings.TrimSuffix(opts.Server, "/debug/inflight"), "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return fmt.Errorf("server URL must be http(s), got %q", opts.Server)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	if opts.Cancel != 0 {
		return cancelQuery(client, out, base, opts.Cancel)
	}

	for i := 0; opts.Iterations <= 0 || i < opts.Iterations; i++ {
		if i > 0 {
			time.Sleep(opts.Interval)
		}
		rep, err := fetchInflight(client, base)
		if err != nil {
			return err
		}
		if opts.JSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		if opts.Iterations != 1 {
			// Redraw in place like top; a single snapshot stays pipe-friendly.
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		fmt.Fprintf(out, "%s  %d live  registered=%d overflowed=%d cancels=%d\n",
			time.Now().Format("15:04:05"), len(rep.Queries),
			rep.Registered, rep.Overflowed, rep.Cancels)
		inflight.WriteTable(out, rep.Queries)
	}
	return nil
}

// fetchInflight pulls one registry snapshot from the server.
func fetchInflight(client *http.Client, base string) (inflightReport, error) {
	var rep inflightReport
	url := base + "/debug/inflight"
	resp, err := client.Get(url)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return rep, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("decoding %s: %w", url, err)
	}
	return rep, nil
}

// cancelQuery delivers remote cancellation to one live query by id.
func cancelQuery(client *http.Client, out io.Writer, base string, id uint64) error {
	url := fmt.Sprintf("%s/debug/inflight/%d/cancel", base, id)
	resp, err := client.Post(url, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Fprintf(out, "cancellation delivered to query %d\n", id)
	return nil
}
