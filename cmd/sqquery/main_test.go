package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	sq "subgraphquery"
)

func writeTestDB(t *testing.T, path string, db *sq.Database) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := sq.WriteDatabase(f, db); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.graph")
	qPath := filepath.Join(dir, "q.graph")

	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 10, NumVertices: 20, NumLabels: 3, Degree: 4, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeTestDB(t, dbPath, db)
	qs, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 4, Edges: 3, Method: sq.QueryRandomWalk, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeTestDB(t, qPath, sq.NewDatabase(qs))

	for _, engine := range []string{"CFQL", "Grapes", "Scan-VF2"} {
		if err := run(dbPath, qPath, engine, time.Minute, time.Minute, 2, true); err != nil {
			t.Errorf("run with %s: %v", engine, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.graph")
	db, _ := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 2, NumVertices: 10, NumLabels: 2, Degree: 3, Seed: 1,
	})
	writeTestDB(t, dbPath, db)

	if err := run(dbPath, "", "CFQL", time.Minute, time.Minute, 1, false); err == nil {
		t.Error("missing -queries should fail")
	}
	if err := run("/nonexistent", dbPath, "CFQL", time.Minute, time.Minute, 1, false); err == nil {
		t.Error("missing database should fail")
	}
	if err := run(dbPath, dbPath, "NoSuchEngine", time.Minute, time.Minute, 1, false); err == nil {
		t.Error("unknown engine should fail")
	}
}
