package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sq "subgraphquery"
)

func writeTestDB(t *testing.T, path string, db *sq.Database) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := sq.WriteDatabase(f, db); err != nil {
		t.Fatal(err)
	}
}

// testWorkload writes a small synthetic database and query set and returns
// their paths.
func testWorkload(t *testing.T) (dbPath, qPath string) {
	t.Helper()
	dir := t.TempDir()
	dbPath = filepath.Join(dir, "db.graph")
	qPath = filepath.Join(dir, "q.graph")

	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 10, NumVertices: 20, NumLabels: 3, Degree: 4, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeTestDB(t, dbPath, db)
	qs, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 4, Edges: 3, Method: sq.QueryRandomWalk, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	writeTestDB(t, qPath, sq.NewDatabase(qs))
	return dbPath, qPath
}

func TestRunEndToEnd(t *testing.T) {
	dbPath, qPath := testWorkload(t)
	for _, engine := range []string{"CFQL", "Grapes", "Scan-VF2"} {
		opts := runOptions{
			DBPath: dbPath, QueryPath: qPath, Engine: engine,
			Budget: time.Minute, IndexBudget: time.Minute, Workers: 2,
			Verbose: true, Out: &strings.Builder{},
		}
		if err := run(opts); err != nil {
			t.Errorf("run with %s: %v", engine, err)
		}
	}
}

// TestRunExplain is the acceptance gate for `sqquery -explain`: the output
// must include the per-stage candidate counts of a CFQL query.
func TestRunExplain(t *testing.T) {
	dbPath, qPath := testWorkload(t)
	var out strings.Builder
	err := run(runOptions{
		DBPath: dbPath, QueryPath: qPath, Engine: "CFQL",
		Budget: time.Minute, IndexBudget: time.Minute, Workers: 1,
		Explain: true, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"EXPLAIN engine=CFQL",
		"cfl.ldf", "cfl.topdown", "cfl.bottomup",
		"filter stages",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-explain output missing %q:\n%s", want, got)
		}
	}
}

// TestRunExplainIndexed: an IFV engine's -explain output reports its index
// probe.
func TestRunExplainIndexed(t *testing.T) {
	dbPath, qPath := testWorkload(t)
	var out strings.Builder
	err := run(runOptions{
		DBPath: dbPath, QueryPath: qPath, Engine: "Grapes",
		Budget: time.Minute, IndexBudget: time.Minute, Workers: 2,
		Explain: true, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"EXPLAIN engine=Grapes", "index probes:", "Grapes", "survivors="} {
		if !strings.Contains(got, want) {
			t.Errorf("-explain output missing %q:\n%s", want, got)
		}
	}
}

// TestRunTrace: -trace prints phase spans and the slowest SI tests.
func TestRunTrace(t *testing.T) {
	dbPath, qPath := testWorkload(t)
	var out strings.Builder
	err := run(runOptions{
		DBPath: dbPath, QueryPath: qPath, Engine: "CFQL",
		Budget: time.Minute, IndexBudget: time.Minute, Workers: 1,
		Trace: true, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "TRACE") || !strings.Contains(got, "filter=") {
		t.Errorf("-trace output missing phase spans:\n%s", got)
	}
	// The workload's queries come from the database, so at least one query
	// has candidates and therefore SI tests to report.
	if !strings.Contains(got, "slowest SI tests") {
		t.Errorf("-trace output missing slowest SI tests:\n%s", got)
	}
}

// TestRunProgress is the acceptance gate for `sqquery -progress`: while a
// query runs, a live line with phase and graphs-done must appear on the
// Err stream, and it must be cleared when the query finishes. The
// workload is the odd-cycle-vs-bipartite wall: the query cannot finish
// before its budget, so the poller is guaranteed draws.
func TestRunProgress(t *testing.T) {
	old := progressPeriod
	progressPeriod = 2 * time.Millisecond
	defer func() { progressPeriod = old }()

	dir := t.TempDir()
	dbPath := filepath.Join(dir, "wall.graph")
	qPath := filepath.Join(dir, "c9.graph")

	// K_{12,12}, all labels 0: bipartite, so an odd cycle never matches,
	// but the dense symmetric structure makes the search astronomically
	// large — the query always runs out its budget.
	const m = 12
	labels := make([]sq.Label, 2*m)
	var edges []sq.Edge
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			edges = append(edges, sq.Edge{U: sq.VertexID(i), V: sq.VertexID(m + j)})
		}
	}
	wall, err := sq.FromEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	writeTestDB(t, dbPath, sq.NewDatabase([]*sq.Graph{wall}))

	const n = 9
	cycLabels := make([]sq.Label, n)
	cycEdges := make([]sq.Edge, n)
	for i := 0; i < n; i++ {
		cycEdges[i] = sq.Edge{U: sq.VertexID(i), V: sq.VertexID((i + 1) % n)}
	}
	cyc, err := sq.FromEdges(cycLabels, cycEdges)
	if err != nil {
		t.Fatal(err)
	}
	writeTestDB(t, qPath, sq.NewDatabase([]*sq.Graph{cyc}))

	var out, errOut strings.Builder
	err = run(runOptions{
		DBPath: dbPath, QueryPath: qPath, Engine: "CFQL",
		Budget: 300 * time.Millisecond, IndexBudget: time.Minute, Workers: 1,
		Progress: true, Out: &out, Err: &errOut,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := errOut.String()
	for _, want := range []string{"query 0:", "filter+verify", "graphs=0/1", "steps="} {
		if !strings.Contains(got, want) {
			t.Errorf("-progress stderr missing %q:\n%q", want, got)
		}
	}
	if !strings.HasSuffix(got, "\r\x1b[2K") {
		t.Errorf("-progress did not clear its live line at query end:\n%q", got)
	}
	if !strings.Contains(out.String(), "timeouts          1") {
		t.Errorf("wall query should have timed out:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.graph")
	db, _ := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 2, NumVertices: 10, NumLabels: 2, Degree: 3, Seed: 1,
	})
	writeTestDB(t, dbPath, db)

	base := runOptions{
		Budget: time.Minute, IndexBudget: time.Minute, Workers: 1, Out: &strings.Builder{},
	}
	noQueries := base
	noQueries.DBPath, noQueries.Engine = dbPath, "CFQL"
	if err := run(noQueries); err == nil {
		t.Error("missing -queries should fail")
	}
	noDB := base
	noDB.DBPath, noDB.QueryPath, noDB.Engine = "/nonexistent", dbPath, "CFQL"
	if err := run(noDB); err == nil {
		t.Error("missing database should fail")
	}
	badEngine := base
	badEngine.DBPath, badEngine.QueryPath, badEngine.Engine = dbPath, dbPath, "NoSuchEngine"
	if err := run(badEngine); err == nil {
		t.Error("unknown engine should fail")
	}
}

// extractExplain returns the EXPLAIN blocks of a -explain run: each
// "EXPLAIN engine=" line plus its indented report body, with the
// surrounding per-query timing lines (which are nondeterministic)
// stripped.
func extractExplain(out string) string {
	var b strings.Builder
	in := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "EXPLAIN "):
			in = true
		case in && !strings.HasPrefix(line, " "):
			in = false
		}
		if in {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TestRunExplainGolden pins the exact text of the -explain report — the
// stage-table ordering, the per-vertex mean candidate columns, and the
// refinement summary — for a fixed synthetic workload. Timing-bearing
// lines are excluded, so the text is deterministic. Regenerate with
// SQQUERY_UPDATE_GOLDEN=1.
func TestRunExplainGolden(t *testing.T) {
	dbPath, qPath := testWorkload(t)
	var out strings.Builder
	err := run(runOptions{
		DBPath: dbPath, QueryPath: qPath, Engine: "CFQL",
		Budget: time.Minute, IndexBudget: time.Minute, Workers: 1,
		Explain: true, Out: &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := extractExplain(out.String())
	if got == "" {
		t.Fatalf("no EXPLAIN blocks in output:\n%s", out.String())
	}

	golden := filepath.Join("testdata", "explain_golden.txt")
	if os.Getenv("SQQUERY_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("-explain output drifted from %s (regenerate with SQQUERY_UPDATE_GOLDEN=1):\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
