// sqquery runs a subgraph query workload against a graph database with a
// chosen engine and reports per-query answers and the paper's metrics.
//
// Usage:
//
//	sqquery -db db.graph -queries q8s.graph -engine CFQL [-budget 10m] [-v]
//
// Engines: CT-Index, Grapes, GGSX (IFV); CFL, GraphQL, CFQL (vcFV);
// vcGrapes, vcGGSX (IvcFV); Scan-VF2 (no filtering).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/bench"
	"subgraphquery/internal/core"
)

func main() {
	dbPath := flag.String("db", "db.graph", "database file")
	queryPath := flag.String("queries", "", "query workload file (required)")
	engineName := flag.String("engine", "CFQL", "engine name")
	budget := flag.Duration("budget", 10*time.Minute, "per-query time budget")
	indexBudget := flag.Duration("index-budget", 24*time.Hour, "index construction budget")
	workers := flag.Int("workers", 6, "verification workers for the Grapes engines")
	verbose := flag.Bool("v", false, "print per-query results")
	flag.Parse()

	if err := run(*dbPath, *queryPath, *engineName, *budget, *indexBudget, *workers, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "sqquery:", err)
		os.Exit(1)
	}
}

func run(dbPath, queryPath, engineName string, budget, indexBudget time.Duration, workers int, verbose bool) error {
	if queryPath == "" {
		return fmt.Errorf("-queries is required")
	}
	db, err := readDB(dbPath)
	if err != nil {
		return fmt.Errorf("reading database: %w", err)
	}
	queryDB, err := readDB(queryPath)
	if err != nil {
		return fmt.Errorf("reading queries: %w", err)
	}

	engine, err := bench.NewEngine(engineName)
	if err != nil {
		return err
	}
	t0 := time.Now()
	err = engine.Build(db, core.BuildOptions{
		Deadline: time.Now().Add(indexBudget),
		Workers:  workers,
	})
	if err != nil {
		return fmt.Errorf("index construction: %w", err)
	}
	buildTime := time.Since(t0)
	if bench.IsIndexed(engineName) {
		fmt.Printf("index built in %v (%.2f MB)\n", buildTime.Round(time.Millisecond),
			float64(engine.IndexMemory())/(1<<20))
	}

	var filter, verify time.Duration
	var cands, answers, timeouts int
	for i := 0; i < queryDB.Len(); i++ {
		q := queryDB.Graph(i)
		res := engine.Query(q, core.QueryOptions{
			Deadline: time.Now().Add(budget),
			Workers:  workers,
		})
		filter += res.FilterTime
		verify += res.VerifyTime
		cands += res.Candidates
		answers += len(res.Answers)
		if res.TimedOut {
			timeouts++
		}
		if verbose {
			status := ""
			if res.TimedOut {
				status = " TIMEOUT"
			}
			fmt.Printf("query %3d: |C|=%d |A|=%d filter=%v verify=%v%s\n",
				i, res.Candidates, len(res.Answers),
				res.FilterTime.Round(time.Microsecond), res.VerifyTime.Round(time.Microsecond), status)
		}
	}
	n := queryDB.Len()
	fmt.Printf("\nengine %s on %d queries over %d data graphs:\n", engineName, n, db.Len())
	fmt.Printf("  avg filter time   %v\n", (filter / time.Duration(n)).Round(time.Microsecond))
	fmt.Printf("  avg verify time   %v\n", (verify / time.Duration(n)).Round(time.Microsecond))
	fmt.Printf("  avg candidates    %.1f\n", float64(cands)/float64(n))
	fmt.Printf("  avg answers       %.1f\n", float64(answers)/float64(n))
	if cands > 0 {
		fmt.Printf("  filtering precision %.3f\n", float64(answers)/float64(cands))
	}
	fmt.Printf("  timeouts          %d\n", timeouts)
	return nil
}

func readDB(path string) (*sq.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sq.ReadDatabase(f)
}
