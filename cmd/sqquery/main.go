// sqquery runs a subgraph query workload against a graph database with a
// chosen engine and reports per-query answers and the paper's metrics.
//
// Usage:
//
//	sqquery -db db.graph -queries q8s.graph -engine CFQL [-budget 10m] [-v]
//	sqquery -db db.graph -queries q8s.graph -explain   # per-query EXPLAIN
//	sqquery -db db.graph -queries q8s.graph -trace     # phase spans + slow SI tests
//	sqquery -db db.graph -queries q8s.graph -progress  # live per-query progress on stderr
//
// Engines: CT-Index, Grapes, GGSX (IFV); CFL, GraphQL, CFQL (vcFV);
// vcGrapes, vcGGSX (IvcFV); Scan-VF2 (no filtering).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/bench"
	"subgraphquery/internal/core"
	"subgraphquery/internal/obs"
)

func main() {
	opts := runOptions{}
	flag.StringVar(&opts.DBPath, "db", "db.graph", "database file")
	flag.StringVar(&opts.QueryPath, "queries", "", "query workload file (required)")
	flag.StringVar(&opts.Engine, "engine", "CFQL", "engine name")
	flag.DurationVar(&opts.Budget, "budget", 10*time.Minute, "per-query time budget")
	flag.DurationVar(&opts.IndexBudget, "index-budget", 24*time.Hour, "index construction budget")
	flag.IntVar(&opts.Workers, "workers", 6, "verification workers for the Grapes engines")
	flag.BoolVar(&opts.Verbose, "v", false, "print per-query results")
	flag.BoolVar(&opts.Explain, "explain", false,
		"print a per-query EXPLAIN report: filter-stage candidate counts, index probe stats, matching order")
	flag.BoolVar(&opts.Trace, "trace", false,
		"print per-query phase spans and the slowest subgraph isomorphism tests")
	flag.BoolVar(&opts.Progress, "progress", false,
		"report live phase and graphs-done progress per query on stderr while it runs")
	flag.Parse()

	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "sqquery:", err)
		os.Exit(1)
	}
}

// runOptions carries every knob of one sqquery invocation; the flag set in
// main populates it, tests construct it directly.
type runOptions struct {
	DBPath      string
	QueryPath   string
	Engine      string
	Budget      time.Duration
	IndexBudget time.Duration
	Workers     int
	Verbose     bool
	Explain     bool
	Trace       bool
	Progress    bool

	// Out receives the report; nil selects os.Stdout. Err receives the
	// -progress live line; nil selects os.Stderr.
	Out io.Writer
	Err io.Writer
}

func run(opts runOptions) error {
	out := opts.Out
	if out == nil {
		out = os.Stdout
	}
	if opts.QueryPath == "" {
		return fmt.Errorf("-queries is required")
	}
	db, err := readDB(opts.DBPath)
	if err != nil {
		return fmt.Errorf("reading database: %w", err)
	}
	queryDB, err := readDB(opts.QueryPath)
	if err != nil {
		return fmt.Errorf("reading queries: %w", err)
	}

	engine, err := bench.NewEngine(opts.Engine)
	if err != nil {
		return err
	}
	t0 := time.Now()
	err = engine.Build(db, core.BuildOptions{
		Deadline: time.Now().Add(opts.IndexBudget),
		Workers:  opts.Workers,
	})
	if err != nil {
		return fmt.Errorf("index construction: %w", err)
	}
	buildTime := time.Since(t0)
	if bench.IsIndexed(opts.Engine) {
		fmt.Fprintf(out, "index built in %v (%.2f MB)\n", buildTime.Round(time.Millisecond),
			float64(engine.IndexMemory())/(1<<20))
	}

	perQuery := opts.Verbose || opts.Explain || opts.Trace
	// -progress registers each query in a private in-flight registry (the
	// same handle the server path uses) and polls its snapshot onto stderr
	// while the engine runs.
	var reg *sq.InflightRegistry
	if opts.Progress {
		reg = sq.NewInflightRegistry(4)
	}
	errw := opts.Err
	if errw == nil {
		errw = os.Stderr
	}
	var filter, verify time.Duration
	var cands, answers, timeouts int
	for i := 0; i < queryDB.Len(); i++ {
		q := queryDB.Graph(i)
		qopts := core.QueryOptions{
			Deadline: time.Now().Add(opts.Budget),
			Workers:  opts.Workers,
			Inflight: reg,
		}
		var ex *obs.Explain
		if opts.Explain {
			ex = obs.NewExplain()
			qopts.Explain = ex
		}
		var trace *obs.Trace
		if opts.Trace {
			trace = obs.NewTrace()
			qopts.Observer = trace
		}
		stopProgress := func() {}
		if opts.Progress {
			stopProgress = watchProgress(errw, reg, i)
		}
		res := engine.Query(q, qopts)
		stopProgress()
		filter += res.FilterTime
		verify += res.VerifyTime
		cands += res.Candidates
		answers += len(res.Answers)
		if res.TimedOut {
			timeouts++
		}
		if perQuery {
			status := ""
			if res.TimedOut {
				status = " TIMEOUT"
			}
			// The fingerprint lets a slow line here be matched against
			// /debug/top, sqtop and BENCH_*.json shape breakdowns.
			fmt.Fprintf(out, "query %3d: fp=%s |C|=%d |A|=%d filter=%v verify=%v%s\n",
				i, res.Fingerprint, res.Candidates, len(res.Answers),
				res.FilterTime.Round(time.Microsecond), res.VerifyTime.Round(time.Microsecond), status)
		}
		if ex != nil {
			ex.Snapshot().WriteText(out)
		}
		if trace != nil {
			writeTraceText(out, trace.Snapshot())
		}
	}
	n := queryDB.Len()
	fmt.Fprintf(out, "\nengine %s on %d queries over %d data graphs:\n", opts.Engine, n, db.Len())
	fmt.Fprintf(out, "  avg filter time   %v\n", (filter / time.Duration(n)).Round(time.Microsecond))
	fmt.Fprintf(out, "  avg verify time   %v\n", (verify / time.Duration(n)).Round(time.Microsecond))
	fmt.Fprintf(out, "  avg candidates    %.1f\n", float64(cands)/float64(n))
	fmt.Fprintf(out, "  avg answers       %.1f\n", float64(answers)/float64(n))
	if cands > 0 {
		fmt.Fprintf(out, "  filtering precision %.3f\n", float64(answers)/float64(cands))
	}
	fmt.Fprintf(out, "  timeouts          %d\n", timeouts)
	return nil
}

// progressPeriod is how often -progress redraws the live line (a var so
// tests can tighten it against fast queries).
var progressPeriod = 200 * time.Millisecond

// watchProgress polls the registry while query qi runs, redrawing one
// stderr line in place (phase, graphs done/total, candidates, answers,
// enumeration steps). The returned stop function clears the line and
// waits for the poller to exit; the engine itself registers and
// deregisters the handle the poller reads.
func watchProgress(w io.Writer, reg *sq.InflightRegistry, qi int) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(progressPeriod)
		defer t.Stop()
		drew := false
		for {
			select {
			case <-done:
				if drew {
					fmt.Fprintf(w, "\r\x1b[2K") // clear the live line
				}
				return
			case <-t.C:
				snaps := reg.Snapshot()
				if len(snaps) == 0 {
					continue // engine not yet registered, or already done
				}
				s := snaps[0]
				total := fmt.Sprintf("%d", s.GraphsTotal)
				if s.GraphsTotal == 0 {
					total = "?"
				}
				fmt.Fprintf(w, "\r\x1b[2Kquery %d: %s graphs=%d/%s cand=%d ans=%d steps=%d",
					qi, s.Phase, s.GraphsDone, total, s.Candidates, s.Answers, s.Steps)
				drew = true
			}
		}
	}()
	return func() { close(done); <-finished }
}

// maxTraceSlowest bounds the slowest-SI-test listing of -trace.
const maxTraceSlowest = 5

// writeTraceText renders a trace snapshot: phase spans in emission order,
// then the slowest subgraph isomorphism tests — the stragglers the paper's
// per-set means hide.
func writeTraceText(w io.Writer, s obs.TraceSnapshot) {
	fmt.Fprintf(w, "TRACE")
	for _, sp := range s.Phases {
		fmt.Fprintf(w, " %s=%v", sp.Name, (time.Duration(sp.DurationUS) * time.Microsecond).Round(time.Microsecond))
	}
	if s.Workers > 0 {
		fmt.Fprintf(w, " workers=%d", s.Workers)
	}
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Fprintf(w, " cache=%dh/%dm", s.CacheHits, s.CacheMisses)
	}
	fmt.Fprintln(w)
	if len(s.Verifications) == 0 {
		return
	}
	events := append([]obs.VerifyEvent(nil), s.Verifications...)
	sort.Slice(events, func(i, j int) bool { return events[i].DurationUS > events[j].DurationUS })
	if len(events) > maxTraceSlowest {
		events = events[:maxTraceSlowest]
	}
	fmt.Fprintf(w, "  slowest SI tests (%d of %d", len(events), s.VerificationsTotal)
	if s.Truncated {
		fmt.Fprintf(w, ", trace truncated: %d dropped", s.VerificationsDropped)
	}
	fmt.Fprintf(w, "):")
	for _, ev := range events {
		outcome := "miss"
		if ev.Found {
			outcome = "hit"
		}
		fmt.Fprintf(w, " g%d=%v/%dsteps/%s", ev.Graph,
			(time.Duration(ev.DurationUS) * time.Microsecond).Round(time.Microsecond), ev.Steps, outcome)
	}
	fmt.Fprintln(w)
}

func readDB(path string) (*sq.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sq.ReadDatabase(f)
}
