package main

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// admission is the server's load shedder: a counting semaphore bounds
// concurrently executing queries, and a bounded wait queue absorbs short
// bursts. A request that finds the queue full is shed immediately (429 +
// Retry-After); a queued request that cannot get a slot within the wait
// deadline is shed late; one whose client gives up while queued is dropped
// with 408. The alternative — admitting everything — lets a burst of
// expensive queries multiply memory footprints (each query pins a scratch
// arena and candidate sets) until the process OOMs, which no per-query
// budget can prevent.
type admission struct {
	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int64
	wait     time.Duration
	jitter   int
}

// admitVerdict is the outcome of admission.acquire.
type admitVerdict int

const (
	// admitOK: a slot was acquired; the caller must invoke release.
	admitOK admitVerdict = iota
	// admitShed: the wait queue was full on arrival — shed immediately.
	admitShed
	// admitTimeout: queued, but no slot freed within the wait deadline.
	admitTimeout
	// admitCancelled: the client went away while queued.
	admitCancelled
)

// newAdmission returns the shedder, or nil (admission disabled) when
// maxConcurrent <= 0. maxQueue <= 0 disables queueing: requests beyond the
// concurrency limit are shed on arrival. wait <= 0 selects 1s.
// jitterSecs widens the Retry-After hint by a uniform random 0..jitterSecs
// seconds so a synchronized client herd shed at the same instant does not
// come back at the same instant; <= 0 keeps the hint deterministic.
func newAdmission(maxConcurrent, maxQueue int, wait time.Duration, jitterSecs int) *admission {
	if maxConcurrent <= 0 {
		return nil
	}
	if wait <= 0 {
		wait = time.Second
	}
	if jitterSecs < 0 {
		jitterSecs = 0
	}
	return &admission{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
		wait:     wait,
		jitter:   jitterSecs,
	}
}

// acquire tries to take an execution slot, waiting in the bounded queue if
// necessary. done is the request context's Done channel. On admitOK the
// returned release frees the slot; it is nil otherwise.
func (a *admission) acquire(done <-chan struct{}) (func(), admitVerdict) {
	select {
	case a.sem <- struct{}{}:
		return a.release, admitOK
	default:
	}
	if a.queued.Load() >= a.maxQueue {
		return nil, admitShed
	}
	a.queued.Add(1)
	defer a.queued.Add(-1)
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		return a.release, admitOK
	case <-t.C:
		return nil, admitTimeout
	case <-done:
		return nil, admitCancelled
	}
}

func (a *admission) release() { <-a.sem }

// depth reports the current wait-queue occupancy.
func (a *admission) depth() int64 { return a.queued.Load() }

// saturated reports whether a new arrival would be shed right now: every
// slot busy and the queue full. /healthz uses it as the readiness signal so
// load balancers steer traffic away before requests start bouncing.
func (a *admission) saturated() bool {
	return len(a.sem) == cap(a.sem) && a.queued.Load() >= a.maxQueue
}

// retryAfterSeconds is the Retry-After hint on shed responses: the queue
// wait rounded up to a whole second, at least 1, plus a uniform random
// 0..jitter seconds. The base value alone synchronizes retries: every
// client shed during the same burst receives the same hint and the whole
// herd returns in one spike, which is shed again — a retry storm that
// never decays. Jitter spreads the second wave across the band.
func (a *admission) retryAfterSeconds() int {
	s := int((a.wait + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	if a.jitter > 0 {
		s += rand.IntN(a.jitter + 1)
	}
	return s
}
