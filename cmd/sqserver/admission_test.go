package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	sq "subgraphquery"
)

func TestAdmissionVerdicts(t *testing.T) {
	never := make(chan struct{})

	t.Run("disabled", func(t *testing.T) {
		if a := newAdmission(0, 8, time.Second, 0); a != nil {
			t.Error("maxConcurrent=0 should disable admission")
		}
		if a := newAdmission(-1, 8, time.Second, 0); a != nil {
			t.Error("negative maxConcurrent should disable admission")
		}
	})

	t.Run("shed-on-full-queue", func(t *testing.T) {
		a := newAdmission(1, 0, 50*time.Millisecond, 0)
		release, v := a.acquire(never)
		if v != admitOK {
			t.Fatalf("first acquire: %v, want admitOK", v)
		}
		if _, v := a.acquire(never); v != admitShed {
			t.Errorf("second acquire with no queue: %v, want admitShed", v)
		}
		if !a.saturated() {
			t.Error("slot busy + zero queue should read saturated")
		}
		release()
		if a.saturated() {
			t.Error("saturated after release")
		}
		if _, v := a.acquire(never); v != admitOK {
			t.Errorf("acquire after release: %v, want admitOK", v)
		}
	})

	t.Run("queue-timeout", func(t *testing.T) {
		a := newAdmission(1, 1, 20*time.Millisecond, 0)
		release, v := a.acquire(never)
		if v != admitOK {
			t.Fatalf("first acquire: %v", v)
		}
		defer release()
		t0 := time.Now()
		if _, v := a.acquire(never); v != admitTimeout {
			t.Errorf("queued acquire: %v, want admitTimeout", v)
		}
		if waited := time.Since(t0); waited < 20*time.Millisecond {
			t.Errorf("timed out after %v, want >= the 20ms queue wait", waited)
		}
	})

	t.Run("queue-handoff", func(t *testing.T) {
		a := newAdmission(1, 1, time.Second, 0)
		release, v := a.acquire(never)
		if v != admitOK {
			t.Fatalf("first acquire: %v", v)
		}
		got := make(chan admitVerdict, 1)
		go func() {
			r2, v2 := a.acquire(never)
			if r2 != nil {
				defer r2()
			}
			got <- v2
		}()
		for a.depth() == 0 {
			time.Sleep(time.Millisecond)
		}
		release()
		if v2 := <-got; v2 != admitOK {
			t.Errorf("queued acquire after release: %v, want admitOK", v2)
		}
	})

	t.Run("client-gone", func(t *testing.T) {
		a := newAdmission(1, 1, time.Second, 0)
		release, v := a.acquire(never)
		if v != admitOK {
			t.Fatalf("first acquire: %v", v)
		}
		defer release()
		gone := make(chan struct{})
		got := make(chan admitVerdict, 1)
		go func() {
			_, v2 := a.acquire(gone)
			got <- v2
		}()
		for a.depth() == 0 {
			time.Sleep(time.Millisecond)
		}
		close(gone)
		if v2 := <-got; v2 != admitCancelled {
			t.Errorf("queued acquire with dead client: %v, want admitCancelled", v2)
		}
	})

	t.Run("retry-after", func(t *testing.T) {
		for wait, want := range map[time.Duration]int{
			50 * time.Millisecond:   1,
			time.Second:             1,
			1500 * time.Millisecond: 2,
		} {
			a := newAdmission(1, 0, wait, 0)
			if got := a.retryAfterSeconds(); got != want {
				t.Errorf("retryAfterSeconds(wait=%v) = %d, want %d", wait, got, want)
			}
		}
	})

	t.Run("retry-after-jitter-band", func(t *testing.T) {
		// wait=1500ms rounds up to base 2; jitter=3 widens the hint to
		// [2, 5]. Every draw must stay inside the band, and across many
		// draws the hint must not be constant (else the herd stays
		// synchronized and jitter bought nothing).
		const base, jitter = 2, 3
		a := newAdmission(1, 0, 1500*time.Millisecond, jitter)
		seen := map[int]bool{}
		for i := 0; i < 400; i++ {
			got := a.retryAfterSeconds()
			if got < base || got > base+jitter {
				t.Fatalf("retryAfterSeconds() = %d, outside band [%d, %d]", got, base, base+jitter)
			}
			seen[got] = true
		}
		if len(seen) < 2 {
			t.Errorf("400 draws produced a single value %v; jitter is not being applied", seen)
		}
	})
}

// admissionServer builds a server with a single execution slot so the tests
// can hold it and observe shedding end to end.
func admissionServer(t *testing.T, maxQueue int, wait time.Duration) *server {
	t.Helper()
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 10, NumVertices: 16, NumLabels: 3, Degree: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(db, sq.NewCFQLEngine(), serverConfig{
		slowThreshold: -1,
		maxInflight:   1,
		maxQueue:      maxQueue,
		queueWait:     wait,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestQuerySheds429WithRetryAfter(t *testing.T) {
	srv := admissionServer(t, 0, 2*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Hold the only slot, as an in-flight query would.
	release, v := srv.adm.acquire(make(chan struct{}))
	if v != admitOK {
		t.Fatalf("acquire: %v", v)
	}

	q := graphText(t, testQuery(t, srv))
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if got := srv.shed.Value(); got != 1 {
		t.Errorf("queries_shed_total = %d, want 1", got)
	}

	// Saturated server reads not-ready.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "shedding") {
		t.Errorf("healthz while saturated: %d %q, want 503 shedding", hz.StatusCode, body)
	}

	// Metrics expose the shed counter and queue depth gauge.
	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(mt.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mt.Body.Close()
	if metrics.Counters["queries_shed_total"] != 1 {
		t.Errorf("metrics queries_shed_total = %d, want 1", metrics.Counters["queries_shed_total"])
	}
	if _, ok := metrics.Gauges["admission_queue_depth"]; !ok {
		t.Error("metrics missing admission_queue_depth gauge")
	}

	release()
	hz2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz2.Body)
	hz2.Body.Close()
	if hz2.StatusCode != http.StatusOK {
		t.Errorf("healthz after release: %d, want 200", hz2.StatusCode)
	}

	// And the freed slot serves queries again.
	ok, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ok.Body)
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Errorf("query after release: %d, want 200", ok.StatusCode)
	}
}

func TestQueryQueueTimeoutSheds(t *testing.T) {
	srv := admissionServer(t, 4, 30*time.Millisecond)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	release, v := srv.adm.acquire(make(chan struct{}))
	if v != admitOK {
		t.Fatalf("acquire: %v", v)
	}
	defer release()

	q := graphText(t, testQuery(t, srv))
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429 after queue wait expiry", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
}

func TestQueryClientGoneWhileQueued408(t *testing.T) {
	srv := admissionServer(t, 4, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	release, v := srv.adm.acquire(make(chan struct{}))
	if v != admitOK {
		t.Fatalf("acquire: %v", v)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	q := graphText(t, testQuery(t, srv))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Let the request reach the admission queue, then walk away.
		for srv.adm.depth() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		// The handler answered 408 before the transport noticed the cancel.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestTimeout {
			t.Errorf("status %d, want 408", resp.StatusCode)
		}
		return
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("unexpected transport error: %v", err)
	}
}

// TestQueryMemoryBudgetOnWire: a server-wide memory budget surfaces in the
// response as skipped graphs with structured budget errors — HTTP 200, the
// answer set an explicit lower bound — rather than an OOM or a 500.
func TestQueryMemoryBudgetOnWire(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 10, NumVertices: 16, NumLabels: 3, Degree: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(db, sq.NewCFQLEngine(), serverConfig{
		slowThreshold: -1,
		memBudget:     1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := graphText(t, testQuery(t, srv))
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Skipped == 0 || len(out.GraphErrors) == 0 {
		t.Fatalf("skipped=%d graph_errors=%d under a 1-byte budget, want both > 0",
			out.Skipped, len(out.GraphErrors))
	}
	for _, qe := range out.GraphErrors {
		if qe.Kind != sq.ErrKindBudget {
			t.Errorf("graph error kind %q, want %q", qe.Kind, sq.ErrKindBudget)
		}
	}
	if len(out.Answers) != 0 {
		t.Errorf("answers %v under a 1-byte budget, want none", out.Answers)
	}
}
