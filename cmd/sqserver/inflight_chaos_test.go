//go:build sqchaos

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/telemetry"
)

// TestInflightStormUnderChaos is the live-inspection storm from the issue,
// meant to run under -race: 500 concurrent queries with sqchaos latency
// injection in the engine hot paths, a mixed workload where every 40th
// query is the unfinishable odd-cycle-vs-bipartite wall, concurrent
// /debug/inflight polls, and remote cancels delivered mid-flight. The
// contract proved here:
//
//   - every remotely cancelled query returns a response with
//     cancelled=true to its own client (wall queries cannot end any other
//     way, so a non-cancelled wall response means the cancel was lost);
//   - the registry is empty once the storm drains — no leaked handles;
//   - the stuck-query watchdog captured exactly one stack dump per
//     flagged query, even though flagged queries stayed stuck across many
//     scan intervals.
func TestInflightStormUnderChaos(t *testing.T) {
	synth, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 20, NumVertices: 24, NumLabels: 3, Degree: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The database carries the synthetic graphs plus the wall: K_{16,16},
	// all labels 0. An odd-cycle query can only end by cancellation.
	graphs := make([]*sq.Graph, 0, synth.Len()+1)
	for i := 0; i < synth.Len(); i++ {
		graphs = append(graphs, synth.Graph(i))
	}
	graphs = append(graphs, wallDB(t, 16).Graph(0))
	db := sq.NewDatabase(graphs)

	fault.Set(fault.Config{}) // build stays fault-free
	srv, err := newServer(db, sq.NewCFQLEngine(), serverConfig{
		slowThreshold: -1,
		// The budget is a backstop only: wall queries are flagged at
		// ~150ms and cancelled within a scan interval, far below it.
		budget:           5 * time.Second,
		maxInflight:      32,
		maxQueue:         64,
		queueWait:        time.Second,
		eventsSize:       4096, // nothing may displace the watchdog entries we tally
		watchdogInterval: 20 * time.Millisecond,
		watchdogFloor:    150 * time.Millisecond,
		// A vanishing multiple pins the threshold to the floor: the storm's
		// own slow queries would otherwise inflate the rolling p99 and push
		// the flag age past the wall queries' lifetime nondeterministically.
		watchdogMultiple: 0.001,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	queries, err := sq.GenerateQuerySet(synth, sq.QuerySetConfig{
		Count: 10, Edges: 3, Method: sq.QueryRandomWalk, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([]string, len(queries))
	for i, q := range queries {
		bodies[i] = graphText(t, q)
	}
	wall := oddCycle(t, 9)
	wallBody := graphText(t, wall)
	wallFP := sq.ComputeFingerprint(wall).String()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	defer client.CloseIdleConnections()
	baselineG := runtime.NumGoroutine()

	fault.Set(fault.Config{
		LatencyRate: 0.05,
		Latency:     time.Millisecond,
		Seed:        3,
	})
	defer fault.Set(fault.Config{})

	const totalQueries = 500
	const wallEvery = 40 // queries 0, 40, 80, ... are wall queries
	const clients = 8

	// responses maps inflight_id -> cancelled, for every 200 the clients
	// saw; cancelledIDs is every id the cancel endpoint confirmed.
	var mu sync.Mutex
	responses := map[uint64]bool{}
	var wallSent, wallCancelled int64
	cancelledIDs := map[uint64]bool{}

	var badStatus, transportErrors atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= totalQueries {
					return
				}
				body := bodies[i%int64(len(bodies))]
				isWall := i%wallEvery == 0
				if isWall {
					atomic.AddInt64(&wallSent, 1)
					body = wallBody
				}
				resp, err := client.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
				if err != nil {
					transportErrors.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					badStatus.Add(1)
					continue
				}
				var qr queryResponse
				if json.Unmarshal(raw, &qr) != nil {
					transportErrors.Add(1)
					continue
				}
				mu.Lock()
				responses[qr.InflightID] = qr.Cancelled
				if isWall && qr.Cancelled {
					wallCancelled++
				}
				mu.Unlock()
				if isWall && !qr.Cancelled {
					t.Errorf("wall query %d returned without cancelled=true (id %d)", i, qr.InflightID)
				}
			}
		}()
	}

	// The inspector: concurrent /debug/inflight polls, cancelling every
	// wall query the watchdog has flagged. Wall queries cannot finish, so
	// each one is eventually flagged (age > floor) and cancelled here.
	stopPoll := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			resp, err := client.Get(ts.URL + "/debug/inflight")
			if err != nil {
				continue
			}
			var body struct {
				Queries []inflight.HandleSnapshot `json:"queries"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			for _, s := range body.Queries {
				if s.Fingerprint != wallFP || !s.Flagged || s.Cancelled {
					continue
				}
				cr, err := client.Post(fmt.Sprintf("%s/debug/inflight/%d/cancel", ts.URL, s.ID), "", nil)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, cr.Body)
				cr.Body.Close()
				if cr.StatusCode == http.StatusOK {
					mu.Lock()
					cancelledIDs[s.ID] = true
					mu.Unlock()
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stopPoll)
	<-pollDone
	fault.Set(fault.Config{})

	if transportErrors.Load() != 0 || badStatus.Load() != 0 {
		t.Errorf("%d transport errors, %d non-200 responses; storm expected clean 200s",
			transportErrors.Load(), badStatus.Load())
	}
	if wallSent == 0 {
		t.Fatal("storm sent no wall queries; the cancel path went unexercised")
	}
	t.Logf("storm: %d queries (%d wall, %d cancelled), %d confirmed remote cancels, %d watchdog flags",
		totalQueries, wallSent, wallCancelled, len(cancelledIDs), srv.stuck.Value())

	// Every confirmed remote cancel reached its client as cancelled=true.
	for id := range cancelledIDs {
		cancelled, ok := responses[id]
		if !ok {
			t.Errorf("cancelled query %d produced no client response", id)
			continue
		}
		if !cancelled {
			t.Errorf("query %d was remotely cancelled but its response says cancelled=false", id)
		}
	}
	if int64(len(cancelledIDs)) != wallSent {
		t.Errorf("confirmed %d remote cancels, want %d (one per wall query)", len(cancelledIDs), wallSent)
	}

	// No handle outlives its query.
	awaitEmptyRegistry(t, srv.live)

	// Exactly one stack dump per flagged query: tally the watchdog_stuck
	// incidents by handle id — no id may appear twice, every cancelled
	// wall query must appear once, and the counter agrees with the tally.
	resp, err := client.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	var events struct {
		Events []telemetry.DebugEvent `json:"events"`
	}
	err = json.NewDecoder(resp.Body).Decode(&events)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	flaggedIDs := map[uint64]int{}
	for _, ev := range events.Events {
		if ev.Kind != "watchdog_stuck" {
			continue
		}
		var id uint64
		if _, err := fmt.Sscanf(ev.Message, "query %d stuck:", &id); err != nil {
			t.Errorf("unparseable watchdog_stuck message %q", ev.Message)
			continue
		}
		flaggedIDs[id]++
	}
	for id, n := range flaggedIDs {
		if n != 1 {
			t.Errorf("query %d has %d watchdog stack dumps, want exactly 1", id, n)
		}
	}
	for id := range cancelledIDs {
		if flaggedIDs[id] != 1 {
			t.Errorf("cancelled wall query %d has %d watchdog dumps, want 1", id, flaggedIDs[id])
		}
	}
	if got := srv.stuck.Value(); got != int64(len(flaggedIDs)) {
		t.Errorf("watchdog_flagged_total = %d, but %d distinct queries were flagged", got, len(flaggedIDs))
	}

	// The storm leaves no goroutines behind.
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baselineG {
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: have %d, want <= %d", runtime.NumGoroutine(), baselineG)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}
