// sqserver exposes a graph database over HTTP: the "query operation in a
// graph database" setting the paper's introduction motivates (CAD, protein
// interaction retrieval, social networks, RDF). The index-free CFQL engine
// (optionally behind the GraphCache-style result cache) answers queries;
// new data graphs can be appended at runtime with no index maintenance.
//
// Endpoints:
//
//	POST /query   body: one graph in the text format -> JSON answer
//	POST /graphs  body: one graph in the text format -> JSON {"id": n}
//	GET  /stats   JSON database statistics
//
// Usage:
//
//	sqserver -db db.graph [-addr :8080] [-engine CFQL] [-cache 64]
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	sq "subgraphquery"
	"subgraphquery/internal/bench"
)

func main() {
	dbPath := flag.String("db", "db.graph", "database file")
	addr := flag.String("addr", ":8080", "listen address")
	engineName := flag.String("engine", "CFQL", "query engine")
	cache := flag.Int("cache", 64, "result cache entries (0 disables)")
	budget := flag.Duration("budget", 0, "per-query budget (0 = none)")
	flag.Parse()

	f, err := os.Open(*dbPath)
	if err != nil {
		log.Fatalf("sqserver: %v", err)
	}
	db, err := sq.ReadDatabase(f)
	f.Close()
	if err != nil {
		log.Fatalf("sqserver: %v", err)
	}

	engine, err := bench.NewEngine(*engineName)
	if err != nil {
		log.Fatalf("sqserver: %v", err)
	}
	srv, err := newServer(db, engine, *cache, *budget)
	if err != nil {
		log.Fatalf("sqserver: %v", err)
	}
	log.Printf("sqserver: %d graphs loaded, engine %s, listening on %s",
		db.Len(), srv.engine.Name(), *addr)
	if err := http.ListenAndServe(*addr, srv.mux()); err != nil {
		log.Fatal(err)
	}
}
