// sqserver exposes a graph database over HTTP: the "query operation in a
// graph database" setting the paper's introduction motivates (CAD, protein
// interaction retrieval, social networks, RDF). The index-free CFQL engine
// (optionally behind the GraphCache-style result cache) answers queries;
// new data graphs can be appended at runtime with no index maintenance.
//
// Endpoints:
//
//	POST /query    body: one graph in the text format -> JSON answer;
//	               append ?trace=1 to inline the per-query phase/verify trace,
//	               ?explain=1 to inline the EXPLAIN report (filter-stage
//	               candidate counts, index probe stats, matching order)
//	POST /graphs   body: one graph in the text format -> JSON {"id": n}
//	GET  /stats    JSON database statistics (cached; invalidated on append)
//	GET  /metrics  JSON telemetry registry: query counts, p50/p90/p99
//	               latency histograms, timeouts, cache hits, in-flight gauge;
//	               ?format=prom switches to the Prometheus text exposition
//	GET  /debug/slowlog  JSON ring of recent slow queries (latency over
//	               -slowlog-threshold), each with its full Trace and Explain
//	GET  /debug/top      workload profile: top query shapes by fingerprint
//	               with counts, error bounds, failure tallies and latency
//	               quantiles; ?k=N bounds rows, ?format=text renders a table
//	GET  /debug/events   bounded ring of operational incidents: admission
//	               sheds (429/408), recovered panics and watchdog flags,
//	               newest first
//	GET  /debug/inflight the queries executing right now, oldest first,
//	               each with phase, graphs done/total, candidates, answers,
//	               enumeration steps and memory high-water mark;
//	               ?format=text renders the table `sqwatch` shows
//	POST /debug/inflight/{id}/cancel  deliver cooperative cancellation to
//	               one live query; its own client gets a cancelled result
//	GET  /healthz  readiness probe: 200 "ok", or 503 "shedding" while
//	               admission control is saturated
//
// Workload telemetry: every query is fingerprinted (a canonical hash of
// the query's labeled structure, invariant under vertex renumbering) and
// folded into a heavy-hitter profile behind /debug/top. With -export, one
// wide event per query streams to an NDJSON file or HTTP collector,
// tail-sampled: queries that erred, timed out, were cancelled, skipped
// graphs, panicked or were shed are always exported; healthy queries are
// sampled at -export-sample. `sqtop` renders either source.
//
// Admission control bounds concurrently executing queries (-max-inflight)
// with a bounded wait queue (-max-queue, -queue-wait); excess load is shed
// with 429 + Retry-After instead of piling up memory (the hint is widened
// by a uniform 0..-retry-jitter seconds so a shed herd does not return in
// one spike). Per-request budgets (-budget, -mem-budget) cancel
// cooperatively inside the engines, and every engine panic is isolated
// into a structured error response — the process keeps serving.
//
// With -shards N > 0 the engine runs behind a scatter-gather coordinator:
// the database is partitioned across N independent engine instances
// (-shard-strategy hash|size, -shard-replicas R copies of each), every
// query fans out, and per-shard failures are retried with backoff, hedged
// against replicas after an adaptive p99 delay (-hedge-after overrides),
// and finally degraded: a permanently lost shard yields a partial result
// with "degraded":true and KindShard graph errors naming the lost
// partition, instead of failing the whole query.
//
// With -debug-addr, a second listener serves net/http/pprof profiles
// (/debug/pprof/) for CPU and heap investigation, kept off the public
// address on purpose.
//
// Live inspection: every executing query registers a handle in the
// in-flight registry (GET /debug/inflight, `sqwatch`) with atomic progress
// counters updated by the engines. A stuck-query watchdog scans the
// registry every -watchdog-interval and flags queries running longer than
// -watchdog-multiple × the rolling p99 latency (never before
// -watchdog-floor), capturing one goroutine stack dump per flagged query
// and emitting an always-exported wide event plus a /debug/events entry.
//
// The server drains gracefully: SIGINT/SIGTERM stops accepting new
// connections and waits up to -drain-wait for in-flight queries; queries
// still running then are cancelled through the registry so they unwind
// with cancelled results instead of being cut off.
//
// Usage:
//
//	sqserver -db db.graph [-addr :8080] [-engine CFQL] [-cache 64]
//	         [-shards 4] [-shard-replicas 2] [-shard-strategy hash]
//	         [-shard-concurrency 0] [-hedge-after 0]
//	         [-budget 10m] [-mem-budget 268435456]
//	         [-max-inflight 16] [-max-queue 64] [-queue-wait 1s] [-retry-jitter 2]
//	         [-slowlog-threshold 100ms] [-slowlog-size 64]
//	         [-top-k 20] [-export events.ndjson] [-export-sample 0.01]
//	         [-export-buffer 1024] [-events-size 128]
//	         [-inflight-slots 256] [-watchdog-interval 2s]
//	         [-watchdog-multiple 5] [-watchdog-floor 5s]
//	         [-drain-wait 30s] [-debug-addr :6060] [-log-json]
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/bench"
	"subgraphquery/internal/cluster"
	"subgraphquery/internal/core"
	"subgraphquery/internal/obs"
	"subgraphquery/internal/telemetry"
)

func main() {
	dbPath := flag.String("db", "db.graph", "database file")
	addr := flag.String("addr", ":8080", "listen address")
	engineName := flag.String("engine", "CFQL", "query engine")
	cache := flag.Int("cache", 64, "result cache entries (0 disables)")
	shards := flag.Int("shards", 0,
		"partition the database across N engine shards behind a scatter-gather coordinator (0 = single engine)")
	shardReplicas := flag.Int("shard-replicas", 1,
		"replicas per shard; hedged duplicate requests need >= 2")
	shardStrategy := flag.String("shard-strategy", "hash",
		"partitioning strategy: hash (rendezvous) or size (byte-balanced)")
	shardConcurrency := flag.Int("shard-concurrency", 0,
		"max concurrent queries executing inside one shard (0 = unbounded)")
	hedgeAfter := flag.Duration("hedge-after", 0,
		"hedged-request delay (0 = adaptive per-shard p99, negative disables hedging)")
	retryJitter := flag.Int("retry-jitter", 2,
		"widen the 429 Retry-After hint by a uniform 0..N seconds (0 = deterministic)")
	budget := flag.Duration("budget", 0, "per-query budget (0 = none)")
	memBudget := flag.Int64("mem-budget", 0,
		"per-query candidate-structure memory budget in bytes (0 = none)")
	maxInflight := flag.Int("max-inflight", 0,
		"max concurrently executing queries; 0 = 2x GOMAXPROCS, negative disables admission control")
	maxQueue := flag.Int("max-queue", 64,
		"max requests waiting for a query slot before shedding with 429")
	queueWait := flag.Duration("queue-wait", time.Second,
		"max time a request may wait for a query slot before shedding")
	slowThreshold := flag.Duration("slowlog-threshold", 100*time.Millisecond,
		"slow-query log latency threshold (0 retains every query, negative disables the log)")
	slowSize := flag.Int("slowlog-size", obs.DefaultSlowLogSize, "slow-query log ring capacity")
	topK := flag.Int("top-k", 20, "default number of shapes GET /debug/top returns")
	exportDest := flag.String("export", "",
		"wide-event NDJSON destination: file path or http(s):// URL (empty disables export)")
	exportSample := flag.Float64("export-sample", 0.01,
		"fraction of healthy queries exported (anomalous queries always export)")
	exportBuffer := flag.Int("export-buffer", telemetry.DefaultExportBuffer,
		"wide-event ring capacity between queries and the export writer")
	eventsSize := flag.Int("events-size", telemetry.DefaultDebugRingSize,
		"GET /debug/events incident ring capacity")
	inflightSlots := flag.Int("inflight-slots", 0,
		"live-query registry slot capacity (0 selects 256)")
	wdInterval := flag.Duration("watchdog-interval", 0,
		"stuck-query watchdog scan period (0 selects 2s, negative disables)")
	wdMultiple := flag.Float64("watchdog-multiple", 0,
		"flag queries older than this multiple of the rolling p99 latency (0 selects 5)")
	wdFloor := flag.Duration("watchdog-floor", 0,
		"minimum age before the watchdog flags any query (0 selects 5s)")
	drainWait := flag.Duration("drain-wait", 30*time.Second,
		"graceful-shutdown drain deadline; queries still running after it are cancelled")
	debugAddr := flag.String("debug-addr", "", "pprof debug listen address (empty disables)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	f, err := os.Open(*dbPath)
	if err != nil {
		logger.Error("opening database", "err", err)
		os.Exit(1)
	}
	db, err := sq.ReadDatabase(f)
	f.Close()
	if err != nil {
		logger.Error("reading database", "err", err)
		os.Exit(1)
	}

	engine, err := bench.NewEngine(*engineName)
	if err != nil {
		logger.Error("creating engine", "err", err)
		os.Exit(1)
	}
	if *shards > 0 {
		// The coordinator owns one engine instance per shard replica; the
		// factory re-resolves the already-validated engine name.
		coord, cerr := cluster.New(cluster.Config{
			Shards:           *shards,
			Replicas:         *shardReplicas,
			Strategy:         cluster.Strategy(*shardStrategy),
			BaseName:         engine.Name(),
			ShardConcurrency: *shardConcurrency,
			HedgeAfter:       *hedgeAfter,
			Factory: func() core.Engine {
				e, ferr := bench.NewEngine(*engineName)
				if ferr != nil {
					panic(ferr) // unreachable: the name parsed above
				}
				return e
			},
		})
		if cerr != nil {
			logger.Error("creating coordinator", "err", cerr)
			os.Exit(1)
		}
		engine = coord
	}
	inflight := *maxInflight
	switch {
	case inflight == 0:
		inflight = 2 * runtime.GOMAXPROCS(0)
	case inflight < 0:
		inflight = 0 // disables admission control in newAdmission
	}
	srv, err := newServer(db, engine, serverConfig{
		cacheEntries:     *cache,
		budget:           *budget,
		memBudget:        *memBudget,
		maxInflight:      inflight,
		maxQueue:         *maxQueue,
		queueWait:        *queueWait,
		retryJitter:      *retryJitter,
		slowThreshold:    *slowThreshold,
		slowSize:         *slowSize,
		topK:             *topK,
		exportDest:       *exportDest,
		exportSample:     *exportSample,
		exportBuffer:     *exportBuffer,
		eventsSize:       *eventsSize,
		inflightSlots:    *inflightSlots,
		watchdogInterval: *wdInterval,
		watchdogMultiple: *wdMultiple,
		watchdogFloor:    *wdFloor,
	}, logger)
	if err != nil {
		logger.Error("building engine", "err", err)
		os.Exit(1)
	}

	// The write timeout must outlast the slowest allowed query; with no
	// budget the query itself is unbounded, so the timeout is disabled.
	var writeTimeout time.Duration
	if *budget > 0 {
		writeTimeout = *budget + 30*time.Second
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadTimeout:       time.Minute,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, logger)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "graphs", db.Len(), "engine", srv.engine.Name(),
		"cache", *cache, "budget", budget.String())

	select {
	case err := <-errc:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down, draining in-flight queries")
		shutdown(hs, srv, *drainWait, 5*time.Second, logger)
		logger.Info("bye")
	}
}

// shutdown drains the server gracefully, in stages: Shutdown waits up to
// the drain deadline for in-flight requests to finish on their own; any
// query still running then receives cooperative cancellation through the
// live registry (it unwinds with a cancelled result instead of being cut
// off mid-connection) and gets a short grace period to do so; only then
// is the listener force-closed. The watchdog stops and buffered wide
// events flush last, after every query has written its event.
func shutdown(hs *http.Server, srv *server, drain, grace time.Duration, logger *slog.Logger) {
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		n := srv.live.CancelAll()
		logger.Warn("drain deadline exceeded, cancelling in-flight queries",
			"cancelled", n, "err", err)
		gCtx, gCancel := context.WithTimeout(context.Background(), grace)
		defer gCancel()
		if err := hs.Shutdown(gCtx); err != nil {
			logger.Error("cancelled queries did not unwind in time, closing", "err", err)
			hs.Close()
		}
	}
	if err := srv.Close(); err != nil {
		logger.Error("closing wide-event exporter", "err", err)
	}
}

// serveDebug exposes net/http/pprof on its own mux and address, so
// profiling never rides on the public listener.
func serveDebug(addr string, logger *slog.Logger) {
	m := http.NewServeMux()
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("debug server listening", "addr", addr)
	if err := http.ListenAndServe(addr, m); err != nil {
		logger.Error("debug server failed", "err", err)
	}
}
