package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/telemetry"
)

// wallDB returns a database holding only the odd-cycle "wall": the
// complete bipartite K_{m,m} with every vertex labeled 0. It is bipartite
// (no odd cycle can match), yet dense enough that an odd-cycle query
// searches effectively forever — so a query against it ends only by
// cancellation, deterministically.
func wallDB(t *testing.T, m int) *sq.Database {
	t.Helper()
	labels := make([]sq.Label, 2*m)
	var edges []sq.Edge
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			edges = append(edges, sq.Edge{U: sq.VertexID(i), V: sq.VertexID(m + j)})
		}
	}
	g, err := sq.FromEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return sq.NewDatabase([]*sq.Graph{g})
}

// oddCycle returns C_n (n odd), all labels 0 — unmatchable in any
// bipartite graph.
func oddCycle(t *testing.T, n int) *sq.Graph {
	t.Helper()
	labels := make([]sq.Label, n)
	edges := make([]sq.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = sq.Edge{U: sq.VertexID(i), V: sq.VertexID((i + 1) % n)}
	}
	g, err := sq.FromEdges(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fetchInflightJSON decodes one GET /debug/inflight body.
func fetchInflightJSON(t *testing.T, ts *httptest.Server) (snaps []inflight.HandleSnapshot) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/inflight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/inflight: %s", resp.Status)
	}
	var body struct {
		Queries []inflight.HandleSnapshot `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Queries
}

// awaitLiveQuery polls the endpoint until exactly one query is live with
// enumeration progress, and returns its snapshot.
func awaitLiveQuery(t *testing.T, ts *httptest.Server) inflight.HandleSnapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if snaps := fetchInflightJSON(t, ts); len(snaps) == 1 && snaps[0].Steps > 0 {
			return snaps[0]
		}
		if time.Now().After(deadline) {
			t.Fatal("query never became visible in /debug/inflight with progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// awaitEmptyRegistry waits for every handle to deregister (the handler's
// deferred Deregister runs after the response is written, so a client that
// just read its response may be a beat ahead of the registry).
func awaitEmptyRegistry(t *testing.T, reg *inflight.Registry) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d handles still live, want 0", reg.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInflightEndpointAndRemoteCancel is the tentpole's acceptance test at
// the HTTP level: a running query is visible in GET /debug/inflight (JSON
// and text) with moving progress counters, POST /debug/inflight/{id}/cancel
// demonstrably halts it — its own client receives a cancelled result whose
// inflight_id matches — and the registry is empty afterwards.
func TestInflightEndpointAndRemoteCancel(t *testing.T) {
	srv, err := newServer(wallDB(t, 16), sq.NewCFQLEngine(), serverConfig{
		slowThreshold: -1,
		maxInflight:   4, // admission on, so the handle records verdict "ok"
		maxQueue:      4,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	body := graphText(t, oddCycle(t, 9))
	type answer struct {
		status int
		resp   queryResponse
	}
	done := make(chan answer, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
		if err != nil {
			done <- answer{status: -1}
			return
		}
		defer resp.Body.Close()
		var qr queryResponse
		json.NewDecoder(resp.Body).Decode(&qr)
		done <- answer{status: resp.StatusCode, resp: qr}
	}()

	snap := awaitLiveQuery(t, ts)
	if snap.Engine != "CFQL" || snap.Verdict != "ok" || snap.Phase != "filter+verify" {
		t.Errorf("snapshot identity: engine=%q verdict=%q phase=%q", snap.Engine, snap.Verdict, snap.Phase)
	}
	if snap.GraphsTotal != 1 {
		t.Errorf("graphs_total = %d, want 1", snap.GraphsTotal)
	}

	// The text rendering carries the same row.
	textResp, err := http.Get(ts.URL + "/debug/inflight?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(textResp.Body)
	textResp.Body.Close()
	for _, want := range []string{"FINGERPRINT", snap.Fingerprint, "CFQL", "filter+verify"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("?format=text missing %q:\n%s", want, text)
		}
	}

	// Bad cancel requests first, while the query still runs.
	if st := postStatus(t, ts, "/debug/inflight/999999/cancel"); st != http.StatusNotFound {
		t.Errorf("cancel of dead id: %d, want 404", st)
	}
	if st := postStatus(t, ts, "/debug/inflight/notanumber/cancel"); st != http.StatusBadRequest {
		t.Errorf("cancel of malformed id: %d, want 400", st)
	}

	// The real cancel halts the query.
	resp, err := http.Post(fmt.Sprintf("%s/debug/inflight/%d/cancel", ts.URL, snap.ID), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Cancelled bool   `json:"cancelled"`
		ID        uint64 `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !cr.Cancelled || cr.ID != snap.ID {
		t.Fatalf("cancel response: status=%d body=%+v", resp.StatusCode, cr)
	}

	select {
	case a := <-done:
		if a.status != http.StatusOK {
			t.Fatalf("cancelled query status = %d, want 200", a.status)
		}
		if !a.resp.Cancelled {
			t.Fatal("cancelled query response does not report cancelled")
		}
		if a.resp.InflightID != snap.ID {
			t.Errorf("response inflight_id = %d, want %d", a.resp.InflightID, snap.ID)
		}
		if len(a.resp.Answers) != 0 {
			t.Errorf("odd cycle matched in a bipartite graph: %v", a.resp.Answers)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query did not halt after remote cancellation")
	}
	awaitEmptyRegistry(t, srv.live)

	// The incident ring recorded the delivery; the registry counters moved.
	if !hasEventKind(t, ts, "remote_cancel") {
		t.Error("/debug/events has no remote_cancel entry")
	}
	if _, _, cancels := srv.live.Stats(); cancels != 1 {
		t.Errorf("registry cancels = %d, want 1", cancels)
	}
}

func postStatus(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func hasEventKind(t *testing.T, ts *httptest.Server, kind string) bool {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Events []telemetry.DebugEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, ev := range body.Events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// TestWatchdogFlagsStuckServerQuery: a query running past the watchdog
// floor is flagged exactly once — visible as flagged=true in the
// endpoint, one watchdog_flagged_total tick, one watchdog_stuck incident
// — even though the watchdog keeps scanning while it stays stuck.
func TestWatchdogFlagsStuckServerQuery(t *testing.T) {
	srv, err := newServer(wallDB(t, 16), sq.NewCFQLEngine(), serverConfig{
		slowThreshold:    -1,
		watchdogInterval: 10 * time.Millisecond,
		watchdogFloor:    30 * time.Millisecond,
	}, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	body := graphText(t, oddCycle(t, 9))
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	snap := awaitLiveQuery(t, ts)
	deadline := time.Now().Add(30 * time.Second)
	for !snap.Flagged {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the stuck query")
		}
		time.Sleep(5 * time.Millisecond)
		snap = awaitLiveQuery(t, ts)
	}

	// Stays flagged exactly once across many further scans.
	time.Sleep(100 * time.Millisecond)
	if got := srv.stuck.Value(); got != 1 {
		t.Errorf("watchdog_flagged_total = %d after repeated scans, want 1", got)
	}
	if !hasEventKind(t, ts, "watchdog_stuck") {
		t.Error("/debug/events has no watchdog_stuck entry")
	}

	if st := postStatus(t, ts, fmt.Sprintf("/debug/inflight/%d/cancel", snap.ID)); st != http.StatusOK {
		t.Fatalf("cancel: %d", st)
	}
	<-done
	awaitEmptyRegistry(t, srv.live)
}

// TestMetricsRuntimeHealth: /metrics carries the Go runtime vitals and the
// live-registry gauges.
func TestMetricsRuntimeHealth(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	postQuery(t, ts, graphText(t, testQuery(t, srv)))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Gauges["go_goroutines"] <= 0 {
		t.Errorf("go_goroutines = %d, want > 0", body.Gauges["go_goroutines"])
	}
	if body.Gauges["go_heap_inuse_bytes"] <= 0 {
		t.Errorf("go_heap_inuse_bytes = %d, want > 0", body.Gauges["go_heap_inuse_bytes"])
	}
	if _, ok := body.Gauges["go_gc_pause_p99_us"]; !ok {
		t.Error("go_gc_pause_p99_us gauge missing")
	}
	if body.Gauges["inflight_tracked"] != 0 {
		t.Errorf("inflight_tracked = %d after queries returned, want 0", body.Gauges["inflight_tracked"])
	}
	if body.Gauges["inflight_registered"] != 1 {
		t.Errorf("inflight_registered = %d, want 1", body.Gauges["inflight_registered"])
	}
}

// TestShutdownCancelsInflightQueries: graceful shutdown that exhausts its
// drain deadline cancels the still-running queries through the live
// registry — the client gets a complete, cancelled response rather than a
// severed connection — and no handle leaks.
func TestShutdownCancelsInflightQueries(t *testing.T) {
	srv, err := newServer(wallDB(t, 16), sq.NewCFQLEngine(), serverConfig{
		slowThreshold: -1,
	}, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.handler()}
	go hs.Serve(l)
	base := "http://" + l.Addr().String()

	type answer struct {
		status    int
		cancelled bool
	}
	done := make(chan answer, 1)
	go func() {
		resp, err := http.Post(base+"/query", "text/plain",
			strings.NewReader(graphText(t, oddCycle(t, 9))))
		if err != nil {
			done <- answer{status: -1}
			return
		}
		defer resp.Body.Close()
		var qr queryResponse
		json.NewDecoder(resp.Body).Decode(&qr)
		done <- answer{status: resp.StatusCode, cancelled: qr.Cancelled}
	}()

	// Wait until the wall query is live, then shut down with a drain
	// deadline it is guaranteed to outlive.
	deadline := time.Now().Add(30 * time.Second)
	for srv.live.Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("query never registered")
		}
		time.Sleep(time.Millisecond)
	}
	shutdown(hs, srv, 50*time.Millisecond, 20*time.Second,
		slog.New(slog.NewTextHandler(io.Discard, nil)))

	select {
	case a := <-done:
		if a.status != http.StatusOK || !a.cancelled {
			t.Fatalf("drained query: status=%d cancelled=%v, want 200 + cancelled", a.status, a.cancelled)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("client never got a response through graceful shutdown")
	}
	if n := srv.live.Len(); n != 0 {
		t.Fatalf("%d handles leaked through shutdown, want 0", n)
	}
	if _, _, cancels := srv.live.Stats(); cancels != 1 {
		t.Errorf("shutdown delivered %d cancels, want 1", cancels)
	}
}
