//go:build sqchaos

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/cluster"
	"subgraphquery/internal/core"
	"subgraphquery/internal/matching"
)

// TestChaosClusterShardKillStorm is the scatter-gather acceptance run: a
// 4-shard coordinator serves a 500-query concurrent storm while one shard
// is killed mid-storm and revived before the end. Every response must be
// well-formed — 200 (clean, or degraded with KindShard errors naming the
// lost partition), 408, 429 with Retry-After, or a structured 500 — the
// degraded window must actually be observed, and afterwards nothing may
// leak: the inflight registry drains to empty (hedged losers and retry
// attempts all deregistered), goroutines and scratch arenas return to
// baseline, and a clean query matches the pre-storm answers exactly.
func TestChaosClusterShardKillStorm(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 40, NumVertices: 16, NumLabels: 3, Degree: 4, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.New(cluster.Config{
		Shards:   4,
		Replicas: 2, // hedging needs a second replica to race
		Factory:  core.NewCFQL,
		BaseName: "CFQL",
		// Fail over quickly: a killed shard must exhaust its retry budget
		// well inside the request budget so the storm sees degraded 200s,
		// not a wall of 408s.
		MaxAttempts: 3,
		RetryBase:   500 * time.Microsecond,
		RetryCap:    2 * time.Millisecond,
		HedgeAfter:  0, // adaptive p99
	})
	if err != nil {
		t.Fatal(err)
	}
	// No result cache: a degraded result cached during the outage would be
	// replayed verbatim after the revive and fail the recovery assertions.
	srv, err := newServer(db, coord, serverConfig{
		budget:        2 * time.Second,
		slowThreshold: -1,
		maxInflight:   4,
		maxQueue:      8,
		queueWait:     100 * time.Millisecond,
		retryJitter:   2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const victim = 1
	victimGraphs := map[int]bool{}
	for _, id := range coord.Partitions()[victim] {
		victimGraphs[id] = true
	}
	if len(victimGraphs) == 0 {
		t.Fatal("victim shard holds no graphs; the kill would be unobservable")
	}

	queries, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 10, Edges: 3, Method: sq.QueryRandomWalk, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([]string, len(queries))
	exact := make([][]int, len(queries))
	for i, q := range queries {
		bodies[i] = graphText(t, q)
		res := coord.Query(q, sq.QueryOptions{})
		if res.Err != nil || res.Degraded {
			t.Fatalf("pre-storm query %d unhealthy: err=%v degraded=%v", i, res.Err, res.Degraded)
		}
		exact[i] = res.Answers
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	defer client.CloseIdleConnections()

	baselineG := runtime.NumGoroutine()
	baselineS := matching.ScratchLive()

	const totalQueries = 500
	const clients = 8
	var counts [600]atomic.Int64 // indexed by HTTP status
	var malformed atomic.Int64
	var degraded, degradedNamingVictim atomic.Int64
	var done atomic.Int64
	var next atomic.Int64

	// The chaos conductor: kill the victim shard (both replicas) once the
	// storm is rolling, revive it with enough storm left that recovery is
	// observed under load too.
	conductor := make(chan struct{})
	go func() {
		defer close(conductor)
		for done.Load() < totalQueries/5 {
			time.Sleep(time.Millisecond)
		}
		coord.LocalTransport().KillShard(victim)
		for done.Load() < 3*totalQueries/5 {
			time.Sleep(time.Millisecond)
		}
		coord.LocalTransport().ReviveShard(victim)
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= totalQueries {
					return
				}
				resp, err := client.Post(ts.URL+"/query", "text/plain",
					strings.NewReader(bodies[i%int64(len(bodies))]))
				if err != nil {
					malformed.Add(1) // transport failure = server died
					done.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode < len(counts) {
					counts[resp.StatusCode].Add(1)
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var out queryResponse
					if json.Unmarshal(body, &out) != nil {
						malformed.Add(1)
						break
					}
					if !out.Degraded {
						break
					}
					degraded.Add(1)
					// A degraded response must name what was lost.
					named := false
					for _, qe := range out.GraphErrors {
						if qe.Kind == sq.ErrKindShard {
							named = true
							if qe.Shard == victim {
								degradedNamingVictim.Add(1)
							}
						}
					}
					if !named {
						malformed.Add(1)
					}
				case http.StatusRequestTimeout:
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						malformed.Add(1)
					}
					time.Sleep(2 * time.Millisecond)
				case http.StatusInternalServerError:
					var out struct {
						Error struct {
							Kind string `json:"kind"`
						} `json:"error"`
					}
					if json.Unmarshal(body, &out) != nil || out.Error.Kind == "" {
						malformed.Add(1)
					}
				default:
					malformed.Add(1)
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	<-conductor

	var summary []string
	var answered int64
	for status := range counts {
		if n := counts[status].Load(); n > 0 {
			answered += n
			summary = append(summary, fmt.Sprintf("%d×%d", status, n))
		}
	}
	cs := coord.Stats()
	t.Logf("statuses: %s; degraded: %d (%d naming shard %d); coordinator: %+v",
		strings.Join(summary, " "), degraded.Load(), degradedNamingVictim.Load(), victim, cs)

	if malformed.Load() != 0 {
		t.Errorf("%d malformed responses", malformed.Load())
	}
	if answered != totalQueries {
		t.Errorf("answered %d of %d queries; the rest hit transport errors", answered, totalQueries)
	}
	if degraded.Load() == 0 {
		t.Error("no degraded response observed; the kill window missed the storm")
	}
	if degradedNamingVictim.Load() == 0 {
		t.Errorf("no degraded response named the killed shard %d in its graph errors", victim)
	}
	if cs.ShardsLost == 0 || cs.DegradedQueries == 0 {
		t.Errorf("coordinator counters flat: %+v", cs)
	}
	if srv.degradedShards.Value() == 0 {
		t.Error("shard_degraded_total stayed zero through a shard outage")
	}

	// Nothing leaked: admission slots free, inflight registry empty (every
	// retry and hedged-loser sub-handle deregistered), scratch arenas
	// returned, goroutines gone.
	client.CloseIdleConnections()
	if d := srv.adm.depth(); d != 0 {
		t.Errorf("admission queue depth %d after run, want 0", d)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.live.Len() > 0 {
		if time.Now().After(deadline) {
			t.Errorf("inflight registry holds %d handles after the storm, want 0", srv.live.Len())
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := matching.ScratchLive(); got != baselineS {
		t.Errorf("scratch arenas leaked: live %d, was %d", got, baselineS)
	}
	for runtime.NumGoroutine() > baselineG {
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: have %d, want <= %d", runtime.NumGoroutine(), baselineG)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Post-revive, the cluster serves exact answers again.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz after storm: %d, want 200", hz.StatusCode)
	}
	for i := range bodies {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(bodies[i]))
		if err != nil {
			t.Fatal(err)
		}
		var out queryResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || out.Degraded {
			t.Fatalf("post-revive query %d: status=%d degraded=%v", i, resp.StatusCode, out.Degraded)
		}
		if len(out.Answers) != len(exact[i]) {
			t.Errorf("post-revive query %d: %d answers, want %d", i, len(out.Answers), len(exact[i]))
			continue
		}
		for j := range out.Answers {
			if out.Answers[j] != exact[i][j] {
				t.Errorf("post-revive query %d: answers diverge at %d: %d != %d",
					i, j, out.Answers[j], exact[i][j])
				break
			}
		}
	}
}
