package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/core"
)

// server holds the database and engine behind the HTTP handlers. A RWMutex
// serializes appends against queries: the engines themselves are safe for
// concurrent queries but not for concurrent database mutation.
type server struct {
	mu     sync.RWMutex
	db     *sq.Database
	engine sq.Engine
	budget time.Duration
}

func newServer(db *sq.Database, engine sq.Engine, cacheEntries int, budget time.Duration) (*server, error) {
	if cacheEntries > 0 {
		engine = sq.NewCachedEngine(engine, cacheEntries)
	}
	if err := engine.Build(db, sq.BuildOptions{}); err != nil {
		return nil, err
	}
	return &server{db: db, engine: engine, budget: budget}, nil
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/query", s.handleQuery)
	m.HandleFunc("/graphs", s.handleAppend)
	m.HandleFunc("/stats", s.handleStats)
	return m
}

// queryResponse is the JSON body returned by POST /query.
type queryResponse struct {
	Answers    []int  `json:"answers"`
	Candidates int    `json:"candidates"`
	FilterUS   int64  `json:"filter_us"`
	VerifyUS   int64  `json:"verify_us"`
	TimedOut   bool   `json:"timed_out,omitempty"`
	Engine     string `json:"engine"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a query graph in the text format", http.StatusMethodNotAllowed)
		return
	}
	q, err := sq.ReadGraph(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("parsing query: %v", err), http.StatusBadRequest)
		return
	}
	if !q.IsConnected() {
		http.Error(w, "query graph must be connected", http.StatusBadRequest)
		return
	}
	opts := sq.QueryOptions{}
	if s.budget > 0 {
		opts.Deadline = time.Now().Add(s.budget)
	}
	s.mu.RLock()
	res := s.engine.Query(q, opts)
	s.mu.RUnlock()

	writeJSON(w, queryResponse{
		Answers:    append([]int{}, res.Answers...),
		Candidates: res.Candidates,
		FilterUS:   res.FilterTime.Microseconds(),
		VerifyUS:   res.VerifyTime.Microseconds(),
		TimedOut:   res.TimedOut,
		Engine:     s.engine.Name(),
	})
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a data graph in the text format", http.StatusMethodNotAllowed)
		return
	}
	g, err := sq.ReadGraph(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("parsing graph: %v", err), http.StatusBadRequest)
		return
	}
	u, ok := s.engine.(core.Updatable)
	if !ok {
		http.Error(w, "engine does not support appends; restart with a vcFV engine", http.StatusConflict)
		return
	}
	s.mu.Lock()
	id, err := u.AppendGraph(g)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]int{"id": id})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	stats := s.db.ComputeStats()
	mem := s.db.MemoryFootprint()
	idx := s.engine.IndexMemory()
	s.mu.RUnlock()
	writeJSON(w, map[string]any{
		"graphs":             stats.NumGraphs,
		"labels":             stats.NumLabels,
		"vertices_per_graph": stats.VerticesPerGraph,
		"edges_per_graph":    stats.EdgesPerGraph,
		"degree_per_graph":   stats.DegreePerGraph,
		"dataset_bytes":      mem,
		"index_bytes":        idx,
		"engine":             s.engine.Name(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
