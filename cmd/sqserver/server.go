package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/cluster"
	"subgraphquery/internal/core"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/obs"
	"subgraphquery/internal/telemetry"
)

// server holds the database and engine behind the HTTP handlers. A RWMutex
// serializes appends against queries: the engines themselves are safe for
// concurrent queries but not for concurrent database mutation.
type server struct {
	mu        sync.RWMutex
	db        *sq.Database
	engine    sq.Engine
	budget    time.Duration
	memBudget int64
	log       *slog.Logger
	start     time.Time

	// adm bounds concurrent query execution (nil = admission disabled).
	adm *admission

	// cluster is set when the engine is (or wraps) a scatter-gather
	// coordinator; /metrics then exposes its retry/hedge/degradation
	// counters. nil for single-engine servers.
	cluster *cluster.Coordinator

	// Telemetry. The registry backs GET /metrics; the named instruments
	// are held directly so the hot path never takes the registry lock.
	reg       *obs.Registry
	queries   *obs.Counter
	rejected  *obs.Counter
	timeouts  *obs.Counter
	appends   *obs.Counter
	cacheHit  *obs.Counter
	cacheMiss *obs.Counter
	shed      *obs.Counter // requests bounced by admission control
	panics    *obs.Counter // panics recovered in engines and handlers
	// degradedShards counts shard partitions lost to a query response
	// (shard_degraded_total); errsTruncated sums graph errors dropped by
	// the coordinator's post-merge cap (graph_errors_truncated).
	degradedShards *obs.Counter
	errsTruncated  *obs.Counter
	inflight       *obs.Gauge
	// queueDepth mirrors the admission wait-queue occupancy at snapshot
	// time (refreshed by /metrics).
	queueDepth *obs.Gauge
	// workerPool tracks the effective parallel worker count (after the
	// engines clamp to GOMAXPROCS); stays 0 for sequential engines.
	workerPool *obs.Gauge
	latency    *obs.Histogram // wall-clock per query
	filterLat  *obs.Histogram // engine filtering phase
	verifyLat  *obs.Histogram // engine verification phase
	siLat      *obs.Histogram // per-SI-test (one sample per candidate graph)

	// slow is the always-on slow-query ring behind GET /debug/slowlog:
	// every query is traced and explained, and the record is retained iff
	// the query's wall-clock latency meets the configured threshold.
	slow *obs.SlowLog

	// Workload telemetry. profile is the per-fingerprint heavy-hitter
	// sketch behind GET /debug/top; exporter ships one tail-sampled wide
	// event per query (nil = export disabled); events is the bounded
	// incident ring behind GET /debug/events (sheds, recovered panics).
	profile  *telemetry.Profile
	exporter *telemetry.Exporter
	events   *telemetry.DebugRing
	topK     int

	// Live-query inspection. live registers a handle per executing query
	// (GET /debug/inflight, remote cancellation); watchdog scans it for
	// queries stuck far beyond the rolling p99 (nil = disabled); stuck
	// counts the flags.
	live     *inflight.Registry
	watchdog *inflight.Watchdog
	stuck    *obs.Counter

	// statsCache memoizes the /stats response; ComputeStats walks every
	// graph, so recomputing per request is wasteful on a static database.
	// Appends invalidate it.
	statsMu    sync.Mutex
	statsCache map[string]any
}

// serverConfig carries the tunables of newServer beyond the database and
// engine.
type serverConfig struct {
	// cacheEntries sizes the result cache; 0 disables it.
	cacheEntries int
	// budget bounds each query; 0 means unbounded.
	budget time.Duration
	// slowThreshold is the slow-query retention latency; 0 retains every
	// query (useful in tests), negative disables the slow log entirely.
	slowThreshold time.Duration
	// slowSize is the slow-log ring capacity; 0 selects the default.
	slowSize int
	// memBudget bounds each query's candidate-structure footprint in bytes
	// (core.QueryOptions.MemoryBudget); 0 disables the check.
	memBudget int64
	// maxInflight bounds concurrently executing queries; 0 disables
	// admission control entirely (every request runs immediately).
	maxInflight int
	// maxQueue bounds requests waiting for an execution slot; beyond it
	// arrivals are shed with 429. Only meaningful with maxInflight > 0.
	maxQueue int
	// queueWait is how long a queued request may wait for a slot before
	// being shed (0 selects 1s).
	queueWait time.Duration
	// retryJitter widens the Retry-After hint on shed responses by a
	// uniform 0..retryJitter seconds, de-synchronizing client retries
	// after a shedding burst; 0 keeps the hint deterministic.
	retryJitter int
	// topK is the default row count of GET /debug/top (0 selects 20).
	topK int
	// profileCapacity sizes the heavy-hitter sketch (0 selects the
	// telemetry default).
	profileCapacity int
	// exportDest is the wide-event NDJSON destination — a file path or an
	// http(s):// URL; empty disables export.
	exportDest string
	// exportSample is the fraction of healthy (non-anomalous) queries
	// exported; anomalous queries are always exported.
	exportSample float64
	// exportBuffer sizes the export ring (0 selects the default).
	exportBuffer int
	// eventsSize sizes the /debug/events incident ring (0 selects the
	// default).
	eventsSize int
	// inflightSlots sizes the live-query registry (0 selects the inflight
	// default).
	inflightSlots int
	// watchdogInterval is the stuck-query scan period (0 selects the
	// inflight default; negative disables the watchdog).
	watchdogInterval time.Duration
	// watchdogMultiple flags queries older than multiple × rolling p99
	// (0 selects the inflight default).
	watchdogMultiple float64
	// watchdogFloor is the minimum age before the watchdog flags a query
	// (0 selects the inflight default).
	watchdogFloor time.Duration
}

func newServer(db *sq.Database, engine sq.Engine, cfg serverConfig, logger *slog.Logger) (*server, error) {
	// Remember the coordinator before any cache wrapping so /metrics can
	// reach its scatter-gather counters.
	coord, _ := engine.(*cluster.Coordinator)
	if cfg.cacheEntries > 0 {
		engine = sq.NewCachedEngine(engine, cfg.cacheEntries)
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	topK := cfg.topK
	if topK <= 0 {
		topK = 20
	}
	exporter, err := telemetry.NewExporter(cfg.exportDest, telemetry.ExportConfig{
		HealthyFraction: cfg.exportSample,
		Buffer:          cfg.exportBuffer,
	})
	if err != nil {
		return nil, err
	}
	s := &server{
		db:        db,
		engine:    engine,
		budget:    cfg.budget,
		memBudget: cfg.memBudget,
		log:       logger,
		start:     time.Now(),
		reg:       obs.NewRegistry(),
		adm:       newAdmission(cfg.maxInflight, cfg.maxQueue, cfg.queueWait, cfg.retryJitter),
		cluster:   coord,
		profile:   telemetry.NewProfile(cfg.profileCapacity),
		exporter:  exporter,
		events:    telemetry.NewDebugRing(cfg.eventsSize),
		topK:      topK,
		live:      inflight.NewRegistry(cfg.inflightSlots),
	}
	if cfg.slowThreshold >= 0 {
		s.slow = obs.NewSlowLog(cfg.slowSize, cfg.slowThreshold)
	}
	en := engine.Name()
	s.queries = s.reg.Counter("queries_total/" + en)
	s.rejected = s.reg.Counter("queries_rejected_total")
	s.timeouts = s.reg.Counter("query_timeouts_total/" + en)
	s.appends = s.reg.Counter("graph_appends_total")
	s.cacheHit = s.reg.Counter("cache_hits_total")
	s.cacheMiss = s.reg.Counter("cache_misses_total")
	s.shed = s.reg.Counter("queries_shed_total")
	s.panics = s.reg.Counter("panics_recovered_total")
	s.degradedShards = s.reg.Counter("shard_degraded_total")
	s.errsTruncated = s.reg.Counter("graph_errors_truncated")
	s.inflight = s.reg.Gauge("queries_inflight")
	s.queueDepth = s.reg.Gauge("admission_queue_depth")
	s.workerPool = s.reg.Gauge("worker_pool_size")
	s.latency = s.reg.Histogram("query_latency/" + en)
	s.filterLat = s.reg.Histogram("filter_latency/" + en)
	s.verifyLat = s.reg.Histogram("verify_latency/" + en)
	s.siLat = s.reg.Histogram("si_test_latency/" + en)
	s.stuck = s.reg.Counter("watchdog_flagged_total")

	// Index construction runs after the registry exists so its cost is a
	// first-class metric: the multi-second index builds (CT-Index ~14s on
	// the paper's datasets) were previously invisible to /metrics.
	t0 := time.Now()
	if err := engine.Build(db, sq.BuildOptions{}); err != nil {
		s.exporter.Close()
		return nil, err
	}
	s.reg.Histogram("index_build/" + en).Record(time.Since(t0))
	s.reg.Gauge("index_bytes/" + en).Set(engine.IndexMemory())

	// The watchdog starts last so it never scans during index construction.
	// Its threshold tracks the server's own rolling p99: a query is stuck
	// when it has run watchdogMultiple times longer than the p99 of the
	// workload the server actually serves, never earlier than the floor.
	if cfg.watchdogInterval >= 0 {
		s.watchdog = inflight.NewWatchdog(s.live, inflight.WatchdogConfig{
			Interval: cfg.watchdogInterval,
			Multiple: cfg.watchdogMultiple,
			Floor:    cfg.watchdogFloor,
			P99:      func() time.Duration { return s.latency.Quantile(0.99) },
			OnStuck:  s.onStuck,
		})
	}
	return s, nil
}

// Close stops the watchdog and flushes the wide-event exporter; the server
// is not usable afterwards. Safe when export is disabled.
func (s *server) Close() error {
	s.watchdog.Stop()
	return s.exporter.Close()
}

// onStuck is the watchdog callback, invoked exactly once per flagged
// query: one always-exported wide event, one /debug/events incident, one
// log line carrying a bounded slice of the goroutine stack dump, one
// counter tick.
func (s *server) onStuck(snap inflight.HandleSnapshot, stack []byte) {
	s.stuck.Inc()
	fp, _ := strconv.ParseUint(snap.Fingerprint, 16, 64)
	s.exporter.Emit(telemetry.Event{
		TimeUnixMS:  time.Now().UnixMilli(),
		Fingerprint: telemetry.Fingerprint(fp),
		Engine:      snap.Engine,
		Verdict:     snap.Verdict,
		DurationUS:  snap.AgeMS * 1000,
		Candidates:  int(snap.Candidates),
		Answers:     int(snap.Answers),
		Watchdog:    true,
	})
	s.events.Offer(telemetry.DebugEvent{
		Kind:        "watchdog_stuck",
		Fingerprint: telemetry.Fingerprint(fp),
		Engine:      snap.Engine,
		Message: fmt.Sprintf("query %d stuck: phase=%s age=%dms graphs=%d/%d steps=%d",
			snap.ID, snap.Phase, snap.AgeMS, snap.GraphsDone, snap.GraphsTotal, snap.Steps),
	})
	const maxStackLog = 8 << 10
	if len(stack) > maxStackLog {
		stack = stack[:maxStackLog]
	}
	s.log.Warn("watchdog flagged stuck query",
		"id", snap.ID, "fingerprint", snap.Fingerprint, "engine", snap.Engine,
		"phase", snap.Phase, "age_ms", snap.AgeMS, "steps", snap.Steps,
		"stack", string(stack))
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/query", s.recovered(s.handleQuery))
	m.HandleFunc("/graphs", s.recovered(s.handleAppend))
	m.HandleFunc("/stats", s.recovered(s.handleStats))
	m.HandleFunc("/metrics", s.recovered(s.handleMetrics))
	m.HandleFunc("/debug/slowlog", s.recovered(s.handleSlowLog))
	m.HandleFunc("/debug/top", s.recovered(s.handleTop))
	m.HandleFunc("/debug/events", s.recovered(s.handleEvents))
	m.HandleFunc("GET /debug/inflight", s.recovered(s.handleInflight))
	m.HandleFunc("POST /debug/inflight/{id}/cancel", s.recovered(s.handleInflightCancel))
	m.HandleFunc("/healthz", s.recovered(s.handleHealthz))
	return m
}

// recovered is the handler-level panic boundary: a panic that escapes a
// handler (the engines recover their own, so this catches handler bugs and
// anything outside Query) becomes a structured 500 instead of a dropped
// connection, and the process keeps serving. Writing the status fails
// silently if the handler already streamed part of a response — net/http
// then closes the connection, which is the best remaining signal.
func (s *server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Inc()
				obs.Panics.Inc()
				s.events.Offer(telemetry.DebugEvent{
					Kind:    "handler_panic",
					Status:  http.StatusInternalServerError,
					Message: r.URL.Path + ": " + fmt.Sprint(v),
				})
				s.log.Error("handler panic",
					"path", r.URL.Path, "panic", fmt.Sprint(v),
					"stack", string(debug.Stack()))
				writeJSONStatus(w, http.StatusInternalServerError, map[string]any{
					"error": map[string]any{
						"kind":    "panic",
						"message": fmt.Sprint(v),
					},
				})
			}
		}()
		h(w, r)
	}
}

// handler wraps the mux with request logging.
func (s *server) handler() http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(rec, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", time.Since(t0).Milliseconds(),
			"remote", r.RemoteAddr,
		}
		// Query annotations (set by handleQuery) join the flat log against
		// /debug/top and the wide-event export.
		if rec.fingerprint != "" {
			attrs = append(attrs, "fingerprint", rec.fingerprint)
		}
		if rec.verdict != "" {
			attrs = append(attrs, "admission_verdict", rec.verdict)
		}
		if rec.skipped > 0 {
			attrs = append(attrs, "skipped", rec.skipped)
		}
		s.log.Info("request", attrs...)
	})
}

// statusRecorder captures the response status and size for the log line,
// plus the query annotations handleQuery back-fills.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int

	fingerprint string
	verdict     string
	skipped     int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// registryObserver streams engine telemetry into the server's registry:
// phase spans feed the per-phase histograms, every SI test feeds the
// per-SI-test histogram, cache probes feed the hit/miss counters.
type registryObserver struct{ s *server }

func (o registryObserver) ObservePhase(name string, d time.Duration) {
	switch name {
	case obs.PhaseFilter:
		o.s.filterLat.Record(d)
	case obs.PhaseVerify:
		o.s.verifyLat.Record(d)
	}
}

func (o registryObserver) ObserveVerify(_ int, _ uint64, d time.Duration, _ bool) {
	o.s.siLat.Record(d)
}

func (o registryObserver) ObserveCache(hit bool) {
	if hit {
		o.s.cacheHit.Inc()
	} else {
		o.s.cacheMiss.Inc()
	}
}

func (o registryObserver) ObserveWorkers(n int) {
	o.s.workerPool.Set(int64(n))
}

func (o registryObserver) ObservePanic(int) {
	o.s.panics.Inc()
}

// ObserveFingerprint implements obs.Observer. The registry aggregates
// process-wide; per-shape aggregation happens in the workload profile, so
// there is nothing to record here.
func (o registryObserver) ObserveFingerprint(uint64) {}

// queryResponse is the JSON body returned by POST /query.
type queryResponse struct {
	Answers    []int `json:"answers"`
	Candidates int   `json:"candidates"`
	FilterUS   int64 `json:"filter_us"`
	VerifyUS   int64 `json:"verify_us"`
	TimedOut   bool  `json:"timed_out,omitempty"`
	Cancelled  bool  `json:"cancelled,omitempty"`
	// Skipped counts data graphs abandoned mid-processing (recovered panic
	// or exceeded memory budget); Answers is a lower bound when non-zero.
	Skipped     int              `json:"skipped,omitempty"`
	GraphErrors []*sq.QueryError `json:"graph_errors,omitempty"`
	// Degraded marks a scatter-gather response missing at least one shard
	// partition: Answers is a lower bound, and the lost partitions are
	// named by the KindShard entries in GraphErrors.
	Degraded bool `json:"degraded,omitempty"`
	// GraphErrorsTruncated counts per-graph errors dropped by the
	// coordinator's post-merge cap on GraphErrors.
	GraphErrorsTruncated int                  `json:"graph_errors_truncated,omitempty"`
	Engine               string               `json:"engine"`
	Trace                *obs.TraceSnapshot   `json:"trace,omitempty"`
	Explain              *obs.ExplainSnapshot `json:"explain,omitempty"`
	// InflightID is the live-registry handle id the query ran under, the
	// key correlating this response with /debug/inflight observations.
	InflightID uint64 `json:"inflight_id,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a query graph in the text format", http.StatusMethodNotAllowed)
		return
	}
	q, err := sq.ReadGraph(r.Body)
	if err != nil {
		s.rejected.Inc()
		http.Error(w, fmt.Sprintf("parsing query: %v", err), http.StatusBadRequest)
		return
	}
	if !q.IsConnected() {
		s.rejected.Inc()
		http.Error(w, "query graph must be connected", http.StatusBadRequest)
		return
	}

	// Fingerprint before admission: a shed query never reaches the engine,
	// but its shape must still aggregate in /debug/top and the export, so
	// operators see *which* workload the shedding punishes. The engine sees
	// the hash via opts and does not recompute.
	fp := sq.ComputeFingerprint(q)
	rec, _ := w.(*statusRecorder)
	if rec != nil {
		rec.fingerprint = fp.String()
	}

	// Admission control: bound concurrent query execution before any work.
	verdict := ""
	if s.adm != nil {
		verdict = telemetry.VerdictOK
		release, av := s.adm.acquire(r.Context().Done())
		switch av {
		case admitOK:
			defer release()
		case admitShed, admitTimeout:
			if av == admitShed {
				verdict = telemetry.VerdictShed
			} else {
				verdict = telemetry.VerdictQueueTimeout
			}
			s.shed.Inc()
			s.recordShed(rec, q, fp, verdict, http.StatusTooManyRequests)
			w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
			http.Error(w, "server at capacity, retry later", http.StatusTooManyRequests)
			return
		case admitCancelled:
			s.recordShed(rec, q, fp, telemetry.VerdictClientGone, http.StatusRequestTimeout)
			http.Error(w, "client gave up while queued", http.StatusRequestTimeout)
			return
		}
	}

	// The per-request timeout rides on the request context, so one Done
	// channel carries both client disconnects and the budget to the
	// engine's cooperative cancellation checks.
	ctx := r.Context()
	opts := sq.QueryOptions{MemoryBudget: s.memBudget, Fingerprint: fp}
	if s.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.budget)
		defer cancel()
		opts.Deadline = time.Now().Add(s.budget)
	}

	// Register the query in the live registry before execution: the handle
	// carries identity and progress counters for GET /debug/inflight, and
	// merging its cancel channel with the request context means remote
	// cancellation (POST /debug/inflight/{id}/cancel), client disconnect
	// and the budget all stop the engine through one channel.
	h := s.live.Register(inflight.RegisterOptions{
		Engine:      s.engine.Name(),
		Fingerprint: uint64(fp),
		Verdict:     verdict,
	})
	defer s.live.Deregister(h)
	opts.Handle = h
	opts.Cancel = h.MergeCancel(ctx.Done())
	// A coordinator engine registers one sub-handle per shard attempt in
	// the same registry, so /debug/inflight shows the fan-out live and
	// cancellation reaches hedged losers.
	opts.Inflight = s.live

	wantTrace := r.URL.Query().Get("trace") == "1"
	wantExplain := r.URL.Query().Get("explain") == "1"

	// The slow log needs the full Trace+Explain of any query that turns out
	// slow, which is only known after the fact — so when the slow log is
	// enabled, every query collects both, and the threshold gates retention.
	var trace *sq.Trace
	var explain *sq.Explain
	var observer sq.Observer = registryObserver{s}
	if wantTrace || s.slow != nil {
		trace = sq.NewTrace()
		observer = obs.Tee(observer, trace)
	}
	if wantExplain || s.slow != nil {
		explain = sq.NewExplain()
	}
	opts.Observer = observer
	opts.Explain = explain

	s.inflight.Add(1)
	t0 := time.Now()
	s.mu.RLock()
	res := s.engine.Query(q, opts)
	s.mu.RUnlock()
	elapsed := time.Since(t0)
	s.inflight.Add(-1)

	s.queries.Inc()
	s.latency.Record(elapsed)
	if res.TimedOut {
		s.timeouts.Inc()
	}
	if res.Degraded {
		// One tick per lost shard partition, not per query: the KindShard
		// entries lead the (capped) error list by construction.
		lost := int64(0)
		for _, ge := range res.GraphErrors {
			if ge.Kind == core.KindShard {
				lost++
			}
		}
		if lost == 0 {
			lost = 1
		}
		s.degradedShards.Add(lost)
	}
	if res.GraphErrorsTruncated > 0 {
		s.errsTruncated.Add(int64(res.GraphErrorsTruncated))
	}

	var traceSnap *obs.TraceSnapshot
	if trace != nil {
		snap := trace.Snapshot()
		traceSnap = &snap
	}

	// One wide event per executed query — built before the error path can
	// return, so failures are exactly the queries the export never loses.
	ev := telemetry.Event{
		TimeUnixMS:    t0.UnixMilli(),
		Fingerprint:   res.Fingerprint,
		Engine:        s.engine.Name(),
		QueryVertices: q.NumVertices(),
		QueryEdges:    q.NumEdges(),
		Verdict:       verdict,
		DurationUS:    elapsed.Microseconds(),
		FilterUS:      res.FilterTime.Microseconds(),
		VerifyUS:      res.VerifyTime.Microseconds(),
		Candidates:    res.Candidates,
		Answers:       len(res.Answers),
		Skipped:       res.Skipped,
		TimedOut:      res.TimedOut,
		Cancelled:     res.Cancelled,
		Error:         res.Err != nil,
	}
	for _, ge := range res.GraphErrors {
		switch ge.Kind {
		case core.KindPanic:
			ev.Panics++
		case core.KindBudget:
			ev.Budget++
		}
	}
	if res.Err != nil && res.Err.Kind == core.KindPanic {
		ev.Panics++
	}
	if traceSnap != nil && traceSnap.CacheHits > 0 {
		ev.CacheHit = true
	}
	s.profile.Record(ev)
	s.exporter.Emit(ev)
	if rec != nil {
		rec.verdict = verdict
		rec.skipped = res.Skipped
	}
	if ev.Panics > 0 {
		s.events.Offer(telemetry.DebugEvent{
			Kind:        "query_panic",
			Fingerprint: res.Fingerprint,
			Engine:      s.engine.Name(),
			Message:     fmt.Sprintf("%d panic(s) recovered during query", ev.Panics),
		})
	}

	if res.Err != nil {
		// The query itself failed (panic recovered at the engine boundary
		// outside any per-graph section): structured 500, process intact.
		s.log.Error("query failed", "engine", s.engine.Name(), "err", res.Err.Error())
		writeJSONStatus(w, http.StatusInternalServerError, map[string]any{"error": res.Err})
		return
	}

	resp := queryResponse{
		Answers:              append([]int{}, res.Answers...),
		Candidates:           res.Candidates,
		FilterUS:             res.FilterTime.Microseconds(),
		VerifyUS:             res.VerifyTime.Microseconds(),
		TimedOut:             res.TimedOut,
		Cancelled:            res.Cancelled,
		Skipped:              res.Skipped,
		GraphErrors:          res.GraphErrors,
		Degraded:             res.Degraded,
		GraphErrorsTruncated: res.GraphErrorsTruncated,
		Engine:               s.engine.Name(),
		InflightID:           h.ID(),
	}
	var explainSnap *obs.ExplainSnapshot
	if explain != nil {
		snap := explain.Snapshot()
		explainSnap = &snap
	}
	if wantTrace {
		resp.Trace = traceSnap
	}
	if wantExplain {
		resp.Explain = explainSnap
	}
	if s.slow != nil {
		s.slow.Offer(obs.SlowQuery{
			Time:        t0,
			DurationUS:  elapsed.Microseconds(),
			Engine:      s.engine.Name(),
			Query:       fmt.Sprintf("%dv/%de", q.NumVertices(), q.NumEdges()),
			Fingerprint: res.Fingerprint.String(),
			Answers:     len(res.Answers),
			Candidates:  res.Candidates,
			TimedOut:    res.TimedOut,
			Trace:       traceSnap,
			Explain:     explainSnap,
		})
	}
	writeJSON(w, resp)
}

// recordShed folds a query bounced by admission control into the workload
// telemetry: the wide event (always anomalous, so the exporter keeps it),
// the heavy-hitter profile, the /debug/events ring and the request log
// annotations. The query never executed, so the event carries no phase
// times or answer counts.
func (s *server) recordShed(rec *statusRecorder, q *sq.Graph, fp sq.Fingerprint, verdict string, status int) {
	if rec != nil {
		rec.verdict = verdict
	}
	ev := telemetry.Event{
		TimeUnixMS:    time.Now().UnixMilli(),
		Fingerprint:   fp,
		Engine:        s.engine.Name(),
		QueryVertices: q.NumVertices(),
		QueryEdges:    q.NumEdges(),
		Verdict:       verdict,
	}
	s.profile.Record(ev)
	s.exporter.Emit(ev)
	s.events.Offer(telemetry.DebugEvent{
		Kind:        verdict,
		Fingerprint: fp,
		Engine:      s.engine.Name(),
		Status:      status,
		Message:     "admission control: " + verdict,
	})
}

// handleTop serves the workload profile: the top-K query shapes by count,
// each with its space-saving error bound, failure tallies and latency
// quantiles. ?k=N overrides the row count; ?format=text renders the
// aligned table sqtop shows.
func (s *server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	k := s.topK
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "k must be a non-negative integer", http.StatusBadRequest)
			return
		}
		k = n
	}
	snap := s.profile.Snapshot(k)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		telemetry.WriteTop(w, snap)
		return
	}
	writeJSON(w, snap)
}

// handleEvents dumps the bounded incident ring (admission sheds, recovered
// panics), newest first.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	events := s.events.Snapshot()
	if events == nil {
		events = []telemetry.DebugEvent{}
	}
	writeJSON(w, map[string]any{
		"total":  s.events.Total(),
		"events": events,
	})
}

// handleInflight lists the queries executing right now, oldest first —
// the answer to "what is this server doing at this moment". JSON by
// default; ?format=text renders the aligned table sqwatch shows.
func (s *server) handleInflight(w http.ResponseWriter, r *http.Request) {
	snaps := s.live.Snapshot()
	if snaps == nil {
		snaps = []inflight.HandleSnapshot{}
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		inflight.WriteTable(w, snaps)
		return
	}
	registered, overflowed, cancels := s.live.Stats()
	writeJSON(w, map[string]any{
		"queries":    snaps,
		"registered": registered,
		"overflowed": overflowed,
		"cancels":    cancels,
	})
}

// handleInflightCancel delivers cooperative cancellation to one live
// query by handle id: the engine observes the closed channel at its next
// budget checkpoint and returns a cancelled result to its own client.
// 404 when the id is not live (already finished, or never existed).
func (s *server) handleInflightCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "id must be a decimal handle id", http.StatusBadRequest)
		return
	}
	if !s.live.Cancel(id) {
		http.Error(w, "no such live query (already finished?)", http.StatusNotFound)
		return
	}
	s.events.Offer(telemetry.DebugEvent{
		Kind:    "remote_cancel",
		Message: fmt.Sprintf("cancellation delivered to in-flight query %d", id),
	})
	s.log.Info("remote cancel delivered", "id", id)
	writeJSON(w, map[string]any{"cancelled": true, "id": id})
}

// handleSlowLog dumps the slow-query ring, newest first, with each retained
// query's Trace and Explain.
func (s *server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.slow == nil {
		http.Error(w, "slow-query log disabled", http.StatusNotFound)
		return
	}
	writeJSON(w, s.slow.Snapshot())
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a data graph in the text format", http.StatusMethodNotAllowed)
		return
	}
	g, err := sq.ReadGraph(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("parsing graph: %v", err), http.StatusBadRequest)
		return
	}
	u, ok := s.engine.(core.Updatable)
	if !ok {
		http.Error(w, "engine does not support appends; restart with a vcFV engine", http.StatusConflict)
		return
	}
	s.mu.Lock()
	id, err := u.AppendGraph(g)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.appends.Inc()
	s.invalidateStats()
	writeJSON(w, map[string]int{"id": id})
}

func (s *server) invalidateStats() {
	s.statsMu.Lock()
	s.statsCache = nil
	s.statsMu.Unlock()
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.statsMu.Lock()
	cached := s.statsCache
	s.statsMu.Unlock()
	if cached == nil {
		s.mu.RLock()
		stats := s.db.ComputeStats()
		mem := s.db.MemoryFootprint()
		idx := s.engine.IndexMemory()
		s.mu.RUnlock()
		cached = map[string]any{
			"graphs":             stats.NumGraphs,
			"labels":             stats.NumLabels,
			"vertices_per_graph": stats.VerticesPerGraph,
			"edges_per_graph":    stats.EdgesPerGraph,
			"degree_per_graph":   stats.DegreePerGraph,
			"dataset_bytes":      mem,
			"index_bytes":        idx,
			"engine":             s.engine.Name(),
		}
		s.statsMu.Lock()
		s.statsCache = cached
		s.statsMu.Unlock()
	}
	writeJSON(w, cached)
}

// handleMetrics dumps the telemetry registry: per-engine query counts,
// latency histograms with p50/p90/p99, timeout and cache counters, and
// the in-flight gauge. ?format=prom switches to the Prometheus text
// exposition (histograms in seconds with cumulative buckets).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.adm != nil {
		s.queueDepth.Set(s.adm.depth())
	}
	// Scrape-time gauges for the workload-telemetry components (refreshing
	// at snapshot keeps their hot paths free of registry traffic).
	tracked, seen, evictions := s.profile.Stats()
	s.reg.Gauge("workload_shapes_tracked").Set(int64(tracked))
	s.reg.Gauge("workload_queries_seen").Set(seen)
	s.reg.Gauge("workload_evictions").Set(evictions)
	s.reg.Gauge("debug_events_total").Set(s.events.Total())
	if s.exporter != nil {
		st := s.exporter.Stats()
		s.reg.Gauge("export_events_exported").Set(st.Exported)
		s.reg.Gauge("export_events_sampled_out").Set(st.SampledOut)
		s.reg.Gauge("export_events_dropped").Set(st.Dropped)
		s.reg.Gauge("export_sink_errors").Set(st.SinkErrors)
	}
	// Go runtime health, sampled at scrape time only (never on a query
	// path): goroutine count, heap in use, GC pause p99.
	rh := obs.ReadRuntimeHealth()
	s.reg.Gauge("go_goroutines").Set(rh.Goroutines)
	s.reg.Gauge("go_heap_inuse_bytes").Set(rh.HeapInUseBytes)
	s.reg.Gauge("go_gc_pause_p99_us").Set(rh.GCPauseP99.Microseconds())
	// Scatter-gather robustness counters, snapshotted from the coordinator
	// at scrape time (its hot path stays registry-free).
	if s.cluster != nil {
		cs := s.cluster.Stats()
		s.reg.Gauge("cluster_shards").Set(int64(cs.Shards))
		s.reg.Gauge("cluster_queries").Set(int64(cs.Queries))
		s.reg.Gauge("cluster_retries").Set(int64(cs.Retries))
		s.reg.Gauge("cluster_hedges").Set(int64(cs.Hedges))
		s.reg.Gauge("cluster_hedge_wins").Set(int64(cs.HedgeWins))
		s.reg.Gauge("cluster_degraded_queries").Set(int64(cs.DegradedQueries))
		s.reg.Gauge("cluster_transport_attempts").Set(int64(cs.TransportAttempts))
		s.reg.Gauge("cluster_transport_refused").Set(int64(cs.TransportRefused))
	}
	// Live-query registry occupancy and lifetime counters.
	s.reg.Gauge("inflight_tracked").Set(int64(s.live.Len()))
	registered, overflowed, cancels := s.live.Stats()
	s.reg.Gauge("inflight_registered").Set(registered)
	s.reg.Gauge("inflight_overflowed").Set(overflowed)
	s.reg.Gauge("inflight_remote_cancels").Set(cancels)
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, snap, "subgraphquery")
		return
	}
	writeJSON(w, map[string]any{
		"engine":     s.engine.Name(),
		"uptime_s":   int64(time.Since(s.start).Seconds()),
		"counters":   snap.Counters,
		"gauges":     snap.Gauges,
		"histograms": snap.Histograms,
		// The workload's top shapes, inlined so one scrape answers "what is
		// running and is it healthy" (full detail at /debug/top).
		"workload_top": s.profile.Snapshot(5).Top,
	})
}

// handleHealthz is the readiness probe: 503 "shedding" while admission
// control is saturated (every slot busy, queue full), so load balancers
// steer new traffic away instead of feeding the 429 path; 200 "ok"
// otherwise.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.adm != nil && s.adm.saturated() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "shedding")
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
