package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/core"
	"subgraphquery/internal/obs"
)

// server holds the database and engine behind the HTTP handlers. A RWMutex
// serializes appends against queries: the engines themselves are safe for
// concurrent queries but not for concurrent database mutation.
type server struct {
	mu     sync.RWMutex
	db     *sq.Database
	engine sq.Engine
	budget time.Duration
	log    *slog.Logger
	start  time.Time

	// Telemetry. The registry backs GET /metrics; the named instruments
	// are held directly so the hot path never takes the registry lock.
	reg       *obs.Registry
	queries   *obs.Counter
	rejected  *obs.Counter
	timeouts  *obs.Counter
	appends   *obs.Counter
	cacheHit  *obs.Counter
	cacheMiss *obs.Counter
	inflight  *obs.Gauge
	latency   *obs.Histogram // wall-clock per query
	filterLat *obs.Histogram // engine filtering phase
	verifyLat *obs.Histogram // engine verification phase
	siLat     *obs.Histogram // per-SI-test (one sample per candidate graph)

	// statsCache memoizes the /stats response; ComputeStats walks every
	// graph, so recomputing per request is wasteful on a static database.
	// Appends invalidate it.
	statsMu    sync.Mutex
	statsCache map[string]any
}

func newServer(db *sq.Database, engine sq.Engine, cacheEntries int, budget time.Duration, logger *slog.Logger) (*server, error) {
	if cacheEntries > 0 {
		engine = sq.NewCachedEngine(engine, cacheEntries)
	}
	if err := engine.Build(db, sq.BuildOptions{}); err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &server{
		db:     db,
		engine: engine,
		budget: budget,
		log:    logger,
		start:  time.Now(),
		reg:    obs.NewRegistry(),
	}
	en := engine.Name()
	s.queries = s.reg.Counter("queries_total/" + en)
	s.rejected = s.reg.Counter("queries_rejected_total")
	s.timeouts = s.reg.Counter("query_timeouts_total/" + en)
	s.appends = s.reg.Counter("graph_appends_total")
	s.cacheHit = s.reg.Counter("cache_hits_total")
	s.cacheMiss = s.reg.Counter("cache_misses_total")
	s.inflight = s.reg.Gauge("queries_inflight")
	s.latency = s.reg.Histogram("query_latency/" + en)
	s.filterLat = s.reg.Histogram("filter_latency/" + en)
	s.verifyLat = s.reg.Histogram("verify_latency/" + en)
	s.siLat = s.reg.Histogram("si_test_latency/" + en)
	return s, nil
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/query", s.handleQuery)
	m.HandleFunc("/graphs", s.handleAppend)
	m.HandleFunc("/stats", s.handleStats)
	m.HandleFunc("/metrics", s.handleMetrics)
	m.HandleFunc("/healthz", s.handleHealthz)
	return m
}

// handler wraps the mux with request logging.
func (s *server) handler() http.Handler {
	mux := s.mux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"dur_ms", time.Since(t0).Milliseconds(),
			"remote", r.RemoteAddr,
		)
	})
}

// statusRecorder captures the response status and size for the log line.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// registryObserver streams engine telemetry into the server's registry:
// phase spans feed the per-phase histograms, every SI test feeds the
// per-SI-test histogram, cache probes feed the hit/miss counters.
type registryObserver struct{ s *server }

func (o registryObserver) ObservePhase(name string, d time.Duration) {
	switch name {
	case obs.PhaseFilter:
		o.s.filterLat.Record(d)
	case obs.PhaseVerify:
		o.s.verifyLat.Record(d)
	}
}

func (o registryObserver) ObserveVerify(_ int, _ uint64, d time.Duration, _ bool) {
	o.s.siLat.Record(d)
}

func (o registryObserver) ObserveCache(hit bool) {
	if hit {
		o.s.cacheHit.Inc()
	} else {
		o.s.cacheMiss.Inc()
	}
}

// queryResponse is the JSON body returned by POST /query.
type queryResponse struct {
	Answers    []int              `json:"answers"`
	Candidates int                `json:"candidates"`
	FilterUS   int64              `json:"filter_us"`
	VerifyUS   int64              `json:"verify_us"`
	TimedOut   bool               `json:"timed_out,omitempty"`
	Engine     string             `json:"engine"`
	Trace      *obs.TraceSnapshot `json:"trace,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a query graph in the text format", http.StatusMethodNotAllowed)
		return
	}
	q, err := sq.ReadGraph(r.Body)
	if err != nil {
		s.rejected.Inc()
		http.Error(w, fmt.Sprintf("parsing query: %v", err), http.StatusBadRequest)
		return
	}
	if !q.IsConnected() {
		s.rejected.Inc()
		http.Error(w, "query graph must be connected", http.StatusBadRequest)
		return
	}
	opts := sq.QueryOptions{}
	if s.budget > 0 {
		opts.Deadline = time.Now().Add(s.budget)
	}

	var trace *sq.Trace
	var observer sq.Observer = registryObserver{s}
	if r.URL.Query().Get("trace") == "1" {
		trace = sq.NewTrace()
		observer = obs.Tee(observer, trace)
	}
	opts.Observer = observer

	s.inflight.Add(1)
	t0 := time.Now()
	s.mu.RLock()
	res := s.engine.Query(q, opts)
	s.mu.RUnlock()
	elapsed := time.Since(t0)
	s.inflight.Add(-1)

	s.queries.Inc()
	s.latency.Record(elapsed)
	if res.TimedOut {
		s.timeouts.Inc()
	}

	resp := queryResponse{
		Answers:    append([]int{}, res.Answers...),
		Candidates: res.Candidates,
		FilterUS:   res.FilterTime.Microseconds(),
		VerifyUS:   res.VerifyTime.Microseconds(),
		TimedOut:   res.TimedOut,
		Engine:     s.engine.Name(),
	}
	if trace != nil {
		snap := trace.Snapshot()
		resp.Trace = &snap
	}
	writeJSON(w, resp)
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a data graph in the text format", http.StatusMethodNotAllowed)
		return
	}
	g, err := sq.ReadGraph(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("parsing graph: %v", err), http.StatusBadRequest)
		return
	}
	u, ok := s.engine.(core.Updatable)
	if !ok {
		http.Error(w, "engine does not support appends; restart with a vcFV engine", http.StatusConflict)
		return
	}
	s.mu.Lock()
	id, err := u.AppendGraph(g)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.appends.Inc()
	s.invalidateStats()
	writeJSON(w, map[string]int{"id": id})
}

func (s *server) invalidateStats() {
	s.statsMu.Lock()
	s.statsCache = nil
	s.statsMu.Unlock()
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.statsMu.Lock()
	cached := s.statsCache
	s.statsMu.Unlock()
	if cached == nil {
		s.mu.RLock()
		stats := s.db.ComputeStats()
		mem := s.db.MemoryFootprint()
		idx := s.engine.IndexMemory()
		s.mu.RUnlock()
		cached = map[string]any{
			"graphs":             stats.NumGraphs,
			"labels":             stats.NumLabels,
			"vertices_per_graph": stats.VerticesPerGraph,
			"edges_per_graph":    stats.EdgesPerGraph,
			"degree_per_graph":   stats.DegreePerGraph,
			"dataset_bytes":      mem,
			"index_bytes":        idx,
			"engine":             s.engine.Name(),
		}
		s.statsMu.Lock()
		s.statsCache = cached
		s.statsMu.Unlock()
	}
	writeJSON(w, cached)
}

// handleMetrics dumps the telemetry registry: per-engine query counts,
// latency histograms with p50/p90/p99, timeout and cache counters, and
// the in-flight gauge.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	snap := s.reg.Snapshot()
	writeJSON(w, map[string]any{
		"engine":     s.engine.Name(),
		"uptime_s":   int64(time.Since(s.start).Seconds()),
		"counters":   snap.Counters,
		"gauges":     snap.Gauges,
		"histograms": snap.Histograms,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
