package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/telemetry"
)

// syncLogBuffer is a goroutine-safe buffer for captured slog output (the
// HTTP handler logs from request goroutines).
type syncLogBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncLogBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncLogBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// postQuery runs one query against the test server and returns the status.
func postQuery(t *testing.T, ts *httptest.Server, body string) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestDebugTop: executed queries aggregate by fingerprint, render as JSON
// and as text, and honor ?k.
func TestDebugTop(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := graphText(t, testQuery(t, srv))
	for i := 0; i < 5; i++ {
		if got := postQuery(t, ts, q); got != http.StatusOK {
			t.Fatalf("query status %d", got)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/top")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.ProfileSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Seen != 5 || snap.Tracked != 1 {
		t.Fatalf("seen=%d tracked=%d, want 5/1", snap.Seen, snap.Tracked)
	}
	top := snap.Top[0]
	if top.Count != 5 {
		t.Fatalf("count = %d", top.Count)
	}
	if top.Fingerprint == "" || top.Fingerprint == telemetry.Fingerprint(0).String() {
		t.Fatalf("fingerprint = %q", top.Fingerprint)
	}
	if top.Latency.Count != 5 {
		t.Fatalf("latency count = %d", top.Latency.Count)
	}

	// Text rendering carries the fingerprint and the header line.
	textResp, err := http.Get(ts.URL + "/debug/top?format=text&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer textResp.Body.Close()
	raw, err := io.ReadAll(textResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, "workload profile:") || !strings.Contains(body, top.Fingerprint) {
		t.Fatalf("text body missing expected content:\n%s", body)
	}

	// ?k=bogus is a 400, not a panic.
	bad, err := http.Get(ts.URL + "/debug/top?k=-2")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=-2 status %d", bad.StatusCode)
	}
}

// TestQueryResponseFingerprintInTrace: the ?trace=1 body carries the
// query's fingerprint, and it matches /debug/top's aggregation key.
func TestQueryResponseFingerprintInTrace(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := testQuery(t, srv)
	resp, err := http.Post(ts.URL+"/query?trace=1", "text/plain", strings.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Fingerprint == "" {
		t.Fatal("trace missing fingerprint")
	}
	want := sq.ComputeFingerprint(q).String()
	if out.Trace.Fingerprint != want {
		t.Fatalf("trace fingerprint %s, want %s", out.Trace.Fingerprint, want)
	}

	// The slow log (threshold 0 in tests retains everything) carries it too.
	slow := srv.slow.Snapshot()
	if len(slow.Queries) == 0 || slow.Queries[0].Fingerprint != want {
		t.Fatalf("slow log fingerprint = %+v", slow.Queries)
	}
}

// TestShedRecordedInTelemetry: a query bounced by admission control is
// attributed by fingerprint in the profile, the incident ring, and the
// export stream even though it never executed.
func TestShedRecordedInTelemetry(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 5, NumVertices: 15, NumLabels: 3, Degree: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	exportPath := filepath.Join(t.TempDir(), "events.ndjson")
	srv, err := newServer(db, sq.NewCFQLEngine(), serverConfig{
		maxInflight: 1, maxQueue: 0, queueWait: 10 * time.Millisecond,
		exportDest: exportPath, exportSample: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	qs, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 1, Edges: 3, Method: sq.QueryRandomWalk, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	body := graphText(t, q)

	// Hold the only execution slot so the next request sheds immediately
	// (queue size 0).
	release, verdict := srv.adm.acquire(nil)
	if verdict != admitOK {
		t.Fatalf("setup acquire verdict %v", verdict)
	}
	if got := postQuery(t, ts, body); got != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", got)
	}
	release()

	want := sq.ComputeFingerprint(q)

	// Profile: the shed is tallied under the query's fingerprint.
	snap := srv.profile.Snapshot(0)
	if len(snap.Top) != 1 || snap.Top[0].Fingerprint != want.String() || snap.Top[0].Sheds != 1 {
		t.Fatalf("profile after shed = %+v", snap.Top)
	}

	// Incident ring: one shed event with the 429 status.
	evs := srv.events.Snapshot()
	if len(evs) != 1 || evs[0].Kind != telemetry.VerdictShed || evs[0].Status != http.StatusTooManyRequests || evs[0].Fingerprint != want {
		t.Fatalf("debug events after shed = %+v", evs)
	}

	// Export: the shed event is anomalous, hence guaranteed in the stream.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Fingerprint == want && ev.Verdict == telemetry.VerdictShed {
			found = true
		}
	}
	if !found {
		t.Fatalf("shed event missing from export:\n%s", data)
	}
}

// TestDebugEventsEndpoint: the ring serves JSON with a total and renders
// an empty list (not null) before any incidents.
func TestDebugEventsEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Total  int64                  `json:"total"`
		Events []telemetry.DebugEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 0 || out.Events == nil || len(out.Events) != 0 {
		t.Fatalf("fresh events = %+v", out)
	}
}

// TestMetricsWorkloadSection: /metrics carries the scrape-time workload
// gauges, the index-build instruments, and the inlined top shapes.
func TestMetricsWorkloadSection(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := graphText(t, testQuery(t, srv))
	if got := postQuery(t, ts, q); got != http.StatusOK {
		t.Fatalf("query status %d", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
		Top        []telemetry.ShapeSnapshot  `json:"workload_top"`
		Counters   map[string]int64           `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Gauges["workload_queries_seen"] != 1 || out.Gauges["workload_shapes_tracked"] != 1 {
		t.Fatalf("workload gauges = %+v", out.Gauges)
	}
	if _, ok := out.Histograms["index_build/CFQL+cache"]; !ok {
		t.Fatalf("index_build histogram missing; have %v", keysOf(out.Histograms))
	}
	if _, ok := out.Gauges["index_bytes/CFQL+cache"]; !ok {
		t.Fatalf("index_bytes gauge missing; have %+v", out.Gauges)
	}
	if len(out.Top) != 1 || out.Top[0].Count != 1 {
		t.Fatalf("workload_top = %+v", out.Top)
	}
}

// TestRequestLogAnnotations: the per-request slog line carries
// fingerprint and admission_verdict fields.
func TestRequestLogAnnotations(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 5, NumVertices: 15, NumLabels: 3, Degree: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncLogBuffer
	logger := newJSONLogger(&logBuf)
	srv, err := newServer(db, sq.NewCFQLEngine(), serverConfig{maxInflight: 2, maxQueue: 2}, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	qs, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 1, Edges: 3, Method: sq.QueryRandomWalk, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := postQuery(t, ts, graphText(t, qs[0])); got != http.StatusOK {
		t.Fatalf("query status %d", got)
	}

	want := sq.ComputeFingerprint(qs[0]).String()
	var sawFingerprint, sawVerdict bool
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			continue
		}
		if line["msg"] != "request" || line["path"] != "/query" {
			continue
		}
		if line["fingerprint"] == want {
			sawFingerprint = true
		}
		if line["admission_verdict"] == telemetry.VerdictOK {
			sawVerdict = true
		}
	}
	if !sawFingerprint || !sawVerdict {
		t.Fatalf("request log missing annotations (fingerprint=%v verdict=%v):\n%s",
			sawFingerprint, sawVerdict, logBuf.String())
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
