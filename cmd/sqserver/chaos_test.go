//go:build sqchaos

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/telemetry"
)

// TestChaosServerSurvives is the acceptance run from the issue: 500 queries
// from concurrent clients against a server with tight budgets and admission
// limits, while the fault substrate injects panics, latency, allocation
// spikes and spurious aborts into the engine hot paths. Every response must
// be structured — 2xx, 408, 429 (with Retry-After), or 500 carrying a JSON
// QueryError — the process must never crash, and afterwards no goroutine or
// scratch arena may outlive its query.
func TestChaosServerSurvives(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 20, NumVertices: 24, NumLabels: 3, Degree: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// vcGrapes exercises the index-probe injection point and the IvcFV
	// worker pool; the result cache exercises probe/store under fault.
	fault.Set(fault.Config{}) // engine build stays fault-free
	srv, err := newServer(db, sq.NewVcGrapesEngine(), serverConfig{
		cacheEntries:  16,
		budget:        250 * time.Millisecond,
		slowThreshold: -1,
		memBudget:     8 << 20,
		maxInflight:   2,
		maxQueue:      2,
		queueWait:     50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	queries, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 10, Edges: 3, Method: sq.QueryRandomWalk, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([]string, len(queries))
	for i, q := range queries {
		bodies[i] = graphText(t, q)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	defer client.CloseIdleConnections()

	baselineG := runtime.NumGoroutine()
	baselineS := matching.ScratchLive()

	fault.Set(fault.Config{
		PanicRate:   0.02,
		LatencyRate: 0.2,
		AllocRate:   0.02,
		AbortRate:   0.02,
		Latency:     2 * time.Millisecond,
		AllocBytes:  1 << 16,
		Seed:        3,
	})
	defer fault.Set(fault.Config{})

	const totalQueries = 500
	const clients = 8
	var counts [600]atomic.Int64 // indexed by HTTP status
	var malformed atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= totalQueries {
					return
				}
				resp, err := client.Post(ts.URL+"/query", "text/plain",
					strings.NewReader(bodies[i%int64(len(bodies))]))
				if err != nil {
					// A transport-level failure would mean the server died.
					malformed.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode < len(counts) {
					counts[resp.StatusCode].Add(1)
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusRequestTimeout:
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						malformed.Add(1)
					}
					// Back off briefly — a shed client that retries in a hot
					// loop only measures its own spin rate.
					time.Sleep(2 * time.Millisecond)
				case http.StatusInternalServerError:
					var out struct {
						Error struct {
							Kind string `json:"kind"`
						} `json:"error"`
					}
					if json.Unmarshal(body, &out) != nil || out.Error.Kind == "" {
						malformed.Add(1)
					}
				default:
					malformed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	var summary []string
	var answered int64
	for status := range counts {
		if n := counts[status].Load(); n > 0 {
			answered += n
			summary = append(summary, fmt.Sprintf("%d×%d", status, n))
		}
	}
	panics, latencies, allocs, aborts := fault.Counts()
	t.Logf("statuses: %s; faults fired: %d panics, %d latencies, %d allocs, %d aborts",
		strings.Join(summary, " "), panics, latencies, allocs, aborts)

	if malformed.Load() != 0 {
		t.Errorf("%d malformed responses (wrong status, missing Retry-After, or unstructured 500 body)", malformed.Load())
	}
	if answered != totalQueries {
		t.Errorf("answered %d of %d queries; the rest hit transport errors", answered, totalQueries)
	}
	if counts[http.StatusOK].Load() == 0 {
		t.Error("no query succeeded under fault; rates are drowning the run")
	}
	if panics == 0 {
		t.Error("chaos run fired no panics; injection points or rates are dead")
	}
	// Engine-recovered panics reach the registry through the observer's
	// ObservePanic, so the counter behind panics_recovered_total moves.
	if srv.panics.Value() == 0 {
		t.Error("panics_recovered_total stayed zero while panics fired")
	}

	// Quiesce and assert nothing leaked: the admission slots are all free,
	// scratch arenas all returned, worker goroutines all gone.
	fault.Set(fault.Config{})
	client.CloseIdleConnections()
	if d := srv.adm.depth(); d != 0 {
		t.Errorf("admission queue depth %d after run, want 0", d)
	}
	if got := matching.ScratchLive(); got != baselineS {
		t.Errorf("scratch arenas leaked: live %d, was %d", got, baselineS)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baselineG {
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: have %d, want <= %d", runtime.NumGoroutine(), baselineG)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server is still healthy and answers cleanly after the storm.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz after chaos: %d, want 200", hz.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(bodies[0]))
	if err != nil {
		t.Fatal(err)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Skipped != 0 || out.TimedOut {
		t.Errorf("clean query after chaos: status=%d skipped=%d timed_out=%v",
			resp.StatusCode, out.Skipped, out.TimedOut)
	}
	if len(out.Answers) == 0 {
		t.Error("clean query after chaos returned no answers")
	}
}

// TestChaosTelemetryRetainsAnomalies drives the chaos storm through a
// server with wide-event export enabled and closes the loop on the tail
// sampler's contract: every anomalous outcome a client observed — shed
// (429), abandoned queue wait (408), engine failure (500), or a 200 whose
// body admits a timeout, cancellation or skipped graphs — has exactly one
// matching anomalous event in the export stream, and the healthy keep-rate
// matches -export-sample deterministically (minus counted backpressure
// drops).
func TestChaosTelemetryRetainsAnomalies(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 20, NumVertices: 24, NumLabels: 3, Degree: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	exportPath := filepath.Join(t.TempDir(), "chaos.ndjson")
	fault.Set(fault.Config{}) // engine build stays fault-free
	// Looser admission than TestChaosServerSurvives: this storm needs both
	// populations — anomalous outcomes to prove 100% retention AND healthy
	// completions to prove the sampler's exact 1-in-4 keep-rate.
	srv, err := newServer(db, sq.NewVcGrapesEngine(), serverConfig{
		cacheEntries:  16,
		budget:        250 * time.Millisecond,
		slowThreshold: -1,
		memBudget:     8 << 20,
		maxInflight:   4,
		maxQueue:      16,
		queueWait:     250 * time.Millisecond,
		exportDest:    exportPath,
		exportSample:  0.25,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	queries, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 10, Edges: 3, Method: sq.QueryRandomWalk, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([]string, len(queries))
	for i, q := range queries {
		bodies[i] = graphText(t, q)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	defer client.CloseIdleConnections()

	fault.Set(fault.Config{
		PanicRate:   0.01,
		LatencyRate: 0.1,
		AllocRate:   0.01,
		AbortRate:   0.01,
		Latency:     time.Millisecond,
		AllocBytes:  1 << 16,
		Seed:        3,
	})
	defer fault.Set(fault.Config{})

	const totalQueries = 500
	const clients = 8
	var anomalousResponses, healthyResponses, transportErrors atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= totalQueries {
					return
				}
				resp, err := client.Post(ts.URL+"/query", "text/plain",
					strings.NewReader(bodies[i%int64(len(bodies))]))
				if err != nil {
					transportErrors.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var out queryResponse
					if json.Unmarshal(body, &out) != nil {
						transportErrors.Add(1)
						continue
					}
					if out.TimedOut || out.Cancelled || out.Skipped > 0 {
						anomalousResponses.Add(1)
					} else {
						healthyResponses.Add(1)
					}
				case http.StatusTooManyRequests, http.StatusRequestTimeout,
					http.StatusInternalServerError:
					anomalousResponses.Add(1)
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(2 * time.Millisecond)
					}
				default:
					transportErrors.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	fault.Set(fault.Config{})

	if transportErrors.Load() != 0 {
		t.Fatalf("%d transport errors; retention accounting needs every response", transportErrors.Load())
	}
	if anomalousResponses.Load() == 0 {
		t.Fatal("chaos produced no anomalous responses; rates are dead")
	}
	if healthyResponses.Load() == 0 {
		t.Fatal("chaos produced no healthy responses; the sampling assertion is vacuous")
	}

	// Drain the export and tally the stream.
	st := srv.exporter.Stats()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	var anomalousEvents, healthyEvents int64
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad export line %q: %v", sc.Text(), err)
		}
		if ev.Anomalous() {
			anomalousEvents++
		} else {
			healthyEvents++
		}
	}

	t.Logf("responses: %d anomalous, %d healthy; export: %d anomalous, %d healthy; stats %+v",
		anomalousResponses.Load(), healthyResponses.Load(), anomalousEvents, healthyEvents, st)

	// 100% of anomalous outcomes survive — the acceptance criterion.
	if anomalousEvents != anomalousResponses.Load() {
		t.Errorf("export retained %d anomalous events, clients observed %d anomalous responses",
			anomalousEvents, anomalousResponses.Load())
	}
	// Healthy sampling is deterministic: 1-in-4 of the healthy emits pass
	// the counter, minus any backpressure drops (counted, healthy-only).
	wantHealthy := healthyResponses.Load()/4 - st.Dropped
	if healthyEvents != wantHealthy {
		t.Errorf("export kept %d healthy events, want %d (healthy=%d dropped=%d)",
			healthyEvents, wantHealthy, healthyResponses.Load(), st.Dropped)
	}
	// The profile saw every query, executed or shed.
	if _, seen, _ := srv.profile.Stats(); seen != totalQueries {
		t.Errorf("profile saw %d queries, want %d", seen, totalQueries)
	}
}
