package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sq "subgraphquery"
)

func testServer(t *testing.T) *server {
	t.Helper()
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 15, NumVertices: 20, NumLabels: 3, Degree: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// slowThreshold 0 retains every query in the slow log, which the
	// slow-log tests rely on; cacheEntries 16 wraps the engine in the
	// result cache.
	srv, err := newServer(db, sq.NewCFQLEngine(), serverConfig{cacheEntries: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// graphText serializes a graph for request bodies.
func graphText(t *testing.T, g *sq.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sq.WriteGraph(&buf, 0, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// testQuery returns a query drawn from the test database (so it has
// answers).
func testQuery(t *testing.T, srv *server) *sq.Graph {
	t.Helper()
	qs, err := sq.GenerateQuerySet(srv.db, sq.QuerySetConfig{
		Count: 1, Edges: 3, Method: sq.QueryRandomWalk, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return qs[0]
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Query drawn from graph 0: must return at least graph 0.
	q := testQuery(t, srv)
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) == 0 {
		t.Error("generated query should have answers")
	}
	if out.Engine != "CFQL+cache" {
		t.Errorf("engine = %q", out.Engine)
	}
	if out.Trace != nil {
		t.Error("trace returned without ?trace=1")
	}
}

func TestQueryRejectsBadInput(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"garbage":      "not a graph",
		"disconnected": "t 0 4 2\nv 0 0 1\nv 1 0 1\nv 2 0 1\nv 3 0 1\ne 0 1\ne 2 3\n",
	} {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
	}
	if got := srv.rejected.Value(); got != 2 {
		t.Errorf("queries_rejected_total = %d, want 2", got)
	}
}

func TestAppendEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	g, err := sq.FromEdges([]sq.Label{0, 1, 2}, []sq.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/graphs", "text/plain", strings.NewReader(graphText(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out["id"] != 15 {
		t.Errorf("appended id = %d, want 15", out["id"])
	}

	// The appended graph is immediately queryable.
	q, _ := sq.FromEdges([]sq.Label{1, 2}, []sq.Edge{{U: 0, V: 1}})
	resp2, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp2.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	found := false
	for _, id := range qr.Answers {
		if id == 15 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("appended graph missing from answers %v", qr.Answers)
	}
}

func getStats(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	out := getStats(t, ts.URL)
	if out["graphs"].(float64) != 15 {
		t.Errorf("graphs = %v, want 15", out["graphs"])
	}
	if out["engine"] != "CFQL+cache" {
		t.Errorf("engine = %v", out["engine"])
	}
}

// TestStatsCacheInvalidation: /stats is cached between requests, and an
// append invalidates the cache so the new graph count is visible.
func TestStatsCacheInvalidation(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	if n := getStats(t, ts.URL)["graphs"].(float64); n != 15 {
		t.Fatalf("graphs = %v, want 15", n)
	}
	if srv.statsCache == nil {
		t.Error("stats cache not populated after GET /stats")
	}

	g, err := sq.FromEdges([]sq.Label{0, 1}, []sq.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/graphs", "text/plain", strings.NewReader(graphText(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if n := getStats(t, ts.URL)["graphs"].(float64); n != 16 {
		t.Errorf("graphs after append = %v, want 16", n)
	}
}

// metricsResponse mirrors the /metrics JSON shape.
type metricsResponse struct {
	Engine     string           `json:"engine"`
	UptimeS    int64            `json:"uptime_s"`
	Counters   map[string]int64 `json:"counters"`
	Gauges     map[string]int64 `json:"gauges"`
	Histograms map[string]struct {
		Count  uint64 `json:"count"`
		MeanUS int64  `json:"mean_us"`
		P50US  int64  `json:"p50_us"`
		P90US  int64  `json:"p90_us"`
		P99US  int64  `json:"p99_us"`
	} `json:"histograms"`
}

// TestMetricsEndpoint: after a handful of queries, /metrics reports
// per-engine query counts, cache outcomes and latency quantiles.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := graphText(t, testQuery(t, srv))
	const n = 5
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}

	if m.Engine != "CFQL+cache" {
		t.Errorf("engine = %q", m.Engine)
	}
	if got := m.Counters["queries_total/CFQL+cache"]; got != n {
		t.Errorf("queries_total = %d, want %d", got, n)
	}
	// Identical repeated queries: first misses, the rest hit the cache.
	if hits := m.Counters["cache_hits_total"]; hits < 1 {
		t.Errorf("cache_hits_total = %d, want >= 1", hits)
	}
	if misses := m.Counters["cache_misses_total"]; misses < 1 {
		t.Errorf("cache_misses_total = %d, want >= 1", misses)
	}
	if g, ok := m.Gauges["queries_inflight"]; !ok || g != 0 {
		t.Errorf("queries_inflight = %d (present %v), want 0", g, ok)
	}
	h, ok := m.Histograms["query_latency/CFQL+cache"]
	if !ok {
		t.Fatal("query_latency histogram missing")
	}
	if h.Count != n {
		t.Errorf("latency count = %d, want %d", h.Count, n)
	}
	if h.P50US <= 0 || h.P90US < h.P50US || h.P99US < h.P90US {
		t.Errorf("quantiles not ordered: p50=%d p90=%d p99=%d", h.P50US, h.P90US, h.P99US)
	}
}

// TestQueryTrace: ?trace=1 inlines the per-query trace and its phase
// spans account for the reported filter/verify times.
func TestQueryTrace(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := testQuery(t, srv)
	resp, err := http.Post(ts.URL+"/query?trace=1", "text/plain", strings.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("no trace in response")
	}

	var filterUS, verifyUS int64
	for _, sp := range out.Trace.Phases {
		switch sp.Name {
		case "filter":
			filterUS += sp.DurationUS
		case "verify":
			verifyUS += sp.DurationUS
		}
	}
	// The spans are the engine's own FilterTime/VerifyTime measurements,
	// so the sums agree up to microsecond truncation per span.
	if diff := filterUS + verifyUS - (out.FilterUS + out.VerifyUS); diff < -4 || diff > 4 {
		t.Errorf("span sum %dus != filter_us+verify_us %dus",
			filterUS+verifyUS, out.FilterUS+out.VerifyUS)
	}
	if out.Candidates > 0 && len(out.Trace.Verifications) == 0 {
		t.Error("no verification events despite candidates")
	}
	for _, ev := range out.Trace.Verifications {
		if ev.Graph < 0 || ev.Graph >= srv.db.Len() {
			t.Errorf("verification event graph %d out of range", ev.Graph)
		}
	}
	if out.Trace.CacheMisses+out.Trace.CacheHits != 1 {
		t.Errorf("cache events = %d hits + %d misses, want exactly 1 probe",
			out.Trace.CacheHits, out.Trace.CacheMisses)
	}
}

// TestQueryExplain: ?explain=1 inlines the EXPLAIN report with the CFL
// filter stages and the engine name.
func TestQueryExplain(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := testQuery(t, srv)
	resp, err := http.Post(ts.URL+"/query?explain=1", "text/plain", strings.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Explain == nil {
		t.Fatal("no explain in response")
	}
	if out.Explain.Engine != "CFQL+cache" {
		t.Errorf("explain engine = %q", out.Explain.Engine)
	}
	stages := map[string]bool{}
	for _, st := range out.Explain.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"cfl.ldf", "cfl.topdown", "cfl.bottomup"} {
		if !stages[want] {
			t.Errorf("stage %q missing (have %v)", want, stages)
		}
	}

	// Without ?explain=1 the response stays lean.
	resp2, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	var out2 queryResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if out2.Explain != nil {
		t.Error("explain returned without ?explain=1")
	}
}

// TestSlowLogEndpoint: with a zero threshold every query is retained, and
// each record carries its full Trace and Explain.
func TestSlowLogEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := graphText(t, testQuery(t, srv))
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		ThresholdUS int64 `json:"threshold_us"`
		Capacity    int   `json:"capacity"`
		Seen        int64 `json:"seen"`
		Kept        int64 `json:"kept"`
		Queries     []struct {
			DurationUS int64               `json:"duration_us"`
			Engine     string              `json:"engine"`
			Query      string              `json:"query"`
			Trace      *sq.TraceSnapshot   `json:"trace"`
			Explain    *sq.ExplainSnapshot `json:"explain"`
		} `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Seen != 3 || out.Kept != 3 || len(out.Queries) != 3 {
		t.Fatalf("seen=%d kept=%d len=%d, want 3/3/3", out.Seen, out.Kept, len(out.Queries))
	}
	for i, rec := range out.Queries {
		if rec.Engine != "CFQL+cache" {
			t.Errorf("queries[%d].engine = %q", i, rec.Engine)
		}
		if rec.Query == "" {
			t.Errorf("queries[%d] missing query shape", i)
		}
		if rec.Trace == nil || len(rec.Trace.Phases) == 0 {
			t.Errorf("queries[%d] missing trace", i)
		}
		if rec.Explain == nil || rec.Explain.Engine == "" {
			t.Errorf("queries[%d] missing explain", i)
		}
	}
}

// TestSlowLogDisabled: a negative threshold disables the log and the
// endpoint reports 404.
func TestSlowLogDisabled(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 5, NumVertices: 12, NumLabels: 3, Degree: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(db, sq.NewCFQLEngine(), serverConfig{slowThreshold: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
}

// TestMetricsProm: ?format=prom returns the text exposition with the
// right content type and per-engine samples.
func TestMetricsProm(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	q := graphText(t, testQuery(t, srv))
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 exposition format", ct)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	out := body.String()
	for _, want := range []string{
		"# TYPE subgraphquery_queries_total counter",
		`subgraphquery_queries_total{engine="CFQL+cache"} 1`,
		"# TYPE subgraphquery_query_latency_seconds histogram",
		`le="+Inf"`,
		"subgraphquery_query_latency_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
