package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sq "subgraphquery"
)

func testServer(t *testing.T) *server {
	t.Helper()
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 15, NumVertices: 20, NumLabels: 3, Degree: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(db, sq.NewCFQLEngine(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// graphText serializes a graph for request bodies.
func graphText(t *testing.T, g *sq.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sq.WriteGraph(&buf, 0, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	// Query drawn from graph 0: must return at least graph 0.
	qs, err := sq.GenerateQuerySet(srv.db, sq.QuerySetConfig{
		Count: 1, Edges: 3, Method: sq.QueryRandomWalk, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(graphText(t, qs[0])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) == 0 {
		t.Error("generated query should have answers")
	}
	if out.Engine != "CFQL+cache" {
		t.Errorf("engine = %q", out.Engine)
	}
}

func TestQueryRejectsBadInput(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	for name, body := range map[string]string{
		"garbage":      "not a graph",
		"disconnected": "t 0 4 2\nv 0 0 1\nv 1 0 1\nv 2 0 1\nv 3 0 1\ne 0 1\ne 2 3\n",
	} {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", resp.StatusCode)
	}
}

func TestAppendEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	g, err := sq.FromEdges([]sq.Label{0, 1, 2}, []sq.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/graphs", "text/plain", strings.NewReader(graphText(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out["id"] != 15 {
		t.Errorf("appended id = %d, want 15", out["id"])
	}

	// The appended graph is immediately queryable.
	q, _ := sq.FromEdges([]sq.Label{1, 2}, []sq.Edge{{U: 0, V: 1}})
	resp2, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp2.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	found := false
	for _, id := range qr.Answers {
		if id == 15 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("appended graph missing from answers %v", qr.Answers)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["graphs"].(float64) != 15 {
		t.Errorf("graphs = %v, want 15", out["graphs"])
	}
	if out["engine"] != "CFQL+cache" {
		t.Errorf("engine = %v", out["engine"])
	}
}
