// sqgen generates graph databases and query workloads in the text format
// used throughout this module ("t/v/e" records).
//
// Usage:
//
//	sqgen synthetic -graphs 1000 -vertices 200 -labels 20 -degree 8 -o db.graph
//	sqgen real -dataset AIDS -scale 0.05 -o aids.graph
//	sqgen queries -db db.graph -count 100 -edges 8 -method walk -o q8s.graph
package main

import (
	"flag"
	"fmt"
	"os"

	sq "subgraphquery"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "synthetic":
		err = synthetic(os.Args[2:])
	case "real":
		err = real(os.Args[2:])
	case "queries":
		err = queries(os.Args[2:])
	case "stats":
		err = stats(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `sqgen generates datasets and query workloads.

subcommands:
  synthetic   GraphGen-style synthetic database (-graphs -vertices -labels -degree -seed -o)
  real        simulated real-world dataset (-dataset AIDS|PDBS|PCM|PPI -scale -seed -o)
  queries     query workload from a database (-db -count -edges -method walk|bfs -seed -o)
  stats       print Table IV-style statistics of a database (-db)`)
}

func writeDB(path string, db *sq.Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sq.WriteDatabase(f, db); err != nil {
		return err
	}
	return f.Close()
}

func synthetic(args []string) error {
	fs := flag.NewFlagSet("synthetic", flag.ExitOnError)
	graphs := fs.Int("graphs", 1000, "|D|: number of data graphs")
	vertices := fs.Int("vertices", 200, "|V(G)|: vertices per graph")
	labels := fs.Int("labels", 20, "|Σ|: distinct labels")
	degree := fs.Float64("degree", 8, "d(G): average degree")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "db.graph", "output file")
	fs.Parse(args)

	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: *graphs, NumVertices: *vertices, NumLabels: *labels,
		Degree: *degree, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := writeDB(*out, db); err != nil {
		return err
	}
	fmt.Printf("wrote %d graphs to %s\n", db.Len(), *out)
	return nil
}

func real(args []string) error {
	fs := flag.NewFlagSet("real", flag.ExitOnError)
	dataset := fs.String("dataset", "AIDS", "AIDS, PDBS, PCM or PPI")
	scale := fs.Float64("scale", 0.05, "dataset scale in (0,1]")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "db.graph", "output file")
	fs.Parse(args)

	db, err := sq.GenerateReal(sq.RealDataset(*dataset), *scale, *seed)
	if err != nil {
		return err
	}
	if err := writeDB(*out, db); err != nil {
		return err
	}
	s := db.ComputeStats()
	fmt.Printf("wrote %s-like database to %s: %d graphs, %.0f vertices/graph, degree %.2f\n",
		*dataset, *out, s.NumGraphs, s.VerticesPerGraph, s.DegreePerGraph)
	return nil
}

func queries(args []string) error {
	fs := flag.NewFlagSet("queries", flag.ExitOnError)
	dbPath := fs.String("db", "db.graph", "database file")
	count := fs.Int("count", 100, "number of queries")
	edges := fs.Int("edges", 8, "edges per query")
	method := fs.String("method", "walk", "walk (sparse) or bfs (dense)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "queries.graph", "output file")
	fs.Parse(args)

	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	db, err := sq.ReadDatabase(f)
	f.Close()
	if err != nil {
		return err
	}
	m := sq.QueryRandomWalk
	if *method == "bfs" {
		m = sq.QueryBFS
	} else if *method != "walk" {
		return fmt.Errorf("unknown method %q (want walk or bfs)", *method)
	}
	qs, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: *count, Edges: *edges, Method: m, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := writeDB(*out, sq.NewDatabase(qs)); err != nil {
		return err
	}
	st := sq.ComputeQuerySetStats(qs)
	fmt.Printf("wrote %d queries to %s: %.1f vertices, degree %.2f, %.0f%% trees\n",
		len(qs), *out, st.VerticesPerQuery, st.DegreePerQuery, 100*st.TreeFraction)
	return nil
}

func stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dbPath := fs.String("db", "db.graph", "database file")
	fs.Parse(args)

	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	db, err := sq.ReadDatabase(f)
	f.Close()
	if err != nil {
		return err
	}
	s := db.ComputeStats()
	fmt.Printf("#graphs              %d\n", s.NumGraphs)
	fmt.Printf("#labels              %d\n", s.NumLabels)
	fmt.Printf("#vertices per graph  %.2f\n", s.VerticesPerGraph)
	fmt.Printf("#edges per graph     %.2f\n", s.EdgesPerGraph)
	fmt.Printf("degree per graph     %.2f\n", s.DegreePerGraph)
	fmt.Printf("#labels per graph    %.2f\n", s.LabelsPerGraph)
	return nil
}
