package main

import (
	"os"
	"path/filepath"
	"testing"

	sq "subgraphquery"
)

func TestSyntheticQueriesStatsPipeline(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.graph")
	qPath := filepath.Join(dir, "q.graph")

	if err := synthetic([]string{
		"-graphs", "12", "-vertices", "20", "-labels", "4", "-degree", "4",
		"-seed", "3", "-o", dbPath,
	}); err != nil {
		t.Fatalf("synthetic: %v", err)
	}
	f, err := os.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := sq.ReadDatabase(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 12 {
		t.Fatalf("generated %d graphs, want 12", db.Len())
	}

	if err := queries([]string{
		"-db", dbPath, "-count", "5", "-edges", "4", "-method", "bfs",
		"-seed", "2", "-o", qPath,
	}); err != nil {
		t.Fatalf("queries: %v", err)
	}
	qf, err := os.Open(qPath)
	if err != nil {
		t.Fatal(err)
	}
	qdb, err := sq.ReadDatabase(qf)
	qf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if qdb.Len() != 5 {
		t.Fatalf("generated %d queries, want 5", qdb.Len())
	}
	for i := 0; i < qdb.Len(); i++ {
		if qdb.Graph(i).NumEdges() != 4 {
			t.Errorf("query %d has %d edges, want 4", i, qdb.Graph(i).NumEdges())
		}
	}

	if err := stats([]string{"-db", dbPath}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestRealSubcommand(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "aids.graph")
	if err := real([]string{"-dataset", "AIDS", "-scale", "0.002", "-seed", "1", "-o", out}); err != nil {
		t.Fatalf("real: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	db, err := sq.ReadDatabase(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("real dataset is empty")
	}
}

func TestQueriesBadMethod(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.graph")
	if err := synthetic([]string{"-graphs", "2", "-vertices", "10", "-labels", "2", "-degree", "3", "-o", dbPath}); err != nil {
		t.Fatal(err)
	}
	err := queries([]string{"-db", dbPath, "-count", "1", "-edges", "2", "-method", "zigzag", "-o", filepath.Join(dir, "q.graph")})
	if err == nil {
		t.Error("unknown method should fail")
	}
}

func TestStatsMissingFile(t *testing.T) {
	if err := stats([]string{"-db", "/nonexistent/file.graph"}); err == nil {
		t.Error("missing file should fail")
	}
}
