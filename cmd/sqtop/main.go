// sqtop renders a workload profile: the top query shapes by fingerprint
// with counts, latency quantiles (p50/p99) and failure tallies. It reads
// either source of workload telemetry:
//
//   - a live sqserver: pass the /debug/top URL and sqtop fetches the
//     server's heavy-hitter sketch;
//   - a wide-event export: pass the NDJSON file written by
//     sqserver -export (or "-" for stdin) and sqtop folds the events into
//     its own sketch. Note the export stream is tail-sampled — anomalous
//     queries are complete, healthy queries are a -export-sample fraction
//     — so counts from an export skew toward trouble, which is the point.
//
// Usage:
//
//	sqtop http://localhost:8080/debug/top
//	sqtop -k 10 events.ndjson
//	sqtop -json events.ndjson | jq .top[0]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"subgraphquery/internal/telemetry"
)

func main() {
	opts := runOptions{}
	flag.IntVar(&opts.TopK, "k", 20, "number of shapes to show")
	flag.IntVar(&opts.Capacity, "capacity", 0,
		"sketch capacity when folding an event stream (0 = default)")
	flag.BoolVar(&opts.JSON, "json", false, "emit the profile snapshot as JSON instead of a table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sqtop [-k N] [-json] <debug-top-url | events.ndjson | ->")
		os.Exit(2)
	}
	opts.Source = flag.Arg(0)
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "sqtop:", err)
		os.Exit(1)
	}
}

// runOptions carries one sqtop invocation; the flag set in main populates
// it, tests construct it directly.
type runOptions struct {
	Source   string // /debug/top URL, NDJSON path, or "-" for stdin
	TopK     int
	Capacity int
	JSON     bool

	// Out receives the report; nil selects os.Stdout. In receives stdin
	// when Source is "-"; nil selects os.Stdin.
	Out io.Writer
	In  io.Reader
}

func run(opts runOptions) error {
	out := opts.Out
	if out == nil {
		out = os.Stdout
	}
	var snap telemetry.ProfileSnapshot
	var err error
	switch {
	case strings.HasPrefix(opts.Source, "http://"), strings.HasPrefix(opts.Source, "https://"):
		snap, err = fetchTop(opts.Source, opts.TopK)
	default:
		snap, err = foldEvents(opts)
	}
	if err != nil {
		return err
	}
	if opts.TopK > 0 && len(snap.Top) > opts.TopK {
		snap.Top = snap.Top[:opts.TopK]
	}
	if opts.JSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	return telemetry.WriteTop(out, snap)
}

// fetchTop pulls the server's own sketch from /debug/top, asking for k
// rows so a large -k is not silently capped by the server default.
func fetchTop(rawURL string, k int) (telemetry.ProfileSnapshot, error) {
	var snap telemetry.ProfileSnapshot
	u, err := url.Parse(rawURL)
	if err != nil {
		return snap, err
	}
	if k > 0 {
		q := u.Query()
		q.Set("k", strconv.Itoa(k))
		u.RawQuery = q.Encode()
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(u.String())
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return snap, fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("decoding %s: %w", u, err)
	}
	return snap, nil
}

// foldEvents replays an NDJSON wide-event stream into a fresh sketch.
func foldEvents(opts runOptions) (telemetry.ProfileSnapshot, error) {
	var r io.Reader
	switch {
	case opts.Source == "-":
		r = opts.In
		if r == nil {
			r = os.Stdin
		}
	default:
		f, err := os.Open(opts.Source)
		if err != nil {
			return telemetry.ProfileSnapshot{}, err
		}
		defer f.Close()
		r = f
	}
	prof := telemetry.NewProfile(opts.Capacity)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := strings.TrimSpace(sc.Text())
		if b == "" {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(b), &ev); err != nil {
			return telemetry.ProfileSnapshot{}, fmt.Errorf("%s:%d: %w", opts.Source, line, err)
		}
		prof.Record(ev)
	}
	if err := sc.Err(); err != nil {
		return telemetry.ProfileSnapshot{}, err
	}
	return prof.Snapshot(0), nil
}
