package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subgraphquery/internal/telemetry"
)

// writeNDJSON writes events one-per-line and returns the file path.
func writeNDJSON(t *testing.T, events []telemetry.Event) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "events.ndjson")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleEvents() []telemetry.Event {
	hot := telemetry.Fingerprint(0xabc123)
	cold := telemetry.Fingerprint(0xdef456)
	var evs []telemetry.Event
	for i := 0; i < 9; i++ {
		evs = append(evs, telemetry.Event{
			Fingerprint: hot, QueryVertices: 8, QueryEdges: 10,
			Verdict: telemetry.VerdictOK, DurationUS: 1500, Answers: 3,
		})
	}
	evs = append(evs, telemetry.Event{
		Fingerprint: hot, QueryVertices: 8, QueryEdges: 10,
		Verdict: telemetry.VerdictOK, DurationUS: 90000, TimedOut: true,
	})
	evs = append(evs, telemetry.Event{
		Fingerprint: cold, QueryVertices: 4, QueryEdges: 3,
		Verdict: telemetry.VerdictShed,
	})
	return evs
}

func TestSqtopFoldsEventFile(t *testing.T) {
	path := writeNDJSON(t, sampleEvents())
	var out bytes.Buffer
	if err := run(runOptions{Source: path, TopK: 20, Out: &out}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "workload profile: 2 shapes tracked") {
		t.Errorf("missing profile header:\n%s", text)
	}
	if !strings.Contains(text, telemetry.Fingerprint(0xabc123).String()) {
		t.Errorf("hot fingerprint missing:\n%s", text)
	}
	if !strings.Contains(text, "8v/10e") {
		t.Errorf("shape column missing:\n%s", text)
	}
	// The hot shape (10 events) must rank above the cold one (1 shed).
	hotIdx := strings.Index(text, telemetry.Fingerprint(0xabc123).String())
	coldIdx := strings.Index(text, telemetry.Fingerprint(0xdef456).String())
	if coldIdx < 0 || hotIdx < 0 || hotIdx > coldIdx {
		t.Errorf("expected hot shape ranked first (hot@%d cold@%d):\n%s", hotIdx, coldIdx, text)
	}
}

func TestSqtopJSONOutput(t *testing.T) {
	path := writeNDJSON(t, sampleEvents())
	var out bytes.Buffer
	if err := run(runOptions{Source: path, TopK: 1, JSON: true, Out: &out}); err != nil {
		t.Fatal(err)
	}
	var snap telemetry.ProfileSnapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("output is not a ProfileSnapshot: %v\n%s", err, out.String())
	}
	if snap.Seen != 11 || snap.Tracked != 2 {
		t.Errorf("seen=%d tracked=%d, want 11/2", snap.Seen, snap.Tracked)
	}
	if len(snap.Top) != 1 {
		t.Fatalf("TopK=1 not applied: %d rows", len(snap.Top))
	}
	if snap.Top[0].Count != 10 || snap.Top[0].Timeouts != 1 {
		t.Errorf("top row = %+v, want count 10 with 1 timeout", snap.Top[0])
	}
}

func TestSqtopStdin(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range sampleEvents() {
		enc.Encode(ev)
	}
	var out bytes.Buffer
	if err := run(runOptions{Source: "-", TopK: 20, In: &buf, Out: &out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 shapes tracked") {
		t.Errorf("stdin fold failed:\n%s", out.String())
	}
}

func TestSqtopFetchesDebugTop(t *testing.T) {
	prof := telemetry.NewProfile(0)
	for _, ev := range sampleEvents() {
		prof.Record(ev)
	}
	var gotK string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotK = r.URL.Query().Get("k")
		json.NewEncoder(w).Encode(prof.Snapshot(0))
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run(runOptions{Source: ts.URL + "/debug/top", TopK: 7, Out: &out}); err != nil {
		t.Fatal(err)
	}
	if gotK != "7" {
		t.Errorf("server asked for k=%q, want 7", gotK)
	}
	if !strings.Contains(out.String(), "2 shapes tracked") {
		t.Errorf("fetched profile not rendered:\n%s", out.String())
	}
}

func TestSqtopServerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	err := run(runOptions{Source: ts.URL, Out: &bytes.Buffer{}})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected server error surfaced, got %v", err)
	}
}

func TestSqtopMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ndjson")
	if err := os.WriteFile(path, []byte("{\"fingerprint\":\"1\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(runOptions{Source: path, Out: &bytes.Buffer{}})
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("expected line-numbered parse error, got %v", err)
	}
}
