package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subgraphquery/internal/bench"
)

func writeDiffReport(t *testing.T, dir, name string, p50 map[string]map[string]int64) {
	t.Helper()
	r := bench.BenchReport{
		Schema:    bench.BenchSchema,
		Dataset:   strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"),
		QuerySets: map[string]map[string]bench.SetMetricsJSON{},
	}
	for set, engines := range p50 {
		out := map[string]bench.SetMetricsJSON{}
		for en, v := range engines {
			out[en] = bench.SetMetricsJSON{P50US: v}
		}
		r.QuerySets[set] = out
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunDiffGate: directory mode passes when every cell is within the
// threshold and fails (with a REGRESSION line) when one is not.
func TestRunDiffGate(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeDiffReport(t, baseDir, "BENCH_AIDS.json", map[string]map[string]int64{
		"Q8S": {"CFQL": 10000, "Grapes": 20000},
	})
	writeDiffReport(t, curDir, "BENCH_AIDS.json", map[string]map[string]int64{
		"Q8S": {"CFQL": 10500, "Grapes": 19000},
	})

	var out bytes.Buffer
	if err := runDiff([]string{"-base", baseDir, "-cur", curDir}, &out); err != nil {
		t.Fatalf("clean diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 cells compared, 0 regression(s)") {
		t.Fatalf("summary missing: %s", out.String())
	}

	writeDiffReport(t, curDir, "BENCH_AIDS.json", map[string]map[string]int64{
		"Q8S": {"CFQL": 13000, "Grapes": 19000},
	})
	out.Reset()
	err := runDiff([]string{"-base", baseDir, "-cur", curDir}, &out)
	if err == nil {
		t.Fatalf("regressed diff passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION AIDS/Q8S/CFQL") {
		t.Fatalf("regression line missing: %s", out.String())
	}

	// A looser threshold lets the same pair through.
	out.Reset()
	if err := runDiff([]string{"-base", baseDir, "-cur", curDir, "-threshold", "0.5"}, &out); err != nil {
		t.Fatalf("loose threshold still failed: %v", err)
	}
}

// TestRunDiffMissingCounterpart: a baseline report with no current
// counterpart must fail loudly, not silently shrink coverage.
func TestRunDiffMissingCounterpart(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeDiffReport(t, baseDir, "BENCH_AIDS.json", map[string]map[string]int64{
		"Q8S": {"CFQL": 10000},
	})
	var out bytes.Buffer
	if err := runDiff([]string{"-base", baseDir, "-cur", curDir}, &out); err == nil {
		t.Fatal("missing counterpart not reported")
	}
}
