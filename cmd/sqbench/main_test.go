package main

import (
	"io"
	"testing"
	"time"

	"subgraphquery/internal/bench"
)

func TestRunRejectsUnknownSubcommand(t *testing.T) {
	cfg := bench.Config{Out: io.Discard}
	if err := run("bogus", cfg, ""); err == nil {
		t.Error("unknown subcommand should fail")
	}
}

// TestRunSingleTableSmoke executes one cheap real-study rendering end to
// end at miniature scale.
func TestRunSingleTableSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real-dataset study")
	}
	cfg := bench.Config{
		Scale:       0.002,
		QueryCount:  2,
		Seed:        3,
		IndexBudget: time.Second,
		QueryBudget: 250 * time.Millisecond,
		Workers:     2,
		Out:         io.Discard,
	}
	if err := run("tableVI", cfg, ""); err != nil {
		t.Fatalf("tableVI: %v", err)
	}
}
