package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"subgraphquery/internal/bench"
)

// runDiff implements `sqbench diff`: the bench-regression gate. It compares
// the per-engine, per-query-set p50 query latency between a baseline and a
// current set of BENCH_<dataset>.json reports and exits non-zero when any
// cell regressed past the threshold. -base and -cur each accept a single
// report file or a directory of BENCH_*.json files (paired by file name).
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	basePath := fs.String("base", "", "baseline report file or directory of BENCH_*.json")
	curPath := fs.String("cur", "", "current report file or directory of BENCH_*.json")
	threshold := fs.Float64("threshold", bench.DefaultDiffThreshold, "relative p50 slowdown that fails the gate (0.15 = +15%)")
	floor := fs.Int64("floor", bench.DefaultDiffFloorUS, "noise floor in µs; cells below it in both reports are skipped")
	requireSets := fs.String("require-sets", "", "comma-separated query-set names every current report must contain (tracks can't silently vanish)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sqbench diff -base <file|dir> -cur <file|dir> [-threshold 0.15] [-floor 500] [-require-sets Q4I,Q8I]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *curPath == "" {
		fs.Usage()
		return fmt.Errorf("diff: both -base and -cur are required")
	}

	pairs, err := pairReports(*basePath, *curPath)
	if err != nil {
		return err
	}

	var regressions int
	for _, p := range pairs {
		base, err := bench.ReadReport(p.base)
		if err != nil {
			return err
		}
		cur, err := bench.ReadReport(p.cur)
		if err != nil {
			return err
		}
		if err := checkRequiredSets(cur, *requireSets); err != nil {
			return err
		}
		deltas, missing, err := bench.DiffReports(base, cur, *floor)
		if err != nil {
			return err
		}
		for _, m := range missing {
			fmt.Fprintf(out, "note: %s\n", m)
		}
		regs := bench.Regressions(deltas, *threshold)
		regressions += len(regs)
		for _, d := range regs {
			fmt.Fprintf(out, "REGRESSION %s/%s/%s: p50 %dµs -> %dµs (%+.1f%%)\n",
				d.Dataset, d.QuerySet, d.Engine, d.BaseP50US, d.CurP50US, (d.Ratio-1)*100)
		}
		// One summary line per dataset so a clean run still shows coverage.
		best := 0.0
		for _, d := range deltas {
			if d.Ratio < 1 && 1-d.Ratio > best {
				best = 1 - d.Ratio
			}
		}
		fmt.Fprintf(out, "%s: %d cells compared, %d regression(s), best improvement %.1f%%\n",
			base.Dataset, len(deltas), len(regs), best*100)
	}
	if regressions > 0 {
		return fmt.Errorf("diff: %d cell(s) regressed beyond +%.0f%%", regressions, *threshold*100)
	}
	return nil
}

// checkRequiredSets fails when a current report is missing one of the
// comma-separated query sets — the guard that keeps a measured track (the
// dense Q*I sets in CI) from silently disappearing from the gate.
func checkRequiredSets(cur bench.BenchReport, required string) error {
	if required == "" {
		return nil
	}
	for _, name := range strings.Split(required, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := cur.QuerySets[name]; !ok {
			return fmt.Errorf("diff: required query set %s missing from current report for %s", name, cur.Dataset)
		}
	}
	return nil
}

type reportPair struct{ base, cur string }

// pairReports resolves -base/-cur into file pairs. Two files pair directly;
// two directories pair their BENCH_*.json members by file name, requiring
// every baseline report to have a current counterpart (the reverse —
// current reports without a baseline, e.g. a new dataset — is allowed).
func pairReports(basePath, curPath string) ([]reportPair, error) {
	bi, err := os.Stat(basePath)
	if err != nil {
		return nil, err
	}
	ci, err := os.Stat(curPath)
	if err != nil {
		return nil, err
	}
	if bi.IsDir() != ci.IsDir() {
		return nil, fmt.Errorf("diff: -base and -cur must both be files or both be directories")
	}
	if !bi.IsDir() {
		return []reportPair{{basePath, curPath}}, nil
	}
	baseFiles, err := filepath.Glob(filepath.Join(basePath, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(baseFiles) == 0 {
		return nil, fmt.Errorf("diff: no BENCH_*.json files in %s", basePath)
	}
	sort.Strings(baseFiles)
	var pairs []reportPair
	for _, bf := range baseFiles {
		if filepath.Base(bf) == "BENCH_synthetic.json" {
			// The synthetic sweep report has a different shape (sweep cells,
			// not query sets); the p50 gate covers the real-dataset reports.
			continue
		}
		cf := filepath.Join(curPath, filepath.Base(bf))
		if _, err := os.Stat(cf); err != nil {
			return nil, fmt.Errorf("diff: baseline %s has no counterpart in %s", filepath.Base(bf), curPath)
		}
		pairs = append(pairs, reportPair{bf, cf})
	}
	return pairs, nil
}
