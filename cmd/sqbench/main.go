// sqbench regenerates the paper's tables and figures. Each subcommand runs
// the corresponding experiment of §IV and prints rows in the paper's
// layout; `all` runs everything.
//
// Usage:
//
//	sqbench tableV|tableVI|tableVII|tableVIII|tableIX \
//	        fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9 \
//	        | real | synthetic | cluster | all
//	        [-scale 0.02] [-queries 10] [-seed 1]
//	        [-index-budget 60s] [-query-budget 5s] [-workers 6]
//	        [-json-dir .]
//
// The real and synthetic studies also emit machine-readable
// BENCH_<dataset>.json reports (per-engine, per-query-set metrics with
// p50/p90/p99 query latency) into -json-dir; pass -json-dir "" to
// disable.
//
// Scale 1 with large budgets approaches the paper's full configuration;
// the defaults finish on a laptop in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"subgraphquery/internal/bench"
	"subgraphquery/internal/cluster"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]

	if cmd == "diff" {
		// The regression gate takes its own flags (-base/-cur/-threshold)
		// and runs no study; handle it before the study flag set.
		if err := runDiff(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sqbench:", err)
			os.Exit(1)
		}
		return
	}

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 0.02, "dataset scale in (0,1]")
	queries := fs.Int("queries", 10, "queries per query set (paper: 100)")
	seed := fs.Int64("seed", 1, "random seed")
	indexBudget := fs.Duration("index-budget", 60*time.Second, "per-index build budget (paper: 24h)")
	queryBudget := fs.Duration("query-budget", 5*time.Second, "per-query budget (paper: 10m)")
	workers := fs.Int("workers", 6, "workers for the Grapes engines")
	jsonDir := fs.String("json-dir", ".", "directory for machine-readable BENCH_<dataset>.json output (empty disables)")
	clusterEngine := fs.String("cluster-engine", "CFQL", "per-shard engine for the cluster track")
	clusterShards := fs.String("cluster-shards", "1,2,4,8", "comma-separated shard counts for the cluster track")
	clusterReplicas := fs.Int("cluster-replicas", 1, "replicas per shard for the cluster track")
	clusterStrategy := fs.String("cluster-strategy", "hash", "partitioning strategy for the cluster track: hash or size")
	fs.Parse(os.Args[2:])

	cfg := bench.Config{
		Scale:       *scale,
		QueryCount:  *queries,
		Seed:        *seed,
		IndexBudget: *indexBudget,
		QueryBudget: *queryBudget,
		Workers:     *workers,
		Out:         os.Stdout,
	}

	if cmd == "cluster" {
		if err := runCluster(cfg, *clusterEngine, *clusterShards, *clusterReplicas, *clusterStrategy); err != nil {
			fmt.Fprintln(os.Stderr, "sqbench:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(cmd, cfg, *jsonDir); err != nil {
		fmt.Fprintln(os.Stderr, "sqbench:", err)
		os.Exit(1)
	}
}

// runCluster executes the per-shard-count scatter-gather track.
func runCluster(cfg bench.Config, engine, shards string, replicas int, strategy string) error {
	var counts []int
	for _, part := range strings.Split(shards, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return fmt.Errorf("bad -cluster-shards entry %q: want positive integers", part)
		}
		counts = append(counts, n)
	}
	study := bench.ClusterStudyConfig{
		Engine:      engine,
		ShardCounts: counts,
		Replicas:    replicas,
		Strategy:    cluster.Strategy(strategy),
	}
	fmt.Fprintf(os.Stderr, "running cluster study (scale %.3f, %d queries/set, shards %s)...\n",
		cfg.Scale, cfg.QueryCount, shards)
	rows, err := bench.RunCluster(cfg, study)
	if err != nil {
		return err
	}
	out := cfg
	out.Out = os.Stdout
	bench.RenderCluster(out, study, rows)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `sqbench regenerates the paper's experiments.

real-dataset experiments (one shared run):
  tableV     query set statistics
  tableVI    indexing time
  tableVII   memory cost
  fig2       filtering precision      fig3  filtering time
  fig4       verification time        fig5  per SI test time
  fig6       candidate graph counts   fig7  query time
  real       all of the above

synthetic experiments (one shared run):
  tableVIII  indexing time            tableIX  memory cost
  fig8       filtering precision      fig9     filtering time
  synthetic  all of the above

  shapes     mechanical pass/fail checklist of the paper's claims
  extensions every engine (incl. Table II reproductions) on one workload
  cluster    scatter-gather tier at increasing shard counts
             (-cluster-engine CFQL -cluster-shards 1,2,4,8
              -cluster-replicas 1 -cluster-strategy hash|size)
  all        everything

  diff       bench-regression gate: compare p50 latency between two sets
             of BENCH_*.json reports
             (-base <file|dir> -cur <file|dir> [-threshold 0.15] [-floor 500])`)
}

// run executes one subcommand. jsonDir, when non-empty, receives
// machine-readable BENCH_<dataset>.json reports for the real and
// synthetic studies.
func run(cmd string, cfg bench.Config, jsonDir string) error {
	needReal := map[string]bool{
		"tableV": true, "tableVI": true, "tableVII": true,
		"fig2": true, "fig3": true, "fig4": true, "fig5": true,
		"fig6": true, "fig7": true, "real": true, "all": true,
	}
	needSynth := map[string]bool{
		"tableVIII": true, "tableIX": true, "fig8": true, "fig9": true,
		"synthetic": true, "all": true, "shapes": true,
	}
	needReal["shapes"] = true
	if cmd == "extensions" {
		fmt.Fprintf(os.Stderr, "running extensions study (scale %.3f, %d queries/set)...\n",
			cfg.Scale, cfg.QueryCount)
		rows, err := bench.RunExtensions(cfg)
		if err != nil {
			return err
		}
		out := cfg
		out.Out = os.Stdout
		bench.RenderExtensions(out, rows)
		return nil
	}
	if !needReal[cmd] && !needSynth[cmd] {
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	// Create the report directory before the (long) study runs, so a bad
	// -json-dir fails in milliseconds, not after minutes of benchmarking.
	if jsonDir != "" {
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			return fmt.Errorf("creating -json-dir: %w", err)
		}
	}

	if needReal[cmd] {
		fmt.Fprintf(os.Stderr, "running real-dataset study (scale %.3f, %d queries/set)...\n",
			cfg.Scale, cfg.QueryCount)
		ev, err := bench.RunReal(cfg)
		if err != nil {
			return err
		}
		if jsonDir != "" {
			paths, err := bench.WriteRealJSON(jsonDir, ev)
			if err != nil {
				return fmt.Errorf("writing bench JSON: %w", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %v\n", paths)
		}
		switch cmd {
		case "shapes":
			bench.RenderShapeReport(os.Stdout, "Real-dataset shape checks (paper claims):", ev.CheckShapes())
		case "tableV":
			ev.RenderTableV()
		case "tableVI":
			ev.RenderTableVI()
		case "tableVII":
			ev.RenderTableVII()
		case "fig2":
			ev.RenderFig2()
		case "fig3":
			ev.RenderFig3()
		case "fig4":
			ev.RenderFig4()
		case "fig5":
			ev.RenderFig5()
		case "fig6":
			ev.RenderFig6()
		case "fig7":
			ev.RenderFig7()
		default: // real, all
			ev.RenderTableV()
			fmt.Println()
			ev.RenderTableVI()
			fmt.Println()
			ev.RenderFig2()
			fmt.Println()
			ev.RenderFig3()
			fmt.Println()
			ev.RenderFig4()
			fmt.Println()
			ev.RenderFig5()
			fmt.Println()
			ev.RenderFig6()
			fmt.Println()
			ev.RenderFig7()
			fmt.Println()
			ev.RenderTableVII()
			fmt.Println()
			bench.RenderShapeReport(os.Stdout, "Real-dataset shape checks (paper claims):", ev.CheckShapes())
		}
	}

	if needSynth[cmd] {
		if cmd == "all" {
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "running synthetic study (scale %.3f, %d queries/set)...\n",
			cfg.Scale, cfg.QueryCount)
		ev, err := bench.RunSynthetic(cfg)
		if err != nil {
			return err
		}
		if jsonDir != "" {
			path, err := bench.WriteSyntheticJSON(jsonDir, ev)
			if err != nil {
				return fmt.Errorf("writing bench JSON: %w", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		switch cmd {
		case "shapes":
			bench.RenderShapeReport(os.Stdout, "Synthetic-study shape checks (paper claims):", ev.CheckShapes())
		case "tableVIII":
			ev.RenderTableVIII()
		case "tableIX":
			ev.RenderTableIX()
		case "fig8":
			ev.RenderFig8()
		case "fig9":
			ev.RenderFig9()
		default: // synthetic, all
			ev.RenderTableVIII()
			fmt.Println()
			ev.RenderFig8()
			fmt.Println()
			ev.RenderFig9()
			fmt.Println()
			ev.RenderTableIX()
			fmt.Println()
			bench.RenderShapeReport(os.Stdout, "Synthetic-study shape checks (paper claims):", ev.CheckShapes())
		}
	}
	return nil
}
