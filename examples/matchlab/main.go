// Matchlab: full subgraph matching (Definition II.3 — all embeddings, not
// just containment) on a single large data graph, comparing every matcher
// in the library on the same task and demonstrating the streaming callback
// and budget APIs.
//
// Run with: go run ./examples/matchlab [-vertices 2000] [-limit 100000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	sq "subgraphquery"
)

func main() {
	vertices := flag.Int("vertices", 2000, "data graph size")
	limit := flag.Uint64("limit", 100000, "stop after this many embeddings (0 = all)")
	flag.Parse()

	// One large synthetic data graph.
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 1, NumVertices: *vertices, NumLabels: 8, Degree: 8, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := db.Graph(0)
	fmt.Printf("data graph: %d vertices, %d edges, %d labels\n\n",
		g.NumVertices(), g.NumEdges(), g.DistinctLabels())

	// Query: a labeled triangle with a tail, drawn from the data graph so
	// matches exist.
	queries, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 1, Edges: 6, Method: sq.QueryBFS, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	fmt.Printf("query: %d vertices, %d edges (2-core size %d)\n\n",
		q.NumVertices(), q.NumEdges(), q.CoreSize())

	matchers := []struct {
		name string
		m    sq.Matcher
	}{
		{"Ullmann", sq.NewUllmannMatcher()},
		{"VF2", sq.NewVF2Matcher()},
		{"QuickSI", sq.NewQuickSIMatcher()},
		{"SPath", sq.NewSPathMatcher()},
		{"GraphQL", sq.NewGraphQLMatcher()},
		{"TurboIso", sq.NewTurboIsoMatcher()},
		{"CFL", sq.NewCFLMatcher()},
		{"CFQL", sq.NewCFQLMatcher()},
	}
	fmt.Printf("%-10s %14s %14s %12s\n", "matcher", "embeddings", "search steps", "time")
	for _, entry := range matchers {
		t0 := time.Now()
		res := entry.m.Run(q, g, sq.MatchOptions{
			Limit:    *limit,
			Deadline: time.Now().Add(time.Minute),
		})
		status := ""
		if res.Aborted {
			status = " (aborted)"
		}
		fmt.Printf("%-10s %14d %14d %12v%s\n",
			entry.name, res.Embeddings, res.Steps, time.Since(t0).Round(time.Microsecond), status)
	}

	// Streaming embeddings through a callback: collect the first three.
	fmt.Println("\nfirst three embeddings via OnEmbedding callback:")
	count := 0
	sq.NewCFQLMatcher().Run(q, g, sq.MatchOptions{
		OnEmbedding: func(mapping []sq.VertexID) bool {
			fmt.Printf("  φ%d = %v\n", count, append([]sq.VertexID(nil), mapping...))
			count++
			return count < 3
		},
	})
}
