// Streaming: the index-maintenance problem that motivates index-free
// subgraph querying (paper §I: "whenever D is modified, I must be updated
// correspondingly ... IFV algorithms are hardly applicable to graphs that
// change frequently, such as networks of purchasing records").
//
// The example simulates a stream of new data graphs arriving in batches
// and answers a standing query after every batch with three maintenance
// strategies:
//
//	grapes-rebuild      Grapes, index rebuilt from scratch per batch
//	grapes-incremental  Grapes, new graphs inserted into the live trie
//	cfql                index-free: no maintenance at all
//
// All three must agree on every answer set; the cumulative maintenance
// columns show what each strategy pays for correctness under updates.
//
// Run with: go run ./examples/streaming [-batches 5] [-batchsize 200]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	sq "subgraphquery"
)

func main() {
	batches := flag.Int("batches", 5, "number of update batches")
	batchSize := flag.Int("batchsize", 200, "graphs per batch")
	flag.Parse()

	// Standing query: a benzene-ring-like pattern (6-cycle, alternating
	// labels).
	q, err := sq.FromEdges(
		[]sq.Label{0, 1, 0, 1, 0, 1},
		[]sq.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0}},
	)
	if err != nil {
		log.Fatal(err)
	}

	gen := func(n int, seed int64) []*sq.Graph {
		db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
			NumGraphs: n, NumVertices: 60, NumLabels: 4, Degree: 5, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return db.Graphs()
	}
	initial := gen(500, 21)

	// Three engines over three private database copies: Append mutates.
	rebuild := sq.NewGrapesEngine()
	rebuildDB := sq.NewDatabase(append([]*sq.Graph(nil), initial...))
	incremental := sq.NewGrapesEngine()
	incrementalDB := sq.NewDatabase(append([]*sq.Graph(nil), initial...))
	cfql := sq.NewCFQLEngine()
	cfqlDB := sq.NewDatabase(append([]*sq.Graph(nil), initial...))

	var rebuildCost, incCost, cfqlCost time.Duration
	build := func(e sq.Engine, db *sq.Database) time.Duration {
		t0 := time.Now()
		if err := e.Build(db, sq.BuildOptions{Workers: 6}); err != nil {
			log.Fatal(err)
		}
		return time.Since(t0)
	}
	rebuildCost += build(rebuild, rebuildDB)
	incCost += build(incremental, incrementalDB)
	cfqlCost += build(cfql, cfqlDB)

	inc, ok := incremental.(sq.Updatable)
	if !ok {
		log.Fatal("grapes engine should support incremental appends")
	}

	r := rand.New(rand.NewSource(99))
	fmt.Printf("%-6s %8s %16s %16s %12s   %s\n",
		"batch", "|D|", "rebuild maint", "incr maint", "cfql maint", "answers")
	for b := 0; b <= *batches; b++ {
		if b > 0 {
			batch := gen(*batchSize, r.Int63())
			// Strategy 1: append then rebuild from scratch.
			for _, g := range batch {
				rebuildDB.Append(g)
			}
			rebuildCost += build(rebuild, rebuildDB)
			// Strategy 2: incremental insertion into the live index.
			t0 := time.Now()
			for _, g := range batch {
				if _, err := inc.AppendGraph(g); err != nil {
					log.Fatal(err)
				}
			}
			incCost += time.Since(t0)
			// Strategy 3: index-free — nothing to maintain.
			t1 := time.Now()
			for _, g := range batch {
				cfqlDB.Append(g)
			}
			cfqlCost += time.Since(t1)
		}
		a1 := rebuild.Query(q, sq.QueryOptions{})
		a2 := incremental.Query(q, sq.QueryOptions{})
		a3 := cfql.Query(q, sq.QueryOptions{})
		if len(a1.Answers) != len(a2.Answers) || len(a2.Answers) != len(a3.Answers) {
			log.Fatalf("strategies disagree: %d / %d / %d answers",
				len(a1.Answers), len(a2.Answers), len(a3.Answers))
		}
		fmt.Printf("%-6d %8d %16v %16v %12v   %d\n",
			b, cfqlDB.Len(), rebuildCost.Round(time.Millisecond),
			incCost.Round(time.Millisecond), cfqlCost.Round(time.Millisecond),
			len(a3.Answers))
	}
	fmt.Println("\nmaint = cumulative index maintenance (initial build + updates).")
	fmt.Println("incremental insertion amortizes the trie build; the index-free engine")
	fmt.Println("pays nothing at all — its auxiliary structures are per-query.")
}
