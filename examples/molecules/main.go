// Molecules: subgraph search over an AIDS-like molecule database,
// reproducing the paper's headline comparison on its primary dataset —
// the index-based Grapes engine versus the index-free CFQL engine.
//
// The example (1) generates a simulated AIDS dataset (sparse molecule-like
// graphs, 62 element labels), (2) times Grapes' index construction, which
// CFQL skips entirely, and (3) runs sparse and dense query workloads on
// both engines, printing the per-phase breakdown the paper reports.
//
// Run with: go run ./examples/molecules [-graphs 2000] [-queries 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	sq "subgraphquery"
)

func main() {
	graphs := flag.Int("graphs", 2000, "number of molecule graphs (paper: 40000)")
	queries := flag.Int("queries", 20, "queries per workload (paper: 100)")
	flag.Parse()

	scale := float64(*graphs) / 40000
	fmt.Printf("generating AIDS-like database (%d graphs)...\n", *graphs)
	db, err := sq.GenerateReal(sq.AIDS, scale, 1)
	if err != nil {
		log.Fatal(err)
	}
	stats := db.ComputeStats()
	fmt.Printf("database: %d graphs, %.0f vertices/graph, degree %.2f, %d labels\n\n",
		stats.NumGraphs, stats.VerticesPerGraph, stats.DegreePerGraph, stats.NumLabels)

	grapes := sq.NewGrapesEngine()
	cfql := sq.NewCFQLEngine()

	t0 := time.Now()
	if err := grapes.Build(db, sq.BuildOptions{Workers: 6}); err != nil {
		log.Fatalf("grapes index: %v", err)
	}
	fmt.Printf("Grapes index build: %v (%.1f MB)\n", time.Since(t0).Round(time.Millisecond),
		float64(grapes.IndexMemory())/(1<<20))
	if err := cfql.Build(db, sq.BuildOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CFQL   index build: none (index-free)\n\n")

	for _, method := range []sq.QueryMethod{sq.QueryRandomWalk, sq.QueryBFS} {
		for _, edges := range []int{8, 16} {
			cfg := sq.QuerySetConfig{Count: *queries, Edges: edges, Method: method, Seed: 7}
			qs, err := sq.GenerateQuerySet(db, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("workload %s (%d queries):\n", cfg.Name(), len(qs))
			for _, eng := range []sq.Engine{grapes, cfql} {
				var filter, verify time.Duration
				var cands, answers int
				for _, q := range qs {
					res := eng.Query(q, sq.QueryOptions{})
					filter += res.FilterTime
					verify += res.VerifyTime
					cands += res.Candidates
					answers += len(res.Answers)
				}
				n := time.Duration(len(qs))
				fmt.Printf("  %-8s filter %10v  verify %10v  |C(q)| %7.1f  |A(q)| %7.1f\n",
					eng.Name(), (filter / n).Round(time.Microsecond), (verify / n).Round(time.Microsecond),
					float64(cands)/float64(len(qs)), float64(answers)/float64(len(qs)))
			}
			fmt.Println()
		}
	}
	fmt.Println("note: with a fast verifier, filtering dominates on molecule data —")
	fmt.Println("the paper's §IV-D observation that slow VF2 verification overstated")
	fmt.Println("the value of index-based filtering.")
}
