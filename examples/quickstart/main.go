// Quickstart: build a tiny graph database, run a subgraph query with the
// index-free CFQL engine, and enumerate the embeddings inside one match.
//
// The example database holds three small molecules over labels
// {0: C, 1: O, 2: N}; the query is an O-C-N path.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sq "subgraphquery"
)

func main() {
	// Three data graphs: a triangle C-O-N, a branched chain O-C(-N-C), and
	// a star with no nitrogen.
	g0, err := sq.FromEdges(
		[]sq.Label{0, 1, 2}, // C, O, N
		[]sq.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}},
	)
	if err != nil {
		log.Fatal(err)
	}
	g1, err := sq.FromEdges(
		[]sq.Label{0, 1, 2, 0}, // C, O, N, C
		[]sq.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 2, V: 3}},
	)
	if err != nil {
		log.Fatal(err)
	}
	g2, err := sq.FromEdges(
		[]sq.Label{0, 1, 1, 1}, // C with three O's
		[]sq.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}},
	)
	if err != nil {
		log.Fatal(err)
	}
	db := sq.NewDatabase([]*sq.Graph{g0, g1, g2})

	// Query: O-C-N path... the O and N both attached to a C.
	q, err := sq.FromEdges(
		[]sq.Label{1, 0, 2}, // O, C, N
		[]sq.Edge{{U: 0, V: 1}, {U: 1, V: 2}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// The CFQL engine needs no index: Build only registers the database.
	engine := sq.NewCFQLEngine()
	if err := engine.Build(db, sq.BuildOptions{}); err != nil {
		log.Fatal(err)
	}

	res := engine.Query(q, sq.QueryOptions{})
	fmt.Printf("query contained in data graphs: %v\n", res.Answers)
	fmt.Printf("candidates after filtering:     %d of %d\n", res.Candidates, db.Len())
	fmt.Printf("filter %v + verify %v = %v\n", res.FilterTime, res.VerifyTime, res.QueryTime())

	// Full subgraph matching on one answer graph: enumerate all embeddings.
	for _, id := range res.Answers {
		fmt.Printf("graph %d: %d embeddings\n", id, sq.CountEmbeddings(q, db.Graph(id)))
	}
}
