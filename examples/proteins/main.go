// Proteins: a verification-bound workload on a PPI-like database of large
// protein-interaction networks — the paper's hardest dataset, where
// Grapes/GGSX with VF2 failed to complete large query sets and the
// efficient-matching engines won by orders of magnitude on per-SI-test
// time (Figure 5d).
//
// The example compares the naive VF2 scan, the GraphQL vcFV engine and the
// CFQL vcFV engine on the same queries and prints the per subgraph
// isomorphism test time of each.
//
// Run with: go run ./examples/proteins [-vertices 1200] [-queries 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	sq "subgraphquery"
)

func main() {
	vertices := flag.Int("vertices", 1200, "vertices per network (paper: 4942)")
	queries := flag.Int("queries", 10, "queries per workload (paper: 100)")
	budget := flag.Duration("budget", 30*time.Second, "per-query budget (paper: 10m)")
	flag.Parse()

	scale := float64(*vertices) / 4942
	fmt.Printf("generating PPI-like database (~%d vertices per graph)...\n", *vertices)
	db, err := sq.GenerateReal(sq.PPI, scale, 3)
	if err != nil {
		log.Fatal(err)
	}
	stats := db.ComputeStats()
	fmt.Printf("database: %d graphs, %.0f vertices, %.0f edges, degree %.1f\n\n",
		stats.NumGraphs, stats.VerticesPerGraph, stats.EdgesPerGraph, stats.DegreePerGraph)

	engines := []sq.Engine{sq.NewScanEngine(), sq.NewGraphQLEngine(), sq.NewCFQLEngine()}
	for _, e := range engines {
		if err := e.Build(db, sq.BuildOptions{}); err != nil {
			log.Fatal(err)
		}
	}

	qs, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: *queries, Edges: 16, Method: sq.QueryRandomWalk, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload Q16S (%d queries):\n", len(qs))
	fmt.Printf("%-10s %12s %12s %10s %10s %8s\n",
		"engine", "filter/q", "verify/q", "perSItest", "|C(q)|", "timeout")
	for _, e := range engines {
		var filter, verify, perSI time.Duration
		var cands, timeouts, withCands int
		for _, q := range qs {
			res := e.Query(q, sq.QueryOptions{Deadline: time.Now().Add(*budget)})
			filter += res.FilterTime
			verify += res.VerifyTime
			cands += res.Candidates
			if res.Candidates > 0 {
				perSI += res.VerifyTime / time.Duration(res.Candidates)
				withCands++
			}
			if res.TimedOut {
				timeouts++
			}
		}
		n := time.Duration(len(qs))
		avgPerSI := time.Duration(0)
		if withCands > 0 {
			avgPerSI = perSI / time.Duration(withCands)
		}
		fmt.Printf("%-10s %12v %12v %10v %10.1f %8d\n",
			e.Name(), (filter / n).Round(time.Microsecond), (verify / n).Round(time.Microsecond),
			avgPerSI.Round(time.Microsecond), float64(cands)/float64(len(qs)), timeouts)
	}
	fmt.Println("\nthe scan verifies every graph; the vcFV engines first prune by vertex")
	fmt.Println("connectivity, then verify only the survivors with an optimized order.")
}
