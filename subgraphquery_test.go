package subgraphquery_test

import (
	"bytes"
	"testing"

	sq "subgraphquery"
)

// paperExample builds the query and data graph of the paper's Figure 1.
func paperExample(t *testing.T) (q, g *sq.Graph) {
	t.Helper()
	q, err := sq.FromEdges(
		[]sq.Label{0, 1, 2, 1},
		[]sq.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err = sq.FromEdges(
		[]sq.Label{0, 1, 2, 1, 0},
		[]sq.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q, g
}

func TestPublicAPIEndToEnd(t *testing.T) {
	q, g := paperExample(t)
	if !sq.IsSubgraph(q, g) {
		t.Fatal("Figure 1: q should be contained in G")
	}
	if got := sq.CountEmbeddings(q, g); got != 1 {
		t.Fatalf("CountEmbeddings = %d, want 1", got)
	}

	db := sq.NewDatabase([]*sq.Graph{g, q})
	for _, mk := range []func() sq.Engine{
		sq.NewCFQLEngine, sq.NewCFLEngine, sq.NewGraphQLEngine,
		sq.NewGrapesEngine, sq.NewGGSXEngine, sq.NewCTIndexEngine,
		sq.NewVcGrapesEngine, sq.NewVcGGSXEngine, sq.NewScanEngine,
		sq.NewTurboIsoEngine, sq.NewGraphGrepEngine, sq.NewGIndexEngine,
		sq.NewTreePiEngine, sq.NewFGIndexEngine,
		func() sq.Engine { return sq.NewParallelCFQLEngine(3) },
		func() sq.Engine { return sq.NewCachedEngine(sq.NewCFQLEngine(), 8) },
	} {
		e := mk()
		if err := e.Build(db, sq.BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		res := e.Query(q, sq.QueryOptions{})
		if len(res.Answers) != 2 || !res.Contains(0) || !res.Contains(1) {
			t.Errorf("%s: answers %v, want [0 1]", e.Name(), res.Answers)
		}
	}
}

func TestPublicMatchers(t *testing.T) {
	q, g := paperExample(t)
	for _, mk := range []func() sq.Matcher{
		sq.NewVF2Matcher, sq.NewUllmannMatcher, sq.NewGraphQLMatcher,
		sq.NewCFLMatcher, sq.NewCFQLMatcher, sq.NewTurboIsoMatcher,
		sq.NewQuickSIMatcher, sq.NewSPathMatcher,
	} {
		m := mk()
		if got := m.Run(q, g, sq.MatchOptions{}); got.Embeddings != 1 {
			t.Errorf("matcher found %d embeddings, want 1", got.Embeddings)
		}
		if !m.FindFirst(q, g, sq.MatchOptions{}).Found() {
			t.Error("FindFirst should find the embedding")
		}
	}
}

func TestPublicSerialization(t *testing.T) {
	q, g := paperExample(t)
	db := sq.NewDatabase([]*sq.Graph{q, g})
	var buf bytes.Buffer
	if err := sq.WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := sq.ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Graph(1).NumVertices() != 5 {
		t.Errorf("round trip mangled the database")
	}

	buf.Reset()
	if err := sq.WriteGraph(&buf, 0, q); err != nil {
		t.Fatal(err)
	}
	q2, err := sq.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q2.NumEdges() != q.NumEdges() {
		t.Error("graph round trip mangled edges")
	}
}

func TestPublicGenerators(t *testing.T) {
	db, err := sq.GenerateSynthetic(sq.SyntheticConfig{
		NumGraphs: 12, NumVertices: 25, NumLabels: 4, Degree: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 12 {
		t.Fatalf("Len = %d", db.Len())
	}
	qs, err := sq.GenerateQuerySet(db, sq.QuerySetConfig{
		Count: 6, Edges: 4, Method: sq.QueryBFS, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := sq.ComputeQuerySetStats(qs)
	if stats.DegreePerQuery <= 0 {
		t.Error("query stats not computed")
	}

	real, err := sq.GenerateReal(sq.AIDS, 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	if real.Len() == 0 {
		t.Error("empty real dataset")
	}

	engine := sq.NewCFQLEngine()
	if err := engine.Build(db, sq.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, q := range qs {
		found += len(engine.Query(q, sq.QueryOptions{}).Answers)
	}
	if found == 0 {
		t.Error("generated queries should have answers in their source database")
	}
}

func TestPublicBuilder(t *testing.T) {
	b := sq.NewBuilder(3, 2)
	v0 := b.AddVertex(1)
	v1 := b.AddVertex(2)
	v2 := b.AddVertex(1)
	b.AddEdge(v0, v1)
	b.AddEdge(v1, v2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 || !g.HasEdge(0, 1) {
		t.Errorf("builder produced %v", g)
	}
	var stats sq.DatabaseStats = sq.NewDatabase([]*sq.Graph{g}).ComputeStats()
	if stats.NumGraphs != 1 {
		t.Errorf("stats = %+v", stats)
	}
}
