package matching

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"subgraphquery/internal/budget"
)

// TestEnumerateFlushesProgress: with Options.Progress set, the
// enumeration flushes its step count at budget-checkpoint strides, so the
// counter ends at Steps rounded down to the stride.
func TestEnumerateFlushesProgress(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	g := randomConnectedGraph(r, 200, 800, 2) // dense, few labels: many steps
	q := randomQueryFrom(r, g, 6)
	var p atomic.Uint64
	cand := CFLFilter(q, g, FilterOptions{})
	if cand.AnyEmpty() {
		t.Skip("degenerate random instance: empty candidate set")
	}
	order := GraphQLOrder(q, cand)
	res, err := Enumerate(q, g, cand, order, Options{Progress: &p})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Steps / budget.StepStride * budget.StepStride
	if p.Load() != want {
		t.Fatalf("progress = %d, want %d (steps %d rounded to stride)", p.Load(), want, res.Steps)
	}
	if res.Steps < budget.StepStride {
		t.Skipf("instance too small to cross one stride (%d steps); flush untested", res.Steps)
	}
	if p.Load() == 0 {
		t.Fatal("progress never flushed despite crossing the stride")
	}
}

// TestEnumerateProgressZeroAlloc: attaching a Progress counter must not
// add steady-state allocations to the filter+order+enumerate pipeline —
// the acceptance gate for piggybacking live progress on budget strides.
func TestEnumerateProgressZeroAlloc(t *testing.T) {
	skipIfDebugInvariants(t)
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	r := rand.New(rand.NewSource(52))
	g := randomConnectedGraph(r, 80, 140, 3)
	q := randomQueryFrom(r, g, 5)
	s := NewScratch()
	var p atomic.Uint64
	pipeline := func() {
		cand := CFLFilter(q, g, FilterOptions{Scratch: s})
		if cand.AnyEmpty() {
			return
		}
		order := GraphQLOrderScratch(q, cand, s)
		if _, err := Enumerate(q, g, cand, order, Options{Limit: 1, Scratch: s, Progress: &p}); err != nil {
			t.Fatal(err)
		}
	}
	pipeline() // warm-up
	if allocs := testing.AllocsPerRun(50, pipeline); allocs != 0 {
		t.Fatalf("pipeline with Progress allocated %v times per run, want 0", allocs)
	}
}
