package matching

import (
	"sort"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// GraphQL's preprocessing and enumeration phases (He & Singh [14]), split
// the way the paper uses them in the vcFV framework:
//
//   - GraphQLFilter is the Filter function of Algorithm 2: candidate sets
//     from neighborhood profiles, then pruning by the pseudo subgraph
//     isomorphism test of Closure-Tree [13] — a semi-perfect bipartite
//     matching between query-vertex and data-vertex neighborhoods.
//   - GraphQLOrder is the join-based ordering strategy: repeatedly pick the
//     query vertex with the fewest candidates among the neighbors of the
//     already-selected vertices.
//
// GraphQL's Verify is GraphQLOrder + Enumerate; CFQL reuses the same Verify
// on top of CFLFilter.

// DefaultRefinementRounds bounds GraphQL's pseudo-isomorphism refinement.
// The test is applied to every (u, v) candidate pair per round; additional
// rounds propagate pruning through neighbors.
const DefaultRefinementRounds = 3

// GraphQLFilter computes a complete candidate vertex set for every query
// vertex, or nil sets when some set becomes empty (the data graph then
// cannot contain q, Proposition III.1). The candidate generation and
// pruning proceed in ascending query vertex id, as the paper's
// implementation specifies. opts.Rounds = 0 selects
// DefaultRefinementRounds; negative disables the pseudo-isomorphism
// refinement entirely (the neighborhood-profile-only ablation). The pass
// aborts (Candidates.Aborted) when opts.Deadline passes. With a non-nil
// opts.Explain it records per-vertex candidate counts after the
// neighborhood-profile generation and after the refinement, the number of
// refinement rounds executed, and how many candidate vertices the
// semi-perfect bipartite matching test rejected; a nil Explain costs a few
// predictable branches and allocates nothing.
//
// With a non-nil opts.Scratch the pass runs on the arena: the returned
// Candidates is owned by the Scratch and valid until its next filter
// call, and steady-state execution allocates nothing.
//
// Space complexity O(|V(q)|·|V(G)|); time O(|V(q)|·|V(G)|·Θ(d_q, d_G)) with
// Θ the bipartite matching cost.
func GraphQLFilter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	cand := graphQLFilter(q, g, opts)
	debugCheckCandidates("GraphQLFilter", q, g, cand)
	return cand
}

func graphQLFilter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	fault.Inject(fault.PointFilter)
	ex := opts.Explain
	s := opts.Scratch
	if s == nil {
		s = NewScratch()
	}
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = DefaultRefinementRounds
	}
	if rounds < 0 {
		rounds = 0
	}
	nq := q.NumVertices()
	cand := s.candidates(nq, g.NumVertices())
	if nq == 0 {
		return cand
	}
	profs := s.profilesFor(q)

	// Label-pair prefilter: reject the whole graph by its neighborhood
	// frequency table before any per-vertex work (see nlcCompatible). The
	// sets are left empty — the "filtered out" signal (AnyEmpty).
	if !nlcCompatible(q, g, profs) {
		ex.ObservePrefilter(true)
		return cand
	}
	ex.ObservePrefilter(false)

	// Step 1: candidates by neighborhood profile, in ascending id order.
	// LabeledVertices is ascending, so every set is born sorted.
	for u := 0; u < nq; u++ {
		if opts.stop(cand) {
			return cand
		}
		uu := graph.VertexID(u)
		prof := profs[u]
		deg := q.Degree(uu)
		for _, vv := range g.LabeledVertices(q.Label(uu)) {
			if g.Degree(vv) >= deg && g.SubsumesProfile(vv, prof) {
				cand.Add(uu, vv)
			}
		}
		if cand.Count(uu) == 0 {
			emitStageCounts(ex, obs.StageGraphQLProfile, cand)
			return cand
		}
	}
	emitStageCounts(ex, obs.StageGraphQLProfile, cand)
	snap := debugSnapshotCounts(cand) // sqdebug: stage monotonicity baseline

	// Step 2: pseudo subgraph isomorphism pruning via semi-perfect
	// bipartite matching, iterated for a bounded number of rounds. The
	// retention loop is written out (rather than via Retain's callback) to
	// keep the hot path closure-free, and the bigraph rows come from the
	// arena's reusable row storage.
	var executed int
	var rejected int64
	for r := 0; r < rounds; r++ {
		executed = r + 1
		changed := false
		for u := 0; u < nq; u++ {
			if opts.stop(cand) {
				emitRefineStats(ex, cand, executed, rejected)
				return cand
			}
			uu := graph.VertexID(u)
			qn := q.Neighbors(uu)
			before := cand.Count(uu)
			kept := cand.Sets[uu][:0]
			for _, v := range cand.Sets[uu] {
				gn := g.Neighbors(v)
				keep := len(gn) >= len(qn)
				if keep {
					// Build the bigraph B between N(u) and N(v): edge when
					// the data neighbor is a candidate of the query neighbor.
					adj := s.adjRows.Take(len(qn))
					for k, up := range qn {
						row := adj[k]
						for j, w := range gn {
							if cand.Contains(up, w) {
								row = append(row, int32(j))
							}
						}
						if len(row) == 0 {
							keep = false
							break
						}
						adj[k] = row
					}
					if keep {
						s.bm.reset(len(qn), len(gn))
						keep = s.bm.semiPerfect(adj)
					}
				}
				if keep {
					kept = append(kept, v)
				} else {
					rejected++
					cand.clearMember(uu, v)
				}
			}
			cand.Sets[uu] = kept
			if cand.Count(uu) == 0 {
				emitRefineStats(ex, cand, executed, rejected)
				return cand
			}
			if cand.Count(uu) != before {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	emitRefineStats(ex, cand, executed, rejected)
	debugCheckMonotone("GraphQL refinement", snap, cand)
	return cand
}

// emitRefineStats records GraphQL's refinement outcome for one data graph
// (no-op with a nil Explain).
func emitRefineStats(ex *obs.Explain, cand *Candidates, rounds int, rejected int64) {
	if ex == nil {
		return
	}
	emitStageCounts(ex, obs.StageGraphQLRefine, cand)
	ex.ObserveRefineRounds(rounds)
	ex.ObserveRejections(rejected)
}

// GraphQLOrder computes the join-based matching order: start from the query
// vertex with the minimum number of candidates; at each step select, among
// the un-ordered neighbors of the ordered prefix, the vertex with the
// minimum number of candidates (ties toward higher degree, then lower id).
func GraphQLOrder(q *graph.Graph, cand *Candidates) []graph.VertexID {
	return GraphQLOrderScratch(q, cand, nil)
}

// GraphQLOrderScratch is GraphQLOrder running on an arena: the returned
// order is owned by s and valid until its next ordering call. A nil s
// allocates a private arena (identical to GraphQLOrder).
func GraphQLOrderScratch(q *graph.Graph, cand *Candidates, s *Scratch) []graph.VertexID {
	fault.Inject(fault.PointOrder)
	if s == nil {
		s = NewScratch()
	}
	n := q.NumVertices()
	order := s.orderBuf[:0]
	in := growBools(&s.orderIn, n)
	frontier := growBools(&s.frontier, n) // un-ordered neighbors of the prefix

	better := func(a, b graph.VertexID) bool {
		ca, cb := cand.Count(a), cand.Count(b)
		if ca != cb {
			return ca < cb
		}
		da, db := q.Degree(a), q.Degree(b)
		if da != db {
			return da > db
		}
		return a < b
	}

	pick := func(frontierOnly bool) graph.VertexID {
		best := graph.VertexID(0)
		have := false
		for u := 0; u < n; u++ {
			uu := graph.VertexID(u)
			if in[u] || (frontierOnly && !frontier[u]) {
				continue
			}
			if !have || better(uu, best) {
				best = uu
				have = true
			}
		}
		if !have { // disconnected query; fall back to any free vertex
			for u := 0; u < n; u++ {
				if !in[u] {
					return graph.VertexID(u)
				}
			}
		}
		return best
	}

	first := pick(false)
	order = append(order, first)
	in[first] = true
	for _, w := range q.Neighbors(first) {
		frontier[w] = true
	}
	for len(order) < n {
		next := pick(true)
		order = append(order, next)
		in[next] = true
		frontier[next] = false
		for _, w := range q.Neighbors(next) {
			if !in[w] {
				frontier[w] = true
			}
		}
	}
	s.orderBuf = order
	return order
}

// GraphQL bundles the two phases as one preprocessing-enumeration matcher.
type GraphQL struct {
	// RefinementRounds bounds the filter's pruning iterations;
	// 0 selects DefaultRefinementRounds.
	RefinementRounds int
}

// Filter runs GraphQL's preprocessing phase. opts.Rounds = 0 defers to the
// matcher's configured RefinementRounds.
func (a GraphQL) Filter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	if opts.Rounds == 0 {
		opts.Rounds = a.RefinementRounds
	}
	return GraphQLFilter(q, g, opts)
}

// Run enumerates embeddings with GraphQL's filter and join-based order.
func (a GraphQL) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	cand := a.Filter(q, g, FilterOptions{Deadline: opts.Deadline, Scratch: opts.Scratch})
	if cand.Aborted {
		return Result{Aborted: true}
	}
	if cand.AnyEmpty() {
		return Result{}
	}
	res, err := Enumerate(q, g, cand, GraphQLOrderScratch(q, cand, opts.Scratch), opts)
	if err != nil {
		panic(err) // connected query + join-based order cannot disconnect
	}
	return res
}

// FindFirst stops at the first embedding.
func (a GraphQL) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// SortCandidates orders every candidate set ascending by vertex id — the
// invariant the filters maintain by construction and the enumeration's
// intersection kernel requires; useful for hand-built candidate sets and
// deterministic tests.
func SortCandidates(cand *Candidates) {
	for u := range cand.Sets {
		s := cand.Sets[u]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
}
