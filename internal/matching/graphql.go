package matching

import (
	"sort"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// GraphQL's preprocessing and enumeration phases (He & Singh [14]), split
// the way the paper uses them in the vcFV framework:
//
//   - GraphQLFilter is the Filter function of Algorithm 2: candidate sets
//     from neighborhood profiles, then pruning by the pseudo subgraph
//     isomorphism test of Closure-Tree [13] — a semi-perfect bipartite
//     matching between query-vertex and data-vertex neighborhoods.
//   - GraphQLOrder is the join-based ordering strategy: repeatedly pick the
//     query vertex with the fewest candidates among the neighbors of the
//     already-selected vertices.
//
// GraphQL's Verify is GraphQLOrder + Enumerate; CFQL reuses the same Verify
// on top of CFLFilter.

// DefaultRefinementRounds bounds GraphQL's pseudo-isomorphism refinement.
// The test is applied to every (u, v) candidate pair per round; additional
// rounds propagate pruning through neighbors.
const DefaultRefinementRounds = 3

// GraphQLFilter computes a complete candidate vertex set for every query
// vertex, or nil sets when some set becomes empty (the data graph then
// cannot contain q, Proposition III.1). The candidate generation and
// pruning proceed in ascending query vertex id, as the paper's
// implementation specifies. opts.Rounds = 0 selects
// DefaultRefinementRounds; negative disables the pseudo-isomorphism
// refinement entirely (the neighborhood-profile-only ablation). The pass
// aborts (Candidates.Aborted) when opts.Deadline passes. With a non-nil
// opts.Explain it records per-vertex candidate counts after the
// neighborhood-profile generation and after the refinement, the number of
// refinement rounds executed, and how many candidate vertices the
// semi-perfect bipartite matching test rejected; a nil Explain costs a few
// predictable branches and allocates nothing.
//
// Space complexity O(|V(q)|·|V(G)|); time O(|V(q)|·|V(G)|·Θ(d_q, d_G)) with
// Θ the bipartite matching cost.
func GraphQLFilter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	cand := graphQLFilter(q, g, opts)
	debugCheckCandidates("GraphQLFilter", q, g, cand)
	return cand
}

func graphQLFilter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	ex := opts.Explain
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = DefaultRefinementRounds
	}
	if rounds < 0 {
		rounds = 0
	}
	nq := q.NumVertices()
	cand := NewCandidates(nq, g.NumVertices())

	// Step 1: candidates by neighborhood profile, in ascending id order.
	for u := 0; u < nq; u++ {
		if opts.expired() {
			cand.Aborted = true
			return cand
		}
		uu := graph.VertexID(u)
		prof := graph.NLFOf(q, uu)
		deg := q.Degree(uu)
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if g.Label(vv) != q.Label(uu) || g.Degree(vv) < deg {
				continue
			}
			if profileSubsumed(g, vv, prof) {
				cand.Add(uu, vv)
			}
		}
		if cand.Count(uu) == 0 {
			emitStageCounts(ex, obs.StageGraphQLProfile, cand)
			return cand
		}
	}
	emitStageCounts(ex, obs.StageGraphQLProfile, cand)
	snap := debugSnapshotCounts(cand) // sqdebug: stage monotonicity baseline

	// Step 2: pseudo subgraph isomorphism pruning via semi-perfect
	// bipartite matching, iterated for a bounded number of rounds.
	var m bipartiteMatcher
	var executed int
	var rejected int64
	adj := make([][]int32, 0, q.MaxDegree())
	for r := 0; r < rounds; r++ {
		executed = r + 1
		changed := false
		for u := 0; u < nq; u++ {
			if opts.expired() {
				cand.Aborted = true
				emitRefineStats(ex, cand, executed, rejected)
				return cand
			}
			uu := graph.VertexID(u)
			qn := q.Neighbors(uu)
			before := cand.Count(uu)
			cand.Retain(uu, func(v graph.VertexID) bool {
				gn := g.Neighbors(v)
				if len(gn) < len(qn) {
					rejected++
					return false
				}
				// Build the bigraph B between N(u) and N(v): edge when the
				// data neighbor is a candidate of the query neighbor.
				adj = adj[:0]
				for _, up := range qn {
					row := make([]int32, 0, 4)
					for j, w := range gn {
						if cand.Contains(up, w) {
							row = append(row, int32(j))
						}
					}
					if len(row) == 0 {
						rejected++
						return false
					}
					adj = append(adj, row)
				}
				m.reset(len(qn), len(gn))
				ok := m.semiPerfect(adj)
				if !ok {
					rejected++
				}
				return ok
			})
			if cand.Count(uu) == 0 {
				emitRefineStats(ex, cand, executed, rejected)
				return cand
			}
			if cand.Count(uu) != before {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	emitRefineStats(ex, cand, executed, rejected)
	debugCheckMonotone("GraphQL refinement", snap, cand)
	return cand
}

// emitRefineStats records GraphQL's refinement outcome for one data graph
// (no-op with a nil Explain).
func emitRefineStats(ex *obs.Explain, cand *Candidates, rounds int, rejected int64) {
	if ex == nil {
		return
	}
	emitStageCounts(ex, obs.StageGraphQLRefine, cand)
	ex.ObserveRefineRounds(rounds)
	ex.ObserveRejections(rejected)
}

// profileSubsumed reports whether data vertex v has, for every neighbor
// label of the query profile, at least as many neighbors with that label.
func profileSubsumed(g *graph.Graph, v graph.VertexID, prof graph.NLF) bool {
	ok := true
	prof.ForEach(func(l graph.Label, count int) bool {
		if len(g.NeighborsWithLabel(v, l)) < count {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// GraphQLOrder computes the join-based matching order: start from the query
// vertex with the minimum number of candidates; at each step select, among
// the un-ordered neighbors of the ordered prefix, the vertex with the
// minimum number of candidates (ties toward higher degree, then lower id).
func GraphQLOrder(q *graph.Graph, cand *Candidates) []graph.VertexID {
	n := q.NumVertices()
	order := make([]graph.VertexID, 0, n)
	in := make([]bool, n)
	frontier := make([]bool, n) // un-ordered neighbors of the prefix

	better := func(a, b graph.VertexID) bool {
		ca, cb := cand.Count(a), cand.Count(b)
		if ca != cb {
			return ca < cb
		}
		da, db := q.Degree(a), q.Degree(b)
		if da != db {
			return da > db
		}
		return a < b
	}

	pick := func(eligible func(u graph.VertexID) bool) graph.VertexID {
		best := graph.VertexID(0)
		have := false
		for u := 0; u < n; u++ {
			uu := graph.VertexID(u)
			if in[u] || !eligible(uu) {
				continue
			}
			if !have || better(uu, best) {
				best = uu
				have = true
			}
		}
		if !have { // disconnected query; fall back to any free vertex
			for u := 0; u < n; u++ {
				if !in[u] {
					return graph.VertexID(u)
				}
			}
		}
		return best
	}

	first := pick(func(graph.VertexID) bool { return true })
	order = append(order, first)
	in[first] = true
	for _, w := range q.Neighbors(first) {
		frontier[w] = true
	}
	for len(order) < n {
		next := pick(func(u graph.VertexID) bool { return frontier[u] })
		order = append(order, next)
		in[next] = true
		frontier[next] = false
		for _, w := range q.Neighbors(next) {
			if !in[w] {
				frontier[w] = true
			}
		}
	}
	return order
}

// GraphQL bundles the two phases as one preprocessing-enumeration matcher.
type GraphQL struct {
	// RefinementRounds bounds the filter's pruning iterations;
	// 0 selects DefaultRefinementRounds.
	RefinementRounds int
}

// Filter runs GraphQL's preprocessing phase. opts.Rounds = 0 defers to the
// matcher's configured RefinementRounds.
func (a GraphQL) Filter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	if opts.Rounds == 0 {
		opts.Rounds = a.RefinementRounds
	}
	return GraphQLFilter(q, g, opts)
}

// Run enumerates embeddings with GraphQL's filter and join-based order.
func (a GraphQL) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	cand := a.Filter(q, g, FilterOptions{Deadline: opts.Deadline})
	if cand.Aborted {
		return Result{Aborted: true}
	}
	if cand.AnyEmpty() {
		return Result{}
	}
	res, err := Enumerate(q, g, cand, GraphQLOrder(q, cand), opts)
	if err != nil {
		panic(err) // connected query + join-based order cannot disconnect
	}
	return res
}

// FindFirst stops at the first embedding.
func (a GraphQL) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// SortCandidates orders every candidate set ascending by vertex id; useful
// for deterministic tests and stable enumeration order.
func SortCandidates(cand *Candidates) {
	for u := range cand.Sets {
		s := cand.Sets[u]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
}
