package matching

import "subgraphquery/internal/graph"

// VF2 is the direct-enumeration subgraph isomorphism algorithm of Cordella,
// Foggia, Sansone and Vento [6]. It is the verification method of the IFV
// algorithms studied in the paper (Grapes, GGSX and — with an improved
// static matching order — CT-Index). No auxiliary structure is built ahead
// of the recursion; candidate pairs are generated from the terminal sets of
// the current partial mapping.
type VF2 struct {
	// Order, when non-nil, fixes the order in which query vertices are
	// matched. CT-Index's "modified VF2" supplies a degree/selectivity-based
	// static order here; plain VF2 leaves it nil and uses the classic
	// terminal-set-driven selection.
	Order []graph.VertexID
}

// Run enumerates subgraph isomorphisms from q to g under opts.
func (a *VF2) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	if q.NumVertices() > g.NumVertices() || q.NumEdges() > g.NumEdges() {
		return Result{}
	}
	s := &vf2state{
		q: q, g: g,
		opts:    &opts,
		budget:  newBudget(&opts),
		core1:   make([]int32, q.NumVertices()),
		core2:   make([]int32, g.NumVertices()),
		depth1:  make([]int32, q.NumVertices()),
		depth2:  make([]int32, g.NumVertices()),
		mapping: make([]graph.VertexID, q.NumVertices()),
		order:   a.Order,
	}
	for i := range s.core1 {
		s.core1[i] = -1
	}
	for i := range s.core2 {
		s.core2[i] = -1
	}
	s.match(0)
	return Result{Embeddings: s.found, Steps: s.budget.steps, Aborted: s.budget.aborted, Stopped: s.stopped}
}

// FindFirst reports whether q is subgraph-isomorphic to g, stopping at the
// first embedding — the Verify(q, G) test of the IFV procedure
// (Algorithm 1, line 8).
func (a *VF2) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

type vf2state struct {
	q, g   *graph.Graph
	opts   *Options
	budget searchBudget

	core1 []int32 // query -> data mapping, -1 if unmapped
	core2 []int32 // data -> query mapping, -1 if unmapped
	// depthN[v] > 0 marks v as a terminal vertex (adjacent to the mapped
	// core) and records the depth at which it entered the terminal set, so
	// backtracking can undo exactly its own additions.
	depth1 []int32
	depth2 []int32

	mapping []graph.VertexID
	order   []graph.VertexID
	found   uint64
	stop    bool
	stopped bool // an OnEmbedding callback returned false
}

// nextQuery selects the query vertex to match at this depth: the fixed
// order if provided, else the smallest-id unmapped terminal vertex (the
// classic VF2 rule), else the smallest-id unmapped vertex.
func (s *vf2state) nextQuery(depth int) graph.VertexID {
	if s.order != nil {
		return s.order[depth]
	}
	firstFree := -1
	for u := range s.core1 {
		if s.core1[u] != -1 {
			continue
		}
		if s.depth1[u] > 0 {
			return graph.VertexID(u)
		}
		if firstFree == -1 {
			firstFree = u
		}
	}
	return graph.VertexID(firstFree)
}

func (s *vf2state) match(depth int) {
	if depth == s.q.NumVertices() {
		debugCheckEmbedding(s.q, s.g, s.mapping) // sqdebug builds only
		s.found++
		if s.opts.OnEmbedding != nil && !s.opts.OnEmbedding(s.mapping) {
			s.stop = true
			s.stopped = true
		}
		if s.opts.Limit != 0 && s.found >= s.opts.Limit {
			s.stop = true
		}
		return
	}
	if s.budget.spend() {
		s.stop = true
		return
	}
	u := s.nextQuery(depth)
	uTerminal := s.depth1[u] > 0

	// Candidate data vertices: if u is terminal, only terminal data
	// vertices can match; otherwise only non-terminal unmapped ones.
	for v := 0; v < s.g.NumVertices(); v++ {
		if s.core2[v] != -1 {
			continue
		}
		vTerminal := s.depth2[v] > 0
		if uTerminal != vTerminal {
			continue
		}
		if s.feasible(u, graph.VertexID(v)) {
			s.extend(depth, u, graph.VertexID(v))
			if s.stop {
				return
			}
		}
	}
}

// feasible applies VF2's feasibility rules specialized for undirected
// labeled subgraph isomorphism: label equality, consistency of mapped
// neighbors, and the one- and two-lookahead cardinality cuts.
func (s *vf2state) feasible(u, v graph.VertexID) bool {
	if s.q.Label(u) != s.g.Label(v) || s.g.Degree(v) < s.q.Degree(u) {
		return false
	}
	// Rule 1: every mapped neighbor of u must map to a neighbor of v.
	termQ, newQ := 0, 0
	for _, w := range s.q.Neighbors(u) {
		switch {
		case s.core1[w] != -1:
			if !s.g.HasEdge(v, graph.VertexID(s.core1[w])) {
				return false
			}
		case s.depth1[w] > 0:
			termQ++
		default:
			newQ++
		}
	}
	// Rule 2 (lookahead): v must have at least as many terminal and fresh
	// neighbors as u does. Mapped neighbors of v need no converse check
	// beyond rule 1 because subgraph (not induced) isomorphism allows extra
	// data edges.
	termG, newG := 0, 0
	for _, w := range s.g.Neighbors(v) {
		switch {
		case s.core2[w] != -1:
			// extra data edge; fine for non-induced matching
		case s.depth2[w] > 0:
			termG++
		default:
			newG++
		}
	}
	return termG >= termQ && newG+termG >= newQ+termQ
}

func (s *vf2state) extend(depth int, u, v graph.VertexID) {
	d := int32(depth + 1)
	s.core1[u] = int32(v)
	s.core2[v] = int32(u)
	s.mapping[u] = v
	// Grow terminal sets, remembering which entries we created.
	for _, w := range s.q.Neighbors(u) {
		if s.core1[w] == -1 && s.depth1[w] == 0 {
			s.depth1[w] = d
		}
	}
	for _, w := range s.g.Neighbors(v) {
		if s.core2[w] == -1 && s.depth2[w] == 0 {
			s.depth2[w] = d
		}
	}

	s.match(depth + 1)

	for _, w := range s.q.Neighbors(u) {
		if s.depth1[w] == d {
			s.depth1[w] = 0
		}
	}
	for _, w := range s.g.Neighbors(v) {
		if s.depth2[w] == d {
			s.depth2[w] = 0
		}
	}
	s.core1[u] = -1
	s.core2[v] = -1
}

// CTIndexOrder returns the static matching order CT-Index's modified VF2
// uses: query vertices sorted by decreasing degree, breaking ties toward
// rarer labels in the data graph, rearranged so every vertex is adjacent to
// an earlier one (connectivity repair by greedy selection).
func CTIndexOrder(q, g *graph.Graph) []graph.VertexID {
	n := q.NumVertices()
	order := make([]graph.VertexID, 0, n)
	inOrder := make([]bool, n)

	score := func(u graph.VertexID) (int, int) {
		return q.Degree(u), -g.LabelFrequency(q.Label(u))
	}
	better := func(a, b graph.VertexID) bool {
		da, fa := score(a)
		db, fb := score(b)
		if da != db {
			return da > db
		}
		if fa != fb {
			return fa > fb
		}
		return a < b
	}

	for len(order) < n {
		best := graph.VertexID(0)
		haveBest := false
		for u := 0; u < n; u++ {
			uu := graph.VertexID(u)
			if inOrder[u] {
				continue
			}
			if len(order) > 0 {
				adjacent := false
				for _, w := range q.Neighbors(uu) {
					if inOrder[w] {
						adjacent = true
						break
					}
				}
				if !adjacent {
					continue
				}
			}
			if !haveBest || better(uu, best) {
				best = uu
				haveBest = true
			}
		}
		if !haveBest { // disconnected query; pick any remaining (not expected)
			for u := 0; u < n; u++ {
				if !inOrder[u] {
					best = graph.VertexID(u)
					break
				}
			}
		}
		inOrder[best] = true
		order = append(order, best)
	}
	return order
}
