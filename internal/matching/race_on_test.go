//go:build race

package matching

const raceEnabled = true
