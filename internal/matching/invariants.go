package matching

import (
	"fmt"

	"subgraphquery/internal/graph"
)

// Runtime invariant assertions for the filtering and enumeration layers,
// active only under the sqdebug build tag (see sqdebug_on.go):
//
//   - candidate structures leaving a filter keep their Sets/member bitset
//     mirror exact, hold only label-compatible data vertices, and contain
//     no duplicates;
//   - the bottom-up/refinement stages only ever shrink candidate sets
//     (stage monotonicity);
//   - every reported embedding is injective and edge-preserving.
//
// Violations panic: a broken mirror silently corrupts Contains-based
// pruning, and a non-embedding result would be a wrong answer, not a
// recoverable condition.

// debugCheckCandidates panics if cand violates a structural invariant
// against query q and data graph g. stage names the filter pass for the
// panic message. No-op in normal builds.
func debugCheckCandidates(stage string, q, g *graph.Graph, cand *Candidates) {
	if !debugInvariants {
		return
	}
	if len(cand.Sets) != q.NumVertices() || cand.dom.NumRows() != q.NumVertices() {
		debugFailf("%s: candidate structure shaped for %d/%d vertices, query has %d", stage, len(cand.Sets), cand.dom.NumRows(), q.NumVertices())
	}
	for u, set := range cand.Sets {
		uu := graph.VertexID(u)
		for i, v := range set {
			if int(v) >= g.NumVertices() {
				debugFailf("%s: Φ(%d) contains %d outside the data graph", stage, u, v)
			}
			if !cand.dom.Contains(u, uint32(v)) {
				debugFailf("%s: Φ(%d) lists %d but its member bit is clear", stage, u, v)
			}
			if g.Label(v) != q.Label(uu) {
				debugFailf("%s: Φ(%d) contains %d with label %d, query vertex has label %d", stage, u, v, g.Label(v), q.Label(uu))
			}
			if i > 0 && set[i-1] >= v {
				debugFailf("%s: Φ(%d) not strictly ascending at position %d", stage, u, i)
			}
		}
		// Exact mirror: the bitset population must equal the set length, so
		// combined with the per-element check above there are no duplicates
		// in Sets and no stray bits in member.
		if pop := cand.dom.Row(u).Count(); pop != len(set) {
			debugFailf("%s: Φ(%d) has %d entries but %d member bits", stage, u, len(set), pop)
		}
		if cnt := cand.dom.Count(u); cnt != len(set) {
			debugFailf("%s: Φ(%d) has %d entries but the domain maintains count %d", stage, u, len(set), cnt)
		}
	}
}

// debugCheckSortedSets panics unless every candidate set is strictly
// ascending — the input invariant of the enumeration's sorted-intersection
// kernel. Checked on entry to Enumerate so hand-built unsorted sets fail
// loudly under sqdebug instead of silently skipping embeddings.
func debugCheckSortedSets(stage string, cand *Candidates) {
	if !debugInvariants {
		return
	}
	for u, set := range cand.Sets {
		for i := 1; i < len(set); i++ {
			if set[i-1] >= set[i] {
				debugFailf("%s: Φ(%d) not strictly ascending at position %d", stage, u, i)
			}
		}
	}
}

// debugSnapshotCounts captures per-vertex candidate counts before a
// refinement stage; returns nil in normal builds.
func debugSnapshotCounts(cand *Candidates) []int {
	if !debugInvariants {
		return nil
	}
	counts := make([]int, len(cand.Sets))
	for u, s := range cand.Sets {
		counts[u] = len(s)
	}
	return counts
}

// debugCheckMonotone panics if a refinement stage grew some candidate set:
// filters may only remove candidates after generation.
func debugCheckMonotone(stage string, before []int, cand *Candidates) {
	if !debugInvariants || before == nil {
		return
	}
	for u, s := range cand.Sets {
		if len(s) > before[u] {
			debugFailf("%s: Φ(%d) grew from %d to %d candidates", stage, u, before[u], len(s))
		}
	}
}

// debugCheckEmbedding panics unless mapping is a subgraph isomorphism from
// q into g: label-preserving, injective, and edge-preserving. Called on
// every embedding the enumerators report.
func debugCheckEmbedding(q, g *graph.Graph, mapping []graph.VertexID) {
	if !debugInvariants {
		return
	}
	if len(mapping) != q.NumVertices() {
		debugFailf("embedding maps %d of %d query vertices", len(mapping), q.NumVertices())
	}
	seen := make(map[graph.VertexID]graph.VertexID, len(mapping))
	for u, v := range mapping {
		uu := graph.VertexID(u)
		if int(v) >= g.NumVertices() {
			debugFailf("embedding maps %d to %d outside the data graph", u, v)
		}
		if g.Label(v) != q.Label(uu) {
			debugFailf("embedding maps %d (label %d) to %d (label %d)", u, q.Label(uu), v, g.Label(v))
		}
		if prev, dup := seen[v]; dup {
			debugFailf("embedding is not injective: %d and %d both map to %d", prev, u, v)
		}
		seen[v] = uu
	}
	for _, e := range q.Edges() {
		if !g.HasEdge(mapping[e.U], mapping[e.V]) {
			debugFailf("embedding drops query edge (%d,%d): no data edge (%d,%d)", e.U, e.V, mapping[e.U], mapping[e.V])
		}
	}
}

func debugFailf(format string, args ...any) {
	panic("sqdebug: matching: " + fmt.Sprintf(format, args...))
}
