package matching

import (
	"math/rand"
	"testing"
)

// bruteForceMatching computes the maximum bipartite matching size by
// exhaustive assignment (exponential; only for tiny instances).
func bruteForceMatching(adj [][]int32, nr int) int {
	usedR := make([]bool, nr)
	var best int
	var rec func(l, size int)
	rec = func(l, size int) {
		if size > best {
			best = size
		}
		if l == len(adj) {
			return
		}
		rec(l+1, size) // leave l unmatched
		for _, r := range adj[l] {
			if !usedR[r] {
				usedR[r] = true
				rec(l+1, size+1)
				usedR[r] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestMaxBipartiteMatchingSmallCases(t *testing.T) {
	cases := []struct {
		name string
		adj  [][]int32
		nr   int
		want int
	}{
		{"empty", nil, 0, 0},
		{"single", [][]int32{{0}}, 1, 1},
		{"no-edges", [][]int32{{}, {}}, 3, 0},
		{"perfect", [][]int32{{0}, {1}, {2}}, 3, 3},
		{"contention", [][]int32{{0}, {0}}, 1, 1},
		{"augmenting", [][]int32{{0, 1}, {0}}, 2, 2},
		{"chain", [][]int32{{0, 1}, {1, 2}, {2, 3}}, 4, 3},
		{"hall-violation", [][]int32{{0}, {0}, {0, 1}}, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MaxBipartiteMatching(tc.adj, tc.nr); got != tc.want {
				t.Errorf("MaxBipartiteMatching = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestMaxBipartiteMatchingAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		nl, nr := 1+r.Intn(6), 1+r.Intn(6)
		adj := make([][]int32, nl)
		for l := range adj {
			for rr := 0; rr < nr; rr++ {
				if r.Intn(3) == 0 {
					adj[l] = append(adj[l], int32(rr))
				}
			}
		}
		want := bruteForceMatching(adj, nr)
		if got := MaxBipartiteMatching(adj, nr); got != want {
			t.Fatalf("trial %d: matching = %d, want %d (adj=%v nr=%d)", trial, got, want, adj, nr)
		}
	}
}

func TestSemiPerfect(t *testing.T) {
	var m bipartiteMatcher

	// Saturating matching exists.
	m.reset(2, 3)
	if !m.semiPerfect([][]int32{{0, 1}, {1, 2}}) {
		t.Error("semiPerfect should succeed")
	}

	// Left vertex with empty adjacency can never be saturated.
	m.reset(2, 2)
	if m.semiPerfect([][]int32{{0, 1}, {}}) {
		t.Error("semiPerfect should fail with an isolated left vertex")
	}

	// Hall violation: three left vertices share two right vertices.
	m.reset(3, 2)
	if m.semiPerfect([][]int32{{0, 1}, {0, 1}, {0, 1}}) {
		t.Error("semiPerfect should fail on a Hall violation")
	}
}

func TestSemiPerfectMatchesMaxMatching(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	var m bipartiteMatcher
	for trial := 0; trial < 200; trial++ {
		nl, nr := 1+r.Intn(5), 1+r.Intn(7)
		adj := make([][]int32, nl)
		for l := range adj {
			for rr := 0; rr < nr; rr++ {
				if r.Intn(2) == 0 {
					adj[l] = append(adj[l], int32(rr))
				}
			}
		}
		want := bruteForceMatching(adj, nr) == nl
		m.reset(nl, nr)
		if got := m.semiPerfect(adj); got != want {
			t.Fatalf("trial %d: semiPerfect = %v, want %v (adj=%v)", trial, got, want, adj)
		}
	}
}

func TestMatcherReuse(t *testing.T) {
	var m bipartiteMatcher
	// Run a large instance, then a small one; stale state must not leak.
	big := make([][]int32, 10)
	for i := range big {
		big[i] = []int32{int32(i)}
	}
	m.reset(10, 10)
	if got := m.maxMatching(big); got != 10 {
		t.Fatalf("big matching = %d, want 10", got)
	}
	m.reset(1, 1)
	if got := m.maxMatching([][]int32{{}}); got != 0 {
		t.Fatalf("small matching after reuse = %d, want 0", got)
	}
}
