//go:build !race

package matching

// raceEnabled reports whether the race detector is compiled in.
// AllocsPerRun assertions are skipped under -race: the detector's
// instrumentation perturbs allocation behavior.
const raceEnabled = false
