package matching

import "subgraphquery/internal/graph"

// QuickSI (Shang, Zhang, Lin and Yu [28]) — a direct-enumeration subgraph
// isomorphism algorithm whose contribution is the QI-sequence: a spanning
// tree of the query ordered so that infrequent vertices and edges are
// matched first, shrinking the search tree near its root. Implemented here
// with per-vertex frequencies from the data graph (freq(L(u)) weighted by
// degree) and a Prim-style greedy sequence; the enumeration itself uses
// only label and degree checks per candidate, true to the direct-
// enumeration family (no candidate set refinement).
type QuickSI struct{}

// Run enumerates subgraph isomorphisms from q to g under opts.
func (QuickSI) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	if q.NumVertices() > g.NumVertices() || q.NumEdges() > g.NumEdges() {
		return Result{}
	}
	// Label/degree candidate sets (no refinement — direct enumeration).
	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.VertexID(u)
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if g.Label(vv) == q.Label(uu) && g.Degree(vv) >= q.Degree(uu) {
				cand.Add(uu, vv)
			}
		}
		if cand.Count(uu) == 0 {
			return Result{}
		}
	}
	res, err := Enumerate(q, g, cand, QISequence(q, g), opts)
	if err != nil {
		panic(err)
	}
	return res
}

// FindFirst stops at the first embedding.
func (a QuickSI) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// QISequence computes QuickSI's matching order: start at the query vertex
// whose label is rarest in g (ties to higher degree), then repeatedly
// extend with the adjacent unmatched vertex of minimum frequency weight.
func QISequence(q, g *graph.Graph) []graph.VertexID {
	n := q.NumVertices()
	weight := func(u graph.VertexID) float64 {
		deg := q.Degree(u)
		if deg == 0 {
			deg = 1
		}
		return float64(g.LabelFrequency(q.Label(u))) / float64(deg)
	}
	order := make([]graph.VertexID, 0, n)
	in := make([]bool, n)

	best := graph.VertexID(0)
	for u := 1; u < n; u++ {
		if weight(graph.VertexID(u)) < weight(best) {
			best = graph.VertexID(u)
		}
	}
	order = append(order, best)
	in[best] = true
	for len(order) < n {
		picked := -1
		for u := 0; u < n; u++ {
			uu := graph.VertexID(u)
			if in[u] {
				continue
			}
			adjacent := false
			for _, w := range q.Neighbors(uu) {
				if in[w] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				continue
			}
			if picked == -1 || weight(uu) < weight(graph.VertexID(picked)) {
				picked = u
			}
		}
		if picked == -1 { // disconnected query
			for u := 0; u < n; u++ {
				if !in[u] {
					picked = u
					break
				}
			}
		}
		in[picked] = true
		order = append(order, graph.VertexID(picked))
	}
	return order
}
