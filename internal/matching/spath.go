package matching

import "subgraphquery/internal/graph"

// SPath (Zhao and Han [41]) — a direct-enumeration algorithm whose
// contribution is the neighborhood signature: for every vertex, the set of
// labels reachable within distance k (k = 2 here, the paper's common
// configuration). A data vertex v can host query vertex u only if v's
// signature covers u's at every distance level. Candidates pass the
// signature filter individually (no joint refinement — this is what
// separates the direct-enumeration family from preprocessing-enumeration),
// and the enumeration extends along shortest-path-first order.
type SPath struct{}

// signatureRadius is the neighborhood distance of the signature filter.
const signatureRadius = 2

// Run enumerates subgraph isomorphisms from q to g under opts.
func (SPath) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	if q.NumVertices() > g.NumVertices() || q.NumEdges() > g.NumEdges() {
		return Result{}
	}
	qsig := signatures(q)
	gsig := signatures(g)

	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.VertexID(u)
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if g.Label(vv) != q.Label(uu) || g.Degree(vv) < q.Degree(uu) {
				continue
			}
			if covers(gsig[v], qsig[u]) {
				cand.Add(uu, vv)
			}
		}
		if cand.Count(uu) == 0 {
			return Result{}
		}
	}
	res, err := Enumerate(q, g, cand, spathOrder(q, cand), opts)
	if err != nil {
		panic(err)
	}
	return res
}

// FindFirst stops at the first embedding.
func (a SPath) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// signature holds, per distance level 1..signatureRadius, the multiset of
// labels reachable at exactly that (unweighted shortest-path) distance,
// as sorted (label, count) runs.
type signature [signatureRadius]graph.NLF

// signatures computes every vertex's distance-level label signature via a
// truncated BFS per vertex.
func signatures(g *graph.Graph) []signature {
	n := g.NumVertices()
	out := make([]signature, n)
	depth := make([]int8, n)
	var frontier, next []graph.VertexID
	counts := make(map[graph.Label]uint32)

	for v := 0; v < n; v++ {
		for i := range depth {
			depth[i] = -1
		}
		depth[v] = 0
		frontier = append(frontier[:0], graph.VertexID(v))
		for d := 1; d <= signatureRadius; d++ {
			next = next[:0]
			clear(counts)
			for _, x := range frontier {
				for _, w := range g.Neighbors(x) {
					if depth[w] == -1 {
						depth[w] = int8(d)
						next = append(next, w)
						counts[g.Label(w)]++
					}
				}
			}
			out[v][d-1] = nlfFromCounts(counts)
			frontier, next = next, frontier
		}
	}
	return out
}

// nlfFromCounts converts a label->count map into sorted NLF runs.
func nlfFromCounts(counts map[graph.Label]uint32) graph.NLF {
	return graph.NLFFromCounts(counts)
}

// covers reports whether the data signature dominates the query signature:
// at every level, the *cumulative* reachable label counts up to that level
// must dominate. Cumulative comparison is required for completeness: an
// embedding may map a query vertex at distance 2 from u to a data vertex
// at distance 1 from φ(u) (shortcut edges in G shrink distances, never
// grow them).
func covers(dv, qu signature) bool {
	// Accumulate levels into cumulative counts.
	var dCum, qCum map[graph.Label]uint32
	dCum = make(map[graph.Label]uint32)
	qCum = make(map[graph.Label]uint32)
	for lvl := 0; lvl < signatureRadius; lvl++ {
		dv[lvl].ForEach(func(l graph.Label, c int) bool {
			dCum[l] += uint32(c)
			return true
		})
		qu[lvl].ForEach(func(l graph.Label, c int) bool {
			qCum[l] += uint32(c)
			return true
		})
		for l, c := range qCum {
			if dCum[l] < c {
				return false
			}
		}
	}
	return true
}

// spathOrder orders query vertices by ascending candidate count along a
// connected extension, approximating SPath's shortest-path-first
// decomposition with the same greedy selection the other matchers use.
func spathOrder(q *graph.Graph, cand *Candidates) []graph.VertexID {
	return GraphQLOrder(q, cand)
}
