package matching

import (
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

func TestTurboStartVertex(t *testing.T) {
	q, g := fig1()
	// u2 has the unique label C (frequency 1 in G) and the highest degree;
	// its rank freq/deg = 1/3 is minimal.
	if got := turboStartVertex(q, g); got != 2 {
		t.Errorf("turboStartVertex = %d, want 2", got)
	}
}

func TestExploreRegion(t *testing.T) {
	q, g := fig1()
	tree := graph.NewBFSTree(q, 2) // rooted at u2
	region := exploreRegion(q, g, tree, 2)
	if region == nil {
		t.Fatal("region from v2 should exist (it hosts the embedding)")
	}
	// The region pins the root and must contain the true embedding's
	// images.
	if region.Count(2) != 1 || !region.Contains(2, 2) {
		t.Errorf("root candidate set = %v, want exactly {v2}", region.Sets[2])
	}
	for u, v := range map[graph.VertexID]graph.VertexID{0: 0, 1: 1, 3: 3} {
		if !region.Contains(u, v) {
			t.Errorf("region misses embedding mapping (%d,%d)", u, v)
		}
	}

	// A region rooted at a vertex with the wrong neighborhood dies.
	// v4 has label A but degree 1 < deg(u0)=2; use u0's other candidate v0
	// against a pruned graph: build a graph without the triangle.
	g2 := graph.MustFromEdges(
		[]graph.Label{0, 1, 2, 1}, // C,O,N,B-chain: no triangle
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}},
	)
	tree2 := graph.NewBFSTree(q, 2)
	region2 := exploreRegion(q, g2, tree2, 2)
	if region2 != nil {
		// The region may exist structurally (labels reachable); the
		// enumeration must then find nothing.
		order := regionOrder(q, tree2, region2)
		r, err := Enumerate(q, g2, region2, order, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Embeddings != 0 {
			t.Errorf("found %d embeddings in triangle-free graph", r.Embeddings)
		}
	}
}

func TestRegionOrderValid(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(r, 5+r.Intn(12), r.Intn(14), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(5))
		start := turboStartVertex(q, g)
		tree := graph.NewBFSTree(q, start)
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if g.Label(vv) != q.Label(start) || g.Degree(vv) < q.Degree(start) {
				continue
			}
			region := exploreRegion(q, g, tree, vv)
			if region == nil {
				continue
			}
			if err := VerifyOrder(q, regionOrder(q, tree, region)); err != nil {
				t.Fatalf("invalid region order: %v", err)
			}
		}
	}
}

// TestTurboIsoRegionPartition: regions partition embeddings by the start
// vertex image, so summing per-region counts must equal the total.
func TestTurboIsoRegionPartition(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(r, 5+r.Intn(10), r.Intn(12), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(4))
		want := bruteForceCount(q, g)
		got := TurboIso{}.Run(q, g, Options{})
		if got.Embeddings != want {
			t.Fatalf("trial %d: TurboIso %d != brute force %d", trial, got.Embeddings, want)
		}
	}
}

func TestQISequenceValid(t *testing.T) {
	r := rand.New(rand.NewSource(227))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(r, 5+r.Intn(12), r.Intn(14), 1+r.Intn(4))
		q := randomQueryFrom(r, g, 1+r.Intn(5))
		if err := VerifyOrder(q, QISequence(q, g)); err != nil {
			t.Fatalf("invalid QI-sequence: %v", err)
		}
	}
}

func TestQISequenceStartsRare(t *testing.T) {
	// Query has one vertex with a label that is rare in the data graph;
	// the QI-sequence must start there.
	q := graph.MustFromEdges([]graph.Label{0, 0, 7},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	g := graph.MustFromEdges([]graph.Label{0, 0, 0, 0, 7},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	order := QISequence(q, g)
	if order[0] != 2 {
		t.Errorf("QI-sequence starts at %d, want 2 (the rare label)", order[0])
	}
}

func TestTurboIsoFindFirstStopsEarly(t *testing.T) {
	// A single-label star query on a large star graph has many embeddings;
	// FindFirst must not enumerate them all.
	n := 40
	labels := make([]graph.Label, n)
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.VertexID(i)})
	}
	g := graph.MustFromEdges(labels, edges)
	q := graph.MustFromEdges(make([]graph.Label, 4),
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	res := TurboIso{}.FindFirst(q, g, Options{})
	if !res.Found() || res.Embeddings != 1 {
		t.Fatalf("FindFirst: %+v", res)
	}
	all := TurboIso{}.Run(q, g, Options{})
	if all.Embeddings <= 1 || res.Steps >= all.Steps {
		t.Errorf("FindFirst did not stop early: first %d steps vs all %d steps (%d embeddings)",
			res.Steps, all.Steps, all.Embeddings)
	}
}
