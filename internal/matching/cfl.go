package matching

import (
	"sort"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// CFL (Bi, Chang, Lin, Qin, Zhang [1]) — the state-of-the-art
// preprocessing-enumeration subgraph matching algorithm at the time of the
// paper. Its two phases, used separately by the vcFV engines:
//
//   - CFLFilter builds a complete candidate vertex set along a BFS tree q_t
//     of the query: top-down generation with backward pruning on non-tree
//     edges, then a bottom-up refinement pass — the CPI construction of the
//     CFL paper, with time O(|E(q)|·|E(G)|) and space O(|V(q)|·|E(G)|).
//   - CFLOrder produces the path-based matching order that prioritizes the
//     query's core structure (2-core): root-to-leaf paths of q_t are ranked
//     by their estimated number of embeddings, core paths first.

// CFLFilter computes candidate sets for q against g under opts. It returns
// early (with some sets possibly empty) as soon as any candidate set
// becomes empty, and aborts (Candidates.Aborted) when opts.Deadline
// passes. With a non-nil opts.Explain, per-query-vertex candidate counts
// are recorded after the label/degree qualification, the top-down
// generation (with backward pruning) and the bottom-up refinement; a nil
// Explain costs a few predictable branches and allocates nothing.
func CFLFilter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	cand := cflFilter(q, g, true, opts)
	debugCheckCandidates("CFLFilter", q, g, cand)
	return cand
}

// CFLFilterTopDownOnly is the ablation variant that skips the bottom-up
// refinement pass, isolating its contribution to filtering precision
// (DESIGN.md ablation index).
func CFLFilterTopDownOnly(q, g *graph.Graph, opts FilterOptions) *Candidates {
	cand := cflFilter(q, g, false, opts)
	debugCheckCandidates("CFLFilterTopDownOnly", q, g, cand)
	return cand
}

// emitStageCounts records the current per-vertex candidate counts of one
// filter stage (no-op with a nil Explain; a plain function rather than a
// closure so the nil path stays allocation-free).
func emitStageCounts(ex *obs.Explain, stage string, cand *Candidates) {
	if ex == nil {
		return
	}
	counts := make([]int, len(cand.Sets))
	for u, s := range cand.Sets {
		counts[u] = len(s)
	}
	ex.ObserveStage(stage, counts)
}

// emitLDFCounts records CFL's label-and-degree qualification stage: the
// raw candidate pool size per query vertex before any connectivity
// pruning (explain-only; duplicates cflRoot's scan, off the nil path).
func emitLDFCounts(ex *obs.Explain, q, g *graph.Graph) {
	if ex == nil {
		return
	}
	counts := make([]int, q.NumVertices())
	for u := range counts {
		uu := graph.VertexID(u)
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if g.Label(vv) == q.Label(uu) && g.Degree(vv) >= q.Degree(uu) {
				counts[u]++
			}
		}
	}
	ex.ObserveStage(obs.StageCFLLDF, counts)
}

func cflFilter(q, g *graph.Graph, bottomUp bool, opts FilterOptions) *Candidates {
	ex := opts.Explain
	nq := q.NumVertices()
	cand := NewCandidates(nq, g.NumVertices())
	if nq == 0 {
		return cand
	}
	emitLDFCounts(ex, q, g)

	root := cflRoot(q, g)
	tree := graph.NewBFSTree(q, root)

	// Top-down generation along the BFS order. processed[u'] marks query
	// vertices whose candidate sets exist already; for each new u, a data
	// vertex v qualifies if label/degree match and, for *every* processed
	// neighbor u' of u, v is adjacent to some candidate of u' (backward
	// pruning over both tree and non-tree edges).
	processed := make([]bool, nq)
	lastEpoch := make([]int64, g.NumVertices()) // epoch at which v was last marked
	chain := make([]int32, g.NumVertices())     // consecutive before-neighbors satisfied
	var epoch int64
	var marked []graph.VertexID // vertices marked during the current epoch

	for _, u := range tree.Order {
		if opts.expired() {
			cand.Aborted = true
			return cand
		}
		qDeg := q.Degree(u)
		qLab := q.Label(u)
		var before []graph.VertexID
		for _, up := range q.Neighbors(u) {
			if processed[up] {
				before = append(before, up)
			}
		}
		if len(before) == 0 {
			// The root: label + degree + neighborhood-label-frequency seed.
			prof := graph.NLFOf(q, u)
			for v := 0; v < g.NumVertices(); v++ {
				vv := graph.VertexID(v)
				if g.Label(vv) == qLab && g.Degree(vv) >= qDeg && profileSubsumed(g, vv, prof) {
					cand.Add(u, vv)
				}
			}
		} else {
			// A data vertex v survives iff, for every processed neighbor u'
			// of u, v is adjacent to some candidate in Φ(u'). One epoch per
			// u'; chain[v] counts how many consecutive epochs marked v.
			for i, up := range before {
				prevEpoch := epoch
				epoch++
				if i == len(before)-1 {
					marked = marked[:0]
				}
				for _, vp := range cand.Sets[up] {
					for _, w := range g.NeighborsWithLabel(vp, qLab) {
						if lastEpoch[w] == epoch {
							continue // already counted for this u'
						}
						if i == 0 {
							chain[w] = 1
						} else if lastEpoch[w] == prevEpoch && chain[w] == int32(i) {
							chain[w] = int32(i + 1)
						} else {
							continue // missed an earlier u'
						}
						lastEpoch[w] = epoch
						if i == len(before)-1 {
							marked = append(marked, w)
						}
					}
				}
			}
			need := int32(len(before))
			for _, vv := range marked {
				if chain[vv] == need && g.Degree(vv) >= qDeg {
					cand.Add(u, vv)
				}
			}
		}
		if cand.Count(u) == 0 {
			emitStageCounts(ex, obs.StageCFLTopDown, cand)
			return cand
		}
		processed[u] = true
	}
	emitStageCounts(ex, obs.StageCFLTopDown, cand)

	if !bottomUp {
		return cand
	}
	snap := debugSnapshotCounts(cand) // sqdebug: stage monotonicity baseline

	// Bottom-up refinement: in reverse BFS order, keep v ∈ Φ(u) only if for
	// every neighbor u' processed after u (tree children and forward
	// non-tree edges), N(v) ∩ Φ(u') ≠ ∅.
	pos := make([]int, nq)
	for i, u := range tree.Order {
		pos[u] = i
	}
	for i := nq - 1; i >= 0; i-- {
		if opts.expired() {
			cand.Aborted = true
			return cand
		}
		u := tree.Order[i]
		var after []graph.VertexID
		for _, up := range q.Neighbors(u) {
			if pos[up] > i {
				after = append(after, up)
			}
		}
		if len(after) == 0 {
			continue
		}
		cand.Retain(u, func(v graph.VertexID) bool {
			for _, up := range after {
				ok := false
				for _, w := range g.NeighborsWithLabel(v, q.Label(up)) {
					if cand.Contains(up, w) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
			return true
		})
		if cand.Count(u) == 0 {
			emitStageCounts(ex, obs.StageCFLBottomUp, cand)
			return cand
		}
	}
	emitStageCounts(ex, obs.StageCFLBottomUp, cand)
	debugCheckMonotone("CFL bottom-up", snap, cand)
	return cand
}

// cflRoot selects the BFS root as the query vertex minimizing the ratio of
// label-and-degree-qualified data vertices to its degree, CFL's root
// selection rule.
func cflRoot(q, g *graph.Graph) graph.VertexID {
	best := graph.VertexID(0)
	bestScore := -1.0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.VertexID(u)
		cnt := 0
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if g.Label(vv) == q.Label(uu) && g.Degree(vv) >= q.Degree(uu) {
				cnt++
			}
		}
		deg := q.Degree(uu)
		if deg == 0 {
			deg = 1
		}
		score := float64(cnt) / float64(deg)
		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = uu
		}
	}
	return best
}

// CFLOrder computes the path-based matching order over the BFS tree rooted
// the same way the filter builds it: decompose q_t into root-to-leaf paths,
// estimate each path's embedding count through the candidate sets, and
// concatenate paths in ascending estimated cost with 2-core paths first.
func CFLOrder(q, g *graph.Graph, cand *Candidates) []graph.VertexID {
	n := q.NumVertices()
	if n == 0 {
		return nil
	}
	root := cflRoot(q, g)
	tree := graph.NewBFSTree(q, root)
	core := q.TwoCore()

	// Enumerate root-to-leaf tree paths.
	var paths [][]graph.VertexID
	var walk func(u graph.VertexID, prefix []graph.VertexID)
	walk = func(u graph.VertexID, prefix []graph.VertexID) {
		prefix = append(prefix, u)
		if len(tree.Children[u]) == 0 {
			paths = append(paths, append([]graph.VertexID(nil), prefix...))
			return
		}
		for _, c := range tree.Children[u] {
			walk(c, prefix)
		}
	}
	walk(root, nil)

	type scored struct {
		path   []graph.VertexID
		cost   float64
		inCore bool
	}
	ranked := make([]scored, len(paths))
	for i, p := range paths {
		ranked[i] = scored{
			path:   p,
			cost:   pathEmbeddingEstimate(g, q, cand, p),
			inCore: pathInCore(core, p),
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].inCore != ranked[j].inCore {
			return ranked[i].inCore // core paths first
		}
		return ranked[i].cost < ranked[j].cost
	})

	order := make([]graph.VertexID, 0, n)
	in := make([]bool, n)
	for _, s := range ranked {
		for _, u := range s.path {
			if !in[u] {
				in[u] = true
				order = append(order, u)
			}
		}
	}
	return order
}

// pathInCore reports whether every non-root vertex of the path lies in the
// query's 2-core.
func pathInCore(core []bool, path []graph.VertexID) bool {
	for _, u := range path[1:] {
		if !core[u] {
			return false
		}
	}
	return len(path) > 1
}

// pathEmbeddingEstimate counts, by dynamic programming over the candidate
// sets, the number of homomorphic embeddings of the tree path — CFL's
// cardinality estimate for ranking paths.
func pathEmbeddingEstimate(g, q *graph.Graph, cand *Candidates, path []graph.VertexID) float64 {
	weight := make([]float64, g.NumVertices())
	cur := append([]graph.VertexID(nil), cand.Sets[path[0]]...)
	for _, v := range cur {
		weight[v] = 1
	}
	for i := 1; i < len(path); i++ {
		u := path[i]
		next := make([]graph.VertexID, 0, len(cur))
		nextWeight := make([]float64, g.NumVertices())
		for _, vp := range cur {
			c := weight[vp]
			for _, w := range g.NeighborsWithLabel(vp, q.Label(u)) {
				if cand.Contains(u, w) {
					if nextWeight[w] == 0 {
						next = append(next, w)
					}
					nextWeight[w] += c
				}
			}
		}
		cur, weight = next, nextWeight
		if len(cur) == 0 {
			return 0
		}
	}
	total := 0.0
	for _, v := range cur {
		total += weight[v]
	}
	return total
}

// CFL bundles the two phases as a preprocessing-enumeration matcher using
// CFL's own path-based ordering.
type CFL struct{}

// Filter runs CFL's preprocessing phase.
func (CFL) Filter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	return CFLFilter(q, g, opts)
}

// Run enumerates embeddings with CFL's filter and path-based order.
func (a CFL) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	cand := CFLFilter(q, g, FilterOptions{Deadline: opts.Deadline})
	if cand.Aborted {
		return Result{Aborted: true}
	}
	if cand.AnyEmpty() {
		return Result{}
	}
	order := CFLOrder(q, g, cand)
	res, err := Enumerate(q, g, cand, order, opts)
	if err != nil {
		panic(err) // BFS-tree path order is connected for connected queries
	}
	return res
}

// FindFirst stops at the first embedding.
func (a CFL) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// CFQL is the paper's new vcFV algorithm: CFL's Filter with GraphQL's
// join-based ordering and enumeration (§III-B), "taking advantage of both
// CFL and GraphQL".
type CFQL struct{}

// Filter runs CFL's preprocessing phase (CFQL's filtering step).
func (CFQL) Filter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	return CFLFilter(q, g, opts)
}

// Run enumerates embeddings with CFL's filter and GraphQL's order.
func (a CFQL) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	cand := CFLFilter(q, g, FilterOptions{Deadline: opts.Deadline})
	if cand.Aborted {
		return Result{Aborted: true}
	}
	if cand.AnyEmpty() {
		return Result{}
	}
	res, err := Enumerate(q, g, cand, GraphQLOrder(q, cand), opts)
	if err != nil {
		panic(err)
	}
	return res
}

// FindFirst stops at the first embedding.
func (a CFQL) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}
