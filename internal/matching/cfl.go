package matching

import (
	"slices"
	"sort"

	"subgraphquery/internal/domain"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// CFL (Bi, Chang, Lin, Qin, Zhang [1]) — the state-of-the-art
// preprocessing-enumeration subgraph matching algorithm at the time of the
// paper. Its two phases, used separately by the vcFV engines:
//
//   - CFLFilter builds a complete candidate vertex set along a BFS tree q_t
//     of the query: top-down generation with backward pruning on non-tree
//     edges, then a bottom-up refinement pass — the CPI construction of the
//     CFL paper, with time O(|E(q)|·|E(G)|) and space O(|V(q)|·|E(G)|).
//   - CFLOrder produces the path-based matching order that prioritizes the
//     query's core structure (2-core): root-to-leaf paths of q_t are ranked
//     by their estimated number of embeddings, core paths first.

// CFLFilter computes candidate sets for q against g under opts. It returns
// early (with some sets possibly empty) as soon as any candidate set
// becomes empty, and aborts (Candidates.Aborted) when opts.Deadline
// passes. With a non-nil opts.Explain, per-query-vertex candidate counts
// are recorded after the label/degree qualification, the top-down
// generation (with backward pruning) and the bottom-up refinement; a nil
// Explain costs a few predictable branches and allocates nothing.
//
// With a non-nil opts.Scratch the pass runs entirely on the arena: the
// returned Candidates is owned by the Scratch and valid until its next
// filter call, and steady-state execution allocates nothing.
func CFLFilter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	cand := cflFilter(q, g, true, opts)
	debugCheckCandidates("CFLFilter", q, g, cand)
	return cand
}

// CFLFilterTopDownOnly is the ablation variant that skips the bottom-up
// refinement pass, isolating its contribution to filtering precision
// (DESIGN.md ablation index).
func CFLFilterTopDownOnly(q, g *graph.Graph, opts FilterOptions) *Candidates {
	cand := cflFilter(q, g, false, opts)
	debugCheckCandidates("CFLFilterTopDownOnly", q, g, cand)
	return cand
}

// emitStageCounts records the current per-vertex candidate counts of one
// filter stage (no-op with a nil Explain; a plain function rather than a
// closure so the nil path stays allocation-free).
func emitStageCounts(ex *obs.Explain, stage string, cand *Candidates) {
	if ex == nil {
		return
	}
	counts := make([]int, len(cand.Sets))
	for u, s := range cand.Sets {
		counts[u] = len(s)
	}
	ex.ObserveStageDense(stage, counts, cand.dom.NData())
}

// nlcCompatible is the label-pair prefilter: it checks, against the data
// graph's neighborhood-frequency table, that every query vertex's NLF
// profile is satisfiable by *some* data vertex — for each (l, c) demand
// of a vertex labeled l1, some l1-labeled data vertex must have at least
// c l-labeled neighbors. Any embedding would exhibit exactly such a
// vertex, so a failed check proves the graph cannot contain q before any
// per-vertex filtering runs. O(Σ_u |profile(u)|) binary searches over the
// per-graph table, no allocation.
func nlcCompatible(q, g *graph.Graph, profs []graph.NLF) bool {
	for u := range profs {
		l1 := q.Label(graph.VertexID(u))
		ok := true
		profs[u].ForEach(func(l graph.Label, c int) bool {
			if g.MaxNeighborsWithLabel(l1, l) < c {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// candVolume estimates the scatter volume of generating one query
// vertex's candidates: the processed neighbors' total candidate count, a
// lower bound on the (candidate, adjacency) pairs both generation paths
// iterate — the input the bits-vs-chain switch is calibrated on.
func candVolume(cand *Candidates, before []graph.VertexID) int {
	vol := 0
	for _, up := range before {
		vol += cand.Count(up)
	}
	return vol
}

// emitLDFCounts records CFL's label-and-degree qualification stage: the
// raw candidate pool size per query vertex before any connectivity
// pruning (explain-only; duplicates cflRoot's scan, off the nil path).
func emitLDFCounts(ex *obs.Explain, q, g *graph.Graph) {
	if ex == nil {
		return
	}
	counts := make([]int, q.NumVertices())
	for u := range counts {
		uu := graph.VertexID(u)
		for _, vv := range g.LabeledVertices(q.Label(uu)) {
			if g.Degree(vv) >= q.Degree(uu) {
				counts[u]++
			}
		}
	}
	ex.ObserveStage(obs.StageCFLLDF, counts)
}

func cflFilter(q, g *graph.Graph, bottomUp bool, opts FilterOptions) *Candidates {
	fault.Inject(fault.PointFilter)
	ex := opts.Explain
	s := opts.Scratch
	if s == nil {
		s = NewScratch()
	}
	nq := q.NumVertices()
	cand := s.candidates(nq, g.NumVertices())
	if nq == 0 {
		return cand
	}
	// Label-pair prefilter: reject the whole graph by its neighborhood
	// frequency table before any per-vertex work. The sets are left empty,
	// which is exactly the "filtered out" signal (AnyEmpty).
	profs := s.profilesFor(q)
	if !nlcCompatible(q, g, profs) {
		ex.ObservePrefilter(true)
		return cand
	}
	ex.ObservePrefilter(false)
	emitLDFCounts(ex, q, g)

	s.ensureCFL(nq, g.NumVertices())
	root := cflRoot(q, g)
	order := s.bfsOrderInto(q, root)
	nd := g.NumVertices()
	bitsVerts, chainVerts := 0, 0

	// Top-down generation along the BFS order. processed[u'] marks query
	// vertices whose candidate sets exist already; for each new u, a data
	// vertex v qualifies if label/degree match and, for *every* processed
	// neighbor u' of u, v is adjacent to some candidate of u' (backward
	// pruning over both tree and non-tree edges).
	for _, u := range order {
		if opts.stop(cand) {
			return cand
		}
		qDeg := q.Degree(u)
		qLab := q.Label(u)
		before := s.adjacent[:0]
		for _, up := range q.Neighbors(u) {
			if s.processed[up] {
				before = append(before, up)
			}
		}
		s.adjacent = before
		if len(before) == 0 {
			// The root: label + degree + neighborhood-label-frequency seed.
			// LabeledVertices is ascending, so Φ(root) is born sorted.
			prof := profs[u]
			for _, vv := range g.LabeledVertices(qLab) {
				if g.Degree(vv) >= qDeg && g.SubsumesProfile(vv, prof) {
					cand.Add(u, vv)
				}
			}
		} else if vol := candVolume(cand, before); domain.UseBitsGenerate(vol, nd) {
			// Dense label: run the backward-pruning intersection on packed
			// bit rows. Scatter each processed neighbor's reachable set
			// into a row and AND them together — one word covers 64 data
			// vertices — then extract survivors in ascending order (the
			// set invariant holds by construction, no sort needed).
			bitsVerts++
			acc, mark := &s.accBits, &s.markBits
			for i, up := range before {
				dst := acc
				if i > 0 {
					dst = mark
				}
				dst.Reset(nd)
				for _, vp := range cand.Sets[up] {
					for _, w := range g.NeighborsWithLabel(vp, qLab) {
						dst.Set(uint32(w))
					}
				}
				if i > 0 {
					acc.And(mark)
				}
			}
			acc.IterateSet(func(w uint32) bool {
				if g.Degree(graph.VertexID(w)) >= qDeg {
					cand.Add(u, graph.VertexID(w))
				}
				return true
			})
		} else {
			// A data vertex v survives iff, for every processed neighbor u'
			// of u, v is adjacent to some candidate in Φ(u'). One epoch per
			// u'; chain[v] counts how many consecutive epochs marked v. The
			// epoch counter is monotonic across the Scratch's whole
			// lifetime, so stale stamps from earlier graphs never match.
			chainVerts++
			marked := s.marked[:0]
			for i, up := range before {
				prevEpoch := s.epoch
				s.epoch++
				epoch := s.epoch
				if i == len(before)-1 {
					marked = marked[:0]
				}
				for _, vp := range cand.Sets[up] {
					for _, w := range g.NeighborsWithLabel(vp, qLab) {
						if s.lastEpoch[w] == epoch {
							continue // already counted for this u'
						}
						if i == 0 {
							s.chain[w] = 1
						} else if s.lastEpoch[w] == prevEpoch && s.chain[w] == int32(i) {
							s.chain[w] = int32(i + 1)
						} else {
							continue // missed an earlier u'
						}
						s.lastEpoch[w] = epoch
						if i == len(before)-1 {
							marked = append(marked, w)
						}
					}
				}
			}
			s.marked = marked
			need := int32(len(before))
			for _, vv := range marked {
				if s.chain[vv] == need && g.Degree(vv) >= qDeg {
					cand.Add(u, vv)
				}
			}
			// marked is in discovery order; restore the ascending-set
			// invariant the enumeration kernel relies on.
			slices.Sort(cand.Sets[u])
		}
		if cand.Count(u) == 0 {
			if ex != nil {
				ex.ObserveDomainRep(bitsVerts, chainVerts)
			}
			emitStageCounts(ex, obs.StageCFLTopDown, cand)
			return cand
		}
		s.processed[u] = true
	}
	ex.ObserveDomainRep(bitsVerts, chainVerts)
	emitStageCounts(ex, obs.StageCFLTopDown, cand)

	if !bottomUp {
		return cand
	}
	snap := debugSnapshotCounts(cand) // sqdebug: stage monotonicity baseline

	// Bottom-up refinement: in reverse BFS order, keep v ∈ Φ(u) only if for
	// every neighbor u' processed after u (tree children and forward
	// non-tree edges), N(v) ∩ Φ(u') ≠ ∅. The retention loop is written out
	// (rather than via Retain's callback) to keep the hot path closure-free.
	for i := nq - 1; i >= 0; i-- {
		if opts.stop(cand) {
			return cand
		}
		u := order[i]
		after := s.adjacent[:0]
		for _, up := range q.Neighbors(u) {
			if s.pos[up] > i {
				after = append(after, up)
			}
		}
		s.adjacent = after
		if len(after) == 0 {
			continue
		}
		kept := cand.Sets[u][:0]
		for _, v := range cand.Sets[u] {
			ok := true
			for _, up := range after {
				found := false
				for _, w := range g.NeighborsWithLabel(v, q.Label(up)) {
					if cand.Contains(up, w) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, v)
			} else {
				cand.clearMember(u, v)
			}
		}
		cand.Sets[u] = kept
		if cand.Count(u) == 0 {
			emitStageCounts(ex, obs.StageCFLBottomUp, cand)
			return cand
		}
	}
	emitStageCounts(ex, obs.StageCFLBottomUp, cand)
	debugCheckMonotone("CFL bottom-up", snap, cand)
	return cand
}

// cflRoot selects the BFS root as the query vertex minimizing the ratio of
// label-and-degree-qualified data vertices to its degree, CFL's root
// selection rule. The per-label vertex index reduces the scan from
// O(|V(q)|·|V(G)|) to the qualified vertices only.
func cflRoot(q, g *graph.Graph) graph.VertexID {
	best := graph.VertexID(0)
	bestScore := -1.0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.VertexID(u)
		cnt := 0
		for _, vv := range g.LabeledVertices(q.Label(uu)) {
			if g.Degree(vv) >= q.Degree(uu) {
				cnt++
			}
		}
		deg := q.Degree(uu)
		if deg == 0 {
			deg = 1
		}
		score := float64(cnt) / float64(deg)
		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = uu
		}
	}
	return best
}

// CFLOrder computes the path-based matching order over the BFS tree rooted
// the same way the filter builds it: decompose q_t into root-to-leaf paths,
// estimate each path's embedding count through the candidate sets, and
// concatenate paths in ascending estimated cost with 2-core paths first.
func CFLOrder(q, g *graph.Graph, cand *Candidates) []graph.VertexID {
	return CFLOrderScratch(q, g, cand, nil)
}

// CFLOrderScratch is CFLOrder running on an arena: the returned order is
// owned by s and valid until its next ordering call. A nil s allocates a
// private arena (identical to CFLOrder).
func CFLOrderScratch(q, g *graph.Graph, cand *Candidates, s *Scratch) []graph.VertexID {
	fault.Inject(fault.PointOrder)
	n := q.NumVertices()
	if n == 0 {
		return nil
	}
	if s == nil {
		s = NewScratch()
	}
	root := cflRoot(q, g)
	tree := graph.NewBFSTree(q, root)
	core := q.TwoCore()

	// Enumerate root-to-leaf tree paths.
	var paths [][]graph.VertexID
	var walk func(u graph.VertexID, prefix []graph.VertexID)
	walk = func(u graph.VertexID, prefix []graph.VertexID) {
		prefix = append(prefix, u)
		if len(tree.Children[u]) == 0 {
			paths = append(paths, append([]graph.VertexID(nil), prefix...))
			return
		}
		for _, c := range tree.Children[u] {
			walk(c, prefix)
		}
	}
	walk(root, nil)

	type scored struct {
		path   []graph.VertexID
		cost   float64
		inCore bool
	}
	ranked := make([]scored, len(paths))
	for i, p := range paths {
		ranked[i] = scored{
			path:   p,
			cost:   pathEmbeddingEstimate(g, q, cand, p, s),
			inCore: pathInCore(core, p),
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].inCore != ranked[j].inCore {
			return ranked[i].inCore // core paths first
		}
		return ranked[i].cost < ranked[j].cost
	})

	order := s.orderBuf[:0]
	in := growBools(&s.orderIn, n)
	for _, sc := range ranked {
		for _, u := range sc.path {
			if !in[u] {
				in[u] = true
				order = append(order, u)
			}
		}
	}
	s.orderBuf = order
	return order
}

// pathInCore reports whether every non-root vertex of the path lies in the
// query's 2-core.
func pathInCore(core []bool, path []graph.VertexID) bool {
	for _, u := range path[1:] {
		if !core[u] {
			return false
		}
	}
	return len(path) > 1
}

// pathEmbeddingEstimate counts, by dynamic programming over the candidate
// sets, the number of homomorphic embeddings of the tree path — CFL's
// cardinality estimate for ranking paths. The per-step weight vectors over
// V(G) ping-pong between two arena buffers that are kept all-zero between
// uses: only the entries actually touched (tracked in the touch lists) are
// cleared, so a step costs O(reached vertices), not O(|V(G)|).
func pathEmbeddingEstimate(g, q *graph.Graph, cand *Candidates, path []graph.VertexID, s *Scratch) float64 {
	n := g.NumVertices()
	wCur, wNext := growZeroFloats(&s.wA, n), growZeroFloats(&s.wB, n)
	tCur, tNext := s.touchA[:0], s.touchB[:0]
	for _, v := range cand.Sets[path[0]] {
		wCur[v] = 1
		tCur = append(tCur, v)
	}
	for i := 1; i < len(path) && len(tCur) > 0; i++ {
		u := path[i]
		lab := q.Label(u)
		tNext = tNext[:0]
		for _, vp := range tCur {
			c := wCur[vp]
			for _, w := range g.NeighborsWithLabel(vp, lab) {
				if cand.Contains(u, w) {
					if wNext[w] == 0 {
						tNext = append(tNext, w)
					}
					wNext[w] += c
				}
			}
		}
		for _, v := range tCur {
			wCur[v] = 0 // restore the all-zero invariant before reuse
		}
		wCur, wNext = wNext, wCur
		tCur, tNext = tNext, tCur
	}
	total := 0.0
	for _, v := range tCur {
		total += wCur[v]
		wCur[v] = 0
	}
	s.wA, s.wB = wCur, wNext
	s.touchA, s.touchB = tCur, tNext
	return total
}

// CFL bundles the two phases as a preprocessing-enumeration matcher using
// CFL's own path-based ordering.
type CFL struct{}

// Filter runs CFL's preprocessing phase.
func (CFL) Filter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	return CFLFilter(q, g, opts)
}

// Run enumerates embeddings with CFL's filter and path-based order.
func (a CFL) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	cand := CFLFilter(q, g, FilterOptions{Deadline: opts.Deadline, Scratch: opts.Scratch})
	if cand.Aborted {
		return Result{Aborted: true}
	}
	if cand.AnyEmpty() {
		return Result{}
	}
	order := CFLOrderScratch(q, g, cand, opts.Scratch)
	res, err := Enumerate(q, g, cand, order, opts)
	if err != nil {
		panic(err) // BFS-tree path order is connected for connected queries
	}
	return res
}

// FindFirst stops at the first embedding.
func (a CFL) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// CFQL is the paper's new vcFV algorithm: CFL's Filter with GraphQL's
// join-based ordering and enumeration (§III-B), "taking advantage of both
// CFL and GraphQL".
type CFQL struct{}

// Filter runs CFL's preprocessing phase (CFQL's filtering step).
func (CFQL) Filter(q, g *graph.Graph, opts FilterOptions) *Candidates {
	return CFLFilter(q, g, opts)
}

// Run enumerates embeddings with CFL's filter and GraphQL's order.
func (a CFQL) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	cand := CFLFilter(q, g, FilterOptions{Deadline: opts.Deadline, Scratch: opts.Scratch})
	if cand.Aborted {
		return Result{Aborted: true}
	}
	if cand.AnyEmpty() {
		return Result{}
	}
	res, err := Enumerate(q, g, cand, GraphQLOrderScratch(q, cand, opts.Scratch), opts)
	if err != nil {
		panic(err)
	}
	return res
}

// FindFirst stops at the first embedding.
func (a CFQL) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}
