package matching

import (
	"unsafe"

	"subgraphquery/internal/domain"
	"subgraphquery/internal/graph"
)

// Element sizes for the memory-footprint accounting, derived from the
// actual types rather than hardcoded so the paper's footprint tables stay
// honest if a representation changes.
const vertexIDBytes = int64(unsafe.Sizeof(graph.VertexID(0)))

// Candidates is the candidate vertex set structure Φ of Definition III.1:
// Sets[u] lists the data vertices that may be matched to query vertex u. A
// filter is correct when its output is *complete*: every data vertex that
// participates in some subgraph isomorphism appears in the respective set.
//
// The filters in this package keep every set ascending by vertex id —
// the invariant the enumeration's sorted-intersection kernel relies on.
// Callers constructing Candidates by hand (tests, external orderings)
// should Add in ascending order or call SortCandidates before Enumerate.
//
// Storage is arena-style: a Candidates owned by a Scratch is reset — not
// re-allocated — between data graphs. Membership lives in a bit-matrix of
// compatibility domains (domain.Matrix, one epoch-stamped row per query
// vertex — O(1) clear) and the per-vertex sets retain their backing
// capacity, so steady-state filtering performs no heap allocation per
// graph. The two representations mirror each other exactly: Sets[u] is
// the sorted-slice view, Domain().Row(u) the packed view, and the
// enumeration picks whichever is cheaper per intersection.
type Candidates struct {
	Sets [][]graph.VertexID

	// Aborted reports that the filtering pass hit its FilterOptions
	// deadline (or cancellation, or memory budget) before completing. The
	// sets are then incomplete and prove nothing: a caller must treat the
	// data graph as timed out rather than pruned (AnyEmpty on an aborted
	// filter is not a filtering condition).
	Aborted bool

	// BudgetExceeded refines Aborted: the pass stopped because the
	// structure outgrew FilterOptions.MemoryBudget, not because time ran
	// out. Callers skip the data graph with a budget error and keep the
	// query going, instead of reporting a timeout.
	BudgetExceeded bool

	// dom is the bit-matrix mirror of Sets: row u holds the same members
	// as Sets[u], used for O(1) membership tests during refinement and as
	// the probe side of the enumeration's representation switch.
	dom domain.Matrix
}

// NewCandidates returns an empty candidate structure for a query with
// numQuery vertices against a data graph with numData vertices.
func NewCandidates(numQuery, numData int) *Candidates {
	c := &Candidates{}
	c.reset(numQuery, numData)
	return c
}

// reset clears c and shapes it for a numQuery-vertex query against a
// numData-vertex data graph, reusing all retained capacity: set backing
// arrays keep their storage and the membership bitsets clear by epoch
// bump. This is the per-data-graph entry point of the scratch arena.
func (c *Candidates) reset(numQuery, numData int) {
	c.Aborted = false
	c.BudgetExceeded = false
	c.dom.Reset(numQuery, numData)
	if cap(c.Sets) < numQuery {
		grownSets := make([][]graph.VertexID, numQuery)
		copy(grownSets, c.Sets[:cap(c.Sets)])
		c.Sets = grownSets
	} else {
		c.Sets = c.Sets[:numQuery]
	}
	for i := range c.Sets {
		c.Sets[i] = c.Sets[i][:0]
	}
}

// Domain returns the bit-matrix view of Φ: row u mirrors Sets[u]. Callers
// that mutate rows through it must keep Sets in sync (the filters and the
// enumeration do; sqdebug builds assert the mirror).
func (c *Candidates) Domain() *domain.Matrix { return &c.dom }

// Add inserts data vertex v into Φ(u) if not already present.
func (c *Candidates) Add(u graph.VertexID, v graph.VertexID) {
	if c.dom.Add(int(u), uint32(v)) {
		c.Sets[u] = append(c.Sets[u], v)
	}
}

// Contains reports whether v ∈ Φ(u).
func (c *Candidates) Contains(u, v graph.VertexID) bool {
	return c.dom.Contains(int(u), uint32(v))
}

// Count returns |Φ(u)|.
func (c *Candidates) Count(u graph.VertexID) int { return len(c.Sets[u]) }

// AnyEmpty reports whether some query vertex has an empty candidate set; by
// Proposition III.1 the data graph then cannot contain the query, which is
// the filtering condition of the vcFV framework (Algorithm 2, line 5).
func (c *Candidates) AnyEmpty() bool {
	for _, s := range c.Sets {
		if len(s) == 0 {
			return true
		}
	}
	return false
}

// Retain keeps in Φ(u) only the vertices for which keep returns true.
func (c *Candidates) Retain(u graph.VertexID, keep func(v graph.VertexID) bool) {
	s := c.Sets[u][:0]
	for _, v := range c.Sets[u] {
		if keep(v) {
			s = append(s, v)
		} else {
			c.dom.Remove(int(u), uint32(v))
		}
	}
	c.Sets[u] = s
}

// clearMember drops v's membership bit for u. The closure-free retention
// loops on the filter hot paths rebuild Sets[u] in place and call this for
// each dropped vertex, exactly what Retain does without the callback.
func (c *Candidates) clearMember(u, v graph.VertexID) {
	c.dom.Remove(int(u), uint32(v))
}

// TotalSize returns the sum of candidate set sizes — the live candidate
// count whose byte cost the paper reports as the memory footprint of vcFV
// algorithms. Arena-retained capacity beyond the live sets is excluded;
// see ReservedBytes.
func (c *Candidates) TotalSize() int {
	total := 0
	for _, s := range c.Sets {
		total += len(s)
	}
	return total
}

// MemoryFootprint returns the live byte size of the candidate vertex sets
// plus their membership bitsets — the auxiliary data structure cost of a
// vcFV algorithm on one data graph (space complexity O(|V(q)|·|V(G)|) for
// the bitsets and O(|V(q)|·|E(G)|) worst case for the sets). For an
// arena-backed Candidates this is what the structure logically holds for
// the current data graph, not what the arena has reserved; ReservedBytes
// reports the latter.
func (c *Candidates) MemoryFootprint() int64 {
	var b int64
	for _, s := range c.Sets {
		b += int64(len(s)) * vertexIDBytes
	}
	return b + c.dom.LiveBytes()
}

// ReservedBytes returns the bytes pinned by the backing arrays regardless
// of the current data graph — the arena's actual resident cost, which
// after warm-up is sized by the largest graph seen. Always ≥
// MemoryFootprint.
func (c *Candidates) ReservedBytes() int64 {
	var b int64
	sets := c.Sets[:cap(c.Sets)]
	for _, s := range sets {
		b += int64(cap(s)) * vertexIDBytes
	}
	return b + c.dom.ReservedBytes()
}
