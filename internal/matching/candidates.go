package matching

import "subgraphquery/internal/graph"

// Candidates is the candidate vertex set structure Φ of Definition III.1:
// Sets[u] lists the data vertices that may be matched to query vertex u. A
// filter is correct when its output is *complete*: every data vertex that
// participates in some subgraph isomorphism appears in the respective set.
type Candidates struct {
	Sets [][]graph.VertexID

	// Aborted reports that the filtering pass hit its FilterOptions
	// deadline before completing. The sets are then incomplete and prove
	// nothing: a caller must treat the data graph as timed out rather than
	// pruned (AnyEmpty on an aborted filter is not a filtering condition).
	Aborted bool

	// member[u] is a bitset over data vertices mirroring Sets[u], used for
	// O(1) membership tests during refinement and enumeration.
	member []bitset
	nData  int
}

// NewCandidates returns an empty candidate structure for a query with
// numQuery vertices against a data graph with numData vertices.
func NewCandidates(numQuery, numData int) *Candidates {
	c := &Candidates{
		Sets:   make([][]graph.VertexID, numQuery),
		member: make([]bitset, numQuery),
		nData:  numData,
	}
	for i := range c.member {
		c.member[i] = newBitset(numData)
	}
	return c
}

// Add inserts data vertex v into Φ(u) if not already present.
func (c *Candidates) Add(u graph.VertexID, v graph.VertexID) {
	if !c.member[u].get(uint32(v)) {
		c.member[u].set(uint32(v))
		c.Sets[u] = append(c.Sets[u], v)
	}
}

// Contains reports whether v ∈ Φ(u).
func (c *Candidates) Contains(u, v graph.VertexID) bool {
	return c.member[u].get(uint32(v))
}

// Count returns |Φ(u)|.
func (c *Candidates) Count(u graph.VertexID) int { return len(c.Sets[u]) }

// AnyEmpty reports whether some query vertex has an empty candidate set; by
// Proposition III.1 the data graph then cannot contain the query, which is
// the filtering condition of the vcFV framework (Algorithm 2, line 5).
func (c *Candidates) AnyEmpty() bool {
	for _, s := range c.Sets {
		if len(s) == 0 {
			return true
		}
	}
	return false
}

// Retain keeps in Φ(u) only the vertices for which keep returns true.
func (c *Candidates) Retain(u graph.VertexID, keep func(v graph.VertexID) bool) {
	s := c.Sets[u][:0]
	for _, v := range c.Sets[u] {
		if keep(v) {
			s = append(s, v)
		} else {
			c.member[u].clear(uint32(v))
		}
	}
	c.Sets[u] = s
}

// TotalSize returns the sum of candidate set sizes, the quantity whose byte
// cost the paper reports as the memory footprint of vcFV algorithms.
func (c *Candidates) TotalSize() int {
	total := 0
	for _, s := range c.Sets {
		total += len(s)
	}
	return total
}

// MemoryFootprint returns the byte size of the candidate vertex sets plus
// their membership bitsets — the auxiliary data structure cost of a vcFV
// algorithm on one data graph (space complexity O(|V(q)|·|V(G)|) for the
// bitsets and O(|V(q)|·|E(G)|) worst case for the sets).
func (c *Candidates) MemoryFootprint() int64 {
	var b int64
	for _, s := range c.Sets {
		b += int64(len(s)) * 4
	}
	for _, m := range c.member {
		b += int64(len(m)) * 8
	}
	return b
}

// bitset is a fixed-size bit vector over data vertex ids.
type bitset []uint64

func newBitset(n int) bitset       { return make(bitset, (n+63)/64) }
func (b bitset) get(i uint32) bool { return b[i>>6]&(1<<(i&63)) != 0 }
func (b bitset) set(i uint32)      { b[i>>6] |= 1 << (i & 63) }
func (b bitset) clear(i uint32)    { b[i>>6] &^= 1 << (i & 63) }
