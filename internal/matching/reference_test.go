package matching

import (
	"math/rand"

	"subgraphquery/internal/graph"
)

// bruteForceCount enumerates all subgraph isomorphisms from q to g by plain
// backtracking over all injective label-preserving assignments. It is the
// ground truth every algorithm in this package is checked against.
func bruteForceCount(q, g *graph.Graph) uint64 {
	n := q.NumVertices()
	if n == 0 {
		return 1
	}
	mapping := make([]int32, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, g.NumVertices())
	var count uint64
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			count++
			return
		}
		uu := graph.VertexID(u)
		for v := 0; v < g.NumVertices(); v++ {
			if used[v] || g.Label(graph.VertexID(v)) != q.Label(uu) {
				continue
			}
			ok := true
			for _, w := range q.Neighbors(uu) {
				if mapping[w] >= 0 && !g.HasEdge(graph.VertexID(v), graph.VertexID(mapping[w])) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[u] = int32(v)
			used[v] = true
			rec(u + 1)
			mapping[u] = -1
			used[v] = false
		}
	}
	rec(0)
	return count
}

// bruteForceEmbeddings returns every embedding as an explicit mapping slice.
func bruteForceEmbeddings(q, g *graph.Graph) [][]graph.VertexID {
	var out [][]graph.VertexID
	n := q.NumVertices()
	mapping := make([]int32, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, g.NumVertices())
	var rec func(u int)
	rec = func(u int) {
		if u == n {
			emb := make([]graph.VertexID, n)
			for i, v := range mapping {
				emb[i] = graph.VertexID(v)
			}
			out = append(out, emb)
			return
		}
		uu := graph.VertexID(u)
		for v := 0; v < g.NumVertices(); v++ {
			if used[v] || g.Label(graph.VertexID(v)) != q.Label(uu) {
				continue
			}
			ok := true
			for _, w := range q.Neighbors(uu) {
				if mapping[w] >= 0 && !g.HasEdge(graph.VertexID(v), graph.VertexID(mapping[w])) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[u] = int32(v)
			used[v] = true
			rec(u + 1)
			mapping[u] = -1
			used[v] = false
		}
	}
	rec(0)
	return out
}

// randomConnectedGraph builds a random connected labeled graph.
func randomConnectedGraph(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	if n <= 0 {
		n = 1
	}
	lab := make([]graph.Label, n)
	for i := range lab {
		lab[i] = graph.Label(r.Intn(labels))
	}
	seen := map[[2]graph.VertexID]bool{}
	var edges []graph.Edge
	add := func(u, v graph.VertexID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]graph.VertexID{u, v}] {
			return
		}
		seen[[2]graph.VertexID{u, v}] = true
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	for v := 1; v < n; v++ {
		add(graph.VertexID(r.Intn(v)), graph.VertexID(v))
	}
	for i := 0; i < extraEdges; i++ {
		add(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
	}
	return graph.MustFromEdges(lab, edges)
}

// randomQueryFrom extracts a connected query of roughly qEdges edges from g
// by a random walk, so that at least one embedding is guaranteed to exist.
func randomQueryFrom(r *rand.Rand, g *graph.Graph, qEdges int) *graph.Graph {
	start := graph.VertexID(r.Intn(g.NumVertices()))
	chosen := map[graph.VertexID]graph.VertexID{start: 0} // data -> query id
	labels := []graph.Label{g.Label(start)}
	seenEdge := map[[2]graph.VertexID]bool{}
	var edges []graph.Edge
	cur := start
	for steps := 0; len(edges) < qEdges && steps < 20*qEdges+50; steps++ {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		next := nbrs[r.Intn(len(nbrs))]
		a, b := cur, next
		if a > b {
			a, b = b, a
		}
		if !seenEdge[[2]graph.VertexID{a, b}] {
			seenEdge[[2]graph.VertexID{a, b}] = true
			if _, ok := chosen[next]; !ok {
				chosen[next] = graph.VertexID(len(labels))
				labels = append(labels, g.Label(next))
			}
			edges = append(edges, graph.Edge{U: chosen[cur], V: chosen[next]})
		}
		cur = next
	}
	if len(edges) == 0 {
		// Degenerate fallback: single edge if any exists.
		if g.NumEdges() > 0 {
			e := g.Edges()[0]
			return graph.MustFromEdges(
				[]graph.Label{g.Label(e.U), g.Label(e.V)},
				[]graph.Edge{{U: 0, V: 1}},
			)
		}
		return graph.MustFromEdges([]graph.Label{g.Label(start)}, nil)
	}
	return graph.MustFromEdges(labels, edges)
}
