package matching

import (
	"math/rand"
	"slices"
	"testing"

	"subgraphquery/internal/graph"
)

// TestScratchFilterEquivalence: filtering and ordering through a shared
// Scratch must produce exactly the candidate sets and orders of the
// scratch-free path, across many graphs reusing one arena — the property
// that makes the arena transparent to the engines.
func TestScratchFilterEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := NewScratch()
	for trial := 0; trial < 120; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(16), r.Intn(20), 1+r.Intn(4))
		q := randomQueryFrom(r, g, 1+r.Intn(7))

		for name, run := range map[string]func(opts FilterOptions) *Candidates{
			"CFL":     func(opts FilterOptions) *Candidates { return CFLFilter(q, g, opts) },
			"GraphQL": func(opts FilterOptions) *Candidates { return GraphQLFilter(q, g, opts) },
		} {
			plain := run(FilterOptions{})
			pooled := run(FilterOptions{Scratch: s})
			for u := 0; u < q.NumVertices(); u++ {
				uu := graph.VertexID(u)
				if !slices.Equal(plain.Sets[uu], pooled.Sets[uu]) {
					t.Fatalf("trial %d: %s Sets[%d] differ with scratch: %v vs %v",
						trial, name, u, pooled.Sets[uu], plain.Sets[uu])
				}
			}
			// Orders depend only on the candidate sets (and the graphs),
			// so they must agree too.
			var plainOrder, pooledOrder []graph.VertexID
			if name == "CFL" {
				plainOrder = CFLOrder(q, g, plain)
				pooledOrder = CFLOrderScratch(q, g, pooled, s)
			} else {
				plainOrder = GraphQLOrder(q, plain)
				pooledOrder = GraphQLOrderScratch(q, pooled, s)
			}
			if !slices.Equal(plainOrder, pooledOrder) {
				t.Fatalf("trial %d: %s order differs with scratch: %v vs %v",
					trial, name, pooledOrder, plainOrder)
			}
		}
	}
}

// TestScratchEnumerateEquivalence: enumeration through a shared Scratch
// must count exactly the embeddings of the scratch-free path.
func TestScratchEnumerateEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	s := NewScratch()
	for trial := 0; trial < 120; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(14), r.Intn(18), 1+r.Intn(4))
		q := randomQueryFrom(r, g, 1+r.Intn(6))

		cand := CFLFilter(q, g, FilterOptions{})
		if cand.AnyEmpty() {
			continue
		}
		order := GraphQLOrder(q, cand)
		plain, err := Enumerate(q, g, cand, order, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := Enumerate(q, g, cand, order, Options{Scratch: s})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Embeddings != pooled.Embeddings {
			t.Fatalf("trial %d: embeddings differ with scratch: %d vs %d",
				trial, pooled.Embeddings, plain.Embeddings)
		}
	}
}

// TestScratchPoolReuse: acquire/release must hand back a usable arena (the
// pool may or may not recycle the same object; both are correct).
func TestScratchPoolReuse(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	g := randomConnectedGraph(r, 20, 30, 3)
	q := randomQueryFrom(r, g, 5)
	want := CFLFilter(q, g, FilterOptions{})
	for i := 0; i < 10; i++ {
		s := AcquireScratch()
		got := CFLFilter(q, g, FilterOptions{Scratch: s})
		for u := 0; u < q.NumVertices(); u++ {
			uu := graph.VertexID(u)
			if !slices.Equal(got.Sets[uu], want.Sets[uu]) {
				t.Fatalf("round %d: Sets[%d] = %v, want %v", i, u, got.Sets[uu], want.Sets[uu])
			}
		}
		ReleaseScratch(s)
	}
}

// skipIfDebugInvariants: the sqdebug invariant checkers snapshot candidate
// sets to verify refinement monotonicity, which allocates by design — the
// zero-alloc contract applies to production builds only.
func skipIfDebugInvariants(t *testing.T) {
	t.Helper()
	if debugInvariants {
		t.Skip("sqdebug invariant checks allocate; zero-alloc contract is for production builds")
	}
}

// TestCFLFilterZeroAlloc is the PR's acceptance property: with a shared
// Scratch, the steady-state per-data-graph filter allocates nothing. The
// warm-up pass sizes every grow-only buffer; the measured passes then reuse
// the footprint.
func TestCFLFilterZeroAlloc(t *testing.T) {
	skipIfDebugInvariants(t)
	r := rand.New(rand.NewSource(45))
	// A few graphs of different sizes, largest first seen during warm-up,
	// so steady state exercises both shrink and regrow of the arena.
	graphs := []*graph.Graph{
		randomConnectedGraph(r, 120, 200, 4),
		randomConnectedGraph(r, 40, 60, 4),
		randomConnectedGraph(r, 80, 120, 4),
	}
	q := randomQueryFrom(r, graphs[0], 6)
	s := NewScratch()
	for _, g := range graphs { // warm-up: grow the arena to its high-water mark
		CFLFilter(q, g, FilterOptions{Scratch: s})
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, g := range graphs {
			cand := CFLFilter(q, g, FilterOptions{Scratch: s})
			if cand.Aborted {
				t.Fatal("unexpected abort")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state CFLFilter allocated %v times per run, want 0", allocs)
	}
}

// TestGraphQLFilterZeroAlloc: same property for the GraphQL filter, whose
// refinement stage exercises the bipartite matcher and adjacency rows.
func TestGraphQLFilterZeroAlloc(t *testing.T) {
	skipIfDebugInvariants(t)
	r := rand.New(rand.NewSource(46))
	graphs := []*graph.Graph{
		randomConnectedGraph(r, 100, 160, 3),
		randomConnectedGraph(r, 50, 80, 3),
	}
	q := randomQueryFrom(r, graphs[0], 5)
	s := NewScratch()
	for _, g := range graphs {
		GraphQLFilter(q, g, FilterOptions{Scratch: s})
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, g := range graphs {
			GraphQLFilter(q, g, FilterOptions{Scratch: s})
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state GraphQLFilter allocated %v times per run, want 0", allocs)
	}
}

// TestEnumerateZeroAllocSteadyState: the full per-graph pipeline — filter,
// order, enumerate to the first embedding — allocates nothing in steady
// state with a shared arena. This is the loop body of core's vcFV engines.
func TestEnumerateZeroAllocSteadyState(t *testing.T) {
	skipIfDebugInvariants(t)
	r := rand.New(rand.NewSource(47))
	g := randomConnectedGraph(r, 80, 140, 3)
	q := randomQueryFrom(r, g, 5)
	s := NewScratch()
	pipeline := func() {
		cand := CFLFilter(q, g, FilterOptions{Scratch: s})
		if cand.AnyEmpty() {
			return
		}
		order := GraphQLOrderScratch(q, cand, s)
		if _, err := Enumerate(q, g, cand, order, Options{Limit: 1, Scratch: s}); err != nil {
			t.Fatal(err)
		}
	}
	pipeline() // warm-up
	if allocs := testing.AllocsPerRun(50, pipeline); allocs != 0 {
		t.Fatalf("steady-state filter+order+enumerate allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkScratchPipeline measures the per-graph loop body of the vcFV
// engines — filter, order, enumerate-first — with a pooled arena versus
// the allocate-per-call path. The allocs/op column is the contract: 0 for
// the pooled variant.
func BenchmarkScratchPipeline(bm *testing.B) {
	r := rand.New(rand.NewSource(49))
	g := randomConnectedGraph(r, 80, 140, 3)
	q := randomQueryFrom(r, g, 5)

	run := func(bm *testing.B, s *Scratch) {
		bm.ReportAllocs()
		for i := 0; i < bm.N; i++ {
			cand := CFLFilter(q, g, FilterOptions{Scratch: s})
			if cand.AnyEmpty() {
				continue
			}
			var order []graph.VertexID
			if s != nil {
				order = GraphQLOrderScratch(q, cand, s)
			} else {
				order = GraphQLOrder(q, cand)
			}
			if _, err := Enumerate(q, g, cand, order, Options{Limit: 1, Scratch: s}); err != nil {
				bm.Fatal(err)
			}
		}
	}
	bm.Run("pooled", func(bm *testing.B) {
		s := NewScratch()
		run(bm, s) // first iteration warms the arena; N amortizes it away
	})
	bm.Run("private", func(bm *testing.B) {
		run(bm, nil)
	})
}

// TestCandidatesMemoryAccounting: MemoryFootprint reports live bytes only,
// ReservedBytes at least as much, and a small query on a big arena must not
// inherit the big query's live cost.
func TestCandidatesMemoryAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	big := randomConnectedGraph(r, 200, 300, 3)
	small := randomConnectedGraph(r, 10, 12, 3)
	q := randomQueryFrom(r, big, 6)
	s := NewScratch()

	candBig := CFLFilter(q, big, FilterOptions{Scratch: s})
	liveBig := candBig.MemoryFootprint()
	if liveBig <= 0 {
		t.Fatalf("big-graph live footprint = %d, want > 0", liveBig)
	}
	if rb := candBig.ReservedBytes(); rb < liveBig {
		t.Fatalf("ReservedBytes %d < MemoryFootprint %d", rb, liveBig)
	}

	qs := randomQueryFrom(r, small, 2)
	candSmall := CFLFilter(qs, small, FilterOptions{Scratch: s})
	liveSmall := candSmall.MemoryFootprint()
	if liveSmall >= liveBig {
		t.Fatalf("small-graph live footprint %d not below big-graph %d despite arena reuse", liveSmall, liveBig)
	}
	if rb := candSmall.ReservedBytes(); rb < liveBig {
		// The arena still pins the big graph's storage; reserved must say so.
		t.Fatalf("ReservedBytes %d lost the pinned high-water mark %d", rb, liveBig)
	}
}
