package matching

import (
	"slices"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/graph"
)

// TurboIso (Han, Lee and Lee [11]) — the third preprocessing-enumeration
// subgraph matching algorithm the paper names alongside GraphQL and CFL.
// Its distinguishing ideas, implemented here:
//
//   - Start vertex selection by minimum freq(L(u))/deg(u) rank.
//   - Candidate region exploration: for each data vertex matching the start
//     vertex, a DFS along the query's BFS tree collects the per-query-vertex
//     candidate sets local to that region; regions that fail to cover some
//     query vertex are rejected wholesale before any enumeration.
//   - Per-region matching order by ascending region candidate counts.
//
// The NEC (neighborhood equivalence class) combine-and-permute optimization
// of the original is not implemented; each embedding is enumerated
// explicitly. This keeps result semantics identical to the other matchers.
type TurboIso struct{}

// Run enumerates subgraph isomorphisms from q to g under opts.
func (a TurboIso) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	if q.NumVertices() > g.NumVertices() || q.NumEdges() > g.NumEdges() {
		return Result{}
	}

	start := turboStartVertex(q, g)
	tree := graph.NewBFSTree(q, start)

	var total Result
	sb := newBudget(&opts)
	// Region enumerations can be individually tiny; check the deadline and
	// cancellation between regions too, not only inside the search.
	regionCheck := budget.Checkpoint{Deadline: opts.Deadline, Cancel: opts.Cancel, Stride: budget.GraphStride}
	prof := graph.NLFOf(q, start)
	remaining := opts.Limit

	for v := 0; v < g.NumVertices(); v++ {
		vs := graph.VertexID(v)
		if regionCheck.Tick() {
			total.Aborted = true
			break
		}
		if g.Label(vs) != q.Label(start) || g.Degree(vs) < q.Degree(start) {
			continue
		}
		if !g.SubsumesProfile(vs, prof) {
			continue
		}
		region := exploreRegion(q, g, tree, vs)
		if region == nil {
			continue
		}
		order := regionOrder(q, tree, region)
		sub := opts
		sub.Limit = remaining
		sub.StepBudget = 0
		sub.Deadline = opts.Deadline
		// Thread the global step budget through regions.
		if opts.StepBudget != 0 {
			if sb.steps >= opts.StepBudget {
				total.Aborted = true
				break
			}
			sub.StepBudget = opts.StepBudget - sb.steps
		}
		r, err := Enumerate(q, g, region, order, sub)
		if err != nil {
			panic(err) // BFS-tree orders are connected for connected queries
		}
		total.Embeddings += r.Embeddings
		sb.steps += r.Steps
		total.Steps = sb.steps
		if r.Stopped {
			total.Stopped = true
			break
		}
		if r.Aborted {
			total.Aborted = true
			break
		}
		if opts.Limit != 0 {
			if r.Embeddings >= remaining {
				break
			}
			remaining -= r.Embeddings
		}
	}
	total.Steps = sb.steps
	return total
}

// FindFirst stops at the first embedding.
func (a TurboIso) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// turboStartVertex ranks query vertices by freq(g, L(u)) / deg(u) and
// returns the minimum — rare labels and high degrees first.
func turboStartVertex(q, g *graph.Graph) graph.VertexID {
	best := graph.VertexID(0)
	bestScore := -1.0
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.VertexID(u)
		deg := q.Degree(uu)
		if deg == 0 {
			deg = 1
		}
		score := float64(g.LabelFrequency(q.Label(uu))) / float64(deg)
		if bestScore < 0 || score < bestScore {
			bestScore = score
			best = uu
		}
	}
	return best
}

// exploreRegion collects, for every query vertex, the candidate data
// vertices reachable from vs along the query BFS tree with label and degree
// filtering — TurboIso's candidate region. Returns nil if some query vertex
// has no candidates in the region (the region cannot contain an embedding).
func exploreRegion(q, g *graph.Graph, tree *graph.BFSTree, vs graph.VertexID) *Candidates {
	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	cand.Add(tree.Root, vs)
	for _, u := range tree.Order {
		if u == tree.Root {
			continue
		}
		parent := graph.VertexID(tree.Parent[u])
		qDeg := q.Degree(u)
		for _, vp := range cand.Sets[parent] {
			for _, w := range g.NeighborsWithLabel(vp, q.Label(u)) {
				if g.Degree(w) >= qDeg {
					cand.Add(u, w)
				}
			}
		}
		if cand.Count(u) == 0 {
			return nil
		}
		// Region exploration adds in discovery order; restore the
		// ascending-set invariant Enumerate's kernel requires.
		slices.Sort(cand.Sets[u])
	}
	return cand
}

// regionOrder orders the query vertices by ascending region candidate
// count, repaired to stay connected (every vertex after the first has an
// earlier query neighbor). The root always comes first: its region
// candidate set is the single start vertex.
func regionOrder(q *graph.Graph, tree *graph.BFSTree, region *Candidates) []graph.VertexID {
	n := q.NumVertices()
	order := make([]graph.VertexID, 0, n)
	in := make([]bool, n)
	order = append(order, tree.Root)
	in[tree.Root] = true
	for len(order) < n {
		best := graph.VertexID(0)
		have := false
		for u := 0; u < n; u++ {
			uu := graph.VertexID(u)
			if in[u] {
				continue
			}
			adjacent := false
			for _, w := range q.Neighbors(uu) {
				if in[w] {
					adjacent = true
					break
				}
			}
			if !adjacent {
				continue
			}
			if !have || region.Count(uu) < region.Count(best) ||
				(region.Count(uu) == region.Count(best) && uu < best) {
				best = uu
				have = true
			}
		}
		if !have { // disconnected query: take any remaining vertex
			for u := 0; u < n; u++ {
				if !in[u] {
					best = graph.VertexID(u)
					break
				}
			}
		}
		in[best] = true
		order = append(order, best)
	}
	return order
}
