// Package matching implements the subgraph isomorphism and subgraph matching
// algorithms the paper studies: the direct-enumeration baselines Ullmann and
// VF2, and the preprocessing-enumeration algorithms GraphQL and CFL, whose
// Filter (preprocessing) and Verify (enumeration) phases are exposed
// separately so the query engines in internal/core can recombine them —
// exactly how the paper derives CFQL (CFL's Filter + GraphQL's Verify).
//
// All algorithms operate on vertex-labeled undirected graphs and find
// subgraph isomorphisms as defined in Definition II.1: injective mappings
// preserving labels and edges.
package matching

import (
	"sync/atomic"
	"time"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// Options bounds an enumeration. The zero value means "find everything with
// no limits", which is rarely what a caller wants: subgraph query
// verification passes Limit=1, and the experiment harness sets deadlines to
// emulate the paper's 10-minute per-query budget.
type Options struct {
	// Limit stops the enumeration after this many embeddings have been
	// found. 0 means unlimited. Verification (the Verify function of the
	// paper's Algorithm 2) uses Limit = 1.
	Limit uint64

	// Deadline aborts the enumeration when exceeded. The zero time means no
	// deadline. The deadline is checked every few thousand recursion steps,
	// so overshoot is bounded and cheap.
	Deadline time.Time

	// Cancel aborts the enumeration cooperatively when closed
	// (context-compatible: pass ctx.Done()). It is polled at the same
	// stride as Deadline, so a cancelled search returns promptly with
	// Aborted set. nil disables the check at no cost.
	Cancel <-chan struct{}

	// StepBudget aborts after this many recursion steps, a deterministic
	// alternative to Deadline for tests. 0 means unlimited.
	StepBudget uint64

	// Progress, when non-nil, receives the enumeration step count in
	// budget-checkpoint-stride batches (see budget.Checkpoint.Progress) —
	// live progress for in-flight inspection at one atomic add per stride
	// and zero allocations. nil disables the flush at no cost.
	Progress *atomic.Uint64

	// OnEmbedding, when non-nil, receives each found embedding: mapping[u]
	// is the data vertex matched to query vertex u. The slice is reused
	// between calls; callers must copy it to retain it. Returning false
	// stops the enumeration early.
	OnEmbedding func(mapping []graph.VertexID) bool

	// Scratch, when non-nil, supplies the arena for all enumeration state
	// (and, through the matcher Run methods, the filter and ordering
	// passes). The arena must not be shared between goroutines. nil
	// allocates private state per call, the historic behavior.
	Scratch *Scratch
}

// FilterOptions bounds and instruments one filtering pass — the
// preprocessing phase a vcFV engine runs per candidate data graph. The
// zero value filters to completion with no instrumentation, the historic
// behavior.
type FilterOptions struct {
	// Deadline aborts the filtering pass when exceeded. The returned
	// Candidates then has Aborted set and is incomplete: callers must treat
	// the data graph as timed out, never as filtered out. The zero time
	// disables the check.
	Deadline time.Time

	// Cancel aborts the filtering pass cooperatively when closed
	// (context-compatible: pass ctx.Done()), with the same Aborted
	// semantics as Deadline. nil disables the check at no cost.
	Cancel <-chan struct{}

	// MemoryBudget bounds the live byte footprint of the candidate
	// structure under construction (Candidates.MemoryFootprint). When a
	// stage boundary finds the structure over budget, the pass stops with
	// both Aborted and BudgetExceeded set on the returned Candidates:
	// callers must skip the data graph with a budget error rather than
	// treat it as timed out or filtered out. 0 disables the check.
	MemoryBudget int64

	// Rounds bounds GraphQL's pseudo-isomorphism refinement: 0 selects
	// DefaultRefinementRounds, negative disables refinement (the
	// profile-only ablation). CFL's filter ignores it.
	Rounds int

	// Explain, when non-nil, records per-stage candidate counts,
	// refinement rounds and semi-perfect rejections. nil collects nothing
	// and costs nothing on the hot path.
	Explain *obs.Explain

	// Scratch, when non-nil, supplies the reusable arena the pass runs on.
	// The returned Candidates is then owned by the Scratch and valid only
	// until its next filter call; steady-state filtering allocates
	// nothing. The arena must not be shared between goroutines. nil
	// allocates private state per call, the historic behavior.
	Scratch *Scratch
}

// expired reports whether the filtering deadline has passed or the pass
// was cancelled. It is called once per query vertex per stage, so the
// time syscall and channel poll cost is bounded by |V(q)|, not by the
// data graph.
func (o *FilterOptions) expired() bool {
	if budget.Cancelled(o.Cancel) {
		return true
	}
	return !o.Deadline.IsZero() && time.Now().After(o.Deadline)
}

// overBudget marks cand budget-exceeded (and aborted) when its live
// footprint passed MemoryBudget, and reports whether the pass must stop.
// Called at stage boundaries, where the structure just grew.
func (o *FilterOptions) overBudget(cand *Candidates) bool {
	if o.MemoryBudget <= 0 || cand.MemoryFootprint() <= o.MemoryBudget {
		return false
	}
	cand.Aborted = true
	cand.BudgetExceeded = true
	return true
}

// stop is the stage-boundary check of a filtering pass: deadline or
// cancellation expiry (and, under sqchaos, an injected spurious abort)
// stops the pass with Aborted set; a blown memory budget stops it with
// BudgetExceeded set as well. Returns true when the pass must return
// cand as-is.
func (o *FilterOptions) stop(cand *Candidates) bool {
	if o.expired() || fault.Abort(fault.PointFilter) {
		cand.Aborted = true
		return true
	}
	return o.overBudget(cand)
}

// Result reports the outcome of an enumeration.
type Result struct {
	// Embeddings is the number of subgraph isomorphisms found before the
	// enumeration stopped.
	Embeddings uint64

	// Steps is the number of recursive search-tree nodes expanded.
	Steps uint64

	// Aborted is true if the enumeration hit its Deadline or StepBudget
	// before completing; Embeddings is then a lower bound.
	Aborted bool

	// Stopped is true if an OnEmbedding callback returned false, halting
	// the enumeration early.
	Stopped bool

	// Jumps counts conflict-directed backjumps that skipped at least one
	// order position (the "jump" of jump-redo backtracking); Redos counts
	// all dead-end backtracks that went through conflict analysis.
	Jumps uint64
	Redos uint64

	// ProbeIsects and MergeIsects count candidate-set ∩ neighborhood
	// intersections by the representation the density switch chose:
	// domain-bit-row probing vs sorted-slice merging.
	ProbeIsects uint64
	MergeIsects uint64
}

// Found reports whether at least one embedding was discovered.
func (r Result) Found() bool { return r.Embeddings > 0 }

// searchBudget tracks steps against Options during a recursive search;
// deadline and cancellation polling runs through the shared
// budget.Checkpoint at its step stride.
type searchBudget struct {
	steps      uint64
	stepBudget uint64
	check      budget.Checkpoint
	aborted    bool
}

func newBudget(opts *Options) searchBudget {
	return searchBudget{
		stepBudget: opts.StepBudget,
		check:      budget.Checkpoint{Deadline: opts.Deadline, Cancel: opts.Cancel, Stride: budget.StepStride, Progress: opts.Progress},
	}
}

// spend consumes one step and reports whether the search must abort.
func (b *searchBudget) spend() bool {
	b.steps++
	if b.stepBudget != 0 && b.steps > b.stepBudget {
		b.aborted = true
		return true
	}
	if b.check.Tick() {
		b.aborted = true
		return true
	}
	return false
}
