package matching

import (
	"math/rand"
	"testing"
	"time"

	"subgraphquery/internal/graph"
)

// fig1 returns the paper's Figure 1 example: query q (triangle u0,u1,u2 +
// pendant u3) and data graph G with the extra vertex v4.
func fig1() (q, g *graph.Graph) {
	q = graph.MustFromEdges(
		[]graph.Label{0, 1, 2, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 3}},
	)
	g = graph.MustFromEdges(
		[]graph.Label{0, 1, 2, 1, 0},
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 1, V: 4}},
	)
	return q, g
}

// matchers lists every complete matcher under test by name.
func matchers() map[string]func(q, g *graph.Graph, opts Options) Result {
	return map[string]func(q, g *graph.Graph, opts Options) Result{
		"VF2":      func(q, g *graph.Graph, o Options) Result { return (&VF2{}).Run(q, g, o) },
		"VF2-CT":   func(q, g *graph.Graph, o Options) Result { return (&VF2{Order: CTIndexOrder(q, g)}).Run(q, g, o) },
		"Ullmann":  func(q, g *graph.Graph, o Options) Result { return Ullmann{}.Run(q, g, o) },
		"GraphQL":  func(q, g *graph.Graph, o Options) Result { return GraphQL{}.Run(q, g, o) },
		"CFL":      func(q, g *graph.Graph, o Options) Result { return CFL{}.Run(q, g, o) },
		"CFQL":     func(q, g *graph.Graph, o Options) Result { return CFQL{}.Run(q, g, o) },
		"TurboIso": func(q, g *graph.Graph, o Options) Result { return TurboIso{}.Run(q, g, o) },
		"QuickSI":  func(q, g *graph.Graph, o Options) Result { return QuickSI{}.Run(q, g, o) },
		"SPath":    func(q, g *graph.Graph, o Options) Result { return SPath{}.Run(q, g, o) },
	}
}

func TestFig1Example(t *testing.T) {
	q, g := fig1()
	want := bruteForceCount(q, g)
	if want == 0 {
		t.Fatal("figure 1 must contain at least one embedding")
	}
	for name, run := range matchers() {
		t.Run(name, func(t *testing.T) {
			got := run(q, g, Options{})
			if got.Embeddings != want {
				t.Errorf("%s found %d embeddings, want %d", name, got.Embeddings, want)
			}
			if got.Aborted {
				t.Errorf("%s aborted unexpectedly", name)
			}
		})
	}
}

func TestAllMatchersAgreeWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(14), r.Intn(16), 1+r.Intn(4))
		var q *graph.Graph
		if trial%3 == 0 {
			// Query extracted from g: embeddings guaranteed.
			q = randomQueryFrom(r, g, 1+r.Intn(6))
		} else {
			// Independent random query: often no embeddings.
			q = randomConnectedGraph(r, 2+r.Intn(5), r.Intn(4), 1+r.Intn(4))
		}
		want := bruteForceCount(q, g)
		for name, run := range matchers() {
			got := run(q, g, Options{})
			if got.Aborted {
				t.Fatalf("trial %d: %s aborted", trial, name)
			}
			if got.Embeddings != want {
				t.Fatalf("trial %d: %s found %d embeddings, brute force found %d\nq=%v\ng=%v",
					trial, name, got.Embeddings, want, q, g)
			}
		}
	}
}

func TestFindFirstConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(12), r.Intn(14), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(5))
		want := bruteForceCount(q, g) > 0
		checks := map[string]Result{
			"VF2":     (&VF2{}).FindFirst(q, g, Options{}),
			"Ullmann": Ullmann{}.FindFirst(q, g, Options{}),
			"GraphQL": GraphQL{}.FindFirst(q, g, Options{}),
			"CFL":     CFL{}.FindFirst(q, g, Options{}),
			"CFQL":    CFQL{}.FindFirst(q, g, Options{}),
		}
		for name, res := range checks {
			if res.Found() != want {
				t.Fatalf("trial %d: %s.FindFirst = %v, want %v", trial, name, res.Found(), want)
			}
			if res.Found() && res.Embeddings != 1 {
				t.Fatalf("trial %d: %s.FindFirst returned %d embeddings", trial, name, res.Embeddings)
			}
		}
	}
}

func TestEmbeddingsAreValid(t *testing.T) {
	q, g := fig1()
	validate := func(t *testing.T, mapping []graph.VertexID) {
		t.Helper()
		seen := map[graph.VertexID]bool{}
		for u := 0; u < q.NumVertices(); u++ {
			v := mapping[u]
			if seen[v] {
				t.Fatalf("mapping not injective: %v", mapping)
			}
			seen[v] = true
			if q.Label(graph.VertexID(u)) != g.Label(v) {
				t.Fatalf("label mismatch at %d: %v", u, mapping)
			}
		}
		for _, e := range q.Edges() {
			if !g.HasEdge(mapping[e.U], mapping[e.V]) {
				t.Fatalf("edge (%d,%d) not preserved: %v", e.U, e.V, mapping)
			}
		}
	}
	for name, run := range matchers() {
		t.Run(name, func(t *testing.T) {
			count := 0
			run(q, g, Options{OnEmbedding: func(m []graph.VertexID) bool {
				validate(t, m)
				count++
				return true
			}})
			if count == 0 {
				t.Error("no embeddings emitted")
			}
		})
	}
}

func TestOnEmbeddingEarlyStop(t *testing.T) {
	q, g := fig1()
	for name, run := range matchers() {
		t.Run(name, func(t *testing.T) {
			calls := 0
			res := run(q, g, Options{OnEmbedding: func([]graph.VertexID) bool {
				calls++
				return false
			}})
			if calls != 1 {
				t.Errorf("callback called %d times after returning false, want 1", calls)
			}
			if res.Embeddings != 1 {
				t.Errorf("Embeddings = %d, want 1", res.Embeddings)
			}
		})
	}
}

func TestLimit(t *testing.T) {
	// A star query on a clique yields many embeddings; check limits.
	labels := make([]graph.Label, 8)
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	g := graph.MustFromEdges(labels, edges)
	q := graph.MustFromEdges([]graph.Label{0, 0, 0}, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	total := bruteForceCount(q, g) // 8*7*6 = 336
	if total != 336 {
		t.Fatalf("brute force = %d, want 336", total)
	}
	for name, run := range matchers() {
		t.Run(name, func(t *testing.T) {
			res := run(q, g, Options{Limit: 10})
			if res.Embeddings != 10 {
				t.Errorf("Limit=10 found %d embeddings", res.Embeddings)
			}
			res = run(q, g, Options{})
			if res.Embeddings != total {
				t.Errorf("unlimited found %d embeddings, want %d", res.Embeddings, total)
			}
		})
	}
}

func TestStepBudgetAborts(t *testing.T) {
	// A label-free 4-clique query against a 12-clique explodes; a tiny step
	// budget must abort rather than hang, and must report Aborted.
	n := 12
	labels := make([]graph.Label, n)
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	g := graph.MustFromEdges(labels, edges)
	q := graph.MustFromEdges(make([]graph.Label, 5), []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
	})
	for name, run := range matchers() {
		t.Run(name, func(t *testing.T) {
			res := run(q, g, Options{StepBudget: 50})
			if !res.Aborted {
				t.Errorf("StepBudget=50 did not abort (found %d in %d steps)", res.Embeddings, res.Steps)
			}
		})
	}
}

func TestDeadlineAborts(t *testing.T) {
	n := 14
	labels := make([]graph.Label, n)
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	g := graph.MustFromEdges(labels, edges)
	q := graph.MustFromEdges(make([]graph.Label, 7), func() []graph.Edge {
		var es []graph.Edge
		for i := 0; i < 7; i++ {
			for j := i + 1; j < 7; j++ {
				es = append(es, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
			}
		}
		return es
	}())
	res := (&VF2{}).Run(q, g, Options{Deadline: time.Now().Add(5 * time.Millisecond)})
	if !res.Aborted {
		t.Skip("machine enumerated a 7-clique in a 14-clique within 5ms") // absurdly fast
	}
}

func TestEmptyAndTrivialQueries(t *testing.T) {
	_, g := fig1()
	empty := graph.MustFromEdges(nil, nil)
	single := graph.MustFromEdges([]graph.Label{1}, nil)
	wrongLabel := graph.MustFromEdges([]graph.Label{9}, nil)
	for name, run := range matchers() {
		t.Run(name, func(t *testing.T) {
			if res := run(empty, g, Options{}); res.Embeddings != 1 {
				t.Errorf("empty query: %d embeddings, want 1 (the empty mapping)", res.Embeddings)
			}
			if res := run(single, g, Options{}); res.Embeddings != 2 {
				t.Errorf("single-vertex query label 1: %d embeddings, want 2", res.Embeddings)
			}
			if res := run(wrongLabel, g, Options{}); res.Embeddings != 0 {
				t.Errorf("absent label query: %d embeddings, want 0", res.Embeddings)
			}
			_ = name
		})
	}
}

func TestQueryLargerThanData(t *testing.T) {
	q, g := fig1() // q has 4 vertices
	small := graph.MustFromEdges([]graph.Label{0, 1}, []graph.Edge{{U: 0, V: 1}})
	for name, run := range matchers() {
		if res := run(q, small, Options{}); res.Embeddings != 0 {
			t.Errorf("%s: query larger than data found %d embeddings", name, res.Embeddings)
		}
	}
	_ = g
}
