package matching

import (
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

// The ablation variants must stay complete (never drop a true candidate)
// and must be no stronger than their full counterparts.

func TestCFLTopDownOnlyCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(14), r.Intn(18), 1+r.Intn(4))
		q := randomQueryFrom(r, g, 1+r.Intn(6))
		embeddings := bruteForceEmbeddings(q, g)
		cand := CFLFilterTopDownOnly(q, g, FilterOptions{})
		for _, emb := range embeddings {
			for u, v := range emb {
				if !cand.Contains(graph.VertexID(u), v) {
					t.Fatalf("trial %d: top-down-only CFL dropped (%d,%d)", trial, u, v)
				}
			}
		}
	}
}

// TestBottomUpOnlyPrunes: the full filter's candidate sets are always
// subsets of the top-down-only sets.
func TestBottomUpOnlyPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(14), r.Intn(18), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(6))
		full := CFLFilter(q, g, FilterOptions{})
		topDown := CFLFilterTopDownOnly(q, g, FilterOptions{})
		if full.AnyEmpty() {
			continue // early exit makes set-by-set comparison moot
		}
		for u := 0; u < q.NumVertices(); u++ {
			for _, v := range full.Sets[u] {
				if !topDown.Contains(graph.VertexID(u), v) {
					t.Fatalf("trial %d: full CFL kept (%d,%d) that top-down dropped", trial, u, v)
				}
			}
		}
	}
}

func TestGraphQLNoRefinementCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 40; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(14), r.Intn(18), 1+r.Intn(4))
		q := randomQueryFrom(r, g, 1+r.Intn(6))
		embeddings := bruteForceEmbeddings(q, g)
		cand := GraphQLFilter(q, g, FilterOptions{Rounds: -1}) // profile-only ablation
		for _, emb := range embeddings {
			for u, v := range emb {
				if !cand.Contains(graph.VertexID(u), v) {
					t.Fatalf("trial %d: profile-only GraphQL dropped (%d,%d)", trial, u, v)
				}
			}
		}
	}
}

// TestRefinementOnlyPrunes: refined GraphQL candidate sets are subsets of
// the profile-only sets.
func TestRefinementOnlyPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(14), r.Intn(18), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(6))
		refined := GraphQLFilter(q, g, FilterOptions{Rounds: 3})
		plain := GraphQLFilter(q, g, FilterOptions{Rounds: -1})
		if refined.AnyEmpty() {
			continue
		}
		for u := 0; u < q.NumVertices(); u++ {
			for _, v := range refined.Sets[u] {
				if !plain.Contains(graph.VertexID(u), v) {
					t.Fatalf("trial %d: refined kept (%d,%d) that profile-only dropped", trial, u, v)
				}
			}
		}
	}
}

// TestRefinementStrictlyHelpsSomewhere documents that the refinement passes
// do prune in at least one constructed case, so the ablation measures a
// real difference. A 4-cycle query against a path: profile admits path
// interior vertices, pseudo-isomorphism rejects them.
func TestRefinementStrictlyHelpsSomewhere(t *testing.T) {
	// Query: 4-cycle, all labels 0. Data: 6-path, all labels 0.
	q := graph.MustFromEdges(make([]graph.Label, 4),
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	g := graph.MustFromEdges(make([]graph.Label, 6),
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}})

	// CFL's filter enforces only local (one-hop) consistency, which a path
	// satisfies everywhere — it cannot refute the cycle. GraphQL's
	// semi-perfect matching refinement needs *distinct* neighbor images
	// and empties the candidate sets within its default rounds.
	gq := GraphQLFilter(q, g, FilterOptions{Rounds: 3})
	if !gq.AnyEmpty() {
		t.Errorf("refined GraphQL should prove a 4-cycle absent from a path: %v", gq.Sets)
	}
	gqPlain := GraphQLFilter(q, g, FilterOptions{Rounds: -1})
	if gqPlain.AnyEmpty() {
		t.Error("profile-only GraphQL cannot refute the cycle; sets should be non-empty")
	}
}
