package matching

import (
	"sync"
	"sync/atomic"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/scratch"
)

// Scratch is the per-worker arena for the filtering-verification hot path.
// Algorithm 2 runs its loop body once per data graph per query; everything
// that body needs — the candidate structure, CFL's top-down/bottom-up
// buffers, GraphQL's bipartite rows, the ordering and enumeration state —
// lives here and is reused across graphs, so steady-state filtering
// performs zero heap allocations per graph (asserted by
// testing.AllocsPerRun in the tests and statically by sqlint's hotalloc
// rule).
//
// Ownership rules (see DESIGN.md, "Scratch arenas"):
//
//   - A Scratch belongs to exactly one goroutine at a time. Engines
//     acquire one per Query call (sequential) or one per worker
//     (parallel pools), never per graph.
//   - A *Candidates returned by a filter running on a Scratch is owned by
//     that Scratch and valid only until the next filter call on it. The
//     caller must finish ordering and enumeration for the current data
//     graph before filtering the next.
//   - Orders returned by the scratch-aware ordering functions are
//     likewise valid until the next ordering call on the same Scratch.
//
// The zero value is ready to use; the pool exists only to recycle warmed
// arenas across queries.
type Scratch struct {
	cand Candidates // the reusable Φ structure filters hand out

	// CFL filter state. epoch is monotonic across the Scratch's lifetime:
	// stale lastEpoch stamps from earlier graphs are always smaller than
	// any epoch the current pass issues, so neither array is ever zeroed.
	epoch     int64
	lastEpoch []int64
	chain     []int32
	processed []bool
	marked    []graph.VertexID
	adjacent  []graph.VertexID // before/after-neighbor collection
	pos       []int
	bfsDepth  []int32
	bfsOrder  []graph.VertexID

	// Neighborhood-label-frequency profiles of the query vertices. They
	// depend only on q, so they are computed once per (Scratch, query)
	// pair and reused across every data graph.
	profQ *graph.Graph
	profs []graph.NLF

	// GraphQL refinement: the reusable bipartite matcher and its
	// per-query-neighbor adjacency rows.
	bm      bipartiteMatcher
	adjRows scratch.Rows[int32]

	// CFL path-cost estimation: ping-pong weight buffers over V(G) (kept
	// all-zero between uses, see pathEmbeddingEstimate) and the
	// touched-vertex lists that restore them.
	wA, wB []float64
	touchA []graph.VertexID
	touchB []graph.VertexID

	// Ordering state shared by GraphQLOrderScratch and CFLOrderScratch.
	orderBuf []graph.VertexID
	orderIn  []bool
	frontier []bool

	// CFL top-down bit-path state: the accumulator and per-neighbor
	// scatter rows of the word-wide generation kernel (used when
	// domain.UseBitsGenerate selects the dense representation).
	accBits  scratch.Bits
	markBits scratch.Bits

	// Enumeration state. conf holds the per-depth conflict sets of the
	// jump-redo backtracking (bit rows over order positions); ownerPos
	// maps a used data vertex to the order position whose image it is
	// (valid only while the used bit is set, so it is never cleared).
	mapping  []graph.VertexID
	seen     []bool
	used     scratch.Bits
	ownerPos []int32
	conf     []scratch.Bits
	backward scratch.Rows[graph.VertexID]
	isect    scratch.Rows[graph.VertexID]
}

// growBools sizes *buf to n and clears it; for the visited/membership
// masks whose algorithms expect all-false on entry.
func growBools(buf *[]bool, n int) []bool {
	*buf = scratch.Grow(*buf, n)
	clear(*buf)
	return *buf
}

// growZeroFloats sizes *buf to n relying on the all-zero invariant its
// users maintain: fresh storage is zeroed by make, and every user restores
// the zeros for the entries it touched before returning, so no O(n) clear
// is ever needed.
func growZeroFloats(buf *[]float64, n int) []float64 {
	*buf = scratch.Grow(*buf, n)
	return *buf
}

// NewScratch returns an empty arena. Buffers grow on first use and are
// retained afterwards.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// scratchLive counts arenas acquired but not yet released. The leak
// checks in the chaos and panic-recovery tests assert it returns to its
// pre-test value — a scratch stranded by a panic path would show here.
var scratchLive atomic.Int64

// ScratchLive reports how many pooled arenas are currently checked out.
func ScratchLive() int64 { return scratchLive.Load() }

// AcquireScratch takes a warmed arena from the process-wide pool. Pair
// with ReleaseScratch once no Candidates or order obtained from it is
// still in use.
func AcquireScratch() *Scratch {
	scratchLive.Add(1)
	return scratchPool.Get().(*Scratch)
}

// ReleaseScratch returns s to the pool. The caller must not retain any
// pointer obtained from s (its Candidates, orders, profiles).
func ReleaseScratch(s *Scratch) {
	scratchLive.Add(-1)
	scratchPool.Put(s)
}

// candidates resets and returns the arena's candidate structure, shaped
// for nq query vertices over nd data vertices.
func (s *Scratch) candidates(nq, nd int) *Candidates {
	s.cand.reset(nq, nd)
	return &s.cand
}

// ensureCFL sizes the CFL filter buffers for a query with nq vertices
// against a data graph with nd vertices. Only capacity growth allocates.
func (s *Scratch) ensureCFL(nq, nd int) {
	s.lastEpoch = scratch.Grow(s.lastEpoch, nd)
	s.chain = scratch.Grow(s.chain, nd)
	s.processed = scratch.Grow(s.processed, nq)
	clear(s.processed)
	s.pos = scratch.Grow(s.pos, nq)
	s.bfsDepth = scratch.Grow(s.bfsDepth, nq)
	s.bfsOrder = s.bfsOrder[:0]
	s.marked = s.marked[:0]
	s.adjacent = s.adjacent[:0]
}

// profilesFor returns the NLF profiles of q's vertices, computing them on
// the first call for this query and reusing them for every subsequent
// data graph.
func (s *Scratch) profilesFor(q *graph.Graph) []graph.NLF {
	if s.profQ == q {
		return s.profs
	}
	s.profs = s.profs[:0]
	for u := 0; u < q.NumVertices(); u++ {
		s.profs = append(s.profs, graph.NLFOf(q, graph.VertexID(u)))
	}
	s.profQ = q
	return s.profs
}

// bfsOrderInto computes the BFS visit order of q from root into the
// arena's bfsOrder buffer and fills pos with each vertex's position in
// it. This is the only part of graph.BFSTree the CFL filter needs, without
// the tree's per-call allocations.
func (s *Scratch) bfsOrderInto(q *graph.Graph, root graph.VertexID) []graph.VertexID {
	n := q.NumVertices()
	for i := 0; i < n; i++ {
		s.bfsDepth[i] = -1
	}
	order := s.bfsOrder[:0]
	order = append(order, root)
	s.bfsDepth[root] = 0
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, w := range q.Neighbors(v) {
			if s.bfsDepth[w] == -1 {
				s.bfsDepth[w] = s.bfsDepth[v] + 1
				order = append(order, w)
			}
		}
	}
	s.bfsOrder = order
	for i, u := range order {
		s.pos[u] = i
	}
	return order
}
