package matching

import (
	"testing"

	"subgraphquery/internal/graph"
)

func TestSignatures(t *testing.T) {
	// Path 0-1-2-3 with labels a,b,c,d: from vertex 0, distance-1 = {b},
	// distance-2 = {c}.
	g := graph.MustFromEdges([]graph.Label{10, 11, 12, 13},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	sigs := signatures(g)
	if got := sigs[0][0].Count(11); got != 1 {
		t.Errorf("distance-1 count of label 11 = %d, want 1", got)
	}
	if got := sigs[0][1].Count(12); got != 1 {
		t.Errorf("distance-2 count of label 12 = %d, want 1", got)
	}
	if got := sigs[0][1].Count(13); got != 0 {
		t.Errorf("distance-2 count of label 13 = %d, want 0 (it is at distance 3)", got)
	}
	// From the middle vertex 1: distance-1 = {a, c}, distance-2 = {d}.
	if got := sigs[1][0].Count(10); got != 1 {
		t.Errorf("middle distance-1 label 10 = %d", got)
	}
	if got := sigs[1][1].Count(13); got != 1 {
		t.Errorf("middle distance-2 label 13 = %d", got)
	}
}

func TestCoversCumulative(t *testing.T) {
	// Query u: one neighbor labeled 7 at distance 2. Data v: the label-7
	// vertex at distance 1 (a shortcut). covers must accept: distances in
	// the data graph can only shrink under subgraph isomorphism.
	var qu, dv signature
	qu[1] = graph.NLFFromCounts(map[graph.Label]uint32{7: 1})
	dv[0] = graph.NLFFromCounts(map[graph.Label]uint32{7: 1})
	if !covers(dv, qu) {
		t.Error("cumulative coverage must accept distance shrinkage")
	}
	// The reverse — query needs label 7 at distance 1 but data only has it
	// at distance 2 — must be rejected at level 1 and stay rejected.
	var qu2, dv2 signature
	qu2[0] = graph.NLFFromCounts(map[graph.Label]uint32{7: 1})
	dv2[1] = graph.NLFFromCounts(map[graph.Label]uint32{7: 1})
	if covers(dv2, qu2) {
		t.Error("level-1 deficit must reject")
	}
}

func TestSPathFiltersByDistance2(t *testing.T) {
	// Two data stars: one whose center has a label-9 vertex at distance 2,
	// one without. Query requires it; SPath's signature must separate them
	// (a pure label/degree filter cannot).
	with := graph.MustFromEdges([]graph.Label{0, 1, 9},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	without := graph.MustFromEdges([]graph.Label{0, 1, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	q := graph.MustFromEdges([]graph.Label{0, 1, 9},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if !(SPath{}).FindFirst(q, with, Options{}).Found() {
		t.Error("q should be found in the graph containing label 9")
	}
	if (SPath{}).FindFirst(q, without, Options{}).Found() {
		t.Error("q found in a graph lacking label 9")
	}
}
