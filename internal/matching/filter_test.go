package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/scratch"
)

// filters lists every Filter implementation (the preprocessing phases of
// the vcFV algorithms) by name.
func filters() map[string]func(q, g *graph.Graph) *Candidates {
	return map[string]func(q, g *graph.Graph) *Candidates{
		"GraphQL": func(q, g *graph.Graph) *Candidates { return GraphQLFilter(q, g, FilterOptions{}) },
		"CFL":     func(q, g *graph.Graph) *Candidates { return CFLFilter(q, g, FilterOptions{}) },
	}
}

// TestFilterCompleteness is the Definition III.1 property test: for every
// embedding found by brute force, the image of each query vertex must be in
// that vertex's candidate set — unless the filter already proved
// non-containment by emptying some set, which must then never happen when
// an embedding exists.
func TestFilterCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		g := randomConnectedGraph(r, 4+r.Intn(16), r.Intn(20), 1+r.Intn(4))
		q := randomQueryFrom(r, g, 1+r.Intn(7))
		embeddings := bruteForceEmbeddings(q, g)
		for name, filter := range filters() {
			cand := filter(q, g)
			if len(embeddings) > 0 && cand.AnyEmpty() {
				t.Fatalf("trial %d: %s emptied a candidate set although %d embeddings exist",
					trial, name, len(embeddings))
			}
			for _, emb := range embeddings {
				for u, v := range emb {
					if !cand.Contains(graph.VertexID(u), v) {
						t.Fatalf("trial %d: %s dropped mapping (%d,%d) of a real embedding",
							trial, name, u, v)
					}
				}
			}
		}
	}
}

// TestFilterSoundLabels checks that candidates always satisfy the basic
// label and degree requirements.
func TestFilterSoundLabels(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(r, 5+r.Intn(12), r.Intn(15), 1+r.Intn(4))
		q := randomQueryFrom(r, g, 1+r.Intn(5))
		for name, filter := range filters() {
			cand := filter(q, g)
			for u := 0; u < q.NumVertices(); u++ {
				for _, v := range cand.Sets[u] {
					if g.Label(v) != q.Label(graph.VertexID(u)) {
						t.Fatalf("%s: candidate %d for %d has wrong label", name, v, u)
					}
					if g.Degree(v) < q.Degree(graph.VertexID(u)) {
						t.Fatalf("%s: candidate %d for %d has insufficient degree", name, v, u)
					}
				}
			}
		}
	}
}

// TestFilterPrecisionOrdering: the refined filters never admit more
// candidates than the plain label-degree filter would.
func TestFilterNoWeakerThanLabelDegree(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(r, 5+r.Intn(12), r.Intn(15), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(5))
		ld := 0
		for u := 0; u < q.NumVertices(); u++ {
			uu := graph.VertexID(u)
			for v := 0; v < g.NumVertices(); v++ {
				vv := graph.VertexID(v)
				if g.Label(vv) == q.Label(uu) && g.Degree(vv) >= q.Degree(uu) {
					ld++
				}
			}
		}
		for name, filter := range filters() {
			if got := filter(q, g).TotalSize(); got > ld {
				t.Fatalf("%s admitted %d candidates, label-degree admits %d", name, got, ld)
			}
		}
	}
}

func TestFig1Candidates(t *testing.T) {
	q, g := fig1()
	// Example III.1 expects Φ(u1)={v1}, Φ(u2)={v2}, Φ(u3)={v3}; Φ(u0) may
	// be {v0} or {v0,v4} depending on filter strength. v4 has degree 1 so
	// both filters must exclude it (u0 has degree 2).
	for name, filter := range filters() {
		cand := filter(q, g)
		if !cand.Contains(0, 0) || !cand.Contains(1, 1) || !cand.Contains(2, 2) || !cand.Contains(3, 3) {
			t.Errorf("%s: missing identity candidates: %v", name, cand.Sets)
		}
		if cand.Contains(0, 4) {
			t.Errorf("%s: v4 (degree 1) should not be a candidate for u0 (degree 2)", name)
		}
	}
}

func TestCandidatesBasics(t *testing.T) {
	c := NewCandidates(2, 10)
	c.Add(0, 3)
	c.Add(0, 3) // duplicate ignored
	c.Add(0, 7)
	c.Add(1, 2)
	if c.Count(0) != 2 || c.Count(1) != 1 {
		t.Fatalf("counts = %d,%d, want 2,1", c.Count(0), c.Count(1))
	}
	if !c.Contains(0, 3) || c.Contains(0, 4) || !c.Contains(1, 2) {
		t.Error("Contains inconsistent with Add")
	}
	if c.AnyEmpty() {
		t.Error("no set should be empty")
	}
	c.Retain(0, func(v graph.VertexID) bool { return v == 7 })
	if c.Count(0) != 1 || c.Contains(0, 3) || !c.Contains(0, 7) {
		t.Error("Retain misbehaved")
	}
	c.Retain(1, func(graph.VertexID) bool { return false })
	if !c.AnyEmpty() {
		t.Error("AnyEmpty should be true after clearing set 1")
	}
	if c.TotalSize() != 1 {
		t.Errorf("TotalSize = %d, want 1", c.TotalSize())
	}
	if c.MemoryFootprint() <= 0 {
		t.Error("MemoryFootprint should be positive")
	}
}

func TestBitset(t *testing.T) {
	var b scratch.Bits
	f := func(bits []uint16) bool {
		b.Reset(1 << 16) // O(1) epoch clear between property-test rounds
		ref := map[uint32]bool{}
		for i, raw := range bits {
			v := uint32(raw)
			if i%3 == 2 {
				b.Clear(v)
				delete(ref, v)
			} else {
				b.Set(v)
				ref[v] = true
			}
		}
		for v := range ref {
			if !b.Get(v) {
				return false
			}
		}
		for _, raw := range bits {
			if b.Get(uint32(raw)) != ref[uint32(raw)] {
				return false
			}
		}
		return b.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCFLRootSelection(t *testing.T) {
	q, g := fig1()
	root := cflRoot(q, g)
	// u2 (label C, unique in G, degree 3) has ratio 1/3 — the minimum.
	if root != 2 {
		t.Errorf("cflRoot = %d, want 2", root)
	}
}

func TestOrdersAreValid(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		g := randomConnectedGraph(r, 5+r.Intn(12), r.Intn(15), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(6))
		cand := GraphQLFilter(q, g, FilterOptions{})
		if cand.AnyEmpty() {
			continue
		}
		if err := VerifyOrder(q, GraphQLOrder(q, cand)); err != nil {
			t.Fatalf("GraphQLOrder invalid: %v", err)
		}
		cfl := CFLFilter(q, g, FilterOptions{})
		if cfl.AnyEmpty() {
			continue
		}
		if err := VerifyOrder(q, CFLOrder(q, g, cfl)); err != nil {
			t.Fatalf("CFLOrder invalid: %v", err)
		}
		if err := VerifyOrder(q, CTIndexOrder(q, g)); err != nil {
			t.Fatalf("CTIndexOrder invalid: %v", err)
		}
		if err := VerifyOrder(q, connectedIDOrder(q)); err != nil {
			t.Fatalf("connectedIDOrder invalid: %v", err)
		}
	}
}

func TestGraphQLOrderStartsAtRarest(t *testing.T) {
	q, g := fig1()
	cand := GraphQLFilter(q, g, FilterOptions{})
	order := GraphQLOrder(q, cand)
	// The first vertex must achieve the global minimum candidate count.
	minCount := cand.Count(order[0])
	for u := 0; u < q.NumVertices(); u++ {
		if cand.Count(graph.VertexID(u)) < minCount {
			t.Errorf("order starts at %d (count %d) but %d has count %d",
				order[0], minCount, u, cand.Count(graph.VertexID(u)))
		}
	}
}

func TestCFLOrderPrioritizesCore(t *testing.T) {
	q, g := fig1()
	cand := CFLFilter(q, g, FilterOptions{})
	order := CFLOrder(q, g, cand)
	core := q.TwoCore()
	// u3 is the only non-core vertex; with core-first ordering it must come
	// after all the triangle vertices.
	pos := map[graph.VertexID]int{}
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < q.NumVertices(); u++ {
		if core[u] && pos[graph.VertexID(u)] > pos[3] {
			t.Errorf("core vertex %d ordered after non-core vertex 3: %v", u, order)
		}
	}
}

func TestVerifyOrderRejects(t *testing.T) {
	q, _ := fig1()
	cases := map[string][]graph.VertexID{
		"short":        {0, 1},
		"repeat":       {0, 1, 1, 2},
		"out-of-range": {0, 1, 2, 9},
		"disconnected": {3, 0, 1, 2}, // 0 is not adjacent to 3? u3-u2 edge only; 0 after 3 has no earlier neighbor
	}
	for name, order := range cases {
		if err := VerifyOrder(q, order); err == nil {
			t.Errorf("VerifyOrder accepted %s order %v", name, order)
		}
	}
}

func TestSortCandidates(t *testing.T) {
	c := NewCandidates(1, 10)
	c.Add(0, 7)
	c.Add(0, 2)
	c.Add(0, 5)
	SortCandidates(c)
	if c.Sets[0][0] != 2 || c.Sets[0][1] != 5 || c.Sets[0][2] != 7 {
		t.Errorf("SortCandidates produced %v", c.Sets[0])
	}
}
