package matching

import (
	"math/rand"
	"testing"
	"time"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/graph"
)

func TestCTIndexOrderDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(311))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedGraph(r, 6+r.Intn(10), r.Intn(12), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(5))
		a := CTIndexOrder(q, g)
		b := CTIndexOrder(q, g)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("CTIndexOrder not deterministic: %v vs %v", a, b)
			}
		}
	}
}

func TestCTIndexOrderStartsHighDegree(t *testing.T) {
	// A star query: the center has the maximum degree and must come first.
	q := graph.MustFromEdges([]graph.Label{0, 1, 1, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	g := graph.MustFromEdges([]graph.Label{0, 1, 1, 1, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}})
	order := CTIndexOrder(q, g)
	if order[0] != 0 {
		t.Errorf("CTIndexOrder starts at %d, want the star center 0", order[0])
	}
}

func TestGraphQLOrderDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedGraph(r, 6+r.Intn(10), r.Intn(12), 1+r.Intn(3))
		q := randomQueryFrom(r, g, 1+r.Intn(5))
		cand := GraphQLFilter(q, g, FilterOptions{})
		if cand.AnyEmpty() {
			continue
		}
		a := GraphQLOrder(q, cand)
		b := GraphQLOrder(q, cand)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("GraphQLOrder not deterministic: %v vs %v", a, b)
			}
		}
	}
}

func TestBudgetStepLimit(t *testing.T) {
	opts := Options{StepBudget: 3}
	b := newBudget(&opts)
	for i := 0; i < 3; i++ {
		if b.spend() {
			t.Fatalf("aborted at step %d, budget is 3", i+1)
		}
	}
	if !b.spend() {
		t.Error("step 4 should exceed StepBudget 3")
	}
	if !b.aborted {
		t.Error("aborted flag not set")
	}
}

func TestBudgetDeadline(t *testing.T) {
	opts := Options{Deadline: time.Now().Add(-time.Second)}
	b := newBudget(&opts)
	// The deadline is polled every budget.StepStride steps.
	aborted := false
	for i := 0; i < budget.StepStride+1; i++ {
		if b.spend() {
			aborted = true
			break
		}
	}
	if !aborted {
		t.Error("expired deadline never aborted the budget")
	}
}

func TestBudgetUnlimited(t *testing.T) {
	opts := Options{}
	b := newBudget(&opts)
	for i := 0; i < 10000; i++ {
		if b.spend() {
			t.Fatal("unlimited budget aborted")
		}
	}
	if b.steps != 10000 {
		t.Errorf("steps = %d, want 10000", b.steps)
	}
}

func TestEnumerateRejectsBadOrders(t *testing.T) {
	q, g := fig1()
	cand := CFLFilter(q, g, FilterOptions{})
	cases := map[string][]graph.VertexID{
		"too-short":    {0, 1},
		"disconnected": {3, 0, 1, 2},
	}
	for name, order := range cases {
		if _, err := Enumerate(q, g, cand, order, Options{}); err == nil {
			t.Errorf("Enumerate accepted %s order", name)
		}
	}
}

func TestResultFound(t *testing.T) {
	if (Result{}).Found() {
		t.Error("zero result should not be Found")
	}
	if !(Result{Embeddings: 2}).Found() {
		t.Error("result with embeddings should be Found")
	}
}
