//go:build sqdebug

package matching

import (
	"strings"
	"testing"

	"subgraphquery/internal/graph"
)

// Corruption tests for the sqdebug invariant assertions: each test breaks
// one structural property and checks the matching panic fires.

func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func debugFixture(t *testing.T) (q, g *graph.Graph) {
	t.Helper()
	q = graph.MustFromEdges([]graph.Label{0, 1}, []graph.Edge{{U: 0, V: 1}})
	g = graph.MustFromEdges(
		[]graph.Label{0, 1, 0, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}},
	)
	return q, g
}

func TestDebugCheckCandidatesAcceptsFilterOutput(t *testing.T) {
	q, g := debugFixture(t)
	cand := CFLFilter(q, g, FilterOptions{}) // filter runs the check itself
	debugCheckCandidates("test", q, g, cand) // and it must hold afterwards
}

func TestDebugCheckCandidatesBrokenMirror(t *testing.T) {
	q, g := debugFixture(t)
	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	cand.Add(0, 0)
	// Grow Sets behind the bitset's back, as a buggy filter would.
	cand.Sets[0] = append(cand.Sets[0], 2)
	mustPanicWith(t, "member bit is clear", func() { debugCheckCandidates("test", q, g, cand) })
}

func TestDebugCheckCandidatesLabelMismatch(t *testing.T) {
	q, g := debugFixture(t)
	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	cand.Add(0, 1) // data vertex 1 has label 1, query vertex 0 has label 0
	mustPanicWith(t, "label", func() { debugCheckCandidates("test", q, g, cand) })
}

func TestDebugCheckCandidatesStrayBit(t *testing.T) {
	q, g := debugFixture(t)
	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	cand.Add(0, 0)
	cand.Add(0, 2)
	// Drop a set entry without clearing its bit: the popcount no longer
	// matches the list length.
	cand.Sets[0] = cand.Sets[0][:1]
	mustPanicWith(t, "member bits", func() { debugCheckCandidates("test", q, g, cand) })
}

func TestDebugCheckMonotoneGrowth(t *testing.T) {
	q, g := debugFixture(t)
	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	before := debugSnapshotCounts(cand)
	cand.Add(0, 0)
	mustPanicWith(t, "grew", func() { debugCheckMonotone("test", before, cand) })
}

func TestDebugCheckEmbeddingNotInjective(t *testing.T) {
	q := graph.MustFromEdges([]graph.Label{0, 0}, []graph.Edge{{U: 0, V: 1}})
	g := graph.MustFromEdges([]graph.Label{0, 0}, []graph.Edge{{U: 0, V: 1}})
	mustPanicWith(t, "not injective", func() {
		debugCheckEmbedding(q, g, []graph.VertexID{0, 0})
	})
}

func TestDebugCheckEmbeddingDroppedEdge(t *testing.T) {
	q := graph.MustFromEdges([]graph.Label{0, 0}, []graph.Edge{{U: 0, V: 1}})
	g := graph.MustFromEdges([]graph.Label{0, 0, 0}, []graph.Edge{{U: 0, V: 1}})
	mustPanicWith(t, "query edge", func() {
		debugCheckEmbedding(q, g, []graph.VertexID{0, 2})
	})
}
