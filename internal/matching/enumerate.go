package matching

import (
	"fmt"

	"subgraphquery/internal/domain"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/scratch"
)

// Enumerate performs the backtracking search common to the
// preprocessing-enumeration algorithms: it extends partial embeddings along
// the given matching order, drawing candidates of the next query vertex u
// from Φ(u) intersected with the data neighborhood of an already-matched
// neighbor of u, and checking every edge back to matched query vertices.
//
// The candidate sets must be ascending by vertex id (the invariant every
// filter in this package maintains; call SortCandidates on hand-built
// sets). The Φ(u) ∩ N(pivot) step switches representation per node: when
// the candidate set is large relative to the pivot's label-restricted
// neighborhood it probes the domain bit row per neighbor (O(|nbrs|),
// independent of |Φ(u)|); otherwise it merges the two sorted lists
// through the shared intersection kernel. Either way candidates are
// visited in ascending id order at every depth.
//
// Dead ends backtrack by conflict-directed backjumping ("jump-redo"):
// each depth accumulates the set of earlier order positions that caused
// its candidates to fail (the pivot, used-vertex owners, failed
// edge-check endpoints), and when a subtree exhausts without finding any
// embedding the search jumps directly to the most recent conflicting
// position instead of retrying irrelevant siblings in between. Subtrees
// that did produce embeddings backtrack chronologically, which keeps the
// enumeration exhaustive. Result.Jumps counts backjumps that skipped at
// least one position; Result.Redos counts all dead-end backtracks.
//
// The order must be connected: each vertex after the first needs at least
// one earlier neighbor in q (both GraphQL's join-based order and CFL's
// path-based order guarantee this). Enumerate returns an error for
// disconnected orders rather than silently enumerating a cartesian product.
//
// With a non-nil opts.Scratch all search state (mapping, used-set,
// backward-neighbor, conflict-set and intersection buffers) comes from the
// arena and the call allocates nothing in steady state.
func Enumerate(q, g *graph.Graph, cand *Candidates, order []graph.VertexID, opts Options) (Result, error) {
	fault.Inject(fault.PointEnumerate)
	n := q.NumVertices()
	if len(order) != n {
		return Result{}, fmt.Errorf("matching: order covers %d of %d query vertices", len(order), n)
	}
	debugCheckSortedSets("Enumerate", cand) // sqdebug: kernel input invariant
	s := opts.Scratch
	if s == nil {
		s = NewScratch()
	}
	s.mapping = scratch.Grow(s.mapping, n)
	s.used.Reset(g.NumVertices())
	s.ownerPos = scratch.Grow(s.ownerPos, g.NumVertices())
	if cap(s.conf) < n {
		grown := make([]scratch.Bits, n)
		copy(grown, s.conf[:cap(s.conf)])
		s.conf = grown
	} else {
		s.conf = s.conf[:n]
	}
	e := enumerator{
		q:        q,
		g:        g,
		cand:     cand,
		order:    order,
		opts:     opts,
		budget:   newBudget(&opts),
		mapping:  s.mapping,
		used:     &s.used,
		ownerPos: s.ownerPos,
		conf:     s.conf,
		backward: s.backward.Take(n),
		isect:    s.isect.Take(n),
	}

	// Precompute, for each position i > 0, the query neighbors of order[i]
	// that appear earlier in the order ("backward neighbors"), and pick the
	// pivot whose data-side neighborhood will seed the candidates.
	s.pos = scratch.Grow(s.pos, n)
	pos := s.pos
	for i, u := range order {
		pos[u] = i
	}
	e.pos = pos
	seen := growBools(&s.seen, n)
	for i, u := range order {
		for _, w := range q.Neighbors(u) {
			if seen[w] {
				e.backward[i] = append(e.backward[i], w)
			}
		}
		if i > 0 && len(e.backward[i]) == 0 {
			return Result{}, fmt.Errorf("matching: order is not connected at position %d (vertex %d)", i, u)
		}
		// Pivot: the earliest-matched backward neighbor. Candidates are then
		// drawn from the data adjacency of its image, restricted by label.
		if len(e.backward[i]) > 0 {
			best := e.backward[i][0]
			for _, w := range e.backward[i][1:] {
				if pos[w] < pos[best] {
					best = w
				}
			}
			// Move pivot to front so the check loop can skip it.
			for j, w := range e.backward[i] {
				if w == best {
					e.backward[i][0], e.backward[i][j] = e.backward[i][j], e.backward[i][0]
					break
				}
			}
		}
		seen[u] = true
	}

	e.search(0)
	return Result{
		Embeddings: e.found, Steps: e.budget.steps, Aborted: e.budget.aborted, Stopped: e.stopped,
		Jumps: e.jumps, Redos: e.redos, ProbeIsects: e.probeIsects, MergeIsects: e.mergeIsects,
	}, nil
}

type enumerator struct {
	q, g     *graph.Graph
	cand     *Candidates
	order    []graph.VertexID
	pos      []int // pos[u] is u's position in the order
	backward [][]graph.VertexID
	isect    [][]graph.VertexID // per-depth Φ(u) ∩ N(pivot) buffers
	conf     []scratch.Bits     // per-depth conflict sets over order positions
	ownerPos []int32            // ownerPos[v]: position whose image is v (valid while used)
	opts     Options            // by value: storing &opts would heap-allocate it per call
	budget   searchBudget

	mapping     []graph.VertexID
	used        *scratch.Bits
	found       uint64
	jumps       uint64 // backjumps skipping at least one position
	redos       uint64 // dead-end backtracks (conflict-analyzed)
	probeIsects uint64 // intersections via domain-row probing
	mergeIsects uint64 // intersections via sorted merge
	stop        bool
	stopped     bool // an OnEmbedding callback returned false
}

// search extends the partial embedding at the given depth and returns the
// backjump target: the order position where trying further candidates can
// still change the outcome. A return below depth-1 means every position
// in between is provably irrelevant to the dead end and is unwound
// without retrying siblings. The return value is meaningless once e.stop
// is set. It sets e.stop when the limit is reached, the caller cancels,
// or the budget is exhausted.
func (e *enumerator) search(depth int) int {
	if depth == len(e.order) {
		debugCheckEmbedding(e.q, e.g, e.mapping) // sqdebug builds only
		e.found++
		if e.opts.OnEmbedding != nil && !e.opts.OnEmbedding(e.mapping) {
			e.stop = true
			e.stopped = true
		}
		if e.opts.Limit != 0 && e.found >= e.opts.Limit {
			e.stop = true
		}
		return depth - 1
	}
	if e.budget.spend() {
		e.stop = true
		return depth - 1
	}
	u := e.order[depth]
	if depth == 0 {
		// The root has no earlier positions to conflict with: child jumps
		// to position 0 simply continue this loop with the next candidate.
		for _, v := range e.cand.Sets[u] {
			e.mapping[u] = v
			e.used.Set(uint32(v))
			e.ownerPos[v] = 0
			e.search(1)
			e.used.Clear(uint32(v))
			if e.stop {
				return -1
			}
		}
		return -1
	}
	foundBefore := e.found
	conf := &e.conf[depth]
	conf.Reset(len(e.order))
	bw := e.backward[depth]
	pivot := bw[0]
	conf.Set(uint32(e.pos[pivot])) // the candidate pool depends on the pivot
	pivotImage := e.mapping[pivot]
	nbrs := e.g.NeighborsWithLabel(pivotImage, e.q.Label(u))
	// Φ(u) ∩ N_label(pivotImage): probe the domain bit row when Φ(u) is
	// large relative to the neighbor list, else merge the sorted slices.
	// Both inputs are ascending, so either path emits ascending output
	// into this depth's arena row, stable across the deeper recursion.
	var buf []graph.VertexID
	if domain.UseProbe(e.cand.Count(u), len(nbrs)) {
		e.probeIsects++
		row := e.cand.Domain().Row(int(u))
		buf = e.isect[depth][:0]
		for _, v := range nbrs {
			if row.Get(uint32(v)) {
				buf = append(buf, v)
			}
		}
	} else {
		e.mergeIsects++
		buf = graph.IntersectSorted(e.isect[depth][:0], e.cand.Sets[u], nbrs)
	}
	e.isect[depth] = buf
	for _, v := range buf {
		if e.used.Get(uint32(v)) {
			conf.Set(uint32(e.ownerPos[v]))
			continue
		}
		ok := true
		for _, w := range bw[1:] {
			if !e.g.HasEdge(e.mapping[w], v) {
				conf.Set(uint32(e.pos[w]))
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		e.mapping[u] = v
		e.used.Set(uint32(v))
		e.ownerPos[v] = int32(depth)
		back := e.search(depth + 1)
		e.used.Clear(uint32(v))
		if e.stop {
			return depth - 1
		}
		if back < depth {
			// The child's dead end did not involve this position: siblings
			// here cannot fix it, so pass the jump through.
			return back
		}
	}
	if e.found > foundBefore {
		// The subtree produced embeddings; conflict analysis only covers
		// failures, so backtrack chronologically to stay exhaustive.
		return depth - 1
	}
	// Dead end across every candidate: jump to the most recent position
	// that contributed to a failure, bequeathing the rest of the blame set.
	e.redos++
	j, ok := conf.MaxSet()
	if !ok {
		return depth - 1 // unreachable: the pivot position is always present
	}
	target := int(j)
	if target > 0 {
		parent := &e.conf[target]
		parent.Or(conf)
		parent.Clear(j) // a position is not its own conflict
	}
	if target < depth-1 {
		e.jumps++
	}
	return target
}

// VerifyOrder checks that order is a valid connected permutation of the
// query vertices; exposed for tests of the ordering strategies.
func VerifyOrder(q *graph.Graph, order []graph.VertexID) error {
	if len(order) != q.NumVertices() {
		return fmt.Errorf("matching: order has %d vertices, query has %d", len(order), q.NumVertices())
	}
	seen := make([]bool, q.NumVertices())
	for i, u := range order {
		if int(u) >= q.NumVertices() || seen[u] {
			return fmt.Errorf("matching: order is not a permutation at position %d", i)
		}
		if i > 0 {
			connected := false
			for _, w := range q.Neighbors(u) {
				if seen[w] {
					connected = true
					break
				}
			}
			if !connected {
				return fmt.Errorf("matching: vertex %d at position %d has no earlier neighbor", u, i)
			}
		}
		seen[u] = true
	}
	return nil
}
