package matching

import (
	"fmt"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/scratch"
)

// Enumerate performs the backtracking search common to the
// preprocessing-enumeration algorithms: it extends partial embeddings along
// the given matching order, drawing candidates of the next query vertex u
// from Φ(u) intersected with the data neighborhood of an already-matched
// neighbor of u, and checking every edge back to matched query vertices.
//
// The candidate sets must be ascending by vertex id (the invariant every
// filter in this package maintains; call SortCandidates on hand-built
// sets): the Φ(u) ∩ N(pivot) step runs through the shared sorted-set
// intersection kernel, so candidates are visited in ascending id order at
// every depth.
//
// The order must be connected: each vertex after the first needs at least
// one earlier neighbor in q (both GraphQL's join-based order and CFL's
// path-based order guarantee this). Enumerate returns an error for
// disconnected orders rather than silently enumerating a cartesian product.
//
// With a non-nil opts.Scratch all search state (mapping, used-set,
// backward-neighbor and intersection buffers) comes from the arena and the
// call allocates nothing in steady state.
func Enumerate(q, g *graph.Graph, cand *Candidates, order []graph.VertexID, opts Options) (Result, error) {
	fault.Inject(fault.PointEnumerate)
	n := q.NumVertices()
	if len(order) != n {
		return Result{}, fmt.Errorf("matching: order covers %d of %d query vertices", len(order), n)
	}
	debugCheckSortedSets("Enumerate", cand) // sqdebug: kernel input invariant
	s := opts.Scratch
	if s == nil {
		s = NewScratch()
	}
	s.mapping = scratch.Grow(s.mapping, n)
	s.used.Reset(g.NumVertices())
	e := enumerator{
		q:        q,
		g:        g,
		cand:     cand,
		order:    order,
		opts:     opts,
		budget:   newBudget(&opts),
		mapping:  s.mapping,
		used:     &s.used,
		backward: s.backward.Take(n),
		isect:    s.isect.Take(n),
	}

	// Precompute, for each position i > 0, the query neighbors of order[i]
	// that appear earlier in the order ("backward neighbors"), and pick the
	// pivot whose data-side neighborhood will seed the candidates.
	s.pos = scratch.Grow(s.pos, n)
	pos := s.pos
	for i, u := range order {
		pos[u] = i
	}
	seen := growBools(&s.seen, n)
	for i, u := range order {
		for _, w := range q.Neighbors(u) {
			if seen[w] {
				e.backward[i] = append(e.backward[i], w)
			}
		}
		if i > 0 && len(e.backward[i]) == 0 {
			return Result{}, fmt.Errorf("matching: order is not connected at position %d (vertex %d)", i, u)
		}
		// Pivot: the earliest-matched backward neighbor. Candidates are then
		// drawn from the data adjacency of its image, restricted by label.
		if len(e.backward[i]) > 0 {
			best := e.backward[i][0]
			for _, w := range e.backward[i][1:] {
				if pos[w] < pos[best] {
					best = w
				}
			}
			// Move pivot to front so the check loop can skip it.
			for j, w := range e.backward[i] {
				if w == best {
					e.backward[i][0], e.backward[i][j] = e.backward[i][j], e.backward[i][0]
					break
				}
			}
		}
		seen[u] = true
	}

	e.search(0)
	return Result{Embeddings: e.found, Steps: e.budget.steps, Aborted: e.budget.aborted, Stopped: e.stopped}, nil
}

type enumerator struct {
	q, g     *graph.Graph
	cand     *Candidates
	order    []graph.VertexID
	backward [][]graph.VertexID
	isect    [][]graph.VertexID // per-depth Φ(u) ∩ N(pivot) buffers
	opts     Options            // by value: storing &opts would heap-allocate it per call
	budget   searchBudget

	mapping []graph.VertexID
	used    *scratch.Bits
	found   uint64
	stop    bool
	stopped bool // an OnEmbedding callback returned false
}

// search extends the partial embedding at the given depth. It sets e.stop
// when the limit is reached, the caller cancels, or the budget is exhausted.
func (e *enumerator) search(depth int) {
	if depth == len(e.order) {
		debugCheckEmbedding(e.q, e.g, e.mapping) // sqdebug builds only
		e.found++
		if e.opts.OnEmbedding != nil && !e.opts.OnEmbedding(e.mapping) {
			e.stop = true
			e.stopped = true
		}
		if e.opts.Limit != 0 && e.found >= e.opts.Limit {
			e.stop = true
		}
		return
	}
	if e.budget.spend() {
		e.stop = true
		return
	}
	u := e.order[depth]
	if depth == 0 {
		for _, v := range e.cand.Sets[u] {
			e.extend(depth, u, v)
			if e.stop {
				return
			}
		}
		return
	}
	bw := e.backward[depth]
	pivotImage := e.mapping[bw[0]]
	// Φ(u) ∩ N_label(pivotImage): both inputs ascending, so the shared
	// kernel replaces the probe loop. The result lives in this depth's
	// arena row, stable across the deeper recursion.
	nbrs := e.g.NeighborsWithLabel(pivotImage, e.q.Label(u))
	buf := graph.IntersectSorted(e.isect[depth][:0], e.cand.Sets[u], nbrs)
	e.isect[depth] = buf
	for _, v := range buf {
		if e.used.Get(uint32(v)) {
			continue
		}
		ok := true
		for _, w := range bw[1:] {
			if !e.g.HasEdge(e.mapping[w], v) {
				ok = false
				break
			}
		}
		if ok {
			e.extend(depth, u, v)
			if e.stop {
				return
			}
		}
	}
}

func (e *enumerator) extend(depth int, u, v graph.VertexID) {
	e.mapping[u] = v
	e.used.Set(uint32(v))
	e.search(depth + 1)
	e.used.Clear(uint32(v))
}

// VerifyOrder checks that order is a valid connected permutation of the
// query vertices; exposed for tests of the ordering strategies.
func VerifyOrder(q *graph.Graph, order []graph.VertexID) error {
	if len(order) != q.NumVertices() {
		return fmt.Errorf("matching: order has %d vertices, query has %d", len(order), q.NumVertices())
	}
	seen := make([]bool, q.NumVertices())
	for i, u := range order {
		if int(u) >= q.NumVertices() || seen[u] {
			return fmt.Errorf("matching: order is not a permutation at position %d", i)
		}
		if i > 0 {
			connected := false
			for _, w := range q.Neighbors(u) {
				if seen[w] {
					connected = true
					break
				}
			}
			if !connected {
				return fmt.Errorf("matching: vertex %d at position %d has no earlier neighbor", u, i)
			}
		}
		seen[u] = true
	}
	return nil
}
