package matching

import "subgraphquery/internal/graph"

// Ullmann is the classic 1976 subgraph isomorphism algorithm [32], included
// as the historical direct-enumeration baseline. It seeds per-vertex
// candidate sets from label and degree, applies Ullmann's refinement
// procedure (every candidate must have a candidate neighbor for each query
// neighbor) and then backtracks in query vertex id order.
type Ullmann struct{}

// Run enumerates subgraph isomorphisms from q to g under opts.
func (Ullmann) Run(q, g *graph.Graph, opts Options) Result {
	if q.NumVertices() == 0 {
		return Result{Embeddings: 1}
	}
	if q.NumVertices() > g.NumVertices() || q.NumEdges() > g.NumEdges() {
		return Result{}
	}
	cand := NewCandidates(q.NumVertices(), g.NumVertices())
	for u := 0; u < q.NumVertices(); u++ {
		uu := graph.VertexID(u)
		for v := 0; v < g.NumVertices(); v++ {
			vv := graph.VertexID(v)
			if g.Label(vv) == q.Label(uu) && g.Degree(vv) >= q.Degree(uu) {
				cand.Add(uu, vv)
			}
		}
	}
	refineUllmann(q, g, cand)
	if cand.AnyEmpty() {
		return Result{}
	}

	order := connectedIDOrder(q)
	res, err := Enumerate(q, g, cand, order, opts)
	if err != nil {
		// The query is connected by contract; an invalid order is a bug.
		panic(err)
	}
	return res
}

// FindFirst stops at the first embedding.
func (a Ullmann) FindFirst(q, g *graph.Graph, opts Options) Result {
	opts.Limit = 1
	return a.Run(q, g, opts)
}

// refineUllmann iterates Ullmann's refinement to a fixpoint: v stays in
// Φ(u) only if for every query neighbor u' of u, v has some neighbor in
// Φ(u').
func refineUllmann(q, g *graph.Graph, cand *Candidates) {
	changed := true
	for changed {
		changed = false
		for u := 0; u < q.NumVertices(); u++ {
			uu := graph.VertexID(u)
			before := cand.Count(uu)
			cand.Retain(uu, func(v graph.VertexID) bool {
				for _, up := range q.Neighbors(uu) {
					ok := false
					for _, w := range g.NeighborsWithLabel(v, q.Label(up)) {
						if cand.Contains(up, w) {
							ok = true
							break
						}
					}
					if !ok {
						return false
					}
				}
				return true
			})
			if cand.Count(uu) != before {
				changed = true
			}
		}
	}
}

// connectedIDOrder returns the query vertices in an order that starts at
// vertex 0 and always extends by the smallest-id vertex adjacent to the
// prefix, mirroring Ullmann's simple static ordering while keeping the
// order connected for Enumerate.
func connectedIDOrder(q *graph.Graph) []graph.VertexID {
	n := q.NumVertices()
	order := make([]graph.VertexID, 0, n)
	in := make([]bool, n)
	order = append(order, 0)
	in[0] = true
	for len(order) < n {
		picked := -1
		for u := 0; u < n; u++ {
			if in[u] {
				continue
			}
			for _, w := range q.Neighbors(graph.VertexID(u)) {
				if in[w] {
					picked = u
					break
				}
			}
			if picked != -1 {
				break
			}
		}
		if picked == -1 { // disconnected; take smallest free id
			for u := 0; u < n; u++ {
				if !in[u] {
					picked = u
					break
				}
			}
		}
		in[picked] = true
		order = append(order, graph.VertexID(picked))
	}
	return order
}
