package matching

// Maximum bipartite matching via BFS-based augmenting paths, the algorithm
// the paper selects for GraphQL's pseudo subgraph isomorphism refinement
// following the study of maximum transversal algorithms by Duff, Kaya and
// Uçar [8]: "a breadth-first search based maximum bigraph matching algorithm
// whose time complexity is O(|V(B)| × |E(B)|) ... has a reasonable
// performance and it is easy to implement".

// bipartiteMatcher finds maximum matchings in bipartite graphs given by
// adjacency lists from left vertices to right vertices. It is reusable
// across calls to avoid allocation in the refinement inner loop.
type bipartiteMatcher struct {
	matchL  []int32 // matchL[l] = right vertex matched to l, or -1
	matchR  []int32 // matchR[r] = left vertex matched to r, or -1
	parent  []int32 // BFS tree: parent[r] = left vertex that reached right r
	visited []int32 // visit stamps for right vertices
	stamp   int32
	queue   []int32
}

// reset prepares the matcher for a bipartite graph with nl left and nr
// right vertices.
func (m *bipartiteMatcher) reset(nl, nr int) {
	if cap(m.matchL) < nl {
		m.matchL = make([]int32, nl)
	}
	m.matchL = m.matchL[:nl]
	for i := range m.matchL {
		m.matchL[i] = -1
	}
	if cap(m.matchR) < nr {
		m.matchR = make([]int32, nr)
		m.parent = make([]int32, nr)
		m.visited = make([]int32, nr)
	}
	m.matchR = m.matchR[:nr]
	m.parent = m.parent[:nr]
	m.visited = m.visited[:nr]
	for i := range m.matchR {
		m.matchR[i] = -1
		m.visited[i] = 0
	}
	m.stamp = 0
}

// maxMatching computes the size of a maximum matching. adj[l] lists the
// right vertices adjacent to left vertex l. It augments from each left
// vertex in turn using BFS, O(V × E) overall.
func (m *bipartiteMatcher) maxMatching(adj [][]int32) int {
	size := 0
	for l := range adj {
		m.stamp++
		if m.augment(int32(l), adj) {
			size++
		}
	}
	return size
}

// semiPerfect reports whether a matching saturating every left vertex
// exists — the semi-perfect matching test of GraphQL's refinement: every
// neighbor of the query vertex must be matchable to a distinct neighbor of
// the data vertex. It exits early as soon as a left vertex cannot be
// augmented.
func (m *bipartiteMatcher) semiPerfect(adj [][]int32) bool {
	for l := range adj {
		m.stamp++
		if !m.augment(int32(l), adj) {
			return false
		}
	}
	return true
}

// augment searches for an augmenting path from free left vertex l using BFS
// and applies it if found.
func (m *bipartiteMatcher) augment(l int32, adj [][]int32) bool {
	m.queue = m.queue[:0]
	m.queue = append(m.queue, l)
	for qi := 0; qi < len(m.queue); qi++ {
		cur := m.queue[qi]
		for _, r := range adj[cur] {
			if m.visited[r] == m.stamp {
				continue
			}
			m.visited[r] = m.stamp
			m.parent[r] = cur
			if m.matchR[r] == -1 {
				// Augment along the alternating path back to l.
				for {
					prevL := m.parent[r]
					prevR := m.matchL[prevL]
					m.matchR[r] = prevL
					m.matchL[prevL] = r
					if prevL == l {
						return true
					}
					r = prevR
				}
			}
			m.queue = append(m.queue, m.matchR[r])
		}
	}
	return false
}

// MaxBipartiteMatching computes the size of a maximum matching in the
// bipartite graph where adj[l] lists right-side neighbors of left vertex l
// and nr is the number of right vertices. Exported for direct use and
// testing; the GraphQL filter uses the reusable matcher internally.
func MaxBipartiteMatching(adj [][]int32, nr int) int {
	var m bipartiteMatcher
	m.reset(len(adj), nr)
	return m.maxMatching(adj)
}
