package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func diffFixture(p50 map[string]map[string]int64) BenchReport {
	r := BenchReport{
		Schema:    BenchSchema,
		Dataset:   "AIDS",
		QuerySets: map[string]map[string]SetMetricsJSON{},
	}
	for set, engines := range p50 {
		out := map[string]SetMetricsJSON{}
		for en, v := range engines {
			out[en] = SetMetricsJSON{P50US: v}
		}
		r.QuerySets[set] = out
	}
	return r
}

func TestDiffReportsRegression(t *testing.T) {
	base := diffFixture(map[string]map[string]int64{
		"Q8S": {"CFQL": 1000, "Grapes": 2000},
	})
	cur := diffFixture(map[string]map[string]int64{
		"Q8S": {"CFQL": 1200, "Grapes": 2100},
	})
	deltas, missing, err := DiffReports(base, cur, DefaultDiffFloorUS)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	regs := Regressions(deltas, DefaultDiffThreshold)
	if len(regs) != 1 || regs[0].Engine != "CFQL" {
		t.Fatalf("Regressions = %+v, want exactly CFQL (+20%%)", regs)
	}
	// Grapes moved +5%, inside the threshold.
	if got := regs[0].Ratio; got < 1.19 || got > 1.21 {
		t.Fatalf("ratio = %v, want 1.2", got)
	}
	// Worst-first ordering.
	if deltas[0].Engine != "CFQL" {
		t.Fatalf("deltas not worst-first: %+v", deltas)
	}
}

func TestDiffReportsNoiseFloor(t *testing.T) {
	base := diffFixture(map[string]map[string]int64{"Q8S": {"CFL": 100}})
	cur := diffFixture(map[string]map[string]int64{"Q8S": {"CFL": 400}}) // 4x, but sub-floor
	deltas, _, err := DiffReports(base, cur, DefaultDiffFloorUS)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("sub-floor cells compared: %+v", deltas)
	}
	// Crossing the floor is compared: 100 -> 600.
	cur = diffFixture(map[string]map[string]int64{"Q8S": {"CFL": 600}})
	deltas, _, err = DiffReports(base, cur, DefaultDiffFloorUS)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("floor-crossing cell dropped: %+v", deltas)
	}
}

func TestDiffReportsMissingCells(t *testing.T) {
	base := diffFixture(map[string]map[string]int64{
		"Q8S":  {"CFQL": 1000, "GGSX": 1500},
		"Q16D": {"CFQL": 3000},
	})
	cur := diffFixture(map[string]map[string]int64{
		"Q8S": {"CFQL": 1000, "vcGrapes": 900},
	})
	_, missing, err := DiffReports(base, cur, DefaultDiffFloorUS)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GGSX", "Q16D", "vcGrapes"}
	for _, frag := range want {
		found := false
		for _, m := range missing {
			if strings.Contains(m, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing list %v lacks an entry about %s", missing, frag)
		}
	}
}

func TestDiffReportsConfigMismatch(t *testing.T) {
	base := diffFixture(nil)
	cur := diffFixture(nil)
	cur.Config.Scale = 0.5
	if _, _, err := DiffReports(base, cur, DefaultDiffFloorUS); err == nil {
		t.Fatal("config mismatch not rejected")
	}
}

// TestReadReportCommittedBaselines: the pre-PR baselines committed under
// bench/pre-pr must stay loadable with the current schema.
func TestReadReportCommittedBaselines(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "bench", "pre-pr", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed baselines")
	}
	for _, p := range paths {
		r, err := ReadReport(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if len(r.QuerySets) == 0 {
			t.Errorf("%s: no query sets", p)
		}
	}
}
