package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	cfg := tinyConfig()
	rows, err := RunExtensions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ExtensionEngines) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ExtensionEngines))
	}
	// Engines that built must agree on the answer count (no timeouts at
	// this scale means identical |A(q)|).
	var wantAnswers float64 = -1
	for _, r := range rows {
		if r.BuildOOT || r.TimedOut > 0 {
			continue
		}
		if wantAnswers < 0 {
			wantAnswers = r.Answers
		} else if r.Answers != wantAnswers {
			t.Errorf("%s: answers %.2f != %.2f", r.Engine, r.Answers, wantAnswers)
		}
	}
	if wantAnswers <= 0 {
		t.Error("no engine produced answers")
	}

	var buf bytes.Buffer
	out := cfg
	out.Out = &buf
	RenderExtensions(out, rows)
	for _, en := range []string{"FG-Index", "TreePi", "CFQL", "Scan-VF2"} {
		if !strings.Contains(buf.String(), en) {
			t.Errorf("rendered table lacks %s", en)
		}
	}
}
