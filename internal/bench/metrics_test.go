package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/telemetry"
)

// stubEngine returns a canned Result regardless of the query, letting
// tests inject pathological phase timings RunQuerySet must survive.
type stubEngine struct {
	res core.Result
}

func (s *stubEngine) Name() string                                       { return "stub" }
func (s *stubEngine) Build(*graph.Database, core.BuildOptions) error     { return nil }
func (s *stubEngine) IndexMemory() int64                                 { return 0 }
func (s *stubEngine) Query(*graph.Graph, core.QueryOptions) *core.Result { r := s.res; return &r }

func stubQueries(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	qs := make([]*graph.Graph, n)
	for i := range qs {
		g, err := graph.FromEdges([]graph.Label{0, 1}, []graph.Edge{{U: 0, V: 1}})
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = g
	}
	return qs
}

// TestTimedOutClampNeverNegative: a timed-out query whose filtering alone
// overshot the budget (deadlines are only checked between graphs) must be
// recorded at the budget value with a zero — never negative — verification
// time. Regression test for the timed-out accounting computing
// VerifyTime = budget - FilterTime without capping FilterTime first.
func TestTimedOutClampNeverNegative(t *testing.T) {
	cfg := tinyConfig()
	e := &stubEngine{res: core.Result{
		FilterTime: 2 * cfg.QueryBudget, // filter alone blew the budget
		VerifyTime: 0,
		TimedOut:   true,
	}}
	m := RunQuerySet(e, stubQueries(t, 3), cfg)
	if m.TimedOut != 3 {
		t.Fatalf("TimedOut = %d, want 3", m.TimedOut)
	}
	if m.VerifyTime < 0 {
		t.Errorf("VerifyTime %v negative", m.VerifyTime)
	}
	if m.FilterTime != cfg.QueryBudget {
		t.Errorf("FilterTime = %v, want capped at budget %v", m.FilterTime, cfg.QueryBudget)
	}
	if m.VerifyTime != 0 {
		t.Errorf("VerifyTime = %v, want 0", m.VerifyTime)
	}
	// The paper's rule: a timed-out query counts exactly the budget.
	if m.QueryTime() != cfg.QueryBudget {
		t.Errorf("QueryTime = %v, want budget %v", m.QueryTime(), cfg.QueryBudget)
	}
}

// TestTimedOutRecordedAtBudget: the usual timeout shape — some filtering,
// truncated verification — is topped up to exactly the budget.
func TestTimedOutRecordedAtBudget(t *testing.T) {
	cfg := tinyConfig()
	e := &stubEngine{res: core.Result{
		FilterTime: cfg.QueryBudget / 10,
		VerifyTime: cfg.QueryBudget / 10,
		TimedOut:   true,
	}}
	m := RunQuerySet(e, stubQueries(t, 2), cfg)
	if m.QueryTime() != cfg.QueryBudget {
		t.Errorf("QueryTime = %v, want budget %v", m.QueryTime(), cfg.QueryBudget)
	}
	if m.FilterTime != cfg.QueryBudget/10 {
		t.Errorf("FilterTime = %v, want %v untouched", m.FilterTime, cfg.QueryBudget/10)
	}
}

// TestQueryPercentiles: the per-query latency percentiles are populated
// and ordered.
func TestQueryPercentiles(t *testing.T) {
	cfg := tinyConfig()
	e := &stubEngine{res: core.Result{
		FilterTime: 2 * time.Millisecond,
		VerifyTime: 3 * time.Millisecond,
	}}
	m := RunQuerySet(e, stubQueries(t, 10), cfg)
	if m.QueryP50 <= 0 {
		t.Errorf("QueryP50 = %v, want > 0", m.QueryP50)
	}
	if m.QueryP50 > m.QueryP90 || m.QueryP90 > m.QueryP99 {
		t.Errorf("percentiles not ordered: %v %v %v", m.QueryP50, m.QueryP90, m.QueryP99)
	}
	// All queries took 5ms; the log-spaced estimate must land in the
	// containing bucket (4ms, 8ms].
	if m.QueryP99 < 4*time.Millisecond || m.QueryP99 > 8*time.Millisecond {
		t.Errorf("QueryP99 = %v, want within (4ms, 8ms]", m.QueryP99)
	}
}

// fpStubEngine is stubEngine with real fingerprints: the canned Result is
// stamped with the query's canonical hash, like every production engine.
type fpStubEngine struct{ stubEngine }

func (s *fpStubEngine) Query(q *graph.Graph, _ core.QueryOptions) *core.Result {
	r := s.res
	r.Fingerprint = telemetry.Compute(q)
	return &r
}

// TestShapeBreakdown: RunQuerySet groups queries by fingerprint and the
// breakdown survives the JSON round trip.
func TestShapeBreakdown(t *testing.T) {
	cfg := tinyConfig()
	path, err := graph.FromEdges([]graph.Label{0, 1}, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tri, err := graph.FromEdges([]graph.Label{0, 0, 0},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	e := &fpStubEngine{stubEngine{res: core.Result{
		FilterTime: time.Millisecond,
		VerifyTime: time.Millisecond,
		Answers:    []int{1, 2},
	}}}
	m := RunQuerySet(e, []*graph.Graph{path, tri, path, path, tri}, cfg)
	if len(m.Shapes) != 2 {
		t.Fatalf("Shapes = %d entries, want 2: %+v", len(m.Shapes), m.Shapes)
	}
	top := m.Shapes[0]
	if top.Count != 3 || top.Shape != "2v/1e" {
		t.Errorf("top shape = %+v, want the path counted 3x as 2v/1e", top)
	}
	if top.Fingerprint != telemetry.Compute(path).String() {
		t.Errorf("top fingerprint = %s, want %s", top.Fingerprint, telemetry.Compute(path))
	}
	if top.Latency.P50US <= 0 {
		t.Errorf("top shape has no latency quantiles: %+v", top.Latency)
	}

	j := m.JSON()
	data, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back SetMetricsJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Shapes) != 2 || back.Shapes[0].Count != 3 {
		t.Errorf("shapes lost in JSON round trip: %+v", back.Shapes)
	}
}

func TestSetMetricsJSON(t *testing.T) {
	m := SetMetrics{
		Queries:    7,
		TimedOut:   1,
		FilterTime: 2 * time.Millisecond,
		VerifyTime: 3 * time.Millisecond,
		Candidates: 4.5,
		Answers:    2.5,
		Precision:  0.55,
		PerSITest:  600 * time.Microsecond,
		AuxMemory:  1 << 20,
		QueryP50:   4 * time.Millisecond,
		QueryP90:   6 * time.Millisecond,
		QueryP99:   8 * time.Millisecond,
	}
	j := m.JSON()
	if j.Queries != 7 || j.TimedOut != 1 {
		t.Errorf("counts: %+v", j)
	}
	if j.FilterUS != 2000 || j.VerifyUS != 3000 || j.QueryUS != 5000 {
		t.Errorf("times: %+v", j)
	}
	if j.P50US != 4000 || j.P90US != 6000 || j.P99US != 8000 {
		t.Errorf("percentiles: %+v", j)
	}
	if j.PerSIUS != 600 || j.AuxBytes != 1<<20 {
		t.Errorf("per-SI/aux: %+v", j)
	}
}

// TestWriteRealJSON: a hand-built evaluation round-trips through
// BENCH_<dataset>.json with the schema marker and per-set metrics intact.
func TestWriteRealJSON(t *testing.T) {
	ev := &RealEvaluation{
		Config:   tinyConfig(),
		Datasets: []gen.RealDataset{gen.AIDS},
		IndexTime: map[gen.RealDataset]map[string]IndexCell{
			gen.AIDS: {
				"CFQL":   {Time: 5 * time.Millisecond},
				"Grapes": {OOT: true},
			},
		},
		IndexMemory:   map[gen.RealDataset]map[string]int64{gen.AIDS: {"CFQL": 4096}},
		DatasetMemory: map[gen.RealDataset]int64{gen.AIDS: 1 << 16},
		Metrics: map[gen.RealDataset]map[string]map[string]SetMetrics{
			gen.AIDS: {
				"Q8S": {"CFQL": {Queries: 3, FilterTime: time.Millisecond, Precision: 0.9}},
			},
		},
	}

	dir := t.TempDir()
	paths, err := WriteRealJSON(dir, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "BENCH_AIDS.json" {
		t.Fatalf("paths = %v", paths)
	}

	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != BenchSchema {
		t.Errorf("schema = %q", back.Schema)
	}
	if back.Dataset != "AIDS" {
		t.Errorf("dataset = %q", back.Dataset)
	}
	if back.IndexTimeUS["CFQL"] != 5000 {
		t.Errorf("index time = %v", back.IndexTimeUS)
	}
	if len(back.OOT) != 1 || back.OOT[0] != "Grapes" {
		t.Errorf("OOT = %v", back.OOT)
	}
	got := back.QuerySets["Q8S"]["CFQL"]
	if got.Queries != 3 || got.FilterUS != 1000 || got.Precision != 0.9 {
		t.Errorf("metrics = %+v", got)
	}
}
