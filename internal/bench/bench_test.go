package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
)

func coreBuild(cfg Config) core.BuildOptions {
	return core.BuildOptions{Deadline: time.Now().Add(cfg.IndexBudget), Workers: cfg.Workers}
}

// tinyConfig keeps harness tests fast: miniature datasets, few queries.
func tinyConfig() Config {
	return Config{
		Scale:       0.002,
		QueryCount:  3,
		Seed:        2,
		IndexBudget: time.Second,
		QueryBudget: 250 * time.Millisecond,
		Workers:     2,
	}
}

func TestDefaultsNormalized(t *testing.T) {
	var zero Config
	n := zero.normalized()
	if n.Scale <= 0 || n.QueryCount <= 0 || n.Seed == 0 ||
		n.IndexBudget <= 0 || n.QueryBudget <= 0 || n.Workers <= 0 || n.Out == nil {
		t.Errorf("normalized zero config has zero fields: %+v", n)
	}
}

func TestNewEngineKnowsAllNames(t *testing.T) {
	for _, name := range EngineNames {
		e, err := NewEngine(name)
		if err != nil {
			t.Errorf("NewEngine(%q): %v", name, err)
			continue
		}
		if e.Name() != name {
			t.Errorf("NewEngine(%q).Name() = %q", name, e.Name())
		}
	}
	if _, err := NewEngine("bogus"); err == nil {
		t.Error("NewEngine(bogus) should fail")
	}
	// Extension engines are constructible too.
	for _, name := range []string{"Scan-VF2", "TurboIso", "CFQL-parallel", "GraphGrep", "gIndex"} {
		if _, err := NewEngine(name); err != nil {
			t.Errorf("NewEngine(%q): %v", name, err)
		}
	}
}

func TestIsIndexed(t *testing.T) {
	for _, name := range []string{"CT-Index", "Grapes", "GGSX", "vcGrapes", "vcGGSX"} {
		if !IsIndexed(name) {
			t.Errorf("IsIndexed(%q) = false", name)
		}
	}
	for _, name := range []string{"CFL", "GraphQL", "CFQL", "Scan-VF2"} {
		if IsIndexed(name) {
			t.Errorf("IsIndexed(%q) = true", name)
		}
	}
}

func TestSweepPointsShape(t *testing.T) {
	cfg := tinyConfig()
	for _, axis := range SweepAxes() {
		pts := SweepPoints(axis, cfg)
		if len(pts) != 5 {
			t.Errorf("%s: %d points, want 5", axis, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				t.Errorf("%s: points not increasing: %v", axis, pts)
			}
		}
	}
	if got := SweepPoints(AxisLabels, cfg); got[0] != 1 || got[4] != 80 {
		t.Errorf("label sweep = %v, want the paper's 1..80 ladder", got)
	}
	if got := SweepPoints(AxisDegree, cfg); got[0] != 4 || got[4] != 64 {
		t.Errorf("degree sweep = %v, want the paper's 4..64 ladder", got)
	}
}

func TestSyntheticConfigAppliesAxis(t *testing.T) {
	cfg := tinyConfig()
	if sc := syntheticConfig(AxisLabels, 40, cfg); sc.NumLabels != 40 {
		t.Errorf("labels axis not applied: %+v", sc)
	}
	if sc := syntheticConfig(AxisDegree, 16, cfg); sc.Degree != 16 {
		t.Errorf("degree axis not applied: %+v", sc)
	}
	if sc := syntheticConfig(AxisVertices, 77, cfg); sc.NumVertices != 77 {
		t.Errorf("vertices axis not applied: %+v", sc)
	}
	if sc := syntheticConfig(AxisGraphs, 33, cfg); sc.NumGraphs != 33 {
		t.Errorf("graphs axis not applied: %+v", sc)
	}
}

func TestLoadRealScalesPerDataset(t *testing.T) {
	cfg := tinyConfig()
	for _, ds := range []struct {
		name      string
		minGraphs int
	}{
		{"AIDS", 50}, {"PDBS", 10}, {"PCM", 8}, {"PPI", 4},
	} {
		db, err := loadReal(gen.RealDataset(ds.name), cfg)
		if err != nil {
			t.Fatalf("%s: %v", ds.name, err)
		}
		if db.Len() < ds.minGraphs {
			t.Errorf("%s: %d graphs, want >= %d", ds.name, db.Len(), ds.minGraphs)
		}
	}
}

func TestMinF(t *testing.T) {
	if minF(1, 2) != 1 || minF(3, 2) != 2 {
		t.Error("minF broken")
	}
}

func TestRunQuerySetMetrics(t *testing.T) {
	cfg := tinyConfig()
	db, err := gen.Synthetic(gen.SyntheticConfig{
		NumGraphs: 20, NumVertices: 30, NumLabels: 5, Degree: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.QuerySet(db, gen.QuerySetConfig{
		Count: 5, Edges: 4, Method: gen.QueryRandomWalk, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine("CFQL")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Build(db, coreBuild(cfg)); err != nil {
		t.Fatal(err)
	}
	m := RunQuerySet(e, queries, cfg)
	if m.Queries != 5 {
		t.Errorf("Queries = %d, want 5", m.Queries)
	}
	if m.Answers <= 0 {
		t.Error("queries are drawn from the database; answers must be positive")
	}
	if m.Candidates < m.Answers {
		t.Errorf("candidates %.1f < answers %.1f", m.Candidates, m.Answers)
	}
	if m.Precision <= 0 || m.Precision > 1 {
		t.Errorf("precision %.3f outside (0,1]", m.Precision)
	}
	if m.TimedOut != 0 {
		t.Errorf("unexpected timeouts: %d", m.TimedOut)
	}
	if m.QueryTime() != m.FilterTime+m.VerifyTime {
		t.Error("QueryTime != FilterTime + VerifyTime")
	}
}

// TestRunRealSmoke runs the whole real-dataset study at miniature scale and
// validates the structural invariants of the results.
func TestRunRealSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	cfg := tinyConfig()
	var buf bytes.Buffer
	cfg.Out = &buf
	ev, err := RunReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Datasets) != 4 || len(ev.QuerySetNames) != 12 {
		t.Fatalf("got %d datasets, %d query sets", len(ev.Datasets), len(ev.QuerySetNames))
	}
	for _, ds := range ev.Datasets {
		if ev.DatasetMemory[ds] <= 0 {
			t.Errorf("%s: dataset memory not recorded", ds)
		}
		// Engines that built must have metrics for every query set; all
		// engines on one dataset must agree on answer counts.
		for _, setName := range ev.QuerySetNames {
			var wantAnswers float64 = -1
			for en, ok := range ev.Available[ds] {
				if !ok {
					continue
				}
				m, present := ev.Metrics[ds][setName][en]
				if !present {
					t.Fatalf("%s/%s: no metrics for available engine %s", ds, setName, en)
				}
				if m.TimedOut > 0 {
					continue // timeouts make answer counts lower bounds
				}
				if wantAnswers < 0 {
					wantAnswers = m.Answers
				} else if m.Answers != wantAnswers {
					t.Errorf("%s/%s: %s answers %.2f != %.2f", ds, setName, en, m.Answers, wantAnswers)
				}
				if m.Precision < 0 || m.Precision > 1 {
					t.Errorf("%s/%s/%s: precision %.3f", ds, setName, en, m.Precision)
				}
			}
		}
	}
	// Rendering must mention every engine and not panic.
	ev.RenderTableV()
	ev.RenderTableVI()
	ev.RenderTableVII()
	ev.RenderFig2()
	ev.RenderFig3()
	ev.RenderFig4()
	ev.RenderFig5()
	ev.RenderFig6()
	ev.RenderFig7()
	out := buf.String()
	for _, en := range EngineNames {
		if !strings.Contains(out, en) {
			t.Errorf("rendered output lacks engine %s", en)
		}
	}
	for _, want := range []string{"Table V", "Table VI", "Table VII", "Figure 2", "Figure 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output lacks %q", want)
		}
	}
}

// TestRunSyntheticSmoke runs the synthetic study at miniature scale.
func TestRunSyntheticSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	cfg := tinyConfig()
	cfg.IndexBudget = 10 * time.Second
	var buf bytes.Buffer
	cfg.Out = &buf
	ev, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, axis := range SweepAxes() {
		if len(ev.Cells[axis]) != 5 {
			t.Fatalf("%s: %d cells, want 5", axis, len(ev.Cells[axis]))
		}
	}
	// The |Σ|=1 cell must show precision ≈ 1 with all graphs as candidates
	// OR high precision with most graphs matching (the paper: "the
	// algorithms return all data graphs as candidates when there is only
	// one label ... most data graphs contain the query graphs").
	cell := ev.Cells[AxisLabels][0]
	if !cell.Skipped {
		if m, ok := cell.Metrics["CFQL"]; ok && m.Precision < 0.5 {
			t.Errorf("|Σ|=1: CFQL precision %.3f, expect high (most graphs match)", m.Precision)
		}
	}
	ev.RenderTableVIII()
	ev.RenderTableIX()
	ev.RenderFig8()
	ev.RenderFig9()
	out := buf.String()
	for _, want := range []string{"Table VIII", "Table IX", "Figure 8", "Figure 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output lacks %q", want)
		}
	}
}

func TestIndexCellString(t *testing.T) {
	if got := (IndexCell{OOT: true}).String(); got != "OOT" {
		t.Errorf("OOT cell = %q", got)
	}
	if got := (IndexCell{Time: 1500 * time.Millisecond}).String(); got != "1.50s" {
		t.Errorf("1.5s cell = %q", got)
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[time.Duration]string{
		0:                      "0",
		150 * time.Microsecond: "0.150ms",
		25 * time.Millisecond:  "25.0ms",
		3 * time.Second:        "3.00s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
}
