package bench

import (
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
	"subgraphquery/internal/telemetry"
)

// SetMetrics aggregates one engine's behaviour over one query set — the
// quantities defined in §IV-A "Metrics".
type SetMetrics struct {
	Queries  int // queries evaluated
	TimedOut int // queries that hit the budget

	// FilterTime and VerifyTime are averages per query.
	FilterTime time.Duration
	VerifyTime time.Duration

	// Candidates is the average |C(q)|; Answers the average |A(q)|.
	Candidates float64
	Answers    float64

	// Precision is the filtering precision of equation (1):
	// mean over queries of |A(q)|/|C(q)| (1 when C(q) is empty).
	Precision float64

	// PerSITest is equation (3): mean over queries of
	// T_verification(D,q)/|C(q)|, skipping queries with no candidates.
	PerSITest time.Duration

	// AuxMemory is the maximum per-query auxiliary (candidate set) memory.
	AuxMemory int64

	// QueryP50/P90/P99 are per-query total query time percentiles,
	// estimated from a log-spaced histogram (internal/obs). Means hide
	// stragglers; these expose the tail that dominates engine comparisons
	// under timeouts.
	QueryP50 time.Duration
	QueryP90 time.Duration
	QueryP99 time.Duration

	// Shapes breaks the set down by query fingerprint (top shapes by
	// count, descending): set-level means can hide one pathological shape
	// dragging the tail, and the per-shape latency quantiles expose it.
	Shapes []telemetry.ShapeSnapshot
}

// benchShapeTopK bounds the per-shape breakdown recorded in SetMetrics:
// enough to cover the paper's query sets (which hold fewer distinct
// shapes), small enough that BENCH_*.json stays reviewable.
const benchShapeTopK = 16

// RunQuerySet evaluates the engine on every query and aggregates metrics.
// Per the paper, queries exceeding the budget are recorded at the budget
// value and counted in TimedOut.
func RunQuerySet(e core.Engine, queries []*graph.Graph, cfg Config) SetMetrics {
	cfg = cfg.normalized()
	var m SetMetrics
	var precisionSum float64
	var perSISum time.Duration
	perSICount := 0
	var filterSum, verifySum time.Duration
	hist := obs.NewHistogram()
	shapes := telemetry.NewProfile(0)

	for _, q := range queries {
		res := e.Query(q, core.QueryOptions{
			Deadline: time.Now().Add(cfg.QueryBudget),
			Workers:  cfg.Workers,
		})
		m.Queries++
		if res.TimedOut {
			m.TimedOut++
			// Record a timed-out query at the budget value, the paper's
			// "record it as 10 minutes" rule. Filtering alone can overshoot
			// the budget (the deadline is only checked between graphs), so
			// cap it first; the verification remainder is then never
			// negative, and is clamped anyway as a guard against engines
			// reporting pathological phase times.
			if res.FilterTime > cfg.QueryBudget {
				res.FilterTime = cfg.QueryBudget
			}
			if res.QueryTime() < cfg.QueryBudget {
				res.VerifyTime = cfg.QueryBudget - res.FilterTime
			}
			if res.VerifyTime < 0 {
				res.VerifyTime = 0
			}
		}
		hist.Record(res.QueryTime())
		shapes.Record(telemetry.Event{
			Fingerprint:   res.Fingerprint,
			QueryVertices: q.NumVertices(),
			QueryEdges:    q.NumEdges(),
			DurationUS:    res.QueryTime().Microseconds(),
			FilterUS:      res.FilterTime.Microseconds(),
			VerifyUS:      res.VerifyTime.Microseconds(),
			Candidates:    res.Candidates,
			Answers:       len(res.Answers),
			Skipped:       res.Skipped,
			TimedOut:      res.TimedOut,
			Cancelled:     res.Cancelled,
			Error:         res.Err != nil,
		})
		filterSum += res.FilterTime
		verifySum += res.VerifyTime
		m.Candidates += float64(res.Candidates)
		m.Answers += float64(len(res.Answers))
		if res.Candidates > 0 {
			precisionSum += float64(len(res.Answers)) / float64(res.Candidates)
			perSISum += res.VerifyTime / time.Duration(res.Candidates)
			perSICount++
		} else {
			precisionSum += 1 // perfect filtering: nothing to verify
		}
		if res.AuxMemory > m.AuxMemory {
			m.AuxMemory = res.AuxMemory
		}
	}
	if m.Queries > 0 {
		n := time.Duration(m.Queries)
		m.FilterTime = filterSum / n
		m.VerifyTime = verifySum / n
		m.Candidates /= float64(m.Queries)
		m.Answers /= float64(m.Queries)
		m.Precision = precisionSum / float64(m.Queries)
	}
	if perSICount > 0 {
		m.PerSITest = perSISum / time.Duration(perSICount)
	}
	m.QueryP50 = hist.Quantile(0.50)
	m.QueryP90 = hist.Quantile(0.90)
	m.QueryP99 = hist.Quantile(0.99)
	m.Shapes = shapes.Snapshot(benchShapeTopK).Top
	return m
}

// QueryTime returns the average query time (filtering + verification).
func (m SetMetrics) QueryTime() time.Duration { return m.FilterTime + m.VerifyTime }
