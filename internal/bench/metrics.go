package bench

import (
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/graph"
)

// SetMetrics aggregates one engine's behaviour over one query set — the
// quantities defined in §IV-A "Metrics".
type SetMetrics struct {
	Queries  int // queries evaluated
	TimedOut int // queries that hit the budget

	// FilterTime and VerifyTime are averages per query.
	FilterTime time.Duration
	VerifyTime time.Duration

	// Candidates is the average |C(q)|; Answers the average |A(q)|.
	Candidates float64
	Answers    float64

	// Precision is the filtering precision of equation (1):
	// mean over queries of |A(q)|/|C(q)| (1 when C(q) is empty).
	Precision float64

	// PerSITest is equation (3): mean over queries of
	// T_verification(D,q)/|C(q)|, skipping queries with no candidates.
	PerSITest time.Duration

	// AuxMemory is the maximum per-query auxiliary (candidate set) memory.
	AuxMemory int64
}

// RunQuerySet evaluates the engine on every query and aggregates metrics.
// Per the paper, queries exceeding the budget are recorded at the budget
// value and counted in TimedOut.
func RunQuerySet(e core.Engine, queries []*graph.Graph, cfg Config) SetMetrics {
	cfg = cfg.normalized()
	var m SetMetrics
	var precisionSum float64
	var perSISum time.Duration
	perSICount := 0
	var filterSum, verifySum time.Duration

	for _, q := range queries {
		res := e.Query(q, core.QueryOptions{
			Deadline: time.Now().Add(cfg.QueryBudget),
			Workers:  cfg.Workers,
		})
		m.Queries++
		if res.TimedOut {
			m.TimedOut++
			// Record the budget as the verification time, mirroring the
			// paper's "record it as 10 minutes" rule.
			if res.QueryTime() < cfg.QueryBudget {
				res.VerifyTime = cfg.QueryBudget - res.FilterTime
			}
		}
		filterSum += res.FilterTime
		verifySum += res.VerifyTime
		m.Candidates += float64(res.Candidates)
		m.Answers += float64(len(res.Answers))
		if res.Candidates > 0 {
			precisionSum += float64(len(res.Answers)) / float64(res.Candidates)
			perSISum += res.VerifyTime / time.Duration(res.Candidates)
			perSICount++
		} else {
			precisionSum += 1 // perfect filtering: nothing to verify
		}
		if res.AuxMemory > m.AuxMemory {
			m.AuxMemory = res.AuxMemory
		}
	}
	if m.Queries > 0 {
		n := time.Duration(m.Queries)
		m.FilterTime = filterSum / n
		m.VerifyTime = verifySum / n
		m.Candidates /= float64(m.Queries)
		m.Answers /= float64(m.Queries)
		m.Precision = precisionSum / float64(m.Queries)
	}
	if perSICount > 0 {
		m.PerSITest = perSISum / time.Duration(perSICount)
	}
	return m
}

// QueryTime returns the average query time (filtering + verification).
func (m SetMetrics) QueryTime() time.Duration { return m.FilterTime + m.VerifyTime }
