package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Bench-regression gate: compare the per-engine, per-query-set p50 query
// latency between two BENCH_<dataset>.json reports and flag cells that got
// slower than a threshold. This turns performance into a tested property —
// the committed baselines under bench/ are the contract, and `sqbench diff`
// (wired into `make benchcmp` and CI via scripts/benchdiff.sh) fails when a
// change regresses a cell past the threshold.

// DefaultDiffThreshold is the relative p50 slowdown beyond which a cell is
// a regression: cur > base * (1 + threshold).
const DefaultDiffThreshold = 0.15

// DefaultDiffFloorUS is the noise floor in microseconds: cells whose p50 is
// below the floor in BOTH reports are skipped, because at bench scale a
// sub-floor p50 is dominated by scheduler jitter, not algorithmic cost.
const DefaultDiffFloorUS = 500

// Delta is one compared cell: the same engine on the same query set of the
// same dataset, in the base and current report.
type Delta struct {
	Dataset             string
	QuerySet            string
	Engine              string
	BaseP50US, CurP50US int64
	// Ratio is cur/base; > 1 means slower.
	Ratio float64
}

// Regression reports whether the delta exceeds the threshold (e.g. 0.15
// for +15%).
func (d Delta) Regression(threshold float64) bool {
	return d.Ratio > 1+threshold
}

// DiffReports compares every cell present in both reports. Cells present
// on only one side are returned in missing (engine additions/removals and
// OOT changes are visible, not silently dropped). Configs must match:
// comparing runs with different scales, seeds or budgets would compare
// workloads, not code.
func DiffReports(base, cur BenchReport, floorUS int64) (deltas []Delta, missing []string, err error) {
	if base.Config != cur.Config {
		return nil, nil, fmt.Errorf("bench: config mismatch between reports (base %+v, cur %+v); rerun with the baseline's parameters", base.Config, cur.Config)
	}
	for setName, baseEngines := range base.QuerySets {
		curEngines, ok := cur.QuerySets[setName]
		if !ok {
			missing = append(missing, fmt.Sprintf("%s/%s: query set absent in current report", base.Dataset, setName))
			continue
		}
		for en, bm := range baseEngines {
			cm, ok := curEngines[en]
			if !ok {
				missing = append(missing, fmt.Sprintf("%s/%s/%s: engine absent in current report", base.Dataset, setName, en))
				continue
			}
			if bm.P50US < floorUS && cm.P50US < floorUS {
				continue
			}
			d := Delta{
				Dataset:   base.Dataset,
				QuerySet:  setName,
				Engine:    en,
				BaseP50US: bm.P50US,
				CurP50US:  cm.P50US,
			}
			if bm.P50US > 0 {
				d.Ratio = float64(cm.P50US) / float64(bm.P50US)
			} else if cm.P50US > 0 {
				d.Ratio = float64(cm.P50US) / float64(max(bm.P50US, 1))
			} else {
				d.Ratio = 1
			}
			deltas = append(deltas, d)
		}
	}
	for setName, curEngines := range cur.QuerySets {
		baseEngines, ok := base.QuerySets[setName]
		if !ok {
			missing = append(missing, fmt.Sprintf("%s/%s: query set absent in base report", cur.Dataset, setName))
			continue
		}
		for en := range curEngines {
			if _, ok := baseEngines[en]; !ok {
				missing = append(missing, fmt.Sprintf("%s/%s/%s: engine absent in base report", cur.Dataset, setName, en))
			}
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		a, b := deltas[i], deltas[j]
		if a.Ratio != b.Ratio {
			return a.Ratio > b.Ratio // worst first
		}
		if a.QuerySet != b.QuerySet {
			return a.QuerySet < b.QuerySet
		}
		return a.Engine < b.Engine
	})
	sort.Strings(missing)
	return deltas, missing, nil
}

// Regressions filters deltas to those past the threshold, preserving the
// worst-first order.
func Regressions(deltas []Delta, threshold float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression(threshold) {
			out = append(out, d)
		}
	}
	return out
}

// ReadReport loads and schema-checks one BENCH_<dataset>.json file.
func ReadReport(path string) (BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchReport{}, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return BenchReport{}, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != BenchSchema {
		return BenchReport{}, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, BenchSchema)
	}
	return r, nil
}
