package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"subgraphquery/internal/gen"
)

// fabricatedReal builds a minimal RealEvaluation exhibiting the paper's
// expected shapes (or, with invert=true, their opposites).
func fabricatedReal(invert bool) *RealEvaluation {
	fast, slow := 1*time.Millisecond, 100*time.Millisecond
	if invert {
		fast, slow = slow, fast
	}
	hi, lo := 0.9, 0.5
	if invert {
		hi, lo = lo, hi
	}
	ev := &RealEvaluation{
		Config:        Config{}.normalized(),
		Datasets:      []gen.RealDataset{gen.AIDS},
		QuerySetNames: []string{"Q8S"},
		Metrics:       map[gen.RealDataset]map[string]map[string]SetMetrics{},
		IndexTime:     map[gen.RealDataset]map[string]IndexCell{},
		IndexMemory:   map[gen.RealDataset]map[string]int64{},
		DatasetMemory: map[gen.RealDataset]int64{gen.AIDS: 1 << 20},
		CFQLMemory:    map[gen.RealDataset]int64{gen.AIDS: 1 << 10},
		Available:     map[gen.RealDataset]map[string]bool{gen.AIDS: {}},
	}
	if invert {
		ev.CFQLMemory[gen.AIDS] = 1 << 30
	}
	ev.Metrics[gen.AIDS] = map[string]map[string]SetMetrics{
		"Q8S": {
			"Grapes":   {Candidates: 10, Precision: lo, PerSITest: slow, VerifyTime: slow, FilterTime: fast},
			"GGSX":     {Candidates: 12, Precision: lo, PerSITest: slow, VerifyTime: slow, FilterTime: fast},
			"CFQL":     {Candidates: 10, Precision: hi, PerSITest: fast, VerifyTime: fast, FilterTime: fast},
			"CFL":      {Candidates: 10, Precision: hi, PerSITest: fast, VerifyTime: fast, FilterTime: fast},
			"GraphQL":  {Candidates: 10, Precision: hi, PerSITest: fast, VerifyTime: fast, FilterTime: slow},
			"vcGrapes": {Candidates: 9, Precision: hi, PerSITest: fast, VerifyTime: fast, FilterTime: fast},
		},
	}
	ev.IndexTime[gen.AIDS] = map[string]IndexCell{
		"CT-Index": {OOT: !invert, Time: slow},
		"Grapes":   {Time: fast},
		"GGSX":     {Time: fast},
	}
	ev.IndexMemory[gen.AIDS] = map[string]int64{"Grapes": 1 << 24}
	return ev
}

func TestRealShapesPassOnExpectedData(t *testing.T) {
	checks := fabricatedReal(false).CheckShapes()
	if len(checks) != 7 {
		t.Fatalf("got %d checks, want 7", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("claim %q failed on conforming data: %s", c.Name, c.Detail)
		}
	}
}

func TestRealShapesFailOnInvertedData(t *testing.T) {
	checks := fabricatedReal(true).CheckShapes()
	failures := 0
	for _, c := range checks {
		if !c.OK {
			failures++
		}
	}
	if failures < 5 {
		t.Errorf("only %d/7 claims failed on inverted data; the checker is too lenient", failures)
	}
}

func fabricatedSynthetic(invert bool) *SyntheticEvaluation {
	cfg := Config{}.normalized()
	ev := &SyntheticEvaluation{Config: cfg, Cells: map[SweepAxis][]SyntheticCell{}}
	numGraphs := float64(syntheticConfig(AxisLabels, 1, cfg).NumGraphs)
	mk := func(cand, prec float64, filter time.Duration) SyntheticCell {
		return SyntheticCell{
			Metrics:     map[string]SetMetrics{"CFQL": {Candidates: cand, Precision: prec, FilterTime: filter}},
			IndexTime:   map[string]IndexCell{"Grapes": {Time: time.Second}},
			IndexMemory: map[string]int64{"Grapes": 1 << 24},
			CFQLMemory:  1 << 10,
		}
	}
	lowPrec, highPrec := 0.6, 0.95
	if invert {
		lowPrec, highPrec = highPrec, lowPrec
	}
	ev.Cells[AxisLabels] = []SyntheticCell{
		mk(numGraphs, 0.9, time.Millisecond),
		mk(numGraphs/2, lowPrec, time.Millisecond),
		mk(numGraphs/3, 0.8, time.Millisecond),
		mk(numGraphs/4, 0.9, time.Millisecond),
		mk(numGraphs/5, highPrec, time.Millisecond),
	}
	if invert {
		ev.Cells[AxisLabels][0] = mk(1, 0.1, time.Millisecond)
	}
	grow := []time.Duration{time.Millisecond, 2 * time.Millisecond, 10 * time.Millisecond, 80 * time.Millisecond, 700 * time.Millisecond}
	if invert {
		grow = []time.Duration{time.Millisecond, time.Second, 100 * time.Second, 1000 * time.Second, 100000 * time.Second}
	}
	var dCells, vCells, gCells []SyntheticCell
	for i := 0; i < 5; i++ {
		dCells = append(dCells, mk(10, 0.9, grow[i]))
		vCells = append(vCells, mk(10, 0.9, grow[i]))
		gCells = append(gCells, mk(10, 0.9, grow[i]))
	}
	// Degree ladder: Grapes degrades steeply (or not, when inverted).
	dCells[0].IndexTime = map[string]IndexCell{"Grapes": {Time: time.Second}}
	last := IndexCell{OOT: true}
	if invert {
		last = IndexCell{Time: time.Second}
	}
	dCells[4].IndexTime = map[string]IndexCell{"Grapes": last}
	if invert {
		gCells[4].CFQLMemory = 1 << 30
	}
	ev.Cells[AxisDegree] = dCells
	ev.Cells[AxisVertices] = vCells
	ev.Cells[AxisGraphs] = gCells
	return ev
}

func TestSyntheticShapesPassOnExpectedData(t *testing.T) {
	checks := fabricatedSynthetic(false).CheckShapes()
	if len(checks) != 5 {
		t.Fatalf("got %d checks, want 5", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("claim %q failed on conforming data: %s", c.Name, c.Detail)
		}
	}
}

func TestSyntheticShapesFailOnInvertedData(t *testing.T) {
	checks := fabricatedSynthetic(true).CheckShapes()
	failures := 0
	for _, c := range checks {
		if !c.OK {
			failures++
		}
	}
	if failures < 3 {
		t.Errorf("only %d/5 claims failed on inverted data; the checker is too lenient", failures)
	}
}

func TestRenderShapeReport(t *testing.T) {
	var buf bytes.Buffer
	RenderShapeReport(&buf, "title:", []ShapeCheck{
		{Name: "a", OK: true, Detail: "da"},
		{Name: "b", OK: false, Detail: "db"},
	})
	out := buf.String()
	for _, want := range []string{"title:", "[ok", "[FAIL", "1/2 claims hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}
