package bench

import (
	"fmt"
	"time"
)

// ShapeCheck records one qualitative claim of the paper evaluated against a
// harness run. Absolute numbers vary with scale and hardware; these are the
// findings that must *hold in shape* for the reproduction to count
// (DESIGN.md lists them as expected shapes 1–7).
type ShapeCheck struct {
	Name   string
	OK     bool
	Detail string
}

// CheckShapes evaluates the real-dataset claims.
func (ev *RealEvaluation) CheckShapes() []ShapeCheck {
	var out []ShapeCheck

	// 1. Per-SI-test time: VF2-based verification is orders of magnitude
	// slower than efficient-matching verification (Figure 5).
	{
		var vf2, vc time.Duration
		var n int
		for _, ds := range ev.Datasets {
			for _, set := range ev.QuerySetNames {
				g, gok := ev.Metrics[ds][set]["Grapes"]
				c, cok := ev.Metrics[ds][set]["CFQL"]
				if gok && cok && g.Candidates > 0 && c.Candidates > 0 {
					vf2 += g.PerSITest
					vc += c.PerSITest
					n++
				}
			}
		}
		ok := n > 0 && vf2 > 2*vc
		out = append(out, ShapeCheck{
			Name: "per-SI-test: VF2 (Grapes) slower than CFQL",
			OK:   ok,
			Detail: fmt.Sprintf("mean per-SI test %v (VF2) vs %v (CFQL) over %d cells",
				avgDur(vf2, n), avgDur(vc, n), n),
		})
	}

	// 2. Filtering precision of CFQL is competitive: at least GGSX's
	// (Figure 2: vcFV comparable to IFV; GGSX is the weakest IFV filter).
	{
		var cfql, ggsx float64
		var n int
		for _, ds := range ev.Datasets {
			for _, set := range ev.QuerySetNames {
				g, gok := ev.Metrics[ds][set]["GGSX"]
				c, cok := ev.Metrics[ds][set]["CFQL"]
				if gok && cok {
					cfql += c.Precision
					ggsx += g.Precision
					n++
				}
			}
		}
		out = append(out, ShapeCheck{
			Name: "filtering precision: CFQL >= GGSX on average",
			OK:   n > 0 && cfql >= ggsx,
			Detail: fmt.Sprintf("mean precision %.3f (CFQL) vs %.3f (GGSX) over %d cells",
				cfql/f(n), ggsx/f(n), n),
		})
	}

	// 3. Integration helps: vcGrapes precision >= Grapes precision
	// (Figure 2: "integrating with CFQL makes both vcGrapes and vcGGSX
	// achieve a significantly higher filtering precision").
	{
		var vg, g float64
		var n int
		for _, ds := range ev.Datasets {
			for _, set := range ev.QuerySetNames {
				a, aok := ev.Metrics[ds][set]["vcGrapes"]
				b, bok := ev.Metrics[ds][set]["Grapes"]
				if aok && bok {
					vg += a.Precision
					g += b.Precision
					n++
				}
			}
		}
		out = append(out, ShapeCheck{
			Name: "two-level filtering: vcGrapes precision >= Grapes",
			OK:   n > 0 && vg >= g,
			Detail: fmt.Sprintf("mean precision %.3f (vcGrapes) vs %.3f (Grapes) over %d cells",
				vg/f(n), g/f(n), n),
		})
	}

	// 4. CFL's filter is faster than GraphQL's (Figure 3).
	{
		var cfl, gql time.Duration
		var n int
		for _, ds := range ev.Datasets {
			for _, set := range ev.QuerySetNames {
				a, aok := ev.Metrics[ds][set]["CFL"]
				b, bok := ev.Metrics[ds][set]["GraphQL"]
				if aok && bok {
					cfl += a.FilterTime
					gql += b.FilterTime
					n++
				}
			}
		}
		out = append(out, ShapeCheck{
			Name: "filtering time: CFL faster than GraphQL",
			OK:   n > 0 && cfl < gql,
			Detail: fmt.Sprintf("mean filter time %v (CFL) vs %v (GraphQL) over %d cells",
				avgDur(cfl, n), avgDur(gql, n), n),
		})
	}

	// 5. Verification time: IFV engines (VF2) slower than vcFV on average
	// (Figure 4).
	{
		var ifv, vcfv time.Duration
		var n int
		for _, ds := range ev.Datasets {
			for _, set := range ev.QuerySetNames {
				a, aok := ev.Metrics[ds][set]["Grapes"]
				b, bok := ev.Metrics[ds][set]["CFQL"]
				if aok && bok {
					ifv += a.VerifyTime
					vcfv += b.VerifyTime
					n++
				}
			}
		}
		out = append(out, ShapeCheck{
			Name: "verification time: Grapes (VF2) slower than CFQL",
			OK:   n > 0 && ifv > vcfv,
			Detail: fmt.Sprintf("mean verification %v (Grapes) vs %v (CFQL) over %d cells",
				avgDur(ifv, n), avgDur(vcfv, n), n),
		})
	}

	// 6. CFQL's auxiliary memory is far below the index sizes (Table VII).
	{
		ok := true
		detail := ""
		for _, ds := range ev.Datasets {
			im, exists := ev.IndexMemory[ds]["Grapes"]
			if !exists {
				continue
			}
			if ev.CFQLMemory[ds] >= im {
				ok = false
			}
			detail += fmt.Sprintf("%s: CFQL %.3fMB vs Grapes %.1fMB; ", ds, mb(ev.CFQLMemory[ds]), mb(im))
		}
		out = append(out, ShapeCheck{
			Name:   "memory: CFQL auxiliary << Grapes index",
			OK:     ok,
			Detail: detail,
		})
	}

	// 7. CT-Index indexing cost dwarfs Grapes/GGSX or fails outright
	// (Table VI: OOT on the dense datasets).
	{
		ok := true
		detail := ""
		for _, ds := range ev.Datasets {
			ct := ev.IndexTime[ds]["CT-Index"]
			gr := ev.IndexTime[ds]["Grapes"]
			if !ct.OOT && !gr.OOT && ct.Time < gr.Time {
				ok = false
			}
			detail += fmt.Sprintf("%s: CT=%s Grapes=%s; ", ds, ct, gr)
		}
		out = append(out, ShapeCheck{
			Name:   "indexing: CT-Index slowest or OOT on every dataset",
			OK:     ok,
			Detail: detail,
		})
	}

	return out
}

// CheckShapes evaluates the synthetic-study claims.
func (ev *SyntheticEvaluation) CheckShapes() []ShapeCheck {
	var out []ShapeCheck
	cfg := ev.Config

	// 1. |Σ|=1: label-free filtering admits (nearly) everything but most
	// graphs contain the query, so precision stays high (Figure 8).
	{
		cell := ev.Cells[AxisLabels][0]
		m, ok := cell.Metrics["CFQL"]
		numGraphs := float64(syntheticConfig(AxisLabels, 1, cfg).NumGraphs)
		pass := ok && m.Candidates > 0.9*numGraphs && m.Precision > 0.5
		out = append(out, ShapeCheck{
			Name: "|Σ|=1: all graphs pass the filter, precision stays high",
			OK:   pass,
			Detail: fmt.Sprintf("CFQL candidates %.1f of %.0f, precision %.3f",
				m.Candidates, numGraphs, m.Precision),
		})
	}

	// 2. Precision improves from |Σ|=10 to |Σ|=80 (Figure 8).
	{
		m10 := ev.Cells[AxisLabels][1].Metrics["CFQL"]
		m80 := ev.Cells[AxisLabels][4].Metrics["CFQL"]
		out = append(out, ShapeCheck{
			Name: "precision rises with |Σ| (10 -> 80)",
			OK:   m80.Precision >= m10.Precision,
			Detail: fmt.Sprintf("CFQL precision %.3f at |Σ|=10 vs %.3f at |Σ|=80",
				m10.Precision, m80.Precision),
		})
	}

	// 3. CFQL filter time grows roughly linearly with |D| (Figure 9):
	// compare the per-graph filter cost across the two largest completed
	// cells — superlinear blowup would break the claim.
	{
		cells := ev.Cells[AxisGraphs]
		points := SweepPoints(AxisGraphs, cfg)
		var loIdx, hiIdx = -1, -1
		for i := range cells {
			if _, ok := cells[i].Metrics["CFQL"]; ok && !cells[i].Skipped {
				if loIdx == -1 {
					loIdx = i
				}
				hiIdx = i
			}
		}
		ok := false
		detail := "insufficient cells"
		if loIdx >= 0 && hiIdx > loIdx {
			lo := cells[loIdx].Metrics["CFQL"].FilterTime
			hi := cells[hiIdx].Metrics["CFQL"].FilterTime
			scaleUp := float64(points[hiIdx]) / float64(points[loIdx])
			ratio := float64(hi) / float64(lo+1)
			ok = ratio < 10*scaleUp // generous envelope around linear
			detail = fmt.Sprintf("filter time %v at |D|=%d vs %v at |D|=%d (x%.0f data, x%.0f time)",
				lo, points[loIdx], hi, points[hiIdx], scaleUp, ratio)
		}
		out = append(out, ShapeCheck{
			Name:   "CFQL filter time roughly linear in |D|",
			OK:     ok,
			Detail: detail,
		})
	}

	// 4. Index construction degrades with degree: Grapes at d=4 must build;
	// by d=64 it is OOT or far slower (Table VIII).
	{
		cells := ev.Cells[AxisDegree]
		first := cells[0].IndexTime["Grapes"]
		last := cells[len(cells)-1].IndexTime["Grapes"]
		ok := !first.OOT && (last.OOT || last.Time > 4*first.Time)
		out = append(out, ShapeCheck{
			Name:   "Grapes indexing degrades steeply with d(G)",
			OK:     ok,
			Detail: fmt.Sprintf("d=4: %s, d=64: %s", first, last),
		})
	}

	// 5. CFQL memory is far below Grapes/GGSX wherever both exist
	// (Table IX).
	{
		ok := true
		worst := ""
		for _, axis := range SweepAxes() {
			for i, cell := range ev.Cells[axis] {
				gm, exists := cell.IndexMemory["Grapes"]
				if !exists || cell.Skipped {
					continue
				}
				if cell.CFQLMemory >= gm {
					ok = false
					worst = fmt.Sprintf("%s[%d]: CFQL %.4fMB vs Grapes %.4fMB",
						axis, i, mb(cell.CFQLMemory), mb(gm))
				}
			}
		}
		if worst == "" {
			worst = "CFQL below Grapes in every completed cell"
		}
		out = append(out, ShapeCheck{
			Name:   "memory: CFQL auxiliary << Grapes index (synthetic)",
			OK:     ok,
			Detail: worst,
		})
	}

	return out
}

// RenderShapeReport prints a pass/fail checklist.
func RenderShapeReport(w interface{ Write([]byte) (int, error) }, title string, checks []ShapeCheck) {
	fmt.Fprintf(w, "%s\n", title)
	pass := 0
	for _, c := range checks {
		mark := "FAIL"
		if c.OK {
			mark = "ok"
			pass++
		}
		fmt.Fprintf(w, "  [%-4s] %s\n         %s\n", mark, c.Name, c.Detail)
	}
	fmt.Fprintf(w, "  %d/%d claims hold\n", pass, len(checks))
}

func avgDur(total time.Duration, n int) time.Duration {
	if n == 0 {
		return 0
	}
	return (total / time.Duration(n)).Round(time.Microsecond)
}

func f(n int) float64 { return float64(n) }
