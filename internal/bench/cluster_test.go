package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	cfg := tinyConfig()
	study := ClusterStudyConfig{ShardCounts: []int{1, 3}}
	rows, err := RunCluster(cfg, study)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// Sharding must not change the result set: at this scale nothing times
	// out, so the 1-shard and 3-shard answer averages are identical.
	if rows[0].TimedOut == 0 && rows[1].TimedOut == 0 && rows[0].Answers != rows[1].Answers {
		t.Errorf("answers diverge across shard counts: %.2f (n=1) != %.2f (n=3)",
			rows[0].Answers, rows[1].Answers)
	}
	if rows[0].Answers <= 0 {
		t.Error("cluster track produced no answers")
	}
	for _, r := range rows {
		if r.IndexMemory < 0 || r.BuildTime <= 0 {
			t.Errorf("shards=%d: implausible build: time=%v mem=%d", r.Shards, r.BuildTime, r.IndexMemory)
		}
	}

	var buf bytes.Buffer
	out := cfg
	out.Out = &buf
	RenderCluster(out, study, rows)
	for _, want := range []string{"Cluster study", "CFQL", "hash", "p99"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table lacks %q", want)
		}
	}
}

func TestRunClusterRejectsUnknownEngine(t *testing.T) {
	if _, err := RunCluster(tinyConfig(), ClusterStudyConfig{Engine: "nope"}); err == nil {
		t.Fatal("want error for unknown engine")
	}
}
