package bench

import (
	"fmt"
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
	"subgraphquery/internal/graph"
)

// The extensions study compares every engine in the module — the paper's
// eight plus the Table II reproductions and the extensions — on one
// AIDS-like workload. It is not a paper experiment; it documents where
// each design point sits on the indexing-cost / filtering-power /
// verification-speed surface.

// ExtensionEngines lists every comparable engine configuration.
var ExtensionEngines = []string{
	"Scan-VF2",
	"GraphGrep", "Grapes", "GGSX", "CT-Index", // enumeration-based IFV
	"gIndex", "TreePi", "FG-Index", // mining-based IFV
	"CFL", "GraphQL", "CFQL", "TurboIso", "CFQL-parallel", // index-free
	"vcGrapes", "vcGGSX", // integrated
}

// ExtensionRow holds one engine's aggregate behaviour.
type ExtensionRow struct {
	Engine      string
	BuildTime   time.Duration
	BuildOOT    bool
	IndexMemory int64
	QueryTime   time.Duration // average per query
	Candidates  float64
	Answers     float64
	TimedOut    int
}

// RunExtensions executes the study over sparse and dense 8-edge workloads.
func RunExtensions(cfg Config) ([]ExtensionRow, error) {
	cfg = cfg.normalized()
	db, err := loadReal(gen.AIDS, cfg)
	if err != nil {
		return nil, err
	}
	var workload [][]*graph.Graph
	for _, m := range []gen.QueryMethod{gen.QueryRandomWalk, gen.QueryBFS} {
		qs, err := gen.QuerySet(db, gen.QuerySetConfig{
			Count: cfg.QueryCount, Edges: 8, Method: m, Seed: cfg.Seed + 5,
		})
		if err != nil {
			return nil, err
		}
		workload = append(workload, qs)
	}

	var rows []ExtensionRow
	for _, name := range ExtensionEngines {
		e, err := NewEngine(name)
		if err != nil {
			return nil, err
		}
		row := ExtensionRow{Engine: name}
		t0 := time.Now()
		buildErr := e.Build(db, core.BuildOptions{
			Deadline: time.Now().Add(cfg.IndexBudget),
			Workers:  cfg.Workers,
		})
		row.BuildTime = time.Since(t0)
		if buildErr != nil {
			row.BuildOOT = true
			rows = append(rows, row)
			continue
		}
		row.IndexMemory = e.IndexMemory()
		var total time.Duration
		n := 0
		for _, wl := range workload {
			m := RunQuerySet(e, wl, cfg)
			total += m.QueryTime() * time.Duration(m.Queries)
			row.Candidates += m.Candidates * float64(m.Queries)
			row.Answers += m.Answers * float64(m.Queries)
			row.TimedOut += m.TimedOut
			n += m.Queries
		}
		if n > 0 {
			row.QueryTime = total / time.Duration(n)
			row.Candidates /= float64(n)
			row.Answers /= float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExtensions prints the comparison table.
func RenderExtensions(cfg Config, rows []ExtensionRow) {
	cfg = cfg.normalized()
	w := cfg.Out
	fmt.Fprintln(w, "Extensions study: every engine on AIDS-like Q8S+Q8D")
	fmt.Fprintf(w, "%-14s %10s %10s %10s %9s %8s %8s\n",
		"engine", "build", "index MB", "query", "|C(q)|", "|A(q)|", "timeout")
	for _, r := range rows {
		build := fmtDuration(r.BuildTime)
		if r.BuildOOT {
			build = "OOT"
		}
		fmt.Fprintf(w, "%-14s %10s %10.3f %10s %9.1f %8.1f %8d\n",
			r.Engine, build, mb(r.IndexMemory), fmtDuration(r.QueryTime),
			r.Candidates, r.Answers, r.TimedOut)
	}
}
