package bench

import (
	"fmt"
	"time"

	"subgraphquery/internal/cluster"
	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
	"subgraphquery/internal/graph"
)

// The cluster study measures the scatter-gather serving tier: the same
// engine and workload at increasing shard counts. It is not a paper
// experiment; it documents what the coordinator costs (fan-out, merge,
// per-shard admission) and buys (smaller per-shard databases, parallel
// shard execution) relative to the single-engine baseline at N=1.

// ClusterStudyConfig selects the cluster track's sweep beyond the shared
// harness Config.
type ClusterStudyConfig struct {
	// Engine is the per-shard engine name (NewEngine); default CFQL.
	Engine string
	// ShardCounts is the sweep; default {1, 2, 4, 8}.
	ShardCounts []int
	// Replicas per shard; default 1 (no hedging).
	Replicas int
	// Strategy is the partitioning strategy; default hash.
	Strategy cluster.Strategy
}

func (c ClusterStudyConfig) normalized() ClusterStudyConfig {
	if c.Engine == "" {
		c.Engine = "CFQL"
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Strategy == "" {
		c.Strategy = cluster.StrategyHash
	}
	return c
}

// ClusterRow holds one shard count's aggregate behaviour.
type ClusterRow struct {
	Shards      int
	Replicas    int
	BuildTime   time.Duration // all shards × replicas, sequential
	IndexMemory int64         // summed over every replica
	QueryTime   time.Duration // average per query
	QueryP50    time.Duration
	QueryP99    time.Duration
	Candidates  float64
	Answers     float64
	TimedOut    int
	// Coordinator robustness counters over the run (all zero on a healthy
	// in-process transport unless hedging is enabled).
	Retries   uint64
	Hedges    uint64
	HedgeWins uint64
}

// RunCluster executes the per-shard-count track on an AIDS-like workload.
func RunCluster(cfg Config, study ClusterStudyConfig) ([]ClusterRow, error) {
	cfg = cfg.normalized()
	study = study.normalized()
	db, err := loadReal(gen.AIDS, cfg)
	if err != nil {
		return nil, err
	}
	var workload []*graph.Graph
	for _, m := range []gen.QueryMethod{gen.QueryRandomWalk, gen.QueryBFS} {
		qs, err := gen.QuerySet(db, gen.QuerySetConfig{
			Count: cfg.QueryCount, Edges: 8, Method: m, Seed: cfg.Seed + 5,
		})
		if err != nil {
			return nil, err
		}
		workload = append(workload, qs...)
	}

	factory := func() core.Engine {
		e, ferr := NewEngine(study.Engine)
		if ferr != nil {
			panic(ferr) // unreachable: validated below before any Build
		}
		return e
	}
	if _, err := NewEngine(study.Engine); err != nil {
		return nil, err
	}

	var rows []ClusterRow
	for _, n := range study.ShardCounts {
		c, err := cluster.New(cluster.Config{
			Shards:   n,
			Replicas: study.Replicas,
			Strategy: study.Strategy,
			Factory:  factory,
			BaseName: study.Engine,
		})
		if err != nil {
			return nil, err
		}
		row := ClusterRow{Shards: n, Replicas: study.Replicas}
		t0 := time.Now()
		if err := c.Build(db, core.BuildOptions{
			Deadline: time.Now().Add(cfg.IndexBudget),
			Workers:  cfg.Workers,
		}); err != nil {
			return nil, fmt.Errorf("bench: building %d-shard cluster: %w", n, err)
		}
		row.BuildTime = time.Since(t0)
		row.IndexMemory = c.IndexMemory()
		m := RunQuerySet(c, workload, cfg)
		row.QueryTime = m.QueryTime()
		row.QueryP50 = m.QueryP50
		row.QueryP99 = m.QueryP99
		row.Candidates = m.Candidates
		row.Answers = m.Answers
		row.TimedOut = m.TimedOut
		st := c.Stats()
		row.Retries, row.Hedges, row.HedgeWins = st.Retries, st.Hedges, st.HedgeWins
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCluster prints the per-shard-count comparison table.
func RenderCluster(cfg Config, study ClusterStudyConfig, rows []ClusterRow) {
	cfg = cfg.normalized()
	study = study.normalized()
	w := cfg.Out
	fmt.Fprintf(w, "Cluster study: %s behind a scatter-gather coordinator on AIDS-like Q8S+Q8D (%s partitioning)\n",
		study.Engine, string(study.Strategy))
	fmt.Fprintf(w, "%-8s %4s %10s %10s %10s %10s %10s %8s %8s %8s\n",
		"shards", "rep", "build", "index MB", "query", "p50", "p99", "|A(q)|", "timeout", "hedges")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %4d %10s %10.3f %10s %10s %10s %8.1f %8d %8d\n",
			r.Shards, r.Replicas, fmtDuration(r.BuildTime), mb(r.IndexMemory),
			fmtDuration(r.QueryTime), fmtDuration(r.QueryP50), fmtDuration(r.QueryP99),
			r.Answers, r.TimedOut, r.Hedges)
	}
}
