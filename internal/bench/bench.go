// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§IV). Each runner produces the same
// rows/series the paper reports — indexing time, filtering precision,
// filtering time, verification time, per-SI-test time, candidate counts,
// query time and memory cost — over simulated real-world datasets and
// GraphGen-style synthetic sweeps.
//
// Absolute numbers depend on scale and hardware; the reproduced quantity is
// the *shape*: which algorithm wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured per experiment.
package bench

import (
	"fmt"
	"io"
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
	"subgraphquery/internal/graph"
)

// Config controls the harness. Zero values select the scaled-down defaults
// suitable for a laptop run; Scale=1 with large deadlines approaches the
// paper's full configuration.
type Config struct {
	// Scale shrinks the simulated real-world datasets and the synthetic
	// sweep bases; (0,1]. Default 0.02.
	Scale float64
	// QueryCount is the number of queries per query set (paper: 100).
	// Default 10.
	QueryCount int
	// Seed drives all generation. Default 1.
	Seed int64
	// IndexBudget bounds each index construction (paper: 24h). Exceeding
	// it marks the cell OOT. Default 60s.
	IndexBudget time.Duration
	// QueryBudget bounds each query (paper: 10min). Default 5s.
	QueryBudget time.Duration
	// Workers is the parallelism for the Grapes configurations (paper: 6).
	Workers int
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

// Defaults returns the scaled-down default configuration.
func Defaults() Config {
	return Config{
		Scale:       0.02,
		QueryCount:  10,
		Seed:        1,
		IndexBudget: 60 * time.Second,
		QueryBudget: 5 * time.Second,
		Workers:     6,
	}
}

func (c Config) normalized() Config {
	d := Defaults()
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = d.Scale
	}
	if c.QueryCount <= 0 {
		c.QueryCount = d.QueryCount
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.IndexBudget <= 0 {
		c.IndexBudget = d.IndexBudget
	}
	if c.QueryBudget <= 0 {
		c.QueryBudget = d.QueryBudget
	}
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// QueryEdgeSizes are the query sizes of the paper's real-dataset study.
var QueryEdgeSizes = []int{4, 8, 16, 32}

// EngineNames lists the eight competing algorithms in the paper's
// presentation order (Figure 2's bar order).
var EngineNames = []string{
	"CT-Index", "Grapes", "GGSX", // IFV
	"CFL", "GraphQL", "CFQL", // vcFV
	"vcGrapes", "vcGGSX", // IvcFV
}

// NewEngine constructs an engine by its paper name.
func NewEngine(name string) (core.Engine, error) {
	switch name {
	case "CT-Index":
		return core.NewCTIndex(), nil
	case "Grapes":
		return core.NewGrapes(), nil
	case "GGSX":
		return core.NewGGSX(), nil
	case "CFL":
		return core.NewCFL(), nil
	case "GraphQL":
		return core.NewGraphQL(), nil
	case "CFQL":
		return core.NewCFQL(), nil
	case "vcGrapes":
		return core.NewVcGrapes(), nil
	case "vcGGSX":
		return core.NewVcGGSX(), nil
	case "Scan-VF2":
		return core.NewScan(), nil
	case "TurboIso":
		return core.NewTurboIso(), nil
	case "CFQL-parallel":
		return core.NewParallelCFQL(0), nil
	case "GraphGrep":
		return core.NewGraphGrep(), nil
	case "gIndex":
		return core.NewGIndex(), nil
	case "TreePi":
		return core.NewTreePi(), nil
	case "FG-Index":
		return core.NewFGIndex(), nil
	}
	return nil, fmt.Errorf("bench: unknown engine %q", name)
}

// IsIndexed reports whether the named engine builds a persistent index.
func IsIndexed(name string) bool {
	switch name {
	case "CT-Index", "Grapes", "GGSX", "vcGrapes", "vcGGSX", "GraphGrep", "gIndex":
		return true
	}
	return false
}

// querySets generates the twelve query sets (4 sizes × sparse/dense/
// induced) for a database. The induced sets (Q*I) are the dense track the
// bench-diff gate watches: vertex-induced extraction maximizes average
// degree, which is where candidate sets are large and the bit-matrix
// domains and jump-redo backtracking matter.
func querySets(db *graph.Database, cfg Config) (map[string][]*graph.Graph, []string, error) {
	sets := make(map[string][]*graph.Graph)
	var names []string
	for _, method := range []gen.QueryMethod{gen.QueryRandomWalk, gen.QueryBFS, gen.QueryInduced} {
		for _, edges := range QueryEdgeSizes {
			qc := gen.QuerySetConfig{
				Count:  cfg.QueryCount,
				Edges:  edges,
				Method: method,
				Seed:   cfg.Seed + int64(edges)*10 + int64(method),
			}
			qs, err := gen.QuerySet(db, qc)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: generating %s: %w", qc.Name(), err)
			}
			sets[qc.Name()] = qs
			names = append(names, qc.Name())
		}
	}
	return sets, names, nil
}

// loadReal generates the simulated real-world dataset at the configured
// scale.
func loadReal(name gen.RealDataset, cfg Config) (*graph.Database, error) {
	// The large-graph datasets need gentler shrinking than AIDS' 40k
	// graphs; scale factors tuned so the default config runs in minutes.
	scale := cfg.Scale
	switch name {
	case gen.PDBS:
		scale = minF(1, cfg.Scale*5)
	case gen.PCM:
		scale = minF(1, cfg.Scale*4)
	case gen.PPI:
		scale = minF(1, cfg.Scale*10)
	}
	return gen.Real(name, scale, cfg.Seed)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
