package bench

import (
	"fmt"
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
)

// IndexCell is one cell of an indexing-time table: the build duration or an
// out-of-budget marker (the paper's OOT/OOM).
type IndexCell struct {
	Time time.Duration
	OOT  bool
}

func (c IndexCell) String() string {
	if c.OOT {
		return "OOT"
	}
	return fmtDuration(c.Time)
}

// RealEvaluation holds every measurement of the real-dataset study: query
// set statistics (Table V), indexing time (Table VI), per-engine query
// metrics (Figures 2–7) and memory cost (Table VII). Computing it once and
// rendering many views mirrors how the paper derives its figures from one
// experiment run.
type RealEvaluation struct {
	Config        Config
	Datasets      []gen.RealDataset
	QuerySetNames []string

	DBStats   map[gen.RealDataset]coreStats
	QueryStat map[gen.RealDataset]map[string]gen.QuerySetStats
	IndexTime map[gen.RealDataset]map[string]IndexCell
	Metrics   map[gen.RealDataset]map[string]map[string]SetMetrics
	// Available marks engines whose index built within budget per dataset.
	Available map[gen.RealDataset]map[string]bool
	// IndexMemory is the per-dataset index footprint per indexed engine.
	IndexMemory map[gen.RealDataset]map[string]int64
	// DatasetMemory is the CSR byte size of each dataset.
	DatasetMemory map[gen.RealDataset]int64
	// CFQLMemory is the peak candidate-set memory of CFQL per dataset.
	CFQLMemory map[gen.RealDataset]int64
}

type coreStats struct {
	Graphs   int
	Vertices float64
	Edges    float64
	Degree   float64
}

// RunReal executes the full real-dataset study.
func RunReal(cfg Config) (*RealEvaluation, error) {
	cfg = cfg.normalized()
	ev := &RealEvaluation{
		Config:        cfg,
		Datasets:      gen.RealDatasets(),
		DBStats:       map[gen.RealDataset]coreStats{},
		QueryStat:     map[gen.RealDataset]map[string]gen.QuerySetStats{},
		IndexTime:     map[gen.RealDataset]map[string]IndexCell{},
		Metrics:       map[gen.RealDataset]map[string]map[string]SetMetrics{},
		Available:     map[gen.RealDataset]map[string]bool{},
		IndexMemory:   map[gen.RealDataset]map[string]int64{},
		DatasetMemory: map[gen.RealDataset]int64{},
		CFQLMemory:    map[gen.RealDataset]int64{},
	}

	for _, ds := range ev.Datasets {
		db, err := loadReal(ds, cfg)
		if err != nil {
			return nil, err
		}
		s := db.ComputeStats()
		ev.DBStats[ds] = coreStats{Graphs: s.NumGraphs, Vertices: s.VerticesPerGraph, Edges: s.EdgesPerGraph, Degree: s.DegreePerGraph}
		ev.DatasetMemory[ds] = db.MemoryFootprint()

		sets, names, err := querySets(db, cfg)
		if err != nil {
			return nil, err
		}
		if ev.QuerySetNames == nil {
			ev.QuerySetNames = names
		}
		ev.QueryStat[ds] = map[string]gen.QuerySetStats{}
		for name, qs := range sets {
			ev.QueryStat[ds][name] = gen.ComputeQuerySetStats(qs)
		}

		ev.IndexTime[ds] = map[string]IndexCell{}
		ev.Available[ds] = map[string]bool{}
		ev.IndexMemory[ds] = map[string]int64{}
		ev.Metrics[ds] = map[string]map[string]SetMetrics{}
		for _, name := range names {
			ev.Metrics[ds][name] = map[string]SetMetrics{}
		}

		engines := map[string]core.Engine{}
		for _, en := range EngineNames {
			e, err := NewEngine(en)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			err = e.Build(db, core.BuildOptions{
				Deadline: time.Now().Add(cfg.IndexBudget),
				Workers:  cfg.Workers,
			})
			elapsed := time.Since(t0)
			if IsIndexed(en) {
				// vcGrapes/vcGGSX share their base index's cell; record
				// the pure IFV ones for Table VI.
				if en == "CT-Index" || en == "Grapes" || en == "GGSX" {
					ev.IndexTime[ds][en] = IndexCell{Time: elapsed, OOT: err != nil}
				}
			}
			if err != nil {
				ev.Available[ds][en] = false
				continue
			}
			ev.Available[ds][en] = true
			ev.IndexMemory[ds][en] = e.IndexMemory()
			engines[en] = e
		}

		for _, setName := range names {
			for en, e := range engines {
				m := RunQuerySet(e, sets[setName], cfg)
				ev.Metrics[ds][setName][en] = m
				if en == "CFQL" && m.AuxMemory > ev.CFQLMemory[ds] {
					ev.CFQLMemory[ds] = m.AuxMemory
				}
			}
		}
	}
	return ev, nil
}

// --- rendering ---------------------------------------------------------

// RenderTableV prints the query set statistics (paper Table V).
func (ev *RealEvaluation) RenderTableV() {
	w := ev.Config.Out
	fmt.Fprintln(w, "Table V: statistics of query sets on the real-world datasets")
	for _, ds := range ev.Datasets {
		fmt.Fprintf(w, "\n%s:\n%-12s %8s %8s %8s %8s\n", ds, "query set", "|V|/q", "|Σ|/q", "d/q", "%trees")
		for _, name := range ev.QuerySetNames {
			s := ev.QueryStat[ds][name]
			fmt.Fprintf(w, "%-12s %8.2f %8.2f %8.2f %8.2f\n",
				name, s.VerticesPerQuery, s.LabelsPerQuery, s.DegreePerQuery, s.TreeFraction)
		}
	}
}

// RenderTableVI prints indexing time on the real datasets (paper Table VI).
func (ev *RealEvaluation) RenderTableVI() {
	w := ev.Config.Out
	fmt.Fprintln(w, "Table VI: indexing time on real-world datasets")
	fmt.Fprintf(w, "%-10s", "")
	for _, ds := range ev.Datasets {
		fmt.Fprintf(w, " %10s", ds)
	}
	fmt.Fprintln(w)
	for _, en := range []string{"CT-Index", "GGSX", "Grapes"} {
		fmt.Fprintf(w, "%-10s", en)
		for _, ds := range ev.Datasets {
			fmt.Fprintf(w, " %10s", ev.IndexTime[ds][en])
		}
		fmt.Fprintln(w)
	}
}

// RenderTableVII prints memory cost on the real datasets (paper Table VII).
func (ev *RealEvaluation) RenderTableVII() {
	w := ev.Config.Out
	fmt.Fprintln(w, "Table VII: memory cost on real-world datasets (MB)")
	fmt.Fprintf(w, "%-10s", "")
	for _, ds := range ev.Datasets {
		fmt.Fprintf(w, " %10s", ds)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "Datasets")
	for _, ds := range ev.Datasets {
		fmt.Fprintf(w, " %10.3f", mb(ev.DatasetMemory[ds]))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "CFQL")
	for _, ds := range ev.Datasets {
		fmt.Fprintf(w, " %10.3f", mb(ev.CFQLMemory[ds]))
	}
	fmt.Fprintln(w)
	for _, en := range []string{"CT-Index", "GGSX", "Grapes"} {
		fmt.Fprintf(w, "%-10s", en)
		for _, ds := range ev.Datasets {
			if !ev.Available[ds][en] {
				fmt.Fprintf(w, " %10s", "N/A")
			} else {
				fmt.Fprintf(w, " %10.3f", mb(ev.IndexMemory[ds][en]))
			}
		}
		fmt.Fprintln(w)
	}
}

// figure renders one metric across datasets × query sets × engines, the
// layout of Figures 2–7.
func (ev *RealEvaluation) figure(title string, metric func(SetMetrics) string) {
	w := ev.Config.Out
	fmt.Fprintln(w, title)
	for _, ds := range ev.Datasets {
		fmt.Fprintf(w, "\n%s:\n%-10s", ds, "")
		for _, en := range EngineNames {
			fmt.Fprintf(w, " %10s", en)
		}
		fmt.Fprintln(w)
		for _, name := range ev.QuerySetNames {
			fmt.Fprintf(w, "%-10s", name)
			for _, en := range EngineNames {
				if !ev.Available[ds][en] {
					fmt.Fprintf(w, " %10s", "-")
					continue
				}
				fmt.Fprintf(w, " %10s", metric(ev.Metrics[ds][name][en]))
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFig2 prints filtering precision (paper Figure 2).
func (ev *RealEvaluation) RenderFig2() {
	ev.figure("Figure 2: filtering precision on the real-world datasets",
		func(m SetMetrics) string { return fmt.Sprintf("%.3f", m.Precision) })
}

// RenderFig3 prints filtering time (paper Figure 3).
func (ev *RealEvaluation) RenderFig3() {
	ev.figure("Figure 3: filtering time on the real-world datasets",
		func(m SetMetrics) string { return fmtDuration(m.FilterTime) })
}

// RenderFig4 prints verification time (paper Figure 4).
func (ev *RealEvaluation) RenderFig4() {
	ev.figure("Figure 4: verification time on the real-world datasets",
		func(m SetMetrics) string { return fmtDuration(m.VerifyTime) })
}

// RenderFig5 prints per-SI-test time (paper Figure 5).
func (ev *RealEvaluation) RenderFig5() {
	ev.figure("Figure 5: per SI test time on the real-world datasets",
		func(m SetMetrics) string { return fmtDuration(m.PerSITest) })
}

// RenderFig6 prints candidate counts (paper Figure 6).
func (ev *RealEvaluation) RenderFig6() {
	ev.figure("Figure 6: number of candidate graphs on the real-world datasets",
		func(m SetMetrics) string { return fmt.Sprintf("%.1f", m.Candidates) })
}

// RenderFig7 prints query time (paper Figure 7).
func (ev *RealEvaluation) RenderFig7() {
	ev.figure("Figure 7: query time on the real-world datasets",
		func(m SetMetrics) string { return fmtDuration(m.QueryTime()) })
}

func mb(bytes int64) float64 { return float64(bytes) / (1 << 20) }

func fmtDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
