package bench

import (
	"fmt"
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
)

// The synthetic scalability study (§IV-C): starting from the paper's
// default configuration {|D|=1000, |V(G)|=200, |Σ|=20, d(G)=8}, one
// parameter is varied at a time. At Scale < 1 the |D| and |V| bases shrink
// while the multiplier ladders stay the paper's, preserving the shape of
// every sweep.

// SweepAxis identifies a varied parameter.
type SweepAxis string

// The four sweep axes of Tables VIII/IX and Figures 8/9.
const (
	AxisLabels   SweepAxis = "|Σ|"
	AxisDegree   SweepAxis = "d(G)"
	AxisVertices SweepAxis = "|V(G)|"
	AxisGraphs   SweepAxis = "|D|"
)

// SweepAxes lists the axes in the paper's order.
func SweepAxes() []SweepAxis {
	return []SweepAxis{AxisLabels, AxisDegree, AxisVertices, AxisGraphs}
}

// SweepPoints returns the parameter values of one axis at the configured
// scale. |Σ| and d(G) ladders are the paper's exactly; the |V(G)| and |D|
// ladders apply the paper's multipliers to scaled bases.
func SweepPoints(axis SweepAxis, cfg Config) []int {
	cfg = cfg.normalized()
	baseD := clampInt(int(1000*cfg.Scale*5), 50, 1000)
	baseV := clampInt(int(200*cfg.Scale*25), 40, 200)
	switch axis {
	case AxisLabels:
		return []int{1, 10, 20, 40, 80}
	case AxisDegree:
		return []int{4, 8, 16, 32, 64}
	case AxisVertices:
		return []int{baseV / 4, baseV, baseV * 4, baseV * 16, baseV * 64}
	case AxisGraphs:
		return []int{baseD / 10, baseD, baseD * 10, baseD * 100, baseD * 1000}
	}
	return nil
}

// maxCellSlots bounds the total vertex count of one generated sweep cell;
// beyond it the cell is reported OOM (the paper's Grapes/GGSX hit OOM on
// the largest |D| and |V| cells; on this harness the index build of a
// larger cell exhausts memory the same way).
const maxCellSlots = 4_000_000

// syntheticConfig materializes one sweep cell's generator parameters.
func syntheticConfig(axis SweepAxis, value int, cfg Config) gen.SyntheticConfig {
	cfg = cfg.normalized()
	sc := gen.SyntheticConfig{
		NumGraphs:   clampInt(int(1000*cfg.Scale*5), 50, 1000),
		NumVertices: clampInt(int(200*cfg.Scale*25), 40, 200),
		NumLabels:   20,
		Degree:      8,
		Seed:        cfg.Seed,
	}
	switch axis {
	case AxisLabels:
		sc.NumLabels = value
	case AxisDegree:
		sc.Degree = float64(value)
		// Keep the paper's density ceiling: at scale 1 it pairs d=64 with
		// |V|=200; a shrunken base could make the degree infeasible.
		if minV := 4 * value; sc.NumVertices < minV {
			sc.NumVertices = minV
		}
	case AxisVertices:
		sc.NumVertices = value
	case AxisGraphs:
		sc.NumGraphs = value
	}
	return sc
}

// SyntheticCell holds every measurement of one sweep cell.
type SyntheticCell struct {
	Skipped bool // cell exceeded maxCellSlots: reported OOM

	DatasetMemory int64
	IndexTime     map[string]IndexCell // CT-Index, GGSX, Grapes
	IndexMemory   map[string]int64
	// Metrics maps engine name to Q8S metrics (Figures 8/9 engines).
	Metrics    map[string]SetMetrics
	CFQLMemory int64
}

// SyntheticEvaluation holds the full synthetic study.
type SyntheticEvaluation struct {
	Config Config
	// Cells[axis][i] corresponds to SweepPoints(axis, cfg)[i].
	Cells map[SweepAxis][]SyntheticCell
}

// SyntheticIndexEngines are the index builders of Table VIII.
var SyntheticIndexEngines = []string{"CT-Index", "GGSX", "Grapes"}

// SyntheticQueryEngines are the algorithms of Figures 8/9.
var SyntheticQueryEngines = []string{"Grapes", "GGSX", "CFQL", "vcGrapes"}

// RunSynthetic executes the synthetic scalability study.
func RunSynthetic(cfg Config) (*SyntheticEvaluation, error) {
	cfg = cfg.normalized()
	ev := &SyntheticEvaluation{Config: cfg, Cells: map[SweepAxis][]SyntheticCell{}}
	for _, axis := range SweepAxes() {
		for _, value := range SweepPoints(axis, cfg) {
			cell, err := runSyntheticCell(axis, value, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: %s=%d: %w", axis, value, err)
			}
			ev.Cells[axis] = append(ev.Cells[axis], cell)
		}
	}
	return ev, nil
}

func runSyntheticCell(axis SweepAxis, value int, cfg Config) (SyntheticCell, error) {
	cell := SyntheticCell{
		IndexTime:   map[string]IndexCell{},
		IndexMemory: map[string]int64{},
		Metrics:     map[string]SetMetrics{},
	}
	sc := syntheticConfig(axis, value, cfg)
	if int64(sc.NumGraphs)*int64(sc.NumVertices) > maxCellSlots {
		cell.Skipped = true
		return cell, nil
	}
	db, err := gen.Synthetic(sc)
	if err != nil {
		return cell, err
	}
	cell.DatasetMemory = db.MemoryFootprint()

	queries, err := gen.QuerySet(db, gen.QuerySetConfig{
		Count:  cfg.QueryCount,
		Edges:  8,
		Method: gen.QueryRandomWalk,
		Seed:   cfg.Seed + 81,
	})
	if err != nil {
		return cell, err
	}

	engines := map[string]core.Engine{}
	for _, en := range []string{"CT-Index", "GGSX", "Grapes", "CFQL", "vcGrapes"} {
		e, err := NewEngine(en)
		if err != nil {
			return cell, err
		}
		t0 := time.Now()
		buildErr := e.Build(db, core.BuildOptions{
			Deadline: time.Now().Add(cfg.IndexBudget),
			Workers:  cfg.Workers,
		})
		if contains(SyntheticIndexEngines, en) {
			cell.IndexTime[en] = IndexCell{Time: time.Since(t0), OOT: buildErr != nil}
		}
		if buildErr != nil {
			continue
		}
		if IsIndexed(en) {
			cell.IndexMemory[en] = e.IndexMemory()
		}
		engines[en] = e
	}

	for _, en := range SyntheticQueryEngines {
		e, ok := engines[en]
		if !ok {
			continue
		}
		m := RunQuerySet(e, queries, cfg)
		cell.Metrics[en] = m
		if en == "CFQL" {
			cell.CFQLMemory = m.AuxMemory
		}
	}
	return cell, nil
}

// --- rendering ---------------------------------------------------------

// RenderTableVIII prints indexing time on the synthetic datasets.
func (ev *SyntheticEvaluation) RenderTableVIII() {
	w := ev.Config.Out
	fmt.Fprintln(w, "Table VIII: indexing time on synthetic datasets")
	for _, axis := range SweepAxes() {
		fmt.Fprintf(w, "\n%-10s", axis)
		for _, v := range SweepPoints(axis, ev.Config) {
			fmt.Fprintf(w, " %10d", v)
		}
		fmt.Fprintln(w)
		for _, en := range SyntheticIndexEngines {
			fmt.Fprintf(w, "%-10s", en)
			for i := range ev.Cells[axis] {
				cell := ev.Cells[axis][i]
				if cell.Skipped {
					fmt.Fprintf(w, " %10s", "OOM")
					continue
				}
				fmt.Fprintf(w, " %10s", cell.IndexTime[en])
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderTableIX prints memory cost on the synthetic datasets.
func (ev *SyntheticEvaluation) RenderTableIX() {
	w := ev.Config.Out
	fmt.Fprintln(w, "Table IX: memory cost on synthetic datasets (MB)")
	for _, axis := range SweepAxes() {
		fmt.Fprintf(w, "\nVary %-6s", axis)
		for _, v := range SweepPoints(axis, ev.Config) {
			fmt.Fprintf(w, " %10d", v)
		}
		fmt.Fprintln(w)
		rows := []struct {
			name string
			get  func(SyntheticCell) (float64, bool)
		}{
			{"Datasets", func(c SyntheticCell) (float64, bool) { return mb(c.DatasetMemory), true }},
			{"CFQL", func(c SyntheticCell) (float64, bool) { return mb(c.CFQLMemory), true }},
			{"GGSX", func(c SyntheticCell) (float64, bool) { m, ok := c.IndexMemory["GGSX"]; return mb(m), ok }},
			{"Grapes", func(c SyntheticCell) (float64, bool) { m, ok := c.IndexMemory["Grapes"]; return mb(m), ok }},
		}
		for _, row := range rows {
			fmt.Fprintf(w, "%-10s", row.name)
			for i := range ev.Cells[axis] {
				cell := ev.Cells[axis][i]
				if cell.Skipped {
					fmt.Fprintf(w, " %10s", "OOM")
					continue
				}
				if v, ok := row.get(cell); ok {
					fmt.Fprintf(w, " %10.4f", v)
				} else {
					fmt.Fprintf(w, " %10s", "N/A")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// figure renders one Q8S metric across the four sweeps (Figures 8/9).
func (ev *SyntheticEvaluation) figure(title string, metric func(SetMetrics) string) {
	w := ev.Config.Out
	fmt.Fprintln(w, title)
	for _, axis := range SweepAxes() {
		fmt.Fprintf(w, "\nVary %-6s", axis)
		for _, v := range SweepPoints(axis, ev.Config) {
			fmt.Fprintf(w, " %10d", v)
		}
		fmt.Fprintln(w)
		for _, en := range SyntheticQueryEngines {
			fmt.Fprintf(w, "%-10s", en)
			for i := range ev.Cells[axis] {
				cell := ev.Cells[axis][i]
				m, ok := cell.Metrics[en]
				if cell.Skipped || !ok {
					fmt.Fprintf(w, " %10s", "-")
					continue
				}
				fmt.Fprintf(w, " %10s", metric(m))
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFig8 prints filtering precision on the synthetic sweeps.
func (ev *SyntheticEvaluation) RenderFig8() {
	ev.figure("Figure 8: filtering precision on the synthetic datasets (Q8S)",
		func(m SetMetrics) string { return fmt.Sprintf("%.3f", m.Precision) })
}

// RenderFig9 prints filtering time on the synthetic sweeps.
func (ev *SyntheticEvaluation) RenderFig9() {
	ev.figure("Figure 9: filtering time on the synthetic datasets (Q8S)",
		func(m SetMetrics) string { return fmtDuration(m.FilterTime) })
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
