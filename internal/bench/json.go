package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"subgraphquery/internal/gen"
	"subgraphquery/internal/telemetry"
)

// BenchSchema versions the machine-readable bench output. Bump on
// breaking shape changes so trajectory tooling can dispatch.
const BenchSchema = "subgraphquery/bench/v1"

// SetMetricsJSON is the serialized form of SetMetrics: durations in
// microseconds, memory in bytes — the per-query-set record of a
// BENCH_<dataset>.json file.
type SetMetricsJSON struct {
	Queries    int     `json:"queries"`
	TimedOut   int     `json:"timed_out"`
	FilterUS   int64   `json:"filter_us"`
	VerifyUS   int64   `json:"verify_us"`
	QueryUS    int64   `json:"query_us"`
	Candidates float64 `json:"candidates"`
	Answers    float64 `json:"answers"`
	Precision  float64 `json:"precision"`
	PerSIUS    int64   `json:"per_si_test_us"`
	AuxBytes   int64   `json:"aux_memory_bytes"`
	P50US      int64   `json:"query_p50_us"`
	P90US      int64   `json:"query_p90_us"`
	P99US      int64   `json:"query_p99_us"`

	// Shapes is the per-fingerprint breakdown (top shapes by count). An
	// additive field: the bench diff gate compares the scalar metrics and
	// tolerates records without it.
	Shapes []telemetry.ShapeSnapshot `json:"shapes,omitempty"`
}

// JSON converts the metrics to their serialized form.
func (m SetMetrics) JSON() SetMetricsJSON {
	return SetMetricsJSON{
		Queries:    m.Queries,
		TimedOut:   m.TimedOut,
		FilterUS:   m.FilterTime.Microseconds(),
		VerifyUS:   m.VerifyTime.Microseconds(),
		QueryUS:    m.QueryTime().Microseconds(),
		Candidates: m.Candidates,
		Answers:    m.Answers,
		Precision:  m.Precision,
		PerSIUS:    m.PerSITest.Microseconds(),
		AuxBytes:   m.AuxMemory,
		P50US:      m.QueryP50.Microseconds(),
		P90US:      m.QueryP90.Microseconds(),
		P99US:      m.QueryP99.Microseconds(),
		Shapes:     m.Shapes,
	}
}

// reportConfig records the run parameters a report was produced under, so
// trajectory comparisons only pair like with like.
type reportConfig struct {
	Scale         float64 `json:"scale"`
	QueryCount    int     `json:"query_count"`
	Seed          int64   `json:"seed"`
	IndexBudgetUS int64   `json:"index_budget_us"`
	QueryBudgetUS int64   `json:"query_budget_us"`
	Workers       int     `json:"workers"`
}

func configJSON(cfg Config) reportConfig {
	cfg = cfg.normalized()
	return reportConfig{
		Scale:         cfg.Scale,
		QueryCount:    cfg.QueryCount,
		Seed:          cfg.Seed,
		IndexBudgetUS: cfg.IndexBudget.Microseconds(),
		QueryBudgetUS: cfg.QueryBudget.Microseconds(),
		Workers:       cfg.Workers,
	}
}

// BenchReport is the machine-readable form of one real dataset's
// evaluation: per-engine indexing and memory cost plus per-query-set
// metrics — the quantities of §IV-A, serialized so the performance
// trajectory is diffable across PRs.
type BenchReport struct {
	Schema  string       `json:"schema"`
	Dataset string       `json:"dataset"`
	Config  reportConfig `json:"config"`

	DatasetBytes int64 `json:"dataset_bytes"`
	// IndexTimeUS and IndexBytes cover engines whose index built within
	// budget; an engine present in OOT built out of budget instead.
	IndexTimeUS map[string]int64 `json:"index_time_us,omitempty"`
	IndexBytes  map[string]int64 `json:"index_bytes,omitempty"`
	OOT         []string         `json:"oot,omitempty"`

	// QuerySets maps query set name (e.g. "Q8S") to engine name to
	// metrics.
	QuerySets map[string]map[string]SetMetricsJSON `json:"query_sets"`
}

// RealReport extracts one dataset's report from a real-study evaluation.
func (ev *RealEvaluation) RealReport(ds gen.RealDataset) BenchReport {
	r := BenchReport{
		Schema:       BenchSchema,
		Dataset:      string(ds),
		Config:       configJSON(ev.Config),
		DatasetBytes: ev.DatasetMemory[ds],
		IndexTimeUS:  map[string]int64{},
		IndexBytes:   map[string]int64{},
		QuerySets:    map[string]map[string]SetMetricsJSON{},
	}
	for en, cell := range ev.IndexTime[ds] {
		if cell.OOT {
			r.OOT = append(r.OOT, en)
			continue
		}
		r.IndexTimeUS[en] = cell.Time.Microseconds()
	}
	for en, b := range ev.IndexMemory[ds] {
		r.IndexBytes[en] = b
	}
	for setName, byEngine := range ev.Metrics[ds] {
		out := map[string]SetMetricsJSON{}
		for en, m := range byEngine {
			out[en] = m.JSON()
		}
		r.QuerySets[setName] = out
	}
	return r
}

// SyntheticSweepCell is one cell of a synthetic sweep in serialized form.
type SyntheticSweepCell struct {
	Point   int  `json:"point"`
	Skipped bool `json:"skipped,omitempty"` // cell too large: reported OOM

	DatasetBytes int64                     `json:"dataset_bytes,omitempty"`
	IndexTimeUS  map[string]int64          `json:"index_time_us,omitempty"`
	IndexBytes   map[string]int64          `json:"index_bytes,omitempty"`
	OOT          []string                  `json:"oot,omitempty"`
	Engines      map[string]SetMetricsJSON `json:"engines,omitempty"`
}

// SyntheticReport is the machine-readable form of the synthetic
// scalability study: one sweep per axis.
type SyntheticReport struct {
	Schema  string                          `json:"schema"`
	Dataset string                          `json:"dataset"`
	Config  reportConfig                    `json:"config"`
	Sweeps  map[string][]SyntheticSweepCell `json:"sweeps"`
}

// Report serializes the synthetic evaluation.
func (ev *SyntheticEvaluation) Report() SyntheticReport {
	r := SyntheticReport{
		Schema:  BenchSchema,
		Dataset: "synthetic",
		Config:  configJSON(ev.Config),
		Sweeps:  map[string][]SyntheticSweepCell{},
	}
	for _, axis := range SweepAxes() {
		points := SweepPoints(axis, ev.Config)
		cells := ev.Cells[axis]
		for i, cell := range cells {
			out := SyntheticSweepCell{Skipped: cell.Skipped}
			if i < len(points) {
				out.Point = points[i]
			}
			if !cell.Skipped {
				out.DatasetBytes = cell.DatasetMemory
				out.IndexTimeUS = map[string]int64{}
				out.IndexBytes = map[string]int64{}
				for en, ic := range cell.IndexTime {
					if ic.OOT {
						out.OOT = append(out.OOT, en)
						continue
					}
					out.IndexTimeUS[en] = ic.Time.Microseconds()
				}
				for en, b := range cell.IndexMemory {
					out.IndexBytes[en] = b
				}
				out.Engines = map[string]SetMetricsJSON{}
				for en, m := range cell.Metrics {
					out.Engines[en] = m.JSON()
				}
			}
			r.Sweeps[string(axis)] = append(r.Sweeps[string(axis)], out)
		}
	}
	return r
}

// writeReport writes one report as indented JSON.
func writeReport(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteRealJSON writes BENCH_<dataset>.json for every dataset of a real
// study into dir, returning the written paths.
func WriteRealJSON(dir string, ev *RealEvaluation) ([]string, error) {
	var paths []string
	for _, ds := range ev.Datasets {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", ds))
		if err := writeReport(path, ev.RealReport(ds)); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// WriteSyntheticJSON writes BENCH_synthetic.json into dir, returning the
// written path.
func WriteSyntheticJSON(dir string, ev *SyntheticEvaluation) (string, error) {
	path := filepath.Join(dir, "BENCH_synthetic.json")
	if err := writeReport(path, ev.Report()); err != nil {
		return "", err
	}
	return path, nil
}
