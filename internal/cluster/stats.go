package cluster

import "sync/atomic"

// statCounters are the coordinator's lifetime robustness counters, all
// updated lock-free from the fan-out goroutines.
type statCounters struct {
	queries         atomic.Uint64
	retries         atomic.Uint64
	hedges          atomic.Uint64
	hedgeWins       atomic.Uint64
	shardsLost      atomic.Uint64
	degradedQueries atomic.Uint64
	errorsTruncated atomic.Uint64
}

// Stats is a snapshot of the coordinator's robustness counters, the
// source for the server's scatter-gather /metrics block.
type Stats struct {
	// Shards is the cluster width.
	Shards int
	// Queries counts Coordinator.Query calls.
	Queries uint64
	// Retries counts backed-off retry rounds (beyond each shard's first).
	Retries uint64
	// Hedges counts hedged duplicate attempts issued; HedgeWins how many
	// of them beat the primary.
	Hedges    uint64
	HedgeWins uint64
	// ShardsLost counts shard losses (per query per shard): the
	// shard_degraded_total metric. DegradedQueries counts queries that
	// returned Degraded (>= 1 shard lost).
	ShardsLost      uint64
	DegradedQueries uint64
	// ErrorsTruncated sums Result.GraphErrorsTruncated across queries:
	// the graph_errors_truncated metric.
	ErrorsTruncated uint64
	// TransportAttempts / TransportRefused are the Local transport's
	// attempt counters (zero for external transports).
	TransportAttempts uint64
	TransportRefused  uint64
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Shards:          c.cfg.Shards,
		Queries:         c.stats.queries.Load(),
		Retries:         c.stats.retries.Load(),
		Hedges:          c.stats.hedges.Load(),
		HedgeWins:       c.stats.hedgeWins.Load(),
		ShardsLost:      c.stats.shardsLost.Load(),
		DegradedQueries: c.stats.degradedQueries.Load(),
		ErrorsTruncated: c.stats.errorsTruncated.Load(),
	}
	if c.local != nil {
		s.TransportAttempts, s.TransportRefused = c.local.Stats()
	}
	return s
}
