// Package cluster is the fault-tolerant scatter-gather serving tier: a
// Partitioner splits the graph database across N shards, each Shard
// hosts an independent engine instance over its partition, and the
// Coordinator — itself a core.Engine, so the server and the benchmark
// harness slot it in unchanged — fans every query out over a Transport
// and merges the partial results.
//
// The robustness core lives in the coordinator's per-shard query path:
//
//   - per-shard deadlines derived from the query budget (a small merge
//     reserve is withheld so the coordinator can still assemble a
//     response after the slowest shard);
//   - bounded retries with decorrelated-jitter exponential backoff on
//     transient transport errors, rotating replicas between rounds;
//   - hedged duplicate requests against replica shards after a
//     p99-based delay — first response wins, the loser is cancelled
//     through its inflight handle;
//   - graceful degradation: a shard that stays unreachable through the
//     retry budget yields a partial Result with a KindShard QueryError
//     naming the lost partition and Degraded set, instead of failing
//     the query.
package cluster

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/core"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/obs"
	"subgraphquery/internal/telemetry"
)

// Robustness defaults; every knob has a Config override.
const (
	defaultMaxAttempts  = 3
	defaultRetryBase    = 2 * time.Millisecond
	defaultRetryCap     = 200 * time.Millisecond
	defaultMergeReserve = 2 * time.Millisecond

	// Adaptive hedging: before hedgeWarmup successful attempts the
	// per-shard latency histogram is too thin to trust, so a fixed cold
	// delay is used; once warm, the hedge fires at the shard's p99
	// clamped to [hedgeMinDelay, hedgeMaxDelay].
	hedgeWarmup    = 16
	hedgeColdDelay = 25 * time.Millisecond
	hedgeMinDelay  = time.Millisecond
	hedgeMaxDelay  = 250 * time.Millisecond
)

// Config sizes and tunes a Coordinator.
type Config struct {
	// Shards is the cluster width (>= 1). Ignored by NewWithTransport,
	// which takes the width from the transport.
	Shards int
	// Replicas is how many engine instances serve each shard (>= 1;
	// default 1). Hedging needs >= 2: the duplicate request targets the
	// next replica, not the one already in flight.
	Replicas int
	// Strategy selects the partitioner ("" = StrategyHash).
	Strategy Strategy
	// Factory builds one engine instance per shard replica.
	Factory func() core.Engine
	// BaseName overrides the engine name used in Name() ("<base>-x<N>");
	// default is the name of a Factory-built instance.
	BaseName string
	// ShardConcurrency bounds simultaneous Query calls per shard replica
	// (its admission semaphore); <= 0 = unlimited.
	ShardConcurrency int
	// MaxAttempts bounds query rounds per shard, the first included
	// (default 3). A round may add one hedged attempt on top.
	MaxAttempts int
	// RetryBase and RetryCap shape the decorrelated-jitter backoff
	// between rounds: sleep ~ Uniform(base, 3*prev), capped
	// (defaults 2ms / 200ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter fixes the hedge delay; 0 selects the adaptive per-shard
	// p99 delay, negative disables hedging.
	HedgeAfter time.Duration
	// MergeReserve is withheld from each shard's deadline so the
	// coordinator can merge under the caller's budget (default 2ms;
	// negative = 0).
	MergeReserve time.Duration
}

// Coordinator fans queries out to the cluster's shards and merges the
// partial results. It implements core.Engine: Build partitions the
// database and builds every shard replica; Query must not be called
// before a successful Build (NewWithTransport coordinators are born
// built).
type Coordinator struct {
	cfg  Config
	name string
	part Partitioner

	transport  Transport
	local      *Local  // nil when the transport is external
	partitions [][]int // per-shard ascending global graph ids
	dbLen      int
	external   bool

	lat []*obs.Histogram // per-shard successful-attempt latency

	stats statCounters
}

// Construction and lifecycle errors. Sentinels so callers (and tests)
// can match them with errors.Is.
var (
	errNoShards    = errors.New("cluster: Config.Shards must be >= 1")
	errNoFactory   = errors.New("cluster: Config.Factory is required")
	errNoTransport = errors.New("cluster: transport is required")
	errNotBuilt    = errors.New("cluster: Query before Build")
)

// New returns a coordinator that will build its own in-process cluster:
// Build partitions the database with cfg.Strategy and hosts
// cfg.Shards × cfg.Replicas engine instances behind a Local transport.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, errNoShards
	}
	if cfg.Factory == nil {
		return nil, errNoFactory
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	p, err := NewPartitioner(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	base := cfg.BaseName
	if base == "" {
		base = cfg.Factory().Name()
	}
	c := &Coordinator{
		cfg:  cfg,
		part: p,
		name: fmt.Sprintf("%s-x%d", base, cfg.Shards),
	}
	c.lat = newHistograms(cfg.Shards)
	return c, nil
}

// NewWithTransport returns a coordinator over an externally managed
// transport — a test stub, or a future network client. partitions maps
// each of the transport's shards to its ascending global graph-id list
// (what a lost shard's degradation reports). Build is a no-op: the
// remote shards own their engines.
func NewWithTransport(cfg Config, t Transport, partitions [][]int) (*Coordinator, error) {
	if t == nil {
		return nil, errNoTransport
	}
	if len(partitions) != t.NumShards() {
		return nil, fmt.Errorf("cluster: %d partitions for %d shards", len(partitions), t.NumShards())
	}
	base := cfg.BaseName
	if base == "" && cfg.Factory != nil {
		base = cfg.Factory().Name()
	}
	if base == "" {
		base = "cluster"
	}
	cfg.Shards = t.NumShards()
	c := &Coordinator{
		cfg:        cfg,
		name:       fmt.Sprintf("%s-x%d", base, cfg.Shards),
		transport:  t,
		partitions: partitions,
		external:   true,
	}
	for _, p := range partitions {
		c.dbLen += len(p)
	}
	c.lat = newHistograms(cfg.Shards)
	return c, nil
}

func newHistograms(n int) []*obs.Histogram {
	hs := make([]*obs.Histogram, n)
	for i := range hs {
		hs[i] = obs.NewHistogram()
	}
	return hs
}

// Name implements core.Engine: "<inner engine>-x<shards>".
func (c *Coordinator) Name() string { return c.name }

// Build implements core.Engine: partition the database, build every
// shard replica's engine over its sub-database, stand up the Local
// transport. A no-op on NewWithTransport coordinators.
func (c *Coordinator) Build(db *graph.Database, opts core.BuildOptions) error {
	if c.external {
		return nil
	}
	partitions := groupByShard(c.part.Partition(db, c.cfg.Shards), c.cfg.Shards)
	replicas := make([][]*Shard, c.cfg.Shards)
	for s := range replicas {
		replicas[s] = make([]*Shard, c.cfg.Replicas)
		for r := range replicas[s] {
			sh, err := NewShard(s, c.cfg.Factory(), db, partitions[s], c.cfg.ShardConcurrency, opts)
			if err != nil {
				return fmt.Errorf("cluster: build shard %d replica %d: %w", s, r, err)
			}
			replicas[s][r] = sh
		}
	}
	local, err := NewLocal(replicas)
	if err != nil {
		return err
	}
	c.transport, c.local = local, local
	c.partitions, c.dbLen = partitions, db.Len()
	return nil
}

// IndexMemory implements core.Engine: the summed index footprint of
// every hosted replica (replicas are real memory, not bookkeeping);
// 0 for external transports, whose shards own their memory.
func (c *Coordinator) IndexMemory() int64 {
	if c.local == nil {
		return 0
	}
	var total int64
	for s := range c.local.replicas {
		for _, sh := range c.local.replicas[s] {
			total += sh.IndexMemory()
		}
	}
	return total
}

// Partitions returns the per-shard ascending global graph-id lists
// (nil before Build on a local coordinator). Callers must not modify.
func (c *Coordinator) Partitions() [][]int { return c.partitions }

// LocalTransport returns the in-process transport for kill/revive
// control in tests and operations; nil when the transport is external.
func (c *Coordinator) LocalTransport() *Local { return c.local }

// ShardP99 returns the shard's observed p99 successful-attempt latency
// (0 until any attempt succeeded).
func (c *Coordinator) ShardP99(shard int) time.Duration { return c.lat[shard].Quantile(0.99) }

// Query implements core.Engine: fan out, retry, hedge, merge, degrade.
func (c *Coordinator) Query(q *graph.Graph, opts core.QueryOptions) *core.Result {
	c.stats.queries.Add(1)
	if c.transport == nil {
		return &core.Result{
			Err:         core.NewShardError(c.name, -1, nil, errNotBuilt),
			Fingerprint: telemetry.Compute(q),
		}
	}
	if opts.Fingerprint == 0 {
		opts.Fingerprint = telemetry.Compute(q)
	}

	// Parent live handle: reuse the caller's (the server pre-registers
	// and owns merging/deregistration, like every engine's trackInflight
	// contract) or register our own against the registry.
	parent := opts.Handle
	if parent == nil && opts.Inflight != nil {
		parent = opts.Inflight.Register(inflight.RegisterOptions{
			Engine:      c.name,
			Fingerprint: uint64(opts.Fingerprint),
		})
		opts.Cancel = parent.MergeCancel(opts.Cancel)
		defer opts.Inflight.Deregister(parent)
		opts.Handle = parent
	}
	parent.SetPhase(inflight.PhaseFused)
	parent.SetGraphsTotal(c.dbLen)

	// Per-shard options: each shard attempt registers its own sub-handle,
	// and the shard deadline withholds the merge reserve from the
	// caller's budget.
	sub := opts
	sub.Handle = nil
	if !opts.Deadline.IsZero() {
		if d := opts.Deadline.Add(-c.mergeReserve()); d.After(time.Now()) {
			sub.Deadline = d
		}
	}
	parentCancel := opts.Cancel

	n := c.transport.NumShards()
	parts := make([]*core.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		if len(c.partitions[s]) == 0 {
			parts[s] = &core.Result{}
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// The fan-out goroutine is a process boundary: a panic here
			// (not in the engines, which guard themselves) must degrade
			// the shard, never unwind the runtime.
			defer func() {
				if v := recover(); v != nil {
					parts[s] = nil
					errs[s] = fmt.Errorf("coordinator panic: %v", v)
				}
			}()
			parts[s], errs[s] = c.queryShard(s, q, sub, parentCancel)
		}(s)
	}
	wg.Wait()

	merged := core.MergeResults(parts)
	merged.Fingerprint = opts.Fingerprint
	var shardErrs []*core.QueryError
	for s := 0; s < n; s++ {
		if parts[s] != nil {
			continue
		}
		c.stats.shardsLost.Add(1)
		merged.Skipped += len(c.partitions[s])
		shardErrs = append(shardErrs, core.NewShardError(c.name, s, c.partitions[s], errs[s]))
	}
	if len(shardErrs) > 0 {
		merged.Degraded = true
		c.stats.degradedQueries.Add(1)
		// Shard-loss entries lead so the cap can never silently eat them.
		merged.GraphErrors = append(shardErrs, merged.GraphErrors...)
		if len(shardErrs) == n {
			// Nothing survived: that is a failed query, not a degraded one.
			merged.Err = shardErrs[0]
		}
	}
	merged.CapGraphErrors()
	c.stats.errorsTruncated.Add(uint64(merged.GraphErrorsTruncated))
	parent.AddCandidates(merged.Candidates)
	parent.AddAnswers(len(merged.Answers))
	return merged
}

// queryShard runs the bounded-retry loop for one shard: up to
// MaxAttempts rounds, decorrelated-jitter backoff between them, replica
// rotation across rounds. A non-nil result means the shard answered
// (possibly a partial under its deadline); nil + error means the shard
// is lost for this query.
func (c *Coordinator) queryShard(shard int, q *graph.Graph, opts core.QueryOptions, parentCancel <-chan struct{}) (*core.Result, error) {
	reps := c.transport.Replicas(shard)
	var lastErr error
	prev := c.retryBase()
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
			if !c.backoff(&prev, opts.Deadline, parentCancel) {
				break
			}
		}
		res, err := c.round(shard, attempt%reps, reps, q, opts, parentCancel)
		if err == nil && res.Err == nil {
			return res, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = res.Err
		}
		if budget.Cancelled(parentCancel) {
			break
		}
	}
	if lastErr == nil {
		lastErr = ErrShardUnavailable
	}
	return nil, lastErr
}

// attemptCtl is one in-flight attempt's cancellation surface: stop is
// the coordinator-side cancel (hedge loser, parent teardown), h the
// registry handle remote cancellation arrives on, done closes when the
// attempt's goroutine finishes (releasing the fan-in goroutine).
type attemptCtl struct {
	h        *inflight.Handle
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

func (a *attemptCtl) cancel() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.h.Cancel()
}

type reply struct {
	res    *core.Result
	err    error
	dur    time.Duration
	hedged bool
	ctl    *attemptCtl
}

// round issues one attempt at the primary replica and, if it outlives
// the hedge delay, one duplicate at the next replica. The first clean
// response wins and the other attempt is cancelled; transport errors
// and engine-boundary failures both wait for the slower attempt before
// reporting the round failed.
func (c *Coordinator) round(shard, primary, reps int, q *graph.Graph, opts core.QueryOptions, parentCancel <-chan struct{}) (*core.Result, error) {
	ch := make(chan reply, 2)
	launch := func(replica int, hedged bool) *attemptCtl {
		ctl := &attemptCtl{stop: make(chan struct{}), done: make(chan struct{})}
		ctl.h = c.registry(&opts).Register(inflight.RegisterOptions{
			Engine:      fmt.Sprintf("%s#s%d", c.name, shard),
			Fingerprint: uint64(opts.Fingerprint),
			Verdict:     "shard",
		})
		sub := opts
		sub.Inflight = nil
		sub.Handle = ctl.h
		sub.Cancel = fanInCancel(ctl.done, parentCancel, ctl.stop, ctl.h.CancelChan())
		go func() {
			defer close(ctl.done)
			defer c.registry(&opts).Deregister(ctl.h)
			start := time.Now()
			res, err := c.attempt(shard, replica, q, sub)
			ch <- reply{res: res, err: err, dur: time.Since(start), hedged: hedged, ctl: ctl}
		}()
		return ctl
	}

	ctls := []*attemptCtl{launch(primary, false)}
	outstanding := 1

	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(shard); d >= 0 && reps > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}

	var failed reply
	sawFailure := false
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil && r.res.Err == nil {
				for _, ctl := range ctls {
					if ctl != r.ctl {
						ctl.cancel()
					}
				}
				if r.hedged {
					c.stats.hedgeWins.Add(1)
				}
				c.lat[shard].Record(r.dur)
				return r.res, nil
			}
			if !sawFailure {
				failed, sawFailure = r, true
			}
		case <-hedgeC:
			hedgeC = nil
			if outstanding == 1 && !budget.Cancelled(parentCancel) {
				c.stats.hedges.Add(1)
				ctls = append(ctls, launch((primary+1)%reps, true))
				outstanding++
			}
		}
	}
	return failed.res, failed.err
}

// attempt carries one transport call, converting a panic at the
// transport boundary (including injected chaos panics) into a transient
// error the retry loop can absorb.
func (c *Coordinator) attempt(shard, replica int, q *graph.Graph, sub core.QueryOptions) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fmt.Errorf("%w: shard %d attempt panicked: %v", ErrShardUnavailable, shard, v)
		}
	}()
	res, err = c.transport.Query(shard, replica, q, sub)
	if res == nil && err == nil {
		err = fmt.Errorf("%w: shard %d transport returned neither result nor error", ErrShardUnavailable, shard)
	}
	return res, err
}

// backoff sleeps the decorrelated-jitter interval — uniform in
// [base, 3*prev], capped — before the next round. It reports false when
// the retry should be abandoned instead: the caller cancelled, or the
// deadline leaves no room for another attempt.
func (c *Coordinator) backoff(prev *time.Duration, deadline time.Time, cancel <-chan struct{}) bool {
	base, ceil := c.retryBase(), c.retryCap()
	hi := 3 * *prev
	if hi < base {
		hi = base
	}
	d := base
	if span := int64(hi - base); span > 0 {
		d += time.Duration(rand.Int64N(span + 1))
	}
	if d > ceil {
		d = ceil
	}
	*prev = d
	if !deadline.IsZero() {
		remain := time.Until(deadline)
		if remain <= base {
			return false
		}
		if d > remain {
			d = remain
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// hedgeDelay returns how long to wait before hedging a shard attempt,
// or a negative duration when hedging is off.
func (c *Coordinator) hedgeDelay(shard int) time.Duration {
	switch {
	case c.cfg.HedgeAfter < 0:
		return -1
	case c.cfg.HedgeAfter > 0:
		return c.cfg.HedgeAfter
	}
	h := c.lat[shard]
	if h.Count() < hedgeWarmup {
		return hedgeColdDelay
	}
	d := h.Quantile(0.99)
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	if d > hedgeMaxDelay {
		d = hedgeMaxDelay
	}
	return d
}

func (c *Coordinator) registry(opts *core.QueryOptions) *inflight.Registry { return opts.Inflight }

func (c *Coordinator) maxAttempts() int {
	if c.cfg.MaxAttempts > 0 {
		return c.cfg.MaxAttempts
	}
	return defaultMaxAttempts
}

func (c *Coordinator) retryBase() time.Duration {
	if c.cfg.RetryBase > 0 {
		return c.cfg.RetryBase
	}
	return defaultRetryBase
}

func (c *Coordinator) retryCap() time.Duration {
	if c.cfg.RetryCap > 0 {
		return c.cfg.RetryCap
	}
	return defaultRetryCap
}

func (c *Coordinator) mergeReserve() time.Duration {
	switch {
	case c.cfg.MergeReserve > 0:
		return c.cfg.MergeReserve
	case c.cfg.MergeReserve < 0:
		return 0
	}
	return defaultMergeReserve
}

// fanInCancel merges up to three cancellation sources into one channel.
// nil sources are dropped; with one live source it is returned directly
// (no goroutine). The merge goroutine exits when any source fires or
// when done closes (the attempt finished — nothing left to cancel).
func fanInCancel(done <-chan struct{}, a, b, c <-chan struct{}) <-chan struct{} {
	live := make([]<-chan struct{}, 0, 3)
	for _, src := range []<-chan struct{}{a, b, c} {
		if src != nil {
			live = append(live, src)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	merged := make(chan struct{})
	go func() {
		defer close(merged)
		if len(live) == 2 {
			select {
			case <-live[0]:
			case <-live[1]:
			case <-done:
			}
			return
		}
		select {
		case <-live[0]:
		case <-live[1]:
		case <-live[2]:
		case <-done:
		}
	}()
	return merged
}
