package cluster

import (
	"sort"

	"subgraphquery/internal/core"
	"subgraphquery/internal/graph"
)

// Shard hosts one partition of the database behind its own engine
// instance. The engine sees a compact sub-database (local ids 0..k-1);
// the shard owns the mapping back to global graph ids and rewrites every
// id-bearing Result field before the coordinator merges. Each shard also
// carries its own admission semaphore so a storm of fan-outs cannot
// oversubscribe one shard's engine while the others idle — per-shard
// concurrency is the unit the serving tier reasons about.
type Shard struct {
	id      int
	engine  core.Engine
	globals []int         // ascending global graph ids; globals[local] = global
	sem     chan struct{} // admission tokens; nil = unlimited
}

// NewShard builds the shard's sub-database from the partition's global
// ids (must be ascending, as groupByShard produces) and hands it to the
// engine's Build. concurrency bounds simultaneous Query calls on this
// shard (<= 0 means unlimited).
func NewShard(id int, eng core.Engine, db *graph.Database, globals []int,
	concurrency int, opts core.BuildOptions) (*Shard, error) {
	sub := make([]*graph.Graph, len(globals))
	for local, global := range globals {
		sub[local] = db.Graph(global)
	}
	if err := eng.Build(graph.NewDatabase(sub), opts); err != nil {
		return nil, err
	}
	s := &Shard{id: id, engine: eng, globals: globals}
	if concurrency > 0 {
		s.sem = make(chan struct{}, concurrency)
	}
	return s, nil
}

// ID returns the shard's index in the cluster.
func (s *Shard) ID() int { return s.id }

// Globals returns the shard's ascending global graph-id partition;
// callers must not modify it.
func (s *Shard) Globals() []int { return s.globals }

// Len returns the number of graphs this shard serves.
func (s *Shard) Len() int { return len(s.globals) }

// IndexMemory returns the shard engine's index footprint.
func (s *Shard) IndexMemory() int64 { return s.engine.IndexMemory() }

// Query runs the query on the shard's engine under its admission
// semaphore and rewrites the result into global graph ids. The semaphore
// wait respects the caller's cancel channel: a cancelled waiter returns
// a Cancelled result without ever entering the engine, so hedged losers
// queued behind a busy shard release immediately.
func (s *Shard) Query(q *graph.Graph, opts core.QueryOptions) *core.Result {
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-opts.Cancel:
			return &core.Result{TimedOut: true, Cancelled: true}
		}
	}
	res := s.engine.Query(q, opts)
	s.rewrite(res)
	return res
}

// rewrite maps the engine's local graph ids back to the shard's global
// ids, in place. The globals slice is ascending, so a sorted local
// answer list stays sorted after mapping — merge order is preserved for
// free.
func (s *Shard) rewrite(res *core.Result) {
	if res == nil {
		return
	}
	for i, local := range res.Answers {
		res.Answers[i] = s.global(local)
	}
	if !sort.IntsAreSorted(res.Answers) {
		sort.Ints(res.Answers) // defensive: engines return ascending ids
	}
	for _, qe := range res.GraphErrors {
		if qe.GraphID >= 0 {
			qe.GraphID = s.global(qe.GraphID)
		}
		if qe.Shard < 0 {
			qe.Shard = s.id
		}
	}
}

// global translates a local id, tolerating out-of-range values from a
// misbehaving engine (returned unchanged rather than panicking at the
// transport boundary).
func (s *Shard) global(local int) int {
	if local < 0 || local >= len(s.globals) {
		return local
	}
	return s.globals[local]
}
