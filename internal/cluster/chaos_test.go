//go:build sqchaos

package cluster

import (
	"sync"
	"testing"

	"subgraphquery/internal/core"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/gen"
	"subgraphquery/internal/inflight"
)

// With every dispatch dropped at the transport boundary, the retry
// budget drains on all shards and the query fails structurally — no
// panic, no hang, a KindShard error naming what was lost. Clearing the
// fault restores exact answers.
func TestClusterShardDropBlackoutThenRecovery(t *testing.T) {
	db, err := gen.Synthetic(gen.SyntheticConfig{
		NumGraphs: 40, NumVertices: 12, NumLabels: 4, Degree: 3, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.QuerySet(db, gen.QuerySetConfig{Count: 3, Edges: 4, Method: gen.QueryRandomWalk, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Shards, cfg.Factory, cfg.BaseName = 2, core.NewCFQL, ""
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Build(db, core.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	baseline := c.Query(queries[0], core.QueryOptions{})
	if baseline.Err != nil {
		t.Fatalf("baseline: %v", baseline.Err)
	}

	t.Cleanup(func() { fault.Set(fault.Config{}) })
	fault.Set(fault.Config{Points: map[string]bool{fault.PointShard: true}, DropRate: 1, Seed: 7})
	res := c.Query(queries[0], core.QueryOptions{})
	if res.Err == nil || !res.Degraded {
		t.Fatalf("total blackout: err=%v degraded=%v, want structured failure", res.Err, res.Degraded)
	}
	if res.Err.Kind != core.KindShard {
		t.Errorf("err kind=%q, want shard", res.Err.Kind)
	}
	if fault.Drops() == 0 {
		t.Error("no injected drops fired")
	}

	fault.Set(fault.Config{})
	after := c.Query(queries[0], core.QueryOptions{})
	if after.Err != nil || after.Degraded || !equalInts(after.Answers, baseline.Answers) {
		t.Fatalf("post-recovery: err=%v degraded=%v answers=%v want=%v",
			after.Err, after.Degraded, after.Answers, baseline.Answers)
	}
}

// A concurrent storm under partial drop injection: every response is
// well-formed — clean and exact, or degraded with a KindShard entry —
// and the inflight registry drains to empty (no leaked sub-handles from
// retries or hedges).
func TestClusterDropStormAllResponsesWellFormed(t *testing.T) {
	db, err := gen.Synthetic(gen.SyntheticConfig{
		NumGraphs: 60, NumVertices: 12, NumLabels: 4, Degree: 3, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.QuerySet(db, gen.QuerySetConfig{Count: 10, Edges: 4, Method: gen.QueryRandomWalk, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Shards, cfg.Replicas, cfg.Factory, cfg.BaseName = 3, 2, core.NewCFQL, ""
	cfg.HedgeAfter = 0 // adaptive
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Build(db, core.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	exact := make([][]int, len(queries))
	for i, q := range queries {
		exact[i] = c.Query(q, core.QueryOptions{}).Answers
	}

	t.Cleanup(func() { fault.Set(fault.Config{}) })
	fault.Set(fault.Config{Points: map[string]bool{fault.PointShard: true}, DropRate: 0.4, Seed: 99})

	reg := inflight.NewRegistry(256)
	const clients, total = 4, 100
	var wg sync.WaitGroup
	malformed := make([]int, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += clients {
				q := i % len(queries)
				res := c.Query(queries[q], core.QueryOptions{Inflight: reg})
				switch {
				case res.Err != nil:
					// Structured total failure is well-formed too.
					if res.Err.Kind != core.KindShard {
						malformed[w]++
					}
				case res.Degraded:
					ok := false
					for _, qe := range res.GraphErrors {
						if qe.Kind == core.KindShard {
							ok = true
						}
					}
					if !ok {
						malformed[w]++
					}
				default:
					if !equalInts(res.Answers, exact[q]) {
						malformed[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, n := range malformed {
		if n != 0 {
			t.Errorf("client %d saw %d malformed responses", w, n)
		}
	}
	if fault.Drops() == 0 {
		t.Error("storm fired no drops")
	}
	if got := reg.Len(); got != 0 {
		t.Errorf("inflight registry holds %d handles after the storm, want 0", got)
	}
}
