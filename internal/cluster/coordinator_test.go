package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
)

// stubTransport scripts per-shard behavior: fn receives the 1-based
// attempt number for its shard and full QueryOptions, and returns what
// the transport would.
type stubTransport struct {
	shards   int
	replicas int
	calls    []atomic.Int64
	fn       func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error)
}

func newStub(shards, replicas int, fn func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error)) *stubTransport {
	return &stubTransport{shards: shards, replicas: replicas, calls: make([]atomic.Int64, shards), fn: fn}
}

func (s *stubTransport) Query(shard, replica int, q *graph.Graph, opts core.QueryOptions) (*core.Result, error) {
	return s.fn(shard, replica, s.calls[shard].Add(1), opts)
}
func (s *stubTransport) NumShards() int   { return s.shards }
func (s *stubTransport) Replicas(int) int { return s.replicas }

var testQuery = graph.MustFromEdges([]graph.Label{0, 1}, []graph.Edge{{U: 0, V: 1}})

// fastCfg keeps retry/hedge waits microscopic so tests run in
// milliseconds; hedging off unless a test turns it on.
func fastCfg() Config {
	return Config{
		BaseName:    "stub",
		MaxAttempts: 3,
		RetryBase:   200 * time.Microsecond,
		RetryCap:    time.Millisecond,
		HedgeAfter:  -1,
	}
}

func TestCoordinatorRetriesTransientErrors(t *testing.T) {
	stub := newStub(2, 1, func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error) {
		if shard == 1 && attempt <= 2 {
			return nil, fmt.Errorf("%w: flaky", ErrShardUnavailable)
		}
		if shard == 0 {
			return &core.Result{Answers: []int{0}}, nil
		}
		return &core.Result{Answers: []int{3}}, nil
	})
	c, err := NewWithTransport(fastCfg(), stub, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Query(testQuery, core.QueryOptions{})
	if res.Err != nil || res.Degraded {
		t.Fatalf("err=%v degraded=%v, want clean recovery", res.Err, res.Degraded)
	}
	if len(res.Answers) != 2 || res.Answers[0] != 0 || res.Answers[1] != 3 {
		t.Fatalf("answers %v, want [0 3]", res.Answers)
	}
	if s := c.Stats(); s.Retries != 2 || s.ShardsLost != 0 {
		t.Errorf("stats retries=%d shardsLost=%d, want 2 retries, 0 lost", s.Retries, s.ShardsLost)
	}
}

func TestCoordinatorDegradesPermanentlyLostShard(t *testing.T) {
	stub := newStub(2, 1, func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error) {
		if shard == 1 {
			return nil, fmt.Errorf("%w: dead", ErrShardUnavailable)
		}
		return &core.Result{Answers: []int{1}, Candidates: 2}, nil
	})
	c, err := NewWithTransport(fastCfg(), stub, [][]int{{0, 1, 2}, {3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Query(testQuery, core.QueryOptions{})
	if res.Err != nil {
		t.Fatalf("one live shard must keep the query alive, got Err=%v", res.Err)
	}
	if !res.Degraded {
		t.Fatal("want Degraded for a lost shard")
	}
	if res.Skipped != 4 {
		t.Errorf("Skipped=%d, want the lost partition's 4 graphs", res.Skipped)
	}
	if len(res.GraphErrors) != 1 {
		t.Fatalf("GraphErrors=%d, want exactly the shard-loss entry", len(res.GraphErrors))
	}
	qe := res.GraphErrors[0]
	if qe.Kind != core.KindShard || qe.Shard != 1 {
		t.Errorf("entry kind=%q shard=%d, want shard-loss for shard 1", qe.Kind, qe.Shard)
	}
	if len(res.Answers) != 1 || res.Answers[0] != 1 {
		t.Errorf("answers %v, want the surviving shard's [1]", res.Answers)
	}
	if got := stub.calls[1].Load(); got != 3 {
		t.Errorf("lost shard saw %d attempts, want MaxAttempts=3", got)
	}
	if s := c.Stats(); s.ShardsLost != 1 || s.DegradedQueries != 1 {
		t.Errorf("stats lost=%d degraded=%d, want 1/1", s.ShardsLost, s.DegradedQueries)
	}
}

func TestCoordinatorAllShardsLostFailsQuery(t *testing.T) {
	stub := newStub(2, 1, func(int, int, int64, core.QueryOptions) (*core.Result, error) {
		return nil, errors.New("total outage")
	})
	c, err := NewWithTransport(fastCfg(), stub, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Query(testQuery, core.QueryOptions{})
	if res.Err == nil {
		t.Fatal("every shard lost: want Result.Err, not a silent empty answer")
	}
	if res.Err.Kind != core.KindShard || !res.Degraded {
		t.Errorf("err kind=%q degraded=%v", res.Err.Kind, res.Degraded)
	}
}

// A panic escaping the transport (injected chaos, buggy transport) is a
// transient error, never a process crash.
func TestCoordinatorSurvivesTransportPanic(t *testing.T) {
	stub := newStub(1, 1, func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error) {
		if attempt == 1 {
			panic("transport wire fault")
		}
		return &core.Result{Answers: []int{0}}, nil
	})
	c, err := NewWithTransport(fastCfg(), stub, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Query(testQuery, core.QueryOptions{})
	if res.Err != nil || res.Degraded || len(res.Answers) != 1 {
		t.Fatalf("err=%v degraded=%v answers=%v, want recovery on retry", res.Err, res.Degraded, res.Answers)
	}
}

func TestCoordinatorHedgeWinsAndLoserIsCancelled(t *testing.T) {
	var slowSawCancel atomic.Bool
	stub := newStub(1, 2, func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error) {
		if replica == 0 {
			// Primary: stuck until cancelled.
			select {
			case <-opts.Cancel:
				slowSawCancel.Store(true)
				return &core.Result{TimedOut: true, Cancelled: true}, nil
			case <-time.After(5 * time.Second):
				return nil, errors.New("test hung: loser never cancelled")
			}
		}
		return &core.Result{Answers: []int{7}}, nil
	})
	cfg := fastCfg()
	cfg.HedgeAfter = 2 * time.Millisecond
	c, err := NewWithTransport(cfg, stub, [][]int{{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	reg := inflight.NewRegistry(16)
	res := c.Query(testQuery, core.QueryOptions{Inflight: reg})
	if res.Err != nil || res.Degraded {
		t.Fatalf("err=%v degraded=%v", res.Err, res.Degraded)
	}
	if len(res.Answers) != 1 || res.Answers[0] != 7 {
		t.Fatalf("answers %v, want the hedge's [7]", res.Answers)
	}
	if s := c.Stats(); s.Hedges != 1 || s.HedgeWins != 1 {
		t.Errorf("stats hedges=%d wins=%d, want 1/1", s.Hedges, s.HedgeWins)
	}
	// The loser must observe cancellation and its handle must leave the
	// registry — the no-leak property the chaos storm asserts at scale.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Len() != 0 || !slowSawCancel.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("loser not torn down: registry=%d sawCancel=%v", reg.Len(), slowSawCancel.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCoordinatorCancelPropagatesToShards(t *testing.T) {
	stub := newStub(2, 1, func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error) {
		<-opts.Cancel
		return &core.Result{TimedOut: true, Cancelled: true}, nil
	})
	c, err := NewWithTransport(fastCfg(), stub, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(cancel)
	}()
	res := c.Query(testQuery, core.QueryOptions{Cancel: cancel})
	if !res.Cancelled || !res.TimedOut {
		t.Fatalf("cancelled=%v timedOut=%v, want cooperative cancellation", res.Cancelled, res.TimedOut)
	}
	if res.Degraded || res.Err != nil {
		t.Errorf("a cancelled query is not a degraded one: degraded=%v err=%v", res.Degraded, res.Err)
	}
}

// The satellite fix at tier level: N shards' GraphErrors plus the
// coordinator's own shard-loss entries still respect the 16-entry cap,
// with the overflow counted.
func TestCoordinatorCapsMergedGraphErrors(t *testing.T) {
	mkErrs := func(base int) []*core.QueryError {
		out := make([]*core.QueryError, 12)
		for i := range out {
			out[i] = &core.QueryError{Engine: "stub", Kind: core.KindBudget, GraphID: base + i, Shard: -1}
		}
		return out
	}
	stub := newStub(3, 1, func(shard, replica int, attempt int64, opts core.QueryOptions) (*core.Result, error) {
		if shard == 2 {
			return nil, errors.New("down")
		}
		return &core.Result{Skipped: 12, GraphErrors: mkErrs(100 * shard)}, nil
	})
	c, err := NewWithTransport(fastCfg(), stub, [][]int{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Query(testQuery, core.QueryOptions{})
	if len(res.GraphErrors) != 16 {
		t.Fatalf("merged GraphErrors=%d, want the cap of 16", len(res.GraphErrors))
	}
	// 24 engine errors + 1 shard-loss entry = 25; 9 dropped.
	if res.GraphErrorsTruncated != 9 {
		t.Errorf("GraphErrorsTruncated=%d, want 9", res.GraphErrorsTruncated)
	}
	if res.GraphErrors[0].Kind != core.KindShard {
		t.Errorf("shard-loss entry must lead, got kind=%q", res.GraphErrors[0].Kind)
	}
	if res.Skipped != 12+12+2 {
		t.Errorf("Skipped=%d, want engine skips plus the lost partition", res.Skipped)
	}
	if s := c.Stats(); s.ErrorsTruncated != 9 {
		t.Errorf("stats ErrorsTruncated=%d, want 9", s.ErrorsTruncated)
	}
}

func TestCoordinatorQueryBeforeBuildFails(t *testing.T) {
	c, err := New(Config{Shards: 2, Factory: core.NewCFQL})
	if err != nil {
		t.Fatal(err)
	}
	if res := c.Query(testQuery, core.QueryOptions{}); res.Err == nil {
		t.Fatal("Query before Build must return a structured error")
	}
}

// End-to-end over the real Local transport: a sharded CFQL cluster must
// return exactly the single-engine answer set, for both strategies, with
// and without replicas, across shard counts.
func TestCoordinatorEndToEndMatchesSingleEngine(t *testing.T) {
	db, err := gen.Synthetic(gen.SyntheticConfig{
		NumGraphs: 80, NumVertices: 14, NumLabels: 4, Degree: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.QuerySet(db, gen.QuerySetConfig{Count: 8, Edges: 4, Method: gen.QueryRandomWalk, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	single := core.NewCFQL()
	if err := single.Build(db, core.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(queries))
	for i, q := range queries {
		r := single.Query(q, core.QueryOptions{})
		if r.Err != nil {
			t.Fatalf("single engine query %d: %v", i, r.Err)
		}
		want[i] = r.Answers
	}
	for _, tc := range []struct {
		strategy Strategy
		shards   int
		replicas int
	}{
		{StrategyHash, 1, 1},
		{StrategyHash, 3, 1},
		{StrategyHash, 4, 2},
		{StrategySize, 3, 1},
	} {
		t.Run(fmt.Sprintf("%s-x%d-r%d", tc.strategy, tc.shards, tc.replicas), func(t *testing.T) {
			c, err := New(Config{
				Shards:   tc.shards,
				Replicas: tc.replicas,
				Strategy: tc.strategy,
				Factory:  core.NewCFQL,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Build(db, core.BuildOptions{}); err != nil {
				t.Fatal(err)
			}
			if wantName := fmt.Sprintf("CFQL-x%d", tc.shards); c.Name() != wantName {
				t.Errorf("Name() = %q, want %q", c.Name(), wantName)
			}
			for i, q := range queries {
				res := c.Query(q, core.QueryOptions{})
				if res.Err != nil || res.Degraded {
					t.Fatalf("query %d: err=%v degraded=%v", i, res.Err, res.Degraded)
				}
				if !equalInts(res.Answers, want[i]) {
					t.Fatalf("query %d: cluster answers %v, single-engine %v", i, res.Answers, want[i])
				}
				if res.Fingerprint == 0 {
					t.Fatalf("query %d: zero fingerprint", i)
				}
			}
			if c.IndexMemory() < 0 {
				t.Error("negative index memory")
			}
		})
	}
}

// Killing every replica of one shard degrades exactly that partition;
// reviving restores full answers — the serving tier's core promise.
func TestCoordinatorKillReviveDegradesAndRecovers(t *testing.T) {
	db, err := gen.Synthetic(gen.SyntheticConfig{
		NumGraphs: 60, NumVertices: 12, NumLabels: 4, Degree: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.QuerySet(db, gen.QuerySetConfig{Count: 4, Edges: 4, Method: gen.QueryRandomWalk, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.Shards, cfg.Factory, cfg.BaseName = 3, core.NewCFQL, ""
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Build(db, core.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	full := make([][]int, len(queries))
	for i, q := range queries {
		full[i] = c.Query(q, core.QueryOptions{}).Answers
	}

	const victim = 1
	c.LocalTransport().KillShard(victim)
	lost := map[int]bool{}
	for _, id := range c.Partitions()[victim] {
		lost[id] = true
	}
	for i, q := range queries {
		res := c.Query(q, core.QueryOptions{})
		if !res.Degraded || res.Err != nil {
			t.Fatalf("query %d with shard %d down: degraded=%v err=%v", i, victim, res.Degraded, res.Err)
		}
		found := false
		for _, qe := range res.GraphErrors {
			if qe.Kind == core.KindShard && qe.Shard == victim {
				found = true
			}
		}
		if !found {
			t.Fatalf("query %d: no KindShard entry naming shard %d", i, victim)
		}
		for _, id := range res.Answers {
			if lost[id] {
				t.Fatalf("query %d: answer %d from the killed shard", i, id)
			}
		}
		// Degradation loses exactly the victim's graphs, nothing else.
		for _, id := range full[i] {
			if !lost[id] && !res.Contains(id) {
				t.Fatalf("query %d: surviving answer %d missing while degraded", i, id)
			}
		}
	}

	c.LocalTransport().ReviveShard(victim)
	for i, q := range queries {
		res := c.Query(q, core.QueryOptions{})
		if res.Degraded || !equalInts(res.Answers, full[i]) {
			t.Fatalf("query %d after revive: degraded=%v answers=%v want=%v",
				i, res.Degraded, res.Answers, full[i])
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
