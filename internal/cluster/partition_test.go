package cluster

import (
	"testing"

	"subgraphquery/internal/gen"
	"subgraphquery/internal/graph"
)

func testDB(t *testing.T, graphs, vertices int, seed int64) *graph.Database {
	t.Helper()
	db, err := gen.Synthetic(gen.SyntheticConfig{
		NumGraphs: graphs, NumVertices: vertices, NumLabels: 5, Degree: 3, Seed: seed,
	})
	if err != nil {
		t.Fatalf("synthetic db: %v", err)
	}
	return db
}

func strategies(t *testing.T) map[Strategy]Partitioner {
	t.Helper()
	out := map[Strategy]Partitioner{}
	for _, s := range []Strategy{StrategyHash, StrategySize} {
		p, err := NewPartitioner(s)
		if err != nil {
			t.Fatalf("NewPartitioner(%q): %v", s, err)
		}
		out[s] = p
	}
	return out
}

// Invariant 1: every graph id lands on exactly one shard, for every
// strategy and cluster width.
func TestPartitionCoversEveryGraphExactlyOnce(t *testing.T) {
	db := testDB(t, 200, 14, 11)
	for name, p := range strategies(t) {
		for _, n := range []int{1, 2, 3, 5, 8} {
			part := p.Partition(db, n)
			if len(part) != db.Len() {
				t.Fatalf("%s/n=%d: %d assignments for %d graphs", name, n, len(part), db.Len())
			}
			for id, s := range part {
				if s < 0 || s >= n {
					t.Fatalf("%s/n=%d: graph %d assigned to shard %d", name, n, id, s)
				}
			}
			total := 0
			for _, g := range groupByShard(part, n) {
				total += len(g)
			}
			if total != db.Len() {
				t.Fatalf("%s/n=%d: groups cover %d of %d graphs", name, n, total, db.Len())
			}
		}
	}
}

// renumber rebuilds g with its vertex ids reversed: same graph, different
// serialization order.
func renumber(g *graph.Graph) *graph.Graph {
	n := g.NumVertices()
	perm := func(v graph.VertexID) graph.VertexID { return graph.VertexID(n-1) - v }
	labels := make([]graph.Label, n)
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		labels[perm(graph.VertexID(v))] = g.Label(graph.VertexID(v))
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if graph.VertexID(v) < u {
				edges = append(edges, graph.Edge{U: perm(graph.VertexID(v)), V: perm(u)})
			}
		}
	}
	return graph.MustFromEdges(labels, edges)
}

// Invariant 2: the partition is a function of graph content, not vertex
// numbering — reloading a database whose graphs were re-serialized in a
// different vertex order reproduces the same shard assignment.
func TestPartitionDeterministicUnderVertexRenumbering(t *testing.T) {
	db := testDB(t, 120, 12, 23)
	renum := make([]*graph.Graph, db.Len())
	for i := range renum {
		renum[i] = renumber(db.Graph(i))
	}
	db2 := graph.NewDatabase(renum)
	for name, p := range strategies(t) {
		for _, n := range []int{2, 4, 7} {
			a, b := p.Partition(db, n), p.Partition(db2, n)
			for id := range a {
				if a[id] != b[id] {
					t.Fatalf("%s/n=%d: graph %d moved %d -> %d under vertex renumbering",
						name, n, id, a[id], b[id])
				}
			}
		}
	}
}

// Invariant 3: growing the cluster N -> N+1 moves a bounded fraction of
// the database (rendezvous hashing: 1/(N+1) expected). A modulo scheme
// would move ~N/(N+1) and fail this hard.
func TestHashRebalancingMovesBoundedFraction(t *testing.T) {
	db := testDB(t, 600, 10, 31)
	p := hashPartitioner{}
	for _, n := range []int{2, 4, 8} {
		before, after := p.Partition(db, n), p.Partition(db, n+1)
		moved := 0
		for id := range before {
			if before[id] != after[id] {
				moved++
				if after[id] != n {
					t.Errorf("n=%d: graph %d moved %d -> %d, not to the new shard %d",
						n, id, before[id], after[id], n)
				}
			}
		}
		frac := float64(moved) / float64(db.Len())
		// Expected 1/(n+1); 2.2x headroom keeps the test deterministic
		// while still rejecting any full-reshuffle scheme.
		if limit := 2.2 / float64(n+1); frac > limit {
			t.Errorf("n=%d -> %d moved %.1f%% of graphs, want <= %.1f%%",
				n, n+1, 100*frac, 100*limit)
		}
		if moved == 0 {
			t.Errorf("n=%d -> %d moved nothing; new shard unused", n, n+1)
		}
	}
}

// StrategySize: per-shard byte loads stay near even, within the
// documented slack plus one graph of quantization.
func TestSizePartitionerBalancesBytes(t *testing.T) {
	db := testDB(t, 300, 16, 47)
	part := sizePartitioner{}.Partition(db, 4)
	load := make([]int64, 4)
	var total, maxGraph int64
	for id, s := range part {
		b := db.Graph(id).MemoryFootprint()
		load[s] += b
		total += b
		if b > maxGraph {
			maxGraph = b
		}
	}
	limit := int64(float64(total)*sizeSlack/4) + maxGraph
	for s, l := range load {
		if l > limit {
			t.Errorf("shard %d holds %d bytes, cap %d (total %d)", s, l, limit, total)
		}
		if l == 0 {
			t.Errorf("shard %d empty on a 300-graph database", s)
		}
	}
}

func TestNewPartitionerRejectsUnknownStrategy(t *testing.T) {
	if _, err := NewPartitioner("modulo"); err == nil {
		t.Fatal("want error for unknown strategy")
	}
	if p, err := NewPartitioner(""); err != nil || p.Name() != string(StrategyHash) {
		t.Fatalf("empty strategy: %v, %v (want hash default)", p, err)
	}
}
