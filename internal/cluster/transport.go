package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"

	"subgraphquery/internal/core"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
)

// ErrShardUnavailable is the transient transport error: the replica is
// down, dropped the request, or was unreachable. The coordinator retries
// it with backoff; only after the retry budget is exhausted does the
// shard degrade.
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// Transport carries one query attempt to one shard replica. The
// interface is the seam between the coordinator's robustness logic and
// the hosting substrate: Local runs replicas in-process (this PR), a
// network transport slots in behind the same three methods. A Transport
// must be safe for concurrent Query calls.
//
// Error contract: (nil, err) is a transport-level failure — the attempt
// never reached an engine, or the response was lost — and is retryable.
// A non-nil *Result is an engine response; the coordinator inspects
// Result.Err itself. Implementations must not return (nil, nil).
type Transport interface {
	// Query runs q against the given replica of the given shard,
	// blocking until the engine returns, the attempt fails, or
	// opts.Cancel fires.
	Query(shard, replica int, q *graph.Graph, opts core.QueryOptions) (*core.Result, error)
	// NumShards returns the cluster width.
	NumShards() int
	// Replicas returns how many replicas serve the given shard (>= 1).
	Replicas(shard int) int
}

// Local is the in-process Transport: every replica is a *Shard in this
// address space. It adds the serving tier's failure surface — per-replica
// kill switches for tests and operations, and the sqchaos fault points
// (fault.PointShard drop/latency/error injection) at the exact boundary
// a network transport would fail at — so the coordinator's retry, hedge
// and degradation paths are exercised without any real network.
type Local struct {
	replicas [][]*Shard    // [shard][replica]
	down     []atomic.Bool // [shard*stride + replica]
	stride   int
	attempts atomic.Uint64 // total Query attempts carried
	refused  atomic.Uint64 // attempts refused: killed replica or injected drop
}

// NewLocal wraps the replica matrix (replicas[shard][replica]; every
// shard needs >= 1 replica).
func NewLocal(replicas [][]*Shard) (*Local, error) {
	stride := 0
	for s, reps := range replicas {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", s)
		}
		if len(reps) > stride {
			stride = len(reps)
		}
	}
	return &Local{
		replicas: replicas,
		down:     make([]atomic.Bool, len(replicas)*stride),
		stride:   stride,
	}, nil
}

// NumShards implements Transport.
func (l *Local) NumShards() int { return len(l.replicas) }

// Replicas implements Transport.
func (l *Local) Replicas(shard int) int { return len(l.replicas[shard]) }

// Shard returns the given replica's *Shard (for stats and tests).
func (l *Local) Shard(shard, replica int) *Shard { return l.replicas[shard][replica] }

// Query implements Transport. The sqchaos points fire here, on the way
// in: fault.ShardDrop models a lost request (per-shard seeded, so a
// chaos run starves specific shards deterministically), fault.Inject
// models transport latency and panics, fault.Abort a refused connection.
// All of it is compiled out without the sqchaos tag.
func (l *Local) Query(shard, replica int, q *graph.Graph, opts core.QueryOptions) (*core.Result, error) {
	l.attempts.Add(1)
	if l.killed(shard, replica) {
		l.refused.Add(1)
		return nil, fmt.Errorf("%w: shard %d replica %d is down", ErrShardUnavailable, shard, replica)
	}
	if fault.ShardDrop(shard) {
		l.refused.Add(1)
		return nil, fmt.Errorf("%w: shard %d dropped the request (injected)", ErrShardUnavailable, shard)
	}
	fault.Inject(fault.PointShard)
	if fault.Abort(fault.PointShard) {
		l.refused.Add(1)
		return nil, fmt.Errorf("%w: shard %d refused (injected)", ErrShardUnavailable, shard)
	}
	return l.replicas[shard][replica].Query(q, opts), nil
}

// Kill marks one replica down: subsequent attempts fail with
// ErrShardUnavailable until Revive. In-flight queries on the replica are
// not interrupted (matching a network partition, where already-accepted
// work may still complete but its response is lost to new callers).
func (l *Local) Kill(shard, replica int) { l.down[shard*l.stride+replica].Store(true) }

// Revive brings a killed replica back.
func (l *Local) Revive(shard, replica int) { l.down[shard*l.stride+replica].Store(false) }

// KillShard downs every replica of the shard.
func (l *Local) KillShard(shard int) {
	for r := range l.replicas[shard] {
		l.Kill(shard, r)
	}
}

// ReviveShard revives every replica of the shard.
func (l *Local) ReviveShard(shard int) {
	for r := range l.replicas[shard] {
		l.Revive(shard, r)
	}
}

func (l *Local) killed(shard, replica int) bool {
	return l.down[shard*l.stride+replica].Load()
}

// Stats reports the transport's lifetime attempt counters.
func (l *Local) Stats() (attempts, refused uint64) {
	return l.attempts.Load(), l.refused.Load()
}
