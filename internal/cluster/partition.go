package cluster

import (
	"fmt"
	"sort"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/telemetry"
)

// Strategy names a partitioning strategy.
type Strategy string

// Partitioning strategies.
const (
	// StrategyHash spreads graphs by rendezvous (highest-random-weight)
	// hashing over each graph's content fingerprint. Balanced in count,
	// oblivious to graph sizes, and minimally disruptive under
	// rebalancing: growing N shards to N+1 moves only the graphs whose
	// new shard out-scores every old one — 1/(N+1) of the database in
	// expectation, never a full reshuffle as modulo hashing would.
	StrategyHash Strategy = "hash"
	// StrategySize balances the shards' byte load instead of their graph
	// count: graphs are placed largest-first on their rendezvous-preferred
	// shard, diverting to the next preference only when a shard is
	// already at its capacity cap. Databases with skewed graph sizes get
	// near-equal per-shard memory footprints; most placements still
	// follow the hash preference, so rebalancing stays bounded.
	StrategySize Strategy = "size"
)

// sizeSlack is StrategySize's capacity headroom: a shard accepts graphs
// until it holds sizeSlack × (total bytes / shards). 1.15 keeps the
// worst shard within ~15% of perfect balance while leaving the vast
// majority of graphs on their first-preference (hash-stable) shard.
const sizeSlack = 1.15

// A Partitioner assigns every graph of a database to exactly one of n
// shards. Implementations must be deterministic functions of graph
// *content* and database position — never of vertex numbering — so two
// replicas partitioning the same database independently agree, and
// reloading a database whose graphs were re-serialized (vertices
// renumbered) reproduces the same partition.
type Partitioner interface {
	// Name identifies the strategy ("hash", "size").
	Name() string
	// Partition returns one shard in [0, n) per graph id. n must be >= 1.
	Partition(db *graph.Database, n int) []int
}

// NewPartitioner returns the named strategy.
func NewPartitioner(s Strategy) (Partitioner, error) {
	switch s {
	case StrategyHash, "":
		return hashPartitioner{}, nil
	case StrategySize:
		return sizePartitioner{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown partition strategy %q (want %q or %q)",
		s, StrategyHash, StrategySize)
}

// graphKey is the per-graph hash key both strategies rendezvous on: the
// renumbering-invariant content fingerprint (telemetry.Compute) mixed
// with the graph's database position, so duplicate graphs — common in
// chemical datasets — still spread across shards instead of piling onto
// one.
func graphKey(db *graph.Database, id int) uint64 {
	return mix64(uint64(telemetry.Compute(db.Graph(id))) + uint64(id)*0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rendezvous scores (key, shard) pairs; the shard with the highest score
// wins the graph. Adding a shard can only win graphs away, never reshuffle
// losers among themselves — the classic HRW stability argument.
func rendezvous(key uint64, shard int) uint64 {
	return mix64(key ^ mix64(uint64(shard)+0x517cc1b727220a95))
}

type hashPartitioner struct{}

func (hashPartitioner) Name() string { return string(StrategyHash) }

func (hashPartitioner) Partition(db *graph.Database, n int) []int {
	part := make([]int, db.Len())
	for id := range part {
		key := graphKey(db, id)
		best, bestScore := 0, rendezvous(key, 0)
		for s := 1; s < n; s++ {
			if score := rendezvous(key, s); score > bestScore {
				best, bestScore = s, score
			}
		}
		part[id] = best
	}
	return part
}

type sizePartitioner struct{}

func (sizePartitioner) Name() string { return string(StrategySize) }

func (sizePartitioner) Partition(db *graph.Database, n int) []int {
	type item struct {
		id   int
		size int64
		key  uint64
	}
	items := make([]item, db.Len())
	var total int64
	for id := range items {
		size := db.Graph(id).MemoryFootprint()
		items[id] = item{id: id, size: size, key: graphKey(db, id)}
		total += size
	}
	// Largest first; the key breaks size ties so the order — and with it
	// the whole placement — is independent of vertex numbering.
	sort.Slice(items, func(i, j int) bool {
		if items[i].size != items[j].size {
			return items[i].size > items[j].size
		}
		return items[i].key < items[j].key
	})
	cap64 := int64(float64(total) * sizeSlack / float64(n))
	part := make([]int, db.Len())
	load := make([]int64, n)
	scores := make([]int, n)
	for _, it := range items {
		// Rank the shards by rendezvous preference for this graph.
		for s := range scores {
			scores[s] = s
		}
		sort.Slice(scores, func(i, j int) bool {
			return rendezvous(it.key, scores[i]) > rendezvous(it.key, scores[j])
		})
		placed := false
		for _, s := range scores {
			if load[s]+it.size <= cap64 {
				part[it.id] = s
				load[s] += it.size
				placed = true
				break
			}
		}
		if !placed {
			// Every shard at cap (a giant graph, or a tiny database):
			// take the lightest, keeping the overflow minimal.
			best := 0
			for s := 1; s < n; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
			part[it.id] = best
			load[best] += it.size
		}
	}
	return part
}

// groupByShard inverts a partition into per-shard ascending global-id
// lists; every shard gets an entry, possibly empty.
func groupByShard(part []int, n int) [][]int {
	groups := make([][]int, n)
	for id, s := range part {
		groups[s] = append(groups[s], id)
	}
	return groups
}
