package scratch

import (
	"math/rand"
	"testing"
)

// TestBitsEpochReset checks the core property of the epoch scheme: Reset is
// a logical full clear, even though it touches O(1) memory — bits set in an
// earlier epoch must read as zero afterwards, without any explicit Clear.
func TestBitsEpochReset(t *testing.T) {
	var b Bits
	b.Reset(256)
	for i := uint32(0); i < 256; i += 3 {
		b.Set(i)
	}
	if got := b.Count(); got != 86 {
		t.Fatalf("Count() = %d, want 86", got)
	}
	b.Reset(256)
	for i := uint32(0); i < 256; i++ {
		if b.Get(i) {
			t.Fatalf("Get(%d) true after Reset", i)
		}
	}
	if got := b.Count(); got != 0 {
		t.Fatalf("Count() = %d after Reset, want 0", got)
	}
	// Words never written in the new epoch must still read correctly after
	// a partial re-population.
	b.Set(7)
	b.Set(200)
	if !b.Get(7) || !b.Get(200) || b.Get(8) {
		t.Fatal("membership wrong after partial re-population")
	}
	if got := b.Count(); got != 2 {
		t.Fatalf("Count() = %d, want 2", got)
	}
}

// TestBitsAgainstMap cross-checks Set/Clear/Get/Count against a map across
// many resets, shrinks and grows, so stale epoch stamps from earlier rounds
// get every chance to leak through.
func TestBitsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b Bits
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(1<<12)
		b.Reset(n)
		ref := map[uint32]bool{}
		for op := 0; op < 400; op++ {
			i := uint32(rng.Intn(n))
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				ref[i] = true
			case 1:
				b.Clear(i)
				delete(ref, i)
			case 2:
				if b.Get(i) != ref[i] {
					t.Fatalf("round %d: Get(%d) = %v, want %v", round, i, b.Get(i), ref[i])
				}
			}
		}
		if b.Count() != len(ref) {
			t.Fatalf("round %d: Count() = %d, want %d", round, b.Count(), len(ref))
		}
		if b.Len() < n {
			t.Fatalf("round %d: Len() = %d < n = %d", round, b.Len(), n)
		}
	}
}

// TestBitsReservedVsLive: after shrinking, live bytes track the current
// length while reserved bytes keep reporting the pinned capacity.
func TestBitsReservedVsLive(t *testing.T) {
	var b Bits
	b.Reset(1 << 12)
	bigLive, bigReserved := b.LiveBytes(), b.ReservedBytes()
	if bigLive != bigReserved {
		t.Fatalf("fresh bitset: live %d != reserved %d", bigLive, bigReserved)
	}
	b.Reset(64)
	if b.LiveBytes() >= bigLive {
		t.Fatalf("live bytes %d did not shrink from %d", b.LiveBytes(), bigLive)
	}
	if b.ReservedBytes() != bigReserved {
		t.Fatalf("reserved bytes %d changed from %d after shrink", b.ReservedBytes(), bigReserved)
	}
}

// TestBitsResetAllocs: once grown, Reset and Set must not allocate.
func TestBitsResetAllocs(t *testing.T) {
	var b Bits
	b.Reset(1 << 10)
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset(1 << 10)
		b.Set(511)
	})
	if allocs != 0 {
		t.Fatalf("Reset+Set allocated %v times per run, want 0", allocs)
	}
}

// TestGrow checks capacity reuse and power-of-two growth.
func TestGrow(t *testing.T) {
	buf := Grow[int](nil, 5)
	if len(buf) != 5 {
		t.Fatalf("len = %d, want 5", len(buf))
	}
	if cap(buf) != 8 {
		t.Fatalf("cap = %d, want 8 (next power of two)", cap(buf))
	}
	prev := &buf[0]
	buf = Grow(buf, 3)
	if len(buf) != 3 || &buf[0] != prev {
		t.Fatal("shrink reallocated or resized wrongly")
	}
	buf = Grow(buf, 8)
	if len(buf) != 8 || &buf[0] != prev {
		t.Fatal("growth within capacity reallocated")
	}
	buf = Grow(buf, 9)
	if len(buf) != 9 || cap(buf) != 16 {
		t.Fatalf("len,cap = %d,%d after growth, want 9,16", len(buf), cap(buf))
	}
}

// TestRowsTake: rows come back truncated but keep their capacity, and the
// row count can shrink and regrow without losing earlier rows' backing.
func TestRowsTake(t *testing.T) {
	var r Rows[int]
	rows := r.Take(4)
	if len(rows) != 4 {
		t.Fatalf("Take(4) returned %d rows", len(rows))
	}
	rows[2] = append(rows[2], 1, 2, 3)
	// Write-back is required for grown rows to retain capacity (Take hands
	// out the shared storage, so mutating the header needs the store).
	r.rows[2] = rows[2]

	rows = r.Take(2) // shrink
	if len(rows) != 2 {
		t.Fatalf("Take(2) returned %d rows", len(rows))
	}
	rows = r.Take(4) // regrow: row 2's capacity must survive
	if len(rows[2]) != 0 {
		t.Fatalf("row 2 not truncated: len %d", len(rows[2]))
	}
	if cap(rows[2]) < 3 {
		t.Fatalf("row 2 lost its capacity: cap %d", cap(rows[2]))
	}
	if got := r.ReservedBytes(8); got < 3*8 {
		t.Fatalf("ReservedBytes(8) = %d, want >= 24", got)
	}

	allocs := testing.AllocsPerRun(100, func() {
		r.Take(4)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Take allocated %v times per run, want 0", allocs)
	}
}

// TestBitsBulkOpsAgainstMap cross-checks the bulk word kernels (And,
// AndNot, Or, CopyFrom, IterateSet, MaxSet) against map-based set algebra,
// across resets of differing sizes so stale epoch words and length
// mismatches are both exercised. The reference sets are rebuilt fresh per
// round; the bitsets carry state across rounds, which is exactly where an
// epoch bug would leak.
func TestBitsBulkOpsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, c Bits
	for round := 0; round < 60; round++ {
		na := 1 + rng.Intn(1<<11)
		nb := 1 + rng.Intn(1<<11)
		a.Reset(na)
		b.Reset(nb)
		refA := map[uint32]bool{}
		refB := map[uint32]bool{}
		for op := 0; op < 300; op++ {
			if i := uint32(rng.Intn(na)); rng.Intn(2) == 0 {
				a.Set(i)
				refA[i] = true
			}
			if i := uint32(rng.Intn(nb)); rng.Intn(2) == 0 {
				b.Set(i)
				refB[i] = true
			}
		}
		check := func(op string, got *Bits, want map[uint32]bool) {
			t.Helper()
			if got.Count() != len(want) {
				t.Fatalf("round %d %s: Count() = %d, want %d", round, op, got.Count(), len(want))
			}
			for i := range want {
				if !got.Get(i) {
					t.Fatalf("round %d %s: missing slot %d", round, op, i)
				}
			}
		}
		switch round % 4 {
		case 0: // And
			a.And(&b)
			want := map[uint32]bool{}
			for i := range refA {
				if refB[i] {
					want[i] = true
				}
			}
			check("And", &a, want)
		case 1: // AndNot
			a.AndNot(&b)
			want := map[uint32]bool{}
			for i := range refA {
				if !refB[i] {
					want[i] = true
				}
			}
			check("AndNot", &a, want)
		case 2: // Or (b's slots beyond a's word range are dropped)
			a.Or(&b)
			want := map[uint32]bool{}
			for i := range refA {
				want[i] = true
			}
			for i := range refB {
				if int(i) < a.Len() {
					want[i] = true
				}
			}
			check("Or", &a, want)
		case 3: // CopyFrom round-trips content and length
			c.CopyFrom(&b)
			check("CopyFrom", &c, refB)
			if c.Len() != b.Len() {
				t.Fatalf("round %d CopyFrom: Len() = %d, want %d", round, c.Len(), b.Len())
			}
		}
		// IterateSet must visit exactly b's members, strictly ascending.
		prev := -1
		seen := 0
		b.IterateSet(func(i uint32) bool {
			if int(i) <= prev {
				t.Fatalf("round %d IterateSet: %d after %d, not ascending", round, i, prev)
			}
			if !refB[i] {
				t.Fatalf("round %d IterateSet: visited non-member %d", round, i)
			}
			prev = int(i)
			seen++
			return true
		})
		if seen != len(refB) {
			t.Fatalf("round %d IterateSet: visited %d slots, want %d", round, seen, len(refB))
		}
		// MaxSet agrees with the reference maximum.
		wantMax, wantOK := -1, len(refB) > 0
		for i := range refB {
			if int(i) > wantMax {
				wantMax = int(i)
			}
		}
		gotMax, ok := b.MaxSet()
		if ok != wantOK || (ok && int(gotMax) != wantMax) {
			t.Fatalf("round %d MaxSet: (%d,%v), want (%d,%v)", round, gotMax, ok, wantMax, wantOK)
		}
	}
}

// TestBitsIterateSetEarlyStop: returning false stops the visit immediately.
func TestBitsIterateSetEarlyStop(t *testing.T) {
	var b Bits
	b.Reset(512)
	for i := uint32(0); i < 512; i += 5 {
		b.Set(i)
	}
	visits := 0
	b.IterateSet(func(i uint32) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("IterateSet visited %d slots after early stop, want 3", visits)
	}
}

// TestBitsBulkOpsAllocs: the kernels must be allocation-free in steady
// state — they run once per query vertex per refinement round.
func TestBitsBulkOpsAllocs(t *testing.T) {
	var a, b, c Bits
	a.Reset(1 << 12)
	b.Reset(1 << 12)
	for i := uint32(0); i < 1<<12; i += 3 {
		a.Set(i)
	}
	for i := uint32(0); i < 1<<12; i += 7 {
		b.Set(i)
	}
	c.CopyFrom(&a) // pre-grow c
	allocs := testing.AllocsPerRun(100, func() {
		c.CopyFrom(&a)
		c.And(&b)
		c.AndNot(&b)
		c.Or(&b)
		c.IterateSet(func(uint32) bool { return true })
		c.MaxSet()
	})
	if allocs != 0 {
		t.Fatalf("bulk ops allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkScratchBitsReset: the O(1)-clear claim, measured. An epoch bump
// must cost nanoseconds regardless of the bitset's size, where an explicit
// zeroing pass would be O(size/64) writes.
func BenchmarkScratchBitsReset(bm *testing.B) {
	var b Bits
	b.Reset(1 << 20)
	for i := uint32(0); i < 1<<20; i += 64 {
		b.Set(i)
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		b.Reset(1 << 20)
		b.Set(uint32(i) & (1<<20 - 1))
	}
}

// benchBitsPair builds two bitsets over n slots at the given fill stride.
func benchBitsPair(n int) (a, b Bits) {
	a.Reset(n)
	b.Reset(n)
	for i := uint32(0); i < uint32(n); i += 3 {
		a.Set(i)
	}
	for i := uint32(0); i < uint32(n); i += 5 {
		b.Set(i)
	}
	return a, b
}

// BenchmarkScratchBitsAnd: the word-wide intersect kernel — 64 data
// vertices per &, the workhorse of bit-matrix domain refinement.
func BenchmarkScratchBitsAnd(bm *testing.B) {
	a, b := benchBitsPair(1 << 16)
	var dst Bits
	dst.CopyFrom(&a)
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		dst.CopyFrom(&a)
		dst.And(&b)
	}
}

// BenchmarkScratchBitsPopcount: Count over a 64Ki-slot set — the density
// probe the representation switch relies on.
func BenchmarkScratchBitsPopcount(bm *testing.B) {
	a, _ := benchBitsPair(1 << 16)
	bm.ReportAllocs()
	bm.ResetTimer()
	var sink int
	for i := 0; i < bm.N; i++ {
		sink += a.Count()
	}
	_ = sink
}

// BenchmarkScratchBitsIterateSet: extraction of a refined row back into
// ascending candidate order.
func BenchmarkScratchBitsIterateSet(bm *testing.B) {
	a, _ := benchBitsPair(1 << 16)
	bm.ReportAllocs()
	bm.ResetTimer()
	var sink uint32
	for i := 0; i < bm.N; i++ {
		a.IterateSet(func(v uint32) bool {
			sink += v
			return true
		})
	}
	_ = sink
}
