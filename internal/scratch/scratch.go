// Package scratch provides reusable, grow-only scratch memory for the
// query hot paths: epoch-stamped bitsets whose clear is O(1), grow-only
// buffers that retain capacity across uses, and reusable row storage for
// per-position adjacency lists.
//
// The paper's Algorithm 2 runs its loop body once per data graph per
// query; naive implementations re-allocate candidate structures and
// filter scratch on every iteration, which makes the allocator — not the
// matching algorithm — the dominant constant factor (see DESIGN.md,
// "Scratch arenas"). The types here let one worker reuse a single
// allocation footprint, sized by the largest graph it has seen, across an
// entire query (and across queries, via pooling in internal/matching).
//
// None of the types are safe for concurrent use: a scratch value belongs
// to exactly one worker at a time.
package scratch

import "math/bits"

// Bits is an epoch-stamped bitset over a dense integer universe [0, n).
// Clearing is O(1): Reset bumps the epoch, and every word carries the
// epoch at which it was last written, so words from earlier epochs read
// as zero. This is what makes a per-worker candidate structure reusable
// across data graphs without an O(|V(G)|) memset per graph.
type Bits struct {
	words []uint64 // bit words, valid only where epoch[w] == cur
	epoch []uint32 // epoch at which words[w] was last written
	cur   uint32   // current epoch; always >= 1
}

// Reset clears the set and sizes it for n slots, reusing capacity. The
// clear is O(1) except after capacity growth or epoch wrap-around.
func (b *Bits) Reset(n int) {
	nw := (n + 63) / 64
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
		b.epoch = make([]uint32, nw)
		b.cur = 1
		return
	}
	b.words = b.words[:nw]
	b.epoch = b.epoch[:nw]
	if b.cur == ^uint32(0) {
		// Epoch wrap (once per 2^32 resets): stale stamps could collide
		// with the restarted counter, so pay one full clear.
		clear(b.epoch[:cap(b.epoch)])
		b.cur = 1
		return
	}
	b.cur++
}

// Set adds slot i.
func (b *Bits) Set(i uint32) {
	w := i >> 6
	if b.epoch[w] != b.cur {
		b.words[w] = 0
		b.epoch[w] = b.cur
	}
	b.words[w] |= 1 << (i & 63)
}

// Get reports whether slot i is in the set.
func (b *Bits) Get(i uint32) bool {
	w := i >> 6
	return b.epoch[w] == b.cur && b.words[w]&(1<<(i&63)) != 0
}

// Clear removes slot i.
func (b *Bits) Clear(i uint32) {
	w := i >> 6
	if b.epoch[w] == b.cur {
		b.words[w] &^= 1 << (i & 63)
	}
}

// Len returns the number of slots the set currently addresses (rounded up
// to whole words).
func (b *Bits) Len() int { return len(b.words) * 64 }

// Count returns the number of set slots (population count over the words
// written in the current epoch).
func (b *Bits) Count() int {
	n := 0
	for w, word := range b.words {
		if b.epoch[w] == b.cur {
			n += bits.OnesCount64(word)
		}
	}
	return n
}

// The bulk word operations below are the refine/intersect kernels of the
// bit-matrix compatibility domains (internal/domain): one 64-bit word of
// work covers 64 data vertices, which is what makes the dense candidate
// representation beat sorted-slice merging once sets get large. All of
// them honor the epoch scheme — a word whose stamp is stale reads as zero,
// exactly as Get would report it.

// And intersects b with other in place (b ∩= other). Slots beyond other's
// length are treated as absent from other, so they are cleared from b.
func (b *Bits) And(other *Bits) {
	for w := range b.words {
		if b.epoch[w] != b.cur {
			continue // stale: already logically zero
		}
		var ow uint64
		if w < len(other.words) && other.epoch[w] == other.cur {
			ow = other.words[w]
		}
		b.words[w] &= ow
	}
}

// AndNot subtracts other from b in place (b = b \ other).
func (b *Bits) AndNot(other *Bits) {
	n := min(len(b.words), len(other.words))
	for w := 0; w < n; w++ {
		if b.epoch[w] != b.cur || other.epoch[w] != other.cur {
			continue
		}
		b.words[w] &^= other.words[w]
	}
}

// Or unions other into b in place (b ∪= other). Slots of other beyond b's
// length are dropped: callers size b for the shared universe first.
func (b *Bits) Or(other *Bits) {
	n := min(len(b.words), len(other.words))
	for w := 0; w < n; w++ {
		if other.epoch[w] != other.cur || other.words[w] == 0 {
			continue
		}
		if b.epoch[w] != b.cur {
			b.words[w] = 0
			b.epoch[w] = b.cur
		}
		b.words[w] |= other.words[w]
	}
}

// CopyFrom makes b a copy of other's set content, reshaped to other's
// length. The copy touches only other's live words; the rest of b clears
// by epoch.
func (b *Bits) CopyFrom(other *Bits) {
	b.Reset(other.Len())
	for w := range other.words {
		if other.epoch[w] == other.cur && other.words[w] != 0 {
			b.words[w] = other.words[w]
			b.epoch[w] = b.cur
		}
	}
}

// IterateSet visits every set slot in ascending order, stopping early when
// fn returns false. This is the extraction kernel that reads a refined
// domain row back out as a sorted candidate list — ascending by
// construction, so no sort is needed afterwards.
func (b *Bits) IterateSet(fn func(i uint32) bool) {
	for w, word := range b.words {
		if b.epoch[w] != b.cur || word == 0 {
			continue
		}
		base := uint32(w) << 6
		for word != 0 {
			if !fn(base + uint32(bits.TrailingZeros64(word))) {
				return
			}
			word &= word - 1 // clear lowest set bit
		}
	}
}

// MaxSet returns the highest set slot, or false when the set is empty —
// the "most recent conflicting position" lookup of jump-redo backtracking.
func (b *Bits) MaxSet() (uint32, bool) {
	for w := len(b.words) - 1; w >= 0; w-- {
		if b.epoch[w] == b.cur && b.words[w] != 0 {
			return uint32(w)<<6 + uint32(63-bits.LeadingZeros64(b.words[w])), true
		}
	}
	return 0, false
}

// LiveBytes returns the bytes addressed by the current length: the
// honest live cost of one bitset (words plus their epoch stamps).
func (b *Bits) LiveBytes() int64 { return int64(len(b.words))*8 + int64(len(b.epoch))*4 }

// ReservedBytes returns the bytes held by the backing arrays regardless
// of current length — what the arena actually pins in memory.
func (b *Bits) ReservedBytes() int64 { return int64(cap(b.words))*8 + int64(cap(b.epoch))*4 }

// Grow returns buf with length n, reusing capacity when possible. The
// contents of the returned slice are unspecified: callers that need zeroed
// memory must clear it (or, like the epoch-based CFL scratch, tolerate
// stale values by construction).
func Grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	// Round up to the next power of two so repeated growth over a graph
	// database amortizes to O(1) allocations per worker.
	c := 1
	for c < n {
		c <<= 1
	}
	return make([]T, n, c)
}

// Rows is reusable storage for a slice of rows, each of which retains its
// capacity across uses — the backing store for per-position adjacency
// lists (backward neighbors, bipartite rows) that would otherwise be
// re-allocated per candidate.
type Rows[T any] struct {
	rows [][]T
}

// Take returns n rows, each of length zero with retained capacity. The
// returned slice shares storage with the Rows value: appends through the
// returned rows grow the retained capacities.
func (r *Rows[T]) Take(n int) [][]T {
	if cap(r.rows) < n {
		grown := make([][]T, n)
		copy(grown, r.rows[:cap(r.rows)])
		r.rows = grown
	} else {
		r.rows = r.rows[:n]
	}
	for i := range r.rows {
		r.rows[i] = r.rows[i][:0]
	}
	return r.rows
}

// ReservedBytes returns the bytes pinned by the row capacities, given the
// byte size of one element.
func (r *Rows[T]) ReservedBytes(elemBytes int64) int64 {
	rows := r.rows[:cap(r.rows)]
	var b int64
	for _, row := range rows {
		b += int64(cap(row)) * elemBytes
	}
	return b
}
