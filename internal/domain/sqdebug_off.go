//go:build !sqdebug

package domain

// debugInvariants is false in normal builds: the invariant checks in
// invariants.go compile away entirely behind the constant-false branch.
const debugInvariants = false
