//go:build sqdebug

package domain

import (
	"strings"
	"testing"
)

// Corruption tests for the sqdebug invariant assertions: each test breaks
// one structural property of a Matrix and checks the matching panic fires.

func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func debugMatrix() *Matrix {
	var m Matrix
	m.Reset(2, 200)
	m.Add(0, 3)
	m.Add(0, 64)
	m.Add(1, 7)
	return &m
}

func TestDebugChecksAcceptConsistentMatrix(t *testing.T) {
	m := debugMatrix()
	m.DebugCheckShape("test", 2, 200)
	m.DebugCheckCounts("test")
	m.DebugCheckMembers("test", 0, func(v uint32) bool { return v == 3 || v == 64 })
}

func TestDebugCheckShapeWrongRows(t *testing.T) {
	m := debugMatrix()
	mustPanicWith(t, "rows", func() { m.DebugCheckShape("test", 3, 200) })
}

func TestDebugCheckShapeWrongUniverse(t *testing.T) {
	m := debugMatrix()
	mustPanicWith(t, "universe", func() { m.DebugCheckShape("test", 2, 500) })
}

func TestDebugCheckCountsStaleAfterBulkRefine(t *testing.T) {
	m := debugMatrix()
	// Bulk-refine row 0 without RecountRow: the maintained cardinality is
	// now stale, which is exactly what the check exists to catch.
	var empty Matrix
	empty.Reset(1, 200)
	m.Row(0).And(empty.Row(0))
	mustPanicWith(t, "maintains count", func() { m.DebugCheckCounts("test") })
}

func TestDebugCheckMembersIncompatible(t *testing.T) {
	m := debugMatrix()
	mustPanicWith(t, "incompatible vertex", func() {
		m.DebugCheckMembers("test", 0, func(v uint32) bool { return v == 3 })
	})
}
