// Package domain provides the packed bit-matrix representation of
// compatibility domains: one epoch-stamped bit row per query vertex over
// the data-vertex universe, with maintained cardinalities.
//
// The candidate structure Φ of Definition III.1 is logically a
// |V(q)| × |V(G)| boolean matrix. Representing each row as machine words
// turns the two inner loops that dominate subgraph matching — filter
// refinement (intersect a row with a neighborhood) and enumeration
// intersection (intersect a candidate set with a matched vertex's
// adjacency) — into word-wide kernels: one AND covers 64 data vertices.
// Sorted candidate slices stay the better representation when domains are
// sparse, so the matching layer keeps both and switches per operation (see
// UseProbe / UseBitsGenerate, whose thresholds come from the crossover
// benchmarks in this package, not guesses).
//
// A Matrix is arena-style scratch like the rest of the hot path: Reset
// re-shapes it between data graphs by epoch bump, with no per-graph
// allocation or O(|V(G)|) clear in steady state. Not safe for concurrent
// use.
package domain

import "subgraphquery/internal/scratch"

// Matrix is a bit-matrix of compatibility domains: Row(u) holds the set
// of data vertices v with bit v set iff v ∈ Φ(u). Cardinalities are
// maintained incrementally by Add/Remove; callers that refine a row
// through bulk word operations must resync with RecountRow (the sqdebug
// build asserts the consistency).
type Matrix struct {
	rows   []scratch.Bits
	counts []int32
	nData  int
}

// Reset shapes the matrix for numQuery rows over a numData-vertex
// universe, clearing every row. Steady-state cost is O(numQuery) epoch
// bumps; backing storage is retained across calls.
func (m *Matrix) Reset(numQuery, numData int) {
	m.nData = numData
	if cap(m.rows) < numQuery {
		grownRows := make([]scratch.Bits, numQuery)
		copy(grownRows, m.rows[:cap(m.rows)])
		m.rows = grownRows
	} else {
		m.rows = m.rows[:numQuery]
	}
	m.counts = scratch.Grow(m.counts, numQuery)
	for u := range m.rows {
		m.rows[u].Reset(numData)
		m.counts[u] = 0
	}
}

// NumRows returns the number of query-vertex rows.
func (m *Matrix) NumRows() int { return len(m.rows) }

// NData returns the size of the data-vertex universe.
func (m *Matrix) NData() int { return m.nData }

// Add sets bit v in row u and reports whether it was newly set.
func (m *Matrix) Add(u int, v uint32) bool {
	if m.rows[u].Get(v) {
		return false
	}
	m.rows[u].Set(v)
	m.counts[u]++
	return true
}

// Remove clears bit v in row u and reports whether it was set.
func (m *Matrix) Remove(u int, v uint32) bool {
	if !m.rows[u].Get(v) {
		return false
	}
	m.rows[u].Clear(v)
	m.counts[u]--
	return true
}

// Contains reports whether v ∈ Φ(u).
func (m *Matrix) Contains(u int, v uint32) bool { return m.rows[u].Get(v) }

// Count returns |Φ(u)| without touching the row words.
func (m *Matrix) Count(u int) int { return int(m.counts[u]) }

// Row returns row u for bulk word operations (And/AndNot/IterateSet/...).
// After mutating a row in bulk, call RecountRow(u) to resync the
// maintained cardinality.
func (m *Matrix) Row(u int) *scratch.Bits { return &m.rows[u] }

// RecountRow repopulates the maintained cardinality of row u from its
// words and returns it. Required after bulk mutation through Row.
func (m *Matrix) RecountRow(u int) int {
	n := m.rows[u].Count()
	m.counts[u] = int32(n)
	return n
}

// Density returns |Φ(u)| / |V(G)|, the row's fill fraction — the quantity
// the representation switch and the explain output report.
func (m *Matrix) Density(u int) float64 {
	if m.nData == 0 {
		return 0
	}
	return float64(m.counts[u]) / float64(m.nData)
}

// AnyEmpty reports whether some row is empty (the filtering condition of
// Proposition III.1).
func (m *Matrix) AnyEmpty() bool {
	for u := range m.counts {
		if m.counts[u] == 0 {
			return true
		}
	}
	return false
}

// LiveBytes returns the bytes the matrix logically holds for the current
// shape: row words and epoch stamps plus the cardinality array.
func (m *Matrix) LiveBytes() int64 {
	var b int64
	for u := range m.rows {
		b += m.rows[u].LiveBytes()
	}
	return b + int64(len(m.counts))*4
}

// ReservedBytes returns the bytes pinned by the backing arrays regardless
// of the current shape — the arena's resident cost. Always ≥ LiveBytes.
func (m *Matrix) ReservedBytes() int64 {
	var b int64
	rows := m.rows[:cap(m.rows)]
	for u := range rows {
		b += rows[u].ReservedBytes()
	}
	return b + int64(cap(m.counts))*4
}
