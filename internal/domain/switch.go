package domain

// Representation-switch heuristics. Both representations of a domain row
// are maintained by the matching layer — the sorted candidate slice and
// the bit row — and each word-level operation picks the cheaper side:
//
//   - Enumeration intersection: merging two sorted lists costs
//     O(|Φ(u)| + |nbrs|) (with galloping when the sizes are lopsided,
//     O(min·log max)); probing the bit row costs one O(1) test per
//     neighbor, O(|nbrs|), independent of |Φ(u)|. Probing therefore wins
//     except when the candidate set is far smaller than the neighbor
//     list, where galloping skips most of nbrs.
//
//   - Top-down candidate generation (CFL): the chain path touches one
//     hash/epoch slot per (neighbor-candidate, adjacency) pair; the bits
//     path pays a fixed O(|V(G)|/64) words per AND regardless of how few
//     bits are set. Bits win once the candidate rows hold at least on the
//     order of one set bit per word.
//
// The constants below are calibrated by the crossover benchmarks in
// switch_bench_test.go (BenchmarkIntersectProbeVsMerge,
// BenchmarkGenerateBitsVsChain) — run them on the target hardware before
// adjusting.

// probeMinRatioNum/Den: probe when |Φ(u)|·Num ≥ |nbrs|·Den, i.e. the
// candidate set is at least 1/8 of the neighbor list. Below that, the
// galloping merge's O(|Φ|·log|nbrs|) beats the probe's O(|nbrs|).
// Measured (BenchmarkIntersectProbeVsMerge, |nbrs|=256, universe 64Ki):
// merge wins at |Φ|=16 (250ns vs 445ns), probe wins at |Φ|=64 (414ns vs
// 716ns) and by 6.5× at |Φ|=4096 — crossover near |Φ|/|nbrs| = 1/8.
const (
	probeMinRatioNum = 8
	probeMinRatioDen = 1
)

// bitsGenerateNumPerWord: use the bit-matrix generation path when the
// scatter volume amounts to at least one set bit per eight words of the
// universe (density ≥ 1/512). Sparser than that, the fixed O(words) AND
// and extraction cost dominates and the epoch-chain scatter path is
// cheaper. Measured (BenchmarkGenerateBitsVsChain, universe 64Ki = 1024
// words): chain wins at 64 scattered bits (2.2µs vs 4.1µs), bits win at
// 256 (5.1µs vs 9.6µs) and by 58× at 16384 — crossover near words/8 =
// 128 bits.
const bitsGenerateNumPerWord = 8

// UseProbe reports whether the enumeration intersection of a candidate
// set of size candCount with nbrCount label-restricted neighbors should
// probe the domain bit row per neighbor instead of merging sorted slices.
func UseProbe(candCount, nbrCount int) bool {
	return candCount*probeMinRatioNum >= nbrCount*probeMinRatioDen
}

// UseBitsGenerate reports whether top-down candidate generation for a
// query vertex should run on bit rows rather than the epoch-chain
// scatter path, given a universe of nData data vertices. scatterVol is
// the caller's estimate of how many bits the generation will scatter —
// the processed neighbors' total candidate count is the cheap lower
// bound the CFL filter uses. Keying the switch on the global label
// frequency instead is wrong on large graphs: a huge universe makes the
// fixed O(words) AND/extract scans expensive precisely when tiny
// candidate sets make the chain path nearly free.
func UseBitsGenerate(scatterVol, nData int) bool {
	words := (nData + 63) / 64
	return scatterVol*bitsGenerateNumPerWord >= words
}
