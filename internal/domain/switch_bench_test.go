package domain

import (
	"fmt"
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

// Crossover benchmarks calibrating the representation-switch constants in
// switch.go. Each benchmark pits the two implementations of one hot-path
// operation against each other across the size/density regimes the switch
// distinguishes; the constants are set where the curves cross.

// benchSets builds a sorted candidate set of candCount vertices, a sorted
// neighbor list of nbrCount vertices (both drawn from [0, universe)), and
// the matching domain row.
func benchSets(universe, candCount, nbrCount int) (cand, nbrs []graph.VertexID, m *Matrix) {
	rng := rand.New(rand.NewSource(int64(universe + candCount + nbrCount)))
	pick := func(n int) []graph.VertexID {
		seen := map[int]bool{}
		out := make([]graph.VertexID, 0, n)
		for len(out) < n {
			v := rng.Intn(universe)
			if !seen[v] {
				seen[v] = true
				out = append(out, graph.VertexID(v))
			}
		}
		// Insertion sort is fine at benchmark-setup time.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j-1] > out[j]; j-- {
				out[j-1], out[j] = out[j], out[j-1]
			}
		}
		return out
	}
	cand = pick(candCount)
	nbrs = pick(nbrCount)
	m = &Matrix{}
	m.Reset(1, universe)
	for _, v := range cand {
		m.Add(0, uint32(v))
	}
	return cand, nbrs, m
}

// BenchmarkIntersectProbeVsMerge: enumeration intersection — probing the
// domain row per neighbor vs merging the sorted slices — across candidate
// set : neighbor list ratios. UseProbe's threshold sits at the crossover.
func BenchmarkIntersectProbeVsMerge(b *testing.B) {
	const universe = 1 << 16
	const nbrCount = 256
	for _, candCount := range []int{4, 16, 64, 256, 1024, 4096} {
		cand, nbrs, m := benchSets(universe, candCount, nbrCount)
		row := m.Row(0)
		out := make([]graph.VertexID, 0, nbrCount)
		b.Run(fmt.Sprintf("probe/cand=%d,nbrs=%d", candCount, nbrCount), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out = out[:0]
				for _, v := range nbrs {
					if row.Get(uint32(v)) {
						out = append(out, v)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("merge/cand=%d,nbrs=%d", candCount, nbrCount), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out = graph.IntersectSorted(out[:0], cand, nbrs)
			}
		})
	}
}

// BenchmarkGenerateBitsVsChain: top-down candidate generation — AND of
// two bit rows plus sorted extraction vs a scatter-and-collect pass over
// slice entries — across row densities. UseBitsGenerate's threshold sits
// at the crossover.
func BenchmarkGenerateBitsVsChain(b *testing.B) {
	const universe = 1 << 16
	for _, candCount := range []int{64, 256, 1024, 4096, 16384} {
		cand, other, m := benchSets(universe, candCount, candCount)
		var acc Matrix
		acc.Reset(1, universe)
		var om Matrix
		om.Reset(1, universe)
		for _, v := range other {
			om.Add(0, uint32(v))
		}
		out := make([]graph.VertexID, 0, candCount)
		mark := make(map[graph.VertexID]bool, candCount)
		b.Run(fmt.Sprintf("bits/cand=%d", candCount), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc.Row(0).CopyFrom(m.Row(0))
				acc.Row(0).And(om.Row(0))
				out = out[:0]
				acc.Row(0).IterateSet(func(v uint32) bool {
					out = append(out, graph.VertexID(v))
					return true
				})
			}
		})
		b.Run(fmt.Sprintf("chain/cand=%d", candCount), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clear(mark)
				for _, v := range other {
					mark[v] = true
				}
				out = out[:0]
				for _, v := range cand {
					if mark[v] {
						out = append(out, v)
					}
				}
			}
		})
	}
}
