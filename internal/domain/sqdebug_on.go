//go:build sqdebug

package domain

// debugInvariants enables the runtime invariant assertions of this package
// (see invariants.go). Build with -tags sqdebug to turn them on; the
// normal build compiles every check away behind the constant-false branch.
const debugInvariants = true
