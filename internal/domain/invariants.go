package domain

import "fmt"

// Runtime invariant assertions for the bit-matrix domains, active only
// under the sqdebug build tag (see sqdebug_on.go):
//
//   - shape validity: every row addresses the full data-vertex universe
//     (an undersized row would silently drop high-id candidates);
//   - popcount consistency: the maintained cardinality of each row equals
//     its population count — the contract RecountRow restores after bulk
//     refinement, and which Density, UseProbe and the empty-row filtering
//     condition all read;
//   - domain soundness: every member passes the caller's compatibility
//     predicate (in the filters: label equality), so a refinement kernel
//     that leaks incompatible vertices fails loudly instead of producing
//     spurious embeddings downstream.
//
// Violations panic: a domain matrix that lies about its cardinalities or
// members corrupts both the representation switch and the filtering
// condition, which are wrong-answer bugs, not recoverable conditions.

func debugFailf(format string, args ...any) {
	panic("domain: invariant violation: " + fmt.Sprintf(format, args...))
}

// DebugCheckShape panics unless the matrix is shaped for numQuery rows
// over a numData universe. No-op in normal builds.
func (m *Matrix) DebugCheckShape(stage string, numQuery, numData int) {
	if !debugInvariants {
		return
	}
	if len(m.rows) != numQuery || len(m.counts) != numQuery {
		debugFailf("%s: matrix shaped for %d/%d rows, want %d", stage, len(m.rows), len(m.counts), numQuery)
	}
	if m.nData != numData {
		debugFailf("%s: matrix universe %d, want %d", stage, m.nData, numData)
	}
	for u := range m.rows {
		if m.rows[u].Len() < numData {
			debugFailf("%s: row %d addresses %d slots, universe is %d", stage, u, m.rows[u].Len(), numData)
		}
	}
}

// DebugCheckCounts panics unless every maintained cardinality equals the
// row's population count. Call after bulk refinement (post-RecountRow).
// No-op in normal builds.
func (m *Matrix) DebugCheckCounts(stage string) {
	if !debugInvariants {
		return
	}
	for u := range m.rows {
		if pop := m.rows[u].Count(); pop != int(m.counts[u]) {
			debugFailf("%s: row %d maintains count %d but holds %d bits", stage, u, m.counts[u], pop)
		}
	}
}

// DebugCheckMembers panics unless every member of row u satisfies ok —
// the domain ⊆ compatible-set invariant. No-op in normal builds.
func (m *Matrix) DebugCheckMembers(stage string, u int, ok func(v uint32) bool) {
	if !debugInvariants {
		return
	}
	m.rows[u].IterateSet(func(v uint32) bool {
		if !ok(v) {
			debugFailf("%s: row %d contains incompatible vertex %d", stage, u, v)
		}
		return true
	})
}
