package domain

import (
	"math/rand"
	"testing"
)

// TestMatrixAgainstMap cross-checks Add/Remove/Contains/Count and the
// maintained cardinalities against map-based reference sets, across
// resets of differing shapes so epoch reuse is exercised.
func TestMatrixAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var m Matrix
	for round := 0; round < 40; round++ {
		nq := 1 + rng.Intn(8)
		nd := 1 + rng.Intn(1<<11)
		m.Reset(nq, nd)
		if m.NumRows() != nq || m.NData() != nd {
			t.Fatalf("round %d: shape (%d,%d), want (%d,%d)", round, m.NumRows(), m.NData(), nq, nd)
		}
		ref := make([]map[uint32]bool, nq)
		for u := range ref {
			ref[u] = map[uint32]bool{}
		}
		for op := 0; op < 500; op++ {
			u := rng.Intn(nq)
			v := uint32(rng.Intn(nd))
			switch rng.Intn(3) {
			case 0:
				if got, want := m.Add(u, v), !ref[u][v]; got != want {
					t.Fatalf("round %d: Add(%d,%d) = %v, want %v", round, u, v, got, want)
				}
				ref[u][v] = true
			case 1:
				if got, want := m.Remove(u, v), ref[u][v]; got != want {
					t.Fatalf("round %d: Remove(%d,%d) = %v, want %v", round, u, v, got, want)
				}
				delete(ref[u], v)
			case 2:
				if m.Contains(u, v) != ref[u][v] {
					t.Fatalf("round %d: Contains(%d,%d) = %v, want %v", round, u, v, m.Contains(u, v), ref[u][v])
				}
			}
		}
		anyEmpty := false
		for u := range ref {
			if m.Count(u) != len(ref[u]) {
				t.Fatalf("round %d: Count(%d) = %d, want %d", round, u, m.Count(u), len(ref[u]))
			}
			if got := m.RecountRow(u); got != len(ref[u]) {
				t.Fatalf("round %d: RecountRow(%d) = %d, want %d", round, u, got, len(ref[u]))
			}
			wantD := float64(len(ref[u])) / float64(nd)
			if m.Density(u) != wantD {
				t.Fatalf("round %d: Density(%d) = %v, want %v", round, u, m.Density(u), wantD)
			}
			if len(ref[u]) == 0 {
				anyEmpty = true
			}
		}
		if m.AnyEmpty() != anyEmpty {
			t.Fatalf("round %d: AnyEmpty() = %v, want %v", round, m.AnyEmpty(), anyEmpty)
		}
	}
}

// TestMatrixRowBulkRefine: refining a row through bulk word operations on
// Row(u) plus RecountRow keeps the matrix consistent — the exact protocol
// the filter stages use.
func TestMatrixRowBulkRefine(t *testing.T) {
	var m Matrix
	m.Reset(2, 300)
	for v := uint32(0); v < 300; v += 2 {
		m.Add(0, v)
	}
	for v := uint32(0); v < 300; v += 3 {
		m.Add(1, v)
	}
	m.Row(0).And(m.Row(1)) // keep multiples of 6
	if got := m.RecountRow(0); got != 50 {
		t.Fatalf("RecountRow(0) = %d, want 50", got)
	}
	if m.Count(0) != 50 || !m.Contains(0, 6) || m.Contains(0, 2) {
		t.Fatal("row 0 inconsistent after bulk refine")
	}
}

// TestMatrixResetAllocs: once grown, per-data-graph Reset plus the
// domain hot-path operations must not allocate.
func TestMatrixResetAllocs(t *testing.T) {
	var m Matrix
	m.Reset(8, 1<<12)
	allocs := testing.AllocsPerRun(100, func() {
		m.Reset(8, 1<<12)
		m.Add(3, 911)
		m.Row(3).And(m.Row(4))
		m.RecountRow(3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset+ops allocated %v times per run, want 0", allocs)
	}
}

// TestMatrixLiveVsReserved: shrinking the shape shrinks LiveBytes but not
// ReservedBytes.
func TestMatrixLiveVsReserved(t *testing.T) {
	var m Matrix
	m.Reset(8, 1<<12)
	bigLive, bigReserved := m.LiveBytes(), m.ReservedBytes()
	m.Reset(2, 128)
	if m.LiveBytes() >= bigLive {
		t.Fatalf("live bytes %d did not shrink from %d", m.LiveBytes(), bigLive)
	}
	if m.ReservedBytes() < bigReserved {
		t.Fatalf("reserved bytes %d dropped below %d after shrink", m.ReservedBytes(), bigReserved)
	}
}

// TestSwitchHeuristics pins the shape of the representation switch: probe
// for large candidate sets, merge for tiny ones; bits generation for
// dense labels, chain for rare ones.
func TestSwitchHeuristics(t *testing.T) {
	if !UseProbe(1000, 50) {
		t.Fatal("UseProbe should probe when candidates outnumber neighbors")
	}
	if UseProbe(1, 1000) {
		t.Fatal("UseProbe should merge when the candidate set is tiny")
	}
	if !UseBitsGenerate(4096, 4096) {
		t.Fatal("UseBitsGenerate should use bits at full density")
	}
	if UseBitsGenerate(1, 1<<20) {
		t.Fatal("UseBitsGenerate should use the chain path for a tiny scatter volume")
	}
}
