package core

import (
	"math/rand"
	"testing"
)

// TestVcFVMetricsAccounting: the vcFV result decomposes into the paper's
// metrics — filtering time covers candidate set construction on every data
// graph, verification only runs on graphs with complete candidate sets.
func TestVcFVMetricsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	db := randomDB(r, 15, 9, 2)
	e := NewCFQL()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 2+r.Intn(3))
		res := e.Query(q, QueryOptions{})
		if res.FilterTime <= 0 {
			t.Errorf("FilterTime = %v, want > 0 (filter ran on %d graphs)", res.FilterTime, db.Len())
		}
		if res.Candidates > 0 && res.VerifyTime <= 0 {
			t.Errorf("VerifyTime = %v with %d candidates", res.VerifyTime, res.Candidates)
		}
		if res.Candidates == 0 && res.VerifySteps != 0 {
			t.Errorf("VerifySteps = %d with no candidates", res.VerifySteps)
		}
		if len(res.Answers) > res.Candidates {
			t.Errorf("answers %d > candidates %d", len(res.Answers), res.Candidates)
		}
		if res.QueryTime() != res.FilterTime+res.VerifyTime {
			t.Error("QueryTime != FilterTime + VerifyTime")
		}
	}
}

// TestIFVMetricsAccounting: same decomposition for the index-based engine.
func TestIFVMetricsAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	db := randomDB(r, 15, 9, 2)
	e := NewGGSX()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 2+r.Intn(3))
		res := e.Query(q, QueryOptions{})
		if res.FilterTime <= 0 {
			t.Errorf("FilterTime = %v, want > 0", res.FilterTime)
		}
		if res.AuxMemory != 0 {
			t.Errorf("pure IFV engine reported AuxMemory %d", res.AuxMemory)
		}
		if len(res.Answers) > res.Candidates {
			t.Errorf("answers %d > candidates %d", len(res.Answers), res.Candidates)
		}
	}
}

// TestVerifyStepsComparable: CFQL's verification steps are never more than
// the naive scan's on the same query (the scan verifies every graph, CFQL
// only candidates — and with better candidate sets).
func TestVerifyStepsComparable(t *testing.T) {
	r := rand.New(rand.NewSource(613))
	db := randomDB(r, 12, 9, 2)
	cfql := NewCFQL()
	scan := NewScan()
	if err := cfql.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := scan.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	totalCFQL, totalScan := uint64(0), uint64(0)
	for k := 0; k < 10; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 2+r.Intn(3))
		totalCFQL += cfql.Query(q, QueryOptions{}).VerifySteps
		totalScan += scan.Query(q, QueryOptions{}).VerifySteps
	}
	if totalCFQL > totalScan {
		t.Errorf("CFQL spent %d verification steps, scan spent %d — filtering should reduce work",
			totalCFQL, totalScan)
	}
}
