package core

import "subgraphquery/internal/inflight"

// trackInflight resolves the query's live handle at engine entry,
// mirroring the fingerprintQuery write-back pattern: a caller-provided
// Handle (the server's, or a wrapper's) is reused as-is — its owner
// merges cancellation and deregisters; otherwise, with a Registry set,
// a handle is registered here, its remote-cancellation channel is merged
// into opts.Cancel, and the returned untrack deregisters it when the
// query returns. The resolved handle is written back into opts so
// wrapped engines (Cached's inner engine) tick the same handle instead
// of registering a second one. With neither field set it returns the
// nil handle, whose methods are free no-ops.
//
// Callers invoke it after fingerprintQuery (so the handle carries the
// resolved fingerprint) and after degenerate (an empty query returns
// before doing any trackable work).
func trackInflight(engine string, opts *QueryOptions) (h *inflight.Handle, untrack func()) {
	if opts.Handle != nil {
		return opts.Handle, func() {}
	}
	if opts.Inflight == nil {
		return nil, func() {}
	}
	reg := opts.Inflight
	h = reg.Register(inflight.RegisterOptions{
		Engine:      engine,
		Fingerprint: uint64(opts.Fingerprint),
	})
	opts.Handle = h
	opts.Cancel = h.MergeCancel(opts.Cancel)
	return h, func() { reg.Deregister(h) }
}
