package core

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestMergeResultsFieldSemantics(t *testing.T) {
	a := &Result{
		Answers:     []int{4, 9},
		Candidates:  3,
		FilterTime:  10 * time.Millisecond,
		VerifyTime:  2 * time.Millisecond,
		VerifySteps: 100,
		AuxMemory:   1 << 10,
		Fingerprint: 7,
	}
	b := &Result{
		Answers:     []int{1, 6},
		Candidates:  2,
		FilterTime:  3 * time.Millisecond,
		VerifyTime:  8 * time.Millisecond,
		VerifySteps: 50,
		AuxMemory:   1 << 11,
		TimedOut:    true,
		Skipped:     1,
		GraphErrors: []*QueryError{newBudgetError("CFQL", 6, 1)},
		Fingerprint: 7,
	}
	m := MergeResults([]*Result{a, nil, b})
	if want := []int{1, 4, 6, 9}; len(m.Answers) != len(want) {
		t.Fatalf("answers %v, want %v", m.Answers, want)
	} else {
		for i, id := range want {
			if m.Answers[i] != id {
				t.Fatalf("answers %v, want %v", m.Answers, want)
			}
		}
	}
	if m.Candidates != 5 || m.VerifySteps != 150 || m.Skipped != 1 {
		t.Errorf("sums wrong: candidates=%d steps=%d skipped=%d", m.Candidates, m.VerifySteps, m.Skipped)
	}
	if m.AuxMemory != 1<<10+1<<11 {
		t.Errorf("aux memory %d, want sum %d", m.AuxMemory, 1<<10+1<<11)
	}
	if m.FilterTime != 10*time.Millisecond || m.VerifyTime != 8*time.Millisecond {
		t.Errorf("phase times filter=%v verify=%v, want element-wise maxima 10ms/8ms",
			m.FilterTime, m.VerifyTime)
	}
	if !m.TimedOut || m.Cancelled || m.Degraded {
		t.Errorf("flags timed_out=%v cancelled=%v degraded=%v, want OR semantics (true,false,false)",
			m.TimedOut, m.Cancelled, m.Degraded)
	}
	if len(m.GraphErrors) != 1 || m.Fingerprint != 7 {
		t.Errorf("graph errors %d fingerprint %d", len(m.GraphErrors), m.Fingerprint)
	}
	if m.Err != nil {
		t.Errorf("merged Err = %v, want nil", m.Err)
	}
}

// TestMergeResultsErrSurvivesOnlyTotalFailure: a shard-boundary panic on
// one shard degrades, it does not fail the merged query — Err is kept
// only when every live part failed.
func TestMergeResultsErrSurvivesOnlyTotalFailure(t *testing.T) {
	bad := &Result{Err: newPanicError("CFQL", -1, "boom")}
	ok := &Result{Answers: []int{2}}
	if m := MergeResults([]*Result{bad, ok}); m.Err != nil {
		t.Errorf("one healthy part should clear Err, got %v", m.Err)
	}
	if m := MergeResults([]*Result{bad, {Err: newPanicError("CFQL", -1, "boom2")}}); m.Err == nil {
		t.Error("all parts failed, want Err kept")
	} else if !strings.Contains(m.Err.Message, "boom") {
		t.Errorf("kept Err %q, want the first part's", m.Err.Message)
	}
}

// TestCapGraphErrorsHoldsAfterMerge is the merge-semantics fix from the
// issue: N shards each legitimately carrying up to 16 entries must not
// yield a merged result with 16·N entries, and what the cap drops must
// be counted, not silently discarded.
func TestCapGraphErrorsHoldsAfterMerge(t *testing.T) {
	mk := func(n, base int) *Result {
		r := &Result{Skipped: n}
		for i := 0; i < n; i++ {
			r.GraphErrors = append(r.GraphErrors, newBudgetError("CFQL", base+i, 1))
		}
		return r
	}
	m := MergeResults([]*Result{mk(12, 0), mk(9, 100), mk(4, 200)})
	if len(m.GraphErrors) != 25 {
		t.Fatalf("merge must not cap (the coordinator caps once): got %d entries", len(m.GraphErrors))
	}
	m.GraphErrors = append([]*QueryError{NewShardError("CFQL", 2, []int{300, 301}, errors.New("down"))},
		m.GraphErrors...)
	m.CapGraphErrors()
	if len(m.GraphErrors) != maxGraphErrors {
		t.Errorf("capped to %d entries, want %d", len(m.GraphErrors), maxGraphErrors)
	}
	if m.GraphErrorsTruncated != 26-maxGraphErrors {
		t.Errorf("truncated count %d, want %d", m.GraphErrorsTruncated, 26-maxGraphErrors)
	}
	if m.GraphErrors[0].Kind != KindShard || m.GraphErrors[0].Shard != 2 {
		t.Errorf("shard-loss entry must survive the cap at the front, got kind=%q shard=%d",
			m.GraphErrors[0].Kind, m.GraphErrors[0].Shard)
	}
	// Idempotent: a second cap changes nothing.
	m.CapGraphErrors()
	if len(m.GraphErrors) != maxGraphErrors || m.GraphErrorsTruncated != 26-maxGraphErrors {
		t.Errorf("cap not idempotent: %d entries, %d truncated", len(m.GraphErrors), m.GraphErrorsTruncated)
	}
}

func TestNewShardError(t *testing.T) {
	qe := NewShardError("CFQL-x4", 3, []int{8, 12, 16}, errors.New("transport down"))
	if qe.Kind != KindShard || qe.Shard != 3 || qe.GraphID != -1 {
		t.Errorf("kind=%q shard=%d graph=%d", qe.Kind, qe.Shard, qe.GraphID)
	}
	for _, want := range []string{"shard 3", "3 graphs", "8..16", "transport down"} {
		if !strings.Contains(qe.Message, want) {
			t.Errorf("message %q missing %q", qe.Message, want)
		}
	}
	var cause error = qe
	if !errors.Is(errors.Unwrap(cause), errors.Unwrap(cause)) {
		t.Error("unwrap not stable")
	}
}
