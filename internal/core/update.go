package core

import (
	"fmt"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/index"
)

// Updatable is implemented by engines that can incorporate a newly
// appended data graph without a full index rebuild. All vcFV engines
// qualify trivially (they are index-free); IFV/IvcFV engines qualify when
// their index supports incremental insertion (see index.Appender).
type Updatable interface {
	// AppendGraph adds g to the engine's database and updates any index,
	// returning the new graph's id.
	AppendGraph(g *graph.Graph) (int, error)
}

// AppendGraph implements Updatable for vcFV engines: the database gains
// the graph; there is nothing else to maintain.
func (e *vcFV) AppendGraph(g *graph.Graph) (int, error) {
	return e.db.Append(g), nil
}

// AppendGraph implements Updatable for the parallel vcFV engine.
func (e *parallelVcFV) AppendGraph(g *graph.Graph) (int, error) {
	return e.db.Append(g), nil
}

// AppendGraph implements Updatable for the TurboIso engine.
func (e *turboIso) AppendGraph(g *graph.Graph) (int, error) {
	return e.db.Append(g), nil
}

// AppendGraph implements Updatable for the scan engine.
func (e *scan) AppendGraph(g *graph.Graph) (int, error) {
	return e.db.Append(g), nil
}

// AppendGraph implements Updatable for IFV engines whose index supports
// incremental insertion.
func (e *ifv) AppendGraph(g *graph.Graph) (int, error) {
	app, ok := e.idx.(index.Appender)
	if !ok {
		return 0, fmt.Errorf("core: %s index does not support incremental updates; rebuild with Build", e.name)
	}
	if !e.built {
		return 0, fmt.Errorf("core: %s index not built", e.name)
	}
	gid := e.db.Append(g)
	if err := app.InsertGraph(g, gid); err != nil {
		return 0, err
	}
	return gid, nil
}

// AppendGraph implements Updatable for IvcFV engines whose index supports
// incremental insertion.
func (e *ivcFV) AppendGraph(g *graph.Graph) (int, error) {
	app, ok := e.idx.(index.Appender)
	if !ok {
		return 0, fmt.Errorf("core: %s index does not support incremental updates; rebuild with Build", e.name)
	}
	if !e.built {
		return 0, fmt.Errorf("core: %s index not built", e.name)
	}
	gid := e.db.Append(g)
	if err := app.InsertGraph(g, gid); err != nil {
		return 0, err
	}
	return gid, nil
}
