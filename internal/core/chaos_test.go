//go:build sqchaos

package core

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
)

// TestChaosEnginesSurviveFaults drives every engine through a query mix
// while the fault substrate injects panics, latency, allocation spikes and
// spurious aborts into the filter/order/enumerate/index-probe hot paths.
// The contract under fault: no crash, structured errors only, answers stay
// a subset of the truth (faults may lose answers, never invent them), and
// no scratch arena or goroutine outlives its query.
func TestChaosEnginesSurviveFaults(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	db := randomDB(r, 24, 10, 2)
	queries := make([]chaosQueryCase, 0, 8)
	for i := 0; i < 8; i++ {
		q := walkQuery(r, db.Graph(i%db.Len()), 2+i%3)
		queries = append(queries, chaosQueryCase{q: q, want: trueAnswers(db, q)})
	}

	// Build the engines with faults off: chaos targets query execution;
	// build-time faults would just fail construction before the paths under
	// test run.
	fault.Set(fault.Config{})
	engines := allEngines()
	for name, eng := range engines {
		if err := eng.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
	}

	baselineG := runtime.NumGoroutine()
	baselineS := matching.ScratchLive()

	fault.Set(fault.Config{
		PanicRate:   0.05,
		LatencyRate: 0.02,
		AllocRate:   0.02,
		AbortRate:   0.05,
		Latency:     100 * time.Microsecond,
		AllocBytes:  1 << 16,
		Seed:        1,
	})
	defer fault.Set(fault.Config{})

	var skipped, errs int
	for name, eng := range engines {
		for i, qc := range queries {
			res := eng.Query(qc.q, QueryOptions{Workers: 3})
			if res == nil {
				t.Fatalf("%s q%d: nil result under fault", name, i)
			}
			if res.Err != nil {
				// Whole-query failure (e.g. an index-probe panic outside any
				// per-graph boundary): must be structured.
				if res.Err.Kind != KindPanic || res.Err.Engine == "" {
					t.Errorf("%s q%d: malformed query error %+v", name, i, res.Err)
				}
				errs++
				continue
			}
			if res.Skipped != 0 {
				skipped += res.Skipped
				if len(res.GraphErrors) == 0 {
					t.Errorf("%s q%d: Skipped=%d with no GraphErrors", name, i, res.Skipped)
				}
			}
			for _, qe := range res.GraphErrors {
				if qe.Kind != KindPanic && qe.Kind != KindBudget {
					t.Errorf("%s q%d: unexpected graph-error kind %q", name, i, qe.Kind)
				}
				if qe.Message == "" {
					t.Errorf("%s q%d: graph error with empty message", name, i)
				}
			}
			// Faults lose answers (skips, aborts) but never invent them.
			wantSet := map[int]bool{}
			for _, gid := range qc.want {
				wantSet[gid] = true
			}
			for _, gid := range res.Answers {
				if !wantSet[gid] {
					t.Errorf("%s q%d: fault run invented answer %d (truth %v)", name, i, gid, qc.want)
				}
			}
		}
	}

	panics, latencies, allocs, aborts := fault.Counts()
	t.Logf("faults fired: %d panics, %d latencies, %d allocs, %d aborts; %d graphs skipped, %d query errors",
		panics, latencies, allocs, aborts, skipped, errs)
	if panics == 0 && aborts == 0 {
		t.Error("chaos run fired no panics or aborts; rates or injection points are dead")
	}

	// Quiesce, then assert nothing leaked.
	fault.Set(fault.Config{})
	if got := matching.ScratchLive(); got != baselineS {
		t.Errorf("scratch arenas leaked under fault: live %d, was %d", got, baselineS)
	}
	waitGoroutines(t, baselineG)

	// And with faults off again, results are exact: the chaos run left no
	// poisoned caches or stranded state behind.
	for name, eng := range engines {
		for i, qc := range queries {
			res := eng.Query(qc.q, QueryOptions{})
			if res.Err != nil || res.Skipped != 0 {
				t.Errorf("%s q%d after chaos: Err=%v Skipped=%d", name, i, res.Err, res.Skipped)
				continue
			}
			if !equalInts(res.Answers, qc.want) {
				t.Errorf("%s q%d after chaos: answers %v, want %v", name, i, res.Answers, qc.want)
			}
		}
	}
}

type chaosQueryCase struct {
	q    *graph.Graph
	want []int
}

// TestChaosCancelUnderLatency pins latency faults to the filter entry so
// every query is slow by construction, then cancels mid-flight: the
// parallel pools must observe the cancel between graphs and wind down.
func TestChaosCancelUnderLatency(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	db := randomDB(r, 30, 10, 2)
	q := walkQuery(r, db.Graph(0), 3)

	fault.Set(fault.Config{})
	defer fault.Set(fault.Config{})
	for name, eng := range map[string]Engine{
		"CFQL-parallel": NewParallelCFQL(3),
		"vcGrapes":      NewVcGrapes(),
	} {
		if err := eng.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		baseline := runtime.NumGoroutine()
		fault.Set(fault.Config{
			LatencyRate: 1,
			Latency:     2 * time.Millisecond,
			Points:      map[string]bool{fault.PointFilter: true},
			Seed:        2,
		})
		cancel := make(chan struct{})
		done := make(chan *Result, 1)
		go func() { done <- eng.Query(q, QueryOptions{Cancel: cancel, Workers: 3}) }()
		time.Sleep(5 * time.Millisecond) // several graphs deep, many to go
		close(cancel)
		select {
		case res := <-done:
			if !res.Cancelled || !res.TimedOut {
				t.Errorf("%s: Cancelled=%v TimedOut=%v after mid-flight cancel under latency",
					name, res.Cancelled, res.TimedOut)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: query did not return after cancellation", name)
		}
		fault.Set(fault.Config{})
		waitGoroutines(t, baseline)
	}
}
