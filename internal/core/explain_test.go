package core

import (
	"math/rand"
	"sync"
	"testing"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

func stageNames(s obs.ExplainSnapshot) map[string]bool {
	out := map[string]bool{}
	for _, st := range s.Stages {
		out[st.Name] = true
	}
	return out
}

// TestExplainCFQLStages is the acceptance gate for the vcFV side of the
// EXPLAIN report: a CFQL query must record per-stage candidate counts for
// CFL's LDF, top-down and bottom-up passes, the engine name, and the chosen
// matching order with per-vertex selectivity.
func TestExplainCFQLStages(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := randomDB(r, 25, 8, 3)
	e := NewCFQL()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 3)

	ex := obs.NewExplain()
	res := e.Query(q, QueryOptions{Explain: ex})
	s := ex.Snapshot()

	if s.Engine != "CFQL" {
		t.Errorf("engine = %q, want CFQL", s.Engine)
	}
	names := stageNames(s)
	for _, want := range []string{obs.StageCFLLDF, obs.StageCFLTopDown, obs.StageCFLBottomUp} {
		if !names[want] {
			t.Errorf("stage %q missing (have %v)", want, names)
		}
	}
	// Every data graph passes through the label-pair prefilter; only the
	// survivors enter LDF, and only LDF survivors proceed further.
	if s.Prefilter == nil {
		t.Fatal("prefilter stats missing")
	}
	if s.Prefilter.Graphs != db.Len() {
		t.Errorf("prefilter saw %d graphs, want %d", s.Prefilter.Graphs, db.Len())
	}
	passed := s.Prefilter.Graphs - s.Prefilter.Pruned
	for _, st := range s.Stages {
		if st.Name == obs.StageCFLLDF && st.Graphs != passed {
			t.Errorf("ldf saw %d graphs, want %d prefilter survivors", st.Graphs, passed)
		}
		if len(st.SumPerVertex) != q.NumVertices() {
			t.Errorf("stage %s has %d vertex sums, want %d", st.Name, len(st.SumPerVertex), q.NumVertices())
		}
	}
	if res.Candidates > 0 {
		if s.OrdersSeen != res.Candidates {
			t.Errorf("orders seen = %d, want one per candidate (%d)", s.OrdersSeen, res.Candidates)
		}
		if len(s.Order) != q.NumVertices() {
			t.Errorf("order has %d steps, want %d", len(s.Order), q.NumVertices())
		}
	}
}

// TestExplainGraphQLStages: the GraphQL filter reports its profile and
// refinement stages, the refinement-round distribution, and semi-perfect
// matching rejections.
func TestExplainGraphQLStages(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	db := randomDB(r, 25, 8, 3)
	e := NewGraphQL()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(1), 3)

	ex := obs.NewExplain()
	e.Query(q, QueryOptions{Explain: ex})
	s := ex.Snapshot()

	if s.Engine != "GraphQL" {
		t.Errorf("engine = %q, want GraphQL", s.Engine)
	}
	names := stageNames(s)
	if !names[obs.StageGraphQLProfile] {
		t.Errorf("profile stage missing (have %v)", names)
	}
	// Refinement only runs on graphs surviving profile generation; when any
	// did, rounds must have been recorded.
	if names[obs.StageGraphQLRefine] {
		if s.RefineRounds == nil || s.RefineRounds.Graphs == 0 {
			t.Errorf("refine stage present but no rounds recorded: %+v", s.RefineRounds)
		}
	}
}

// TestExplainIndexProbes: IFV engines report one probe per query with the
// index's internals, and survivors match the Result's candidate count.
func TestExplainIndexProbes(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	db := randomDB(r, 25, 8, 3)
	q := walkQuery(r, db.Graph(2), 3)

	for name, e := range map[string]Engine{
		"Grapes":   NewGrapes(),
		"GGSX":     NewGGSX(),
		"CT-Index": NewCTIndex(),
	} {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ex := obs.NewExplain()
		res := e.Query(q, QueryOptions{Explain: ex})
		s := ex.Snapshot()
		if s.Engine != name {
			t.Errorf("%s: engine = %q", name, s.Engine)
		}
		if len(s.IndexProbes) != 1 {
			t.Fatalf("%s: %d probes, want 1", name, len(s.IndexProbes))
		}
		p := s.IndexProbes[0]
		if p.Index != name {
			t.Errorf("%s: probe index = %q", name, p.Index)
		}
		if p.Survivors != res.Candidates {
			t.Errorf("%s: survivors = %d, want %d candidates", name, p.Survivors, res.Candidates)
		}
		if p.Features == 0 {
			t.Errorf("%s: probe reports zero features", name)
		}
		if name == "CT-Index" && p.FingerprintBits == 0 {
			t.Errorf("CT-Index: fingerprint bits not reported")
		}
		if name != "CT-Index" && p.NodesVisited == 0 && res.Candidates > 0 {
			t.Errorf("%s: no trie nodes visited despite survivors", name)
		}
	}
}

// TestExplainIvcFVBothLevels: the two-level engine reports the index probe
// AND the CFL stages of the second filtering level.
func TestExplainIvcFVBothLevels(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	db := randomDB(r, 25, 8, 3)
	e := NewVcGrapes()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(3), 3)

	ex := obs.NewExplain()
	e.Query(q, QueryOptions{Explain: ex, Workers: 2})
	s := ex.Snapshot()
	if s.Engine != "vcGrapes" {
		t.Errorf("engine = %q", s.Engine)
	}
	if len(s.IndexProbes) != 1 || s.IndexProbes[0].Index != "Grapes" {
		t.Fatalf("index probe missing or wrong: %+v", s.IndexProbes)
	}
	survivors := s.IndexProbes[0].Survivors
	names := stageNames(s)
	if survivors > 0 && !names[obs.StageCFLLDF] {
		t.Errorf("CFL stages missing despite %d index survivors (have %v)", survivors, names)
	}
	for _, st := range s.Stages {
		if st.Graphs != survivors {
			t.Errorf("stage %s saw %d graphs, want the %d index survivors", st.Name, st.Graphs, survivors)
		}
	}
}

// TestExplainCachedEngine: a cache hit reports the answer pool as a
// "result-cache" probe and the outermost engine name wins.
func TestExplainCachedEngine(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	db := randomDB(r, 20, 8, 3)
	e := NewCached(NewCFQL(), 8)
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 3)

	ex1 := obs.NewExplain()
	e.Query(q, QueryOptions{Explain: ex1})
	if got := ex1.Snapshot().Engine; got != "CFQL+cache" {
		t.Errorf("miss path engine = %q, want CFQL+cache", got)
	}

	ex2 := obs.NewExplain()
	res := e.Query(q, QueryOptions{Explain: ex2})
	s := ex2.Snapshot()
	if s.Engine != "CFQL+cache" {
		t.Errorf("hit path engine = %q, want CFQL+cache", s.Engine)
	}
	if len(s.IndexProbes) != 1 || s.IndexProbes[0].Index != "result-cache" {
		t.Fatalf("cache-hit probe missing: %+v", s.IndexProbes)
	}
	if s.IndexProbes[0].Survivors != res.Candidates {
		t.Errorf("cache probe survivors = %d, want %d", s.IndexProbes[0].Survivors, res.Candidates)
	}
}

// TestExplainDoesNotChangeResults: attaching an Explain must not alter any
// engine's answers or candidate counts.
func TestExplainDoesNotChangeResults(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	db := randomDB(r, 20, 8, 3)
	q := walkQuery(r, db.Graph(4), 3)
	for name, e := range allEngines() {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plain := e.Query(q, QueryOptions{Workers: 2})
		ex := obs.NewExplain()
		with := e.Query(q, QueryOptions{Workers: 2, Explain: ex})
		if len(plain.Answers) != len(with.Answers) || plain.Candidates != with.Candidates {
			t.Errorf("%s: explain changed results: %d/%d answers, %d/%d candidates",
				name, len(plain.Answers), len(with.Answers), plain.Candidates, with.Candidates)
		}
	}
}

// TestExplainConcurrentEngineRecording exercises shared Trace+Explain
// recording from parallel workers — Grapes' verification pool and the
// parallel CFQL engine — under the race detector (scripts/check.sh runs
// this package with -race).
func TestExplainConcurrentEngineRecording(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	db := randomDB(r, 40, 9, 3)
	queries := make([]*queryCase, 0, 4)
	for i := 0; i < 4; i++ {
		queries = append(queries, &queryCase{q: walkQuery(r, db.Graph(r.Intn(db.Len())), 3)})
	}

	for name, e := range map[string]Engine{
		"Grapes":        NewGrapes(),
		"CFQL-parallel": NewParallelCFQL(4),
		"vcGrapes":      NewVcGrapes(),
	} {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// One shared Explain+Trace across concurrently running queries, each
		// itself fanning out to 4 workers: the worst-case contention shape.
		ex := obs.NewExplain()
		tr := obs.NewTrace()
		var wg sync.WaitGroup
		for _, qc := range queries {
			wg.Add(1)
			go func(qc *queryCase) {
				defer wg.Done()
				qc.res = e.Query(qc.q, QueryOptions{Workers: 4, Observer: tr, Explain: ex})
			}(qc)
		}
		wg.Wait()
		s := ex.Snapshot()
		if s.Engine == "" {
			t.Errorf("%s: engine never recorded", name)
		}
		var candidates int
		for _, qc := range queries {
			candidates += qc.res.Candidates
		}
		ts := tr.Snapshot()
		if ts.VerificationsTotal < candidates {
			t.Errorf("%s: %d verification events < %d candidates", name, ts.VerificationsTotal, candidates)
		}
	}
}

type queryCase struct {
	q   *graph.Graph
	res *Result
}
