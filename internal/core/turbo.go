package core

import (
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// turboIso is an extension engine: the TurboIso matcher [11] applied to
// subgraph queries the naive way (§III-B's opening): run the matcher with
// first-match semantics against every data graph. TurboIso interleaves its
// candidate-region filtering with enumeration per start vertex, so the
// paper's clean filter/verify split does not apply; all time is reported
// as verification and every data graph counts as a candidate, like the
// scan baseline.
type turboIso struct {
	db *graph.Database
}

// NewTurboIso returns the TurboIso-based query engine.
func NewTurboIso() Engine { return &turboIso{} }

// Name implements Engine.
func (*turboIso) Name() string { return "TurboIso" }

// Build implements Engine (index-free).
func (e *turboIso) Build(db *graph.Database, _ BuildOptions) error {
	e.db = db
	return nil
}

// IndexMemory implements Engine.
func (*turboIso) IndexMemory() int64 { return 0 }

// Query implements Engine.
func (e *turboIso) Query(q *graph.Graph, opts QueryOptions) (res *Result) {
	fp := fingerprintQuery(q, &opts)
	if r, done := degenerate(q); done {
		r.Fingerprint = fp
		return r
	}
	res = &Result{Fingerprint: fp}
	o := opts.Observer
	defer queryGuard("TurboIso", o, res)
	h, untrack := trackInflight("TurboIso", &opts)
	defer untrack()
	h.SetPhase(inflight.PhaseFused)
	h.SetGraphsTotal(e.db.Len())
	opts.Explain.SetEngine("TurboIso")
	var m matching.TurboIso
	step := func(gid int) (r matching.Result, qe *QueryError) {
		defer graphGuard("TurboIso", gid, o, &qe)
		var tv time.Time
		if o != nil {
			tv = time.Now()
		}
		r = m.FindFirst(q, e.db.Graph(gid), matching.Options{
			Deadline:   opts.Deadline,
			Cancel:     opts.Cancel,
			StepBudget: opts.StepBudgetPerGraph,
			Progress:   h.StepCounter(),
		})
		if o != nil {
			o.ObserveVerify(gid, r.Steps, time.Since(tv), r.Found())
		}
		return r, nil
	}
	t0 := time.Now()
	for gid := 0; gid < e.db.Len(); gid++ {
		if halt(&opts, res) {
			break
		}
		res.Candidates++
		h.AddCandidates(1)
		r, qe := step(gid)
		h.GraphDone()
		if qe != nil {
			recordGraphError(res, qe)
			continue
		}
		res.VerifySteps += r.Steps
		if r.Aborted {
			noteAbort(&opts, res)
		}
		if r.Found() {
			res.Answers = append(res.Answers, gid)
			h.AddAnswers(1)
		}
	}
	res.VerifyTime = time.Since(t0)
	if o != nil {
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
