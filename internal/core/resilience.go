package core

import (
	"fmt"
	"runtime/debug"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/obs"
)

// This file is the panic-isolation and cancellation layer of the query
// engines (DESIGN.md, "Resilience"). The contract:
//
//   - Every Engine.Query recovers its own panics. A panic while processing
//     one data graph is converted into a *QueryError, the graph is counted
//     in Result.Skipped, and the query continues — one poisoned graph
//     never takes down the query, let alone the process. A panic outside
//     any per-graph section becomes Result.Err and the query returns what
//     it had.
//   - Worker goroutines of the parallel engines recover per graph; a
//     worker never escapes a panic to the runtime (which would kill the
//     whole process, not just the query — goroutine panics cannot be
//     caught by the spawner).
//   - Recovered panics increment obs.Panics, fire Observer.ObservePanic,
//     and carry the stack of the panicking goroutine for diagnosis.
//
// Correctness of skip-and-continue: the per-query scratch arena is reset
// per data graph (Candidates.reset, epoch-stamped bitsets), so state a
// panicking pass left behind cannot leak into the next graph's results.

// maxGraphErrors caps Result.GraphErrors; further failures are counted in
// Skipped but not retained, so a pathological database cannot balloon the
// result.
const maxGraphErrors = 16

// QueryError is the structured form of a failure inside query processing.
// It is JSON-marshalable so the server can return it verbatim.
type QueryError struct {
	// Engine is the engine configuration that failed (e.g. "CFQL").
	Engine string `json:"engine"`
	// Kind classifies the failure: KindPanic or KindBudget.
	Kind string `json:"kind"`
	// GraphID is the data graph whose processing failed, -1 when the
	// failure was not attributable to one graph.
	GraphID int `json:"graph_id"`
	// Message describes the failure (the panic value, or the budget that
	// was exceeded).
	Message string `json:"message"`
	// Shard is the partition whose loss this error records, set by the
	// scatter-gather coordinator on KindShard errors (NewShardError);
	// -1 when the failure was not attributable to one shard, mirroring
	// GraphID's sentinel.
	Shard int `json:"shard"`
	// Stack is the stack of the panicking goroutine (empty for budget
	// errors).
	Stack string `json:"stack,omitempty"`

	value any // recovered panic value, for errors.As/Is via Unwrap
}

// QueryError kinds.
const (
	// KindPanic marks a recovered panic.
	KindPanic = "panic"
	// KindBudget marks a memory-budget abort (Candidates.BudgetExceeded).
	KindBudget = "budget"
	// KindShard marks a database partition lost at the scatter-gather
	// tier: a shard that stayed unreachable through the coordinator's
	// retries. The result is then Degraded, not failed — answers from the
	// surviving shards are intact and the error names what is missing.
	KindShard = "shard"
)

// Error implements error.
func (e *QueryError) Error() string {
	if e.GraphID >= 0 {
		return fmt.Sprintf("core: %s %s on graph %d: %s", e.Engine, e.Kind, e.GraphID, e.Message)
	}
	return fmt.Sprintf("core: %s %s: %s", e.Engine, e.Kind, e.Message)
}

// Unwrap exposes the recovered value when it was an error (e.g.
// *fault.InjectedPanic), so errors.As sees through the boundary.
func (e *QueryError) Unwrap() error {
	if err, ok := e.value.(error); ok {
		return err
	}
	return nil
}

// newPanicError builds the QueryError for a value recovered at a
// resilience boundary, capturing the current goroutine's stack.
func newPanicError(engine string, gid int, v any) *QueryError {
	return &QueryError{
		Engine:  engine,
		Kind:    KindPanic,
		GraphID: gid,
		Shard:   -1,
		Message: fmt.Sprint(v),
		Stack:   string(debug.Stack()),
		value:   v,
	}
}

// newBudgetError builds the QueryError for a data graph skipped because
// the candidate structure outgrew QueryOptions.MemoryBudget.
func newBudgetError(engine string, gid int, limit int64) *QueryError {
	return &QueryError{
		Engine:  engine,
		Kind:    KindBudget,
		GraphID: gid,
		Shard:   -1,
		Message: fmt.Sprintf("candidate structure exceeded memory budget of %d bytes", limit),
	}
}

// graphGuard is deferred around the processing of one data graph: it
// recovers a panic into *qe so the caller can skip the graph and keep the
// query going. Counted in obs.Panics and reported to the observer (which
// must tolerate calls from worker goroutines).
func graphGuard(engine string, gid int, o obs.Observer, qe **QueryError) {
	v := recover()
	if v == nil {
		return
	}
	*qe = newPanicError(engine, gid, v)
	obs.Panics.Inc()
	if o != nil {
		o.ObservePanic(gid)
	}
}

// queryGuard is deferred at the top of every Engine.Query: it recovers a
// panic that escaped the per-graph guards (or occurred outside any
// per-graph section) into res.Err, so the caller receives a structured
// partial result instead of an unwinding stack.
func queryGuard(engine string, o obs.Observer, res *Result) {
	v := recover()
	if v == nil {
		return
	}
	res.Err = newPanicError(engine, -1, v)
	obs.Panics.Inc()
	if o != nil {
		o.ObservePanic(-1)
	}
}

// recordGraphError folds one skipped graph's error into res (callers in
// worker pools hold the result mutex).
func recordGraphError(res *Result, qe *QueryError) {
	res.Skipped++
	if len(res.GraphErrors) < maxGraphErrors {
		res.GraphErrors = append(res.GraphErrors, qe)
	}
}

// halt reports whether the query loop must stop before taking on the next
// data graph, recording why on res: Cancelled (and TimedOut — the answer
// set is a lower bound either way) for cooperative cancellation, TimedOut
// alone for a passed deadline.
func halt(opts *QueryOptions, res *Result) bool {
	if budget.Cancelled(opts.Cancel) {
		res.Cancelled = true
		res.TimedOut = true
		return true
	}
	if expired(opts.Deadline) {
		res.TimedOut = true
		return true
	}
	return false
}

// noteAbort records a filter/enumeration abort: cancellation refines the
// timeout the same way halt does.
func noteAbort(opts *QueryOptions, res *Result) {
	res.TimedOut = true
	if budget.Cancelled(opts.Cancel) {
		res.Cancelled = true
	}
}
