package core

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
)

// wallGraph builds the complete bipartite graph K_{m,m} with every vertex
// labeled 0: it contains no odd cycle (bipartite), yet its dense symmetric
// structure gives an odd-cycle query an astronomically large fruitless
// search space — a query against it never finishes within test lifetimes,
// so a delivered cancellation is always what stops it.
func wallGraph(m int) *graph.Graph {
	labels := make([]graph.Label, 2*m)
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(m + j)})
		}
	}
	g, err := graph.FromEdges(labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// oddCycleQuery builds the cycle C_n (n odd) with every vertex labeled 0 —
// unmatchable in any bipartite data graph.
func oddCycleQuery(n int) *graph.Graph {
	labels := make([]graph.Label, n)
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: graph.VertexID(i), V: graph.VertexID((i + 1) % n)}
	}
	g, err := graph.FromEdges(labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// TestInflightTrackingLifecycle: with QueryOptions.Inflight set, every
// engine registers exactly one handle per query and deregisters it on
// return — including the cache wrapper, whose inner engine must reuse the
// outer handle instead of registering a second one.
func TestInflightTrackingLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	db := randomDB(r, 12, 8, 2)
	q := walkQuery(r, db.Graph(0), 3)

	engines := allEngines()
	engines["CFQL+cache"] = NewCached(NewCFQL(), 8)
	reg := inflight.NewRegistry(16)
	var wantRegistered int64
	for name, eng := range engines {
		if err := eng.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := eng.Query(q, QueryOptions{Inflight: reg, Workers: 2})
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		wantRegistered++
		if reg.Len() != 0 {
			t.Fatalf("%s: %d handles leaked after Query returned", name, reg.Len())
		}
		registered, overflowed, _ := reg.Stats()
		if registered != wantRegistered || overflowed != 0 {
			t.Fatalf("%s: registered=%d overflowed=%d, want %d and 0 (double registration?)",
				name, registered, overflowed, wantRegistered)
		}
	}

	// A cache hit answers from the pool without entering the inner engine;
	// the wrapper's own handle must still cover that path.
	cached := NewCached(NewCFQL(), 8)
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	cached.Query(q, QueryOptions{Inflight: reg})
	cached.Query(q, QueryOptions{Inflight: reg}) // exact-subgraph cache hit
	if cached.Hits == 0 {
		t.Fatal("second identical query did not hit the cache")
	}
	if reg.Len() != 0 {
		t.Fatalf("%d handles leaked through the cache-hit path", reg.Len())
	}
}

// TestRemoteCancelHaltsParallelQuery is the tentpole's acceptance test at
// the engine level: a query that would otherwise run (effectively)
// forever is stopped by Registry.Cancel — delivered through the handle's
// merged cancel channel — returns a cancelled result, and the worker pool
// quiesces. The odd-cycle-vs-bipartite wall makes the outcome
// deterministic: the query cannot finish naturally, so the cancellation
// is always what ends it.
func TestRemoteCancelHaltsParallelQuery(t *testing.T) {
	db := graph.NewDatabase([]*graph.Graph{wallGraph(16)})
	q := oddCycleQuery(9)
	reg := inflight.NewRegistry(8)

	for name, eng := range map[string]Engine{
		"CFQL-parallel": NewParallelCFQL(3),
		"CFQL":          NewCFQL(),
	} {
		if err := eng.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		baseline := runtime.NumGoroutine()
		done := make(chan *Result, 1)
		go func() { done <- eng.Query(q, QueryOptions{Inflight: reg, Workers: 3}) }()

		// Wait until the query is visibly live and has flushed enumeration
		// progress — proof the handle's counters move while it runs.
		var id uint64
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("%s: query never became visible with progress", name)
			}
			snaps := reg.Snapshot()
			if len(snaps) == 1 && snaps[0].Steps > 0 {
				id = snaps[0].ID
				if snaps[0].Engine != eng.Name() {
					t.Fatalf("%s: handle engine = %q", name, snaps[0].Engine)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}

		if !reg.Cancel(id) {
			t.Fatalf("%s: Cancel(%d) found no live query", name, id)
		}
		select {
		case res := <-done:
			if !res.Cancelled || !res.TimedOut {
				t.Fatalf("%s: Cancelled=%v TimedOut=%v after remote cancel, want both true",
					name, res.Cancelled, res.TimedOut)
			}
			if len(res.Answers) != 0 {
				t.Fatalf("%s: odd cycle matched in a bipartite graph: %v", name, res.Answers)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s: query did not halt after remote cancellation", name)
		}
		if reg.Len() != 0 {
			t.Fatalf("%s: %d handles leaked after cancelled query", name, reg.Len())
		}
		waitGoroutines(t, baseline)
	}
}

// TestCallerHandlePreempts: a caller-registered handle (the server path)
// is reused rather than re-registered, and the caller keeps ownership of
// deregistration.
func TestCallerHandlePreempts(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	db := randomDB(r, 8, 8, 2)
	q := walkQuery(r, db.Graph(0), 3)
	reg := inflight.NewRegistry(8)
	h := reg.Register(inflight.RegisterOptions{Engine: "caller", Verdict: "ok"})

	eng := NewCFQL()
	if err := eng.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	res := eng.Query(q, QueryOptions{Inflight: reg, Handle: h})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	registered, _, _ := reg.Stats()
	if registered != 1 {
		t.Fatalf("engine re-registered a caller-provided handle: registered=%d", registered)
	}
	if reg.Len() != 1 {
		t.Fatal("engine deregistered a caller-owned handle")
	}
	snaps := reg.Snapshot()
	if len(snaps) != 1 || snaps[0].GraphsDone == 0 {
		t.Fatalf("caller handle saw no progress: %+v", snaps)
	}
	reg.Deregister(h)
}
