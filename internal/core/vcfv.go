package core

import (
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// vcFV is the vertex connectivity based filtering-verification engine of
// Algorithm 2: for every data graph, the Filter function (the preprocessing
// phase of the integrated subgraph matching algorithm) builds candidate
// vertex sets; graphs with no empty set form C(q) and are verified by the
// enumeration phase stopped at the first subgraph isomorphism.
type vcFV struct {
	name string
	// filter receives the per-pass FilterOptions — the query deadline, the
	// (possibly nil) Explain and the per-query Scratch arena — so the
	// matching layer can abort on timeout, record per-stage candidate
	// counts, and run allocation-free; with a nil Explain it must behave
	// exactly like the plain filter. order receives the same arena.
	filter func(q, g *graph.Graph, opts matching.FilterOptions) *matching.Candidates
	order  func(q, g *graph.Graph, cand *matching.Candidates, s *matching.Scratch) []graph.VertexID

	db *graph.Database
}

// NewCFL returns the vcFV engine that integrates CFL [1]: CFL's
// preprocessing as Filter and CFL's path-based enumeration as Verify.
func NewCFL() Engine {
	return &vcFV{
		name:   "CFL",
		filter: matching.CFLFilter,
		order:  matching.CFLOrderScratch,
	}
}

// NewGraphQL returns the vcFV engine that integrates GraphQL [14]:
// GraphQL's preprocessing as Filter and its join-based enumeration as
// Verify.
func NewGraphQL() Engine {
	return &vcFV{
		name:   "GraphQL",
		filter: matching.GraphQLFilter,
		order: func(q, g *graph.Graph, cand *matching.Candidates, s *matching.Scratch) []graph.VertexID {
			return matching.GraphQLOrderScratch(q, cand, s)
		},
	}
}

// NewCFQL returns the paper's hybrid vcFV engine: CFL's Filter (faster)
// with GraphQL's join-based Verify (more robust), §III-B.
func NewCFQL() Engine {
	return &vcFV{
		name:   "CFQL",
		filter: matching.CFLFilter,
		order: func(q, g *graph.Graph, cand *matching.Candidates, s *matching.Scratch) []graph.VertexID {
			return matching.GraphQLOrderScratch(q, cand, s)
		},
	}
}

// Name implements Engine.
func (e *vcFV) Name() string { return e.name }

// Build implements Engine; vcFV engines build nothing (index-free).
func (e *vcFV) Build(db *graph.Database, _ BuildOptions) error {
	e.db = db
	return nil
}

// IndexMemory implements Engine: a vcFV engine keeps no index.
func (e *vcFV) IndexMemory() int64 { return 0 }

// Query implements Engine.
func (e *vcFV) Query(q *graph.Graph, opts QueryOptions) (res *Result) {
	fp := fingerprintQuery(q, &opts)
	if r, done := degenerate(q); done {
		r.Fingerprint = fp
		return r
	}
	res = &Result{Fingerprint: fp}
	o := opts.Observer
	defer queryGuard(e.name, o, res)
	h, untrack := trackInflight(e.name, &opts)
	defer untrack()
	h.SetPhase(inflight.PhaseFused)
	h.SetGraphsTotal(e.db.Len())
	ex := opts.Explain
	ex.SetEngine(e.name)
	// One arena for the whole query: candidate storage, filter scratch and
	// enumeration buffers are reused across every data graph, so the loop
	// body below allocates nothing in steady state.
	s := matching.AcquireScratch()
	defer matching.ReleaseScratch(s)

	// step runs the fused filter/verify pipeline for one data graph behind
	// its own panic boundary: a panicking graph is skipped (qe non-nil)
	// and the query continues; stop halts the whole query (deadline or
	// cancellation hit mid-pass).
	step := func(gid int) (qe *QueryError, stop bool) {
		defer graphGuard(e.name, gid, o, &qe)
		g := e.db.Graph(gid)

		t0 := time.Now()
		cand := e.filter(q, g, matching.FilterOptions{
			Deadline:     opts.Deadline,
			Cancel:       opts.Cancel,
			MemoryBudget: opts.MemoryBudget,
			Explain:      ex,
			Scratch:      s,
		})
		res.FilterTime += time.Since(t0)
		if cand.BudgetExceeded {
			// Skip this graph with a budget error; the remaining graphs
			// may still fit.
			return newBudgetError(e.name, gid, opts.MemoryBudget), false
		}
		if cand.Aborted {
			// The filter hit the query deadline (or cancellation) mid-pass;
			// its sets prove nothing about this graph, so stop with a
			// partial answer set.
			noteAbort(&opts, res)
			return nil, true
		}
		pass := q.NumVertices() > 0 && !cand.AnyEmpty()
		if !pass {
			return nil, false
		}
		res.Candidates++
		h.AddCandidates(1)
		if m := cand.MemoryFootprint(); m > res.AuxMemory {
			res.AuxMemory = m
			h.GrowAux(m)
		}

		t1 := time.Now()
		order := e.order(q, g, cand, s)
		observeOrder(ex, order, cand)
		r, err := matching.Enumerate(q, g, cand, order, matching.Options{
			Limit:      1,
			Deadline:   opts.Deadline,
			Cancel:     opts.Cancel,
			StepBudget: opts.StepBudgetPerGraph,
			Scratch:    s,
			Progress:   h.StepCounter(),
		})
		dv := time.Since(t1)
		res.VerifyTime += dv
		if err != nil {
			// Orders from the built-in strategies are always valid for
			// connected queries; surface misuse loudly.
			panic(err)
		}
		if o != nil {
			o.ObserveVerify(gid, r.Steps, dv, r.Found())
		}
		ex.ObserveEnumerate(r.Jumps, r.Redos, r.ProbeIsects, r.MergeIsects)
		res.VerifySteps += r.Steps
		if r.Aborted {
			noteAbort(&opts, res)
		}
		if r.Found() {
			res.Answers = append(res.Answers, gid)
			h.AddAnswers(1)
		}
		return nil, false
	}

	for gid := 0; gid < e.db.Len(); gid++ {
		if halt(&opts, res) {
			break
		}
		qe, stop := step(gid)
		if qe != nil {
			recordGraphError(res, qe)
		}
		if stop {
			break
		}
		h.GraphDone()
	}
	if o != nil {
		o.ObservePhase(obs.PhaseFilter, res.FilterTime)
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
