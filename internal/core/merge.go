package core

import (
	"fmt"
	"sort"
)

// This file holds the Result-merging helpers of the scatter-gather tier
// (internal/cluster): a coordinator fans one query out to N disjoint
// database partitions, each shard returns a partial *Result in its own
// global graph ids, and MergeResults folds them into the single Result
// the caller sees. The helpers live in core, next to the Result type,
// because they encode the type's own semantics — what is additive, what
// is a critical path, what ORs — not anything about transports.

// MergeResults folds per-shard partial results into one. The parts must
// cover disjoint graph-id partitions (answers are concatenated and
// sorted, never deduplicated). nil entries are skipped, so callers can
// pass a fixed-size slice with holes for shards that returned nothing.
//
// Field semantics:
//
//   - Answers: sorted union (disjoint partitions cannot overlap);
//   - Candidates, VerifySteps, Skipped, AuxMemory: sums — each shard did
//     its own work and held its own memory concurrently, and the paper's
//     metrics stay database-wide totals;
//   - FilterTime, VerifyTime: element-wise maxima — the shards ran in
//     parallel, so the slowest shard's phase time is the critical path
//     the caller actually waited for (summing would report N× the
//     wall-clock on a balanced cluster);
//   - TimedOut, Cancelled, Degraded: ORs — one shard hitting its budget
//     makes the merged answer set a lower bound;
//   - GraphErrors: concatenation, in part order, deliberately NOT capped
//     here. The coordinator appends its own KindShard entries for lost
//     partitions first and then applies the cap exactly once via
//     CapGraphErrors, so the cap cannot silently eat the most important
//     errors (GraphErrorsTruncated sums are carried through);
//   - Err: set only when every part failed at the engine boundary (the
//     first such error is kept) — if any shard produced a usable partial
//     result the merged result is usable, and per-shard failures are the
//     coordinator's degradation path, not a query failure;
//   - Fingerprint: the first non-zero (all parts ran the same query).
func MergeResults(parts []*Result) *Result {
	merged := &Result{}
	live, failed := 0, 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		live++
		if p.Err != nil {
			failed++
			if merged.Err == nil {
				merged.Err = p.Err
			}
		}
		merged.Answers = append(merged.Answers, p.Answers...)
		merged.Candidates += p.Candidates
		merged.VerifySteps += p.VerifySteps
		merged.Skipped += p.Skipped
		merged.AuxMemory += p.AuxMemory
		if p.FilterTime > merged.FilterTime {
			merged.FilterTime = p.FilterTime
		}
		if p.VerifyTime > merged.VerifyTime {
			merged.VerifyTime = p.VerifyTime
		}
		merged.TimedOut = merged.TimedOut || p.TimedOut
		merged.Cancelled = merged.Cancelled || p.Cancelled
		merged.Degraded = merged.Degraded || p.Degraded
		merged.GraphErrors = append(merged.GraphErrors, p.GraphErrors...)
		merged.GraphErrorsTruncated += p.GraphErrorsTruncated
		if merged.Fingerprint == 0 {
			merged.Fingerprint = p.Fingerprint
		}
	}
	if failed < live {
		merged.Err = nil
	}
	sort.Ints(merged.Answers)
	return merged
}

// CapGraphErrors enforces the per-result GraphErrors cap after a merge:
// entries beyond maxGraphErrors are dropped and counted in
// GraphErrorsTruncated instead of disappearing silently. The coordinator
// calls it exactly once, after appending its own shard-loss entries, so
// the cap holds on the wire no matter how many shards contributed.
// Idempotent: a result already within the cap is unchanged.
func (r *Result) CapGraphErrors() {
	if over := len(r.GraphErrors) - maxGraphErrors; over > 0 {
		r.GraphErrorsTruncated += over
		r.GraphErrors = r.GraphErrors[:maxGraphErrors:maxGraphErrors]
	}
}

// NewShardError builds the KindShard QueryError naming a partition lost
// at the scatter-gather tier: the shard id, how many graphs its loss
// removed from consideration, and the final transport error. graphs is
// the lost partition's global graph-id list (only its bounds and size
// are reported; a partition can hold millions of ids).
func NewShardError(engine string, shard int, graphs []int, cause error) *QueryError {
	span := ""
	if len(graphs) > 0 {
		span = fmt.Sprintf(" (ids %d..%d)", graphs[0], graphs[len(graphs)-1])
	}
	msg := fmt.Sprintf("shard %d lost: %d graphs unreachable%s", shard, len(graphs), span)
	if cause != nil {
		msg += ": " + cause.Error()
	}
	return &QueryError{
		Engine:  engine,
		Kind:    KindShard,
		GraphID: -1,
		Shard:   shard,
		Message: msg,
		value:   cause,
	}
}
