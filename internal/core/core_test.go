package core

import (
	"math/rand"
	"testing"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
)

// allEngines returns fresh instances of every engine configuration, keyed
// by the paper's algorithm names (Table III) plus the naive scan baseline.
func allEngines() map[string]Engine {
	return map[string]Engine{
		"Grapes":        NewGrapes(),
		"GGSX":          NewGGSX(),
		"CT-Index":      NewCTIndex(),
		"CFL":           NewCFL(),
		"GraphQL":       NewGraphQL(),
		"CFQL":          NewCFQL(),
		"vcGrapes":      NewVcGrapes(),
		"vcGGSX":        NewVcGGSX(),
		"Scan-VF2":      NewScan(),
		"TurboIso":      NewTurboIso(),
		"CFQL-parallel": NewParallelCFQL(3),
		"GraphGrep":     NewGraphGrep(),
		"gIndex":        NewGIndex(),
		"TreePi":        NewTreePi(),
		"FG-Index":      NewFGIndex(),
		"CFQL+cache":    NewCached(NewCFQL(), 8),
	}
}

func randomConnected(r *rand.Rand, n, extra, labels int) *graph.Graph {
	lab := make([]graph.Label, n)
	for i := range lab {
		lab[i] = graph.Label(r.Intn(labels))
	}
	seen := map[[2]graph.VertexID]bool{}
	var edges []graph.Edge
	add := func(u, v graph.VertexID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]graph.VertexID{u, v}] {
			seen[[2]graph.VertexID{u, v}] = true
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	for v := 1; v < n; v++ {
		add(graph.VertexID(r.Intn(v)), graph.VertexID(v))
	}
	for i := 0; i < extra; i++ {
		add(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
	}
	return graph.MustFromEdges(lab, edges)
}

func walkQuery(r *rand.Rand, g *graph.Graph, qEdges int) *graph.Graph {
	start := graph.VertexID(r.Intn(g.NumVertices()))
	ids := map[graph.VertexID]graph.VertexID{start: 0}
	labels := []graph.Label{g.Label(start)}
	seen := map[[2]graph.VertexID]bool{}
	var edges []graph.Edge
	cur := start
	for steps := 0; len(edges) < qEdges && steps < 20*qEdges+40; steps++ {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		next := nbrs[r.Intn(len(nbrs))]
		a, b := cur, next
		if a > b {
			a, b = b, a
		}
		if !seen[[2]graph.VertexID{a, b}] {
			seen[[2]graph.VertexID{a, b}] = true
			if _, ok := ids[next]; !ok {
				ids[next] = graph.VertexID(len(labels))
				labels = append(labels, g.Label(next))
			}
			edges = append(edges, graph.Edge{U: ids[cur], V: ids[next]})
		}
		cur = next
	}
	if len(edges) == 0 {
		return graph.MustFromEdges([]graph.Label{g.Label(start)}, nil)
	}
	return graph.MustFromEdges(labels, edges)
}

func randomDB(r *rand.Rand, n, size, labels int) *graph.Database {
	gs := make([]*graph.Graph, n)
	for i := range gs {
		gs[i] = randomConnected(r, 2+r.Intn(size), r.Intn(size), labels)
	}
	return graph.NewDatabase(gs)
}

func trueAnswers(db *graph.Database, q *graph.Graph) []int {
	var out []int
	for i := 0; i < db.Len(); i++ {
		if (&matching.VF2{}).FindFirst(q, db.Graph(i), matching.Options{}).Found() {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllEnginesAgree is the end-to-end correctness test: every engine in
// all three categories must return exactly the true answer set.
func TestAllEnginesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		db := randomDB(r, 10+r.Intn(8), 9, 1+r.Intn(3))
		engines := allEngines()
		for name, e := range engines {
			if err := e.Build(db, BuildOptions{}); err != nil {
				t.Fatalf("%s build: %v", name, err)
			}
		}
		for k := 0; k < 5; k++ {
			var q *graph.Graph
			if k%2 == 0 {
				q = walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(5))
			} else {
				q = randomConnected(r, 2+r.Intn(4), r.Intn(3), 2)
			}
			want := trueAnswers(db, q)
			for name, e := range engines {
				res := e.Query(q, QueryOptions{})
				if res.TimedOut {
					t.Fatalf("trial %d: %s timed out without a deadline", trial, name)
				}
				if !equalInts(res.Answers, want) {
					t.Fatalf("trial %d query %d: %s answered %v, want %v",
						trial, k, name, res.Answers, want)
				}
			}
		}
	}
}

// TestEmptyQueryUniformSemantics: the degenerate empty query yields an
// empty result from every engine (a connected query graph is non-empty by
// §II-A; engines must not diverge on the corner case).
func TestEmptyQueryUniformSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := randomDB(r, 6, 7, 2)
	empty := graph.MustFromEdges(nil, nil)
	for name, e := range allEngines() {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		res := e.Query(empty, QueryOptions{})
		if len(res.Answers) != 0 || res.Candidates != 0 {
			t.Errorf("%s: empty query produced %d answers, %d candidates",
				name, len(res.Answers), res.Candidates)
		}
	}
}

// TestCandidatesSupersetAnswers: |C(q)| >= |A(q)| for every engine, and
// candidates reported are consistent with metrics.
func TestCandidatesSupersetAnswers(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	db := randomDB(r, 12, 9, 2)
	for name, e := range allEngines() {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		for k := 0; k < 5; k++ {
			q := walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(4))
			res := e.Query(q, QueryOptions{})
			if res.Candidates < len(res.Answers) {
				t.Errorf("%s: %d candidates < %d answers", name, res.Candidates, len(res.Answers))
			}
		}
	}
}

func TestResultContains(t *testing.T) {
	res := &Result{Answers: []int{1, 4, 9}}
	for _, id := range []int{1, 4, 9} {
		if !res.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []int{0, 2, 10} {
		if res.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
	if (&Result{}).Contains(0) {
		t.Error("empty result should contain nothing")
	}
}

func TestQueryTimeSumsPhases(t *testing.T) {
	res := &Result{FilterTime: 3 * time.Millisecond, VerifyTime: 5 * time.Millisecond}
	if res.QueryTime() != 8*time.Millisecond {
		t.Errorf("QueryTime = %v, want 8ms", res.QueryTime())
	}
}

// TestVcFVIndexFree: vcFV engines report zero index memory and tolerate
// database updates without a rebuild — the paper's index-update advantage.
func TestVcFVIndexFree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db := randomDB(r, 8, 8, 2)
	for _, mk := range []func() Engine{NewCFL, NewGraphQL, NewCFQL} {
		e := mk()
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatal(err)
		}
		if e.IndexMemory() != 0 {
			t.Errorf("%s: IndexMemory = %d, want 0", e.Name(), e.IndexMemory())
		}
		// Append a graph; the engine must see it with no rebuild.
		extra := randomConnected(r, 6, 4, 2)
		newID := db.Append(extra)
		q := walkQuery(r, extra, 2)
		res := e.Query(q, QueryOptions{})
		if !res.Contains(newID) {
			t.Errorf("%s: freshly appended graph %d missing from answers %v",
				e.Name(), newID, res.Answers)
		}
	}
}

// TestIFVIndexMemoryPositive: index-based engines report their footprint.
func TestIFVIndexMemoryPositive(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	db := randomDB(r, 8, 8, 2)
	for _, mk := range []func() Engine{NewGrapes, NewGGSX, NewCTIndex, NewVcGrapes, NewVcGGSX} {
		e := mk()
		if e.IndexMemory() != 0 {
			t.Errorf("%s: IndexMemory before Build = %d, want 0", e.Name(), e.IndexMemory())
		}
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatal(err)
		}
		if e.IndexMemory() <= 0 {
			t.Errorf("%s: IndexMemory = %d, want > 0", e.Name(), e.IndexMemory())
		}
	}
}

// TestBuildBudgetPropagates: index construction budgets surface as errors
// (the harness turns them into OOT cells).
func TestBuildBudgetPropagates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	db := randomDB(r, 10, 10, 2)
	for _, mk := range []func() Engine{NewGrapes, NewGGSX, NewCTIndex, NewVcGrapes, NewVcGGSX} {
		e := mk()
		if err := e.Build(db, BuildOptions{MaxFeatures: 5}); err == nil {
			t.Errorf("%s: Build with MaxFeatures=5 succeeded, want budget error", e.Name())
		}
	}
}

// TestQueryDeadline: an expired deadline yields TimedOut quickly.
func TestQueryDeadline(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	db := randomDB(r, 10, 8, 2)
	q := walkQuery(r, db.Graph(0), 3)
	for name, e := range allEngines() {
		if name == "FG-Index" {
			// FG-Index may answer small queries verification-free — no
			// work to time out on.
			continue
		}
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		res := e.Query(q, QueryOptions{Deadline: time.Now().Add(-time.Second)})
		if !res.TimedOut {
			// Engines whose filtering empties the candidate set may finish
			// legitimately; only flag when work was actually done.
			if res.Candidates > 0 && len(res.Answers) > 0 {
				t.Errorf("%s: expired deadline, but TimedOut=false with %d answers",
					name, len(res.Answers))
			}
		}
	}
}

// TestStepBudgetMarksTimeout: exploding verification is cut off per graph.
func TestStepBudgetMarksTimeout(t *testing.T) {
	// One pathological data graph: a 12-clique, single label; query: a
	// 5-clique. Filtering cannot rule it out; verification would explode
	// without a budget... but finding the *first* embedding in a clique is
	// actually easy, so use a near-clique with the query slightly
	// non-embeddable: query 5-clique, data = 12-clique minus enough edges
	// to kill all 5-cliques is hard to construct; instead give the query a
	// label pattern absent from the data only at the last position.
	n := 12
	labels := make([]graph.Label, n)
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	g := graph.MustFromEdges(labels, edges)
	db := graph.NewDatabase([]*graph.Graph{g})

	// Query: 5-clique plus a pendant vertex with a label that exists
	// nowhere — no, that would be filtered. Use a 5-clique plus pendant
	// with label 0 but degree constraints satisfiable; the 5-clique query
	// has 120 embeddings per vertex set, so FindFirst is fast. To force
	// budget use, use a 6-vertex query that is NOT a subgraph: a 6-clique
	// needs 15 edges; remove one data edge from every 6-subset is not
	// feasible. Instead: query = 6-clique, data = complete 12-graph minus
	// a perfect matching (every 6 vertices contain a missing edge? no...).
	//
	// Simplest robust construction: data = complete tripartite-ish graph
	// with no triangle; query = triangle. Every pair from different parts
	// is connected; triangles exist in tripartite graphs, so use bipartite:
	// complete bipartite K6,6 has no triangles, but VF2 must search to
	// prove it.
	var bedges []graph.Edge
	for i := 0; i < 6; i++ {
		for j := 6; j < 12; j++ {
			bedges = append(bedges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	bip := graph.MustFromEdges(make([]graph.Label, 12), bedges)
	db = graph.NewDatabase([]*graph.Graph{bip})
	tri := graph.MustFromEdges(make([]graph.Label, 3),
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})

	e := NewScan()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	res := e.Query(tri, QueryOptions{StepBudgetPerGraph: 3})
	if !res.TimedOut {
		t.Errorf("StepBudgetPerGraph=3 on K6,6 triangle search: TimedOut=false (steps=%d)",
			res.VerifySteps)
	}
	if len(res.Answers) != 0 {
		t.Errorf("triangle reported in bipartite graph: %v", res.Answers)
	}
}

// TestParallelVerificationMatchesSequential: Grapes with 1 and 6 workers
// must agree.
func TestParallelVerificationMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := randomDB(r, 20, 8, 2)
	e := NewGrapes()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(4))
		seq := e.Query(q, QueryOptions{Workers: 1})
		par := e.Query(q, QueryOptions{Workers: 6})
		if !equalInts(seq.Answers, par.Answers) {
			t.Fatalf("parallel answers %v != sequential %v", par.Answers, seq.Answers)
		}
		if seq.Candidates != par.Candidates {
			t.Fatalf("parallel candidates %d != sequential %d", par.Candidates, seq.Candidates)
		}
	}
}

// TestAuxMemoryReported: vcFV engines report candidate-set memory on
// queries with candidates.
func TestAuxMemoryReported(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	db := randomDB(r, 8, 8, 2)
	e := NewCFQL()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 2)
	res := e.Query(q, QueryOptions{})
	if res.Candidates > 0 && res.AuxMemory <= 0 {
		t.Errorf("AuxMemory = %d with %d candidates", res.AuxMemory, res.Candidates)
	}
}

// TestEngineNames: names match the paper's Table III.
func TestEngineNames(t *testing.T) {
	want := map[string]func() Engine{
		"Grapes": NewGrapes, "GGSX": NewGGSX, "CT-Index": NewCTIndex,
		"CFL": NewCFL, "GraphQL": NewGraphQL, "CFQL": NewCFQL,
		"vcGrapes": NewVcGrapes, "vcGGSX": NewVcGGSX, "Scan-VF2": NewScan,
	}
	for name, mk := range want {
		if got := mk().Name(); got != name {
			t.Errorf("engine name = %q, want %q", got, name)
		}
	}
}
