package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestParallelCFQLMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	db := randomDB(r, 30, 9, 2)
	seq := NewCFQL()
	par := NewParallelCFQL(4)
	if err := seq.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := par.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(5))
		a := seq.Query(q, QueryOptions{})
		b := par.Query(q, QueryOptions{})
		if !equalInts(a.Answers, b.Answers) {
			t.Fatalf("parallel answers %v != sequential %v", b.Answers, a.Answers)
		}
		if a.Candidates != b.Candidates {
			t.Fatalf("parallel candidates %d != sequential %d", b.Candidates, a.Candidates)
		}
	}
	if par.IndexMemory() != 0 {
		t.Error("parallel vcFV should be index-free")
	}
	if par.Name() != "CFQL-parallel" {
		t.Errorf("Name = %q", par.Name())
	}
}

func TestParallelCFQLWorkersOption(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	db := randomDB(r, 12, 8, 2)
	e := NewParallelCFQL(0) // 0 selects the default pool
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 3)
	a := e.Query(q, QueryOptions{Workers: 1})
	b := e.Query(q, QueryOptions{Workers: 8})
	if !equalInts(a.Answers, b.Answers) {
		t.Fatalf("answers differ across worker counts: %v vs %v", a.Answers, b.Answers)
	}
}

func TestParallelCFQLDeadline(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	db := randomDB(r, 20, 8, 2)
	e := NewParallelCFQL(4)
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 3)
	res := e.Query(q, QueryOptions{Deadline: time.Now().Add(-time.Second)})
	if !res.TimedOut {
		t.Error("expired deadline should mark TimedOut")
	}
}
