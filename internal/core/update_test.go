package core

import (
	"math/rand"
	"testing"
)

// TestAppendGraphKeepsEnginesCorrect: after incremental appends, every
// Updatable engine must answer queries over the extended database exactly
// like a freshly built engine.
func TestAppendGraphKeepsEnginesCorrect(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	base := randomDB(r, 10, 8, 2)
	extras := make([]int, 0)

	engines := allEngines()
	for name, e := range engines {
		if err := e.Build(base, BuildOptions{}); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
	}

	// Each engine needs its own database copy (Append mutates), so rebuild
	// per engine over a private copy.
	for name, e := range engines {
		if name == "gIndex" || name == "TreePi" || name == "FG-Index" {
			continue // refuse incremental appends (mining-based)
		}
		u, ok := e.(Updatable)
		if !ok {
			continue
		}
		db := randomDB(r, 0, 8, 2) // empty shell
		for i := 0; i < base.Len(); i++ {
			db.Append(base.Graph(i))
		}
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s rebuild: %v", name, err)
		}
		for k := 0; k < 4; k++ {
			g := randomConnected(r, 6+r.Intn(6), r.Intn(8), 2)
			gid, err := u.AppendGraph(g)
			if err != nil {
				t.Fatalf("%s append: %v", name, err)
			}
			extras = append(extras, gid)
			// A query drawn from the appended graph must find it.
			q := walkQuery(r, g, 2)
			res := e.Query(q, QueryOptions{})
			if !res.Contains(gid) {
				t.Fatalf("%s: appended graph %d missing from answers %v", name, gid, res.Answers)
			}
			// Cross-check the full answer set against ground truth.
			want := trueAnswers(db, q)
			if !equalInts(res.Answers, want) {
				t.Fatalf("%s after append: answers %v, want %v", name, res.Answers, want)
			}
		}
	}
	_ = extras
}

// TestUpdatableCoverage documents which engines support incremental
// appends: all index-free engines and the enumeration-based indexes; the
// mining-based gIndex must rebuild.
func TestUpdatableCoverage(t *testing.T) {
	updatable := map[string]bool{
		"CFL": true, "GraphQL": true, "CFQL": true, "CFQL-parallel": true,
		"TurboIso": true, "Scan-VF2": true,
		"Grapes": true, "GGSX": true, "CT-Index": true, "GraphGrep": true,
		"vcGrapes": true, "vcGGSX": true, "CFQL+cache": true,
		// Mining-based: implement the interface but refuse at runtime.
		"gIndex": true, "TreePi": true, "FG-Index": true,
	}
	r := rand.New(rand.NewSource(113))
	db := randomDB(r, 5, 6, 2)
	for name, e := range allEngines() {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		u, ok := e.(Updatable)
		if ok != updatable[name] {
			t.Errorf("%s: Updatable = %v, want %v", name, ok, updatable[name])
			continue
		}
		if !ok {
			continue
		}
		g := randomConnected(r, 5, 3, 2)
		_, err := u.AppendGraph(g)
		if name == "gIndex" || name == "TreePi" || name == "FG-Index" {
			if err == nil {
				t.Errorf("%s should refuse incremental appends", name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: AppendGraph failed: %v", name, err)
		}
	}
}
