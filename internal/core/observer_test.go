package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// countingObserver accumulates emitted telemetry for assertions. It is
// mutex-guarded because parallel engines emit from worker goroutines.
type countingObserver struct {
	mu          sync.Mutex
	phase       map[string]time.Duration
	events      int
	found       int
	eventGraphs map[int]bool
	hits, miss  int
	workers     int
	panics      int
	fingerprint uint64
}

func newCountingObserver() *countingObserver {
	return &countingObserver{phase: map[string]time.Duration{}, eventGraphs: map[int]bool{}}
}

func (c *countingObserver) ObservePhase(name string, d time.Duration) {
	c.mu.Lock()
	c.phase[name] += d
	c.mu.Unlock()
}

func (c *countingObserver) ObserveVerify(graphID int, steps uint64, d time.Duration, found bool) {
	c.mu.Lock()
	c.events++
	if found {
		c.found++
	}
	c.eventGraphs[graphID] = true
	c.mu.Unlock()
}

func (c *countingObserver) ObserveWorkers(n int) {
	c.mu.Lock()
	c.workers = n
	c.mu.Unlock()
}

func (c *countingObserver) ObserveFingerprint(fp uint64) {
	c.mu.Lock()
	c.fingerprint = fp
	c.mu.Unlock()
}

func (c *countingObserver) ObservePanic(int) {
	c.mu.Lock()
	c.panics++
	c.mu.Unlock()
}

func (c *countingObserver) ObserveCache(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.miss++
	}
	c.mu.Unlock()
}

// TestObserverEmissions runs every engine with an observer attached and
// checks the streamed telemetry against the Result it accompanies: phase
// totals equal the Result's own FilterTime/VerifyTime, and answers are a
// subset of the graphs whose verification events reported found.
func TestObserverEmissions(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	db := randomDB(r, 30, 8, 3)
	queries := make([]*graph.Graph, 0, 4)
	for i := 0; i < 4; i++ {
		queries = append(queries, walkQuery(r, db.Graph(r.Intn(db.Len())), 3))
	}

	for name, e := range allEngines() {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		for qi, q := range queries {
			o := newCountingObserver()
			res := e.Query(q, QueryOptions{Observer: o, Workers: 3})
			if res.TimedOut {
				continue
			}
			o.mu.Lock()
			filter, verify := o.phase[obs.PhaseFilter], o.phase[obs.PhaseVerify]
			events, found := o.events, o.found
			o.mu.Unlock()

			// Phase spans carry the engine's own measurements, so they
			// must match the Result exactly — not approximately.
			if filter != res.FilterTime {
				t.Errorf("%s q%d: filter span %v != FilterTime %v", name, qi, filter, res.FilterTime)
			}
			if verify != res.VerifyTime {
				t.Errorf("%s q%d: verify span %v != VerifyTime %v", name, qi, verify, res.VerifyTime)
			}
			// One verification event per SI test. Most engines test each
			// candidate exactly once; the cached engine may skip candidates
			// confirmed by a cached supergraph, and FG-Index answers exact
			// queries straight from the index with no verification at all.
			if events > res.Candidates {
				t.Errorf("%s q%d: %d verify events > %d candidates", name, qi, events, res.Candidates)
			}
			skipsVerification := name == "CFQL+cache" || name == "FG-Index"
			if !skipsVerification && events != res.Candidates {
				t.Errorf("%s q%d: %d verify events, want %d candidates", name, qi, events, res.Candidates)
			}
			if found > len(res.Answers) {
				t.Errorf("%s q%d: %d found events > %d answers", name, qi, found, len(res.Answers))
			}
			for _, id := range res.Answers {
				o.mu.Lock()
				seen := o.eventGraphs[id]
				o.mu.Unlock()
				if events == res.Candidates && !seen {
					t.Errorf("%s q%d: answer %d has no verification event", name, qi, id)
				}
			}
		}
	}
}

// TestObserverCacheEvents: the cached engine reports a miss on first
// sight of a query and a hit on the repeat.
func TestObserverCacheEvents(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	db := randomDB(r, 20, 8, 3)
	e := NewCached(NewCFQL(), 8)
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 3)

	o1 := newCountingObserver()
	first := e.Query(q, QueryOptions{Observer: o1})
	if o1.miss != 1 || o1.hits != 0 {
		t.Errorf("first query: %d misses %d hits, want 1 miss", o1.miss, o1.hits)
	}

	o2 := newCountingObserver()
	second := e.Query(q, QueryOptions{Observer: o2})
	if o2.hits != 1 || o2.miss != 0 {
		t.Errorf("second query: %d hits %d misses, want 1 hit", o2.hits, o2.miss)
	}
	if len(first.Answers) != len(second.Answers) {
		t.Errorf("cached answers differ: %d vs %d", len(first.Answers), len(second.Answers))
	}
}

// benchQuery prepares a built engine and query for the observer
// benchmarks.
func benchQuery(b *testing.B) (Engine, *graph.Graph) {
	b.Helper()
	r := rand.New(rand.NewSource(41))
	db := randomDB(r, 50, 10, 3)
	e := NewCFQL()
	if err := e.Build(db, BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	return e, walkQuery(r, db.Graph(2), 4)
}

// BenchmarkQueryNoObserver is the baseline for the disabled-path overhead
// claim: compare against BenchmarkQueryWithObserver.
func BenchmarkQueryNoObserver(b *testing.B) {
	e, q := benchQuery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Query(q, QueryOptions{})
	}
}

func BenchmarkQueryWithObserver(b *testing.B) {
	e, q := benchQuery(b)
	o := newCountingObserver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Query(q, QueryOptions{Observer: o})
	}
}

// TestObserverNilIsNoop: a nil Observer field must not change results.
func TestObserverNilIsNoop(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	db := randomDB(r, 20, 8, 3)
	e := NewCFQL()
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(1), 3)
	with := e.Query(q, QueryOptions{Observer: newCountingObserver()})
	without := e.Query(q, QueryOptions{})
	if len(with.Answers) != len(without.Answers) || with.Candidates != without.Candidates {
		t.Errorf("observer changed results: %d/%d answers, %d/%d candidates",
			len(with.Answers), len(without.Answers), with.Candidates, without.Candidates)
	}
}
