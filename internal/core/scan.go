package core

import (
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// scan is the naive baseline of §III-B's opening: run a subgraph
// isomorphism test (VF2, first match) against every data graph with no
// filtering at all. It doubles as the ground-truth oracle in tests and as
// the ablation baseline quantifying what filtering buys.
type scan struct {
	db *graph.Database
}

// NewScan returns the filter-less VF2 scan engine.
func NewScan() Engine { return &scan{} }

// Name implements Engine.
func (*scan) Name() string { return "Scan-VF2" }

// Build implements Engine.
func (e *scan) Build(db *graph.Database, _ BuildOptions) error {
	e.db = db
	return nil
}

// IndexMemory implements Engine.
func (*scan) IndexMemory() int64 { return 0 }

// Query implements Engine: every data graph is a candidate.
func (e *scan) Query(q *graph.Graph, opts QueryOptions) (res *Result) {
	fp := fingerprintQuery(q, &opts)
	if r, done := degenerate(q); done {
		r.Fingerprint = fp
		return r
	}
	res = &Result{Candidates: e.db.Len(), Fingerprint: fp}
	o := opts.Observer
	defer queryGuard("Scan-VF2", o, res)
	h, untrack := trackInflight("Scan-VF2", &opts)
	defer untrack()
	h.SetPhase(inflight.PhaseVerify)
	h.SetGraphsTotal(e.db.Len())
	h.AddCandidates(e.db.Len())
	opts.Explain.SetEngine("Scan-VF2")
	vf2 := &matching.VF2{}
	step := func(gid int) (r matching.Result, qe *QueryError) {
		defer graphGuard("Scan-VF2", gid, o, &qe)
		var tv time.Time
		if o != nil {
			tv = time.Now()
		}
		r = vf2.FindFirst(q, e.db.Graph(gid), matching.Options{
			Deadline:   opts.Deadline,
			Cancel:     opts.Cancel,
			StepBudget: opts.StepBudgetPerGraph,
			Progress:   h.StepCounter(),
		})
		if o != nil {
			o.ObserveVerify(gid, r.Steps, time.Since(tv), r.Found())
		}
		return r, nil
	}
	t0 := time.Now()
	for gid := 0; gid < e.db.Len(); gid++ {
		if halt(&opts, res) {
			break
		}
		r, qe := step(gid)
		h.GraphDone()
		if qe != nil {
			recordGraphError(res, qe)
			continue
		}
		res.VerifySteps += r.Steps
		if r.Aborted {
			noteAbort(&opts, res)
		}
		if r.Found() {
			res.Answers = append(res.Answers, gid)
			h.AddAnswers(1)
		}
	}
	res.VerifyTime = time.Since(t0)
	if o != nil {
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
