package core

import (
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// scan is the naive baseline of §III-B's opening: run a subgraph
// isomorphism test (VF2, first match) against every data graph with no
// filtering at all. It doubles as the ground-truth oracle in tests and as
// the ablation baseline quantifying what filtering buys.
type scan struct {
	db *graph.Database
}

// NewScan returns the filter-less VF2 scan engine.
func NewScan() Engine { return &scan{} }

// Name implements Engine.
func (*scan) Name() string { return "Scan-VF2" }

// Build implements Engine.
func (e *scan) Build(db *graph.Database, _ BuildOptions) error {
	e.db = db
	return nil
}

// IndexMemory implements Engine.
func (*scan) IndexMemory() int64 { return 0 }

// Query implements Engine: every data graph is a candidate.
func (e *scan) Query(q *graph.Graph, opts QueryOptions) *Result {
	if res, done := degenerate(q); done {
		return res
	}
	res := &Result{Candidates: e.db.Len()}
	o := opts.Observer
	opts.Explain.SetEngine("Scan-VF2")
	vf2 := &matching.VF2{}
	t0 := time.Now()
	for gid := 0; gid < e.db.Len(); gid++ {
		if expired(opts.Deadline) {
			res.TimedOut = true
			break
		}
		var tv time.Time
		if o != nil {
			tv = time.Now()
		}
		r := vf2.FindFirst(q, e.db.Graph(gid), matching.Options{
			Deadline:   opts.Deadline,
			StepBudget: opts.StepBudgetPerGraph,
		})
		if o != nil {
			o.ObserveVerify(gid, r.Steps, time.Since(tv), r.Found())
		}
		res.VerifySteps += r.Steps
		if r.Aborted {
			res.TimedOut = true
		}
		if r.Found() {
			res.Answers = append(res.Answers, gid)
		}
	}
	res.VerifyTime = time.Since(t0)
	if o != nil {
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
