package core

import (
	"sort"
	"sync"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/index"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// ivcFV is the integrated engine of §III-C: two levels of filtering — the
// index of an IFV algorithm first, then the vertex-connectivity filtering
// of CFQL (CFL's preprocessing) on the surviving graphs — followed by
// CFQL's verification (GraphQL's enumeration stopped at the first
// embedding). The paper instantiates vcGrapes and vcGGSX; CT-Index is
// excluded because its indexing fails on large datasets.
type ivcFV struct {
	name           string
	idx            index.Index
	defaultWorkers int

	db    *graph.Database
	built bool
}

// NewVcGrapes returns the vcGrapes IvcFV engine: Grapes' trie index plus
// CFQL filtering and verification, with Grapes' parallel configuration.
func NewVcGrapes() Engine {
	return &ivcFV{name: "vcGrapes", idx: &index.Grapes{}, defaultWorkers: 6}
}

// NewVcGGSX returns the vcGGSX IvcFV engine: GGSX's suffix-tree index plus
// CFQL filtering and verification.
func NewVcGGSX() Engine {
	return &ivcFV{name: "vcGGSX", idx: &index.GGSX{}}
}

// Name implements Engine.
func (e *ivcFV) Name() string { return e.name }

// Build implements Engine: constructs the underlying IFV index.
func (e *ivcFV) Build(db *graph.Database, opts BuildOptions) error {
	e.db = db
	e.built = false
	workers := opts.Workers
	if workers == 0 {
		workers = e.defaultWorkers
	}
	err := e.idx.Build(db, index.BuildOptions{
		Deadline:    opts.Deadline,
		MaxFeatures: opts.MaxFeatures,
		Workers:     workers,
	})
	if err != nil {
		return err
	}
	e.built = true
	return nil
}

// IndexMemory implements Engine.
func (e *ivcFV) IndexMemory() int64 {
	if !e.built {
		return 0
	}
	return e.idx.MemoryFootprint()
}

// Query implements Engine. The index filter yields C'(q); the
// vertex-connectivity filter (CFL preprocessing) then reduces it to C(q),
// whose members are verified by GraphQL's enumeration. Both filtering
// levels count toward FilterTime, per the paper's metric definition.
func (e *ivcFV) Query(q *graph.Graph, opts QueryOptions) *Result {
	if res, done := degenerate(q); done {
		return res
	}
	res := &Result{}
	o := opts.Observer
	ex := opts.Explain
	ex.SetEngine(e.name)

	t0 := time.Now()
	indexCand := filterIndex(e.idx, q, ex)
	res.FilterTime = time.Since(t0)
	if o != nil {
		// Sub-span of the filter phase: the index probe alone, so traces
		// can attribute filtering cost between the two levels.
		o.ObservePhase(obs.PhaseIndexFilter, res.FilterTime)
	}

	type job struct {
		gid  int
		cand *matching.Candidates
	}
	var verifyJobs []job

	// Level 2: vertex-connectivity filtering on the index survivors.
	for _, gid := range indexCand {
		if expired(opts.Deadline) {
			res.TimedOut = true
			break
		}
		g := e.db.Graph(gid)
		t1 := time.Now()
		cand := matching.CFLFilter(q, g, matching.FilterOptions{Deadline: opts.Deadline, Explain: ex})
		res.FilterTime += time.Since(t1)
		if cand.Aborted {
			// Deadline hit mid-filter: the sets prove nothing about this
			// graph, so stop with a partial answer set.
			res.TimedOut = true
			break
		}
		pass := q.NumVertices() > 0 && !cand.AnyEmpty()
		if !pass {
			continue
		}
		res.Candidates++
		if m := cand.MemoryFootprint(); m > res.AuxMemory {
			res.AuxMemory = m
		}
		verifyJobs = append(verifyJobs, job{gid, cand})
	}

	verify := func(j job) matching.Result {
		g := e.db.Graph(j.gid)
		order := matching.GraphQLOrder(q, j.cand)
		observeOrder(ex, order, j.cand)
		r, err := matching.Enumerate(q, g, j.cand, order, matching.Options{
			Limit:      1,
			Deadline:   opts.Deadline,
			StepBudget: opts.StepBudgetPerGraph,
		})
		if err != nil {
			panic(err)
		}
		return r
	}

	workers := opts.Workers
	if workers == 0 {
		workers = e.defaultWorkers
	}
	t2 := time.Now()
	if workers <= 1 {
		for _, j := range verifyJobs {
			if expired(opts.Deadline) {
				res.TimedOut = true
				break
			}
			var tv time.Time
			if o != nil {
				tv = time.Now()
			}
			r := verify(j)
			if o != nil {
				o.ObserveVerify(j.gid, r.Steps, time.Since(tv), r.Found())
			}
			res.VerifySteps += r.Steps
			if r.Aborted {
				res.TimedOut = true
			}
			if r.Found() {
				res.Answers = append(res.Answers, j.gid)
			}
		}
	} else {
		var mu sync.Mutex
		var wg sync.WaitGroup
		jobs := make(chan job)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					var tv time.Time
					if o != nil {
						tv = time.Now()
					}
					r := verify(j)
					if o != nil {
						o.ObserveVerify(j.gid, r.Steps, time.Since(tv), r.Found())
					}
					mu.Lock()
					res.VerifySteps += r.Steps
					if r.Aborted {
						res.TimedOut = true
					}
					if r.Found() {
						res.Answers = append(res.Answers, j.gid)
					}
					mu.Unlock()
				}
			}()
		}
		for _, j := range verifyJobs {
			if expired(opts.Deadline) {
				res.TimedOut = true
				break
			}
			jobs <- j
		}
		close(jobs)
		wg.Wait()
		sort.Ints(res.Answers)
	}
	res.VerifyTime = time.Since(t2)
	if o != nil {
		o.ObservePhase(obs.PhaseFilter, res.FilterTime)
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
