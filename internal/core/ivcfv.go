package core

import (
	"sort"
	"sync"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/index"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// ivcFV is the integrated engine of §III-C: two levels of filtering — the
// index of an IFV algorithm first, then the vertex-connectivity filtering
// of CFQL (CFL's preprocessing) on the surviving graphs — followed by
// CFQL's verification (GraphQL's enumeration stopped at the first
// embedding). The paper instantiates vcGrapes and vcGGSX; CT-Index is
// excluded because its indexing fails on large datasets.
type ivcFV struct {
	name           string
	idx            index.Index
	defaultWorkers int

	db    *graph.Database
	built bool
}

// NewVcGrapes returns the vcGrapes IvcFV engine: Grapes' trie index plus
// CFQL filtering and verification, with Grapes' parallel configuration.
func NewVcGrapes() Engine {
	return &ivcFV{name: "vcGrapes", idx: &index.Grapes{}, defaultWorkers: 6}
}

// NewVcGGSX returns the vcGGSX IvcFV engine: GGSX's suffix-tree index plus
// CFQL filtering and verification.
func NewVcGGSX() Engine {
	return &ivcFV{name: "vcGGSX", idx: &index.GGSX{}}
}

// Name implements Engine.
func (e *ivcFV) Name() string { return e.name }

// Build implements Engine: constructs the underlying IFV index.
func (e *ivcFV) Build(db *graph.Database, opts BuildOptions) error {
	e.db = db
	e.built = false
	workers := opts.Workers
	if workers == 0 {
		workers = e.defaultWorkers
	}
	err := e.idx.Build(db, index.BuildOptions{
		Deadline:    opts.Deadline,
		Cancel:      opts.Cancel,
		MaxFeatures: opts.MaxFeatures,
		Workers:     workers,
	})
	if err != nil {
		return err
	}
	e.built = true
	return nil
}

// IndexMemory implements Engine.
func (e *ivcFV) IndexMemory() int64 {
	if !e.built {
		return 0
	}
	return e.idx.MemoryFootprint()
}

// Query implements Engine. The index filter yields C'(q); the
// vertex-connectivity filter (CFL preprocessing) then reduces it to C(q),
// whose members are verified by GraphQL's enumeration. Both filtering
// levels count toward FilterTime, per the paper's metric definition.
//
// The second level and verification are fused per data graph: the CFL
// candidate sets live in a scratch arena that is reused for the next graph,
// so they must be consumed (ordered and enumerated) before the next filter
// call rather than collected into a deferred verification queue. With
// workers > 1 the index survivors are distributed over a pool, each worker
// running the fused filter+verify pipeline with its own arena; FilterTime
// and VerifyTime then aggregate per-graph work across workers (total CPU
// work, like the parallel CFQL engine), while wall-clock latency is the
// caller-observable duration.
func (e *ivcFV) Query(q *graph.Graph, opts QueryOptions) (res *Result) {
	fp := fingerprintQuery(q, &opts)
	if r, done := degenerate(q); done {
		r.Fingerprint = fp
		return r
	}
	res = &Result{Fingerprint: fp}
	o := opts.Observer
	defer queryGuard(e.name, o, res)
	h, untrack := trackInflight(e.name, &opts)
	defer untrack()
	h.SetPhase(inflight.PhaseFilter)
	ex := opts.Explain
	ex.SetEngine(e.name)

	t0 := time.Now()
	indexCand := filterIndex(e.idx, q, ex)
	res.FilterTime = time.Since(t0)
	if o != nil {
		// Sub-span of the filter phase: the index probe alone, so traces
		// can attribute filtering cost between the two levels.
		o.ObservePhase(obs.PhaseIndexFilter, res.FilterTime)
	}
	// The index survivors are the graphs the fused level-2 filter+verify
	// pipeline will now process.
	h.SetPhase(inflight.PhaseFused)
	h.SetGraphsTotal(len(indexCand))

	// graphResult is the outcome of the fused pipeline on one data graph;
	// it is folded into res by the caller (under mu when parallel).
	type graphResult struct {
		filter, verify time.Duration
		r              matching.Result
		mem            int64
		aborted, pass  bool
		qe             *QueryError
	}
	fold := func(gid int, g2 graphResult) {
		res.FilterTime += g2.filter
		res.VerifyTime += g2.verify
		if g2.qe != nil {
			recordGraphError(res, g2.qe)
			return
		}
		if g2.aborted {
			// Deadline or cancellation hit mid-filter: the sets prove
			// nothing about this graph, so the answer set is a lower bound.
			noteAbort(&opts, res)
		}
		if g2.pass {
			res.Candidates++
			h.AddCandidates(1)
			if g2.mem > res.AuxMemory {
				res.AuxMemory = g2.mem
				h.GrowAux(g2.mem)
			}
			res.VerifySteps += g2.r.Steps
			if g2.r.Aborted {
				noteAbort(&opts, res)
			}
			if g2.r.Found() {
				res.Answers = append(res.Answers, gid)
				h.AddAnswers(1)
			}
		}
	}

	// process runs the fused level-2 filter + verification for one index
	// survivor using the caller's arena, and reports the time spent in each
	// phase. The Candidates and order it builds are owned by s. A panic
	// while processing the graph is recovered into g2.qe (the graph is
	// skipped, the query continues).
	process := func(gid int, s *matching.Scratch) (g2 graphResult) {
		defer graphGuard(e.name, gid, o, &g2.qe)
		g := e.db.Graph(gid)
		t1 := time.Now()
		cand := matching.CFLFilter(q, g, matching.FilterOptions{
			Deadline:     opts.Deadline,
			Cancel:       opts.Cancel,
			MemoryBudget: opts.MemoryBudget,
			Explain:      ex,
			Scratch:      s,
		})
		g2.filter = time.Since(t1)
		if cand.BudgetExceeded {
			g2.qe = newBudgetError(e.name, gid, opts.MemoryBudget)
			return g2
		}
		if cand.Aborted {
			g2.aborted = true
			return g2
		}
		if q.NumVertices() == 0 || cand.AnyEmpty() {
			return g2
		}
		g2.pass = true
		g2.mem = cand.MemoryFootprint()
		t2 := time.Now()
		order := matching.GraphQLOrderScratch(q, cand, s)
		observeOrder(ex, order, cand)
		r, err := matching.Enumerate(q, g, cand, order, matching.Options{
			Limit:      1,
			Deadline:   opts.Deadline,
			Cancel:     opts.Cancel,
			StepBudget: opts.StepBudgetPerGraph,
			Scratch:    s,
			Progress:   h.StepCounter(),
		})
		if err != nil {
			panic(err)
		}
		g2.verify = time.Since(t2)
		if o != nil {
			o.ObserveVerify(gid, r.Steps, g2.verify, r.Found())
		}
		ex.ObserveEnumerate(r.Jumps, r.Redos, r.ProbeIsects, r.MergeIsects)
		g2.r = r
		return g2
	}

	workers := opts.Workers
	if workers == 0 {
		workers = e.defaultWorkers
	}
	if workers > 1 {
		workers = clampWorkers(workers)
	}
	if o != nil && workers > 1 {
		o.ObserveWorkers(workers)
	}
	if workers <= 1 {
		s := matching.AcquireScratch()
		defer matching.ReleaseScratch(s)
		for _, gid := range indexCand {
			if halt(&opts, res) {
				break
			}
			g2 := process(gid, s)
			fold(gid, g2)
			if g2.aborted {
				break
			}
			h.GraphDone()
		}
	} else {
		var mu sync.Mutex
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					// Per-worker boundary for panics that escape the
					// per-graph guard: record a query-level error and keep
					// draining so the producer never blocks on a dead pool.
					if v := recover(); v != nil {
						obs.Panics.Inc()
						if o != nil {
							o.ObservePanic(-1)
						}
						mu.Lock()
						if res.Err == nil {
							res.Err = newPanicError(e.name, -1, v)
						}
						mu.Unlock()
						for range jobs { //nolint — drain
						}
					}
				}()
				// One arena per worker, reused across every survivor this
				// worker draws from the job channel.
				s := matching.AcquireScratch()
				defer matching.ReleaseScratch(s)
				for gid := range jobs {
					g2 := process(gid, s)
					mu.Lock()
					fold(gid, g2)
					mu.Unlock()
					h.GraphDone()
				}
			}()
		}
		for _, gid := range indexCand {
			mu.Lock()
			stop := halt(&opts, res)
			mu.Unlock()
			if stop {
				break
			}
			select {
			case jobs <- gid:
			case <-opts.Cancel:
				// Cancelled while every worker is busy: stop feeding the
				// pool instead of blocking on the send forever. The halt
				// check above records the cancellation next iteration; a
				// nil Cancel never fires.
			}
		}
		close(jobs)
		wg.Wait()
		sort.Ints(res.Answers)
	}
	if o != nil {
		o.ObservePhase(obs.PhaseFilter, res.FilterTime)
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
