package core

import (
	"subgraphquery/internal/graph"
	"subgraphquery/internal/index"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// observeOrder records a matching order with per-vertex selectivity into
// the Explain report (no-op with a nil Explain; allocates nothing then).
func observeOrder(ex *obs.Explain, order []graph.VertexID, cand *matching.Candidates) {
	if ex == nil {
		return
	}
	steps := make([]obs.OrderStep, len(order))
	for i, u := range order {
		steps[i] = obs.OrderStep{Vertex: int(u), Candidates: cand.Count(u)}
	}
	ex.ObserveOrder(steps)
}

// filterIndex probes an engine's index, routing through FilterExplain when
// the index can report per-probe statistics and an Explain is attached.
// With ex == nil this is exactly idx.Filter(q).
func filterIndex(idx index.Index, q *graph.Graph, ex *obs.Explain) []int {
	if ex != nil {
		if ei, ok := idx.(index.Explainable); ok {
			return ei.FilterExplain(q, ex)
		}
	}
	return idx.Filter(q)
}
