package core

import (
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/telemetry"
)

// TestFingerprintThreading: every engine stamps the canonical fingerprint
// on its Result, reports it to the Observer, and honors a caller-provided
// value instead of recomputing.
func TestFingerprintThreading(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	db := randomDB(r, 20, 8, 3)
	q := walkQuery(r, db.Graph(0), 3)
	want := telemetry.Compute(q)
	if want == 0 {
		t.Fatal("Compute returned the reserved zero fingerprint")
	}

	for name, e := range allEngines() {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		o := newCountingObserver()
		res := e.Query(q, QueryOptions{Observer: o})
		if res.Fingerprint != want {
			t.Errorf("%s: Result.Fingerprint = %s, want %s", name, res.Fingerprint, want)
		}
		o.mu.Lock()
		observed := o.fingerprint
		o.mu.Unlock()
		if observed != uint64(want) {
			t.Errorf("%s: ObserveFingerprint got %016x, want %s", name, observed, want)
		}

		// A preset fingerprint is echoed, not recomputed: engines trust the
		// caller so the admission path and wrappers stay authoritative.
		preset := telemetry.Fingerprint(0xabad1dea)
		res = e.Query(q, QueryOptions{Fingerprint: preset})
		if res.Fingerprint != preset {
			t.Errorf("%s: preset fingerprint not echoed: got %s", name, res.Fingerprint)
		}
	}
}

// TestFingerprintDegenerateQuery: even the empty query gets a fingerprint,
// so degenerate requests still aggregate in workload profiles.
func TestFingerprintDegenerateQuery(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	db := randomDB(r, 5, 6, 2)
	empty := graph.MustFromEdges(nil, nil)
	for name, e := range allEngines() {
		if err := e.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		res := e.Query(empty, QueryOptions{})
		if res.Fingerprint == 0 {
			t.Errorf("%s: degenerate query got zero fingerprint", name)
		}
		if len(res.Answers) != 0 {
			t.Errorf("%s: degenerate query returned answers", name)
		}
	}
}

// TestFingerprintCacheHitPath: the cached engine reports the same
// fingerprint on the miss (delegated) and hit (verifyPool) paths.
func TestFingerprintCacheHitPath(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	db := randomDB(r, 20, 8, 3)
	q := walkQuery(r, db.Graph(1), 3)
	e := NewCached(NewCFQL(), 8)
	if err := e.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	first := e.Query(q, QueryOptions{})
	second := e.Query(q, QueryOptions{})
	if e.Hits == 0 {
		t.Skip("repeat query did not hit the cache; nothing to compare")
	}
	if first.Fingerprint == 0 || first.Fingerprint != second.Fingerprint {
		t.Fatalf("fingerprint differs across cache hit: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
}
