package core

import (
	"sort"
	"sync"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/index"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// ifv is the indexing-filtering-verification engine of Algorithm 1: a graph
// database index produces the candidate set, and each candidate is verified
// with VF2 — the configuration of all fifteen IFV algorithms surveyed in
// Table II, instantiated here for Grapes, GGSX and CT-Index.
type ifv struct {
	name string
	idx  index.Index
	// ctOrder enables CT-Index's modified VF2 with an optimized static
	// matching order.
	ctOrder bool
	// defaultWorkers is the verification parallelism when QueryOptions
	// does not specify one (Grapes runs with 6 threads in the paper).
	defaultWorkers int

	db    *graph.Database
	built bool
}

// NewGrapes returns the Grapes IFV engine: path-trie index with occurrence
// counts and parallel VF2 verification (6 workers by default, the paper's
// configuration).
func NewGrapes() Engine {
	return &ifv{name: "Grapes", idx: &index.Grapes{}, defaultWorkers: 6}
}

// NewGGSX returns the GGSX IFV engine: suffix-tree path index, sequential
// VF2 verification.
func NewGGSX() Engine {
	return &ifv{name: "GGSX", idx: &index.GGSX{}}
}

// NewCTIndex returns the CT-Index IFV engine: tree/cycle fingerprint index
// and a modified VF2 whose matching order is optimized per query.
func NewCTIndex() Engine {
	return &ifv{name: "CT-Index", idx: &index.CTIndex{}, ctOrder: true}
}

// NewGraphGrep returns the GraphGrep IFV engine: hashed path fingerprints
// with occurrence counts (Table II's earliest enumeration-based method).
func NewGraphGrep() Engine {
	return &ifv{name: "GraphGrep", idx: &index.GraphGrep{}}
}

// NewGIndex returns a mining-based IFV engine in the spirit of gIndex:
// frequent, discriminative path features (Table II's mining-based row).
func NewGIndex() Engine {
	return &ifv{name: "gIndex", idx: &index.GIndexLite{}}
}

// NewTreePi returns a mining-based IFV engine in the spirit of TreePi /
// SwiftIndex: frequent subtree features with AHU canonical codes.
func NewTreePi() Engine {
	return &ifv{name: "TreePi", idx: &index.TreePiLite{}}
}

// NewFGIndex returns a mining-based IFV engine in the spirit of FG-Index:
// frequent connected-subgraph features with exact canonical codes, and
// verification-free answers for queries that match a feature verbatim.
func NewFGIndex() Engine {
	return &ifv{name: "FG-Index", idx: &index.FGIndexLite{}}
}

// Name implements Engine.
func (e *ifv) Name() string { return e.name }

// Build implements Engine: constructs the index over the database.
func (e *ifv) Build(db *graph.Database, opts BuildOptions) error {
	e.db = db
	e.built = false
	workers := opts.Workers
	if workers == 0 {
		workers = e.defaultWorkers
	}
	err := e.idx.Build(db, index.BuildOptions{
		Deadline:    opts.Deadline,
		Cancel:      opts.Cancel,
		MaxFeatures: opts.MaxFeatures,
		Workers:     workers,
	})
	if err != nil {
		return err
	}
	e.built = true
	return nil
}

// IndexMemory implements Engine.
func (e *ifv) IndexMemory() int64 {
	if !e.built {
		return 0
	}
	return e.idx.MemoryFootprint()
}

// Query implements Engine.
func (e *ifv) Query(q *graph.Graph, opts QueryOptions) (res *Result) {
	fp := fingerprintQuery(q, &opts)
	if r, done := degenerate(q); done {
		r.Fingerprint = fp
		return r
	}
	res = &Result{Fingerprint: fp}
	o := opts.Observer
	defer queryGuard(e.name, o, res)
	h, untrack := trackInflight(e.name, &opts)
	defer untrack()
	h.SetPhase(inflight.PhaseFilter)
	if halt(&opts, res) {
		// Already cancelled or past deadline: don't even probe the index.
		// The other engines observe this at their per-graph loop, but the
		// verification-free path (FG-Index exact hits) would otherwise
		// return a complete answer for a query the caller abandoned.
		return res
	}
	ex := opts.Explain
	ex.SetEngine(e.name)

	t0 := time.Now()
	var cand []int
	if ef, ok := e.idx.(index.ExactFilter); ok {
		ids, exact := ef.FilterExact(q)
		if exact {
			// Verification-free answer (FG-Index): the posting list is
			// A(q) already.
			res.FilterTime = time.Since(t0)
			res.Candidates = len(ids)
			res.Answers = ids
			if o != nil {
				o.ObservePhase(obs.PhaseFilter, res.FilterTime)
			}
			return res
		}
		cand = ids
	} else {
		cand = filterIndex(e.idx, q, ex)
	}
	res.FilterTime = time.Since(t0)
	res.Candidates = len(cand)
	if o != nil {
		o.ObservePhase(obs.PhaseFilter, res.FilterTime)
	}
	// The index probe classified the work: the survivors are both the
	// candidate count and the graphs this query will now verify.
	h.SetPhase(inflight.PhaseVerify)
	h.SetGraphsTotal(len(cand))
	h.AddCandidates(len(cand))

	// step runs one candidate's VF2 verification behind a per-graph panic
	// boundary: a panicking graph yields a non-nil qe and is skipped, the
	// query continues with the remaining candidates.
	step := func(gid int) (r matching.Result, found bool, qe *QueryError) {
		defer graphGuard(e.name, gid, o, &qe)
		g := e.db.Graph(gid)
		vf2 := &matching.VF2{}
		if e.ctOrder {
			vf2.Order = matching.CTIndexOrder(q, g)
		}
		var tv time.Time
		if o != nil {
			tv = time.Now()
		}
		r = vf2.FindFirst(q, g, matching.Options{
			Deadline:   opts.Deadline,
			Cancel:     opts.Cancel,
			StepBudget: opts.StepBudgetPerGraph,
			Progress:   h.StepCounter(),
		})
		found = r.Found()
		if o != nil {
			o.ObserveVerify(gid, r.Steps, time.Since(tv), found)
		}
		return r, found, nil
	}

	workers := opts.Workers
	if workers == 0 {
		workers = e.defaultWorkers
	}
	if workers > 1 {
		// The verification pool is CPU-bound; cap it at the scheduler's
		// parallelism and surface the effective size in traces.
		workers = clampWorkers(workers)
	}
	if o != nil && workers > 1 {
		o.ObserveWorkers(workers)
	}
	t1 := time.Now()
	if workers <= 1 {
		for _, gid := range cand {
			if halt(&opts, res) {
				break
			}
			r, found, qe := step(gid)
			h.GraphDone()
			if qe != nil {
				recordGraphError(res, qe)
				continue
			}
			res.VerifySteps += r.Steps
			if r.Aborted {
				noteAbort(&opts, res)
			}
			if found {
				res.Answers = append(res.Answers, gid)
				h.AddAnswers(1)
			}
		}
	} else {
		var mu sync.Mutex
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					// Per-worker boundary for panics that escape the
					// per-graph guard: record a query-level error and keep
					// draining so the producer never blocks on a dead pool.
					if v := recover(); v != nil {
						obs.Panics.Inc()
						if o != nil {
							o.ObservePanic(-1)
						}
						mu.Lock()
						if res.Err == nil {
							res.Err = newPanicError(e.name, -1, v)
						}
						mu.Unlock()
						for range jobs { //nolint — drain
						}
					}
				}()
				for gid := range jobs {
					r, found, qe := step(gid)
					h.GraphDone()
					mu.Lock()
					if qe != nil {
						recordGraphError(res, qe)
					} else {
						res.VerifySteps += r.Steps
						if r.Aborted {
							noteAbort(&opts, res)
						}
						if found {
							res.Answers = append(res.Answers, gid)
							h.AddAnswers(1)
						}
					}
					mu.Unlock()
				}
			}()
		}
		for _, gid := range cand {
			mu.Lock()
			stop := halt(&opts, res)
			mu.Unlock()
			if stop {
				break
			}
			select {
			case jobs <- gid:
			case <-opts.Cancel:
				// Cancelled while every worker is busy: stop feeding the
				// pool instead of blocking on the send forever. The halt
				// check above records the cancellation next iteration; a
				// nil Cancel never fires.
			}
		}
		close(jobs)
		wg.Wait()
		sort.Ints(res.Answers)
	}
	res.VerifyTime = time.Since(t1)
	if o != nil {
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
