package core

import (
	"sort"
	"sync"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// parallelVcFV is an extension beyond the paper: the vcFV framework's
// per-data-graph work (Algorithm 2's loop body) is embarrassingly parallel,
// so a worker pool processes data graphs concurrently the way Grapes
// parallelizes its verification. The paper's vcFV implementations are
// single-threaded; this engine quantifies the headroom (see the ablation
// benchmarks in bench_test.go).
//
// Metric semantics differ from the sequential engine: FilterTime and
// VerifyTime aggregate per-graph work across workers (total CPU work),
// while wall-clock query latency is the caller-observable duration.
type parallelVcFV struct {
	name    string
	workers int
	db      *graph.Database
}

// NewParallelCFQL returns a CFQL engine whose filtering and verification
// run on a pool of the given number of workers (0 selects 6, matching the
// Grapes configuration). The count is clamped to runtime.GOMAXPROCS(0) at
// query time; the effective pool size is reported via Observer.
// ObserveWorkers.
func NewParallelCFQL(workers int) Engine {
	if workers <= 0 {
		workers = 6
	}
	return &parallelVcFV{name: "CFQL-parallel", workers: workers}
}

// Name implements Engine.
func (e *parallelVcFV) Name() string { return e.name }

// Build implements Engine (index-free).
func (e *parallelVcFV) Build(db *graph.Database, _ BuildOptions) error {
	e.db = db
	return nil
}

// IndexMemory implements Engine.
func (*parallelVcFV) IndexMemory() int64 { return 0 }

// Query implements Engine.
func (e *parallelVcFV) Query(q *graph.Graph, opts QueryOptions) (res *Result) {
	fp := fingerprintQuery(q, &opts)
	if r, done := degenerate(q); done {
		r.Fingerprint = fp
		return r
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = e.workers
	}
	workers = clampWorkers(workers)
	res = &Result{Fingerprint: fp}
	o := opts.Observer
	defer queryGuard(e.name, o, res)
	h, untrack := trackInflight(e.name, &opts)
	defer untrack()
	h.SetPhase(inflight.PhaseFused)
	h.SetGraphsTotal(e.db.Len())
	ex := opts.Explain
	ex.SetEngine(e.name)
	if o != nil {
		o.ObserveWorkers(workers)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan int)

	// step runs the fused filter/verify pipeline for one data graph behind
	// its own panic boundary: a panicking graph yields a non-nil qe and
	// the worker moves on — a panic escaping a worker goroutine would kill
	// the process, not just the query.
	step := func(gid int, s *matching.Scratch) (qe *QueryError) {
		defer graphGuard(e.name, gid, o, &qe)
		g := e.db.Graph(gid)

		t0 := time.Now()
		cand := matching.CFLFilter(q, g, matching.FilterOptions{
			Deadline:     opts.Deadline,
			Cancel:       opts.Cancel,
			MemoryBudget: opts.MemoryBudget,
			Explain:      ex,
			Scratch:      s,
		})
		pass := !cand.Aborted && q.NumVertices() > 0 && !cand.AnyEmpty()
		filterTime := time.Since(t0)

		var verifyTime time.Duration
		var r matching.Result
		if pass {
			t1 := time.Now()
			order := matching.GraphQLOrderScratch(q, cand, s)
			observeOrder(ex, order, cand)
			var err error
			r, err = matching.Enumerate(q, g, cand, order, matching.Options{
				Limit:      1,
				Deadline:   opts.Deadline,
				Cancel:     opts.Cancel,
				StepBudget: opts.StepBudgetPerGraph,
				Scratch:    s,
				Progress:   h.StepCounter(),
			})
			if err != nil {
				panic(err)
			}
			verifyTime = time.Since(t1)
			if o != nil {
				o.ObserveVerify(gid, r.Steps, verifyTime, r.Found())
			}
			ex.ObserveEnumerate(r.Jumps, r.Redos, r.ProbeIsects, r.MergeIsects)
		}

		mu.Lock()
		res.FilterTime += filterTime
		res.VerifyTime += verifyTime
		if cand.BudgetExceeded {
			qe = newBudgetError(e.name, gid, opts.MemoryBudget)
		} else if cand.Aborted {
			// Deadline or cancellation hit mid-filter: the sets prove
			// nothing about this graph, so the answer set is a lower bound.
			noteAbort(&opts, res)
		}
		if pass {
			res.Candidates++
			h.AddCandidates(1)
			if m := cand.MemoryFootprint(); m > res.AuxMemory {
				res.AuxMemory = m
				h.GrowAux(m)
			}
			res.VerifySteps += r.Steps
			if r.Aborted {
				noteAbort(&opts, res)
			}
			if r.Found() {
				res.Answers = append(res.Answers, gid)
				h.AddAnswers(1)
			}
		}
		mu.Unlock()
		h.GraphDone()
		return qe
	}

	worker := func() {
		defer wg.Done()
		defer func() {
			// Per-worker boundary for panics that escape the per-graph
			// guard (e.g. in arena bookkeeping): record a query-level
			// error and keep draining so the producer never blocks on a
			// dead pool.
			if v := recover(); v != nil {
				obs.Panics.Inc()
				if o != nil {
					o.ObservePanic(-1)
				}
				mu.Lock()
				if res.Err == nil {
					res.Err = newPanicError(e.name, -1, v)
				}
				mu.Unlock()
				for range jobs { //nolint — drain
				}
			}
		}()
		// One arena per worker, reused across every data graph this worker
		// draws from the job channel — the parallel analogue of the
		// sequential engine's per-query scratch.
		s := matching.AcquireScratch()
		defer matching.ReleaseScratch(s)
		for gid := range jobs {
			if qe := step(gid, s); qe != nil {
				mu.Lock()
				recordGraphError(res, qe)
				mu.Unlock()
			}
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	for gid := 0; gid < e.db.Len(); gid++ {
		mu.Lock()
		stop := halt(&opts, res)
		mu.Unlock()
		if stop {
			break
		}
		select {
		case jobs <- gid:
		case <-opts.Cancel:
			// Cancelled while every worker is busy: stop feeding the pool
			// instead of blocking on the send forever. The halt check at
			// the top of the next iteration records the cancellation on
			// the result; a nil Cancel never fires, so the select
			// degenerates to the plain send.
		}
	}
	close(jobs)
	wg.Wait()
	sort.Ints(res.Answers)
	if o != nil {
		// Aggregated CPU work across workers, like the Result fields (see
		// the engine comment on metric semantics).
		o.ObservePhase(obs.PhaseFilter, res.FilterTime)
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}
