package core

import (
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

// extendQuery grows q by one pendant edge whose endpoint label exists in
// the database, producing a supergraph of q.
func extendQuery(q *graph.Graph, label graph.Label) *graph.Graph {
	labels := append(append([]graph.Label(nil), q.Labels()...), label)
	edges := append(q.Edges(), graph.Edge{U: 0, V: graph.VertexID(len(labels) - 1)})
	return graph.MustFromEdges(labels, edges)
}

func TestCachedMatchesInner(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	db := randomDB(r, 20, 9, 2)
	plain := NewCFQL()
	cached := NewCached(NewCFQL(), 0)
	if err := plain.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	// Issue related queries: base patterns and their extensions, repeated,
	// so both subgraph and supergraph hits occur.
	var queries []*graph.Graph
	for k := 0; k < 6; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 2+r.Intn(3))
		queries = append(queries, q, extendQuery(q, q.Label(0)), q)
	}
	for i, q := range queries {
		want := plain.Query(q, QueryOptions{})
		got := cached.Query(q, QueryOptions{})
		if !equalInts(want.Answers, got.Answers) {
			t.Fatalf("query %d: cached answers %v != plain %v", i, got.Answers, want.Answers)
		}
	}
	if cached.Hits == 0 {
		t.Error("no cache hits on repeated/contained queries")
	}
	if cached.Misses == 0 {
		t.Error("first queries must miss")
	}
}

func TestCachedRepeatHitsPool(t *testing.T) {
	r := rand.New(rand.NewSource(409))
	db := randomDB(r, 15, 8, 2)
	cached := NewCached(NewCFQL(), 4)
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 3)
	first := cached.Query(q, QueryOptions{})
	second := cached.Query(q, QueryOptions{})
	if !equalInts(first.Answers, second.Answers) {
		t.Fatalf("repeat query changed answers: %v vs %v", second.Answers, first.Answers)
	}
	if cached.Hits != 1 || cached.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", cached.Hits, cached.Misses)
	}
	// The repeat's candidate pool is the previous answer set.
	if second.Candidates != len(first.Answers) {
		t.Errorf("repeat candidates = %d, want %d", second.Candidates, len(first.Answers))
	}
}

func TestCachedEviction(t *testing.T) {
	r := rand.New(rand.NewSource(419))
	db := randomDB(r, 10, 8, 2)
	cached := NewCached(NewCFQL(), 2)
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 2+k%3)
		cached.Query(q, QueryOptions{})
	}
	cached.mu.Lock()
	n := len(cached.entries)
	cached.mu.Unlock()
	if n > 2 {
		t.Errorf("cache holds %d entries, capacity 2", n)
	}
}

func TestCachedBuildClears(t *testing.T) {
	r := rand.New(rand.NewSource(421))
	db := randomDB(r, 8, 8, 2)
	cached := NewCached(NewCFQL(), 8)
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 2)
	cached.Query(q, QueryOptions{})
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	cached.mu.Lock()
	n := len(cached.entries)
	cached.mu.Unlock()
	if n != 0 {
		t.Errorf("Build left %d cache entries", n)
	}
}

func TestCachedAppendInvalidates(t *testing.T) {
	r := rand.New(rand.NewSource(431))
	db := randomDB(r, 8, 8, 2)
	cached := NewCached(NewCFQL(), 8)
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 2)
	before := cached.Query(q, QueryOptions{})

	extra := randomConnected(r, 8, 6, 2)
	gid, err := cached.AppendGraph(extra)
	if err != nil {
		t.Fatal(err)
	}
	// Query drawn from the appended graph must see it (stale cache would
	// hide it if not invalidated).
	q2 := walkQuery(r, extra, 2)
	res := cached.Query(q2, QueryOptions{})
	if !res.Contains(gid) {
		t.Errorf("appended graph %d missing from answers %v", gid, res.Answers)
	}
	// The original query still answers correctly (now possibly more).
	after := cached.Query(q, QueryOptions{})
	if len(after.Answers) < len(before.Answers) {
		t.Errorf("answers shrank after append: %v -> %v", before.Answers, after.Answers)
	}
	if cached.Name() != "CFQL+cache" {
		t.Errorf("Name = %q", cached.Name())
	}
}

func TestCachedOverNonUpdatable(t *testing.T) {
	r := rand.New(rand.NewSource(433))
	db := randomDB(r, 5, 6, 2)
	cached := NewCached(NewGIndex(), 4)
	if err := cached.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.AppendGraph(randomConnected(r, 5, 3, 2)); err == nil {
		t.Error("append over gIndex should fail (mining-based index)")
	}
}
