// Package core implements the paper's three categories of subgraph query
// processing algorithms behind one Engine interface:
//
//   - IFV (Algorithm 1): index-based filtering, VF2 verification — Grapes,
//     GGSX and CT-Index configurations.
//   - vcFV (Algorithm 2): vertex-connectivity filtering via the
//     preprocessing phase of a subgraph matching algorithm, verification by
//     its enumeration phase stopped at the first embedding — CFL, GraphQL
//     and CFQL configurations.
//   - IvcFV (§III-C): index filtering followed by vertex-connectivity
//     filtering and enumeration — vcGrapes and vcGGSX.
//
// Every Query call returns the answer set together with the per-phase
// metrics the paper's evaluation reports: filtering time, verification
// time, candidate count and auxiliary memory.
package core

import (
	"runtime"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/obs"
	"subgraphquery/internal/telemetry"
)

// Engine answers subgraph queries over one graph database.
type Engine interface {
	// Name identifies the engine configuration (e.g. "CFQL", "vcGrapes").
	Name() string

	// Build prepares the engine for the database: IFV and IvcFV engines
	// construct their index here; vcFV engines only retain the reference
	// (their "index-free" property, §I). Build must be called before Query
	// and again after the database changes — except for vcFV engines,
	// whose Build is free.
	Build(db *graph.Database, opts BuildOptions) error

	// Query finds all data graphs containing q and reports metrics.
	Query(q *graph.Graph, opts QueryOptions) *Result

	// IndexMemory returns the byte footprint of the engine's persistent
	// auxiliary structures (the index); 0 for vcFV engines.
	IndexMemory() int64
}

// BuildOptions bounds index construction; vcFV engines ignore it.
type BuildOptions struct {
	// Deadline aborts index construction (paper: 24 hours).
	Deadline time.Time
	// Cancel aborts construction cooperatively when closed
	// (context-compatible: pass ctx.Done()); Build then returns the same
	// budget error as an exceeded Deadline. nil disables the check.
	Cancel <-chan struct{}
	// MaxFeatures is a deterministic enumeration budget (see index pkg).
	MaxFeatures int64
	// Workers parallelizes index construction where supported (Grapes).
	Workers int
}

// QueryOptions bounds query processing.
type QueryOptions struct {
	// Deadline aborts the query (paper: 10 minutes per query). Queries that
	// exceed it report TimedOut and a partial answer set.
	Deadline time.Time
	// Cancel aborts the query cooperatively when closed
	// (context-compatible: pass ctx.Done()). A cancelled query returns
	// promptly with Cancelled and TimedOut set and a partial answer set.
	// nil disables the check at no cost.
	Cancel <-chan struct{}
	// MemoryBudget bounds the live byte footprint of the per-graph
	// candidate structure a vcFV/IvcFV engine builds
	// (Candidates.MemoryFootprint). A data graph whose structure outgrows
	// the budget is skipped with a KindBudget QueryError instead of
	// running the process out of memory; the query continues with the
	// remaining graphs. 0 disables the check. IFV engines, which build no
	// candidate structure, ignore it.
	MemoryBudget int64
	// StepBudgetPerGraph bounds each subgraph isomorphism test's search
	// steps, a deterministic timeout proxy for tests. 0 = unlimited.
	StepBudgetPerGraph uint64
	// Workers parallelizes per-graph verification where supported
	// (the Grapes configurations). 0 selects 1.
	Workers int
	// Observer, when non-nil, receives streaming telemetry as the query
	// executes: phase spans (obs.PhaseFilter, obs.PhaseVerify — their
	// totals match the returned Result's FilterTime and VerifyTime), one
	// event per candidate-graph verification, and result-cache outcomes.
	// Implementations must be safe for concurrent use: parallel engines
	// emit from worker goroutines. nil disables instrumentation at
	// near-zero cost (one branch per emission site).
	Observer obs.Observer
	// Explain, when non-nil, collects a structured EXPLAIN report for the
	// query: per-query-vertex candidate counts after each filter stage
	// (CFL's LDF/top-down/bottom-up, GraphQL's profile/refine), index probe
	// statistics (trie nodes visited, intersection sizes, fingerprint
	// survivors), and the chosen matching order with per-vertex
	// selectivity. Explain is mutex-guarded and safe for concurrent
	// recording from parallel workers. nil disables collection at zero
	// allocation cost on the hot path.
	Explain *obs.Explain
	// Fingerprint is the query's canonical shape hash (telemetry.Compute).
	// Zero — the common case — means "compute it for me": every engine
	// fingerprints the query at entry and reports it on the Result and via
	// Observer.ObserveFingerprint. Callers that already computed it (the
	// server's admission path does, so shed queries are attributed before
	// they execute) pass it here to avoid recomputing; wrappers (Cached)
	// pass it down so the inner engine agrees.
	Fingerprint telemetry.Fingerprint
	// Inflight, when non-nil, makes the query visible to live inspection:
	// the engine registers a handle at entry (carrying the fingerprint and
	// engine name), updates its progress counters as data graphs are
	// processed, merges the handle's remote-cancellation channel into
	// Cancel, and deregisters on return. nil disables tracking at no cost.
	Inflight *inflight.Registry
	// Handle, when non-nil, is a pre-registered live handle the engine
	// must report progress on instead of registering its own — set by
	// callers that register before Query (the server, which knows the
	// admission verdict, and the sqquery -progress path) and by wrappers
	// (Cached) so the inner engine reuses the outer handle. The owner of
	// the handle deregisters it and merges its cancel channel; engines
	// only tick its counters.
	Handle *inflight.Handle
}

// Result reports a query's answers and the metrics of §IV-A.
type Result struct {
	// Answers is the answer set A(q): ascending ids of data graphs
	// containing q.
	Answers []int

	// Candidates is |C(q)|, the number of graphs surviving filtering and
	// entering verification.
	Candidates int

	// FilterTime is the time spent in the filtering step. For vcFV and
	// IvcFV engines it includes extracting the candidate vertex sets, as
	// the paper prescribes.
	FilterTime time.Duration

	// VerifyTime is the time spent in the verification step.
	VerifyTime time.Duration

	// VerifySteps sums search-tree steps across all verification calls.
	VerifySteps uint64

	// AuxMemory is the peak byte footprint of per-query auxiliary data
	// (candidate vertex sets) for vcFV/IvcFV engines; 0 for pure IFV.
	AuxMemory int64

	// TimedOut reports that the query hit its Deadline (or a per-graph
	// step budget); Answers is then a lower bound.
	TimedOut bool

	// Cancelled refines TimedOut: the query stopped because
	// QueryOptions.Cancel closed, not because time ran out. Always set
	// together with TimedOut (the answer set is a lower bound either way).
	Cancelled bool

	// Skipped counts data graphs abandoned mid-processing — a recovered
	// panic or an exceeded memory budget — without aborting the query.
	// Answers is a lower bound when Skipped > 0.
	Skipped int

	// GraphErrors details the skipped graphs' failures, capped at
	// maxGraphErrors entries (Skipped is the true count).
	GraphErrors []*QueryError

	// GraphErrorsTruncated counts GraphErrors entries dropped to hold the
	// cap when partial results are merged at the scatter-gather tier
	// (CapGraphErrors): the coordinator caps once across all shards and
	// records what it dropped instead of dropping silently. 0 on results
	// straight out of a single engine, whose recordGraphError never
	// retains more than the cap in the first place.
	GraphErrorsTruncated int

	// Degraded marks a partial answer due to a lost database partition:
	// one or more shards stayed unreachable through the coordinator's
	// retries, their graphs are counted in Skipped, and a KindShard entry
	// in GraphErrors names each lost partition. Always false on
	// single-engine results.
	Degraded bool

	// Err is set when the query itself failed — a panic recovered at the
	// engine boundary outside any per-graph section. The rest of the
	// Result holds whatever was computed before the failure.
	Err *QueryError

	// Fingerprint is the query's canonical shape hash, echoed from
	// QueryOptions.Fingerprint or computed at engine entry. Never zero on a
	// Result returned by an engine.
	Fingerprint telemetry.Fingerprint
}

// QueryTime returns the paper's "query time" metric: filtering plus
// verification time.
func (r *Result) QueryTime() time.Duration { return r.FilterTime + r.VerifyTime }

// Contains reports whether graph id is in the answer set.
func (r *Result) Contains(id int) bool {
	lo, hi := 0, len(r.Answers)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.Answers[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(r.Answers) && r.Answers[lo] == id
}

func expired(deadline time.Time) bool {
	return !deadline.IsZero() && time.Now().After(deadline)
}

// clampWorkers bounds a requested worker count to [1, GOMAXPROCS]. Worker
// goroutines here are CPU-bound (no blocking I/O), so pool sizes beyond the
// scheduler's parallelism only add context switches — and, with per-worker
// scratch arenas, memory. The effective count is what engines report via
// Observer.ObserveWorkers.
func clampWorkers(n int) int {
	if max := runtime.GOMAXPROCS(0); n > max {
		return max
	}
	if n < 1 {
		return 1
	}
	return n
}

// fingerprintQuery resolves the query's fingerprint at engine entry: the
// caller-provided hash when set (so wrappers and the server's admission
// path agree with the engine), telemetry.Compute otherwise. The resolved
// value is written back into opts (callees and wrapped engines inherit
// it), announced to the Observer, and returned for the Result. Engines
// call this first, before degenerate() — even an empty query gets a
// fingerprint so shed/degenerate events aggregate.
func fingerprintQuery(q *graph.Graph, opts *QueryOptions) telemetry.Fingerprint {
	if opts.Fingerprint == 0 {
		opts.Fingerprint = telemetry.Compute(q)
	}
	if opts.Observer != nil {
		opts.Observer.ObserveFingerprint(uint64(opts.Fingerprint))
	}
	return opts.Fingerprint
}

// degenerate handles the empty query uniformly across engines: a query
// with no vertices has no answers and no candidates, by definition of a
// connected query graph (§II-A assumes q is connected, hence non-empty).
func degenerate(q *graph.Graph) (*Result, bool) {
	if q.NumVertices() == 0 {
		return &Result{}, true
	}
	return nil, false
}
