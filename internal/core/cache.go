package core

import (
	"sync"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// Cached wraps an engine with a subgraph-query result cache in the spirit
// of GraphCache (Wang, Ntarmos and Triantafillou [33], [34], discussed in
// the paper's §II-B "Other Approaches"). Past answer sets speed up related
// queries through the two containment monotonicity rules:
//
//   - subgraph hit: if a cached query q' ⊆ q, then A(q) ⊆ A(q'), so A(q')
//     replaces the database as the candidate pool;
//   - supergraph hit: if a cached query q” ⊇ q, then A(q”) ⊆ A(q), so
//     members of A(q”) need no verification at all.
//
// Cache probes are subgraph isomorphism tests between *query* graphs —
// tiny, so probing is cheap relative to querying the database.
type Cached struct {
	inner Engine
	db    *graph.Database

	mu      sync.Mutex
	entries []cacheEntry
	max     int

	// Hits and Misses count cache outcomes for inspection.
	Hits, Misses int
}

type cacheEntry struct {
	query   *graph.Graph
	answers []int
}

// NewCached wraps inner with a result cache of the given capacity
// (0 selects 64 entries).
func NewCached(inner Engine, capacity int) *Cached {
	if capacity <= 0 {
		capacity = 64
	}
	return &Cached{inner: inner, max: capacity}
}

// Name implements Engine.
func (e *Cached) Name() string { return e.inner.Name() + "+cache" }

// Build implements Engine and clears the cache: cached answer sets are
// only valid for the database they were computed on.
func (e *Cached) Build(db *graph.Database, opts BuildOptions) error {
	e.mu.Lock()
	e.entries = nil
	e.db = db
	e.mu.Unlock()
	return e.inner.Build(db, opts)
}

// IndexMemory implements Engine.
func (e *Cached) IndexMemory() int64 {
	var cache int64
	e.mu.Lock()
	for _, ent := range e.entries {
		cache += ent.query.MemoryFootprint() + int64(len(ent.answers))*8
	}
	e.mu.Unlock()
	return e.inner.IndexMemory() + cache
}

// Query implements Engine.
func (e *Cached) Query(q *graph.Graph, opts QueryOptions) *Result {
	// Fingerprint before probing so hit and miss paths report the same
	// hash, and the inner engine (which sees it already set in opts) does
	// not recompute it.
	fp := fingerprintQuery(q, &opts)
	if res, done := degenerate(q); done {
		res.Fingerprint = fp
		return res
	}
	// One live handle for the whole wrapped query: written back into opts
	// so the inner engine (miss path) ticks it instead of registering a
	// second one, and passed to verifyPool (hit path) the same way.
	_, untrack := trackInflight(e.Name(), &opts)
	defer untrack()

	// Cache probing runs outside the inner engine's panic boundary, so it
	// carries its own: a probe panic falls back to a plain miss (the cache
	// is an accelerator, never a correctness dependency).
	pool, confirmed, probed := e.probe(q)
	if !probed {
		pool, confirmed = nil, nil
	}

	var res *Result
	if pool == nil {
		e.mu.Lock()
		e.Misses++
		e.mu.Unlock()
		if o := opts.Observer; o != nil {
			o.ObserveCache(false)
		}
		res = e.inner.Query(q, opts)
	} else {
		e.mu.Lock()
		e.Hits++
		e.mu.Unlock()
		if o := opts.Observer; o != nil {
			o.ObserveCache(true)
		}
		if ex := opts.Explain; ex != nil {
			// The cached answer pool acted as the index here; report it as
			// a probe so EXPLAIN shows where the candidates came from.
			e.mu.Lock()
			entries := len(e.entries)
			e.mu.Unlock()
			ex.ObserveIndexProbe(obs.IndexProbe{
				Index:     "result-cache",
				Features:  entries,
				Survivors: len(pool),
			})
		}
		res = e.verifyPool(q, pool, confirmed, opts)
	}
	// After delegating: the outermost engine name wins in the report, and
	// the hit path (verifyPool, no engine entry) stamps the fingerprint.
	res.Fingerprint = fp
	opts.Explain.SetEngine(e.Name())
	// Only complete answer sets are cacheable: a timed-out, cancelled,
	// failed or partially-skipped query yields a lower bound that would
	// poison later containment reasoning.
	if !res.TimedOut && res.Err == nil && res.Skipped == 0 {
		e.store(q, res.Answers)
	}
	return res
}

// probe scans the cache for containment hits; ok is false when the probe
// panicked (treated as a miss by the caller).
func (e *Cached) probe(q *graph.Graph) (pool []int, confirmed map[int]bool, ok bool) {
	defer func() {
		if v := recover(); v != nil {
			obs.Panics.Inc()
			ok = false
		}
	}()
	// Find the tightest subgraph hit (smallest answer pool) and union the
	// supergraph hits' answers.
	probeOpts := matching.Options{StepBudget: 1 << 16} // query graphs are tiny
	confirmed = map[int]bool{}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range e.entries {
		if (matching.CFQL{}).FindFirst(ent.query, q, probeOpts).Found() {
			// ent.query ⊆ q: answers of q are among ent.answers.
			if pool == nil || len(ent.answers) < len(pool) {
				pool = ent.answers
			}
		} else if (matching.CFQL{}).FindFirst(q, ent.query, probeOpts).Found() {
			// q ⊆ ent.query: every answer of ent is an answer of q.
			for _, id := range ent.answers {
				confirmed[id] = true
			}
		}
	}
	return pool, confirmed, true
}

// verifyPool answers q by testing only the graphs of the candidate pool,
// skipping those already confirmed by a supergraph hit.
func (e *Cached) verifyPool(q *graph.Graph, pool []int, confirmed map[int]bool, opts QueryOptions) (res *Result) {
	res = &Result{Candidates: len(pool)}
	o := opts.Observer
	defer queryGuard(e.Name(), o, res)
	h := opts.Handle
	h.SetPhase(inflight.PhaseVerify)
	h.SetGraphsTotal(len(pool))
	h.AddCandidates(len(pool))
	step := func(gid int) (r matching.Result, qe *QueryError) {
		defer graphGuard(e.Name(), gid, o, &qe)
		var tv time.Time
		if o != nil {
			tv = time.Now()
		}
		r = (matching.CFQL{}).FindFirst(q, e.db.Graph(gid), matching.Options{
			Deadline:   opts.Deadline,
			Cancel:     opts.Cancel,
			StepBudget: opts.StepBudgetPerGraph,
			Progress:   h.StepCounter(),
		})
		if o != nil {
			o.ObserveVerify(gid, r.Steps, time.Since(tv), r.Found())
		}
		return r, nil
	}
	t0 := time.Now()
	for _, gid := range pool {
		if confirmed[gid] {
			// Supergraph hit: answered without a subgraph isomorphism
			// test, so no verification event is emitted.
			res.Answers = append(res.Answers, gid)
			h.GraphDone()
			h.AddAnswers(1)
			continue
		}
		if halt(&opts, res) {
			break
		}
		r, qe := step(gid)
		h.GraphDone()
		if qe != nil {
			recordGraphError(res, qe)
			continue
		}
		res.VerifySteps += r.Steps
		if r.Aborted {
			noteAbort(&opts, res)
		}
		if r.Found() {
			res.Answers = append(res.Answers, gid)
			h.AddAnswers(1)
		}
	}
	res.VerifyTime = time.Since(t0)
	if o != nil {
		o.ObservePhase(obs.PhaseVerify, res.VerifyTime)
	}
	return res
}

// store inserts the (query, answers) pair, evicting the oldest entry when
// full.
func (e *Cached) store(q *graph.Graph, answers []int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent := cacheEntry{query: q, answers: append([]int(nil), answers...)}
	if len(e.entries) == e.max {
		copy(e.entries, e.entries[1:])
		e.entries[len(e.entries)-1] = ent
		return
	}
	e.entries = append(e.entries, ent)
}

// AppendGraph implements Updatable when the inner engine does; the cache
// is invalidated because cached answer sets may miss the new graph.
func (e *Cached) AppendGraph(g *graph.Graph) (int, error) {
	u, ok := e.inner.(Updatable)
	if !ok {
		return 0, errNotUpdatable(e.inner.Name())
	}
	gid, err := u.AppendGraph(g)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	e.entries = nil
	e.mu.Unlock()
	return gid, nil
}

func errNotUpdatable(name string) error {
	return &notUpdatableError{name}
}

type notUpdatableError struct{ name string }

func (e *notUpdatableError) Error() string {
	return "core: " + e.name + " does not support incremental updates"
}
