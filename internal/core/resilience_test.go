package core

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
	"subgraphquery/internal/obs"
)

// poisonedCFQL returns a CFQL-configured vcFV whose filter panics on the
// given data graphs — the test double for a graph that trips a latent bug.
func poisonedCFQL(db *graph.Database, poison ...int) Engine {
	bad := map[*graph.Graph]bool{}
	for _, gid := range poison {
		bad[db.Graph(gid)] = true
	}
	return &vcFV{
		name: "CFQL-poisoned",
		filter: func(q, g *graph.Graph, opts matching.FilterOptions) *matching.Candidates {
			if bad[g] {
				panic("poisoned data graph")
			}
			return matching.CFLFilter(q, g, opts)
		},
		order: func(q, g *graph.Graph, cand *matching.Candidates, s *matching.Scratch) []graph.VertexID {
			return matching.GraphQLOrderScratch(q, cand, s)
		},
	}
}

// waitGoroutines retries until the goroutine count drops back to the
// baseline (worker exits are asynchronous after wg.Wait in the caller's
// frame has returned).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: have %d, want <= %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPanicIsolationSkipsGraph: a panic while processing one data graph is
// recovered, reported as a structured QueryError, and the query's answers
// over the remaining graphs are exact — one poisoned graph never takes
// down the query.
func TestPanicIsolationSkipsGraph(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := randomDB(r, 12, 9, 2)
	q := walkQuery(r, db.Graph(1), 3)
	const poisoned = 4

	eng := poisonedCFQL(db, poisoned)
	if err := eng.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}

	live := matching.ScratchLive()
	panicsBefore := obs.Panics.Value()
	o := newCountingObserver()
	res := eng.Query(q, QueryOptions{Observer: o})

	if res.Err != nil {
		t.Fatalf("query-level error for a per-graph panic: %v", res.Err)
	}
	if res.Skipped != 1 || len(res.GraphErrors) != 1 {
		t.Fatalf("Skipped=%d GraphErrors=%d, want 1 and 1", res.Skipped, len(res.GraphErrors))
	}
	qe := res.GraphErrors[0]
	if qe.Kind != KindPanic || qe.GraphID != poisoned || qe.Engine != "CFQL-poisoned" {
		t.Errorf("QueryError = %+v, want panic on graph %d", qe, poisoned)
	}
	if qe.Stack == "" {
		t.Error("QueryError.Stack empty; want the panicking goroutine's stack")
	}
	if qe.Message == "" {
		t.Error("QueryError.Message empty")
	}

	// Answers over the non-poisoned graphs are exact.
	var want []int
	for _, gid := range trueAnswers(db, q) {
		if gid != poisoned {
			want = append(want, gid)
		}
	}
	if !equalInts(res.Answers, want) {
		t.Errorf("answers = %v, want %v (true answers minus poisoned graph)", res.Answers, want)
	}

	if got := obs.Panics.Value() - panicsBefore; got != 1 {
		t.Errorf("obs.Panics delta = %d, want 1", got)
	}
	if o.panics != 1 {
		t.Errorf("observer panics = %d, want 1", o.panics)
	}
	if got := matching.ScratchLive(); got != live {
		t.Errorf("scratch arenas leaked across panic: live %d, was %d", got, live)
	}
}

// TestPanicMidEnumerationReleasesScratch: a panic after filtering (in the
// ordering/enumeration half of the pipeline) must not strand the query's
// scratch arena — the deferred ReleaseScratch still runs, and the pool
// stays usable for the next query.
func TestPanicMidEnumerationReleasesScratch(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	db := randomDB(r, 10, 9, 2)
	q := walkQuery(r, db.Graph(0), 3)

	eng := &vcFV{
		name:   "CFQL-ordpanic",
		filter: matching.CFLFilter,
		order: func(q, g *graph.Graph, cand *matching.Candidates, s *matching.Scratch) []graph.VertexID {
			panic("mid-pipeline")
		},
	}
	if err := eng.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}

	live := matching.ScratchLive()
	res := eng.Query(q, QueryOptions{})
	if got := matching.ScratchLive(); got != live {
		t.Fatalf("scratch arenas leaked: live %d, was %d", got, live)
	}
	if res.Candidates > 0 && res.Skipped != res.Candidates {
		t.Errorf("Skipped=%d, want every candidate (%d) skipped", res.Skipped, res.Candidates)
	}
	if len(res.Answers) != 0 {
		t.Errorf("answers = %v, want none (every enumeration panicked)", res.Answers)
	}

	// The pool is intact: a clean engine answers exactly afterwards.
	clean := NewCFQL()
	if err := clean.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := clean.Query(q, QueryOptions{}); !equalInts(got.Answers, trueAnswers(db, q)) {
		t.Errorf("clean query after panics: answers %v, want %v", got.Answers, trueAnswers(db, q))
	}
	if got := matching.ScratchLive(); got != live {
		t.Errorf("scratch arenas leaked after clean query: live %d, was %d", got, live)
	}
}

// TestGraphErrorsCapped: a database where every graph panics still yields
// a bounded Result — GraphErrors is capped, Skipped carries the true count.
func TestGraphErrorsCapped(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := maxGraphErrors + 7
	db := randomDB(r, n, 8, 2)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	eng := poisonedCFQL(db, all...)
	if err := eng.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	q := walkQuery(r, db.Graph(0), 2)
	res := eng.Query(q, QueryOptions{})
	if res.Skipped != n {
		t.Errorf("Skipped = %d, want %d", res.Skipped, n)
	}
	if len(res.GraphErrors) != maxGraphErrors {
		t.Errorf("GraphErrors = %d, want capped at %d", len(res.GraphErrors), maxGraphErrors)
	}
}

// TestMemoryBudgetSkipsGraph: a MemoryBudget too small for any candidate
// structure skips every graph with a KindBudget error instead of failing
// the query — and a budget large enough changes nothing.
func TestMemoryBudgetSkipsGraph(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	db := randomDB(r, 8, 9, 2)
	q := walkQuery(r, db.Graph(0), 3)
	if q.NumVertices() < 2 {
		t.Skip("degenerate walk query")
	}

	for _, eng := range []Engine{NewCFQL(), NewVcGGSX()} {
		if err := eng.Build(db, BuildOptions{}); err != nil {
			t.Fatal(err)
		}
		res := eng.Query(q, QueryOptions{MemoryBudget: 1})
		if res.Err != nil {
			t.Fatalf("%s: query-level error: %v", eng.Name(), res.Err)
		}
		if res.Skipped == 0 {
			t.Errorf("%s: no graphs skipped under a 1-byte budget", eng.Name())
		}
		if len(res.Answers) != 0 {
			t.Errorf("%s: answers %v under a 1-byte budget, want none", eng.Name(), res.Answers)
		}
		for _, qe := range res.GraphErrors {
			if qe.Kind != KindBudget {
				t.Errorf("%s: GraphError kind %q, want %q", eng.Name(), qe.Kind, KindBudget)
			}
		}

		ample := eng.Query(q, QueryOptions{MemoryBudget: 1 << 30})
		if ample.Skipped != 0 {
			t.Errorf("%s: %d graphs skipped under a 1GiB budget", eng.Name(), ample.Skipped)
		}
		if !equalInts(ample.Answers, trueAnswers(db, q)) {
			t.Errorf("%s: answers %v under ample budget, want %v", eng.Name(), ample.Answers, trueAnswers(db, q))
		}
	}
}

// TestCancelStopsQuery: a closed Cancel channel halts every engine
// promptly with Cancelled and TimedOut set (the answer set is a lower
// bound either way), and parallel worker pools wind down without leaks.
func TestCancelStopsQuery(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	db := randomDB(r, 20, 9, 2)
	q := walkQuery(r, db.Graph(0), 3)

	cancelled := make(chan struct{})
	close(cancelled)

	baseline := runtime.NumGoroutine()
	for name, eng := range allEngines() {
		if err := eng.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := eng.Query(q, QueryOptions{Cancel: cancelled, Workers: 3})
		if !res.Cancelled || !res.TimedOut {
			t.Errorf("%s: Cancelled=%v TimedOut=%v with a closed Cancel, want both true",
				name, res.Cancelled, res.TimedOut)
		}
	}
	waitGoroutines(t, baseline)
}

// TestCancelMidFlight: cancellation raised while a filter pass is running
// is observed inside the pass (not just between graphs) and propagates to
// the result.
func TestCancelMidFlight(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	db := randomDB(r, 6, 9, 2)
	q := walkQuery(r, db.Graph(0), 3)

	cancel := make(chan struct{})
	started := make(chan struct{}, db.Len()+1)
	eng := &vcFV{
		name: "CFQL-blocking",
		filter: func(q, g *graph.Graph, opts matching.FilterOptions) *matching.Candidates {
			started <- struct{}{}
			// Block like a pathological pass until the caller cancels;
			// then behave like a cooperative filter observing its Cancel.
			<-opts.Cancel
			cand := matching.CFLFilter(q, g, matching.FilterOptions{Scratch: opts.Scratch})
			cand.Aborted = true
			return cand
		},
		order: func(q, g *graph.Graph, cand *matching.Candidates, s *matching.Scratch) []graph.VertexID {
			return matching.GraphQLOrderScratch(q, cand, s)
		},
	}
	if err := eng.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}

	done := make(chan *Result, 1)
	go func() { done <- eng.Query(q, QueryOptions{Cancel: cancel}) }()
	<-started // the query is mid-filter on the first graph
	close(cancel)
	select {
	case res := <-done:
		if !res.Cancelled || !res.TimedOut {
			t.Errorf("Cancelled=%v TimedOut=%v after mid-flight cancel, want both true",
				res.Cancelled, res.TimedOut)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not return after cancellation")
	}
}

// TestCancelParallelWorkersMidFlight drives the parallel CFQL and IvcFV
// worker pools with a Cancel raised while workers are mid-graph: the query
// returns promptly with Cancelled/TimedOut accounting and no goroutine
// survives the pool.
func TestCancelParallelWorkersMidFlight(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	// Large-ish graphs so the workers are actually mid-flight when the
	// cancel lands; correctness does not depend on the timing either way.
	db := randomDB(r, 40, 16, 2)
	q := walkQuery(r, db.Graph(0), 4)

	for name, eng := range map[string]Engine{
		"CFQL-parallel": NewParallelCFQL(3),
		"vcGrapes":      NewVcGrapes(),
	} {
		if err := eng.Build(db, BuildOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		baseline := runtime.NumGoroutine()
		cancel := make(chan struct{})
		done := make(chan *Result, 1)
		go func() { done <- eng.Query(q, QueryOptions{Cancel: cancel, Workers: 3}) }()
		time.Sleep(500 * time.Microsecond)
		close(cancel)
		select {
		case res := <-done:
			// The query may have finished before the cancel landed; only a
			// cut-short run must carry the cancellation marks.
			if res.Cancelled && !res.TimedOut {
				t.Errorf("%s: Cancelled without TimedOut", name)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: query did not return after cancellation", name)
		}
		waitGoroutines(t, baseline)
	}
}
