package gen

import (
	"fmt"
	"math/rand"

	"subgraphquery/internal/graph"
)

// Query generation (§IV-A "Query Sets"): queries are extracted from the
// data graphs so that every query has at least one answer. Three methods:
//
//   - QueryRandomWalk (sparse, Q_iS): select a random data graph and start
//     vertex, perform a random walk adding visited edges and vertices until
//     the desired number of edges is reached.
//   - QueryBFS (dense, Q_iD): as above, but breadth-first — whenever a new
//     vertex is visited, add the vertex and all its edges to already
//     visited vertices.
//   - QueryInduced (dense, Q_iI): grow a vertex set breadth-first and take
//     the full vertex-induced subgraph — the densest extraction possible on
//     a given vertex set, maximizing average degree and backward edges.

// QueryMethod selects a query generation strategy.
type QueryMethod int

// The two generation methods of the paper, plus the induced dense track.
const (
	QueryRandomWalk QueryMethod = iota // sparse: Q_iS
	QueryBFS                           // dense: Q_iD
	QueryInduced                       // dense, vertex-induced: Q_iI
)

// String returns the set-name suffix for the method ("S", "D" or "I"; the
// first two are the paper's).
func (m QueryMethod) String() string {
	switch m {
	case QueryRandomWalk:
		return "S"
	case QueryBFS:
		return "D"
	default:
		return "I"
	}
}

// QuerySetConfig parameterizes one query set. The paper generates, per
// dataset, eight sets — {4, 8, 16, 32} edges × {random walk, BFS} — of 100
// queries each.
type QuerySetConfig struct {
	Count  int // queries per set (paper: 100)
	Edges  int // edges per query
	Method QueryMethod
	Seed   int64
}

// Name returns the paper's label for the set, e.g. "Q8S" or "Q32D".
func (c QuerySetConfig) Name() string {
	return fmt.Sprintf("Q%d%s", c.Edges, c.Method)
}

// QuerySet generates a query set against db. Every query is connected,
// has exactly cfg.Edges edges and is subgraph-isomorphic to at least one
// data graph by construction.
func QuerySet(db *graph.Database, cfg QuerySetConfig) ([]*graph.Graph, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("gen: empty database")
	}
	if cfg.Count <= 0 || cfg.Edges <= 0 {
		return nil, fmt.Errorf("gen: non-positive query set parameter: %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	queries := make([]*graph.Graph, 0, cfg.Count)
	for len(queries) < cfg.Count {
		g := db.Graph(r.Intn(db.Len()))
		if g.NumEdges() < cfg.Edges {
			continue
		}
		var q *graph.Graph
		switch cfg.Method {
		case QueryRandomWalk:
			q = walkExtract(r, g, cfg.Edges)
		case QueryBFS:
			q = bfsExtract(r, g, cfg.Edges)
		default:
			q = inducedExtract(r, g, cfg.Edges)
		}
		if q == nil {
			continue
		}
		// Walk and BFS extraction hit the edge target exactly; induced
		// extraction cannot (adopting a vertex adds all its edges into the
		// visited set at once), so Q_iI accepts a bounded overshoot.
		if cfg.Method == QueryInduced {
			if q.NumEdges() >= cfg.Edges && q.NumEdges() <= 2*cfg.Edges {
				queries = append(queries, q)
			}
		} else if q.NumEdges() == cfg.Edges {
			queries = append(queries, q)
		}
	}
	return queries, nil
}

// extraction keeps the data-to-query vertex renaming while edges accrue.
type extraction struct {
	ids    map[graph.VertexID]graph.VertexID
	labels []graph.Label
	es     *edgeSet
	g      *graph.Graph
}

func newExtraction(g *graph.Graph) *extraction {
	return &extraction{
		ids: make(map[graph.VertexID]graph.VertexID),
		es:  newEdgeSet(g.NumVertices()),
		g:   g,
	}
}

func (x *extraction) id(v graph.VertexID) graph.VertexID {
	if q, ok := x.ids[v]; ok {
		return q
	}
	q := graph.VertexID(len(x.labels))
	x.ids[v] = q
	x.labels = append(x.labels, x.g.Label(v))
	return q
}

// addEdge records the data edge (u,v) and reports whether it was new.
func (x *extraction) addEdge(u, v graph.VertexID) bool {
	return x.es.add(x.id(u), x.id(v))
}

func (x *extraction) build() *graph.Graph {
	return graph.MustFromEdges(x.labels, x.es.edges)
}

// walkExtract follows the paper's random walk procedure; returns nil when
// the walk stalls before reaching the edge target.
func walkExtract(r *rand.Rand, g *graph.Graph, edges int) *graph.Graph {
	x := newExtraction(g)
	cur := graph.VertexID(r.Intn(g.NumVertices()))
	x.id(cur)
	for steps := 0; x.es.len() < edges; steps++ {
		if steps > 200*edges+200 {
			return nil
		}
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			return nil
		}
		next := nbrs[r.Intn(len(nbrs))]
		x.addEdge(cur, next)
		cur = next
	}
	return x.build()
}

// bfsExtract follows the paper's BFS procedure: traverse breadth-first
// from a random start; when visiting a new vertex, add its edges to all
// already-visited vertices one at a time, stopping exactly at the edge
// target.
func bfsExtract(r *rand.Rand, g *graph.Graph, edges int) *graph.Graph {
	x := newExtraction(g)
	start := graph.VertexID(r.Intn(g.NumVertices()))
	x.id(start)
	visited := map[graph.VertexID]bool{start: true}
	queue := []graph.VertexID{start}
	for len(queue) > 0 && x.es.len() < edges {
		v := queue[0]
		queue = queue[1:]
		// Shuffle neighbor visit order for query diversity.
		nbrs := append([]graph.VertexID(nil), g.Neighbors(v)...)
		r.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
		for _, w := range nbrs {
			if x.es.len() >= edges {
				break
			}
			if visited[w] {
				continue
			}
			visited[w] = true
			queue = append(queue, w)
			// Add w's edges to all visited vertices, capped at the target.
			for _, u := range g.Neighbors(w) {
				if visited[u] {
					x.addEdge(w, u)
					if x.es.len() >= edges {
						break
					}
				}
			}
		}
	}
	if x.es.len() != edges {
		return nil
	}
	return x.build()
}

// inducedExtract grows a vertex set breadth-first from a random start and
// returns the vertex-induced subgraph once it carries at least the target
// number of edges: every time a vertex is adopted, *all* of its edges to
// previously adopted vertices are added, so the result is the densest
// subgraph on the chosen vertex set. Returns nil when the component is
// exhausted before reaching the target.
func inducedExtract(r *rand.Rand, g *graph.Graph, edges int) *graph.Graph {
	x := newExtraction(g)
	start := graph.VertexID(r.Intn(g.NumVertices()))
	x.id(start)
	visited := map[graph.VertexID]bool{start: true}
	queue := []graph.VertexID{start}
	for len(queue) > 0 && x.es.len() < edges {
		v := queue[r.Intn(len(queue))] // random frontier pick for diversity
		last := len(queue) - 1
		for i, w := range queue {
			if w == v {
				queue[i] = queue[last]
				break
			}
		}
		queue = queue[:last]
		for _, w := range g.Neighbors(v) {
			if x.es.len() >= edges {
				break
			}
			if visited[w] {
				continue
			}
			// Adopting w adds all its edges into the visited set at once;
			// skip hubs that would overshoot the 2× acceptance cap (dense
			// data graphs otherwise rarely land in the accepted band).
			add := 0
			for _, u := range g.Neighbors(w) {
				if visited[u] {
					add++
				}
			}
			if x.es.len()+add > 2*edges {
				continue
			}
			visited[w] = true
			queue = append(queue, w)
			// Induced: adopt every edge from w back into the visited set.
			for _, u := range g.Neighbors(w) {
				if visited[u] {
					x.addEdge(w, u)
				}
			}
		}
	}
	if x.es.len() < edges {
		return nil
	}
	return x.build()
}

// QuerySetStats summarizes a query set in the shape of the paper's Table V.
type QuerySetStats struct {
	VerticesPerQuery float64 // |V| per q
	LabelsPerQuery   float64 // |Σ| per q
	DegreePerQuery   float64 // d per q
	TreeFraction     float64 // % of trees
}

// ComputeQuerySetStats returns Table V-style statistics for the set.
func ComputeQuerySetStats(queries []*graph.Graph) QuerySetStats {
	var s QuerySetStats
	if len(queries) == 0 {
		return s
	}
	for _, q := range queries {
		s.VerticesPerQuery += float64(q.NumVertices())
		s.LabelsPerQuery += float64(q.DistinctLabels())
		s.DegreePerQuery += q.AverageDegree()
		if q.IsTree() {
			s.TreeFraction++
		}
	}
	n := float64(len(queries))
	s.VerticesPerQuery /= n
	s.LabelsPerQuery /= n
	s.DegreePerQuery /= n
	s.TreeFraction /= n
	return s
}
