// Package gen generates the datasets and query workloads of the paper's
// evaluation: GraphGen-style synthetic graph databases parameterized by
// |D|, |V(G)|, |Σ| and d(G) (§IV-A), simulators matched to the published
// statistics of the real-world datasets AIDS, PDBS, PCM and PPI (Table IV),
// and the two query generators — random walk (sparse, Q_iS) and
// breadth-first search (dense, Q_iD).
//
// All generation is deterministic given the seed.
package gen

import (
	"fmt"
	"math/rand"

	"subgraphquery/internal/graph"
)

// SyntheticConfig parameterizes the GraphGen-like generator. The paper's
// default synthetic dataset is {NumGraphs: 1000, NumVertices: 200,
// NumLabels: 20, Degree: 8}; its scalability study varies one parameter at
// a time (Tables VIII/IX, Figures 8/9).
type SyntheticConfig struct {
	NumGraphs   int     // |D|
	NumVertices int     // |V(G)| per data graph
	NumLabels   int     // |Σ|
	Degree      float64 // d(G) = 2|E|/|V|
	Seed        int64
}

// DefaultSynthetic returns the paper's default synthetic configuration.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{NumGraphs: 1000, NumVertices: 200, NumLabels: 20, Degree: 8, Seed: 1}
}

// Synthetic generates a database per cfg. Each data graph is connected: a
// uniform random spanning tree plus uniform random extra edges up to
// ⌊|V|·d/2⌋ total, with labels drawn uniformly from Σ.
func Synthetic(cfg SyntheticConfig) (*graph.Database, error) {
	if cfg.NumGraphs <= 0 || cfg.NumVertices <= 0 || cfg.NumLabels <= 0 {
		return nil, fmt.Errorf("gen: non-positive synthetic parameter: %+v", cfg)
	}
	maxEdges := int64(cfg.NumVertices) * int64(cfg.NumVertices-1) / 2
	wantEdges := int64(float64(cfg.NumVertices) * cfg.Degree / 2)
	if wantEdges > maxEdges {
		return nil, fmt.Errorf("gen: degree %v infeasible for %d vertices", cfg.Degree, cfg.NumVertices)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	graphs := make([]*graph.Graph, cfg.NumGraphs)
	for i := range graphs {
		graphs[i] = randomConnectedGraph(r, cfg.NumVertices, int(wantEdges), func() graph.Label {
			return graph.Label(r.Intn(cfg.NumLabels))
		})
	}
	return graph.NewDatabase(graphs), nil
}

// randomConnectedGraph builds a connected graph with n vertices and
// approximately wantEdges edges (at least n-1), labels drawn from nextLabel.
func randomConnectedGraph(r *rand.Rand, n, wantEdges int, nextLabel func() graph.Label) *graph.Graph {
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = nextLabel()
	}
	es := newEdgeSet(n)
	// Random spanning tree: attach each vertex to a uniformly random
	// earlier vertex of a random permutation.
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		es.add(graph.VertexID(perm[i]), graph.VertexID(perm[r.Intn(i)]))
	}
	maxEdges := n * (n - 1) / 2
	if wantEdges > maxEdges {
		wantEdges = maxEdges
	}
	for es.len() < wantEdges {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			es.add(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return graph.MustFromEdges(labels, es.edges)
}

// edgeSet deduplicates undirected edges.
type edgeSet struct {
	seen  map[uint64]struct{}
	edges []graph.Edge
}

func newEdgeSet(n int) *edgeSet {
	return &edgeSet{seen: make(map[uint64]struct{}, 2*n)}
}

func (s *edgeSet) key(u, v graph.VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// add inserts the edge if new and reports whether it was inserted.
func (s *edgeSet) add(u, v graph.VertexID) bool {
	if u == v {
		return false
	}
	k := s.key(u, v)
	if _, ok := s.seen[k]; ok {
		return false
	}
	s.seen[k] = struct{}{}
	if u > v {
		u, v = v, u
	}
	s.edges = append(s.edges, graph.Edge{U: u, V: v})
	return true
}

func (s *edgeSet) has(u, v graph.VertexID) bool {
	_, ok := s.seen[s.key(u, v)]
	return ok
}

func (s *edgeSet) len() int { return len(s.edges) }
