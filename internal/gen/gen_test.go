package gen

import (
	"math"
	"testing"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
)

func TestSyntheticShape(t *testing.T) {
	cfg := SyntheticConfig{NumGraphs: 30, NumVertices: 50, NumLabels: 7, Degree: 6, Seed: 9}
	db, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 30 {
		t.Fatalf("Len = %d, want 30", db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		g := db.Graph(i)
		if g.NumVertices() != 50 {
			t.Errorf("graph %d has %d vertices, want 50", i, g.NumVertices())
		}
		if !g.IsConnected() {
			t.Errorf("graph %d not connected", i)
		}
		if got := g.AverageDegree(); math.Abs(got-6) > 0.2 {
			t.Errorf("graph %d degree %v, want ~6", i, got)
		}
		for _, l := range g.Labels() {
			if int(l) >= 7 {
				t.Errorf("graph %d label %d outside Σ", i, l)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{NumGraphs: 5, NumVertices: 30, NumLabels: 4, Degree: 4, Seed: 42}
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		ga, gb := a.Graph(i), b.Graph(i)
		if ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("graph %d differs across runs with same seed", i)
		}
		ea, eb := ga.Edges(), gb.Edges()
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("graph %d edge %d differs: %v vs %v", i, j, ea[j], eb[j])
			}
		}
	}
	cfg.Seed = 43
	c, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len() && same; i++ {
		ea, ec := a.Graph(i).Edges(), c.Graph(i).Edges()
		if len(ea) != len(ec) {
			same = false
			break
		}
		for j := range ea {
			if ea[j] != ec[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{NumGraphs: 0, NumVertices: 10, NumLabels: 2, Degree: 2}); err == nil {
		t.Error("zero graphs should error")
	}
	if _, err := Synthetic(SyntheticConfig{NumGraphs: 1, NumVertices: 4, NumLabels: 2, Degree: 10}); err == nil {
		t.Error("infeasible degree should error")
	}
}

func TestRealDatasetStatistics(t *testing.T) {
	// Published Table IV statistics, checked within tolerance at a reduced
	// scale (absolute counts scale down; per-graph shape must hold).
	cases := []struct {
		name       RealDataset
		scale      float64
		wantDeg    float64
		degTol     float64
		wantLabels int
	}{
		{AIDS, 0.01, 2.09, 0.2, 62},
		{PDBS, 0.05, 2.06, 0.25, 10},
		{PCM, 0.1, 23.01, 2.0, 21},
		{PPI, 0.25, 10.87, 1.2, 46},
	}
	for _, tc := range cases {
		t.Run(string(tc.name), func(t *testing.T) {
			db, err := Real(tc.name, tc.scale, 7)
			if err != nil {
				t.Fatal(err)
			}
			if db.Len() == 0 {
				t.Fatal("empty database")
			}
			s := db.ComputeStats()
			if math.Abs(s.DegreePerGraph-tc.wantDeg) > tc.degTol {
				t.Errorf("degree per graph = %.2f, want %.2f±%.2f", s.DegreePerGraph, tc.wantDeg, tc.degTol)
			}
			if s.NumLabels > tc.wantLabels {
				t.Errorf("labels = %d, want <= %d", s.NumLabels, tc.wantLabels)
			}
			for i := 0; i < db.Len(); i++ {
				if !db.Graph(i).IsConnected() {
					t.Fatalf("graph %d not connected", i)
				}
			}
		})
	}
}

func TestRealRelativeSizes(t *testing.T) {
	aids, _ := Real(AIDS, 0.01, 1)
	pcm, _ := Real(PCM, 0.1, 1)
	ppi, _ := Real(PPI, 0.25, 1)
	sa, sc, sp := aids.ComputeStats(), pcm.ComputeStats(), ppi.ComputeStats()
	if !(sa.VerticesPerGraph < sc.VerticesPerGraph && sc.VerticesPerGraph < sp.VerticesPerGraph) {
		t.Errorf("vertex counts should order AIDS < PCM < PPI: %.0f %.0f %.0f",
			sa.VerticesPerGraph, sc.VerticesPerGraph, sp.VerticesPerGraph)
	}
	if !(sa.DegreePerGraph < sp.DegreePerGraph && sp.DegreePerGraph < sc.DegreePerGraph) {
		t.Errorf("degrees should order AIDS < PPI < PCM: %.1f %.1f %.1f",
			sa.DegreePerGraph, sp.DegreePerGraph, sc.DegreePerGraph)
	}
}

func TestRealErrors(t *testing.T) {
	if _, err := Real("nope", 0.5, 1); err == nil {
		t.Error("unknown dataset should error")
	}
	if _, err := Real(AIDS, 0, 1); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := Real(AIDS, 1.5, 1); err == nil {
		t.Error("scale > 1 should error")
	}
}

func TestQuerySetBasics(t *testing.T) {
	db, err := Synthetic(SyntheticConfig{NumGraphs: 20, NumVertices: 40, NumLabels: 5, Degree: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []QueryMethod{QueryRandomWalk, QueryBFS} {
		for _, edges := range []int{4, 8, 16} {
			cfg := QuerySetConfig{Count: 25, Edges: edges, Method: method, Seed: 5}
			qs, err := QuerySet(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(qs) != 25 {
				t.Fatalf("%s: got %d queries, want 25", cfg.Name(), len(qs))
			}
			for _, q := range qs {
				if q.NumEdges() != edges {
					t.Fatalf("%s: query has %d edges, want %d", cfg.Name(), q.NumEdges(), edges)
				}
				if !q.IsConnected() {
					t.Fatalf("%s: disconnected query", cfg.Name())
				}
			}
		}
	}
}

// TestQueriesHaveAnswers: every generated query must be contained in at
// least one data graph (by construction it is a subgraph of its source).
func TestQueriesHaveAnswers(t *testing.T) {
	db, err := Synthetic(SyntheticConfig{NumGraphs: 10, NumVertices: 30, NumLabels: 4, Degree: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []QueryMethod{QueryRandomWalk, QueryBFS} {
		qs, err := QuerySet(db, QuerySetConfig{Count: 10, Edges: 6, Method: method, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			found := false
			for i := 0; i < db.Len(); i++ {
				if (&matching.VF2{}).FindFirst(q, db.Graph(i), matching.Options{}).Found() {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("method %v query %d has no answers", method, qi)
			}
		}
	}
}

// TestBFSQueriesDenserThanWalk reproduces the workload property the paper
// relies on: BFS query sets are denser than random walk sets of the same
// edge count (Table V).
func TestBFSQueriesDenserThanWalk(t *testing.T) {
	db, err := Synthetic(SyntheticConfig{NumGraphs: 20, NumVertices: 60, NumLabels: 5, Degree: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := QuerySet(db, QuerySetConfig{Count: 40, Edges: 8, Method: QueryRandomWalk, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := QuerySet(db, QuerySetConfig{Count: 40, Edges: 8, Method: QueryBFS, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	ss, ds := ComputeQuerySetStats(sparse), ComputeQuerySetStats(dense)
	if ds.DegreePerQuery <= ss.DegreePerQuery {
		t.Errorf("BFS degree %.2f should exceed walk degree %.2f", ds.DegreePerQuery, ss.DegreePerQuery)
	}
	if ds.VerticesPerQuery >= ss.VerticesPerQuery {
		t.Errorf("BFS |V| %.2f should be below walk |V| %.2f", ds.VerticesPerQuery, ss.VerticesPerQuery)
	}
}

func TestQuerySetName(t *testing.T) {
	if got := (QuerySetConfig{Edges: 8, Method: QueryRandomWalk}).Name(); got != "Q8S" {
		t.Errorf("Name = %q, want Q8S", got)
	}
	if got := (QuerySetConfig{Edges: 32, Method: QueryBFS}).Name(); got != "Q32D" {
		t.Errorf("Name = %q, want Q32D", got)
	}
	if got := (QuerySetConfig{Edges: 16, Method: QueryInduced}).Name(); got != "Q16I" {
		t.Errorf("Name = %q, want Q16I", got)
	}
}

// TestInducedQuerySet: the vertex-induced extraction produces connected
// queries with at least the target edge count (bounded overshoot), every
// one contained in some data graph, and denser on average than the BFS
// sets of the same nominal size.
func TestInducedQuerySet(t *testing.T) {
	db, err := Synthetic(SyntheticConfig{NumGraphs: 20, NumVertices: 60, NumLabels: 5, Degree: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := QuerySet(db, QuerySetConfig{Count: 30, Edges: 8, Method: QueryInduced, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 30 {
		t.Fatalf("got %d queries, want 30", len(qs))
	}
	for qi, q := range qs {
		if q.NumEdges() < 8 || q.NumEdges() > 16 {
			t.Fatalf("query %d has %d edges, want within [8,16]", qi, q.NumEdges())
		}
		if !q.IsConnected() {
			t.Fatalf("query %d disconnected", qi)
		}
		found := false
		for i := 0; i < db.Len() && !found; i++ {
			found = (&matching.VF2{}).FindFirst(q, db.Graph(i), matching.Options{}).Found()
		}
		if !found {
			t.Fatalf("induced query %d has no answers", qi)
		}
	}
	bfs, err := QuerySet(db, QuerySetConfig{Count: 30, Edges: 8, Method: QueryBFS, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	is, bs := ComputeQuerySetStats(qs), ComputeQuerySetStats(bfs)
	if is.DegreePerQuery <= bs.DegreePerQuery {
		t.Errorf("induced degree %.2f should exceed BFS degree %.2f", is.DegreePerQuery, bs.DegreePerQuery)
	}
}

func TestQuerySetErrors(t *testing.T) {
	empty := graph.NewDatabase(nil)
	if _, err := QuerySet(empty, QuerySetConfig{Count: 1, Edges: 2}); err == nil {
		t.Error("empty database should error")
	}
	db, _ := Synthetic(SyntheticConfig{NumGraphs: 2, NumVertices: 10, NumLabels: 2, Degree: 3, Seed: 1})
	if _, err := QuerySet(db, QuerySetConfig{Count: 0, Edges: 2}); err == nil {
		t.Error("zero count should error")
	}
	if _, err := QuerySet(db, QuerySetConfig{Count: 1, Edges: 0}); err == nil {
		t.Error("zero edges should error")
	}
}

func TestComputeQuerySetStatsEmpty(t *testing.T) {
	s := ComputeQuerySetStats(nil)
	if s.VerticesPerQuery != 0 || s.TreeFraction != 0 {
		t.Errorf("empty stats = %+v, want zeros", s)
	}
}

func TestEdgeSet(t *testing.T) {
	es := newEdgeSet(4)
	if !es.add(0, 1) || es.add(1, 0) || es.add(0, 0) {
		t.Error("edgeSet add/dedup misbehaved")
	}
	if !es.has(0, 1) || !es.has(1, 0) || es.has(2, 3) {
		t.Error("edgeSet has misbehaved")
	}
	if es.len() != 1 {
		t.Errorf("len = %d, want 1", es.len())
	}
}
