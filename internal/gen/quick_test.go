package gen

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"subgraphquery/internal/graph"
)

// Property-based tests (testing/quick) on the generators.

// TestQuickSyntheticInvariants: every generated graph is connected, has
// the requested vertex count, labels within Σ, and edge count
// ⌊|V|·d/2⌋ (bounded by the complete graph).
func TestQuickSyntheticInvariants(t *testing.T) {
	f := func(seed int64, rawV, rawL, rawD uint8) bool {
		v := 2 + int(rawV)%60
		l := 1 + int(rawL)%8
		d := 1 + float64(rawD%10)
		wantE := int(float64(v) * d / 2)
		maxE := v * (v - 1) / 2
		if wantE > maxE {
			return true // infeasible configs are rejected by Synthetic; skip
		}
		db, err := Synthetic(SyntheticConfig{
			NumGraphs: 3, NumVertices: v, NumLabels: l, Degree: d, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < db.Len(); i++ {
			g := db.Graph(i)
			if g.NumVertices() != v || !g.IsConnected() {
				return false
			}
			minE := v - 1
			if wantE > minE {
				minE = wantE
			}
			if g.NumEdges() != minE {
				return false
			}
			for _, lab := range g.Labels() {
				if int(lab) >= l {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickQueriesAreSubgraphStats: every generated query's edge count is
// exact and its vertex count lies in [edges/ (max possible density) ...
// edges+1]; also it is connected.
func TestQuickQueryInvariants(t *testing.T) {
	db, err := Synthetic(SyntheticConfig{
		NumGraphs: 8, NumVertices: 40, NumLabels: 4, Degree: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, rawE, method uint8) bool {
		edges := 2 + int(rawE)%10
		m := QueryRandomWalk
		if method%2 == 1 {
			m = QueryBFS
		}
		qs, err := QuerySet(db, QuerySetConfig{Count: 3, Edges: edges, Method: m, Seed: seed})
		if err != nil {
			return false
		}
		for _, q := range qs {
			if q.NumEdges() != edges || !q.IsConnected() {
				return false
			}
			if q.NumVertices() > edges+1 {
				return false // connected graph with e edges has <= e+1 vertices
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSerializationRoundTrip: any generated graph survives the text
// format unchanged.
func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(r, 2+r.Intn(30), 5+r.Intn(40), func() graph.Label {
			return graph.Label(r.Intn(6))
		})
		var buf bytes.Buffer
		if err := graph.WriteGraph(&buf, 0, g); err != nil {
			return false
		}
		back, err := graph.ReadGraph(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			if back.Label(graph.VertexID(v)) != g.Label(graph.VertexID(v)) {
				return false
			}
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPreferentialAttachmentShape: PA graphs are connected with the
// requested size and a heavy tail (max degree well above the average).
func TestQuickPreferentialAttachmentShape(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := 60 + r.Intn(100)
		g := preferentialAttachment(r, v, 3, 6, func() graph.Label { return 0 })
		if g.NumVertices() != v || !g.IsConnected() {
			return false
		}
		return float64(g.MaxDegree()) > 1.5*g.AverageDegree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
