package gen

import (
	"fmt"
	"math/rand"

	"subgraphquery/internal/graph"
)

// Simulators for the paper's four real-world datasets. The originals were
// obtained privately from the authors of [15] and are not redistributable;
// these generators are tuned to the published statistics of Table IV:
//
//	            AIDS    PDBS   PCM    PPI
//	#graphs     40,000  600    200    20
//	#labels     62      10     21     46
//	#vertices   45      2,939  377    4,942
//	#edges      46.95   3,064  4,340  26,667
//	degree      2.09    2.06   23.01  10.87
//	#labels/g   4.4     6.4    18.9   28.5
//
// Structure per domain: AIDS graphs are molecule-like (near-trees with a
// few rings, heavily skewed label use — few "element" labels dominate);
// PDBS graphs are macromolecule backbones (long chains with side branches);
// PCM graphs are dense protein-contact maps (uniform labels, high degree);
// PPI graphs are large protein-interaction networks with a heavy-tailed
// degree distribution (preferential attachment).
//
// Scale (0 < scale <= 1) shrinks #graphs — and for the two large-graph
// datasets also |V| — so the full suite runs on one machine; the per-graph
// statistics that drive algorithm behaviour are preserved.

// RealDataset names a simulated real-world dataset.
type RealDataset string

// The four simulated datasets of the paper's evaluation.
const (
	AIDS RealDataset = "AIDS"
	PDBS RealDataset = "PDBS"
	PCM  RealDataset = "PCM"
	PPI  RealDataset = "PPI"
)

// RealDatasets lists the four datasets in the paper's presentation order.
func RealDatasets() []RealDataset { return []RealDataset{AIDS, PDBS, PCM, PPI} }

// Real generates a simulated instance of the named dataset at the given
// scale with the given seed.
func Real(name RealDataset, scale float64, seed int64) (*graph.Database, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("gen: scale %v outside (0,1]", scale)
	}
	r := rand.New(rand.NewSource(seed))
	switch name {
	case AIDS:
		return aidsLike(r, scale), nil
	case PDBS:
		return pdbsLike(r, scale), nil
	case PCM:
		return pcmLike(r, scale), nil
	case PPI:
		return ppiLike(r, scale), nil
	}
	return nil, fmt.Errorf("gen: unknown dataset %q", name)
}

func scaleCount(n int, scale float64, minimum int) int {
	s := int(float64(n) * scale)
	if s < minimum {
		s = minimum
	}
	return s
}

// zipfLabels returns a label sampler over `labels` distinct labels with a
// Zipf-like skew: label 0 most frequent. skew s=1.2 gives molecule-like
// concentration; small s approaches uniform.
func zipfLabels(r *rand.Rand, labels int, s float64) func() graph.Label {
	z := rand.NewZipf(r, s, 1, uint64(labels-1))
	return func() graph.Label { return graph.Label(z.Uint64()) }
}

// aidsLike: many small sparse molecule-like graphs. Each graph: |V| ~
// 30..60 (mean ≈ 45), spanning tree + ~4.5% extra edges (rings), degree ≈
// 2.09, labels Zipf over 62 so ~4-5 distinct labels per graph.
func aidsLike(r *rand.Rand, scale float64) *graph.Database {
	n := scaleCount(40000, scale, 50)
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		v := 30 + r.Intn(31)
		e := v - 1 + int(float64(v)*0.045) + r.Intn(2)
		graphs[i] = randomConnectedGraph(r, v, e, zipfLabels(r, 62, 2.2))
	}
	return graph.NewDatabase(graphs)
}

// pdbsLike: hundreds of large chain-like graphs. Backbone path over ~80% of
// vertices, remaining vertices attach as side branches, plus ~2% cross
// edges. Degree ≈ 2.06, 10 labels moderately skewed (~6.4 per graph).
func pdbsLike(r *rand.Rand, scale float64) *graph.Database {
	n := scaleCount(600, scale, 10)
	vBase := scaleCount(2939, scale, 150)
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		v := vBase*3/4 + r.Intn(vBase/2+1)
		graphs[i] = chainGraph(r, v, zipfLabels(r, 10, 1.4))
	}
	return graph.NewDatabase(graphs)
}

// chainGraph builds a backbone path with side branches and sparse cross
// edges — degree just above 2.
func chainGraph(r *rand.Rand, v int, nextLabel func() graph.Label) *graph.Graph {
	labels := make([]graph.Label, v)
	for i := range labels {
		labels[i] = nextLabel()
	}
	es := newEdgeSet(v)
	backbone := v * 4 / 5
	if backbone < 2 {
		backbone = v
	}
	for i := 1; i < backbone; i++ {
		es.add(graph.VertexID(i-1), graph.VertexID(i))
	}
	// Side branches: each remaining vertex hangs off a random backbone
	// vertex.
	for i := backbone; i < v; i++ {
		es.add(graph.VertexID(r.Intn(backbone)), graph.VertexID(i))
	}
	// Sparse cross edges (disulfide-bond-like), ~3% of |V|.
	for k := 0; k < v*3/100; k++ {
		es.add(graph.VertexID(r.Intn(v)), graph.VertexID(r.Intn(v)))
	}
	return graph.MustFromEdges(labels, es.edges)
}

// pcmLike: a few hundred dense contact maps: |V| ≈ 377, degree ≈ 23,
// 21 near-uniform labels.
func pcmLike(r *rand.Rand, scale float64) *graph.Database {
	n := scaleCount(200, scale, 8)
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		v := 280 + r.Intn(195)
		e := int(float64(v) * 23.01 / 2)
		graphs[i] = randomConnectedGraph(r, v, e, zipfLabels(r, 21, 1.05))
	}
	return graph.NewDatabase(graphs)
}

// ppiLike: a handful of large interaction networks with heavy-tailed
// degrees: preferential attachment with m ≈ 5, then uniform extra edges up
// to degree ≈ 10.87; 46 moderately skewed labels.
func ppiLike(r *rand.Rand, scale float64) *graph.Database {
	n := scaleCount(20, scale, 4)
	vBase := scaleCount(4942, scale, 300)
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		v := vBase*3/4 + r.Intn(vBase/2+1)
		graphs[i] = preferentialAttachment(r, v, 5, 10.87, zipfLabels(r, 46, 1.2))
	}
	return graph.NewDatabase(graphs)
}

// preferentialAttachment grows a Barabási–Albert-style graph: each new
// vertex attaches m edges to endpoints sampled proportionally to degree,
// then uniform random edges raise the average degree to targetDegree.
func preferentialAttachment(r *rand.Rand, v, m int, targetDegree float64, nextLabel func() graph.Label) *graph.Graph {
	if v < m+1 {
		m = v - 1
	}
	labels := make([]graph.Label, v)
	for i := range labels {
		labels[i] = nextLabel()
	}
	es := newEdgeSet(v)
	// endpoints holds one entry per edge endpoint: sampling uniformly from
	// it is degree-proportional sampling.
	endpoints := make([]graph.VertexID, 0, 2*int(float64(v)*targetDegree/2))
	// Seed clique of m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if es.add(graph.VertexID(i), graph.VertexID(j)) {
				endpoints = append(endpoints, graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	for i := m + 1; i < v; i++ {
		for k := 0; k < m; k++ {
			var target graph.VertexID
			for attempt := 0; ; attempt++ {
				target = endpoints[r.Intn(len(endpoints))]
				if target != graph.VertexID(i) && !es.has(graph.VertexID(i), target) {
					break
				}
				if attempt > 32 { // dense corner case: fall back to uniform
					target = graph.VertexID(r.Intn(i))
					if target == graph.VertexID(i) || es.has(graph.VertexID(i), target) {
						continue
					}
					break
				}
			}
			if es.add(graph.VertexID(i), target) {
				endpoints = append(endpoints, graph.VertexID(i), target)
			}
		}
	}
	want := int(float64(v) * targetDegree / 2)
	maxEdges := v * (v - 1) / 2
	if want > maxEdges {
		want = maxEdges
	}
	for es.len() < want {
		u, w := r.Intn(v), r.Intn(v)
		if u != w {
			es.add(graph.VertexID(u), graph.VertexID(w))
		}
	}
	return graph.MustFromEdges(labels, es.edges)
}
