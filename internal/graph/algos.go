package graph

// Structural utilities shared by the matching algorithms: connectivity,
// BFS spanning trees (used by CFL's candidate generation) and the 2-core
// (used by CFL's core-first matching order).

// IsConnected reports whether g is connected. The empty graph is connected.
func (g *Graph) IsConnected() bool {
	n := g.NumVertices()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	queue := make([]VertexID, 0, n)
	queue = append(queue, 0)
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n
}

// BFSTree is a breadth-first spanning tree of a connected graph, the q_t
// structure CFL builds over the query graph (§III-B).
type BFSTree struct {
	Root     VertexID
	Parent   []int32      // Parent[v] = parent of v in the tree, -1 for root
	Depth    []int32      // Depth[v] = distance from root
	Order    []VertexID   // vertices in BFS visit order (level by level)
	Children [][]VertexID // tree children of each vertex
	Levels   [][]VertexID // Levels[d] = vertices at depth d
}

// NewBFSTree builds the BFS tree of g rooted at root. g must be connected;
// unreachable vertices would yield Parent=-1 with Depth=-1.
func NewBFSTree(g *Graph, root VertexID) *BFSTree {
	n := g.NumVertices()
	t := &BFSTree{
		Root:     root,
		Parent:   make([]int32, n),
		Depth:    make([]int32, n),
		Order:    make([]VertexID, 0, n),
		Children: make([][]VertexID, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Depth[i] = -1
	}
	t.Depth[root] = 0
	queue := []VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		t.Order = append(t.Order, v)
		d := t.Depth[v]
		for int(d) >= len(t.Levels) {
			t.Levels = append(t.Levels, nil)
		}
		t.Levels[d] = append(t.Levels[d], v)
		for _, w := range g.Neighbors(v) {
			if t.Depth[w] == -1 {
				t.Depth[w] = d + 1
				t.Parent[w] = int32(v)
				t.Children[v] = append(t.Children[v], w)
				queue = append(queue, w)
			}
		}
	}
	return t
}

// TwoCore returns a boolean mask marking the vertices in the 2-core of g:
// the maximal subgraph in which every vertex has degree at least 2. CFL
// prioritizes these "core structure" vertices in its matching order. Trees
// have an empty 2-core.
func (g *Graph) TwoCore() []bool {
	n := g.NumVertices()
	deg := make([]int, n)
	inCore := make([]bool, n)
	queue := make([]VertexID, 0)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(VertexID(v))
		inCore[v] = true
		if deg[v] < 2 {
			queue = append(queue, VertexID(v))
			inCore[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(v) {
			if inCore[w] {
				deg[w]--
				if deg[w] < 2 {
					inCore[w] = false
					queue = append(queue, w)
				}
			}
		}
	}
	return inCore
}

// CoreSize returns the number of vertices in the 2-core of g.
func (g *Graph) CoreSize() int {
	core := g.TwoCore()
	n := 0
	for _, in := range core {
		if in {
			n++
		}
	}
	return n
}

// IsTree reports whether g is a connected acyclic graph; the paper's
// Table V reports the fraction of tree-shaped queries per query set.
func (g *Graph) IsTree() bool {
	return g.NumEdges() == g.NumVertices()-1 && g.IsConnected()
}
