package graph

import (
	"cmp"
	"fmt"
)

// Runtime invariant assertions over the CSR representation, active only
// under the sqdebug build tag (see sqdebug_on.go). Every graph leaving
// Builder.Build is checked; a violation panics with a description of the
// broken invariant, because a malformed CSR silently corrupts every
// downstream binary search and label-run lookup.
//
// The checks are deliberately O(V + E log d) — cheap enough that the
// sqdebug test suite runs them on every constructed graph.

// debugCheckGraph panics if g violates a CSR invariant. No-op in normal
// builds (debugInvariants is constant false and the call compiles away).
func debugCheckGraph(g *Graph) {
	if !debugInvariants {
		return
	}
	n := g.NumVertices()
	if len(g.offsets) != n+1 {
		debugFailf("offsets length %d for %d vertices", len(g.offsets), n)
	}
	if n == 0 {
		return
	}
	if g.offsets[0] != 0 {
		debugFailf("offsets[0] = %d, want 0", g.offsets[0])
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			debugFailf("offsets not monotone at vertex %d: %d > %d", v, g.offsets[v], g.offsets[v+1])
		}
	}
	if int(g.offsets[n]) != len(g.adj) {
		debugFailf("offsets[%d] = %d, want len(adj) = %d", n, g.offsets[n], len(g.adj))
	}

	// Adjacency: in range, no self-loops, strictly sorted by (label, id).
	var maxDeg uint32
	for v := 0; v < n; v++ {
		nbrs := g.adj[g.offsets[v]:g.offsets[v+1]]
		if uint32(len(nbrs)) > maxDeg {
			maxDeg = uint32(len(nbrs))
		}
		for i, w := range nbrs {
			if int(w) >= n {
				debugFailf("vertex %d has neighbor %d outside [0,%d)", v, w, n)
			}
			if int(w) == v {
				debugFailf("self-loop on vertex %d", v)
			}
			if i > 0 {
				p := nbrs[i-1]
				lp, lw := g.labels[p], g.labels[w]
				if lp > lw || (lp == lw && p >= w) {
					debugFailf("neighbors of %d not sorted by (label,id) at position %d: (%d,%d) before (%d,%d)", v, i, lp, p, lw, w)
				}
			}
		}
	}
	if maxDeg != g.maxDegree {
		debugFailf("maxDegree = %d, recomputed %d", g.maxDegree, maxDeg)
	}

	debugCheckLabelRuns(g)
	debugCheckLabelVertices(g)

	// Symmetry: every stored arc has its reverse. HasEdge is safe to use
	// here because the label-run index was just validated.
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			if !g.HasEdge(w, VertexID(v)) {
				debugFailf("asymmetric edge: %d lists %d but not vice versa", v, w)
			}
		}
	}

	// Label counts.
	counts := make(map[Label]int, len(g.labelCount))
	for _, l := range g.labels {
		counts[l]++
	}
	if len(counts) != len(g.labelCount) {
		debugFailf("labelCount has %d labels, recomputed %d", len(g.labelCount), len(counts))
	}
	for l, c := range counts {
		if g.labelCount[l] != c {
			debugFailf("labelCount[%d] = %d, recomputed %d", l, g.labelCount[l], c)
		}
	}
}

// debugCheckLabelRuns validates the per-vertex label-run index against the
// sorted adjacency: runs tile each neighbor list exactly, with strictly
// increasing labels and correct absolute end positions.
func debugCheckLabelRuns(g *Graph) {
	n := g.NumVertices()
	if len(g.nlStart) != n+1 {
		debugFailf("nlStart length %d for %d vertices", len(g.nlStart), n)
	}
	if len(g.nlLabels) != len(g.nlEnds) {
		debugFailf("nlLabels length %d != nlEnds length %d", len(g.nlLabels), len(g.nlEnds))
	}
	if int(g.nlStart[n]) != len(g.nlLabels) {
		debugFailf("nlStart[%d] = %d, want %d label runs", n, g.nlStart[n], len(g.nlLabels))
	}
	for v := 0; v < n; v++ {
		s, e := g.nlStart[v], g.nlStart[v+1]
		if s > e {
			debugFailf("nlStart not monotone at vertex %d: %d > %d", v, s, e)
		}
		cursor := g.offsets[v]
		for r := s; r < e; r++ {
			l := g.nlLabels[r]
			if r > s && g.nlLabels[r-1] >= l {
				debugFailf("label runs of vertex %d not strictly increasing at run %d", v, r)
			}
			end := g.nlEnds[r]
			if end <= cursor || end > g.offsets[v+1] {
				debugFailf("run %d of vertex %d has end %d outside (%d,%d]", r, v, end, cursor, g.offsets[v+1])
			}
			for i := cursor; i < end; i++ {
				if g.labels[g.adj[i]] != l {
					debugFailf("run %d of vertex %d labeled %d contains neighbor %d with label %d", r, v, l, g.adj[i], g.labels[g.adj[i]])
				}
			}
			cursor = end
		}
		if cursor != g.offsets[v+1] {
			debugFailf("label runs of vertex %d cover up to %d, want %d", v, cursor, g.offsets[v+1])
		}
	}
}

// debugCheckSortedUnique panics unless s is strictly ascending — the
// output contract of the intersection kernel (sorted, duplicate-free).
// No-op in normal builds.
func debugCheckSortedUnique[T cmp.Ordered](what string, s []T) {
	if !debugInvariants {
		return
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			debugFailf("%s output not strictly ascending at %d: %v then %v", what, i, s[i-1], s[i])
		}
	}
}

// debugCheckLabelVertices validates the per-label vertex index: every
// label's list is ascending, lists tile V exactly, and every entry has the
// label it is filed under.
func debugCheckLabelVertices(g *Graph) {
	if !debugInvariants {
		return
	}
	total := 0
	for l, vs := range g.labelVerts {
		for i, v := range vs {
			if g.labels[v] != l {
				debugFailf("labelVerts[%d] lists vertex %d with label %d", l, v, g.labels[v])
			}
			if i > 0 && vs[i-1] >= v {
				debugFailf("labelVerts[%d] not strictly ascending at %d", l, i)
			}
		}
		total += len(vs)
	}
	if total != g.NumVertices() {
		debugFailf("labelVerts covers %d of %d vertices", total, g.NumVertices())
	}
}

func debugFailf(format string, args ...any) {
	panic("sqdebug: graph: " + fmt.Sprintf(format, args...))
}
