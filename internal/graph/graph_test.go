package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// fig1Query returns the query graph q of the paper's Figure 1: a triangle
// u0-u1-u2 with a pendant u3 attached to u2 (labels A,B,C,B).
func fig1Query() *Graph {
	return MustFromEdges(
		[]Label{0, 1, 2, 1},
		[]Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}},
	)
}

// fig1Data returns a data graph G containing q (v0..v3 mirror u0..u3) plus
// an extra vertex v4 with label A attached to v1.
func fig1Data() *Graph {
	return MustFromEdges(
		[]Label{0, 1, 2, 1, 0},
		[]Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {1, 4}},
	)
}

func TestBuilderBasics(t *testing.T) {
	g := fig1Query()
	if got := g.NumVertices(); got != 4 {
		t.Fatalf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if got := g.Degree(2); got != 3 {
		t.Errorf("Degree(2) = %d, want 3", got)
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	if got := g.Label(3); got != 1 {
		t.Errorf("Label(3) = %d, want 1", got)
	}
	if got := g.AverageDegree(); got != 2.0 {
		t.Errorf("AverageDegree = %v, want 2.0", got)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	cases := []struct {
		name  string
		edges []Edge
	}{
		{"self-loop", []Edge{{0, 0}}},
		{"out-of-range", []Edge{{0, 5}}},
		{"duplicate", []Edge{{0, 1}, {1, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromEdges([]Label{0, 1}, tc.edges); err == nil {
				t.Fatalf("FromEdges(%v) succeeded, want error", tc.edges)
			}
		})
	}
}

func TestHasEdge(t *testing.T) {
	g := fig1Data()
	want := map[[2]VertexID]bool{
		{0, 1}: true, {1, 0}: true, {0, 2}: true, {1, 2}: true,
		{2, 3}: true, {1, 4}: true,
		{0, 3}: false, {0, 4}: false, {3, 4}: false, {2, 4}: false,
	}
	for pair, w := range want {
		if got := g.HasEdge(pair[0], pair[1]); got != w {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", pair[0], pair[1], got, w)
		}
	}
}

func TestNeighborsSortedByLabel(t *testing.T) {
	g := fig1Data()
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.Neighbors(VertexID(v))
		for i := 1; i < len(nbrs); i++ {
			li, lj := g.Label(nbrs[i-1]), g.Label(nbrs[i])
			if li > lj || (li == lj && nbrs[i-1] >= nbrs[i]) {
				t.Fatalf("neighbors of %d not sorted by (label,id): %v", v, nbrs)
			}
		}
	}
}

func TestNeighborsWithLabel(t *testing.T) {
	g := fig1Data()
	// v2 has neighbors v0 (label 0), v1 and v3 (label 1).
	got := g.NeighborsWithLabel(2, 1)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("NeighborsWithLabel(2, 1) = %v, want [1 3]", got)
	}
	if got := g.NeighborsWithLabel(2, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("NeighborsWithLabel(2, 0) = %v, want [0]", got)
	}
	if got := g.NeighborsWithLabel(2, 7); got != nil {
		t.Errorf("NeighborsWithLabel(2, 7) = %v, want nil", got)
	}
}

func TestLabelFrequency(t *testing.T) {
	g := fig1Data()
	if got := g.LabelFrequency(0); got != 2 {
		t.Errorf("LabelFrequency(0) = %d, want 2", got)
	}
	if got := g.LabelFrequency(1); got != 2 {
		t.Errorf("LabelFrequency(1) = %d, want 2", got)
	}
	if got := g.LabelFrequency(9); got != 0 {
		t.Errorf("LabelFrequency(9) = %d, want 0", got)
	}
	if got := g.DistinctLabels(); got != 3 {
		t.Errorf("DistinctLabels = %d, want 3", got)
	}
}

func TestVerticesWithLabel(t *testing.T) {
	g := fig1Data()
	got := g.VerticesWithLabel(nil, 1)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("VerticesWithLabel(1) = %v, want [1 3]", got)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := fig1Data()
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges() returned %d edges, want %d", len(edges), g.NumEdges())
	}
	g2, err := FromEdges(g.Labels(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Error("rebuilding from Edges() changed the graph")
	}
}

func sameGraph(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Label(VertexID(v)) != b.Label(VertexID(v)) {
			return false
		}
		na := append([]VertexID(nil), a.Neighbors(VertexID(v))...)
		nb := append([]VertexID(nil), b.Neighbors(VertexID(v))...)
		sort.Slice(na, func(i, j int) bool { return na[i] < na[j] })
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestIsConnected(t *testing.T) {
	if !fig1Query().IsConnected() {
		t.Error("fig1 query should be connected")
	}
	disc := MustFromEdges([]Label{0, 0, 0, 0}, []Edge{{0, 1}, {2, 3}})
	if disc.IsConnected() {
		t.Error("two disjoint edges should not be connected")
	}
	empty := MustFromEdges(nil, nil)
	if !empty.IsConnected() {
		t.Error("empty graph is connected by convention")
	}
	single := MustFromEdges([]Label{0}, nil)
	if !single.IsConnected() {
		t.Error("single vertex is connected")
	}
}

func TestBFSTree(t *testing.T) {
	g := fig1Data()
	tr := NewBFSTree(g, 0)
	if tr.Root != 0 || tr.Depth[0] != 0 || tr.Parent[0] != -1 {
		t.Fatalf("bad root bookkeeping: %+v", tr)
	}
	if tr.Depth[1] != 1 || tr.Depth[2] != 1 {
		t.Errorf("v1,v2 should be at depth 1, got %d,%d", tr.Depth[1], tr.Depth[2])
	}
	if tr.Depth[3] != 2 || tr.Depth[4] != 2 {
		t.Errorf("v3,v4 should be at depth 2, got %d,%d", tr.Depth[3], tr.Depth[4])
	}
	if len(tr.Order) != g.NumVertices() {
		t.Errorf("Order covers %d vertices, want %d", len(tr.Order), g.NumVertices())
	}
	// Order must be non-decreasing in depth.
	for i := 1; i < len(tr.Order); i++ {
		if tr.Depth[tr.Order[i]] < tr.Depth[tr.Order[i-1]] {
			t.Fatalf("BFS order not level-by-level: %v", tr.Order)
		}
	}
	// Parent edges must exist in g.
	for v := 0; v < g.NumVertices(); v++ {
		if p := tr.Parent[v]; p >= 0 && !g.HasEdge(VertexID(v), VertexID(p)) {
			t.Errorf("tree edge (%d,%d) not in graph", v, p)
		}
	}
	// Children lists must be consistent with Parent.
	for v := 0; v < g.NumVertices(); v++ {
		for _, c := range tr.Children[v] {
			if tr.Parent[c] != int32(v) {
				t.Errorf("child %d of %d has Parent %d", c, v, tr.Parent[c])
			}
		}
	}
}

func TestTwoCore(t *testing.T) {
	g := fig1Query() // triangle + pendant
	core := g.TwoCore()
	want := []bool{true, true, true, false}
	for v, w := range want {
		if core[v] != w {
			t.Errorf("TwoCore[%d] = %v, want %v", v, core[v], w)
		}
	}
	if got := g.CoreSize(); got != 3 {
		t.Errorf("CoreSize = %d, want 3", got)
	}

	tree := MustFromEdges([]Label{0, 0, 0}, []Edge{{0, 1}, {1, 2}})
	if got := tree.CoreSize(); got != 0 {
		t.Errorf("tree CoreSize = %d, want 0", got)
	}
	if !tree.IsTree() {
		t.Error("path graph should be a tree")
	}
	if fig1Query().IsTree() {
		t.Error("triangle+pendant should not be a tree")
	}
}

func TestNLF(t *testing.T) {
	g := fig1Data()
	p2 := NLFOf(g, 2) // neighbors: v0(A=0), v1(B=1), v3(B=1)
	if got := p2.Count(0); got != 1 {
		t.Errorf("NLF(v2).Count(0) = %d, want 1", got)
	}
	if got := p2.Count(1); got != 2 {
		t.Errorf("NLF(v2).Count(1) = %d, want 2", got)
	}
	if got := p2.Count(5); got != 0 {
		t.Errorf("NLF(v2).Count(5) = %d, want 0", got)
	}
	if got := p2.DistinctLabels(); got != 2 {
		t.Errorf("NLF(v2).DistinctLabels = %d, want 2", got)
	}

	q := fig1Query()
	qp2 := NLFOf(q, 2)
	if !p2.Subsumes(qp2) {
		t.Error("data v2 profile should subsume query u2 profile")
	}
	p4 := NLFOf(g, 4) // single neighbor with label B
	if p4.Subsumes(qp2) {
		t.Error("data v4 profile should not subsume query u2 profile")
	}
	// Any profile subsumes the empty profile.
	if !p4.Subsumes(NLF{}) {
		t.Error("profiles must subsume the empty profile")
	}
}

func TestAllNLFMatchesNLFOf(t *testing.T) {
	g := fig1Data()
	all := AllNLF(g)
	for v := 0; v < g.NumVertices(); v++ {
		one := NLFOf(g, VertexID(v))
		if len(all[v].labels) != len(one.labels) {
			t.Fatalf("AllNLF[%d] disagrees with NLFOf", v)
		}
	}
}

// randomGraph builds a random connected labeled graph for property tests.
func randomGraph(r *rand.Rand, n, extraEdges, labels int) *Graph {
	if n <= 0 {
		n = 1
	}
	lab := make([]Label, n)
	for i := range lab {
		lab[i] = Label(r.Intn(labels))
	}
	seen := map[[2]VertexID]bool{}
	var edges []Edge
	addEdge := func(u, v VertexID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]VertexID{u, v}] {
			return
		}
		seen[[2]VertexID{u, v}] = true
		edges = append(edges, Edge{u, v})
	}
	// Random spanning tree for connectivity.
	for v := 1; v < n; v++ {
		addEdge(VertexID(r.Intn(v)), VertexID(v))
	}
	for i := 0; i < extraEdges; i++ {
		addEdge(VertexID(r.Intn(n)), VertexID(r.Intn(n)))
	}
	return MustFromEdges(lab, edges)
}

func TestPropertyCSRConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := randomGraph(r, n, r.Intn(3*n), 1+r.Intn(5))
		// Symmetry: w in N(v) iff v in N(w); HasEdge agrees.
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(VertexID(v)) {
				if !g.HasEdge(VertexID(v), w) || !g.HasEdge(w, VertexID(v)) {
					return false
				}
				found := false
				for _, x := range g.Neighbors(w) {
					if x == VertexID(v) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		// Degree sums to 2|E|.
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(VertexID(v))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNeighborsWithLabelPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(30), r.Intn(60), 1+r.Intn(6))
		for v := 0; v < g.NumVertices(); v++ {
			total := 0
			for l := Label(0); l < 8; l++ {
				part := g.NeighborsWithLabel(VertexID(v), l)
				total += len(part)
				for _, w := range part {
					if g.Label(w) != l {
						return false
					}
				}
			}
			if total != g.Degree(VertexID(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTwoCoreMinDegree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(40), r.Intn(80), 1+r.Intn(4))
		core := g.TwoCore()
		// Every core vertex has >= 2 neighbors inside the core.
		for v := 0; v < g.NumVertices(); v++ {
			if !core[v] {
				continue
			}
			deg := 0
			for _, w := range g.Neighbors(VertexID(v)) {
				if core[w] {
					deg++
				}
			}
			if deg < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDatabaseStats(t *testing.T) {
	d := NewDatabase([]*Graph{fig1Query(), fig1Data()})
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	s := d.ComputeStats()
	if s.NumGraphs != 2 || s.NumLabels != 3 {
		t.Errorf("stats = %+v, want 2 graphs and 3 labels", s)
	}
	if s.VerticesPerGraph != 4.5 {
		t.Errorf("VerticesPerGraph = %v, want 4.5", s.VerticesPerGraph)
	}
	if s.EdgesPerGraph != 4.5 {
		t.Errorf("EdgesPerGraph = %v, want 4.5", s.EdgesPerGraph)
	}
	id := d.Append(fig1Query())
	if id != 2 || d.Len() != 3 {
		t.Errorf("Append returned %d with Len %d, want 2 and 3", id, d.Len())
	}
	if d.MemoryFootprint() <= 0 {
		t.Error("MemoryFootprint should be positive")
	}
}

func TestMemoryFootprint(t *testing.T) {
	// 5 vertices, 5 edges, 6 distinct ordered label pairs around edges
	// (A-B, A-C, B-A, B-C, C-A, C-B) in the prefilter table.
	g := fig1Data()
	want := int64(5*4+6*4+10*4) + int64(6*8+6*4)
	if got := g.MemoryFootprint(); got != want {
		t.Errorf("MemoryFootprint = %d, want %d", got, want)
	}
}

func TestMaxNeighborsWithLabel(t *testing.T) {
	g := fig1Data() // labels A,B,C,B,A
	cases := []struct {
		l1, l2 Label
		want   int
	}{
		{1, 0, 2}, // v1 (B) has two A-neighbors: v0, v4
		{2, 1, 2}, // v2 (C) has two B-neighbors: v1, v3
		{0, 1, 1}, // both A-vertices have one B-neighbor
		{0, 2, 1}, // v0 (A) has one C-neighbor
		{0, 0, 0}, // no A-A edge
		{1, 1, 0}, // no B-B edge
		{0, 9, 0}, // absent label
		{9, 0, 0},
	}
	for _, tc := range cases {
		if got := g.MaxNeighborsWithLabel(tc.l1, tc.l2); got != tc.want {
			t.Errorf("MaxNeighborsWithLabel(%d,%d) = %d, want %d", tc.l1, tc.l2, got, tc.want)
		}
		if got, want := g.HasLabelPair(tc.l1, tc.l2), tc.want > 0; got != want {
			t.Errorf("HasLabelPair(%d,%d) = %v, want %v", tc.l1, tc.l2, got, want)
		}
	}
}

// TestPropertyMaxNeighborsWithLabel cross-checks the packed table against
// a brute-force recount over random graphs, and checks presence symmetry.
func TestPropertyMaxNeighborsWithLabel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := 1 + r.Intn(6)
		g := randomGraph(r, 2+r.Intn(30), r.Intn(90), nl)
		for l1 := Label(0); l1 < Label(nl); l1++ {
			for l2 := Label(0); l2 < Label(nl); l2++ {
				want := 0
				for v := 0; v < g.NumVertices(); v++ {
					if g.Label(VertexID(v)) != l1 {
						continue
					}
					if n := len(g.NeighborsWithLabel(VertexID(v), l2)); n > want {
						want = n
					}
				}
				if g.MaxNeighborsWithLabel(l1, l2) != want {
					return false
				}
				if g.HasLabelPair(l1, l2) != g.HasLabelPair(l2, l1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
