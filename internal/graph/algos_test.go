package graph

import (
	"math/rand"
	"testing"
)

func TestBFSTreeSingleVertex(t *testing.T) {
	g := MustFromEdges([]Label{5}, nil)
	tr := NewBFSTree(g, 0)
	if len(tr.Order) != 1 || tr.Order[0] != 0 {
		t.Errorf("Order = %v, want [0]", tr.Order)
	}
	if len(tr.Levels) != 1 || len(tr.Levels[0]) != 1 {
		t.Errorf("Levels = %v, want [[0]]", tr.Levels)
	}
	if len(tr.Children[0]) != 0 {
		t.Errorf("root of singleton should have no children")
	}
}

func TestBFSTreeLevels(t *testing.T) {
	// A path 0-1-2-3 rooted at 1: levels {1}, {0,2}, {3}.
	g := MustFromEdges([]Label{0, 0, 0, 0},
		[]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	tr := NewBFSTree(g, 1)
	if len(tr.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(tr.Levels))
	}
	if len(tr.Levels[0]) != 1 || tr.Levels[0][0] != 1 {
		t.Errorf("level 0 = %v", tr.Levels[0])
	}
	if len(tr.Levels[1]) != 2 {
		t.Errorf("level 1 = %v", tr.Levels[1])
	}
	if len(tr.Levels[2]) != 1 || tr.Levels[2][0] != 3 {
		t.Errorf("level 2 = %v", tr.Levels[2])
	}
}

func TestBFSTreeCoversAllLevels(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 3+r.Intn(30), r.Intn(40), 1+r.Intn(3))
		tr := NewBFSTree(g, VertexID(r.Intn(g.NumVertices())))
		total := 0
		for d, level := range tr.Levels {
			total += len(level)
			for _, v := range level {
				if int(tr.Depth[v]) != d {
					t.Fatalf("vertex %d in level %d has depth %d", v, d, tr.Depth[v])
				}
			}
		}
		if total != g.NumVertices() {
			t.Fatalf("levels cover %d of %d vertices", total, g.NumVertices())
		}
	}
}

func TestTwoCoreOfCycleIsEverything(t *testing.T) {
	g := MustFromEdges(make([]Label, 5),
		[]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}})
	for v, in := range g.TwoCore() {
		if !in {
			t.Errorf("cycle vertex %d should be in the 2-core", v)
		}
	}
}

func TestTwoCoreEmptyGraph(t *testing.T) {
	g := MustFromEdges(nil, nil)
	if len(g.TwoCore()) != 0 {
		t.Error("empty graph 2-core should be empty")
	}
	if g.CoreSize() != 0 {
		t.Error("empty graph core size should be 0")
	}
}

func TestIsTreeEdgeCases(t *testing.T) {
	single := MustFromEdges([]Label{0}, nil)
	if !single.IsTree() {
		t.Error("single vertex is a tree")
	}
	empty := MustFromEdges(nil, nil)
	if empty.IsTree() {
		t.Error("empty graph is not a tree (|E| != |V|-1)")
	}
	disc := MustFromEdges([]Label{0, 0, 0, 0}, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if disc.IsTree() {
		t.Error("forest with two components is not a tree")
	}
}

func TestAverageDegreeEmptyGraph(t *testing.T) {
	g := MustFromEdges(nil, nil)
	if got := g.AverageDegree(); got != 0 {
		t.Errorf("AverageDegree of empty graph = %v", got)
	}
}
