package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// Vertices are added implicitly by AddVertex in id order; edges may be added
// in any order and duplicates/self-loops are rejected at Build time.
type Builder struct {
	labels []Label
	edges  []Edge
}

// NewBuilder returns a Builder with capacity hints for v vertices and e
// edges.
func NewBuilder(v, e int) *Builder {
	return &Builder{
		labels: make([]Label, 0, v),
		edges:  make([]Edge, 0, e),
	}
}

// AddVertex appends a vertex with the given label and returns its id.
func (b *Builder) AddVertex(l Label) VertexID {
	b.labels = append(b.labels, l)
	return VertexID(len(b.labels) - 1)
}

// AddEdge records the undirected edge (u, v).
func (b *Builder) AddEdge(u, v VertexID) {
	b.edges = append(b.edges, Edge{u, v})
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.labels) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build validates the accumulated vertices and edges and returns the CSR
// graph. It fails on out-of-range endpoints, self-loops and duplicate edges.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	for _, e := range b.edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references vertex outside [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop on vertex %d", e.U)
		}
	}

	g := &Graph{
		labels:     append([]Label(nil), b.labels...),
		offsets:    make([]uint32, n+1),
		adj:        make([]VertexID, 2*len(b.edges)),
		labelCount: make(map[Label]int),
	}
	for _, l := range g.labels {
		g.labelCount[l]++
	}

	deg := make([]uint32, n)
	for _, e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
		if deg[v] > g.maxDegree {
			g.maxDegree = deg[v]
		}
	}
	cursor := make([]uint32, n)
	copy(cursor, g.offsets[:n])
	for _, e := range b.edges {
		g.adj[cursor[e.U]] = e.V
		cursor[e.U]++
		g.adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}

	// Sort each neighbor list by (label, id) and reject duplicates.
	for v := 0; v < n; v++ {
		nbrs := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(nbrs, func(i, j int) bool {
			li, lj := g.labels[nbrs[i]], g.labels[nbrs[j]]
			if li != lj {
				return li < lj
			}
			return nbrs[i] < nbrs[j]
		})
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] == nbrs[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, nbrs[i])
			}
		}
	}
	g.buildLabelIndex()
	g.buildLabelVertexIndex()
	g.buildNbrMax()
	debugCheckGraph(g) // sqdebug builds only; compiles away otherwise
	return g, nil
}

// buildLabelVertexIndex groups vertex ids by label, each group ascending,
// backing LabeledVertices. One shared backing array keeps it a single
// allocation plus the map.
func (g *Graph) buildLabelVertexIndex() {
	g.labelVerts = make(map[Label][]VertexID, len(g.labelCount))
	backing := make([]VertexID, 0, len(g.labels))
	for l, c := range g.labelCount {
		start := len(backing)
		backing = backing[:start+c]
		g.labelVerts[l] = backing[start:start:len(backing)]
	}
	for v, l := range g.labels {
		g.labelVerts[l] = append(g.labelVerts[l], VertexID(v))
	}
}

// buildLabelIndex constructs the per-vertex label-run index over the sorted
// neighbor lists, enabling NeighborsWithLabel in O(log k).
func (g *Graph) buildLabelIndex() {
	n := g.NumVertices()
	g.nlStart = make([]uint32, n+1)
	// First pass: count label runs.
	runs := 0
	for v := 0; v < n; v++ {
		nbrs := g.adj[g.offsets[v]:g.offsets[v+1]]
		var prev Label
		for i, w := range nbrs {
			if i == 0 || g.labels[w] != prev {
				runs++
				prev = g.labels[w]
			}
		}
	}
	g.nlLabels = make([]Label, 0, runs)
	g.nlEnds = make([]uint32, 0, runs)
	for v := 0; v < n; v++ {
		g.nlStart[v] = uint32(len(g.nlLabels))
		base := g.offsets[v]
		nbrs := g.adj[base:g.offsets[v+1]]
		for i := 0; i < len(nbrs); {
			l := g.labels[nbrs[i]]
			j := i + 1
			for j < len(nbrs) && g.labels[nbrs[j]] == l {
				j++
			}
			g.nlLabels = append(g.nlLabels, l)
			g.nlEnds = append(g.nlEnds, base+uint32(j))
			i = j
		}
	}
	g.nlStart[n] = uint32(len(g.nlLabels))
}

// FromEdges builds a graph from a label array and an edge list. It is a
// convenience wrapper around Builder used heavily in tests and generators.
func FromEdges(labels []Label, edges []Edge) (*Graph, error) {
	b := NewBuilder(len(labels), len(edges))
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error; for tests and examples
// with literal inputs.
func MustFromEdges(labels []Label, edges []Edge) *Graph {
	g, err := FromEdges(labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}
