package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDatabase: the text parser must never panic and must either
// produce a structurally valid database or an error, for arbitrary input.
func FuzzReadDatabase(f *testing.F) {
	f.Add("t 0 2 1\nv 0 1 1\nv 1 2 1\ne 0 1\n")
	f.Add("t 0 1 0\nv 0 0 0\n")
	f.Add("# comment\n\nt 0 0 0\n")
	f.Add("t 0 2 1\nv 0 1 1\nv 1 2 1\ne 0 9\n")
	f.Add("v 0 1 1\n")
	f.Add("t x y z\n")
	f.Fuzz(func(t *testing.T, input string) {
		db, err := ReadDatabase(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip cleanly.
		var buf bytes.Buffer
		if err := WriteDatabase(&buf, db); err != nil {
			t.Fatalf("serialize parsed db: %v", err)
		}
		back, err := ReadDatabase(&buf)
		if err != nil {
			t.Fatalf("reparse serialized db: %v", err)
		}
		if back.Len() != db.Len() {
			t.Fatalf("round trip changed graph count: %d -> %d", db.Len(), back.Len())
		}
		for i := 0; i < db.Len(); i++ {
			a, b := db.Graph(i), back.Graph(i)
			if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
				t.Fatalf("round trip changed graph %d shape", i)
			}
		}
	})
}
