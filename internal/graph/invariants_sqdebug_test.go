//go:build sqdebug

package graph

import (
	"strings"
	"testing"
)

// The tests below corrupt a well-formed CSR graph field by field and check
// that debugCheckGraph panics on each corruption; they only build under
// the sqdebug tag, where debugInvariants is true.

func debugTestGraph(t *testing.T) *Graph {
	t.Helper()
	return MustFromEdges(
		[]Label{0, 1, 1, 2, 0},
		[]Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {0, 4}},
	)
}

func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func TestDebugCheckGraphAcceptsValid(t *testing.T) {
	debugCheckGraph(debugTestGraph(t)) // must not panic
}

func TestDebugCheckGraphUnsortedAdjacency(t *testing.T) {
	g := debugTestGraph(t)
	// Vertex 0 has neighbors {1, 2, 4} sorted by (label, id); swapping two
	// entries breaks the ordering the binary searches rely on.
	s, e := g.offsets[0], g.offsets[1]
	if e-s < 2 {
		t.Fatal("fixture vertex 0 needs at least two neighbors")
	}
	g.adj[s], g.adj[e-1] = g.adj[e-1], g.adj[s]
	mustPanicWith(t, "not sorted", func() { debugCheckGraph(g) })
}

func TestDebugCheckGraphBrokenOffsets(t *testing.T) {
	g := debugTestGraph(t)
	g.offsets[1], g.offsets[2] = g.offsets[2], g.offsets[1]
	mustPanicWith(t, "offsets not monotone", func() { debugCheckGraph(g) })
}

func TestDebugCheckGraphWrongMaxDegree(t *testing.T) {
	g := debugTestGraph(t)
	g.maxDegree++
	mustPanicWith(t, "maxDegree", func() { debugCheckGraph(g) })
}

func TestDebugCheckGraphCorruptLabelRun(t *testing.T) {
	g := debugTestGraph(t)
	if len(g.nlEnds) == 0 {
		t.Fatal("fixture has no label runs")
	}
	g.nlEnds[0]++
	mustPanicWith(t, "run", func() { debugCheckGraph(g) })
}

func TestDebugCheckGraphWrongLabelCount(t *testing.T) {
	g := debugTestGraph(t)
	g.labelCount[0]++
	mustPanicWith(t, "labelCount", func() { debugCheckGraph(g) })
}

func TestDebugCheckGraphAsymmetricEdge(t *testing.T) {
	// Path 0-1-2 with uniform labels; retargeting the arc 0 -> 1 to 0 -> 2
	// keeps the list sorted and label-consistent, but vertex 2 does not
	// list 0 back.
	h := MustFromEdges(
		[]Label{0, 0, 0},
		[]Edge{{0, 1}, {1, 2}},
	)
	h.adj[h.offsets[0]] = 2
	mustPanicWith(t, "asymmetric", func() { debugCheckGraph(h) })
}
