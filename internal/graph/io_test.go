package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadGraphRoundTrip(t *testing.T) {
	g := fig1Data()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, 0, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Error("graph changed across serialize/parse round trip")
	}
}

func TestWriteReadDatabaseRoundTrip(t *testing.T) {
	d := NewDatabase([]*Graph{fig1Query(), fig1Data(), MustFromEdges([]Label{7}, nil)})
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip lost graphs: %d vs %d", d2.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if !sameGraph(d.Graph(i), d2.Graph(i)) {
			t.Errorf("graph %d changed across round trip", i)
		}
	}
}

func TestReadDatabaseCommentsAndBlanks(t *testing.T) {
	in := `
# molecule database
t 0 2 1
v 0 3 1
v 1 4 1

e 0 1
`
	d, err := ReadDatabase(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Graph(0).NumVertices() != 2 || d.Graph(0).NumEdges() != 1 {
		t.Fatalf("parsed unexpectedly: %v", d.Graph(0))
	}
	if d.Graph(0).Label(1) != 4 {
		t.Errorf("Label(1) = %d, want 4", d.Graph(0).Label(1))
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"v-before-t", "v 0 1 0\n"},
		{"e-before-t", "e 0 1\n"},
		{"bad-t", "t 0 x y\n"},
		{"short-t", "t 0 1\n"},
		{"bad-v", "t 0 1 0\nv zero 1 0\n"},
		{"nonconsecutive-v", "t 0 2 0\nv 1 0 0\n"},
		{"bad-e", "t 0 2 1\nv 0 0 1\nv 1 0 1\ne a b\n"},
		{"vertex-count-mismatch", "t 0 3 0\nv 0 0 0\n"},
		{"edge-count-mismatch", "t 0 2 2\nv 0 0 0\nv 1 0 0\ne 0 1\n"},
		{"unknown-record", "t 0 1 0\nv 0 0 0\nx 1 2\n"},
		{"edge-out-of-range", "t 0 2 1\nv 0 0 1\nv 1 0 1\ne 0 9\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadDatabase(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ReadDatabase(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestReadGraphEmptyInput(t *testing.T) {
	if _, err := ReadGraph(strings.NewReader("")); err == nil {
		t.Fatal("ReadGraph on empty input should fail")
	}
}

func TestReadGraphTakesFirstOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, NewDatabase([]*Graph{fig1Query(), fig1Data()})); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, fig1Query()) {
		t.Error("ReadGraph should return the first graph")
	}
}
