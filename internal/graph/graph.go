// Package graph provides the labeled undirected graph substrate used by all
// subgraph query processing and subgraph matching algorithms in this module.
//
// Graphs are stored in CSR (compressed sparse row) form: a label array, an
// offset array and an edge array, exactly the storage the paper assumes for
// its in-memory graph databases. Neighbor lists are kept sorted by
// (label, id) so that edge tests are binary searches and label-restricted
// neighbor ranges are contiguous slices.
package graph

import (
	"fmt"
	"sort"
)

// Label is a vertex label drawn from the database's label set Σ.
type Label uint32

// VertexID identifies a vertex within a single graph.
type VertexID uint32

// Graph is an immutable vertex-labeled undirected graph in CSR form.
// Construct one with a Builder or with FromEdges; the zero value is an
// empty graph.
type Graph struct {
	labels  []Label    // labels[v] is the label of vertex v
	offsets []uint32   // CSR offsets, len = |V|+1
	adj     []VertexID // concatenated neighbor lists, sorted by (label,id)

	// labelOffsets[i] delimits, within adj[offsets[v]:offsets[v+1]], the
	// sub-range of neighbors sharing one label. It is a parallel structure:
	// for vertex v, nlStart[v]..nlStart[v+1] indexes into nlLabels/nlEnds.
	nlStart  []uint32
	nlLabels []Label
	nlEnds   []uint32 // end position (absolute into adj) of each label run

	// Label-pair neighborhood-frequency table (see nbrmax.go): sorted
	// packed (l1,l2) keys with, per pair, the maximum number of l2-labeled
	// neighbors over l1-labeled vertices — the per-graph prefilter data.
	nbrMaxKeys []uint64
	nbrMaxVals []uint32

	maxDegree  uint32
	labelCount map[Label]int        // number of vertices per label
	labelVerts map[Label][]VertexID // vertices per label, ascending
}

// NumVertices returns |V(g)|.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns |E(g)| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Labels returns the label array; callers must not modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Label returns the label of vertex v.
func (g *Graph) Label(v VertexID) Label { return g.labels[v] }

// Degree returns d(v), the number of neighbors of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum vertex degree in g.
func (g *Graph) MaxDegree() int { return int(g.maxDegree) }

// Neighbors returns the neighbor list of v, sorted by (label, id).
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// NeighborsWithLabel returns the neighbors of v whose label is l, as a
// contiguous sub-slice of the neighbor list. Callers must not modify it.
func (g *Graph) NeighborsWithLabel(v VertexID, l Label) []VertexID {
	s, e := g.nlStart[v], g.nlStart[v+1]
	// The number of distinct labels among a vertex's neighbors is small;
	// binary search over the label runs.
	lo, hi := int(s), int(e)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.nlLabels[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == int(e) || g.nlLabels[lo] != l {
		return nil
	}
	start := g.offsets[v]
	if lo > int(s) {
		start = g.nlEnds[lo-1]
	}
	return g.adj[start:g.nlEnds[lo]]
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v VertexID) bool {
	du, dv := g.Degree(u), g.Degree(v)
	if dv < du {
		u, v = v, u
	}
	nbrs := g.NeighborsWithLabel(u, g.labels[v])
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// LabelFrequency returns the number of vertices in g with label l.
func (g *Graph) LabelFrequency(l Label) int { return g.labelCount[l] }

// DistinctLabels returns the number of distinct vertex labels in g.
func (g *Graph) DistinctLabels() int { return len(g.labelCount) }

// VerticesWithLabel appends to dst all vertices of g labeled l and returns
// the extended slice.
func (g *Graph) VerticesWithLabel(dst []VertexID, l Label) []VertexID {
	return append(dst, g.labelVerts[l]...)
}

// LabeledVertices returns the vertices of g labeled l, in ascending id
// order, without copying. Callers must not modify the returned slice. This
// is the index that turns every "scan V(G) for label L(u)" loop in the
// filters into an O(|candidates|) walk.
func (g *Graph) LabeledVertices(l Label) []VertexID { return g.labelVerts[l] }

// SubsumesProfile reports whether vertex v's neighborhood label frequency
// profile subsumes q — v has at least q.counts[j] neighbors of label
// q.labels[j] for every j. It reads the CSR label-run index directly, so
// unlike NLFOf(g, v).Subsumes(q) it allocates nothing.
func (g *Graph) SubsumesProfile(v VertexID, q NLF) bool {
	i, e := int(g.nlStart[v]), int(g.nlStart[v+1])
	prev := g.offsets[v] // start position of run i within adj
	for j := range q.labels {
		lj := q.labels[j]
		for i < e && g.nlLabels[i] < lj {
			prev = g.nlEnds[i]
			i++
		}
		if i == e || g.nlLabels[i] != lj || g.nlEnds[i]-prev < q.counts[j] {
			return false
		}
		prev = g.nlEnds[i]
		i++
	}
	return true
}

// MemoryFootprint returns the approximate number of bytes held by the CSR
// arrays of g plus the label-pair prefilter table. This is the "Datasets"
// storage cost the paper reports — a label array, an offset array and an
// edge array — with the O(distinct label pairs) table built alongside.
func (g *Graph) MemoryFootprint() int64 {
	return int64(len(g.labels))*4 + int64(len(g.offsets))*4 + int64(len(g.adj))*4 +
		int64(len(g.nbrMaxKeys))*8 + int64(len(g.nbrMaxVals))*4
}

// String returns a short diagnostic description of g.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d |Σ|=%d}", g.NumVertices(), g.NumEdges(), g.DistinctLabels())
}

// AverageDegree returns 2|E|/|V|, the degree statistic used throughout the
// paper's dataset tables.
func (g *Graph) AverageDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(2*g.NumEdges()) / float64(g.NumVertices())
}

// Edge is an undirected edge between two vertices, used by builders and
// generators.
type Edge struct {
	U, V VertexID
}

// Edges returns all undirected edges of g with U < V, in vertex order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < w {
				edges = append(edges, Edge{VertexID(v), w})
			}
		}
	}
	return edges
}
