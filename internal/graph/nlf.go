package graph

import "sort"

// NLF is a neighborhood label frequency profile: for one vertex, the
// multiset of its neighbors' labels represented as sorted (label, count)
// runs. GraphQL's first filtering step admits a data vertex v as a candidate
// for query vertex u only if profile(v) subsumes profile(u) (§III-B:
// "generate a candidate vertex set for each query vertex based on the
// neighborhood profiles").
//
// Because neighbor lists in Graph are sorted by (label, id), a vertex's NLF
// is derived in a single pass without extra allocation beyond the runs.
type NLF struct {
	labels []Label
	counts []uint32
}

// NLFOf computes the neighborhood label frequency profile of vertex v in g.
func NLFOf(g *Graph, v VertexID) NLF {
	nbrs := g.Neighbors(v)
	var p NLF
	for i := 0; i < len(nbrs); {
		l := g.Label(nbrs[i])
		j := i + 1
		for j < len(nbrs) && g.Label(nbrs[j]) == l {
			j++
		}
		p.labels = append(p.labels, l)
		p.counts = append(p.counts, uint32(j-i))
		i = j
	}
	return p
}

// AllNLF computes the profile of every vertex of g.
func AllNLF(g *Graph) []NLF {
	out := make([]NLF, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		out[v] = NLFOf(g, VertexID(v))
	}
	return out
}

// Subsumes reports whether p contains at least as many neighbors of every
// label as q does — the condition for a data vertex with profile p to remain
// a candidate for a query vertex with profile q.
func (p NLF) Subsumes(q NLF) bool {
	i := 0
	for j := range q.labels {
		for i < len(p.labels) && p.labels[i] < q.labels[j] {
			i++
		}
		if i == len(p.labels) || p.labels[i] != q.labels[j] || p.counts[i] < q.counts[j] {
			return false
		}
	}
	return true
}

// Count returns the number of neighbors with label l recorded in p.
func (p NLF) Count(l Label) int {
	lo, hi := 0, len(p.labels)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.labels[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.labels) && p.labels[lo] == l {
		return int(p.counts[lo])
	}
	return 0
}

// DistinctLabels returns the number of distinct neighbor labels in p.
func (p NLF) DistinctLabels() int { return len(p.labels) }

// NLFFromCounts builds a profile from a label->count map (counts of zero
// are dropped).
func NLFFromCounts(counts map[Label]uint32) NLF {
	var p NLF
	if len(counts) == 0 {
		return p
	}
	labels := make([]Label, 0, len(counts))
	for l, c := range counts {
		if c > 0 {
			labels = append(labels, l)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	p.labels = labels
	p.counts = make([]uint32, len(labels))
	for i, l := range labels {
		p.counts[i] = counts[l]
	}
	return p
}

// ForEach visits each (label, count) run of p in ascending label order,
// stopping early if fn returns false.
func (p NLF) ForEach(fn func(l Label, count int) bool) {
	for i := range p.labels {
		if !fn(p.labels[i], int(p.counts[i])) {
			return
		}
	}
}
