package graph

// Database is a graph database D = {G_1, ..., G_n}: an ordered collection of
// data graphs held in memory, as the paper assumes throughout (§II-B: "the
// graph database itself consumes a small amount of memory space compared
// with the indices, we assume that it fits into memory").
type Database struct {
	graphs []*Graph
}

// NewDatabase returns a database over the given data graphs. The slice is
// retained; callers should not modify it afterwards.
func NewDatabase(graphs []*Graph) *Database {
	return &Database{graphs: graphs}
}

// Len returns |D|, the number of data graphs.
func (d *Database) Len() int { return len(d.graphs) }

// Graph returns the i-th data graph.
func (d *Database) Graph(i int) *Graph { return d.graphs[i] }

// Graphs returns the underlying slice of data graphs; callers must not
// modify it.
func (d *Database) Graphs() []*Graph { return d.graphs }

// Append adds a data graph to the database and returns its id. Engines that
// keep indices must be rebuilt or updated after appends; the vcFV engines
// need no maintenance, which is the index-update advantage §I highlights.
func (d *Database) Append(g *Graph) int {
	d.graphs = append(d.graphs, g)
	return len(d.graphs) - 1
}

// Stats summarizes a database in the shape of the paper's Table IV.
type Stats struct {
	NumGraphs        int
	NumLabels        int     // distinct labels across D
	VerticesPerGraph float64 // average |V(G)|
	EdgesPerGraph    float64 // average |E(G)|
	DegreePerGraph   float64 // average of per-graph average degree
	LabelsPerGraph   float64 // average distinct labels per graph
}

// ComputeStats scans the database and returns its Table IV-style statistics.
func (d *Database) ComputeStats() Stats {
	s := Stats{NumGraphs: len(d.graphs)}
	if len(d.graphs) == 0 {
		return s
	}
	all := make(map[Label]struct{})
	var v, e, deg, lab float64
	for _, g := range d.graphs {
		v += float64(g.NumVertices())
		e += float64(g.NumEdges())
		deg += g.AverageDegree()
		lab += float64(g.DistinctLabels())
		for _, l := range g.Labels() {
			all[l] = struct{}{}
		}
	}
	n := float64(len(d.graphs))
	s.NumLabels = len(all)
	s.VerticesPerGraph = v / n
	s.EdgesPerGraph = e / n
	s.DegreePerGraph = deg / n
	s.LabelsPerGraph = lab / n
	return s
}

// MemoryFootprint returns the total CSR byte size of all data graphs: the
// "Datasets" row of the paper's memory cost tables.
func (d *Database) MemoryFootprint() int64 {
	var total int64
	for _, g := range d.graphs {
		total += g.MemoryFootprint()
	}
	return total
}
