package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNLFFromCounts(t *testing.T) {
	p := NLFFromCounts(map[Label]uint32{5: 2, 1: 1, 9: 0})
	if got := p.Count(5); got != 2 {
		t.Errorf("Count(5) = %d, want 2", got)
	}
	if got := p.Count(1); got != 1 {
		t.Errorf("Count(1) = %d, want 1", got)
	}
	if got := p.Count(9); got != 0 {
		t.Errorf("Count(9) = %d, want 0 (zero counts dropped)", got)
	}
	if got := p.DistinctLabels(); got != 2 {
		t.Errorf("DistinctLabels = %d, want 2", got)
	}
	if empty := NLFFromCounts(nil); empty.DistinctLabels() != 0 {
		t.Error("empty counts should give empty profile")
	}
}

func TestNLFFromCountsMatchesNLFOf(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(20), r.Intn(30), 1+r.Intn(4))
		for v := 0; v < g.NumVertices(); v++ {
			counts := map[Label]uint32{}
			for _, w := range g.Neighbors(VertexID(v)) {
				counts[g.Label(w)]++
			}
			rebuilt := NLFFromCounts(counts)
			direct := NLFOf(g, VertexID(v))
			equal := true
			direct.ForEach(func(l Label, c int) bool {
				if rebuilt.Count(l) != c {
					equal = false
					return false
				}
				return true
			})
			if !equal || rebuilt.DistinctLabels() != direct.DistinctLabels() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNLFForEachEarlyStop(t *testing.T) {
	p := NLFFromCounts(map[Label]uint32{1: 1, 2: 1, 3: 1})
	visits := 0
	p.ForEach(func(Label, int) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Errorf("ForEach visited %d runs after early stop, want 2", visits)
	}
}

func TestSubsumesReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(15), r.Intn(25), 1+r.Intn(4))
		for v := 0; v < g.NumVertices(); v++ {
			p := NLFOf(g, VertexID(v))
			if !p.Subsumes(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
