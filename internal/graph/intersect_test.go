package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// naiveIntersect is the obviously-correct reference: a map-based
// intersection of two duplicate-free lists, sorted afterwards.
func naiveIntersect(a, b []int32) []int32 {
	in := map[int32]bool{}
	for _, x := range a {
		in[x] = true
	}
	var out []int32
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	slices.Sort(out)
	return out
}

// sortedUniqueSample draws n distinct values from [0, universe) in
// ascending order.
func sortedUniqueSample(rng *rand.Rand, n, universe int) []int32 {
	seen := map[int32]bool{}
	for len(seen) < n {
		seen[int32(rng.Intn(universe))] = true
	}
	out := make([]int32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// TestIntersectSortedProperty cross-checks the kernel against the naive
// reference over many random shapes, including the size skews that flip it
// between the merge scan and the galloping path.
func TestIntersectSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		universe := 1 + rng.Intn(4000)
		la := rng.Intn(min(universe, 80))
		lb := rng.Intn(universe)
		if trial%3 == 0 {
			// Force heavy skew so the galloping branch is exercised even
			// when the random sizes land close together.
			la = rng.Intn(4)
			lb = universe / 2
		}
		a := sortedUniqueSample(rng, la, universe)
		b := sortedUniqueSample(rng, lb, universe)
		want := naiveIntersect(a, b)
		got := IntersectSorted(nil, a, b)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: IntersectSorted(|a|=%d,|b|=%d) = %v, want %v", trial, la, lb, got, want)
		}
		// Symmetry: the kernel swaps internally; both orders must agree.
		if swapped := IntersectSorted(nil, b, a); !slices.Equal(swapped, want) {
			t.Fatalf("trial %d: intersection not symmetric", trial)
		}
		// In-place form: dst aliasing a's backing must give the same
		// result without allocating when the result fits.
		inPlace := IntersectSorted(slices.Clone(a)[:0], a, b)
		if !slices.Equal(inPlace, want) {
			t.Fatalf("trial %d: in-place intersection diverged", trial)
		}
	}
}

// TestIntersectSortedEdgeCases pins the degenerate shapes.
func TestIntersectSortedEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		a, b []int32
		want []int32
	}{
		{"both empty", nil, nil, nil},
		{"a empty", nil, []int32{1, 2, 3}, nil},
		{"b empty", []int32{1, 2, 3}, nil, nil},
		{"disjoint", []int32{1, 3, 5}, []int32{2, 4, 6}, nil},
		{"identical", []int32{2, 4, 6}, []int32{2, 4, 6}, []int32{2, 4, 6}},
		{"subset", []int32{4}, []int32{1, 2, 4, 8}, []int32{4}},
		{"ends only", []int32{0, 99}, []int32{0, 50, 99}, []int32{0, 99}},
	}
	for _, tc := range cases {
		got := IntersectSorted(nil, tc.a, tc.b)
		if !slices.Equal(got, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestIntersectSortedSkewed runs the 1:1000 shape the gallop threshold is
// for and checks dst reuse keeps the call allocation-free.
func TestIntersectSortedSkewed(t *testing.T) {
	big := make([]int32, 1000)
	for i := range big {
		big[i] = int32(i * 3)
	}
	small := []int32{0, 1500, 2997} // first, middle, last of big; 1500 = 500*3
	want := []int32{0, 1500, 2997}
	if got := IntersectSorted(nil, small, big); !slices.Equal(got, want) {
		t.Fatalf("skewed intersection = %v, want %v", got, want)
	}
	dst := make([]int32, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		dst = IntersectSorted(dst[:0], small, big)
	})
	if allocs != 0 {
		t.Fatalf("skewed intersection with reused dst allocated %v times per run, want 0", allocs)
	}
}

// TestLowerBound checks the galloping search against the linear scan.
func TestLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		s := sortedUniqueSample(rng, rng.Intn(100), 500)
		from := 0
		if len(s) > 0 {
			from = rng.Intn(len(s) + 1)
		}
		target := int32(rng.Intn(520) - 10)
		got := LowerBound(s, from, target)
		want := from
		for want < len(s) && s[want] < target {
			want++
		}
		if got != want {
			t.Fatalf("LowerBound(%v, %d, %d) = %d, want %d", s, from, target, got, want)
		}
	}
}

// Benchmarks: the merge and gallop regimes of the kernel. Run with
// `go test ./internal/graph -bench IntersectSorted -benchmem`; the
// benchdiff gate watches the end-to-end engine numbers, these locate
// kernel-level regressions.
func benchLists(n, m, stride int) (a, b []int32) {
	b = make([]int32, m)
	for i := range b {
		b[i] = int32(i)
	}
	a = make([]int32, n)
	for i := range a {
		a[i] = int32(i * stride % m)
	}
	slices.Sort(a)
	a = slices.Compact(a)
	return a, b
}

func BenchmarkIntersectSortedBalanced(bm *testing.B) {
	a, b := benchLists(1024, 2048, 2)
	dst := make([]int32, 0, len(a))
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		dst = IntersectSorted(dst[:0], a, b)
	}
}

func BenchmarkIntersectSortedSkewed(bm *testing.B) {
	a, b := benchLists(16, 1<<16, 4099)
	dst := make([]int32, 0, len(a))
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		dst = IntersectSorted(dst[:0], a, b)
	}
}
