package graph

import "sort"

// Label-pair neighborhood-frequency table, built once per graph alongside
// the CSR (l2Match-style prefiltering): for every ordered label pair
// (l1, l2) that occurs around some edge, the table records the maximum
// number of l2-labeled neighbors over all l1-labeled vertices.
//
// This answers, in O(log pairs) with no allocation, the strongest
// per-graph question a query's neighborhood profile can ask before any
// per-vertex work: if some query vertex labeled l1 needs c neighbors
// labeled l2 and MaxNeighborsWithLabel(l1, l2) < c, no vertex of the data
// graph can host it and the whole graph is pruned before the filter
// stages run. The c = 1 case subsumes the label-pair edge test: the query
// edge (l1, l2) exists in the data graph iff the max is non-zero.
//
// Keys pack (l1, l2) into one uint64 and are stored sorted for binary
// search; the table is O(distinct pairs), far below the |Σ|² dense matrix
// on real label sets.

// nbrMaxKey packs an ordered label pair into a sortable key.
func nbrMaxKey(l1, l2 Label) uint64 { return uint64(l1)<<32 | uint64(l2) }

// buildNbrMax fills the (l1,l2) → max-l2-neighbors table by walking the
// per-vertex label runs the CSR index already delimits.
func (g *Graph) buildNbrMax() {
	type entry struct {
		key uint64
		max uint32
	}
	acc := make(map[uint64]uint32)
	for v := 0; v < g.NumVertices(); v++ {
		l1 := g.labels[v]
		s, e := g.nlStart[v], g.nlStart[v+1]
		prev := g.offsets[v]
		for i := s; i < e; i++ {
			runLen := g.nlEnds[i] - prev
			prev = g.nlEnds[i]
			k := nbrMaxKey(l1, g.nlLabels[i])
			if runLen > acc[k] {
				acc[k] = runLen
			}
		}
	}
	entries := make([]entry, 0, len(acc))
	for k, m := range acc {
		entries = append(entries, entry{k, m})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	g.nbrMaxKeys = make([]uint64, len(entries))
	g.nbrMaxVals = make([]uint32, len(entries))
	for i, e := range entries {
		g.nbrMaxKeys[i] = e.key
		g.nbrMaxVals[i] = e.max
	}
}

// MaxNeighborsWithLabel returns the maximum, over all vertices labeled l1,
// of the number of their neighbors labeled l2 — zero when no l1-labeled
// vertex has any l2-labeled neighbor (including when either label is
// absent).
func (g *Graph) MaxNeighborsWithLabel(l1, l2 Label) int {
	k := nbrMaxKey(l1, l2)
	lo, hi := 0, len(g.nbrMaxKeys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.nbrMaxKeys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(g.nbrMaxKeys) || g.nbrMaxKeys[lo] != k {
		return 0
	}
	return int(g.nbrMaxVals[lo])
}

// HasLabelPair reports whether some edge of g joins an l1-labeled vertex
// to an l2-labeled one. Symmetric in its arguments.
func (g *Graph) HasLabelPair(l1, l2 Label) bool {
	return g.MaxNeighborsWithLabel(l1, l2) > 0
}
