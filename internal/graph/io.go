package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text serialization follows the widely used ".graph" format of the
// subgraph matching literature (and of the paper's public code release):
//
//	t <id> <numVertices> <numEdges>
//	v <vertexID> <label> <degree>
//	e <src> <dst>
//
// One 't' record per graph; a database file is a concatenation of graphs.
// The degree field on 'v' lines is informational and validated when present.

// WriteGraph serializes g with the given graph id.
func WriteGraph(w io.Writer, id int, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "t %d %d %d\n", id, g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(bw, "v %d %d %d\n", v, g.Label(VertexID(v)), g.Degree(VertexID(v)))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// WriteDatabase serializes every graph of d in order.
func WriteDatabase(w io.Writer, d *Database) error {
	for i := 0; i < d.Len(); i++ {
		if err := WriteGraph(w, i, d.Graph(i)); err != nil {
			return err
		}
	}
	return nil
}

// ReadDatabase parses a concatenation of graphs in the text format and
// returns them as a database.
func ReadDatabase(r io.Reader) (*Database, error) {
	graphs, err := readGraphs(r, -1)
	if err != nil {
		return nil, err
	}
	return NewDatabase(graphs), nil
}

// ReadGraph parses exactly one graph from r.
func ReadGraph(r io.Reader) (*Graph, error) {
	graphs, err := readGraphs(r, 1)
	if err != nil {
		return nil, err
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("graph: no graph found in input")
	}
	return graphs[0], nil
}

func readGraphs(r io.Reader, limit int) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	var graphs []*Graph
	var b *Builder
	var wantV, wantE int
	lineNo := 0

	flush := func() error {
		if b == nil {
			return nil
		}
		if b.NumVertices() != wantV {
			return fmt.Errorf("graph: declared %d vertices, got %d", wantV, b.NumVertices())
		}
		if b.NumEdges() != wantE {
			return fmt.Errorf("graph: declared %d edges, got %d", wantE, b.NumEdges())
		}
		g, err := b.Build()
		if err != nil {
			return err
		}
		graphs = append(graphs, g)
		b = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			if err := flush(); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if limit >= 0 && len(graphs) == limit {
				return graphs, nil
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("line %d: malformed t record %q", lineNo, line)
			}
			var err1, err2 error
			wantV, err1 = strconv.Atoi(fields[2])
			wantE, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || wantV < 0 || wantE < 0 {
				return nil, fmt.Errorf("line %d: malformed t record %q", lineNo, line)
			}
			// The declared counts are capacity hints here (flush enforces
			// them exactly), so cap them: a hostile header must not force
			// a huge allocation before any vertex has been parsed.
			const maxHint = 1 << 20
			b = NewBuilder(min(wantV, maxHint), min(wantE, maxHint))
		case "v":
			if b == nil {
				return nil, fmt.Errorf("line %d: v record before t record", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: malformed v record %q", lineNo, line)
			}
			id, err1 := strconv.Atoi(fields[1])
			lab, err2 := strconv.ParseUint(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: malformed v record %q", lineNo, line)
			}
			if id != b.NumVertices() {
				return nil, fmt.Errorf("line %d: vertex ids must be consecutive, got %d want %d", lineNo, id, b.NumVertices())
			}
			b.AddVertex(Label(lab))
		case "e":
			if b == nil {
				return nil, fmt.Errorf("line %d: e record before t record", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: malformed e record %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: malformed e record %q", lineNo, line)
			}
			b.AddEdge(VertexID(u), VertexID(v))
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return graphs, nil
}
