package graph

import "cmp"

// Sorted-set intersection kernel shared by the enumeration hot path
// (candidate set ∩ pivot neighborhood) and the index posting-list
// intersections (Grapes occurrence lists, GGSX presence sets). Inputs are
// ascending and duplicate-free — the invariant CSR adjacency, sorted
// candidate sets and index posting lists all maintain — and the output is
// then ascending and duplicate-free too (asserted under -tags sqdebug).
//
// The kernel is allocation-free: results are appended to a caller-provided
// buffer, which may alias the first input's backing array (the classic
// in-place `a = intersect(a[:0], a, b)` shrink).

// gallopRatio is the size skew beyond which the kernel switches from a
// linear merge scan to galloping (exponential probe + binary search) in
// the larger input. Below the threshold the merge's sequential access
// pattern wins; above it, galloping's O(min·log(max/min)) does.
const gallopRatio = 16

// IntersectSorted appends a ∩ b to dst and returns the extended slice.
// Both inputs must be ascending and duplicate-free. dst may alias a's
// backing array (e.g. dst = a[:0]); it must not alias b's.
func IntersectSorted[T cmp.Ordered](dst, a, b []T) []T {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j = LowerBound(b, j, x)
			if j == len(b) {
				break
			}
			if b[j] == x {
				dst = append(dst, x)
				j++
			}
		}
	} else {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case b[j] < a[i]:
				j++
			default:
				dst = append(dst, a[i])
				i++
				j++
			}
		}
	}
	debugCheckSortedUnique("IntersectSorted", dst)
	return dst
}

// LowerBound returns the smallest index i in [from, len(s)] with
// s[i] >= target, galloping: exponential probes from `from` followed by a
// binary search over the bracketed range. For a sequence of increasing
// targets this makes a full intersection O(min·log(max/min)) instead of
// O(max). s must be ascending.
func LowerBound[T cmp.Ordered](s []T, from int, target T) int {
	n := len(s)
	if from >= n || s[from] >= target {
		return from
	}
	// s[lo] < target throughout; double the step until we bracket.
	lo := from
	step := 1
	hi := from + step
	for hi < n && s[hi] < target {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > n {
		hi = n
	}
	// Invariant: s[lo] < target, and s[hi] >= target or hi == n.
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
