// Package obs is the observability substrate of the query system: atomic
// counters and gauges, lock-free log-spaced latency histograms, a process
// registry that snapshots to JSON, and a per-query Trace that records
// phase spans and per-candidate verification events.
//
// The package is standard-library only and designed for hot paths: every
// mutation is a sync/atomic operation (no locks on the recording side of
// counters, gauges and histograms), and the Observer no-op path — a nil
// *Trace, or a nil Observer field in core.QueryOptions — costs a single
// predictable branch and allocates nothing.
//
// The paper this system reproduces is a measurement study: §IV-A defines
// per-phase metrics (filtering time, verification time, |C(q)|, per-SI-test
// cost) that every engine must report. The engine Result carries post-hoc
// totals; this package makes the same quantities *streamable* — counted,
// bucketed into distributions, and traceable per query — which is what
// exposes the straggler queries that per-set means hide.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (e.g. in-flight queries).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of counters, gauges and histograms.
// Lookups are read-locked and intended for setup paths; hot paths should
// hold the returned pointer and mutate it directly (all mutations are
// atomic and safe for concurrent use).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time, JSON-marshalable view of a Registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument. Values are read without stopping
// writers, so concurrent snapshots are consistent per instrument, not
// across instruments — the usual scrape semantics.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Names returns the sorted instrument names of each kind (for stable
// rendering in tests and CLIs).
func (r *Registry) Names() (counters, gauges, histograms []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name := range r.counters {
		counters = append(counters, name)
	}
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	for name := range r.hists {
		histograms = append(histograms, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return counters, gauges, histograms
}

// Observer receives streaming telemetry from a query as it executes.
// Engines emit three kinds of events:
//
//   - ObservePhase at the end of each processing phase, with the phase's
//     total duration (PhaseFilter and PhaseVerify always sum to the
//     Result's QueryTime; sub-phases like PhaseIndexFilter are
//     informational refinements and must not be double-counted);
//   - ObserveVerify once per candidate data graph tested, with the graph
//     id, search steps, duration and outcome — the paper's per-SI-test
//     cost (eq. 3), one event per sample;
//   - ObserveCache once per result-cache probe (hit or miss);
//   - ObserveWorkers once per query by the parallel engines, with the
//     effective worker-pool size after clamping to runtime.GOMAXPROCS(0) —
//     so oversubscribed configurations are visible in traces;
//   - ObservePanic once per panic recovered at a resilience boundary, with
//     the data graph id whose processing panicked (-1 when the panic was
//     not attributable to one graph). The engine has already converted the
//     panic into a structured error by the time this fires;
//   - ObserveFingerprint once per query at engine entry, with the query's
//     canonical shape hash (telemetry.Fingerprint, passed as a raw uint64
//     so this package stays dependency-free). It is the join key between a
//     trace, the slow log, /debug/top and the wide-event export.
//
// Implementations must be safe for concurrent use: parallel engines emit
// ObserveVerify and ObservePanic from worker goroutines.
type Observer interface {
	ObservePhase(name string, d time.Duration)
	ObserveVerify(graphID int, steps uint64, d time.Duration, found bool)
	ObserveCache(hit bool)
	ObserveWorkers(n int)
	ObservePanic(graphID int)
	ObserveFingerprint(fp uint64)
}

// Panics counts every panic recovered at a query-engine resilience
// boundary process-wide, regardless of whether the query carried an
// Observer. Exposed by the server's /metrics and checked by the chaos
// suite.
var Panics Counter

// Phase names emitted by the engines.
const (
	// PhaseFilter is the filtering step (§IV-A filtering time). For IvcFV
	// engines it covers both filtering levels, per the paper's metric.
	PhaseFilter = "filter"
	// PhaseVerify is the verification step (§IV-A verification time).
	PhaseVerify = "verify"
	// PhaseIndexFilter is the index-probe portion of an IvcFV engine's
	// filtering, a sub-span of PhaseFilter.
	PhaseIndexFilter = "filter.index"
)

// Tee fans events out to every non-nil observer. A single observer is
// returned unwrapped; Tee(nil values only) returns nil.
func Tee(observers ...Observer) Observer {
	var kept multiObserver
	for _, o := range observers {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

type multiObserver []Observer

func (m multiObserver) ObservePhase(name string, d time.Duration) {
	for _, o := range m {
		o.ObservePhase(name, d)
	}
}

func (m multiObserver) ObserveVerify(graphID int, steps uint64, d time.Duration, found bool) {
	for _, o := range m {
		o.ObserveVerify(graphID, steps, d, found)
	}
}

func (m multiObserver) ObserveCache(hit bool) {
	for _, o := range m {
		o.ObserveCache(hit)
	}
}

func (m multiObserver) ObserveWorkers(n int) {
	for _, o := range m {
		o.ObserveWorkers(n)
	}
}

func (m multiObserver) ObservePanic(graphID int) {
	for _, o := range m {
		o.ObservePanic(graphID)
	}
}

func (m multiObserver) ObserveFingerprint(fp uint64) {
	for _, o := range m {
		o.ObserveFingerprint(fp)
	}
}
