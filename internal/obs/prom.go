package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4), so the telemetry scrapes into
// standard dashboards.
//
// Registry names follow the "<metric>/<engine>" convention; the part
// after the first slash becomes an `engine` label. Counters keep their
// name (already *_total), gauges keep theirs, and histograms — which
// record durations — are exported as `<name>_seconds` with cumulative
// buckets, converting the registry's microsecond bucket bounds to the
// Prometheus base unit.
func WritePrometheus(w io.Writer, s Snapshot, namespace string) {
	writePromFamilies(w, namespace, "counter", counterFamilies(s.Counters))
	writePromFamilies(w, namespace, "gauge", gaugeFamilies(s.Gauges))
	writePromHistograms(w, namespace, s.Histograms)
}

// promSample is one exported time series: an optional engine label and a
// rendered value.
type promSample struct {
	engine string
	value  string
}

// splitMetricName splits the registry's "<metric>/<engine>" convention and
// sanitizes the metric part to the Prometheus name charset.
func splitMetricName(name string) (metric, engine string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		metric, engine = name[:i], name[i+1:]
	} else {
		metric = name
	}
	return sanitizeMetricName(metric), engine
}

// sanitizeMetricName maps any character outside [a-zA-Z0-9_:] to '_' and
// prefixes a digit-leading name with '_'.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// labelPair renders `{engine="..."}`, optionally with an extra le pair for
// histogram buckets; empty when both parts are absent.
func labelPair(engine, le string) string {
	var parts []string
	if engine != "" {
		parts = append(parts, `engine="`+escapeLabelValue(engine)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func counterFamilies(counters map[string]int64) map[string][]promSample {
	fams := map[string][]promSample{}
	for name, v := range counters {
		metric, engine := splitMetricName(name)
		fams[metric] = append(fams[metric], promSample{engine, strconv.FormatInt(v, 10)})
	}
	return fams
}

func gaugeFamilies(gauges map[string]int64) map[string][]promSample {
	fams := map[string][]promSample{}
	for name, v := range gauges {
		metric, engine := splitMetricName(name)
		fams[metric] = append(fams[metric], promSample{engine, strconv.FormatInt(v, 10)})
	}
	return fams
}

// writePromFamilies writes one # TYPE line per metric family followed by
// its samples, all deterministically sorted.
func writePromFamilies(w io.Writer, namespace, typ string, fams map[string][]promSample) {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := namespace + "_" + name
		fmt.Fprintf(w, "# TYPE %s %s\n", full, typ)
		samples := fams[name]
		sort.Slice(samples, func(i, j int) bool { return samples[i].engine < samples[j].engine })
		for _, smp := range samples {
			fmt.Fprintf(w, "%s%s %s\n", full, labelPair(smp.engine, ""), smp.value)
		}
	}
}

// formatSeconds renders a microsecond quantity in seconds with full
// precision.
func formatSeconds(us int64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}

// writePromHistograms exports each histogram as cumulative buckets plus
// _sum and _count, per the Prometheus histogram convention.
func writePromHistograms(w io.Writer, namespace string, hists map[string]HistogramSnapshot) {
	type instance struct {
		engine string
		snap   HistogramSnapshot
	}
	fams := map[string][]instance{}
	for name, snap := range hists {
		metric, engine := splitMetricName(name)
		fams[metric] = append(fams[metric], instance{engine, snap})
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := namespace + "_" + name + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", full)
		instances := fams[name]
		sort.Slice(instances, func(i, j int) bool { return instances[i].engine < instances[j].engine })
		for _, in := range instances {
			var cum uint64
			for _, b := range in.snap.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket%s %d\n", full,
					labelPair(in.engine, formatSeconds(b.LeUS)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", full, labelPair(in.engine, "+Inf"), in.snap.Count)
			fmt.Fprintf(w, "%s_sum%s %s\n", full, labelPair(in.engine, ""), formatSeconds(in.snap.SumUS))
			fmt.Fprintf(w, "%s_count%s %d\n", full, labelPair(in.engine, ""), in.snap.Count)
		}
	}
}
